(* Non-overlapping, non-empty [start, finish) intervals, kept sorted by
   DESCENDING start. Scheduler reservations are near-monotone (each
   commit usually lands after everything already on the resource), so
   keeping the latest interval at the head makes the common reserve an
   O(1) cons instead of an O(n) tail insert. Touching intervals
   (finish = next start) are kept separate; the eps guards against
   float noise when the caller re-derives boundaries.

   [busy] caches the maximum reservation end (0. when empty) — it gates
   an exact earliest-gap fast path: a request starting at or after every
   existing reservation can never conflict. *)

type t = { desc : (float * float) list; busy : float }

let eps = 1e-9

let empty = { desc = []; busy = 0. }

let overlaps (s1, f1) (s2, f2) = s1 < f2 -. eps && s2 < f1 -. eps

let is_free t ~start ~finish =
  not (List.exists (fun iv -> overlaps iv (start, finish)) t.desc)

(* Stored intervals all satisfy finish > start + eps (zero-length
   reservations are dropped below), so for any candidate the
   insert-before test [finish <= s' + eps] and the fully-after test
   [f' <= start + eps] are mutually exclusive: the insertion point is
   unique and the raise condition is exactly "some stored interval
   overlaps". *)
let rec insert (s, f) = function
  | [] -> [ (s, f) ]
  | (s', f') :: rest as l ->
      if f' <= s +. eps then (s, f) :: l (* after the head: O(1) fast path *)
      else if f <= s' +. eps then (s', f') :: insert (s, f) rest
      else invalid_arg "Timeline.reserve: overlapping reservation"

let reserve t ~start ~finish =
  if finish <= start +. eps then
    if finish < start then invalid_arg "Timeline.reserve: negative interval"
    else t (* zero-length reservations occupy nothing *)
  else { desc = insert (start, finish) t.desc; busy = max t.busy finish }

let earliest_gap t ~from_ ~duration =
  if duration <= eps then
    (* Zero-duration items fit anywhere at or after [from_]. *)
    from_
  else if t.busy <= from_ then
    (* Every reservation ends at or before [from_]: nothing conflicts. *)
    from_
  else
    let rec go pos = function
      | [] -> pos
      | (s, f) :: rest ->
          if pos +. duration <= s +. eps then pos else go (max pos f) rest
    in
    go from_ (List.rev t.desc)

let intervals t = List.rev t.desc

let busy_until t = t.busy
