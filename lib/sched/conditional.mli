(** Conditional list scheduling of an FT-CPG into schedule tables
    (paper, Sec. 5.2).

    The scheduler explores the binary tree of condition outcomes in
    revelation order. A {e track} carries a guard plus the state of
    every resource; items are placed greedily (earliest feasible start,
    ties by partial-critical-path priority) as long as their start
    precedes the next condition revelation — later decisions fork with
    the condition and may differ per branch, which is exactly the
    schedule-table semantics: an activation committed before a
    revelation is shared by both outcomes.

    Distributed-knowledge constraints: an activation whose guard tests a
    condition produced on another node waits for the condition
    broadcast, which is itself scheduled on the bus as soon as the
    condition is produced (paper: "broadcast as soon as possible").

    Frozen vertices are given a single, guard-independent start time by
    a fixpoint: each iteration raises a frozen vertex's start to the
    worst observed over all tracks, pre-reserving the corresponding
    resource windows so that no other activation may observe the
    difference (transparency). *)

type params = {
  cond_size : float;
      (** Size of a condition broadcast message (default 1.). *)
  max_tracks : int;
      (** Abort when the scenario tree exceeds this many leaves
          (default 20_000). *)
  max_fix_iters : int;
      (** Fixpoint iteration cap for frozen start times (default 64). *)
  fan_depth : int;
      (** Parallel exploration cuts the scenario tree after this many
          binary revelation forks; deeper subtrees stay sequential
          inside one pool task (default 6). Only consulted when
          [schedule] runs with [jobs > 1]. *)
}

val default_params : params

exception Blocked of string
(** A vertex could never be activated in some scenario (dependency
    deadlock) — indicates an inconsistent FT-CPG. *)

exception Too_many_tracks of int
exception Fixpoint_diverged of int

val schedule : ?params:params -> ?jobs:int -> Ftes_ftcpg.Ftcpg.t -> Table.t
(** Incremental scheduler: guard-aware ready set, memoized tentative
    placements (invalidated by physical resource change), persistent
    copy-on-write timeline array, and — for [jobs > 1] — parallel
    exploration of independent fault/no-fault subtrees on the
    {!Ftes_util.Par} pool with a deterministic depth-first merge. The
    produced table is byte-identical for every [jobs] value and to
    {!schedule_reference}. [jobs] defaults to 1 (sequential). *)

val schedule_reference : ?params:params -> Ftes_ftcpg.Ftcpg.t -> Table.t
(** Direct transcription of the paper's algorithm (full vertex rescan
    per commit, timeline array copied per commit, sequential branch
    exploration). Kept as the digest oracle for {!schedule} and as the
    baseline of the scheduler-scaling bench. *)
