module Cond = Ftes_ftcpg.Cond
module Ftcpg = Ftes_ftcpg.Ftcpg
module Problem = Ftes_ftcpg.Problem
module Graph = Ftes_app.Graph
module Arch = Ftes_arch.Arch
module Bus = Ftes_arch.Bus
module Imap = Map.Make (Int)
module Telemetry = Ftes_util.Telemetry

let c_fix_iterations = Telemetry.counter "sched.fix_iterations"

type params = { cond_size : float; max_tracks : int; max_fix_iters : int }

let default_params = { cond_size = 1.; max_tracks = 20_000; max_fix_iters = 64 }

exception Blocked of string
exception Too_many_tracks of int
exception Fixpoint_diverged of int

let eps = 1e-6

type state = {
  guard : Cond.guard;
  faults : int;
  nodes : Timeline.t array;
  bus : Busalloc.t;
  finish : float Imap.t;  (* scheduled vertices -> finish time *)
  reveal : float Imap.t;  (* condition -> revelation time *)
  bcast : float Imap.t;  (* condition -> broadcast arrival *)
  pending : (float * int) Ftes_util.Pqueue.t;
      (* unrevealed conditions, min-heap by revelation time. Branch
         states share physical queues only when at most one branch is
         still live: [commit] pushes in place (the parent state is dead
         once its successor exists) and a fork hands the fault branch a
         [Pqueue.copy] while the no-fault branch keeps the original. *)
  entries : Table.entry list;  (* reversed *)
  makespan : float;
}

(* Partial-critical-path priority: longest downstream chain. *)
let priorities ftcpg =
  let n = Ftcpg.vertex_count ftcpg in
  let pcp = Array.make n 0. in
  for vid = n - 1 downto 0 do
    let v = Ftcpg.vertex ftcpg vid in
    let down =
      List.fold_left (fun acc s -> max acc pcp.(s)) 0. v.Ftcpg.succs
    in
    pcp.(vid) <- v.Ftcpg.duration +. down
  done;
  pcp

let schedule ?(params = default_params) ftcpg =
  Telemetry.with_span ~cat:"sched" "sched.conditional" @@ fun () ->
  let problem = Ftcpg.problem ftcpg in
  let k = problem.Problem.k in
  let g = Problem.graph problem in
  let arch = problem.Problem.arch in
  let bus_spec = Arch.bus arch in
  let nnodes = Arch.node_count arch in
  let nverts = Ftcpg.vertex_count ftcpg in
  let pcp = priorities ftcpg in
  let vert = Ftcpg.vertex ftcpg in
  (* Frozen start times being fixed across iterations. *)
  let fixed : (int, float) Hashtbl.t = Hashtbl.create 16 in
  (* New or raised start demands observed during one exploration. *)
  let demands : (int, float) Hashtbl.t = Hashtbl.create 16 in
  let demand vid t =
    let cur = try Hashtbl.find demands vid with Not_found -> neg_infinity in
    if t > cur then Hashtbl.replace demands vid t
  in
  let leaf_count = ref 0 in

  let literal_available st (l : Cond.literal) ~decision_node =
    let reveal =
      match Imap.find_opt l.Cond.cond st.reveal with
      | Some t -> t
      | None -> infinity (* not yet revealed: cannot commit *)
    in
    match decision_node with
    | None -> reveal
    | Some n -> (
        match (vert l.Cond.cond).Ftcpg.exec_node with
        | Some pn when pn = n -> reveal
        | Some _ | None -> (
            match Imap.find_opt l.Cond.cond st.bcast with
            | Some t -> t
            | None -> infinity))
  in

  let decision_node (v : Ftcpg.vertex) =
    match v.Ftcpg.kind with
    | Ftcpg.Proc_copy _ -> v.Ftcpg.exec_node
    | Ftcpg.Msg_inst _ | Ftcpg.Sync_msg _ ->
        if v.Ftcpg.on_bus then v.Ftcpg.src_node else None
    | Ftcpg.Sync_proc _ -> None
  in

  let ready st (v : Ftcpg.vertex) =
    (not (Imap.mem v.Ftcpg.vid st.finish))
    && Cond.implies st.guard v.Ftcpg.guard
    && List.for_all
         (fun p ->
           Imap.mem p st.finish
           || not (Cond.compatible (vert p).Ftcpg.guard st.guard))
         v.Ftcpg.preds
  in

  let base_time st (v : Ftcpg.vertex) =
    let arrivals =
      List.fold_left
        (fun acc p ->
          match Imap.find_opt p st.finish with
          | Some f -> max acc f
          | None -> acc)
        0. v.Ftcpg.preds
    in
    let release =
      match v.Ftcpg.kind with
      | Ftcpg.Proc_copy { pid; _ } -> (Graph.process g pid).Graph.release
      | Ftcpg.Msg_inst _ | Ftcpg.Sync_msg _ | Ftcpg.Sync_proc _ -> 0.
    in
    let dn = decision_node v in
    let knowledge =
      List.fold_left
        (fun acc l -> max acc (literal_available st l ~decision_node:dn))
        0.
        (Cond.literals v.Ftcpg.guard)
    in
    max arrivals (max release knowledge)
  in

  (* Natural (ASAP) placement of a vertex from its base time. *)
  let natural_place st (v : Ftcpg.vertex) base =
    match v.Ftcpg.kind with
    | Ftcpg.Proc_copy _ ->
        let n = Option.get v.Ftcpg.exec_node in
        let s =
          Timeline.earliest_gap st.nodes.(n) ~from_:base
            ~duration:v.Ftcpg.duration
        in
        (s, s +. v.Ftcpg.duration, Table.Node n)
    | (Ftcpg.Msg_inst _ | Ftcpg.Sync_msg _) when v.Ftcpg.on_bus ->
        let src = Option.get v.Ftcpg.src_node in
        let s, f =
          Busalloc.probe st.bus ~src ~size:v.Ftcpg.msg_size ~earliest:base
        in
        (s, f, Table.Bus)
    | Ftcpg.Msg_inst _ | Ftcpg.Sync_msg _ | Ftcpg.Sync_proc _ ->
        (base, base, Table.Local)
  in

  (* Placement respecting a fixed (frozen) start when one exists.
     Returns the placement plus whether the pre-reserved window is
     already accounted for in the timelines. *)
  let place st (v : Ftcpg.vertex) =
    let base = base_time st v in
    match Hashtbl.find_opt fixed v.Ftcpg.vid with
    | Some f when v.Ftcpg.frozen ->
        if base <= f +. eps then
          let resource =
            match v.Ftcpg.kind with
            | Ftcpg.Proc_copy _ -> Table.Node (Option.get v.Ftcpg.exec_node)
            | (Ftcpg.Msg_inst _ | Ftcpg.Sync_msg _) when v.Ftcpg.on_bus ->
                Table.Bus
            | Ftcpg.Msg_inst _ | Ftcpg.Sync_msg _ | Ftcpg.Sync_proc _ ->
                Table.Local
          in
          (f, f +. v.Ftcpg.duration, resource, true)
        else begin
          (* The frozen time is too early in this track: demand more. *)
          let s, fin, r = natural_place st v base in
          demand v.Ftcpg.vid s;
          (s, fin, r, false)
        end
    | Some _ | None ->
        let s, fin, r = natural_place st v base in
        if v.Ftcpg.frozen then demand v.Ftcpg.vid s;
        (s, fin, r, false)
  in

  let commit st (v : Ftcpg.vertex) (start, fin, resource, prereserved) =
    let nodes = Array.copy st.nodes in
    let bus = ref st.bus in
    if not prereserved then begin
      match resource with
      | Table.Node n ->
          nodes.(n) <- Timeline.reserve nodes.(n) ~start ~finish:fin
      | Table.Bus ->
          let src = Option.get v.Ftcpg.src_node in
          bus := Busalloc.reserve_window st.bus ~src ~start ~finish:fin
      | Table.Local -> ()
    end;
    let entry =
      { Table.item = Table.Exec v.Ftcpg.vid; guard = st.guard; start;
        finish = fin; resource }
    in
    if v.Ftcpg.conditional then
      Ftes_util.Pqueue.push st.pending (fin, v.Ftcpg.vid);
    let reveal =
      if v.Ftcpg.conditional then Imap.add v.Ftcpg.vid fin st.reveal
      else st.reveal
    in
    {
      st with
      nodes;
      bus = !bus;
      finish = Imap.add v.Ftcpg.vid fin st.finish;
      reveal;
      entries = entry :: st.entries;
      makespan = max st.makespan fin;
    }
  in

  let schedule_bcast st (tr, vc) =
    if nnodes <= 1 then { st with bcast = Imap.add vc tr st.bcast }
    else
      let src =
        match (vert vc).Ftcpg.exec_node with
        | Some n -> n
        | None -> 0
      in
      let bus, (s, f) =
        Busalloc.place st.bus ~src ~size:params.cond_size ~earliest:tr
      in
      let entry =
        { Table.item = Table.Bcast vc; guard = st.guard; start = s;
          finish = f; resource = Table.Bus }
      in
      {
        st with
        bus;
        bcast = Imap.add vc f st.bcast;
        entries = entry :: st.entries;
      }
  in

  let rec run st =
    let next_reveal =
      match Ftes_util.Pqueue.peek st.pending with
      | None -> infinity
      | Some (t, _) -> t
    in
    (* Candidates placeable before the next revelation. *)
    let best = ref None in
    for vid = 0 to nverts - 1 do
      let v = vert vid in
      if ready st v then begin
        let ((s, _, _, _) as placement) = place st v in
        if s < next_reveal -. eps then
          let better =
            match !best with
            | None -> true
            | Some (s', v', _) ->
                s < s' -. eps
                || (Float.abs (s -. s') <= eps
                   && pcp.(v.Ftcpg.vid) > pcp.(v'.Ftcpg.vid))
          in
          if better then best := Some (s, v, placement)
      end
    done;
    match !best with
    | Some (_, v, placement) -> run (commit st v placement)
    | None -> (
        match Ftes_util.Pqueue.peek st.pending with
        | Some (tr, vc) ->
            let st = schedule_bcast st (tr, vc) in
            ignore (Ftes_util.Pqueue.pop st.pending);
            let branch_nf =
              {
                st with
                guard = Cond.add_exn st.guard { Cond.cond = vc; fault = false };
              }
            in
            let results_f =
              if st.faults < k then
                run
                  {
                    st with
                    guard = Cond.add_exn st.guard { Cond.cond = vc; fault = true };
                    faults = st.faults + 1;
                    pending = Ftes_util.Pqueue.copy st.pending;
                  }
              else []
            in
            results_f @ run branch_nf
        | None ->
            (* Leaf: every vertex reachable in this scenario must be done. *)
            for vid = 0 to nverts - 1 do
              let v = vert vid in
              if
                Cond.implies st.guard v.Ftcpg.guard
                && not (Imap.mem vid st.finish)
              then
                raise
                  (Blocked
                     (Printf.sprintf "vertex %s never activated in scenario %s"
                        v.Ftcpg.name
                        (Cond.to_string ~name:(Ftcpg.cond_name ftcpg) st.guard)))
            done;
            incr leaf_count;
            if !leaf_count > params.max_tracks then
              raise (Too_many_tracks params.max_tracks);
            [ (st.entries, { Table.scenario = st.guard; makespan = st.makespan }) ])
  in

  let initial_state () =
    let nodes = Array.make nnodes Timeline.empty in
    let bus = ref (Busalloc.create bus_spec ~nodes:nnodes) in
    (* Pre-reserve the windows of frozen activations: transparency means
       no other activation may use (or even observe) those windows.
       Demands from independent tracks may collide; collisions bump the
       later window forward (monotone, so the fixpoint still
       terminates). *)
    let fixed_sorted =
      List.sort compare
        (Hashtbl.fold (fun vid f acc -> (f, vid) :: acc) fixed [])
    in
    List.iter
      (fun (f, vid) ->
        let v = vert vid in
        match v.Ftcpg.kind with
        | Ftcpg.Proc_copy _ ->
            let n = Option.get v.Ftcpg.exec_node in
            let s =
              Timeline.earliest_gap nodes.(n) ~from_:f
                ~duration:v.Ftcpg.duration
            in
            if s > f +. eps then Hashtbl.replace fixed vid s;
            nodes.(n) <-
              Timeline.reserve nodes.(n) ~start:s ~finish:(s +. v.Ftcpg.duration)
        | (Ftcpg.Msg_inst _ | Ftcpg.Sync_msg _) when v.Ftcpg.on_bus ->
            let src = match v.Ftcpg.src_node with Some n -> n | None -> 0 in
            let s, fin =
              Busalloc.probe !bus ~src ~size:v.Ftcpg.msg_size ~earliest:f
            in
            if s > f +. eps then Hashtbl.replace fixed vid s;
            bus := Busalloc.reserve_window !bus ~src ~start:s ~finish:fin
        | Ftcpg.Msg_inst _ | Ftcpg.Sync_msg _ | Ftcpg.Sync_proc _ -> ())
      fixed_sorted;
    {
      guard = Cond.true_;
      faults = 0;
      nodes;
      bus = !bus;
      finish = Imap.empty;
      reveal = Imap.empty;
      bcast = Imap.empty;
      pending = Ftes_util.Pqueue.create ~cmp:compare;
      entries = [];
      makespan = 0.;
    }
  in

  let rec iterate iter =
    if iter > params.max_fix_iters then raise (Fixpoint_diverged iter);
    Telemetry.incr c_fix_iterations;
    Hashtbl.reset demands;
    leaf_count := 0;
    let results = run (initial_state ()) in
    let changed = ref false in
    Hashtbl.iter
      (fun vid t ->
        let cur = Hashtbl.find_opt fixed vid in
        match cur with
        | Some f when t <= f +. eps -> ()
        | Some _ | None ->
            changed := true;
            Hashtbl.replace fixed vid t)
      demands;
    if !changed then iterate (iter + 1)
    else begin
      let entries = List.concat_map (fun (es, _) -> List.rev es) results in
      let tracks = List.map snd results in
      if Telemetry.enabled () then begin
        Telemetry.set_gauge "sched.tracks"
          (float_of_int (List.length tracks));
        Telemetry.set_gauge "sched.entries"
          (float_of_int (List.length entries))
      end;
      Table.make ~ftcpg ~entries ~tracks
    end
  in
  iterate 1
