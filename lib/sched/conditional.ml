module Cond = Ftes_ftcpg.Cond
module Ftcpg = Ftes_ftcpg.Ftcpg
module Problem = Ftes_ftcpg.Problem
module Graph = Ftes_app.Graph
module Arch = Ftes_arch.Arch
module Bus = Ftes_arch.Bus
module Imap = Map.Make (Int)
module Iset = Set.Make (Int)
module Cowarray = Ftes_util.Cowarray
module Telemetry = Ftes_util.Telemetry

let c_fix_iterations = Telemetry.counter "sched.fix_iterations"
let c_ready_hits = Telemetry.counter "sched.ready_hits"
let c_cache_inval = Telemetry.counter "sched.cache_invalidations"
let c_par_forks = Telemetry.counter "sched.par_forks"

type params = {
  cond_size : float;
  max_tracks : int;
  max_fix_iters : int;
  fan_depth : int;
}

let default_params =
  { cond_size = 1.; max_tracks = 20_000; max_fix_iters = 64; fan_depth = 6 }

exception Blocked of string
exception Too_many_tracks of int
exception Fixpoint_diverged of int

let eps = 1e-6

(* Partial-critical-path priority: longest downstream chain. *)
let priorities ftcpg =
  let n = Ftcpg.vertex_count ftcpg in
  let pcp = Array.make n 0. in
  for vid = n - 1 downto 0 do
    let v = Ftcpg.vertex ftcpg vid in
    let down =
      List.fold_left (fun acc s -> max acc pcp.(s)) 0. v.Ftcpg.succs
    in
    pcp.(vid) <- v.Ftcpg.duration +. down
  done;
  pcp

(* ------------------------------------------------------------------ *)
(* Reference implementation: the direct transcription of the paper's
   algorithm, kept as the oracle for digest tests and as the baseline
   of the scheduler-scaling bench. Rescans every vertex after each
   commit and copies the full timeline array per commit. *)
(* ------------------------------------------------------------------ *)

type ref_state = {
  r_guard : Cond.guard;
  r_faults : int;
  r_nodes : Timeline.t array;
  r_bus : Busalloc.t;
  r_finish : float Imap.t;  (* scheduled vertices -> finish time *)
  r_reveal : float Imap.t;  (* condition -> revelation time *)
  r_bcast : float Imap.t;  (* condition -> broadcast arrival *)
  r_pending : (float * int) Ftes_util.Pqueue.t;
      (* unrevealed conditions, min-heap by revelation time. Branch
         states share physical queues only when at most one branch is
         still live: [commit] pushes in place (the parent state is dead
         once its successor exists) and a fork hands the fault branch a
         [Pqueue.copy] while the no-fault branch keeps the original. *)
  r_entries : Table.entry list;  (* reversed *)
  r_makespan : float;
}

let schedule_reference ?(params = default_params) ftcpg =
  Telemetry.with_span ~cat:"sched" "sched.conditional.ref" @@ fun () ->
  let problem = Ftcpg.problem ftcpg in
  let k = problem.Problem.k in
  let g = Problem.graph problem in
  let arch = problem.Problem.arch in
  let bus_spec = Arch.bus arch in
  let nnodes = Arch.node_count arch in
  let nverts = Ftcpg.vertex_count ftcpg in
  let pcp = priorities ftcpg in
  let vert = Ftcpg.vertex ftcpg in
  (* Frozen start times being fixed across iterations. *)
  let fixed : (int, float) Hashtbl.t = Hashtbl.create 16 in
  (* New or raised start demands observed during one exploration. *)
  let demands : (int, float) Hashtbl.t = Hashtbl.create 16 in
  let demand vid t =
    let cur = try Hashtbl.find demands vid with Not_found -> neg_infinity in
    if t > cur then Hashtbl.replace demands vid t
  in
  let leaf_count = ref 0 in

  let literal_available st (l : Cond.literal) ~decision_node =
    let reveal =
      match Imap.find_opt l.Cond.cond st.r_reveal with
      | Some t -> t
      | None -> infinity (* not yet revealed: cannot commit *)
    in
    match decision_node with
    | None -> reveal
    | Some n -> (
        match (vert l.Cond.cond).Ftcpg.exec_node with
        | Some pn when pn = n -> reveal
        | Some _ | None -> (
            match Imap.find_opt l.Cond.cond st.r_bcast with
            | Some t -> t
            | None -> infinity))
  in

  let decision_node (v : Ftcpg.vertex) =
    match v.Ftcpg.kind with
    | Ftcpg.Proc_copy _ -> v.Ftcpg.exec_node
    | Ftcpg.Msg_inst _ | Ftcpg.Sync_msg _ ->
        if v.Ftcpg.on_bus then v.Ftcpg.src_node else None
    | Ftcpg.Sync_proc _ -> None
  in

  let ready st (v : Ftcpg.vertex) =
    (not (Imap.mem v.Ftcpg.vid st.r_finish))
    && Cond.implies st.r_guard v.Ftcpg.guard
    && List.for_all
         (fun p ->
           Imap.mem p st.r_finish
           || not (Cond.compatible (vert p).Ftcpg.guard st.r_guard))
         v.Ftcpg.preds
  in

  let base_time st (v : Ftcpg.vertex) =
    let arrivals =
      List.fold_left
        (fun acc p ->
          match Imap.find_opt p st.r_finish with
          | Some f -> max acc f
          | None -> acc)
        0. v.Ftcpg.preds
    in
    let release =
      match v.Ftcpg.kind with
      | Ftcpg.Proc_copy { pid; _ } -> (Graph.process g pid).Graph.release
      | Ftcpg.Msg_inst _ | Ftcpg.Sync_msg _ | Ftcpg.Sync_proc _ -> 0.
    in
    let dn = decision_node v in
    let knowledge =
      List.fold_left
        (fun acc l -> max acc (literal_available st l ~decision_node:dn))
        0.
        (Cond.literals v.Ftcpg.guard)
    in
    max arrivals (max release knowledge)
  in

  (* Natural (ASAP) placement of a vertex from its base time. *)
  let natural_place st (v : Ftcpg.vertex) base =
    match v.Ftcpg.kind with
    | Ftcpg.Proc_copy _ ->
        let n = Option.get v.Ftcpg.exec_node in
        let s =
          Timeline.earliest_gap st.r_nodes.(n) ~from_:base
            ~duration:v.Ftcpg.duration
        in
        (s, s +. v.Ftcpg.duration, Table.Node n)
    | (Ftcpg.Msg_inst _ | Ftcpg.Sync_msg _) when v.Ftcpg.on_bus ->
        let src = Option.get v.Ftcpg.src_node in
        let s, f =
          Busalloc.probe st.r_bus ~src ~size:v.Ftcpg.msg_size ~earliest:base
        in
        (s, f, Table.Bus)
    | Ftcpg.Msg_inst _ | Ftcpg.Sync_msg _ | Ftcpg.Sync_proc _ ->
        (base, base, Table.Local)
  in

  (* Placement respecting a fixed (frozen) start when one exists.
     Returns the placement plus whether the pre-reserved window is
     already accounted for in the timelines. *)
  let place st (v : Ftcpg.vertex) =
    let base = base_time st v in
    match Hashtbl.find_opt fixed v.Ftcpg.vid with
    | Some f when v.Ftcpg.frozen ->
        if base <= f +. eps then
          let resource =
            match v.Ftcpg.kind with
            | Ftcpg.Proc_copy _ -> Table.Node (Option.get v.Ftcpg.exec_node)
            | (Ftcpg.Msg_inst _ | Ftcpg.Sync_msg _) when v.Ftcpg.on_bus ->
                Table.Bus
            | Ftcpg.Msg_inst _ | Ftcpg.Sync_msg _ | Ftcpg.Sync_proc _ ->
                Table.Local
          in
          (f, f +. v.Ftcpg.duration, resource, true)
        else begin
          (* The frozen time is too early in this track: demand more. *)
          let s, fin, r = natural_place st v base in
          demand v.Ftcpg.vid s;
          (s, fin, r, false)
        end
    | Some _ | None ->
        let s, fin, r = natural_place st v base in
        if v.Ftcpg.frozen then demand v.Ftcpg.vid s;
        (s, fin, r, false)
  in

  let commit st (v : Ftcpg.vertex) (start, fin, resource, prereserved) =
    let nodes = Array.copy st.r_nodes in
    let bus = ref st.r_bus in
    if not prereserved then begin
      match resource with
      | Table.Node n ->
          nodes.(n) <- Timeline.reserve nodes.(n) ~start ~finish:fin
      | Table.Bus ->
          let src = Option.get v.Ftcpg.src_node in
          bus := Busalloc.reserve_window st.r_bus ~src ~start ~finish:fin
      | Table.Local -> ()
    end;
    let entry =
      { Table.item = Table.Exec v.Ftcpg.vid; guard = st.r_guard; start;
        finish = fin; resource }
    in
    if v.Ftcpg.conditional then
      Ftes_util.Pqueue.push st.r_pending (fin, v.Ftcpg.vid);
    let reveal =
      if v.Ftcpg.conditional then Imap.add v.Ftcpg.vid fin st.r_reveal
      else st.r_reveal
    in
    {
      st with
      r_nodes = nodes;
      r_bus = !bus;
      r_finish = Imap.add v.Ftcpg.vid fin st.r_finish;
      r_reveal = reveal;
      r_entries = entry :: st.r_entries;
      r_makespan = max st.r_makespan fin;
    }
  in

  let schedule_bcast st (tr, vc) =
    if nnodes <= 1 then { st with r_bcast = Imap.add vc tr st.r_bcast }
    else
      let src =
        match (vert vc).Ftcpg.exec_node with
        | Some n -> n
        | None -> 0
      in
      let bus, (s, f) =
        Busalloc.place st.r_bus ~src ~size:params.cond_size ~earliest:tr
      in
      let entry =
        { Table.item = Table.Bcast vc; guard = st.r_guard; start = s;
          finish = f; resource = Table.Bus }
      in
      {
        st with
        r_bus = bus;
        r_bcast = Imap.add vc f st.r_bcast;
        r_entries = entry :: st.r_entries;
      }
  in

  let rec run st =
    let next_reveal =
      match Ftes_util.Pqueue.peek st.r_pending with
      | None -> infinity
      | Some (t, _) -> t
    in
    (* Candidates placeable before the next revelation. *)
    let best = ref None in
    for vid = 0 to nverts - 1 do
      let v = vert vid in
      if ready st v then begin
        let ((s, _, _, _) as placement) = place st v in
        if s < next_reveal -. eps then
          let better =
            match !best with
            | None -> true
            | Some (s', v', _) ->
                s < s' -. eps
                || (Float.abs (s -. s') <= eps
                   && pcp.(v.Ftcpg.vid) > pcp.(v'.Ftcpg.vid))
          in
          if better then best := Some (s, v, placement)
      end
    done;
    match !best with
    | Some (_, v, placement) -> run (commit st v placement)
    | None -> (
        match Ftes_util.Pqueue.peek st.r_pending with
        | Some (tr, vc) ->
            let st = schedule_bcast st (tr, vc) in
            ignore (Ftes_util.Pqueue.pop st.r_pending);
            let branch_nf =
              {
                st with
                r_guard =
                  Cond.add_exn st.r_guard { Cond.cond = vc; fault = false };
              }
            in
            let results_f =
              if st.r_faults < k then
                run
                  {
                    st with
                    r_guard =
                      Cond.add_exn st.r_guard { Cond.cond = vc; fault = true };
                    r_faults = st.r_faults + 1;
                    r_pending = Ftes_util.Pqueue.copy st.r_pending;
                  }
              else []
            in
            results_f @ run branch_nf
        | None ->
            (* Leaf: every vertex reachable in this scenario must be done. *)
            for vid = 0 to nverts - 1 do
              let v = vert vid in
              if
                Cond.implies st.r_guard v.Ftcpg.guard
                && not (Imap.mem vid st.r_finish)
              then
                raise
                  (Blocked
                     (Printf.sprintf "vertex %s never activated in scenario %s"
                        v.Ftcpg.name
                        (Cond.to_string ~name:(Ftcpg.cond_name ftcpg)
                           st.r_guard)))
            done;
            incr leaf_count;
            if !leaf_count > params.max_tracks then
              raise (Too_many_tracks params.max_tracks);
            [
              ( st.r_entries,
                { Table.scenario = st.r_guard; makespan = st.r_makespan } );
            ])
  in

  let initial_state () =
    let nodes = Array.make nnodes Timeline.empty in
    let bus = ref (Busalloc.create bus_spec ~nodes:nnodes) in
    (* Pre-reserve the windows of frozen activations: transparency means
       no other activation may use (or even observe) those windows.
       Demands from independent tracks may collide; collisions bump the
       later window forward (monotone, so the fixpoint still
       terminates). *)
    let fixed_sorted =
      List.sort compare
        (Hashtbl.fold (fun vid f acc -> (f, vid) :: acc) fixed [])
    in
    List.iter
      (fun (f, vid) ->
        let v = vert vid in
        match v.Ftcpg.kind with
        | Ftcpg.Proc_copy _ ->
            let n = Option.get v.Ftcpg.exec_node in
            let s =
              Timeline.earliest_gap nodes.(n) ~from_:f
                ~duration:v.Ftcpg.duration
            in
            if s > f +. eps then Hashtbl.replace fixed vid s;
            nodes.(n) <-
              Timeline.reserve nodes.(n) ~start:s
                ~finish:(s +. v.Ftcpg.duration)
        | (Ftcpg.Msg_inst _ | Ftcpg.Sync_msg _) when v.Ftcpg.on_bus ->
            let src = match v.Ftcpg.src_node with Some n -> n | None -> 0 in
            let s, fin =
              Busalloc.probe !bus ~src ~size:v.Ftcpg.msg_size ~earliest:f
            in
            if s > f +. eps then Hashtbl.replace fixed vid s;
            bus := Busalloc.reserve_window !bus ~src ~start:s ~finish:fin
        | Ftcpg.Msg_inst _ | Ftcpg.Sync_msg _ | Ftcpg.Sync_proc _ -> ())
      fixed_sorted;
    {
      r_guard = Cond.true_;
      r_faults = 0;
      r_nodes = nodes;
      r_bus = !bus;
      r_finish = Imap.empty;
      r_reveal = Imap.empty;
      r_bcast = Imap.empty;
      r_pending = Ftes_util.Pqueue.create ~cmp:compare;
      r_entries = [];
      r_makespan = 0.;
    }
  in

  let rec iterate iter =
    if iter > params.max_fix_iters then raise (Fixpoint_diverged iter);
    Telemetry.incr c_fix_iterations;
    Hashtbl.reset demands;
    leaf_count := 0;
    let results = run (initial_state ()) in
    let changed = ref false in
    Hashtbl.iter
      (fun vid t ->
        let cur = Hashtbl.find_opt fixed vid in
        match cur with
        | Some f when t <= f +. eps -> ()
        | Some _ | None ->
            changed := true;
            Hashtbl.replace fixed vid t)
      demands;
    if !changed then iterate (iter + 1)
    else begin
      let entries = List.concat_map (fun (es, _) -> List.rev es) results in
      let tracks = List.map snd results in
      if Telemetry.enabled () then begin
        Telemetry.set_gauge "sched.tracks"
          (float_of_int (List.length tracks));
        Telemetry.set_gauge "sched.entries"
          (float_of_int (List.length entries))
      end;
      Table.make ~ftcpg ~entries ~tracks
    end
  in
  iterate 1

(* ------------------------------------------------------------------ *)
(* Production implementation: same algorithm, same output (pinned by
   digest tests against [schedule_reference]), with three independent
   optimizations.

   {b Incremental ready set.} A vertex is ready iff its guard literals
   are all in the track guard and every predecessor is finished or
   incompatible with the track. Instead of re-deriving this for every
   vertex after every commit, each track keeps per-vertex counters:
   [unmet] (predecessors neither finished nor incompatible) and [ggap]
   (guard literals not yet in the track guard), plus a [dead] flag
   (vertex incompatible with the track). A commit decrements [unmet] of
   the committed vertex's successors; revealing a condition outcome
   decrements [ggap] of the matching-polarity vertices and kills the
   opposite-polarity ones (which releases their successors). A vertex
   enters the ready set exactly when both counters reach zero. The set
   is iterated in ascending vertex id — the same order as the reference
   rescan, which matters because the eps-tolerant "better candidate"
   comparison is not transitive.

   {b Placement memoization.} For a ready vertex the base time is a
   constant of the track (predecessor finishes are final, revelation
   and broadcast times are recorded before the literal can enter the
   guard), so its tentative placement only changes when the resource it
   targets does. Each cached placement stores the physical timeline
   (or bus allocator) it was computed against and self-invalidates by
   pointer comparison — a commit on one CPU leaves every other
   resource's cached placements valid. Frozen prereserved placements
   and [Local] items depend on nothing and stay valid for the whole
   track.

   {b Copy-on-write state + parallel subtrees.} The per-node timeline
   array is a persistent {!Ftes_util.Cowarray} (a commit copies an
   O(log nodes) path, not the whole array), so forking a track is
   cheap; the fault and no-fault subtrees of a revelation fork are
   independent and are fanned out over the {!Ftes_util.Par} pool. The
   tree is cut at [params.fan_depth] binary forks (a track whose fault
   budget is exhausted can never fork again and is shipped whole); the
   frontier is collected in depth-first order and the per-subtree
   results are spliced back in that order, so the track list — and the
   resulting table — is byte-identical for every [jobs]. *)
(* ------------------------------------------------------------------ *)

(* Dependency of a cached placement: the physical resource state it was
   computed against. Valid while the state's pointer is unchanged. *)
type dep = Dep_none | Dep_node of Timeline.t | Dep_bus of Busalloc.t

type centry = {
  c_start : float;
  c_fin : float;
  c_res : Table.resource;
  c_pre : bool;  (* placed inside a pre-reserved frozen window *)
  c_dep : dep;
}

type state = {
  guard : Cond.guard;
  faults : int;
  nodes : Timeline.t Cowarray.t;
  bus : Busalloc.t;
  finish : float Imap.t;  (* scheduled vertices -> finish time *)
  reveal : float Imap.t;  (* condition -> revelation time *)
  bcast : float Imap.t;  (* condition -> broadcast arrival *)
  pending : (float * int) Ftes_util.Pqueue.t;
      (* unrevealed conditions, min-heap by revelation time. Mutable
         structures (this queue and the arrays below) are shared only
         while at most one branch is live: [commit] and [apply_literal]
         update them in place (the parent state is dead once its
         successor exists) and a fork hands the fault branch copies
         while the no-fault branch keeps the originals. *)
  entries : Table.entry list;  (* reversed *)
  makespan : float;
  ready : Iset.t;  (* vertices with unmet = 0, ggap = 0, unscheduled *)
  unmet : int array;  (* preds neither finished nor dead, per vertex *)
  ggap : int array;  (* guard literals not yet in the track guard *)
  dead : Bytes.t;  (* '\001' when incompatible with the track guard *)
  cache : centry option array;  (* memoized tentative placements *)
}

let schedule ?(params = default_params) ?(jobs = 1) ftcpg =
  Telemetry.with_span ~cat:"sched" "sched.conditional" @@ fun () ->
  let problem = Ftcpg.problem ftcpg in
  let k = problem.Problem.k in
  let g = Problem.graph problem in
  let arch = problem.Problem.arch in
  let bus_spec = Arch.bus arch in
  let nnodes = Arch.node_count arch in
  let nverts = Ftcpg.vertex_count ftcpg in
  let pcp = priorities ftcpg in
  let vert = Ftcpg.vertex ftcpg in
  (* Static per-graph indices for the incremental bookkeeping. *)
  let npreds0 = Array.init nverts (fun vid -> List.length (vert vid).Ftcpg.preds) in
  let nlits0 =
    Array.init nverts (fun vid ->
        List.length (Cond.literals (vert vid).Ftcpg.guard))
  in
  (* Vertices whose guard contains the {cond, fault} literal, per cond
     id and polarity (cond ids are vertex ids of conditional vertices). *)
  let by_lit_t = Array.make nverts [] in
  let by_lit_f = Array.make nverts [] in
  for vid = nverts - 1 downto 0 do
    List.iter
      (fun (l : Cond.literal) ->
        if l.Cond.fault then by_lit_t.(l.Cond.cond) <- vid :: by_lit_t.(l.Cond.cond)
        else by_lit_f.(l.Cond.cond) <- vid :: by_lit_f.(l.Cond.cond))
      (Cond.literals (vert vid).Ftcpg.guard)
  done;
  let ready0 =
    let r = ref Iset.empty in
    for vid = 0 to nverts - 1 do
      if npreds0.(vid) = 0 && nlits0.(vid) = 0 then r := Iset.add vid !r
    done;
    !r
  in
  (* Frozen start times being fixed across iterations. Read-only while
     tracks are explored (including from worker domains); merged with
     the observed demands between fixpoint iterations. *)
  let fixed : (int, float) Hashtbl.t = Hashtbl.create 16 in
  (* New or raised start demands observed during one exploration. *)
  let demands : (int, float) Hashtbl.t = Hashtbl.create 16 in
  let demand_main vid t =
    let cur = try Hashtbl.find demands vid with Not_found -> neg_infinity in
    if t > cur then Hashtbl.replace demands vid t
  in
  let leaf_count = Atomic.make 0 in

  let literal_available st (l : Cond.literal) ~decision_node =
    let reveal =
      match Imap.find_opt l.Cond.cond st.reveal with
      | Some t -> t
      | None -> infinity (* not yet revealed: cannot commit *)
    in
    match decision_node with
    | None -> reveal
    | Some n -> (
        match (vert l.Cond.cond).Ftcpg.exec_node with
        | Some pn when pn = n -> reveal
        | Some _ | None -> (
            match Imap.find_opt l.Cond.cond st.bcast with
            | Some t -> t
            | None -> infinity))
  in

  let decision_node (v : Ftcpg.vertex) =
    match v.Ftcpg.kind with
    | Ftcpg.Proc_copy _ -> v.Ftcpg.exec_node
    | Ftcpg.Msg_inst _ | Ftcpg.Sync_msg _ ->
        if v.Ftcpg.on_bus then v.Ftcpg.src_node else None
    | Ftcpg.Sync_proc _ -> None
  in

  let base_time st (v : Ftcpg.vertex) =
    let arrivals =
      List.fold_left
        (fun acc p ->
          match Imap.find_opt p st.finish with
          | Some f -> max acc f
          | None -> acc)
        0. v.Ftcpg.preds
    in
    let release =
      match v.Ftcpg.kind with
      | Ftcpg.Proc_copy { pid; _ } -> (Graph.process g pid).Graph.release
      | Ftcpg.Msg_inst _ | Ftcpg.Sync_msg _ | Ftcpg.Sync_proc _ -> 0.
    in
    let dn = decision_node v in
    let knowledge =
      List.fold_left
        (fun acc l -> max acc (literal_available st l ~decision_node:dn))
        0.
        (Cond.literals v.Ftcpg.guard)
    in
    max arrivals (max release knowledge)
  in

  (* Natural (ASAP) placement of a vertex from its base time. *)
  let natural_place st (v : Ftcpg.vertex) base =
    match v.Ftcpg.kind with
    | Ftcpg.Proc_copy _ ->
        let n = Option.get v.Ftcpg.exec_node in
        let s =
          Timeline.earliest_gap (Cowarray.get st.nodes n) ~from_:base
            ~duration:v.Ftcpg.duration
        in
        (s, s +. v.Ftcpg.duration, Table.Node n)
    | (Ftcpg.Msg_inst _ | Ftcpg.Sync_msg _) when v.Ftcpg.on_bus ->
        let src = Option.get v.Ftcpg.src_node in
        let s, f =
          Busalloc.probe st.bus ~src ~size:v.Ftcpg.msg_size ~earliest:base
        in
        (s, f, Table.Bus)
    | Ftcpg.Msg_inst _ | Ftcpg.Sync_msg _ | Ftcpg.Sync_proc _ ->
        (base, base, Table.Local)
  in

  (* Placement respecting a fixed (frozen) start when one exists.
     Returns the placement plus whether the pre-reserved window is
     already accounted for in the timelines. *)
  let place ~demand st (v : Ftcpg.vertex) =
    let base = base_time st v in
    match Hashtbl.find_opt fixed v.Ftcpg.vid with
    | Some f when v.Ftcpg.frozen ->
        if base <= f +. eps then
          let resource =
            match v.Ftcpg.kind with
            | Ftcpg.Proc_copy _ -> Table.Node (Option.get v.Ftcpg.exec_node)
            | (Ftcpg.Msg_inst _ | Ftcpg.Sync_msg _) when v.Ftcpg.on_bus ->
                Table.Bus
            | Ftcpg.Msg_inst _ | Ftcpg.Sync_msg _ | Ftcpg.Sync_proc _ ->
                Table.Local
          in
          (f, f +. v.Ftcpg.duration, resource, true)
        else begin
          (* The frozen time is too early in this track: demand more. *)
          let s, fin, r = natural_place st v base in
          demand v.Ftcpg.vid s;
          (s, fin, r, false)
        end
    | Some _ | None ->
        let s, fin, r = natural_place st v base in
        if v.Ftcpg.frozen then demand v.Ftcpg.vid s;
        (s, fin, r, false)
  in

  let dep_valid st e =
    match e.c_dep with
    | Dep_none -> true
    | Dep_node tl -> (
        match e.c_res with
        | Table.Node n -> tl == Cowarray.get st.nodes n
        | Table.Bus | Table.Local -> false)
    | Dep_bus b -> b == st.bus
  in
  let dep_of st res ~prereserved =
    if prereserved then Dep_none
    else
      match res with
      | Table.Node n -> Dep_node (Cowarray.get st.nodes n)
      | Table.Bus -> Dep_bus st.bus
      | Table.Local -> Dep_none
  in
  (* The base time of a ready vertex is a constant of its track, so a
     tentative placement stays valid until the resource it targets is
     touched (by a commit or a condition broadcast) — detected by
     physical equality with the recorded timeline / bus allocator.
     [demand] side effects are max-accumulated and the demanded start
     only depends on the same state, so skipping the recomputation on a
     hit never loses a demand. *)
  let cached_place ~demand st (v : Ftcpg.vertex) =
    let vid = v.Ftcpg.vid in
    match st.cache.(vid) with
    | Some e when dep_valid st e ->
        Telemetry.incr c_ready_hits;
        (e.c_start, e.c_fin, e.c_res, e.c_pre)
    | prev ->
        if prev <> None then Telemetry.incr c_cache_inval;
        let ((s, fin, res, pre) as placement) = place ~demand st v in
        st.cache.(vid) <-
          Some
            {
              c_start = s;
              c_fin = fin;
              c_res = res;
              c_pre = pre;
              c_dep = dep_of st res ~prereserved:pre;
            };
        placement
  in

  let commit st (v : Ftcpg.vertex) (start, fin, resource, prereserved) =
    let nodes, bus =
      if prereserved then (st.nodes, st.bus)
      else
        match resource with
        | Table.Node n ->
            ( Cowarray.set st.nodes n
                (Timeline.reserve (Cowarray.get st.nodes n) ~start ~finish:fin),
              st.bus )
        | Table.Bus ->
            let src = Option.get v.Ftcpg.src_node in
            (st.nodes, Busalloc.reserve_window st.bus ~src ~start ~finish:fin)
        | Table.Local -> (st.nodes, st.bus)
    in
    let entry =
      { Table.item = Table.Exec v.Ftcpg.vid; guard = st.guard; start;
        finish = fin; resource }
    in
    if v.Ftcpg.conditional then
      Ftes_util.Pqueue.push st.pending (fin, v.Ftcpg.vid);
    let reveal =
      if v.Ftcpg.conditional then Imap.add v.Ftcpg.vid fin st.reveal
      else st.reveal
    in
    let finish = Imap.add v.Ftcpg.vid fin st.finish in
    (* The committed vertex leaves the ready set; each successor loses
       one unmet predecessor and may become ready. *)
    let ready = ref (Iset.remove v.Ftcpg.vid st.ready) in
    List.iter
      (fun s ->
        st.unmet.(s) <- st.unmet.(s) - 1;
        if
          st.unmet.(s) = 0
          && st.ggap.(s) = 0
          && Bytes.get st.dead s = '\000'
          && not (Imap.mem s finish)
        then ready := Iset.add s !ready)
      v.Ftcpg.succs;
    {
      st with
      nodes;
      bus;
      finish;
      reveal;
      entries = entry :: st.entries;
      makespan = max st.makespan fin;
      ready = !ready;
    }
  in

  (* Extend the track guard with a revealed literal: matching-polarity
     vertices close one guard gap (and may become ready); opposite-
     polarity vertices become dead, permanently satisfying them as
     predecessors. A vertex gaining or losing here can never be in the
     ready set yet (its [ggap] was positive), and scheduled vertices
     never appear in either list (their guard literals were already in
     the track guard before this condition existed). *)
  let apply_literal st (l : Cond.literal) =
    let ready = ref st.ready in
    let same, opp =
      if l.Cond.fault then (by_lit_t.(l.Cond.cond), by_lit_f.(l.Cond.cond))
      else (by_lit_f.(l.Cond.cond), by_lit_t.(l.Cond.cond))
    in
    List.iter
      (fun vid ->
        if Bytes.get st.dead vid = '\000' then begin
          st.ggap.(vid) <- st.ggap.(vid) - 1;
          if
            st.ggap.(vid) = 0
            && st.unmet.(vid) = 0
            && not (Imap.mem vid st.finish)
          then ready := Iset.add vid !ready
        end)
      same;
    List.iter
      (fun vid ->
        if Bytes.get st.dead vid = '\000' then begin
          Bytes.set st.dead vid '\001';
          List.iter
            (fun s ->
              st.unmet.(s) <- st.unmet.(s) - 1;
              if
                st.unmet.(s) = 0
                && st.ggap.(s) = 0
                && Bytes.get st.dead s = '\000'
                && not (Imap.mem s st.finish)
              then ready := Iset.add s !ready)
            (vert vid).Ftcpg.succs
        end)
      opp;
    { st with guard = Cond.add_exn st.guard l; ready = !ready }
  in

  let schedule_bcast st (tr, vc) =
    if nnodes <= 1 then { st with bcast = Imap.add vc tr st.bcast }
    else
      let src =
        match (vert vc).Ftcpg.exec_node with
        | Some n -> n
        | None -> 0
      in
      let bus, (s, f) =
        Busalloc.place st.bus ~src ~size:params.cond_size ~earliest:tr
      in
      let entry =
        { Table.item = Table.Bcast vc; guard = st.guard; start = s;
          finish = f; resource = Table.Bus }
      in
      {
        st with
        bus;
        bcast = Imap.add vc f st.bcast;
        entries = entry :: st.entries;
      }
  in

  let fork_copy st =
    {
      st with
      pending = Ftes_util.Pqueue.copy st.pending;
      unmet = Array.copy st.unmet;
      ggap = Array.copy st.ggap;
      dead = Bytes.copy st.dead;
      cache = Array.copy st.cache;
    }
  in

  (* Depth-first exploration emitting, in DFS order, either finished
     tracks or — in collection mode, once [split] binary forks have
     been crossed — whole branch states for the parallel pool. A branch
     whose fault budget is exhausted can never fork again (exactly one
     leaf below) and is shipped whole as soon as it appears. With
     [collect = false] every subtree is explored in place and only
     tracks are emitted. *)
  let rec walk ~demand ~collect ~split ~sink st =
    let next_reveal =
      match Ftes_util.Pqueue.peek st.pending with
      | None -> infinity
      | Some (t, _) -> t
    in
    (* Candidates placeable before the next revelation, scanned in
       ascending vertex id like the reference loop (the eps-tolerant
       comparison is not transitive, so the order is part of the
       pinned behaviour). *)
    let best = ref None in
    Iset.iter
      (fun vid ->
        let v = vert vid in
        let ((s, _, _, _) as placement) = cached_place ~demand st v in
        if s < next_reveal -. eps then
          let better =
            match !best with
            | None -> true
            | Some (s', v', _) ->
                s < s' -. eps
                || (Float.abs (s -. s') <= eps
                   && pcp.(vid) > pcp.(v'.Ftcpg.vid))
          in
          if better then best := Some (s, v, placement))
      st.ready;
    match !best with
    | Some (_, v, placement) ->
        walk ~demand ~collect ~split ~sink (commit st v placement)
    | None -> (
        match Ftes_util.Pqueue.peek st.pending with
        | Some (tr, vc) ->
            let st = schedule_bcast st (tr, vc) in
            ignore (Ftes_util.Pqueue.pop st.pending);
            let child b ~split =
              if collect && (split <= 0 || b.faults >= k) then
                sink (`Branch b)
              else walk ~demand ~collect ~split ~sink b
            in
            if st.faults < k then begin
              (* The fault branch copies the mutable structures; the
                 no-fault branch keeps the originals (the parent state
                 is dead once both children exist). *)
              let bf = fork_copy st in
              let bf =
                apply_literal
                  { bf with faults = bf.faults + 1 }
                  { Cond.cond = vc; fault = true }
              in
              let bnf = apply_literal st { Cond.cond = vc; fault = false } in
              child bf ~split:(split - 1);
              child bnf ~split:(split - 1)
            end
            else begin
              let bnf = apply_literal st { Cond.cond = vc; fault = false } in
              child bnf ~split
            end
        | None ->
            (* Leaf: every vertex reachable in this scenario must be
               done. [ggap = 0] is exactly "the track guard implies the
               vertex guard". *)
            for vid = 0 to nverts - 1 do
              if st.ggap.(vid) = 0 && not (Imap.mem vid st.finish) then
                let v = vert vid in
                raise
                  (Blocked
                     (Printf.sprintf "vertex %s never activated in scenario %s"
                        v.Ftcpg.name
                        (Cond.to_string ~name:(Ftcpg.cond_name ftcpg) st.guard)))
            done;
            if Atomic.fetch_and_add leaf_count 1 + 1 > params.max_tracks then
              raise (Too_many_tracks params.max_tracks);
            sink
              (`Track
                (st.entries, { Table.scenario = st.guard; makespan = st.makespan })))
  in

  let walk_all ~demand st =
    let acc = ref [] in
    walk ~demand ~collect:false ~split:0
      ~sink:(fun it -> acc := it :: !acc)
      st;
    List.rev_map (function `Track r -> r | `Branch _ -> assert false) !acc
  in

  let initial_state () =
    let nodes = Array.make nnodes Timeline.empty in
    let bus = ref (Busalloc.create bus_spec ~nodes:nnodes) in
    (* Pre-reserve the windows of frozen activations: transparency means
       no other activation may use (or even observe) those windows.
       Demands from independent tracks may collide; collisions bump the
       later window forward (monotone, so the fixpoint still
       terminates). *)
    let fixed_sorted =
      List.sort compare
        (Hashtbl.fold (fun vid f acc -> (f, vid) :: acc) fixed [])
    in
    List.iter
      (fun (f, vid) ->
        let v = vert vid in
        match v.Ftcpg.kind with
        | Ftcpg.Proc_copy _ ->
            let n = Option.get v.Ftcpg.exec_node in
            let s =
              Timeline.earliest_gap nodes.(n) ~from_:f
                ~duration:v.Ftcpg.duration
            in
            if s > f +. eps then Hashtbl.replace fixed vid s;
            nodes.(n) <-
              Timeline.reserve nodes.(n) ~start:s
                ~finish:(s +. v.Ftcpg.duration)
        | (Ftcpg.Msg_inst _ | Ftcpg.Sync_msg _) when v.Ftcpg.on_bus ->
            let src = match v.Ftcpg.src_node with Some n -> n | None -> 0 in
            let s, fin =
              Busalloc.probe !bus ~src ~size:v.Ftcpg.msg_size ~earliest:f
            in
            if s > f +. eps then Hashtbl.replace fixed vid s;
            bus := Busalloc.reserve_window !bus ~src ~start:s ~finish:fin
        | Ftcpg.Msg_inst _ | Ftcpg.Sync_msg _ | Ftcpg.Sync_proc _ -> ())
      fixed_sorted;
    {
      guard = Cond.true_;
      faults = 0;
      nodes = Cowarray.of_array nodes;
      bus = !bus;
      finish = Imap.empty;
      reveal = Imap.empty;
      bcast = Imap.empty;
      pending = Ftes_util.Pqueue.create ~cmp:compare;
      entries = [];
      makespan = 0.;
      ready = ready0;
      unmet = Array.copy npreds0;
      ggap = Array.copy nlits0;
      dead = Bytes.make (max nverts 1) '\000';
      cache = Array.make nverts None;
    }
  in

  (* One exploration of the scenario tree. Sequentially for [jobs <= 1];
     otherwise the frontier below [fan_depth] binary forks is collected
     depth-first, the subtrees run on the pool with task-local demand
     tables (merged afterwards — max-accumulation is order-independent)
     and the per-subtree track lists are spliced back in frontier
     order, reproducing the sequential DFS order exactly. *)
  let run_tracks () =
    let st0 = initial_state () in
    if jobs <= 1 then walk_all ~demand:demand_main st0
    else begin
      let items = ref [] in
      walk ~demand:demand_main ~collect:true ~split:params.fan_depth
        ~sink:(fun it -> items := it :: !items)
        st0;
      let items = List.rev !items in
      let branches =
        List.filter_map
          (function `Branch st -> Some st | `Track _ -> None)
          items
      in
      Telemetry.add c_par_forks (List.length branches);
      let subtree_results =
        Ftes_util.Par.map ~jobs
          (fun st ->
            let local : (int, float) Hashtbl.t = Hashtbl.create 16 in
            let demand vid t =
              let cur =
                try Hashtbl.find local vid with Not_found -> neg_infinity
              in
              if t > cur then Hashtbl.replace local vid t
            in
            let tracks = walk_all ~demand st in
            (tracks, Hashtbl.fold (fun k v acc -> (k, v) :: acc) local []))
          branches
      in
      List.iter
        (fun (_, ds) -> List.iter (fun (vid, t) -> demand_main vid t) ds)
        subtree_results;
      let rec splice items results =
        match items with
        | [] -> []
        | `Track r :: rest -> r :: splice rest results
        | `Branch _ :: rest -> (
            match results with
            | (tracks, _) :: more -> tracks @ splice rest more
            | [] -> assert false)
      in
      splice items subtree_results
    end
  in

  let rec iterate iter =
    if iter > params.max_fix_iters then raise (Fixpoint_diverged iter);
    Telemetry.incr c_fix_iterations;
    Hashtbl.reset demands;
    Atomic.set leaf_count 0;
    let results =
      Telemetry.with_span ~cat:"sched" "sched.fix_iter" run_tracks
    in
    let changed = ref false in
    Hashtbl.iter
      (fun vid t ->
        let cur = Hashtbl.find_opt fixed vid in
        match cur with
        | Some f when t <= f +. eps -> ()
        | Some _ | None ->
            changed := true;
            Hashtbl.replace fixed vid t)
      demands;
    if !changed then iterate (iter + 1)
    else begin
      let entries = List.concat_map (fun (es, _) -> List.rev es) results in
      let tracks = List.map snd results in
      if Telemetry.enabled () then begin
        Telemetry.set_gauge "sched.tracks"
          (float_of_int (List.length tracks));
        Telemetry.set_gauge "sched.entries"
          (float_of_int (List.length entries))
      end;
      Table.make ~ftcpg ~entries ~tracks
    end
  in
  iterate 1
