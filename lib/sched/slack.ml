module Problem = Ftes_ftcpg.Problem
module Mapping = Ftes_ftcpg.Mapping
module Graph = Ftes_app.Graph
module App = Ftes_app.App
module Policy = Ftes_app.Policy
module Fttime = Ftes_app.Fttime
module Transparency = Ftes_app.Transparency
module Wcet = Ftes_arch.Wcet
module Arch = Ftes_arch.Arch
module Bus = Ftes_arch.Bus

type placement = {
  pid : int;
  copy : int;
  node : int;
  start : float;
  finish : float;
  worst_finish : float;
}

type msg_placement = {
  mid : int;
  copy : int;
  start : float;
  finish : float;
  on_bus : bool;
}

type result = {
  root_makespan : float;
  slack_term : float;
  length : float;
  placements : placement list;
  msg_placements : msg_placement list;
  penalties : float array;
}

(* Downstream critical-path priorities over the application graph,
   using average WCETs (mapping-independent, computed once). *)
let priorities g wcet bus =
  let n = Graph.process_count g in
  let prio = Array.make n 0. in
  List.iter
    (fun pid ->
      let down =
        List.fold_left
          (fun acc mid ->
            let m = Graph.message g mid in
            max acc
              (Bus.tx_time bus ~size:m.Graph.size +. prio.(m.Graph.dst)))
          0. (Graph.out_messages g pid)
      in
      prio.(pid) <- Wcet.average_wcet wcet ~pid +. down)
    (List.rev (Graph.topological_order g));
  prio

let evaluate ?(ft = true) (problem : Problem.t) =
  let g = Problem.graph problem in
  let app = problem.Problem.app in
  let transparency = app.App.transparency in
  let k = problem.Problem.k in
  let arch = problem.Problem.arch in
  let bus = Arch.bus arch in
  let mapping = problem.Problem.mapping in
  let nprocs = Graph.process_count g in
  let prio = priorities g problem.Problem.wcet bus in
  let copies pid =
    if ft then Policy.replica_count problem.Problem.policies.(pid) else 1
  in
  (* Per-copy fault-free and worst-case execution lengths. *)
  let lengths pid copy =
    let c = Problem.copy_wcet problem ~pid ~copy in
    if not ft then (c, c)
    else
      let plan = Problem.copy_plan problem ~pid ~copy in
      let o = (Graph.process g pid).Graph.overheads in
      let recoveries = min plan.Policy.recoveries k in
      let e0 = Fttime.no_fault_length ~c o ~checkpoints:plan.Policy.checkpoints in
      let w =
        Fttime.worst_case_length ~c o ~checkpoints:plan.Policy.checkpoints
          ~recoveries
      in
      (e0, w)
  in
  let node_tl = Array.make (Arch.node_count arch) Timeline.empty in
  let busa = ref (Busalloc.create bus ~nodes:(Arch.node_count arch)) in
  let placements = Array.make nprocs [] in
  (* Copy-indexed views, filled once when a process (or its outgoing
     transmissions) is placed: every consumer then reads its producers
     by direct indexing instead of List.find / hashing per copy. *)
  let by_copy : placement array array = Array.make nprocs [||] in
  let msg_by_copy : msg_placement option array array =
    Array.make (Array.length (Graph.messages g)) [||]
  in
  (* msg transmissions: (mid, producer copy) -> msg_placement *)
  let msgs : (int * int, msg_placement) Hashtbl.t = Hashtbl.create 64 in
  let place_on_bus ~src ~size ~earliest =
    let busa', w = Busalloc.place !busa ~src ~size ~earliest in
    busa := busa';
    w
  in
  (* Arrival of message [mid] at a consumer copy running on [cnode] in
     the fault-free root schedule. With active replication every copy
     delivers a valid input when no fault occurs, so the consumer
     proceeds with the earliest one; waiting for a later replica is a
     fault-scenario cost accounted in the slack term. *)
  let arrival_at mid cnode =
    let m = Graph.message g mid in
    let src_pid = m.Graph.src in
    let mps = msg_by_copy.(mid) in
    let n = Array.length mps in
    if n = 0 then 0.
    else begin
      let at copy =
        let mp = Option.get mps.(copy) in
        let src_node = Mapping.node_of mapping ~pid:src_pid ~copy in
        if src_node = cnode then mp.start else mp.finish
      in
      let acc = ref (at 0) in
      for copy = 1 to n - 1 do
        acc := min !acc (at copy)
      done;
      !acc
    end
  in
  (* Worst-case arrival (for frozen consumers): producer worst-case
     completion plus raw transmission time. *)
  let worst_arrival_at mid cnode =
    let m = Graph.message g mid in
    let src_pid = m.Graph.src in
    let pls = by_copy.(src_pid) in
    let acc = ref 0. in
    for copy = 0 to Array.length pls - 1 do
      let p = pls.(copy) in
      let src_node = Mapping.node_of mapping ~pid:src_pid ~copy in
      let tx =
        if src_node = cnode then 0. else Bus.tx_time bus ~size:m.Graph.size
      in
      acc := max !acc (p.worst_finish +. tx)
    done;
    !acc
  in
  let place_process pid =
    let proc = Graph.process g pid in
    let frozen_p = ft && Transparency.is_frozen_proc transparency pid in
    for copy = 0 to copies pid - 1 do
      let node = Mapping.node_of mapping ~pid ~copy in
      let e0, w = lengths pid copy in
      let arrival =
        List.fold_left
          (fun acc mid ->
            let a = arrival_at mid node in
            let a =
              if frozen_p then max a (worst_arrival_at mid node) else a
            in
            max acc a)
          0. (Graph.in_messages g pid)
      in
      let from_ = max arrival proc.Graph.release in
      let start = Timeline.earliest_gap node_tl.(node) ~from_ ~duration:e0 in
      node_tl.(node) <- Timeline.reserve node_tl.(node) ~start ~finish:(start +. e0);
      placements.(pid) <-
        { pid; copy; node; start; finish = start +. e0;
          worst_finish = start +. w }
        :: placements.(pid)
    done;
    (* [placements.(pid)] lists copies in descending order; the
       copy-indexed view inverts that once. *)
    by_copy.(pid) <- Array.of_list (List.rev placements.(pid));
    (* Transmissions of this process's outputs, one per producer copy.
       Bus placement order (descending copy) is part of the pinned
       schedule and must not change. *)
    List.iter
      (fun mid ->
        let m = Graph.message g mid in
        let frozen_m = ft && Transparency.is_frozen_msg transparency mid in
        let dst_nodes =
          List.init (copies m.Graph.dst) (fun c ->
              Mapping.node_of mapping ~pid:m.Graph.dst ~copy:c)
        in
        let mps = Array.make (copies pid) None in
        List.iter
          (fun (pl : placement) ->
            let send_ready = if frozen_m then pl.worst_finish else pl.finish in
            let crosses = List.exists (fun dn -> dn <> pl.node) dst_nodes in
            let mp =
              if crosses && m.Graph.size > 0. then
                let s, f =
                  place_on_bus ~src:pl.node ~size:m.Graph.size
                    ~earliest:send_ready
                in
                { mid; copy = pl.copy; start = s; finish = f; on_bus = true }
              else
                { mid; copy = pl.copy; start = send_ready;
                  finish = send_ready; on_bus = false }
            in
            mps.(pl.copy) <- Some mp;
            Hashtbl.replace msgs (mid, pl.copy) mp)
          placements.(pid);
        msg_by_copy.(mid) <- mps)
      (Graph.out_messages g pid)
  in
  (* Priority list scheduling at process granularity: a process is ready
     once all producers are fully placed. *)
  let indeg = Array.make nprocs 0 in
  Array.iter
    (fun (m : Graph.message) -> indeg.(m.Graph.dst) <- indeg.(m.Graph.dst) + 1)
    (Graph.messages g);
  let cmp a b = compare (-.prio.(a), a) (-.prio.(b), b) in
  let ready = Ftes_util.Pqueue.create ~cmp in
  for pid = 0 to nprocs - 1 do
    if indeg.(pid) = 0 then Ftes_util.Pqueue.push ready pid
  done;
  let rec drain () =
    match Ftes_util.Pqueue.pop ready with
    | None -> ()
    | Some pid ->
        place_process pid;
        List.iter
          (fun mid ->
            let dst = (Graph.message g mid).Graph.dst in
            indeg.(dst) <- indeg.(dst) - 1;
            if indeg.(dst) = 0 then Ftes_util.Pqueue.push ready dst)
          (Graph.out_messages g pid);
        drain ()
  in
  drain ();
  let all_placements = List.concat (Array.to_list placements) in
  let root_makespan =
    List.fold_left (fun acc (p : placement) -> max acc p.finish) 0.
      all_placements
  in
  let root_makespan =
    Hashtbl.fold (fun _ mp acc -> max acc mp.finish) msgs root_makespan
  in
  (* Shared recovery slack: at most k faults total, so the worst
     elongation is bounded by the worst single process group — all k
     faults hitting its copies. For one copy the raw slack is its
     recovery cost W - E0; for a replicated process it is the gap
     between the last copy's worst-case completion (faults may
     invalidate every earlier replica) and the earliest completion the
     root schedule relies on.

     A delay at a process only extends the makespan past its downstream
     laxity: the distance between the completion of its successor cone
     (dependency successors plus later work on the same nodes) and the
     makespan. Conditional schedules absorb recoveries into that laxity
     (scenario tracks diverge only where faults actually happen), which
     is what makes policy assignment sensitive to process criticality. *)
  let group_slack pid =
    match placements.(pid) with
    | [] -> 0.
    | first :: rest ->
        let worst =
          List.fold_left
            (fun acc (p : placement) -> max acc p.worst_finish)
            first.worst_finish rest
        in
        let earliest =
          List.fold_left
            (fun acc (p : placement) -> min acc p.finish)
            first.finish rest
        in
        worst -. earliest
  in
  let penalties = Array.make nprocs 0. in
  let slack_term =
    if not ft then 0.
    else begin
      (* Downstream-completion cone per process, over dependency edges
         and same-node schedule order, by relaxation (the conservative
         process-level closure may contain cycles through replicas). *)
      let dc = Array.make nprocs 0. in
      Array.iteri
        (fun pid pls ->
          dc.(pid) <-
            List.fold_left (fun acc (p : placement) -> max acc p.finish) 0. pls)
        placements;
      let consumers =
        Array.init nprocs (fun pid ->
            List.sort_uniq compare
              (List.map
                 (fun mid -> (Graph.message g mid).Graph.dst)
                 (Graph.out_messages g pid)))
      in
      (* Successor in schedule order on each node, at process level. *)
      let node_next =
        let per_node = Hashtbl.create 16 in
        Array.iter
          (List.iter (fun (p : placement) ->
               Hashtbl.replace per_node p.node
                 (p :: (try Hashtbl.find per_node p.node with Not_found -> []))))
          placements;
        let next = Array.make nprocs [] in
        Hashtbl.iter
          (fun _ pls ->
            let sorted =
              List.sort (fun (a : placement) b -> compare a.start b.start) pls
            in
            let rec walk = function
              | a :: (b :: _ as rest) ->
                  if b.pid <> a.pid then next.(a.pid) <- b.pid :: next.(a.pid);
                  walk rest
              | [ _ ] | [] -> ()
            in
            walk sorted)
          per_node;
        next
      in
      let changed = ref true in
      let passes = ref 0 in
      while !changed && !passes < 64 do
        changed := false;
        incr passes;
        for pid = nprocs - 1 downto 0 do
          let d =
            List.fold_left
              (fun acc q -> max acc dc.(q))
              dc.(pid)
              (consumers.(pid) @ node_next.(pid))
          in
          if d > dc.(pid) +. 1e-9 then begin
            dc.(pid) <- d;
            changed := true
          end
        done
      done;
      let makespan =
        Array.fold_left
          (fun acc pls ->
            List.fold_left (fun a (p : placement) -> max a p.finish) acc pls)
          0. placements
      in
      let penalty pid =
        let laxity = max 0. (makespan -. dc.(pid)) in
        max 0. (group_slack pid -. laxity)
      in
      for pid = 0 to nprocs - 1 do
        penalties.(pid) <- penalty pid
      done;
      Array.fold_left max 0. penalties
    end
  in
  {
    root_makespan;
    slack_term;
    length = root_makespan +. slack_term;
    placements = all_placements;
    msg_placements = Hashtbl.fold (fun _ mp acc -> mp :: acc) msgs [];
    penalties;
  }

let length ?ft problem = (evaluate ?ft problem).length

let critical_processes r =
  let pairs = Array.to_list (Array.mapi (fun pid p -> (pid, p)) r.penalties) in
  List.sort
    (fun (_, a) (_, b) -> compare b a)
    (List.filter (fun (_, p) -> p > 0.) pairs)

let fto ~ft_length ~nft_length =
  if nft_length <= 0. then 0.
  else (ft_length -. nft_length) /. nft_length *. 100.

let pp_result ppf r =
  Format.fprintf ppf
    "root makespan %g + slack %g = worst-case length %g (%d copies, %d \
     transmissions)"
    r.root_makespan r.slack_term r.length
    (List.length r.placements)
    (List.length r.msg_placements)
