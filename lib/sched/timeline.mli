(** Persistent reservation timeline of one exclusive resource (a CPU
    node or the bus). Persistence matters: the conditional scheduler
    forks execution tracks at every condition and each branch continues
    with its own copy of the resource state. *)

type t

val empty : t

val reserve : t -> start:float -> finish:float -> t
(** @raise Invalid_argument if the interval is empty, negative, or
    overlaps an existing reservation. *)

val is_free : t -> start:float -> finish:float -> bool

val earliest_gap : t -> from_:float -> duration:float -> float
(** Earliest [s >= from_] such that [s, s + duration) is free. When
    [from_] is at or past every reservation this is O(1). *)

val intervals : t -> (float * float) list
(** Ascending by start, non-overlapping. *)

val busy_until : t -> float
(** End of the last reservation; 0. when empty. O(1). *)
