(** Static schedule tables for transparent FT-CPGs.

    The conditional scheduler ({!Conditional}) builds one track per
    complete fault scenario, which caps the scenario spaces it can ever
    express at [params.max_tracks]. A {e fully transparent} application
    — every process and message frozen — needs none of that: frozen
    vertices start at the same time in every scenario by definition
    (the paper's Sec. 3.3 trade-off), so the whole table is one
    scenario-independent schedule whose entries all carry the true
    guard, and it can be compiled directly from the FT-CPG without
    enumerating a single scenario.

    That is exactly the regime where the scenario space is
    combinatorially huge (every recovery chain contributes its slots
    to [C(n, k)]) and where symbolic validation ({!Ftes_sim.Symbolic})
    shines: the table produced here validates in a handful of cubes at
    any [k], while the explicit arena would not even fit in memory.

    Entries are placed ASAP in a deterministic Kahn topological order:
    executions on their node timelines, bus transmissions through
    {!Busalloc} (TDMA-aware), and one condition broadcast per
    conditional vertex after its completion (mirroring the conditional
    scheduler's broadcast placement) so the distributed-knowledge
    checks hold on multi-node platforms. Worst-case (all-fault) chain
    lengths are scheduled unconditionally — the transparency cost the
    paper quantifies. *)

exception Not_transparent of string
(** Raised (naming the vertex) when some vertex is not frozen — the
    application is not fully transparent, so a static table would be
    incorrect; use {!Conditional.schedule}. *)

val schedule : ?params:Conditional.params -> Ftes_ftcpg.Ftcpg.t -> Table.t
(** Compile the static table. [params] only contributes
    [cond_size] (broadcast slot size). The result has a single
    pseudo-track carrying the static makespan, so
    {!Table.schedule_length} and the corpus digests work unchanged. *)
