(* Static (transparent) schedule tables. See statictable.mli. *)

module Cond = Ftes_ftcpg.Cond
module Ftcpg = Ftes_ftcpg.Ftcpg
module Problem = Ftes_ftcpg.Problem
module Graph = Ftes_app.Graph
module Arch = Ftes_arch.Arch
module Telemetry = Ftes_util.Telemetry

exception Not_transparent of string

let schedule ?(params = Conditional.default_params) ftcpg =
  Telemetry.with_span ~cat:"sched" "sched.static" @@ fun () ->
  let problem = Ftcpg.problem ftcpg in
  let g = Problem.graph problem in
  let arch = problem.Problem.arch in
  let nnodes = Arch.node_count arch in
  let nverts = Ftcpg.vertex_count ftcpg in
  let vert = Ftcpg.vertex ftcpg in
  Array.iter
    (fun (v : Ftcpg.vertex) ->
      if not v.Ftcpg.frozen then
        raise
          (Not_transparent
             (Printf.sprintf "vertex %s is not frozen" v.Ftcpg.name)))
    (Ftcpg.vertices ftcpg);
  (* Kahn topological order with ascending-vid tie-break: deterministic
     and independent of whether vertex ids happen to be topologically
     sorted already. *)
  let order =
    let indeg = Array.make nverts 0 in
    for vid = 0 to nverts - 1 do
      indeg.(vid) <- List.length (vert vid).Ftcpg.preds
    done;
    let ready = ref [] in
    for vid = nverts - 1 downto 0 do
      if indeg.(vid) = 0 then ready := vid :: !ready
    done;
    let out = Array.make nverts 0 in
    let filled = ref 0 in
    let rec drain () =
      match !ready with
      | [] -> ()
      | vid :: rest ->
          ready := rest;
          out.(!filled) <- vid;
          incr filled;
          let newly =
            List.filter
              (fun s ->
                indeg.(s) <- indeg.(s) - 1;
                indeg.(s) = 0)
              (vert vid).Ftcpg.succs
          in
          ready := List.merge compare (List.sort compare newly) !ready;
          drain ()
    in
    drain ();
    if !filled < nverts then
      raise (Not_transparent "FT-CPG precedence graph has a cycle");
    out
  in
  let timelines = Array.make nnodes Timeline.empty in
  let bus = ref (Busalloc.create (Arch.bus arch) ~nodes:nnodes) in
  let finish = Array.make nverts 0. in
  let entries = ref [] in
  let makespan = ref 0. in
  let emit item start fin resource =
    entries :=
      { Table.item; guard = Cond.true_; start; finish = fin; resource }
      :: !entries
  in
  Array.iter
    (fun vid ->
      let v = vert vid in
      let est =
        List.fold_left (fun acc p -> max acc finish.(p)) 0. v.Ftcpg.preds
      in
      let est =
        match v.Ftcpg.kind with
        | Ftcpg.Proc_copy { pid; _ } ->
            max est (Graph.process g pid).Graph.release
        | Ftcpg.Msg_inst _ | Ftcpg.Sync_msg _ | Ftcpg.Sync_proc _ -> est
      in
      let s, f =
        match v.Ftcpg.kind with
        | Ftcpg.Proc_copy _ ->
            let n = Option.get v.Ftcpg.exec_node in
            let s =
              Timeline.earliest_gap timelines.(n) ~from_:est
                ~duration:v.Ftcpg.duration
            in
            let f = s +. v.Ftcpg.duration in
            timelines.(n) <- Timeline.reserve timelines.(n) ~start:s ~finish:f;
            emit (Table.Exec vid) s f (Table.Node n);
            (s, f)
        | (Ftcpg.Msg_inst _ | Ftcpg.Sync_msg _) when v.Ftcpg.on_bus ->
            let src = Option.value v.Ftcpg.src_node ~default:0 in
            let bus', (s, f) =
              Busalloc.place !bus ~src ~size:v.Ftcpg.msg_size ~earliest:est
            in
            bus := bus';
            emit (Table.Exec vid) s f Table.Bus;
            (s, f)
        | Ftcpg.Msg_inst _ | Ftcpg.Sync_msg _ | Ftcpg.Sync_proc _ ->
            emit (Table.Exec vid) est est Table.Local;
            (est, est)
      in
      ignore s;
      finish.(vid) <- f;
      if f > !makespan then makespan := f;
      (* Every revealed condition is broadcast on the bus so remote
         nodes learn it — mirrors the conditional scheduler's
         [schedule_bcast], though in a transparent schedule nothing
         downstream waits for it. *)
      if v.Ftcpg.conditional && nnodes > 1 then begin
        let src = Option.value v.Ftcpg.exec_node ~default:0 in
        let bus', (bs, bf) =
          Busalloc.place !bus ~src ~size:params.Conditional.cond_size
            ~earliest:f
        in
        bus := bus';
        emit (Table.Bcast vid) bs bf Table.Bus
      end)
    order;
  Table.make ~ftcpg
    ~entries:(List.rev !entries)
    ~tracks:[ { Table.scenario = Cond.true_; makespan = !makespan } ]
