(** Typed violation diagnostics for the fault-injection simulator.

    Every check {!Sim.run} performs produces a structured violation
    instead of an opaque string: the constructor identifies the broken
    invariant, the payload carries the FT-CPG vertex ids, the activation
    times involved and the human-readable names needed to render the
    message, and the enclosing record carries the guilty fault scenario
    (when the check is per-scenario).

    {!to_string} reproduces the historical [Format.kasprintf] renderings
    byte for byte, so log-scraping consumers and the [jobs]-determinism
    guarantees of {!Sim.validate} are unaffected. {!to_json} emits a
    self-contained machine-readable record for aggregation across large
    scenario sweeps. *)

type kind =
  | Missing_activation of { vid : int; vertex : string }
      (** A vertex reachable in the scenario has no applicable table
          column. *)
  | Ambiguous_activation of {
      vid : int;
      vertex : string;
      start : float;
      alt_start : float;
    }
      (** Two maximally specific execution columns apply with different
          start times — the run-time scheduler cannot decide. *)
  | Ambiguous_broadcast of {
      vid : int;
      cond : string;
      start : float;
      alt_start : float;
    }
      (** Two maximally specific broadcast columns apply with different
          start times. *)
  | Never_broadcast of { vid : int; cond : string }
      (** A condition produced in the scenario is never put on the bus,
          so remote nodes can never learn it. *)
  | Broadcast_before_produced of {
      vid : int;
      cond : string;
      bcast_start : float;
      produced : float;
    }
  | Causality of {
      vid : int;
      vertex : string;
      start : float;
      pred : int;
      pred_name : string;
      pred_finish : float;
    }
      (** An activation precedes the completion of a predecessor. *)
  | Distributed_knowledge of {
      vid : int;
      vertex : string;
      start : float;
      cond_vid : int;
      cond : string;
      learned : float;
    }
      (** An activation guarded by a remote condition precedes the end
          of the condition broadcast. *)
  | Release of { vid : int; vertex : string; start : float; release : float }
  | Resource_overlap of {
      vid : int;
      vertex : string;
      other_vid : int;
      other : string;
    }
  | Deadline_missed of { deadline : float; completion : float }
  | Local_deadline_missed of {
      pid : int;
      process : string;
      deadline : float;
      completion : float;
    }
  | Frozen_drift of { vid : int; vertex : string; starts : float list }
      (** A frozen vertex has several distinct start times across the
          table columns (transparency broken). Cross-scenario: carries
          no scenario. *)

type t = {
  kind : kind;
  scenario : Ftes_ftcpg.Cond.guard option;
      (** The fault scenario whose replay produced the violation;
          [None] for the cross-scenario transparency check. *)
  scenario_label : string option;
      (** [scenario] rendered with the table's condition names, cached
          at detection time so rendering needs no FT-CPG. *)
}

val make :
  ?scenario:Ftes_ftcpg.Cond.guard -> ?scenario_label:string -> kind -> t

val kind_label : t -> string
(** Stable kebab-case identifier of the constructor, e.g.
    ["missing-activation"] — the grouping key of {!Diagnose} and the
    ["kind"] field of {!to_json}. *)

val vertex_id : t -> int option
(** The primary FT-CPG vertex (or process id for local deadlines) the
    violation anchors to; [None] for the global deadline. *)

val vertex_name : t -> string option

val to_string : t -> string
(** Byte-identical to the pre-typed simulator messages. *)

val to_json : t -> string
(** One JSON object; floats are rendered with enough digits to
    round-trip through any standard parser. *)

val json_string : string -> string
(** A JSON string literal (quoted, escaped) — shared with {!Diagnose}'s
    report rendering. *)

val list_to_json : t list -> string
(** A JSON array of {!to_json} records. *)
