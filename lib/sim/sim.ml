module Cond = Ftes_ftcpg.Cond
module Ftcpg = Ftes_ftcpg.Ftcpg
module Problem = Ftes_ftcpg.Problem
module Table = Ftes_sched.Table
module Graph = Ftes_app.Graph
module App = Ftes_app.App
module Arch = Ftes_arch.Arch
module Bus = Ftes_arch.Bus
module Telemetry = Ftes_util.Telemetry

let c_scenarios = Telemetry.counter "sim.scenarios"
let c_violations = Telemetry.counter "sim.violations"

type event = { time : float; what : string }

type outcome = {
  scenario : Cond.guard;
  makespan : float;
  events : event list;
  violations : Violation.t list;
}

let eps = 1e-6

(* The run-time scheduler on each node activates an item according to
   the most specific table column whose guard currently holds. *)
let applicable_entry table ~scenario item =
  let candidates =
    List.filter
      (fun (e : Table.entry) -> Cond.implies scenario e.Table.guard)
      (Table.entries_of_item table item)
  in
  match candidates with
  | [] -> None
  | _ ->
      let best =
        List.fold_left
          (fun acc (e : Table.entry) ->
            match acc with
            | None -> Some e
            | Some b ->
                if Cond.size e.Table.guard > Cond.size b.Table.guard then
                  Some e
                else acc)
          None candidates
      in
      best

let scenario_name ftcpg scenario =
  Cond.to_string ~name:(Ftcpg.cond_name ftcpg) scenario

let run table ~scenario =
  let ftcpg = table.Table.ftcpg in
  let problem = Ftcpg.problem ftcpg in
  let app = problem.Problem.app in
  let g = app.App.graph in
  let violations = ref [] in
  let events = ref [] in
  (* The rendered scenario only appears in violation records — don't pay
     for it on the (hot, overwhelmingly common) clean replays. *)
  let sname = lazy (scenario_name ftcpg scenario) in
  let fail kind =
    violations :=
      Violation.make ~scenario ~scenario_label:(Lazy.force sname) kind
      :: !violations
  in
  let trace time fmt =
    Format.kasprintf (fun what -> events := { time; what } :: !events) fmt
  in
  (* Select the activation of every vertex existing in this scenario. *)
  let n = Ftcpg.vertex_count ftcpg in
  let chosen : Table.entry option array = Array.make n None in
  for vid = 0 to n - 1 do
    let v = Ftcpg.vertex ftcpg vid in
    if Cond.implies scenario v.Ftcpg.guard then begin
      match applicable_entry table ~scenario (Table.Exec vid) with
      | None ->
          fail (Violation.Missing_activation { vid; vertex = v.Ftcpg.name })
      | Some e ->
          (* Ambiguity: another maximally specific column with a
             different start would leave the run-time scheduler with two
             contradictory activation times. *)
          List.iter
            (fun (e' : Table.entry) ->
              if
                Cond.implies scenario e'.Table.guard
                && Cond.size e'.Table.guard = Cond.size e.Table.guard
                && Float.abs (e'.Table.start -. e.Table.start) > eps
              then
                fail
                  (Violation.Ambiguous_activation
                     {
                       vid;
                       vertex = v.Ftcpg.name;
                       start = e.Table.start;
                       alt_start = e'.Table.start;
                     }))
            (Table.entries_of_item table (Table.Exec vid));
          chosen.(vid) <- Some e;
          trace e.Table.start "start %s (until %g)" v.Ftcpg.name e.Table.finish
    end
  done;
  (* Broadcast arrival of each condition revealed in this scenario. *)
  let bcast_finish = Hashtbl.create 16 in
  let nnodes = Arch.node_count problem.Problem.arch in
  for vid = 0 to n - 1 do
    let v = Ftcpg.vertex ftcpg vid in
    if v.Ftcpg.conditional && Cond.implies scenario v.Ftcpg.guard then begin
      match chosen.(vid) with
      | None -> ()
      | Some e ->
          if nnodes <= 1 then Hashtbl.replace bcast_finish vid e.Table.finish
          else begin
            match applicable_entry table ~scenario (Table.Bcast vid) with
            | None ->
                fail
                  (Violation.Never_broadcast
                     { vid; cond = Ftcpg.cond_name ftcpg vid })
            | Some b ->
                (* Mirror of the execution-column ambiguity check: two
                   maximally specific broadcast columns with different
                   times contradict each other at run time. *)
                List.iter
                  (fun (b' : Table.entry) ->
                    if
                      Cond.implies scenario b'.Table.guard
                      && Cond.size b'.Table.guard = Cond.size b.Table.guard
                      && Float.abs (b'.Table.start -. b.Table.start) > eps
                    then
                      fail
                        (Violation.Ambiguous_broadcast
                           {
                             vid;
                             cond = Ftcpg.cond_name ftcpg vid;
                             start = b.Table.start;
                             alt_start = b'.Table.start;
                           }))
                  (Table.entries_of_item table (Table.Bcast vid));
                if b.Table.start < e.Table.finish -. eps then
                  fail
                    (Violation.Broadcast_before_produced
                       {
                         vid;
                         cond = Ftcpg.cond_name ftcpg vid;
                         bcast_start = b.Table.start;
                         produced = e.Table.finish;
                       });
                Hashtbl.replace bcast_finish vid b.Table.finish;
                trace b.Table.start "broadcast %s" (Ftcpg.cond_name ftcpg vid)
          end
    end
  done;
  (* Causality + distributed knowledge. *)
  for vid = 0 to n - 1 do
    match chosen.(vid) with
    | None -> ()
    | Some e ->
        let v = Ftcpg.vertex ftcpg vid in
        List.iter
          (fun p ->
            match chosen.(p) with
            | Some pe ->
                if e.Table.start < pe.Table.finish -. eps then
                  fail
                    (Violation.Causality
                       {
                         vid;
                         vertex = v.Ftcpg.name;
                         start = e.Table.start;
                         pred = p;
                         pred_name = (Ftcpg.vertex ftcpg p).Ftcpg.name;
                         pred_finish = pe.Table.finish;
                       })
            | None -> ())
          v.Ftcpg.preds;
        let decision_node =
          match v.Ftcpg.kind with
          | Ftcpg.Proc_copy _ -> v.Ftcpg.exec_node
          | Ftcpg.Msg_inst _ | Ftcpg.Sync_msg _ ->
              if v.Ftcpg.on_bus then v.Ftcpg.src_node else None
          | Ftcpg.Sync_proc _ -> None
        in
        List.iter
          (fun (l : Cond.literal) ->
            match decision_node with
            | None -> ()
            | Some dn -> (
                match (Ftcpg.vertex ftcpg l.Cond.cond).Ftcpg.exec_node with
                | Some pn when pn = dn -> ()
                | Some _ | None -> (
                    match Hashtbl.find_opt bcast_finish l.Cond.cond with
                    | Some bf ->
                        if e.Table.start < bf -. eps then
                          fail
                            (Violation.Distributed_knowledge
                               {
                                 vid;
                                 vertex = v.Ftcpg.name;
                                 start = e.Table.start;
                                 cond_vid = l.Cond.cond;
                                 cond = Ftcpg.cond_name ftcpg l.Cond.cond;
                                 learned = bf;
                               })
                    | None -> ())))
          (Cond.literals v.Ftcpg.guard);
        (* Release times. *)
        (match v.Ftcpg.kind with
        | Ftcpg.Proc_copy { pid; _ } ->
            let r = (Graph.process g pid).Graph.release in
            if e.Table.start < r -. eps then
              fail
                (Violation.Release
                   {
                     vid;
                     vertex = v.Ftcpg.name;
                     start = e.Table.start;
                     release = r;
                   })
        | Ftcpg.Msg_inst _ | Ftcpg.Sync_msg _ | Ftcpg.Sync_proc _ -> ())
  done;
  (* Resource exclusivity. *)
  let active =
    List.filter_map
      (fun vid ->
        match chosen.(vid) with
        | Some e when e.Table.finish -. e.Table.start > eps -> Some (vid, e)
        | Some _ | None -> None)
      (List.init n (fun i -> i))
  in
  let overlap (a : Table.entry) (b : Table.entry) =
    a.Table.start < b.Table.finish -. eps
    && b.Table.start < a.Table.finish -. eps
  in
  let lane_of vid (e : Table.entry) =
    match e.Table.resource with
    | Table.Node nid -> Some (`Cpu nid)
    | Table.Bus ->
        let v = Ftcpg.vertex ftcpg vid in
        if Bus.is_tdma (Arch.bus problem.Problem.arch) then
          Some (`Bus (Option.value v.Ftcpg.src_node ~default:0))
        else Some (`Bus (-1))
    | Table.Local -> None
  in
  let rec pairs = function
    | [] -> ()
    | (vid, e) :: rest ->
        List.iter
          (fun (vid', e') ->
            match (lane_of vid e, lane_of vid' e') with
            | Some l, Some l' when l = l' && overlap e e' ->
                fail
                  (Violation.Resource_overlap
                     {
                       vid;
                       vertex = (Ftcpg.vertex ftcpg vid).Ftcpg.name;
                       other_vid = vid';
                       other = (Ftcpg.vertex ftcpg vid').Ftcpg.name;
                     })
            | _ -> ())
          rest;
        pairs rest
  in
  pairs active;
  (* Deadlines. *)
  let makespan =
    Array.fold_left
      (fun acc e ->
        match e with Some e -> max acc e.Table.finish | None -> acc)
      0. chosen
  in
  if makespan > app.App.deadline +. eps then
    fail
      (Violation.Deadline_missed
         { deadline = app.App.deadline; completion = makespan });
  Array.iter
    (fun (p : Graph.process) ->
      match p.Graph.local_deadline with
      | None -> ()
      | Some d ->
          let completion =
            List.fold_left
              (fun acc vid ->
                match chosen.(vid) with
                | Some e -> max acc e.Table.finish
                | None -> acc)
              0.
              (Ftcpg.proc_copies ftcpg ~pid:p.Graph.pid)
          in
          if completion > d +. eps then
            fail
              (Violation.Local_deadline_missed
                 {
                   pid = p.Graph.pid;
                   process = p.Graph.pname;
                   deadline = d;
                   completion;
                 }))
    (Graph.processes g);
  {
    scenario;
    makespan;
    events = List.sort (fun a b -> compare a.time b.time) !events;
    violations = List.rev !violations;
  }

let frozen_start_violations table =
  let ftcpg = table.Table.ftcpg in
  let violations = ref [] in
  Array.iter
    (fun (v : Ftcpg.vertex) ->
      if v.Ftcpg.frozen then begin
        match Table.starts_of_vertex table v.Ftcpg.vid with
        | [] | [ _ ] -> ()
        | starts ->
            violations :=
              Violation.make
                (Violation.Frozen_drift
                   { vid = v.Ftcpg.vid; vertex = v.Ftcpg.name; starts })
              :: !violations
      end)
    (Ftcpg.vertices ftcpg);
  List.rev !violations

(* Scenarios replay independently: fan them over the domain pool. The
   ordered merge keeps the violation list byte-identical to the
   sequential run for every [jobs] value. *)
let replay ?jobs table scenarios =
  Ftes_util.Par.concat_map ?jobs
    (fun s ->
      Telemetry.incr c_scenarios;
      let vs = (run table ~scenario:s).violations in
      if Telemetry.enabled () && vs <> [] then
        Telemetry.add c_violations (List.length vs);
      vs)
    scenarios

(* Early-exit replay: scenarios are consumed in fixed-size batches (the
   batch size does not depend on [jobs], so the result stays identical
   for every [jobs] value) and replay stops at the end of the first
   batch that pushes the violation count to [limit]. The result is a
   prefix of the exhaustive per-scenario violation list. *)
let batch_size = 32

let rec take n = function
  | x :: rest when n > 0 ->
      let a, b = take (n - 1) rest in
      (x :: a, b)
  | rest -> ([], rest)

let replay_until ?jobs ~limit table scenarios =
  let rec go acc found scenarios =
    if found >= limit || scenarios = [] then List.concat (List.rev acc)
    else begin
      let batch, rest = take batch_size scenarios in
      let vs = replay ?jobs table batch in
      go (vs :: acc) (found + List.length vs) rest
    end
  in
  go [] 0 scenarios

let check_scenarios ?jobs ?stop_after table scenarios =
  let body () =
    match stop_after with
    | Some limit when limit > 0 ->
        let vs = replay_until ?jobs ~limit table scenarios in
        (* The transparency check only runs when scenario replay did not
           already prove the table bad. *)
        if List.length vs >= limit then vs
        else vs @ frozen_start_violations table
    | _ -> replay ?jobs table scenarios @ frozen_start_violations table
  in
  if Telemetry.enabled () then
    Telemetry.with_span ~cat:"sim"
      ~args:[ ("scenarios", Telemetry.Int (List.length scenarios)) ]
      "sim.validate" body
  else body ()

let validate ?jobs ?stop_after table =
  check_scenarios ?jobs ?stop_after table (Ftcpg.scenarios table.Table.ftcpg)

let validate_sampled ?jobs ?stop_after ~rng ~samples table =
  let scenarios = Ftcpg.scenarios table.Table.ftcpg in
  let no_fault = List.filter (fun s -> Cond.fault_count s = 0) scenarios in
  let sampled = Ftes_util.Rng.sample rng samples scenarios in
  let chosen = List.sort_uniq Cond.compare (no_fault @ sampled) in
  check_scenarios ?jobs ?stop_after table chosen

(* String-compatible wrappers: the historical API, used by the ordered-
   merge determinism tests and by log-oriented callers. *)
let messages = List.map Violation.to_string
let validate_messages ?jobs table = messages (validate ?jobs table)

let validate_sampled_messages ?jobs ~rng ~samples table =
  messages (validate_sampled ?jobs ~rng ~samples table)

let frozen_start_messages table = messages (frozen_start_violations table)

let pp_outcome ppf o =
  Format.fprintf ppf "@[<v>scenario faults=%d makespan=%g%s@,"
    (Cond.fault_count o.scenario)
    o.makespan
    (if o.violations = [] then "" else "  VIOLATIONS:");
  List.iter
    (fun v -> Format.fprintf ppf "  ! %s@," (Violation.to_string v))
    o.violations;
  List.iter (fun e -> Format.fprintf ppf "  %8.1f %s@," e.time e.what) o.events;
  Format.fprintf ppf "@]"
