module Cond = Ftes_ftcpg.Cond
module Ftcpg = Ftes_ftcpg.Ftcpg
module Problem = Ftes_ftcpg.Problem
module Table = Ftes_sched.Table
module Graph = Ftes_app.Graph
module App = Ftes_app.App
module Arch = Ftes_arch.Arch
module Bus = Ftes_arch.Bus

type event = { time : float; what : string }

type outcome = {
  scenario : Cond.guard;
  makespan : float;
  events : event list;
  violations : string list;
}

let eps = 1e-6

(* The run-time scheduler on each node activates an item according to
   the most specific table column whose guard currently holds. *)
let applicable_entry table ~scenario item =
  let candidates =
    List.filter
      (fun (e : Table.entry) -> Cond.implies scenario e.Table.guard)
      (Table.entries_of_item table item)
  in
  match candidates with
  | [] -> None
  | _ ->
      let best =
        List.fold_left
          (fun acc (e : Table.entry) ->
            match acc with
            | None -> Some e
            | Some b ->
                if Cond.size e.Table.guard > Cond.size b.Table.guard then
                  Some e
                else acc)
          None candidates
      in
      best

let scenario_name ftcpg scenario =
  Cond.to_string ~name:(Ftcpg.cond_name ftcpg) scenario

let run table ~scenario =
  let ftcpg = table.Table.ftcpg in
  let problem = Ftcpg.problem ftcpg in
  let app = problem.Problem.app in
  let g = app.App.graph in
  let violations = ref [] in
  let events = ref [] in
  let fail fmt = Format.kasprintf (fun s -> violations := s :: !violations) fmt in
  let trace time fmt =
    Format.kasprintf (fun what -> events := { time; what } :: !events) fmt
  in
  (* Select the activation of every vertex existing in this scenario. *)
  let n = Ftcpg.vertex_count ftcpg in
  let chosen : Table.entry option array = Array.make n None in
  for vid = 0 to n - 1 do
    let v = Ftcpg.vertex ftcpg vid in
    if Cond.implies scenario v.Ftcpg.guard then begin
      match applicable_entry table ~scenario (Table.Exec vid) with
      | None ->
          fail "vertex %s reachable but has no applicable activation"
            v.Ftcpg.name
      | Some e ->
          (* Ambiguity: another maximally specific column with a
             different start would leave the run-time scheduler with two
             contradictory activation times. *)
          List.iter
            (fun (e' : Table.entry) ->
              if
                Cond.implies scenario e'.Table.guard
                && Cond.size e'.Table.guard = Cond.size e.Table.guard
                && Float.abs (e'.Table.start -. e.Table.start) > eps
              then
                fail "vertex %s has ambiguous activations at %g and %g in %s"
                  v.Ftcpg.name e.Table.start e'.Table.start
                  (scenario_name ftcpg scenario))
            (Table.entries_of_item table (Table.Exec vid));
          chosen.(vid) <- Some e;
          trace e.Table.start "start %s (until %g)" v.Ftcpg.name e.Table.finish
    end
  done;
  (* Broadcast arrival of each condition revealed in this scenario. *)
  let bcast_finish = Hashtbl.create 16 in
  let nnodes = Arch.node_count problem.Problem.arch in
  for vid = 0 to n - 1 do
    let v = Ftcpg.vertex ftcpg vid in
    if v.Ftcpg.conditional && Cond.implies scenario v.Ftcpg.guard then begin
      match chosen.(vid) with
      | None -> ()
      | Some e ->
          if nnodes <= 1 then Hashtbl.replace bcast_finish vid e.Table.finish
          else begin
            match applicable_entry table ~scenario (Table.Bcast vid) with
            | None ->
                fail "condition %s is never broadcast"
                  (Ftcpg.cond_name ftcpg vid)
            | Some b ->
                if b.Table.start < e.Table.finish -. eps then
                  fail "condition %s broadcast at %g before it is produced at %g"
                    (Ftcpg.cond_name ftcpg vid) b.Table.start e.Table.finish;
                Hashtbl.replace bcast_finish vid b.Table.finish;
                trace b.Table.start "broadcast %s" (Ftcpg.cond_name ftcpg vid)
          end
    end
  done;
  (* Causality + distributed knowledge. *)
  for vid = 0 to n - 1 do
    match chosen.(vid) with
    | None -> ()
    | Some e ->
        let v = Ftcpg.vertex ftcpg vid in
        List.iter
          (fun p ->
            match chosen.(p) with
            | Some pe ->
                if e.Table.start < pe.Table.finish -. eps then
                  fail "%s starts at %g before predecessor %s finishes at %g (%s)"
                    v.Ftcpg.name e.Table.start
                    (Ftcpg.vertex ftcpg p).Ftcpg.name pe.Table.finish
                    (scenario_name ftcpg scenario)
            | None -> ())
          v.Ftcpg.preds;
        let decision_node =
          match v.Ftcpg.kind with
          | Ftcpg.Proc_copy _ -> v.Ftcpg.exec_node
          | Ftcpg.Msg_inst _ | Ftcpg.Sync_msg _ ->
              if v.Ftcpg.on_bus then v.Ftcpg.src_node else None
          | Ftcpg.Sync_proc _ -> None
        in
        List.iter
          (fun (l : Cond.literal) ->
            match decision_node with
            | None -> ()
            | Some dn -> (
                match (Ftcpg.vertex ftcpg l.Cond.cond).Ftcpg.exec_node with
                | Some pn when pn = dn -> ()
                | Some _ | None -> (
                    match Hashtbl.find_opt bcast_finish l.Cond.cond with
                    | Some bf ->
                        if e.Table.start < bf -. eps then
                          fail
                            "%s starts at %g before learning %s (broadcast \
                             finishes at %g)"
                            v.Ftcpg.name e.Table.start
                            (Ftcpg.cond_name ftcpg l.Cond.cond) bf
                    | None -> ())))
          (Cond.literals v.Ftcpg.guard);
        (* Release times. *)
        (match v.Ftcpg.kind with
        | Ftcpg.Proc_copy { pid; _ } ->
            let r = (Graph.process g pid).Graph.release in
            if e.Table.start < r -. eps then
              fail "%s starts at %g before its release %g" v.Ftcpg.name
                e.Table.start r
        | Ftcpg.Msg_inst _ | Ftcpg.Sync_msg _ | Ftcpg.Sync_proc _ -> ())
  done;
  (* Resource exclusivity. *)
  let active =
    List.filter_map
      (fun vid ->
        match chosen.(vid) with
        | Some e when e.Table.finish -. e.Table.start > eps -> Some (vid, e)
        | Some _ | None -> None)
      (List.init n (fun i -> i))
  in
  let overlap (a : Table.entry) (b : Table.entry) =
    a.Table.start < b.Table.finish -. eps
    && b.Table.start < a.Table.finish -. eps
  in
  let lane_of vid (e : Table.entry) =
    match e.Table.resource with
    | Table.Node nid -> Some (`Cpu nid)
    | Table.Bus ->
        let v = Ftcpg.vertex ftcpg vid in
        if Bus.is_tdma (Arch.bus problem.Problem.arch) then
          Some (`Bus (Option.value v.Ftcpg.src_node ~default:0))
        else Some (`Bus (-1))
    | Table.Local -> None
  in
  let rec pairs = function
    | [] -> ()
    | (vid, e) :: rest ->
        List.iter
          (fun (vid', e') ->
            match (lane_of vid e, lane_of vid' e') with
            | Some l, Some l' when l = l' && overlap e e' ->
                fail "%s and %s overlap on the same resource in %s"
                  (Ftcpg.vertex ftcpg vid).Ftcpg.name
                  (Ftcpg.vertex ftcpg vid').Ftcpg.name
                  (scenario_name ftcpg scenario)
            | _ -> ())
          rest;
        pairs rest
  in
  pairs active;
  (* Deadlines. *)
  let makespan =
    Array.fold_left
      (fun acc e ->
        match e with Some e -> max acc e.Table.finish | None -> acc)
      0. chosen
  in
  if makespan > app.App.deadline +. eps then
    fail "deadline %g missed: completion %g in %s" app.App.deadline makespan
      (scenario_name ftcpg scenario);
  Array.iter
    (fun (p : Graph.process) ->
      match p.Graph.local_deadline with
      | None -> ()
      | Some d ->
          let completion =
            List.fold_left
              (fun acc vid ->
                match chosen.(vid) with
                | Some e -> max acc e.Table.finish
                | None -> acc)
              0.
              (Ftcpg.proc_copies ftcpg ~pid:p.Graph.pid)
          in
          if completion > d +. eps then
            fail "%s misses local deadline %g (completes %g) in %s"
              p.Graph.pname d completion
              (scenario_name ftcpg scenario))
    (Graph.processes g);
  {
    scenario;
    makespan;
    events = List.sort (fun a b -> compare a.time b.time) !events;
    violations = List.rev !violations;
  }

let frozen_start_violations table =
  let ftcpg = table.Table.ftcpg in
  let violations = ref [] in
  Array.iter
    (fun (v : Ftcpg.vertex) ->
      if v.Ftcpg.frozen then begin
        match Table.starts_of_vertex table v.Ftcpg.vid with
        | [] | [ _ ] -> ()
        | starts ->
            violations :=
              Format.asprintf
                "frozen vertex %s has several start times: %a" v.Ftcpg.name
                (Format.pp_print_list
                   ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
                   Format.pp_print_float)
                starts
              :: !violations
      end)
    (Ftcpg.vertices ftcpg);
  List.rev !violations

(* Scenarios replay independently: fan them over the domain pool. The
   ordered merge keeps the violation list byte-identical to the
   sequential run for every [jobs] value. *)
let validate ?jobs table =
  let scenarios = Ftcpg.scenarios table.Table.ftcpg in
  let per_scenario =
    Ftes_util.Par.concat_map ?jobs
      (fun s -> (run table ~scenario:s).violations)
      scenarios
  in
  per_scenario @ frozen_start_violations table

let validate_sampled ?jobs ~rng ~samples table =
  let scenarios = Ftcpg.scenarios table.Table.ftcpg in
  let no_fault =
    List.filter (fun s -> Cond.fault_count s = 0) scenarios
  in
  let sampled = Ftes_util.Rng.sample rng samples scenarios in
  let chosen = List.sort_uniq Cond.compare (no_fault @ sampled) in
  Ftes_util.Par.concat_map ?jobs
    (fun s -> (run table ~scenario:s).violations)
    chosen
  @ frozen_start_violations table

let pp_outcome ppf o =
  Format.fprintf ppf "@[<v>scenario faults=%d makespan=%g%s@,"
    (Cond.fault_count o.scenario)
    o.makespan
    (if o.violations = [] then "" else "  VIOLATIONS:");
  List.iter (fun v -> Format.fprintf ppf "  ! %s@," v) o.violations;
  List.iter (fun e -> Format.fprintf ppf "  %8.1f %s@," e.time e.what) o.events;
  Format.fprintf ppf "@]"
