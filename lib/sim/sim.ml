module Cond = Ftes_ftcpg.Cond
module Condvec = Ftes_ftcpg.Condvec
module Ftcpg = Ftes_ftcpg.Ftcpg
module Problem = Ftes_ftcpg.Problem
module Table = Ftes_sched.Table
module Graph = Ftes_app.Graph
module App = Ftes_app.App
module Arch = Ftes_arch.Arch
module Bus = Ftes_arch.Bus
module Telemetry = Ftes_util.Telemetry
module Events = Ftes_util.Events

let c_scenarios = Telemetry.counter "sim.scenarios"
let c_violations = Telemetry.counter "sim.violations"

type event = { time : float; what : string }

type outcome = {
  scenario : Cond.guard;
  makespan : float;
  events : event list;
  violations : Violation.t list;
}

let eps = 1e-6

(* The run-time scheduler on each node activates an item according to
   the most specific table column whose guard currently holds. *)
let applicable_entry table ~scenario item =
  let candidates =
    List.filter
      (fun (e : Table.entry) -> Cond.implies scenario e.Table.guard)
      (Table.entries_of_item table item)
  in
  match candidates with
  | [] -> None
  | _ ->
      let best =
        List.fold_left
          (fun acc (e : Table.entry) ->
            match acc with
            | None -> Some e
            | Some b ->
                if Cond.size e.Table.guard > Cond.size b.Table.guard then
                  Some e
                else acc)
          None candidates
      in
      best

let scenario_name ftcpg scenario =
  Cond.to_string ~name:(Ftcpg.cond_name ftcpg) scenario

let run table ~scenario =
  let ftcpg = table.Table.ftcpg in
  let problem = Ftcpg.problem ftcpg in
  let app = problem.Problem.app in
  let g = app.App.graph in
  let violations = ref [] in
  let events = ref [] in
  (* The rendered scenario only appears in violation records — don't pay
     for it on the (hot, overwhelmingly common) clean replays. *)
  let sname = lazy (scenario_name ftcpg scenario) in
  let fail kind =
    violations :=
      Violation.make ~scenario ~scenario_label:(Lazy.force sname) kind
      :: !violations
  in
  let trace time fmt =
    Format.kasprintf (fun what -> events := { time; what } :: !events) fmt
  in
  (* Select the activation of every vertex existing in this scenario. *)
  let n = Ftcpg.vertex_count ftcpg in
  let chosen : Table.entry option array = Array.make n None in
  for vid = 0 to n - 1 do
    let v = Ftcpg.vertex ftcpg vid in
    if Cond.implies scenario v.Ftcpg.guard then begin
      match applicable_entry table ~scenario (Table.Exec vid) with
      | None ->
          fail (Violation.Missing_activation { vid; vertex = v.Ftcpg.name })
      | Some e ->
          (* Ambiguity: another maximally specific column with a
             different start would leave the run-time scheduler with two
             contradictory activation times. *)
          List.iter
            (fun (e' : Table.entry) ->
              if
                Cond.implies scenario e'.Table.guard
                && Cond.size e'.Table.guard = Cond.size e.Table.guard
                && Float.abs (e'.Table.start -. e.Table.start) > eps
              then
                fail
                  (Violation.Ambiguous_activation
                     {
                       vid;
                       vertex = v.Ftcpg.name;
                       start = e.Table.start;
                       alt_start = e'.Table.start;
                     }))
            (Table.entries_of_item table (Table.Exec vid));
          chosen.(vid) <- Some e;
          trace e.Table.start "start %s (until %g)" v.Ftcpg.name e.Table.finish
    end
  done;
  (* Broadcast arrival of each condition revealed in this scenario. *)
  let bcast_finish = Hashtbl.create 16 in
  let nnodes = Arch.node_count problem.Problem.arch in
  for vid = 0 to n - 1 do
    let v = Ftcpg.vertex ftcpg vid in
    if v.Ftcpg.conditional && Cond.implies scenario v.Ftcpg.guard then begin
      match chosen.(vid) with
      | None -> ()
      | Some e ->
          if nnodes <= 1 then Hashtbl.replace bcast_finish vid e.Table.finish
          else begin
            match applicable_entry table ~scenario (Table.Bcast vid) with
            | None ->
                fail
                  (Violation.Never_broadcast
                     { vid; cond = Ftcpg.cond_name ftcpg vid })
            | Some b ->
                (* Mirror of the execution-column ambiguity check: two
                   maximally specific broadcast columns with different
                   times contradict each other at run time. *)
                List.iter
                  (fun (b' : Table.entry) ->
                    if
                      Cond.implies scenario b'.Table.guard
                      && Cond.size b'.Table.guard = Cond.size b.Table.guard
                      && Float.abs (b'.Table.start -. b.Table.start) > eps
                    then
                      fail
                        (Violation.Ambiguous_broadcast
                           {
                             vid;
                             cond = Ftcpg.cond_name ftcpg vid;
                             start = b.Table.start;
                             alt_start = b'.Table.start;
                           }))
                  (Table.entries_of_item table (Table.Bcast vid));
                if b.Table.start < e.Table.finish -. eps then
                  fail
                    (Violation.Broadcast_before_produced
                       {
                         vid;
                         cond = Ftcpg.cond_name ftcpg vid;
                         bcast_start = b.Table.start;
                         produced = e.Table.finish;
                       });
                Hashtbl.replace bcast_finish vid b.Table.finish;
                trace b.Table.start "broadcast %s" (Ftcpg.cond_name ftcpg vid)
          end
    end
  done;
  (* Causality + distributed knowledge. *)
  for vid = 0 to n - 1 do
    match chosen.(vid) with
    | None -> ()
    | Some e ->
        let v = Ftcpg.vertex ftcpg vid in
        List.iter
          (fun p ->
            match chosen.(p) with
            | Some pe ->
                if e.Table.start < pe.Table.finish -. eps then
                  fail
                    (Violation.Causality
                       {
                         vid;
                         vertex = v.Ftcpg.name;
                         start = e.Table.start;
                         pred = p;
                         pred_name = (Ftcpg.vertex ftcpg p).Ftcpg.name;
                         pred_finish = pe.Table.finish;
                       })
            | None -> ())
          v.Ftcpg.preds;
        let decision_node =
          match v.Ftcpg.kind with
          | Ftcpg.Proc_copy _ -> v.Ftcpg.exec_node
          | Ftcpg.Msg_inst _ | Ftcpg.Sync_msg _ ->
              if v.Ftcpg.on_bus then v.Ftcpg.src_node else None
          | Ftcpg.Sync_proc _ -> None
        in
        List.iter
          (fun (l : Cond.literal) ->
            match decision_node with
            | None -> ()
            | Some dn -> (
                match (Ftcpg.vertex ftcpg l.Cond.cond).Ftcpg.exec_node with
                | Some pn when pn = dn -> ()
                | Some _ | None -> (
                    match Hashtbl.find_opt bcast_finish l.Cond.cond with
                    | Some bf ->
                        if e.Table.start < bf -. eps then
                          fail
                            (Violation.Distributed_knowledge
                               {
                                 vid;
                                 vertex = v.Ftcpg.name;
                                 start = e.Table.start;
                                 cond_vid = l.Cond.cond;
                                 cond = Ftcpg.cond_name ftcpg l.Cond.cond;
                                 learned = bf;
                               })
                    | None -> ())))
          (Cond.literals v.Ftcpg.guard);
        (* Release times. *)
        (match v.Ftcpg.kind with
        | Ftcpg.Proc_copy { pid; _ } ->
            let r = (Graph.process g pid).Graph.release in
            if e.Table.start < r -. eps then
              fail
                (Violation.Release
                   {
                     vid;
                     vertex = v.Ftcpg.name;
                     start = e.Table.start;
                     release = r;
                   })
        | Ftcpg.Msg_inst _ | Ftcpg.Sync_msg _ | Ftcpg.Sync_proc _ -> ())
  done;
  (* Resource exclusivity. *)
  let active =
    List.filter_map
      (fun vid ->
        match chosen.(vid) with
        | Some e when e.Table.finish -. e.Table.start > eps -> Some (vid, e)
        | Some _ | None -> None)
      (List.init n (fun i -> i))
  in
  let overlap (a : Table.entry) (b : Table.entry) =
    a.Table.start < b.Table.finish -. eps
    && b.Table.start < a.Table.finish -. eps
  in
  let lane_of vid (e : Table.entry) =
    match e.Table.resource with
    | Table.Node nid -> Some (`Cpu nid)
    | Table.Bus ->
        let v = Ftcpg.vertex ftcpg vid in
        if Bus.is_tdma (Arch.bus problem.Problem.arch) then
          Some (`Bus (Option.value v.Ftcpg.src_node ~default:0))
        else Some (`Bus (-1))
    | Table.Local -> None
  in
  let rec pairs = function
    | [] -> ()
    | (vid, e) :: rest ->
        List.iter
          (fun (vid', e') ->
            match (lane_of vid e, lane_of vid' e') with
            | Some l, Some l' when l = l' && overlap e e' ->
                fail
                  (Violation.Resource_overlap
                     {
                       vid;
                       vertex = (Ftcpg.vertex ftcpg vid).Ftcpg.name;
                       other_vid = vid';
                       other = (Ftcpg.vertex ftcpg vid').Ftcpg.name;
                     })
            | _ -> ())
          rest;
        pairs rest
  in
  pairs active;
  (* Deadlines. *)
  let makespan =
    Array.fold_left
      (fun acc e ->
        match e with Some e -> max acc e.Table.finish | None -> acc)
      0. chosen
  in
  if makespan > app.App.deadline +. eps then
    fail
      (Violation.Deadline_missed
         { deadline = app.App.deadline; completion = makespan });
  Array.iter
    (fun (p : Graph.process) ->
      match p.Graph.local_deadline with
      | None -> ()
      | Some d ->
          let completion =
            List.fold_left
              (fun acc vid ->
                match chosen.(vid) with
                | Some e -> max acc e.Table.finish
                | None -> acc)
              0.
              (Ftcpg.proc_copies ftcpg ~pid:p.Graph.pid)
          in
          if completion > d +. eps then
            fail
              (Violation.Local_deadline_missed
                 {
                   pid = p.Graph.pid;
                   process = p.Graph.pname;
                   deadline = d;
                   completion;
                 }))
    (Graph.processes g);
  {
    scenario;
    makespan;
    events = List.sort (fun a b -> compare a.time b.time) !events;
    violations = List.rev !violations;
  }

let frozen_start_violations table =
  let ftcpg = table.Table.ftcpg in
  let violations = ref [] in
  Array.iter
    (fun (v : Ftcpg.vertex) ->
      if v.Ftcpg.frozen then begin
        match Table.starts_of_vertex table v.Ftcpg.vid with
        | [] | [ _ ] -> ()
        | starts ->
            violations :=
              Violation.make
                (Violation.Frozen_drift
                   { vid = v.Ftcpg.vid; vertex = v.Ftcpg.name; starts })
              :: !violations
      end)
    (Ftcpg.vertices ftcpg);
  List.rev !violations

(* ------------------------------------------------------------------ *)
(* Compiled validator                                                  *)
(* ------------------------------------------------------------------ *)

(* Exhaustive validation replays every scenario of the packed arena
   (see {!Ftes_ftcpg.Condvec}) against a pre-compiled form of the
   table — per-vertex arrays of activation columns with packed guards,
   precomputed specificity, lane ids and release times, now housed in
   {!Compiled} because the symbolic backend ({!Symbolic}) replays the
   very same compiled form cube-wise. A replay is pure array
   arithmetic over shared read-only data plus a small per-worker
   scratch — no list walks, no hash tables, and (on the overwhelmingly
   common clean scenario) no allocation at all. That last point is
   what lets the domain pool actually scale: the legacy per-scenario
   path allocated guard lists, trace events and hashtable nodes on
   every replay, serializing workers behind the shared major heap and
   minor-GC stop-the-world pauses — the flat --jobs curve recorded in
   BENCH_PR5.

   The replay checks and their emission order mirror [run] exactly, so
   the violation list (values, order, rendered messages) is
   byte-identical to the legacy path — [validate_reference] below keeps
   that path alive as the cross-check oracle. *)

let compile = Compiled.compile
let make_scratch = Compiled.make_scratch
let replay_one = Compiled.replay_one
let replay_range = Compiled.replay_range

(* Scenarios are sharded into coarse contiguous ranges — a handful per
   domain, not a task per scenario — so each worker streams through its
   slice of the arena with its own scratch. The ordered range merge
   keeps the violation list byte-identical for every [jobs] value. *)
let replay_space ?jobs c sp =
  let total = Condvec.count sp in
  if not (Events.enabled ()) then
    List.concat (Ftes_util.Par.map_ranges ?jobs total (replay_range c sp))
  else begin
    (* Progress events ride on a shared cumulative counter: each range
       reports the new running total as it completes (the event lands
       in the worker's ring and is delivered at the next drain). The
       counter feeds nothing back into the replay, so the violation
       list stays byte-identical events on/off. *)
    let done_ = Atomic.make 0 in
    let range lo hi =
      let vs = replay_range c sp lo hi in
      let n = hi - lo in
      let cleared = Atomic.fetch_and_add done_ n + n in
      Events.emit
        (Events.Validation_progress { backend = "explicit"; cleared; total });
      vs
    in
    let out = List.concat (Ftes_util.Par.map_ranges ?jobs total range) in
    Events.drain ();
    out
  end

(* Early-exit replay: consume the arena in pool-sized batches and trim
   the result to the exact minimal scenario prefix whose cumulative
   violation count reaches [limit]. The trim makes the result
   independent of the batch size — and therefore of [jobs] — while the
   batch size itself scales with the pool so no worker sits idle. *)
let replay_until_space ?jobs ~limit c sp =
  let count = Condvec.count sp in
  let jobs_hint =
    if Ftes_util.Par.in_worker () then 1
    else
      match jobs with
      | Some j -> max 1 j
      | None -> Ftes_util.Par.default_jobs ()
  in
  let batch = max 32 (8 * jobs_hint) in
  let rec go pos found acc =
    if pos >= count then List.concat (List.rev acc)
    else begin
      let hi = min count (pos + batch) in
      let out = Array.make (hi - pos) [] in
      ignore
        (Ftes_util.Par.map_ranges ?jobs (hi - pos) (fun lo hi' ->
             let scr = make_scratch c in
             for off = lo to hi' - 1 do
               Telemetry.incr c_scenarios;
               let vs = replay_one c sp (pos + off) scr in
               if vs <> [] then begin
                 if Telemetry.enabled () then
                   Telemetry.add c_violations (List.length vs);
                 out.(off) <- vs
               end
             done));
      if Events.enabled () then begin
        Events.emit
          (Events.Validation_progress
             { backend = "explicit"; cleared = hi; total = count });
        Events.drain ()
      end;
      let found = ref found in
      let cut = ref (-1) in
      (try
         for off = 0 to Array.length out - 1 do
           match out.(off) with
           | [] -> ()
           | vs ->
               found := !found + List.length vs;
               if !found >= limit then begin
                 cut := off;
                 raise Exit
               end
         done
       with Exit -> ());
      if !cut >= 0 then begin
        let kept = ref [] in
        for off = !cut downto 0 do
          if out.(off) <> [] then kept := out.(off) :: !kept
        done;
        List.concat (List.rev_append acc !kept)
      end
      else go hi !found (List.concat (Array.to_list out) :: acc)
    end
  in
  go 0 0 []

let check_space ?jobs ?stop_after table sp =
  let c = compile table sp.Condvec.u in
  let body () =
    match stop_after with
    | Some limit when limit > 0 ->
        let vs = replay_until_space ?jobs ~limit c sp in
        (* The transparency check only runs when scenario replay did not
           already prove the table bad. *)
        if List.length vs >= limit then vs
        else vs @ frozen_start_violations table
    | _ -> replay_space ?jobs c sp @ frozen_start_violations table
  in
  if Telemetry.enabled () then
    Telemetry.with_span ~cat:"sim"
      ~args:[ ("scenarios", Telemetry.Int (Condvec.count sp)) ]
      "sim.validate" body
  else body ()

(* [`Auto] picks the symbolic backend only when the scenario count is
   provably known (frozen chain structure) and large enough that the
   explicit arena would dominate; the explicit path keeps its
   byte-identical legacy behavior as the default. *)
let auto_threshold = 65_536.

type mode = [ `Explicit | `Symbolic | `Auto ]

let validate ?jobs ?stop_after ?(mode = `Explicit) table =
  let explicit () =
    check_space ?jobs ?stop_after table
      (Ftcpg.scenario_space table.Table.ftcpg)
  in
  let symbolic () =
    let body () =
      let vs = Symbolic.check ?jobs ?stop_after table in
      match stop_after with
      | Some limit when limit > 0 && List.length vs >= limit -> vs
      | _ -> vs @ frozen_start_violations table
    in
    if Telemetry.enabled () then
      Telemetry.with_span ~cat:"sim" "sim.validate.symbolic" body
    else body ()
  in
  match mode with
  | `Explicit -> explicit ()
  | `Symbolic -> symbolic ()
  | `Auto -> (
      match Symbolic.frozen_scenario_count table.Table.ftcpg with
      | Some count when count > auto_threshold -> symbolic ()
      | Some _ | None -> explicit ())

let validate_sampled ?jobs ?stop_after ~rng ~samples table =
  let sp = Ftcpg.scenario_space table.Table.ftcpg in
  let total = Condvec.count sp in
  (* Sample by index over the arena instead of materializing the full
     guard list. Shuffling an index array of the same length consumes
     exactly the [Rng] draws the historical [Rng.sample] made, so the
     chosen scenario set is byte-identical to the list implementation. *)
  let idx = Array.init total Fun.id in
  Ftes_util.Rng.shuffle rng idx;
  let keep = min samples total in
  let no_fault = ref [] in
  for i = total - 1 downto 0 do
    if Condvec.fault_count sp i = 0 then
      no_fault := Condvec.guard_at sp i :: !no_fault
  done;
  let sampled = List.init keep (fun j -> Condvec.guard_at sp idx.(j)) in
  let chosen = List.sort_uniq Cond.compare (!no_fault @ sampled) in
  check_space ?jobs ?stop_after table (Condvec.of_guards sp.Condvec.u chosen)

(* The pre-compilation explicit path, retained as a cross-check oracle:
   the packed-equivalence tests and the bench digest-identity assertion
   compare {!validate} against this. Bypasses the packed arena and the
   scenario telemetry counters entirely. *)
let validate_reference ?jobs table =
  Ftes_util.Par.concat_map ?jobs
    (fun s -> (run table ~scenario:s).violations)
    (Ftcpg.scenarios table.Table.ftcpg)
  @ frozen_start_violations table

(* String-compatible wrappers: the historical API, used by the ordered-
   merge determinism tests and by log-oriented callers. *)
let messages = List.map Violation.to_string
let validate_messages ?jobs table = messages (validate ?jobs table)

let validate_sampled_messages ?jobs ~rng ~samples table =
  messages (validate_sampled ?jobs ~rng ~samples table)

let frozen_start_messages table = messages (frozen_start_violations table)

let pp_outcome ppf o =
  Format.fprintf ppf "@[<v>scenario faults=%d makespan=%g%s@,"
    (Cond.fault_count o.scenario)
    o.makespan
    (if o.violations = [] then "" else "  VIOLATIONS:");
  List.iter
    (fun v -> Format.fprintf ppf "  ! %s@," (Violation.to_string v))
    o.violations;
  List.iter (fun e -> Format.fprintf ppf "  %8.1f %s@," e.time e.what) o.events;
  Format.fprintf ppf "@]"
