(** Symbolic scenario-family validation.

    Exhaustive explicit validation ({!Sim.validate}) replays every
    complete fault scenario of the FT-CPG — [C(n, k)]-many — against
    the compiled schedule table. This backend replays {e cubes}: sets
    of condition vectors that fix a subset of conditions to
    {absent, present no-fault, present fault} and leave the rest free,
    over the same {!Compiled} table form.

    A cube splits (three ways, on one condition) only when a schedule
    column guard actually distinguishes its members {e relative to the
    vertex existence guard}; existence guards themselves are never
    split on — every check is instead gated on a satisfiability query
    over the scenario family ({!Ftes_ftcpg.Ftcpg.scenario_family}),
    whose witness row doubles as the concrete counterexample. Cleared
    cubes enter an antichain (generalized to the fields the replay
    actually read, when sound) that prunes subsumed pending work.

    Guarantees, pinned by the test suite:

    - {b Verdict equivalence}: clean here iff clean under
      {!Sim.validate} / {!Sim.validate_reference}, for every table.
    - {b Witness soundness}: every returned violation comes from an
      explicit {!Compiled.replay_one} of a concretized witness
      scenario, so it is a genuine explicit violation (same constructor
      values and rendering).
    - {b Determinism}: verdict, witnesses and violation order are
      identical for every [jobs] value.

    The returned list is {e per witness scenario}, not the full
    explicit enumeration: a failing cube is reported through one
    concretized member (minimal-fault), where explicit mode would list
    every failing scenario. On transparent (fully frozen) tables the
    clean case typically costs a single cube replay with no splits,
    independent of the scenario count — that is the whole point. *)

type stats = {
  cubes : int;  (** Cubes replayed (excluding subsumption-pruned). *)
  splits : int;  (** Cube splits (each spawns three children). *)
  subsumed : int;  (** Pending cubes pruned by the antichain. *)
  empties : int;
      (** Cubes dropped because no complete scenario lies inside them
          (split children can be infeasible; feasible leaves partition
          the scenario set, which bounds the total replay count). *)
  sat_queries : int;  (** Family satisfiability queries consulted. *)
  witnesses : int;  (** Failing cubes concretized to a witness. *)
  antichain : int;  (** Final antichain size. *)
  rounds : int;  (** Worklist rounds (parallel fan-out barriers). *)
}

val check :
  ?jobs:int -> ?stop_after:int -> Ftes_sched.Table.t -> Violation.t list
(** Validate the table symbolically. [jobs] parallelizes cube replay
    within each worklist round (result is [jobs]-invariant);
    [stop_after] stops refining once that many violations have been
    confirmed (the result may exceed it by the last round's findings).
    Does {e not} include {!Sim.frozen_start_violations} — callers go
    through {!Sim.validate} with [~mode:`Symbolic] for the composed
    check. *)

val check_stats :
  ?jobs:int ->
  ?stop_after:int ->
  Ftes_sched.Table.t ->
  Violation.t list * stats
(** {!check} plus the work counters (also published as
    [sim.symbolic.*] telemetry). *)

val frozen_scenario_count : Ftes_ftcpg.Ftcpg.t -> float option
(** Exact size of the complete-scenario set, computed in closed form
    when the FT-CPG's conditions form disjoint frozen re-execution
    chains (each condition guarded by exactly the fault literals of
    its chain prefix). [None] when the structure does not match — the
    count is only claimed when provably exact. This is what lets
    [`Auto] mode and the corpus pick the symbolic backend without
    enumerating the arena first. *)
