module Cond = Ftes_ftcpg.Cond

type kind =
  | Missing_activation of { vid : int; vertex : string }
  | Ambiguous_activation of {
      vid : int;
      vertex : string;
      start : float;
      alt_start : float;
    }
  | Ambiguous_broadcast of {
      vid : int;
      cond : string;
      start : float;
      alt_start : float;
    }
  | Never_broadcast of { vid : int; cond : string }
  | Broadcast_before_produced of {
      vid : int;
      cond : string;
      bcast_start : float;
      produced : float;
    }
  | Causality of {
      vid : int;
      vertex : string;
      start : float;
      pred : int;
      pred_name : string;
      pred_finish : float;
    }
  | Distributed_knowledge of {
      vid : int;
      vertex : string;
      start : float;
      cond_vid : int;
      cond : string;
      learned : float;
    }
  | Release of { vid : int; vertex : string; start : float; release : float }
  | Resource_overlap of {
      vid : int;
      vertex : string;
      other_vid : int;
      other : string;
    }
  | Deadline_missed of { deadline : float; completion : float }
  | Local_deadline_missed of {
      pid : int;
      process : string;
      deadline : float;
      completion : float;
    }
  | Frozen_drift of { vid : int; vertex : string; starts : float list }

type t = {
  kind : kind;
  scenario : Cond.guard option;
  scenario_label : string option;
}

let make ?scenario ?scenario_label kind = { kind; scenario; scenario_label }

let kind_label v =
  match v.kind with
  | Missing_activation _ -> "missing-activation"
  | Ambiguous_activation _ -> "ambiguous-activation"
  | Ambiguous_broadcast _ -> "ambiguous-broadcast"
  | Never_broadcast _ -> "never-broadcast"
  | Broadcast_before_produced _ -> "broadcast-before-produced"
  | Causality _ -> "causality"
  | Distributed_knowledge _ -> "distributed-knowledge"
  | Release _ -> "release"
  | Resource_overlap _ -> "resource-overlap"
  | Deadline_missed _ -> "deadline-missed"
  | Local_deadline_missed _ -> "local-deadline-missed"
  | Frozen_drift _ -> "frozen-drift"

let vertex_id v =
  match v.kind with
  | Missing_activation { vid; _ }
  | Ambiguous_activation { vid; _ }
  | Ambiguous_broadcast { vid; _ }
  | Never_broadcast { vid; _ }
  | Broadcast_before_produced { vid; _ }
  | Causality { vid; _ }
  | Distributed_knowledge { vid; _ }
  | Release { vid; _ }
  | Resource_overlap { vid; _ }
  | Frozen_drift { vid; _ } ->
      Some vid
  | Local_deadline_missed { pid; _ } -> Some pid
  | Deadline_missed _ -> None

let vertex_name v =
  match v.kind with
  | Missing_activation { vertex; _ }
  | Ambiguous_activation { vertex; _ }
  | Causality { vertex; _ }
  | Distributed_knowledge { vertex; _ }
  | Release { vertex; _ }
  | Resource_overlap { vertex; _ }
  | Frozen_drift { vertex; _ } ->
      Some vertex
  | Ambiguous_broadcast { cond; _ }
  | Never_broadcast { cond; _ }
  | Broadcast_before_produced { cond; _ } ->
      Some cond
  | Local_deadline_missed { process; _ } -> Some process
  | Deadline_missed _ -> None

(* The exact historical renderings: same format strings (hence the same
   %g float notation) the simulator used to feed Format.kasprintf. *)
let to_string v =
  let scenario () = Option.value v.scenario_label ~default:"true" in
  match v.kind with
  | Missing_activation { vertex; _ } ->
      Printf.sprintf "vertex %s reachable but has no applicable activation"
        vertex
  | Ambiguous_activation { vertex; start; alt_start; _ } ->
      Printf.sprintf "vertex %s has ambiguous activations at %g and %g in %s"
        vertex start alt_start (scenario ())
  | Ambiguous_broadcast { cond; start; alt_start; _ } ->
      Printf.sprintf "condition %s has ambiguous broadcasts at %g and %g in %s"
        cond start alt_start (scenario ())
  | Never_broadcast { cond; _ } ->
      Printf.sprintf "condition %s is never broadcast" cond
  | Broadcast_before_produced { cond; bcast_start; produced; _ } ->
      Printf.sprintf "condition %s broadcast at %g before it is produced at %g"
        cond bcast_start produced
  | Causality { vertex; start; pred_name; pred_finish; _ } ->
      Printf.sprintf "%s starts at %g before predecessor %s finishes at %g (%s)"
        vertex start pred_name pred_finish (scenario ())
  | Distributed_knowledge { vertex; start; cond; learned; _ } ->
      Printf.sprintf
        "%s starts at %g before learning %s (broadcast finishes at %g)" vertex
        start cond learned
  | Release { vertex; start; release; _ } ->
      Printf.sprintf "%s starts at %g before its release %g" vertex start
        release
  | Resource_overlap { vertex; other; _ } ->
      Printf.sprintf "%s and %s overlap on the same resource in %s" vertex
        other (scenario ())
  | Deadline_missed { deadline; completion } ->
      Printf.sprintf "deadline %g missed: completion %g in %s" deadline
        completion (scenario ())
  | Local_deadline_missed { process; deadline; completion; _ } ->
      Printf.sprintf "%s misses local deadline %g (completes %g) in %s" process
        deadline completion (scenario ())
  | Frozen_drift { vertex; starts; _ } ->
      Format.asprintf "frozen vertex %s has several start times: %a" vertex
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           Format.pp_print_float)
        starts

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

(* 17 significant digits round-trip any finite double. *)
let json_float f = Printf.sprintf "%.17g" f

let json_obj fields =
  "{"
  ^ String.concat ", "
      (List.map (fun (k, v) -> json_string k ^ ": " ^ v) fields)
  ^ "}"

let kind_fields = function
  | Missing_activation { vid; vertex } ->
      [ ("vertex", string_of_int vid); ("vertex_name", json_string vertex) ]
  | Ambiguous_activation { vid; vertex; start; alt_start } ->
      [
        ("vertex", string_of_int vid);
        ("vertex_name", json_string vertex);
        ("start", json_float start);
        ("alt_start", json_float alt_start);
      ]
  | Ambiguous_broadcast { vid; cond; start; alt_start } ->
      [
        ("vertex", string_of_int vid);
        ("condition", json_string cond);
        ("start", json_float start);
        ("alt_start", json_float alt_start);
      ]
  | Never_broadcast { vid; cond } ->
      [ ("vertex", string_of_int vid); ("condition", json_string cond) ]
  | Broadcast_before_produced { vid; cond; bcast_start; produced } ->
      [
        ("vertex", string_of_int vid);
        ("condition", json_string cond);
        ("broadcast_start", json_float bcast_start);
        ("produced", json_float produced);
      ]
  | Causality { vid; vertex; start; pred; pred_name; pred_finish } ->
      [
        ("vertex", string_of_int vid);
        ("vertex_name", json_string vertex);
        ("start", json_float start);
        ("pred", string_of_int pred);
        ("pred_name", json_string pred_name);
        ("pred_finish", json_float pred_finish);
      ]
  | Distributed_knowledge { vid; vertex; start; cond_vid; cond; learned } ->
      [
        ("vertex", string_of_int vid);
        ("vertex_name", json_string vertex);
        ("start", json_float start);
        ("condition_vertex", string_of_int cond_vid);
        ("condition", json_string cond);
        ("broadcast_finish", json_float learned);
      ]
  | Release { vid; vertex; start; release } ->
      [
        ("vertex", string_of_int vid);
        ("vertex_name", json_string vertex);
        ("start", json_float start);
        ("release", json_float release);
      ]
  | Resource_overlap { vid; vertex; other_vid; other } ->
      [
        ("vertex", string_of_int vid);
        ("vertex_name", json_string vertex);
        ("other_vertex", string_of_int other_vid);
        ("other_name", json_string other);
      ]
  | Deadline_missed { deadline; completion } ->
      [ ("deadline", json_float deadline); ("completion", json_float completion) ]
  | Local_deadline_missed { pid; process; deadline; completion } ->
      [
        ("process", string_of_int pid);
        ("process_name", json_string process);
        ("deadline", json_float deadline);
        ("completion", json_float completion);
      ]
  | Frozen_drift { vid; vertex; starts } ->
      [
        ("vertex", string_of_int vid);
        ("vertex_name", json_string vertex);
        ( "starts",
          "[" ^ String.concat ", " (List.map json_float starts) ^ "]" );
      ]

let scenario_fields v =
  match v.scenario with
  | None -> []
  | Some g ->
      let lits =
        List.map
          (fun (l : Cond.literal) ->
            json_obj
              [
                ("cond", string_of_int l.Cond.cond);
                ("fault", if l.Cond.fault then "true" else "false");
              ])
          (Cond.literals g)
      in
      (match v.scenario_label with
      | Some lbl -> [ ("scenario", json_string lbl) ]
      | None -> [])
      @ [ ("scenario_literals", "[" ^ String.concat ", " lits ^ "]") ]

let to_json v =
  json_obj
    ((("kind", json_string (kind_label v)) :: kind_fields v.kind)
    @ scenario_fields v
    @ [ ("message", json_string (to_string v)) ])

let list_to_json vs =
  "[" ^ String.concat ",\n " (List.map to_json vs) ^ "]"
