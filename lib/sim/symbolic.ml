(* Symbolic scenario-family validation: replay whole *cubes* of
   condition vectors through the compiled schedule table instead of one
   packed row at a time. See symbolic.mli for the contract; the notes
   here cover the exactness argument, which is the part that is easy to
   get wrong.

   A cube fixes a subset of condition fields to {absent, present
   no-fault, present fault} and leaves the rest free; it denotes the
   set of complete scenarios (members) consistent with those fixations.
   The replay of a cube mirrors [Compiled.replay_one] with two twists:

   - Existence guards are never split on. A vertex is [In] (exists in
     every member), [Out] (in none) or [Maybe]; [Maybe] is fine because
     every check below is anyway gated on a satisfiability query that
     restricts to the members where its vertices exist. Splitting on
     existence guards would fix every condition and collapse the cube
     set into the explicit enumeration.

   - Column guards are tested *relative to the vertex guard*: a column
     field fixed by the vertex guard must simply agree (the column is
     dead for existing members otherwise); a field fixed by the cube is
     compared; only a field fixed by neither actually distinguishes
     members, and that is the single place a cube splits (three ways:
     absent / present no-fault / present fault).

   With every column test uniform across (existing) members, the chosen
   columns and all float quantities of the replay are member-
   independent. Each potential violation then fires for *some* member
   iff the associated existence query is satisfiable:

     Missing/Ambiguous activation, Release, Distributed knowledge
                                -> SAT(cube /\ vguard vid)
     Never/Ambiguous/Early broadcast -> SAT(cube /\ vguard cv)
     Causality                  -> SAT(cube /\ vguard vid /\ vguard pred)
     Resource overlap           -> SAT(cube /\ vguard a /\ vguard b)
     Global deadline            -> exists vid with finish > deadline
                                   and SAT(cube /\ vguard vid)
     Local deadline             -> per copy, like the global one

   SAT is a tiny constrained DFS over the scenario family (existence
   guards only reference earlier conditions, so presence is decided by
   the prefix; values branch no-fault first under the fault budget);
   its witness row is both the proof and the concrete counterexample,
   which [Compiled.replay_one] on a one-row space then replays
   explicitly — so every reported violation is a genuine explicit
   violation by construction.

   Splitting partitions a cube's member set, but a child can be empty:
   fixing a value the existence structure forbids (say, a fault on a
   condition whose whole chain prefix the cube holds fault-free) yields
   a cube with no complete scenario inside. Such cubes prove nothing
   and — worse — their column guards still read as Mixed, so they would
   keep splitting toward the full 3^n syntactic cube tree even when the
   member set is tiny. Every replay therefore opens with a feasibility
   query (member_exists against no extra guards); empty cubes are
   dropped on the spot. Feasible leaves partition the scenario set, so
   the total replay count is bounded by the member count times the
   split depth rather than by the syntactic tree.

   Cleared cubes enter an antichain. A clean replay that consulted no
   SAT query read only (a) vertex-guard fields and (b) the cube fields
   accumulated in its support mask, so it may be generalized to that
   support before insertion: any cube agreeing on the support replays
   to the same uniform choices and the same passing float checks. A
   replay that did consult SAT is inserted ungeneralized (a larger cube
   could flip an unsat gate to sat). Failing cubes never enter the
   antichain, so subsumption pruning cannot mask a violation.

   Worklist processing is round-based: the pending cubes of a round are
   pruned against the antichain, replayed in parallel, and merged back
   in input order (children appended absent / no-fault / fault), so the
   verdict, the witness set and the violation list are identical for
   every [jobs] value. *)

module Cond = Ftes_ftcpg.Cond
module Condvec = Ftes_ftcpg.Condvec
module Ftcpg = Ftes_ftcpg.Ftcpg
module Table = Ftes_sched.Table
module Telemetry = Ftes_util.Telemetry
module Events = Ftes_util.Events

let c_cubes = Telemetry.counter "sim.symbolic.cubes"
let c_splits = Telemetry.counter "sim.symbolic.splits"
let c_subsumed = Telemetry.counter "sim.symbolic.subsumed"
let c_empties = Telemetry.counter "sim.symbolic.empties"
let c_sat = Telemetry.counter "sim.symbolic.sat_queries"

let fpw = Condvec.fields_per_word
let eps = Compiled.eps

type stats = {
  cubes : int;
  splits : int;
  subsumed : int;
  empties : int;
  sat_queries : int;
  witnesses : int;
  antichain : int;
  rounds : int;
}

(* A cube: [cmask] has both bits of every fixed field set; [cbits]
   holds, within the mask, 0 = absent, 1 = present no-fault, 3 =
   present fault (the Condvec row encoding). Free fields are zero in
   both. *)
type cube = { cmask : int array; cbits : int array }

let top words = { cmask = Array.make words 0; cbits = Array.make words 0 }

let fix cube idx v =
  let w = idx / fpw and shift = 2 * (idx mod fpw) in
  let cmask = Array.copy cube.cmask and cbits = Array.copy cube.cbits in
  cmask.(w) <- cmask.(w) lor (3 lsl shift);
  cbits.(w) <- cbits.(w) land lnot (3 lsl shift) lor (v lsl shift);
  { cmask; cbits }

(* [a] subsumes [b] iff every fixation of [a] appears identically in
   [b] — then b's members are a subset of a's. *)
let subsumes a b =
  let n = Array.length a.cmask in
  let rec go w =
    w >= n
    || (a.cmask.(w) land b.cmask.(w) = a.cmask.(w)
       && b.cbits.(w) land a.cmask.(w) = a.cbits.(w)
       && go (w + 1))
  in
  go 0

(* Lowest fixed-or-tested field index inside a word mask. *)
let field_of_bit w m =
  let rec go shift =
    if (m lsr shift) land 3 <> 0 then (w * fpw) + (shift / 2)
    else go (shift + 2)
  in
  go 0

type tri = True | False | Mixed of int

(* Truth of a packed guard over a cube, reading only cube fixations;
   covered fields are accumulated into [support] (they were read, so a
   generalization must keep them). *)
let test_guard support cube gm gb =
  let n = Array.length gm in
  let mixed = ref (-1) in
  let ok = ref True in
  (try
     for w = 0 to n - 1 do
       let m = gm.(w) in
       if m <> 0 then begin
         let covered = m land cube.cmask.(w) in
         support.(w) <- support.(w) lor covered;
         if cube.cbits.(w) land covered <> gb.(w) land covered then begin
           ok := False;
           raise Exit
         end;
         let free = m land lnot cube.cmask.(w) in
         if free <> 0 && !mixed < 0 then mixed := field_of_bit w free
       end
     done
   with Exit -> ());
  match !ok with
  | False -> False
  | _ -> if !mixed >= 0 then Mixed !mixed else True

(* Truth of a column guard relative to a vertex guard: fields the
   vertex guard fixes must agree (else the column is dead for every
   existing member); remaining fields resolve against the cube. *)
let test_col support cube vm vb gm gb =
  let n = Array.length gm in
  let mixed = ref (-1) in
  let ok = ref True in
  (try
     for w = 0 to n - 1 do
       let m = gm.(w) in
       if m <> 0 then begin
         let on_v = m land vm.(w) in
         if gb.(w) land on_v <> vb.(w) land on_v then begin
           ok := False;
           raise Exit
         end;
         let rest = m land lnot vm.(w) in
         let covered = rest land cube.cmask.(w) in
         support.(w) <- support.(w) lor covered;
         if cube.cbits.(w) land covered <> gb.(w) land covered then begin
           ok := False;
           raise Exit
         end;
         let free = rest land lnot cube.cmask.(w) in
         if free <> 0 && !mixed < 0 then mixed := field_of_bit w free
       end
     done
   with Exit -> ());
  match !ok with
  | False -> False
  | _ -> if !mixed >= 0 then Mixed !mixed else True

(* ------------------------------------------------------------------ *)
(* Satisfiability over the scenario family                             *)
(* ------------------------------------------------------------------ *)

type fam_ctx = {
  u : Condvec.universe;
  nconds : int;
  words : int;
  budget : int;
  eguards : Condvec.guard array;  (* existence guard per field *)
}

exception Contradiction

(* Is there a complete scenario inside [cube] implying every guard of
   [extra]? Returns a witness row. Presence of condition [i] is forced
   by the prefix (existence guards reference earlier fields only);
   values branch no-fault first under the fault budget, so the witness
   is the minimal-fault member exhibiting the violation. *)
let member_exists fam cube extra =
  let words = fam.words in
  let rm = Array.make words 0 and rb = Array.make words 0 in
  try
    List.iter
      (fun g ->
        let gm, gb = Condvec.guard_words g in
        for w = 0 to words - 1 do
          let both = rm.(w) land gm.(w) in
          if rb.(w) land both <> gb.(w) land both then raise Contradiction;
          rm.(w) <- rm.(w) lor gm.(w);
          rb.(w) <- rb.(w) lor gb.(w)
        done)
      extra;
    for w = 0 to words - 1 do
      let both = rm.(w) land cube.cmask.(w) in
      if rb.(w) land both <> cube.cbits.(w) land both then raise Contradiction
    done;
    let row = Condvec.create_row fam.u in
    let rec go i faults =
      if i >= fam.nconds then true
      else begin
        let w = i / fpw and shift = 2 * (i mod fpw) in
        let req = (rm.(w) lsr shift) land 3 in
        let reqv = (rb.(w) lsr shift) land 3 in
        let cfix = (cube.cmask.(w) lsr shift) land 3 in
        let cval = (cube.cbits.(w) lsr shift) land 3 in
        if Condvec.row_implies row fam.eguards.(i) then begin
          (* Condition exists: pick no-fault (1) or fault (3). *)
          let allowed v = (req = 0 || reqv = v) && (cfix = 0 || cval = v) in
          let try_value v faults' =
            allowed v
            &&
            (Condvec.set fam.u row i (v = 3);
             if go (i + 1) faults' then true
             else begin
               Condvec.unset fam.u row i;
               false
             end)
          in
          try_value 1 faults || (faults < fam.budget && try_value 3 (faults + 1))
        end
        else
          (* Condition absent: contradicts any demand for presence. *)
          req = 0 && (cfix = 0 || cval = 0) && go (i + 1) faults
      end
    in
    if go 0 0 then Some row else None
  with Contradiction -> None

(* ------------------------------------------------------------------ *)
(* Cube replay                                                         *)
(* ------------------------------------------------------------------ *)

type reply =
  | Split of int  (* free field a column guard distinguishes *)
  | Empty  (* no complete scenario inside the cube *)
  | Clean of { support : int array; sat_used : bool; sats : int }
  | Failed of { witness : Condvec.row; sats : int }

exception Do_split of int
exception Bad of Condvec.row

let st_out = 0 (* vertex exists in no member *)

let rec replay_cube (c : Compiled.t) fam (cube : cube) =
  (* Feasibility gate: an empty cube would still split on Mixed column
     guards, growing the syntactic 3^n tree; drop it before it costs
     anything. The query does not feed the verdict, so it leaves the
     generalization soundness of a later Clean untouched. *)
  if member_exists fam cube [] = None then Empty
  else replay_feasible c fam cube

and replay_feasible (c : Compiled.t) fam (cube : cube) =
  let n = c.nverts in
  let support = Array.make fam.words 0 in
  let sats = ref 1 (* the feasibility query above *) in
  let sat_used = ref false in
  let vm = Array.make n [||] and vb = Array.make n [||] in
  (* status: 0 = Out, 1 = In or Maybe (the distinction never matters:
     every check is SAT-gated). *)
  let status = Array.make n 1 in
  let chosen = Array.make n (-1) in
  let bfinish = Array.make n Float.nan in
  let guard vid =
    let gm, gb = Condvec.guard_words c.Compiled.vguard.(vid) in
    vm.(vid) <- gm;
    vb.(vid) <- gb
  in
  (* The gate: does the potential violation afflict a real member? On
     yes, the witness row aborts the replay; on no, remember that the
     clean verdict leaned on a SAT answer (blocks generalization). *)
  let gate vids =
    incr sats;
    let extra = List.map (fun v -> c.Compiled.vguard.(v)) vids in
    match member_exists fam cube extra with
    | Some row -> raise (Bad row)
    | None -> sat_used := true
  in
  try
    for vid = 0 to n - 1 do
      guard vid;
      match test_guard support cube vm.(vid) vb.(vid) with
      | False -> status.(vid) <- st_out
      | True | Mixed _ -> ()
    done;
    (* Activation selection, mirroring the explicit replay: most
       specific applicable column, ties by table order, equal-specific
       different-time columns are ambiguous. *)
    let resolve vid cols =
      let best = ref (-1) in
      let best_size = ref (-1) in
      for j = 0 to Array.length cols - 1 do
        let e = cols.(j) in
        let gm, gb = Condvec.guard_words e.Compiled.c_guard in
        match test_col support cube vm.(vid) vb.(vid) gm gb with
        | Mixed f -> raise (Do_split f)
        | False -> ()
        | True ->
            if e.Compiled.c_size > !best_size then begin
              best := j;
              best_size := e.Compiled.c_size
            end
      done;
      !best
    in
    let ambiguous vid cols best =
      let e = cols.(best) in
      let clash = ref false in
      for j = 0 to Array.length cols - 1 do
        let e' = cols.(j) in
        if
          e'.Compiled.c_size = e.Compiled.c_size
          && Float.abs (e'.Compiled.c_start -. e.Compiled.c_start) > eps
        then begin
          let gm, gb = Condvec.guard_words e'.Compiled.c_guard in
          match test_col support cube vm.(vid) vb.(vid) gm gb with
          | Mixed f -> raise (Do_split f)
          | False -> ()
          | True -> clash := true
        end
      done;
      !clash
    in
    for vid = 0 to n - 1 do
      if status.(vid) <> st_out then begin
        let cols = c.Compiled.exec.(vid) in
        let best = resolve vid cols in
        if best < 0 then gate [ vid ] (* Missing_activation *)
        else begin
          if ambiguous vid cols best then gate [ vid ];
          chosen.(vid) <- best
        end
      end
    done;
    (* Broadcast arrival of each revealed condition. *)
    for vid = 0 to n - 1 do
      if c.Compiled.vconditional.(vid) && status.(vid) <> st_out
         && chosen.(vid) >= 0
      then begin
        let e = c.Compiled.exec.(vid).(chosen.(vid)) in
        if c.Compiled.nnodes <= 1 then bfinish.(vid) <- e.Compiled.c_finish
        else begin
          let cols = c.Compiled.bcast.(vid) in
          let best = resolve vid cols in
          if best < 0 then gate [ vid ] (* Never_broadcast *)
          else begin
            let b = cols.(best) in
            if ambiguous vid cols best then gate [ vid ];
            if b.Compiled.c_start < e.Compiled.c_finish -. eps then
              gate [ vid ] (* Broadcast_before_produced *);
            bfinish.(vid) <- b.Compiled.c_finish
          end
        end
      end
    done;
    (* Causality, distributed knowledge, release times. *)
    for vid = 0 to n - 1 do
      if status.(vid) <> st_out && chosen.(vid) >= 0 then begin
        let e = c.Compiled.exec.(vid).(chosen.(vid)) in
        let preds = c.Compiled.vpreds.(vid) in
        for pi = 0 to Array.length preds - 1 do
          let p = preds.(pi) in
          if status.(p) <> st_out && chosen.(p) >= 0 then begin
            let pe = c.Compiled.exec.(p).(chosen.(p)) in
            if e.Compiled.c_start < pe.Compiled.c_finish -. eps then
              gate [ vid; p ]
          end
        done;
        let know = c.Compiled.vknow.(vid) in
        for li = 0 to Array.length know - 1 do
          let cv = know.(li) in
          let bf = bfinish.(cv) in
          (* vid's guard carries a literal on cv, so any member where
             vid exists has cv revealed — gating on vguard vid alone is
             exact. *)
          if (not (Float.is_nan bf)) && e.Compiled.c_start < bf -. eps then
            gate [ vid ]
        done;
        let r = c.Compiled.vrelease.(vid) in
        if (not (Float.is_nan r)) && e.Compiled.c_start < r -. eps then
          gate [ vid ]
      end
    done;
    (* Resource exclusivity. *)
    for a = 0 to n - 1 do
      if status.(a) <> st_out && chosen.(a) >= 0 then begin
        let e = c.Compiled.exec.(a).(chosen.(a)) in
        if
          e.Compiled.c_finish -. e.Compiled.c_start > eps
          && e.Compiled.c_lane <> Compiled.no_lane
        then
          for b = a + 1 to n - 1 do
            if status.(b) <> st_out && chosen.(b) >= 0 then begin
              let e' = c.Compiled.exec.(b).(chosen.(b)) in
              if
                e'.Compiled.c_lane = e.Compiled.c_lane
                && e'.Compiled.c_finish -. e'.Compiled.c_start > eps
                && e.Compiled.c_start < e'.Compiled.c_finish -. eps
                && e'.Compiled.c_start < e.Compiled.c_finish -. eps
              then gate [ a; b ]
            end
          done
      end
    done;
    (* Deadlines: a member misses the global deadline iff some vertex
       with a late finish exists in it; same per process copy for local
       deadlines. *)
    for vid = 0 to n - 1 do
      if status.(vid) <> st_out && chosen.(vid) >= 0 then begin
        let f = c.Compiled.exec.(vid).(chosen.(vid)).Compiled.c_finish in
        if f > c.Compiled.deadline +. eps then gate [ vid ]
      end
    done;
    for li = 0 to Array.length c.Compiled.locals - 1 do
      let _, _, d, copies = c.Compiled.locals.(li) in
      for ci = 0 to Array.length copies - 1 do
        let vid = copies.(ci) in
        if status.(vid) <> st_out && chosen.(vid) >= 0 then begin
          let f = c.Compiled.exec.(vid).(chosen.(vid)).Compiled.c_finish in
          if f > d +. eps then gate [ vid ]
        end
      done
    done;
    Clean { support; sat_used = !sat_used; sats = !sats }
  with
  | Do_split f -> Split f
  | Bad row -> Failed { witness = row; sats = !sats }

(* ------------------------------------------------------------------ *)
(* Worklist                                                            *)
(* ------------------------------------------------------------------ *)

let generalize cube support =
  let n = Array.length support in
  let cmask = Array.make n 0 and cbits = Array.make n 0 in
  for w = 0 to n - 1 do
    cmask.(w) <- cube.cmask.(w) land support.(w);
    cbits.(w) <- cube.cbits.(w) land support.(w)
  done;
  { cmask; cbits }

let check_table ?jobs ?stop_after (table : Table.t) =
  let ftcpg = table.Table.ftcpg in
  let family = Ftcpg.scenario_family ftcpg in
  let u = family.Ftcpg.funiverse in
  let fam =
    {
      u;
      nconds = Condvec.size u;
      words = Condvec.words u;
      budget = family.Ftcpg.fbudget;
      eguards = family.Ftcpg.fguards;
    }
  in
  let c = Compiled.compile table u in
  let limit = match stop_after with Some l when l > 0 -> Some l | _ -> None in
  let cubes = ref 0 and splits = ref 0 and subsumed = ref 0 in
  let empties = ref 0 in
  let sat_queries = ref 0 and witnesses = ref 0 and rounds = ref 0 in
  let antichain = ref [] in
  let insert entry =
    if List.exists (fun a -> subsumes a entry) !antichain then ()
    else
      antichain := entry :: List.filter (fun a -> not (subsumes entry a)) !antichain
  in
  let scratch = lazy (Compiled.make_scratch c) in
  let confirm row =
    (* Replay the witness explicitly: the reported violations are the
       real explicit violations of that scenario. *)
    let sp = Condvec.singleton u row in
    Compiled.replay_one c sp 0 (Lazy.force scratch)
  in
  let violations = ref [] in
  let rec loop pending =
    match pending with
    | [] -> ()
    | _ ->
        incr rounds;
        let live =
          List.filter
            (fun cb ->
              if List.exists (fun a -> subsumes a cb) !antichain then begin
                incr subsumed;
                Telemetry.incr c_subsumed;
                false
              end
              else true)
            pending
        in
        let replies = Ftes_util.Par.map ?jobs (replay_cube c fam) live in
        let next = ref [] in
        List.iter2
          (fun cb reply ->
            incr cubes;
            Telemetry.incr c_cubes;
            match reply with
            | Split f ->
                incr splits;
                Telemetry.incr c_splits;
                next := fix cb f 3 :: fix cb f 1 :: fix cb f 0 :: !next
            | Empty ->
                incr empties;
                Telemetry.incr c_empties;
                sat_queries := !sat_queries + 1
            | Clean { support; sat_used; sats } ->
                sat_queries := !sat_queries + sats;
                Telemetry.add c_sat sats;
                insert (if sat_used then cb else generalize cb support)
            | Failed { witness; sats } ->
                sat_queries := !sat_queries + sats;
                Telemetry.add c_sat sats;
                incr witnesses;
                violations := List.rev_append (confirm witness) !violations)
          live replies;
        if Events.enabled () then begin
          (* Cube count so far; the eventual total is unknowable up
             front (splits create work), hence total = 0. *)
          Events.emit
            (Events.Validation_progress
               { backend = "symbolic"; cleared = !cubes; total = 0 });
          Events.drain ()
        end;
        let stop =
          match limit with
          | Some l -> List.length !violations >= l
          | None -> false
        in
        if not stop then loop (List.rev !next)
  in
  loop [ top fam.words ];
  let stats =
    {
      cubes = !cubes;
      splits = !splits;
      subsumed = !subsumed;
      empties = !empties;
      sat_queries = !sat_queries;
      witnesses = !witnesses;
      antichain = List.length !antichain;
      rounds = !rounds;
    }
  in
  (List.rev !violations, stats)

let check ?jobs ?stop_after table = fst (check_table ?jobs ?stop_after table)
let check_stats ?jobs ?stop_after table = check_table ?jobs ?stop_after table

(* ------------------------------------------------------------------ *)
(* Scenario counting for frozen chain structures                       *)
(* ------------------------------------------------------------------ *)

(* Exact scenario count for FT-CPGs whose conditions form disjoint
   chains, each condition guarded by exactly the fault literals of its
   chain prefix (the structure [Ftcpg.build] produces for frozen
   re-execution chains). A chain of c conditions contributes one
   outcome per prefix-fault count j = 0..c; outcomes convolve under the
   global budget. Returns [None] when the structure does not match —
   the count (and with it the [`Auto] heuristic) is only claimed when
   it is provably exact. *)
let frozen_scenario_count ftcpg =
  let family = Ftcpg.scenario_family ftcpg in
  let u = family.Ftcpg.funiverse in
  let n = Condvec.size u in
  let k = family.Ftcpg.fbudget in
  if n = 0 then Some 1.
  else begin
    let lits = Array.make n [] in
    let parent = Array.make n (-1) in
    let child_count = Array.make n 0 in
    let ok = ref true in
    for i = 0 to n - 1 do
      let vid = Condvec.cond_of_index u i in
      let g = (Ftcpg.vertex ftcpg vid).Ftcpg.guard in
      let ls = Cond.literals g in
      lits.(i) <- ls;
      if List.exists (fun (l : Cond.literal) -> not l.Cond.fault) ls then
        ok := false
      else
        match List.rev ls with
        | [] -> ()
        | last :: _ -> (
            match Condvec.index_of_cond u last.Cond.cond with
            | None -> ok := false
            | Some p ->
                parent.(i) <- p;
                child_count.(p) <- child_count.(p) + 1;
                (* the guard must be exactly the parent's guard plus the
                   parent's own fault literal *)
                let expected =
                  lits.(p) @ [ { Cond.cond = last.Cond.cond; fault = true } ]
                in
                if
                  not
                    (List.length ls = List.length expected
                    && List.for_all2
                         (fun (a : Cond.literal) (b : Cond.literal) ->
                           a.Cond.cond = b.Cond.cond && a.Cond.fault = b.Cond.fault)
                         ls expected)
                then ok := false)
    done;
    Array.iter (fun cc -> if cc > 1 then ok := false) child_count;
    if not !ok then None
    else begin
      (* chain lengths: count conditions per root *)
      let chain_len = Hashtbl.create 16 in
      for i = 0 to n - 1 do
        let rec root j = if parent.(j) < 0 then j else root parent.(j) in
        let r = root i in
        Hashtbl.replace chain_len r
          (1 + Option.value (Hashtbl.find_opt chain_len r) ~default:0)
      done;
      let ways = Array.make (k + 1) 0. in
      ways.(0) <- 1.;
      Hashtbl.iter
        (fun _ c ->
          let nw = Array.make (k + 1) 0. in
          for t = 0 to k do
            for j = 0 to min c t do
              nw.(t) <- nw.(t) +. ways.(t - j)
            done
          done;
          Array.blit nw 0 ways 0 (k + 1))
        chain_len;
      Some (Array.fold_left ( +. ) 0. ways)
    end
  end
