(** Counterexample shrinking and violation triage.

    When a schedule table fails fault-injection validation, the raw
    output is one violation per broken invariant per scenario — on a
    [k]-fault instance the same root cause easily repeats across
    hundreds of scenarios. This module turns that flood into a
    counterexample report in the FTOS-Verify spirit: violations are
    grouped by invariant and guilty vertex, and each group's witness
    scenario is shrunk to a minimal fault subset that still fails, so
    the report shows the {e smallest} scenario reproducing each failure
    mode. *)

val shrink :
  Ftes_sched.Table.t ->
  scenario:Ftes_ftcpg.Cond.guard ->
  Ftes_ftcpg.Cond.guard
(** Greedy literal-dropping 1-minimization: repeatedly drop any single
    literal whose removal keeps {!Sim.run} failing (fault literals are
    tried first so the fault count shrinks fastest), until no literal
    can be dropped. The result fails {!Sim.run}, consumes at most as
    many faults as the input, and its literals are a subset of the
    input's. A scenario that does not fail is returned unchanged. Cost:
    O(literals²) simulator runs. *)

type group = {
  kind : string;  (** {!Violation.kind_label} of every member. *)
  vertex : int option;  (** Guilty vertex (or process) id, if any. *)
  vertex_name : string option;
  count : int;  (** Members across all scenarios. *)
  example : Violation.t;  (** First occurrence, in validation order. *)
  shrunk : Ftes_ftcpg.Cond.guard option;
      (** Minimal failing scenario derived from [example]'s scenario;
          [None] when the group is cross-scenario or shrinking was
          capped. *)
  shrunk_label : string option;
      (** [shrunk] rendered with the table's condition names. *)
}

type report = {
  total : int;  (** Violations across all scenarios. *)
  groups : group list;  (** Largest group first. *)
}

val group_violations : Violation.t list -> (string * int option * Violation.t list) list
(** Group by (kind, guilty vertex), preserving first-occurrence order.
    Exposed for custom aggregation. *)

val of_violations :
  ?max_shrinks:int -> Ftes_sched.Table.t -> Violation.t list -> report
(** Build a report from violations already collected (e.g. a sampled
    validation). At most [max_shrinks] groups (default 8, largest
    first) get a shrunk counterexample — shrinking replays the
    simulator many times. *)

val report :
  ?jobs:int -> ?max_shrinks:int -> Ftes_sched.Table.t -> report
(** {!Sim.validate} followed by {!of_violations}. *)

val pp_report : Format.formatter -> report -> unit
(** Human-readable counterexample report: one block per group with the
    occurrence count, an example message and the minimal failing
    scenario. *)

val report_to_json : report -> string
(** Machine-readable rendering of the whole report. *)
