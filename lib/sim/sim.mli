(** Fault-injection simulation of synthesized schedule tables.

    The paper's run-time architecture executes the schedule tables with
    a non-preemptive scheduler on every node: activations fire at their
    table times as condition values become known, condition values are
    broadcast on the bus, and recoveries follow the conditional columns.
    Physical fault injection is replaced by scenario injection — a
    transient fault only flips a condition outcome at the end of the
    affected execution, so executing the table under an injected
    scenario exercises exactly the recovery paths (see DESIGN.md,
    substitution table).

    The simulator replays a {!Ftes_sched.Table.t} under one fault
    scenario and independently re-checks the distributed-execution
    invariants the scheduler is supposed to guarantee:

    - every FT-CPG vertex reachable in the scenario has exactly one
      applicable activation, selected like the run-time scheduler does
      (the most specific table column whose guard holds) — and, per
      item, no two maximally specific columns disagree on the time
      (execution {e and} broadcast columns);
    - causality: an activation never precedes the completion of its
      predecessors in that scenario;
    - distributed knowledge: an activation whose guard tests a remote
      condition never precedes the condition broadcast;
    - resource exclusivity: no two executions overlap on a CPU, no two
      transmissions overlap on the bus (per TDMA lane);
    - transparency: frozen vertices start at the same time in every
      scenario;
    - deadlines: global and local, in every scenario.

    Findings are reported as typed {!Violation.t} records (see
    {!Diagnose} for shrinking and grouping); the [*_messages] wrappers
    retain the historical string renderings byte for byte. *)

type event = {
  time : float;
  what : string;  (** Human-readable trace line. *)
}

type outcome = {
  scenario : Ftes_ftcpg.Cond.guard;
  makespan : float;
  events : event list;  (** Chronological trace. *)
  violations : Violation.t list;  (** Empty iff the scenario executed
                                      correctly. *)
}

val run : Ftes_sched.Table.t -> scenario:Ftes_ftcpg.Cond.guard -> outcome

type mode = [ `Explicit | `Symbolic | `Auto ]
(** Validation backend.

    - [`Explicit] (the default): replay every scenario of the packed
      arena — the byte-identical legacy behavior.
    - [`Symbolic]: replay cubes of scenarios through the same compiled
      table ({!Symbolic}); the verdict (clean / not clean) is always
      identical to explicit mode, every reported violation is an
      explicitly confirmed witness, but a failing table is reported
      through one witness scenario per failing cube instead of the
      full enumeration. Scales with the table's guard structure rather
      than with [C(n, k)] — transparent tables validate in a handful
      of cubes at any [k].
    - [`Auto]: [`Symbolic] when the scenario count is provably known
      in closed form ({!Symbolic.frozen_scenario_count}) and exceeds
      65,536; [`Explicit] otherwise. *)

val validate :
  ?jobs:int ->
  ?stop_after:int ->
  ?mode:mode ->
  Ftes_sched.Table.t ->
  Violation.t list
(** Run every fault scenario (exhaustive — exponential in [k] in
    explicit mode) plus the cross-scenario transparency check; returns
    all violations.

    In explicit mode, scenarios are replayed from the packed arena
    ({!Ftes_ftcpg.Ftcpg.scenario_space}) against a pre-compiled form of
    the table, sharded into coarse contiguous ranges across [jobs]
    domains ([Ftes_util.Par.default_jobs ()] when omitted; [1] is the
    exact sequential code path) with per-range scratch state. The
    per-range violations are merged in scenario order, so the result is
    byte-identical for every [jobs] value — and byte-identical to the
    retained explicit path, {!validate_reference}.

    [stop_after] enables early exit for callers that only need to know
    a table is bad (e.g. optimization loops): replay proceeds in
    pool-sized scenario batches and the result is trimmed to the exact
    minimal scenario prefix whose cumulative violation count reaches
    [stop_after]. The result is then a non-empty prefix of the
    exhaustive violation list (the transparency check is skipped once
    the table is known-bad), independent of [jobs] and of the batch
    size. In symbolic mode, [stop_after] bounds refinement instead; the
    result remains [jobs]-invariant but is not a prefix of the
    explicit list (see {!mode}). *)

val validate_reference : ?jobs:int -> Ftes_sched.Table.t -> Violation.t list
(** The pre-compilation explicit validator: one {!run} per scenario of
    the materialized {!Ftes_ftcpg.Ftcpg.scenarios} list, plus the
    transparency check. Kept as the cross-check oracle for the packed
    path — equivalence tests and the bench digest-identity assertion
    pin [validate_reference t = validate t]. Slower by design; does not
    touch the [sim.scenarios] telemetry counters. *)

val validate_sampled :
  ?jobs:int ->
  ?stop_after:int ->
  rng:Ftes_util.Rng.t ->
  samples:int ->
  Ftes_sched.Table.t ->
  Violation.t list
(** Like {!validate} on a random subset of scenarios (for larger
    instances). The fault-free scenario is always included, so a
    violation-free sampled run at least certifies the nominal
    schedule. Every reported violation is one {!validate} would also
    report — sampling only reduces coverage, never adds noise. *)

val frozen_start_violations : Ftes_sched.Table.t -> Violation.t list
(** Only the cross-scenario transparency check. *)

val validate_messages : ?jobs:int -> Ftes_sched.Table.t -> string list
(** [List.map Violation.to_string (validate ?jobs t)] — the pre-typed
    string API, byte-identical to the historical renderings. *)

val validate_sampled_messages :
  ?jobs:int ->
  rng:Ftes_util.Rng.t ->
  samples:int ->
  Ftes_sched.Table.t ->
  string list

val frozen_start_messages : Ftes_sched.Table.t -> string list

val pp_outcome : Format.formatter -> outcome -> unit
