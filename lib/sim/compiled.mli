(** Pre-compiled schedule tables: the shared substrate of the explicit
    ({!Sim.validate}) and symbolic ({!Symbolic}) validation backends.

    A schedule table is compiled once per validation run into flat
    per-vertex arrays — activation/broadcast columns with packed
    guards, precomputed specificity, integer exclusivity lanes and
    release times — so that replaying a scenario is pure array
    arithmetic over shared read-only data plus a small per-worker
    scratch. The explicit backend runs {!replay_one} over every row of
    a packed scenario arena; the symbolic backend runs the same checks
    over whole cubes at a time and falls back to {!replay_one} on a
    one-row {!Ftes_ftcpg.Condvec.singleton} space to confirm each
    concretized witness, which is what keeps the two backends'
    verdicts aligned by construction.

    The checks of {!replay_one} and their emission order mirror
    [Sim.run] exactly; the violation list (values, order, rendered
    messages) is byte-identical to the legacy explicit path. *)

type centry = {
  c_guard : Ftes_ftcpg.Condvec.guard;
  c_size : int;  (** [Cond.size] of the column guard: specificity. *)
  c_start : float;
  c_finish : float;
  c_lane : int;  (** Exclusivity lane; {!no_lane} for local items. *)
}
(** One schedule-table column (activation or broadcast) in compiled
    form. *)

type t = {
  cftcpg : Ftes_ftcpg.Ftcpg.t;
  nverts : int;
  nnodes : int;
  deadline : float;
  exec : centry array array;
      (** vid -> activation columns, table order. *)
  bcast : centry array array;
      (** vid -> broadcast columns, table order. *)
  vguard : Ftes_ftcpg.Condvec.guard array;  (** Existence guards. *)
  vconditional : bool array;
  vname : string array;
  vcond_name : string array;
  vpreds : int array array;
  vknow : int array array;
      (** Conditions of the vertex guard whose broadcast the activation
          must await (the guard tests a condition produced on another
          node). *)
  vrelease : float array;
      (** nan when the vertex has no release time. *)
  locals : (int * string * float * int array) array;
      (** (pid, name, local deadline, copies), process-array order. *)
}

val no_lane : int
(** Lane id of items exempt from the exclusivity check. *)

val eps : float
(** Float comparison slack shared by all timing checks. *)

val compile : Ftes_sched.Table.t -> Ftes_ftcpg.Condvec.universe -> t

val scenario_name : Ftes_ftcpg.Ftcpg.t -> Ftes_ftcpg.Cond.guard -> string
(** Scenario rendering used in violation labels ("FP2^4 ..."). *)

type scratch
(** Per-worker replay scratch, reused across scenarios. *)

val make_scratch : t -> scratch

val replay_one :
  t -> Ftes_ftcpg.Condvec.space -> int -> scratch -> Violation.t list
(** Replay scenario [i] of the space; violations in the legacy
    emission order. *)

val replay_range :
  t -> Ftes_ftcpg.Condvec.space -> int -> int -> Violation.t list
(** Replay rows [lo, hi) with a fresh local scratch, violations in
    scenario order. Bumps the [sim.scenarios]/[sim.violations]
    telemetry counters. *)

(**/**)

val c_scenarios : Ftes_util.Telemetry.counter
val c_violations : Ftes_util.Telemetry.counter
