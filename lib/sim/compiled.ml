(* The compiled form of a schedule table shared by the explicit
   (arena-replay) and symbolic (cube-replay) validation backends. See
   compiled.mli for the representation story; the checks and their
   emission order in [replay_one] mirror [Sim.run] exactly, so the
   violation list (values, order, rendered messages) is byte-identical
   to the legacy path. *)

module Cond = Ftes_ftcpg.Cond
module Condvec = Ftes_ftcpg.Condvec
module Ftcpg = Ftes_ftcpg.Ftcpg
module Problem = Ftes_ftcpg.Problem
module Table = Ftes_sched.Table
module Graph = Ftes_app.Graph
module App = Ftes_app.App
module Arch = Ftes_arch.Arch
module Bus = Ftes_arch.Bus
module Telemetry = Ftes_util.Telemetry

let c_scenarios = Telemetry.counter "sim.scenarios"
let c_violations = Telemetry.counter "sim.violations"
let eps = 1e-6

let scenario_name ftcpg scenario =
  Cond.to_string ~name:(Ftcpg.cond_name ftcpg) scenario

let no_lane = min_int

type centry = {
  c_guard : Condvec.guard;
  c_size : int;  (* [Cond.size] of the column guard: specificity *)
  c_start : float;
  c_finish : float;
  c_lane : int;  (* exclusivity lane; [no_lane] for local items *)
}

type t = {
  cftcpg : Ftcpg.t;
  nverts : int;
  nnodes : int;
  deadline : float;
  exec : centry array array;  (* vid -> activation columns, table order *)
  bcast : centry array array;  (* vid -> broadcast columns, table order *)
  vguard : Condvec.guard array;
  vconditional : bool array;
  vname : string array;
  vcond_name : string array;
  vpreds : int array array;
  vknow : int array array;
      (* conditions of the vertex guard whose broadcast the activation
         must await (guard tests a condition produced on another node) *)
  vrelease : float array;  (* nan when the vertex has no release time *)
  locals : (int * string * float * int array) array;
      (* (pid, name, local deadline, copies) in process-array order *)
}

let compile (table : Table.t) (u : Condvec.universe) =
  let ftcpg = table.Table.ftcpg in
  let problem = Ftcpg.problem ftcpg in
  let app = problem.Problem.app in
  let g = app.App.graph in
  let n = Ftcpg.vertex_count ftcpg in
  let tdma = Bus.is_tdma (Arch.bus problem.Problem.arch) in
  (* Lane encoding preserving the distinctions of [run]'s lane_of:
     CPUs on even ids, TDMA bus lanes (per sending node) on odd ids,
     the single non-TDMA bus lane on -1. *)
  let lane_of vid (e : Table.entry) =
    match e.Table.resource with
    | Table.Node nid -> 2 * nid
    | Table.Bus ->
        if tdma then
          (2
          * Option.value (Ftcpg.vertex ftcpg vid).Ftcpg.src_node ~default:0)
          + 1
        else -1
    | Table.Local -> no_lane
  in
  let pack vid (e : Table.entry) =
    {
      c_guard = Condvec.pack_guard u e.Table.guard;
      c_size = Cond.size e.Table.guard;
      c_start = e.Table.start;
      c_finish = e.Table.finish;
      c_lane = lane_of vid e;
    }
  in
  (* Group the entry list by item in one pass; per-item order is the
     [entries_of_item] filter order, which the selection and ambiguity
     checks below depend on. *)
  let exec_rev = Array.make n [] in
  let bcast_rev = Array.make n [] in
  List.iter
    (fun (e : Table.entry) ->
      match e.Table.item with
      | Table.Exec vid -> exec_rev.(vid) <- pack vid e :: exec_rev.(vid)
      | Table.Bcast vid -> bcast_rev.(vid) <- pack vid e :: bcast_rev.(vid))
    table.Table.entries;
  let of_rev l = Array.of_list (List.rev l) in
  let vguard = Array.make n (Condvec.guard_true u) in
  let vconditional = Array.make n false in
  let vname = Array.make n "" in
  let vcond_name = Array.make n "" in
  let vpreds = Array.make n [||] in
  let vknow = Array.make n [||] in
  let vrelease = Array.make n Float.nan in
  for vid = 0 to n - 1 do
    let v = Ftcpg.vertex ftcpg vid in
    vguard.(vid) <- Condvec.pack_guard u v.Ftcpg.guard;
    vconditional.(vid) <- v.Ftcpg.conditional;
    vname.(vid) <- v.Ftcpg.name;
    vcond_name.(vid) <- Ftcpg.cond_name ftcpg vid;
    vpreds.(vid) <- Array.of_list v.Ftcpg.preds;
    (let decision_node =
       match v.Ftcpg.kind with
       | Ftcpg.Proc_copy _ -> v.Ftcpg.exec_node
       | Ftcpg.Msg_inst _ | Ftcpg.Sync_msg _ ->
           if v.Ftcpg.on_bus then v.Ftcpg.src_node else None
       | Ftcpg.Sync_proc _ -> None
     in
     match decision_node with
     | None -> ()
     | Some dn ->
         vknow.(vid) <-
           Array.of_list
             (List.filter_map
                (fun (l : Cond.literal) ->
                  match (Ftcpg.vertex ftcpg l.Cond.cond).Ftcpg.exec_node with
                  | Some pn when pn = dn -> None
                  | Some _ | None -> Some l.Cond.cond)
                (Cond.literals v.Ftcpg.guard)));
    match v.Ftcpg.kind with
    | Ftcpg.Proc_copy { pid; _ } ->
        vrelease.(vid) <- (Graph.process g pid).Graph.release
    | Ftcpg.Msg_inst _ | Ftcpg.Sync_msg _ | Ftcpg.Sync_proc _ -> ()
  done;
  let locals =
    Array.to_list (Graph.processes g)
    |> List.filter_map (fun (p : Graph.process) ->
           match p.Graph.local_deadline with
           | None -> None
           | Some d ->
               Some
                 ( p.Graph.pid,
                   p.Graph.pname,
                   d,
                   Array.of_list (Ftcpg.proc_copies ftcpg ~pid:p.Graph.pid) ))
    |> Array.of_list
  in
  {
    cftcpg = ftcpg;
    nverts = n;
    nnodes = Arch.node_count problem.Problem.arch;
    deadline = app.App.deadline;
    exec = Array.map of_rev exec_rev;
    bcast = Array.map of_rev bcast_rev;
    vguard;
    vconditional;
    vname;
    vcond_name;
    vpreds;
    vknow;
    vrelease;
    locals;
  }

(* Per-worker scratch, reused across every scenario of a range. *)
type scratch = {
  s_chosen : int array;  (* vid -> column index in exec.(vid); -1 none *)
  s_bfinish : float array;  (* vid -> broadcast completion; nan unknown *)
  s_active : int array;  (* vids with nonzero-duration activations *)
}

let make_scratch c =
  {
    s_chosen = Array.make c.nverts (-1);
    s_bfinish = Array.make c.nverts Float.nan;
    s_active = Array.make (max 1 c.nverts) 0;
  }

let replay_one c sp i scr =
  let n = c.nverts in
  let violations = ref [] in
  (* The unpacked guard and its rendering only appear in violation
     records — keep the clean replay allocation-free. *)
  let sguard = ref None in
  let slabel = ref None in
  let scenario () =
    match !sguard with
    | Some g -> g
    | None ->
        let g = Condvec.guard_at sp i in
        sguard := Some g;
        g
  in
  let label () =
    match !slabel with
    | Some s -> s
    | None ->
        let s = scenario_name c.cftcpg (scenario ()) in
        slabel := Some s;
        s
  in
  let fail kind =
    let s = scenario () in
    violations :=
      Violation.make ~scenario:s ~scenario_label:(label ()) kind :: !violations
  in
  (* Activation selection: most specific applicable column; first one
     in table order wins ties, any equally specific column with a
     different time is an ambiguity. *)
  let chosen = scr.s_chosen in
  Array.fill chosen 0 n (-1);
  for vid = 0 to n - 1 do
    if Condvec.implies sp i c.vguard.(vid) then begin
      let cols = c.exec.(vid) in
      let best = ref (-1) in
      let best_size = ref (-1) in
      for j = 0 to Array.length cols - 1 do
        let e = cols.(j) in
        if e.c_size > !best_size && Condvec.implies sp i e.c_guard then begin
          best := j;
          best_size := e.c_size
        end
      done;
      if !best < 0 then
        fail (Violation.Missing_activation { vid; vertex = c.vname.(vid) })
      else begin
        let e = cols.(!best) in
        for j = 0 to Array.length cols - 1 do
          let e' = cols.(j) in
          if
            e'.c_size = e.c_size
            && Float.abs (e'.c_start -. e.c_start) > eps
            && Condvec.implies sp i e'.c_guard
          then
            fail
              (Violation.Ambiguous_activation
                 {
                   vid;
                   vertex = c.vname.(vid);
                   start = e.c_start;
                   alt_start = e'.c_start;
                 })
        done;
        chosen.(vid) <- !best
      end
    end
  done;
  (* Broadcast arrival of each condition revealed in this scenario. *)
  let bfinish = scr.s_bfinish in
  Array.fill bfinish 0 n Float.nan;
  for vid = 0 to n - 1 do
    if c.vconditional.(vid) && chosen.(vid) >= 0 then begin
      let e = c.exec.(vid).(chosen.(vid)) in
      if c.nnodes <= 1 then bfinish.(vid) <- e.c_finish
      else begin
        let cols = c.bcast.(vid) in
        let best = ref (-1) in
        let best_size = ref (-1) in
        for j = 0 to Array.length cols - 1 do
          let b = cols.(j) in
          if b.c_size > !best_size && Condvec.implies sp i b.c_guard then begin
            best := j;
            best_size := b.c_size
          end
        done;
        if !best < 0 then
          fail (Violation.Never_broadcast { vid; cond = c.vcond_name.(vid) })
        else begin
          let b = cols.(!best) in
          for j = 0 to Array.length cols - 1 do
            let b' = cols.(j) in
            if
              b'.c_size = b.c_size
              && Float.abs (b'.c_start -. b.c_start) > eps
              && Condvec.implies sp i b'.c_guard
            then
              fail
                (Violation.Ambiguous_broadcast
                   {
                     vid;
                     cond = c.vcond_name.(vid);
                     start = b.c_start;
                     alt_start = b'.c_start;
                   })
          done;
          if b.c_start < e.c_finish -. eps then
            fail
              (Violation.Broadcast_before_produced
                 {
                   vid;
                   cond = c.vcond_name.(vid);
                   bcast_start = b.c_start;
                   produced = e.c_finish;
                 });
          bfinish.(vid) <- b.c_finish
        end
      end
    end
  done;
  (* Causality, distributed knowledge, release times. *)
  for vid = 0 to n - 1 do
    if chosen.(vid) >= 0 then begin
      let e = c.exec.(vid).(chosen.(vid)) in
      let preds = c.vpreds.(vid) in
      for pi = 0 to Array.length preds - 1 do
        let p = preds.(pi) in
        if chosen.(p) >= 0 then begin
          let pe = c.exec.(p).(chosen.(p)) in
          if e.c_start < pe.c_finish -. eps then
            fail
              (Violation.Causality
                 {
                   vid;
                   vertex = c.vname.(vid);
                   start = e.c_start;
                   pred = p;
                   pred_name = c.vname.(p);
                   pred_finish = pe.c_finish;
                 })
        end
      done;
      let know = c.vknow.(vid) in
      for li = 0 to Array.length know - 1 do
        let cv = know.(li) in
        let bf = bfinish.(cv) in
        if (not (Float.is_nan bf)) && e.c_start < bf -. eps then
          fail
            (Violation.Distributed_knowledge
               {
                 vid;
                 vertex = c.vname.(vid);
                 start = e.c_start;
                 cond_vid = cv;
                 cond = c.vcond_name.(cv);
                 learned = bf;
               })
      done;
      let r = c.vrelease.(vid) in
      if (not (Float.is_nan r)) && e.c_start < r -. eps then
        fail
          (Violation.Release
             { vid; vertex = c.vname.(vid); start = e.c_start; release = r })
    end
  done;
  (* Resource exclusivity. *)
  let active = scr.s_active in
  let na = ref 0 in
  for vid = 0 to n - 1 do
    if chosen.(vid) >= 0 then begin
      let e = c.exec.(vid).(chosen.(vid)) in
      if e.c_finish -. e.c_start > eps then begin
        active.(!na) <- vid;
        incr na
      end
    end
  done;
  for a = 0 to !na - 1 do
    let vid = active.(a) in
    let e = c.exec.(vid).(chosen.(vid)) in
    let la = e.c_lane in
    if la <> no_lane then
      for b = a + 1 to !na - 1 do
        let vid' = active.(b) in
        let e' = c.exec.(vid').(chosen.(vid')) in
        if
          e'.c_lane = la
          && e.c_start < e'.c_finish -. eps
          && e'.c_start < e.c_finish -. eps
        then
          fail
            (Violation.Resource_overlap
               {
                 vid;
                 vertex = c.vname.(vid);
                 other_vid = vid';
                 other = c.vname.(vid');
               })
      done
  done;
  (* Deadlines. *)
  let makespan = ref 0. in
  for vid = 0 to n - 1 do
    if chosen.(vid) >= 0 then begin
      let f = c.exec.(vid).(chosen.(vid)).c_finish in
      if f > !makespan then makespan := f
    end
  done;
  if !makespan > c.deadline +. eps then
    fail
      (Violation.Deadline_missed
         { deadline = c.deadline; completion = !makespan });
  for li = 0 to Array.length c.locals - 1 do
    let pid, pname, d, copies = c.locals.(li) in
    let completion = ref 0. in
    for ci = 0 to Array.length copies - 1 do
      let vid = copies.(ci) in
      if chosen.(vid) >= 0 then begin
        let f = c.exec.(vid).(chosen.(vid)).c_finish in
        if f > !completion then completion := f
      end
    done;
    if !completion > d +. eps then
      fail
        (Violation.Local_deadline_missed
           { pid; process = pname; deadline = d; completion = !completion })
  done;
  List.rev !violations

(* Replay one contiguous arena range with range-local scratch,
   collecting violations in scenario order. *)
let replay_range c sp lo hi =
  let scr = make_scratch c in
  let acc = ref [] in
  for i = lo to hi - 1 do
    Telemetry.incr c_scenarios;
    let vs = replay_one c sp i scr in
    if vs <> [] then begin
      if Telemetry.enabled () then Telemetry.add c_violations (List.length vs);
      acc := List.rev_append vs !acc
    end
  done;
  List.rev !acc
