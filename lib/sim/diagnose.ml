module Cond = Ftes_ftcpg.Cond
module Ftcpg = Ftes_ftcpg.Ftcpg
module Table = Ftes_sched.Table

let still_fails table scenario =
  (Sim.run table ~scenario).Sim.violations <> []

let shrink table ~scenario =
  if not (still_fails table scenario) then scenario
  else begin
    let drop_one g =
      let lits = Cond.literals g in
      (* Fault literals first: dropping one lowers the fault count,
         dropping a no-fault literal only generalizes the guard. *)
      let ordered =
        List.filter (fun (l : Cond.literal) -> l.Cond.fault) lits
        @ List.filter (fun (l : Cond.literal) -> not l.Cond.fault) lits
      in
      List.find_map
        (fun (l : Cond.literal) ->
          let remaining = List.filter (fun l' -> l' <> l) lits in
          match Cond.of_literals remaining with
          | Some g' when still_fails table g' -> Some g'
          | Some _ | None -> None)
        ordered
    in
    let rec fix g = match drop_one g with Some g' -> fix g' | None -> g in
    fix scenario
  end

type group = {
  kind : string;
  vertex : int option;
  vertex_name : string option;
  count : int;
  example : Violation.t;
  shrunk : Cond.guard option;
  shrunk_label : string option;
}

type report = { total : int; groups : group list }

let group_violations violations =
  let tbl : (string * int option, Violation.t list) Hashtbl.t =
    Hashtbl.create 16
  in
  let order = ref [] in
  List.iter
    (fun v ->
      let key = (Violation.kind_label v, Violation.vertex_id v) in
      (match Hashtbl.find_opt tbl key with
      | None ->
          order := key :: !order;
          Hashtbl.replace tbl key [ v ]
      | Some vs -> Hashtbl.replace tbl key (v :: vs)))
    violations;
  List.rev_map
    (fun (kind, vertex) ->
      (kind, vertex, List.rev (Hashtbl.find tbl (kind, vertex))))
    !order

let of_violations ?(max_shrinks = 8) table violations =
  let ftcpg = table.Table.ftcpg in
  let grouped = group_violations violations in
  let sorted =
    List.stable_sort
      (fun (_, _, a) (_, _, b) ->
        compare (List.length b) (List.length a))
      grouped
  in
  let groups =
    List.mapi
      (fun rank (kind, vertex, members) ->
        let example = List.hd members in
        let shrunk =
          if rank >= max_shrinks then None
          else
            Option.map
              (fun scenario -> shrink table ~scenario)
              example.Violation.scenario
        in
        {
          kind;
          vertex;
          vertex_name = Violation.vertex_name example;
          count = List.length members;
          example;
          shrunk;
          shrunk_label =
            Option.map
              (fun g -> Cond.to_string ~name:(Ftcpg.cond_name ftcpg) g)
              shrunk;
        })
      sorted
  in
  { total = List.length violations; groups }

let report ?jobs ?max_shrinks table =
  of_violations ?max_shrinks table (Sim.validate ?jobs table)

let pp_report ppf r =
  if r.total = 0 then Format.fprintf ppf "no violations@,"
  else begin
    Format.fprintf ppf "@[<v>%d violation(s) in %d group(s)@," r.total
      (List.length r.groups);
    List.iter
      (fun g ->
        Format.fprintf ppf "@,[%s]%s x%d@," g.kind
          (match g.vertex_name with
          | Some n -> Printf.sprintf " %s" n
          | None -> "")
          g.count;
        Format.fprintf ppf "  e.g. %s@," (Violation.to_string g.example);
        match (g.shrunk, g.example.Violation.scenario) with
        | Some shrunk, Some original ->
            Format.fprintf ppf
              "  minimal failing scenario: %s (%d fault(s), down from %d)@,"
              (Option.value g.shrunk_label ~default:"true")
              (Cond.fault_count shrunk)
              (Cond.fault_count original)
        | _ -> ())
      r.groups;
    Format.fprintf ppf "@]"
  end

let report_to_json r =
  let group_json g =
    let fields =
      [ ("kind", Violation.json_string g.kind) ]
      @ (match g.vertex with
        | Some vid -> [ ("vertex", string_of_int vid) ]
        | None -> [])
      @ (match g.vertex_name with
        | Some n -> [ ("vertex_name", Violation.json_string n) ]
        | None -> [])
      @ [
          ("count", string_of_int g.count);
          ("example", Violation.to_json g.example);
        ]
      @ (match (g.shrunk, g.shrunk_label) with
        | Some shrunk, Some label ->
            [
              ("shrunk_scenario", Violation.json_string label);
              ("shrunk_faults", string_of_int (Cond.fault_count shrunk));
            ]
        | _ -> [])
    in
    "{"
    ^ String.concat ", "
        (List.map
           (fun (k, v) -> Violation.json_string k ^ ": " ^ v)
           fields)
    ^ "}"
  in
  Printf.sprintf "{\"total\": %d, \"groups\": [%s]}" r.total
    (String.concat ",\n " (List.map group_json r.groups))
