(** Reproduction drivers for every figure of the paper (see DESIGN.md's
    experiment index). Figures 1–6 are the worked examples with concrete
    artifacts; Figures 7 and 8 are the evaluation sweeps. The benchmark
    harness ([bench/main.exe]) prints their outputs; tests assert their
    structural properties. *)

type series = {
  x_label : string;
  xs : float list;
  curves : (string * float list) list;
}

val fig1 : unit -> (string * float) list
(** Rollback recovery with checkpointing, the paper's Fig. 1 numbers:
    C1 = 60, alpha = 10, chi = 5, mu = 10 ms. Labeled timings for the
    1-checkpoint/2-checkpoint, no-fault / one-fault cases; the paper's
    headline value is the 130 ms worst case of the 2-checkpoint,
    one-fault scenario. *)

val fig2 : unit -> (string * float) list
(** Active replication vs. primary-backup (C1 = 60, alpha = 10 ms, two
    nodes): completion times with and without a fault. Primary-backup is
    modeled as rollback recovery with a single checkpoint whose backup
    starts after fault detection (paper, Sec. 3.2). *)

val fig4 : unit -> (string * float) list
(** Policy assignment cases of Fig. 4 (C1 = 30, alpha = mu = chi = 5,
    k = 2): worst-case lengths under pure checkpointing (X = 3, R = 2),
    pure replication (3 replicas), and the combined policy (2 replicas,
    R = (0, 1)). *)

val fig5 : unit -> Ftes_ftcpg.Ftcpg.t
(** The FT-CPG of the paper's Fig. 5b (4 processes, k = 2, frozen P3,
    m2, m3): 18 process copies (3 + 6 + 3 + 6), synchronization nodes
    P3^S, m2^S, m3^S. *)

val fig6 : unit -> Ftes_sched.Table.t
(** The schedule tables of Fig. 6, produced by conditional scheduling
    of {!fig5}. *)

val diagnostics_demo :
  ?jobs:int -> unit -> Ftes_sched.Table.t * Ftes_sim.Diagnose.report
(** End-to-end demo of the typed diagnostics: the Fig. 6 tables with a
    deterministic corruption (the latest-starting dependent execution
    pulled to time 0) together with the grouped, shrunk counterexample
    report the validator produces for them. *)

val fig7 :
  ?jobs:int ->
  ?seeds_per_point:int ->
  ?sizes:int list ->
  ?tabu:Ftes_optim.Tabu.options ->
  unit ->
  series
(** The policy-assignment experiment: average percentage deviation of
    the schedule length of MR, SFX and MX from the MXR baseline
    ([ (L_S - L_MXR) / L_S * 100 ], the paper's "MXR is x% better").
    Sizes default to the paper's 20..100 processes; each point averages
    [seeds_per_point] random applications on 2–6 nodes with k = 3..7
    scaled with size (paper, Sec. 6). *)

val fig8 :
  ?jobs:int ->
  ?seeds_per_point:int ->
  ?sizes:int list ->
  ?tabu:Ftes_optim.Tabu.options ->
  unit ->
  series
(** The checkpoint-optimization experiment: average percentage deviation
    of the FTO of the global checkpoint optimization [15] from the
    FTO of the per-process local optima [27]
    ([ (FTO_local - FTO_global) / FTO_local * 100 ]; larger deviation =
    smaller overhead). Sizes default to 40..100 processes. *)

type race = {
  size : int;
  seed : int;
  seq_wall_s : float;  (** Wall clock of the sequential replay arm. *)
  port_wall_s : float;  (** Wall clock of the parallel portfolio arm. *)
  speedup : float;  (** [seq_wall_s /. port_wall_s]. *)
  best_single : float;
      (** Best final length any single member achieved in the
          sequential replay. *)
  best_single_name : string;
  portfolio_length : float;  (** The parallel portfolio's winner length. *)
  winner : string;
  members : (string * float * float) list;
      (** Parallel-arm member outcomes: label, length, wall seconds. *)
  curve : Ftes_optim.Incumbent.entry list;
      (** The parallel arm's anytime incumbent curve. *)
}
(** One head-to-head between the sequential replay of a member list and
    the portfolio racing the {e same} list in parallel. Both arms use
    identical per-member options (members run with inner [jobs = 1]
    either way) and fresh caches, so in deterministic mode the lengths
    match exactly and the speedup measures pure wall-clock
    parallelism. *)

val fig7_portfolio :
  ?jobs:int ->
  ?seeds_per_point:int ->
  ?sizes:int list ->
  ?tabu:Ftes_optim.Tabu.options ->
  ?deadline_s:float ->
  ?exchange:bool ->
  unit ->
  race list
(** Portfolio replay of the Fig. 7 instances: for each (size, seed)
    workload, race the default member list (MXR/MX/SFX/MR/LNS) in
    parallel against its own sequential replay. Defaults: 2 seeds per
    size, sizes 20 and 40, deterministic mode. *)

val fig8_portfolio :
  ?jobs:int ->
  ?seeds_per_point:int ->
  ?sizes:int list ->
  ?tabu:Ftes_optim.Tabu.options ->
  ?deadline_s:float ->
  ?exchange:bool ->
  unit ->
  race list
(** As {!fig7_portfolio} with the checkpointing member (MC-global) in
    the race — the Fig. 8 flavor. *)

val pp_race : Format.formatter -> race -> unit

val transparency_tradeoff :
  ?jobs:int ->
  ?seeds:int ->
  ?levels:float list ->
  ?processes:int ->
  unit ->
  series
(** Ablation of the transparency/performance trade-off (paper, Sec. 3.3:
    "transparency can increase the worst-case delay ... reducing
    performance", and Sec. 5: smaller schedule tables): for each frozen
    fraction in [levels] (messages frozen with that probability,
    processes with half of it), conditionally schedule [seeds] random
    instances and report, relative to the fully non-transparent run of
    the same instance (= 100):

    - the worst-case schedule length,
    - the number of schedule-table entries (the table-size cost the
      designer trades against debuggability).

    Defaults: 5 seeds, levels 0 / 25 / 50 / 75 / 100 %, 8 processes
    (conditional scheduling is exponential in [k]). *)

val soft_utility_vs_k :
  ?jobs:int -> ?seeds:int -> ?ks:int list -> ?processes:int -> unit -> series
(** Ablation for the soft/hard extension ([17]): how much soft utility
    survives as the fault hypothesis hardens. Random applications with
    the downstream half of the graph soft (linear utilities); for each
    [k] the hard subset is scheduled with re-execution and the soft
    processes fill the remaining capacity. Curves (in % of the utility
    bound): fault-free utility and guaranteed utility (worst case under
    [k] faults). Defaults: 5 seeds, k = 0..4, 16 processes. *)

val mk_soft_classes :
  rng:Ftes_util.Rng.t ->
  graph:Ftes_app.Graph.t ->
  horizon:float ->
  soft_prob:float ->
  Ftes_soft.Softsched.class_ array
(** Random soft/hard classification that keeps the constraint "hard
    never depends on soft": a process can only be soft if all its
    successors are; soft processes get linear utilities scaled to
    [horizon]. *)

val k_for_size : int -> int
(** The fault count used for a given application size in {!fig7} /
    {!fig8}: 3 for 20 processes up to 7 for 100 (paper: "between 3 and
    7"). *)

val pp_series : Format.formatter -> series -> unit
