module Problem = Ftes_ftcpg.Problem
module Ftcpg = Ftes_ftcpg.Ftcpg
module App = Ftes_app.App
module Strategy = Ftes_optim.Strategy
module Tabu = Ftes_optim.Tabu
module Slack = Ftes_sched.Slack
module Table = Ftes_sched.Table
module Telemetry = Ftes_util.Telemetry
module Events = Ftes_util.Events

type t = {
  problem : Problem.t;
  estimate : Slack.result;
  ftcpg : Ftcpg.t option;
  table : Table.t option;
  fto : float option;
}

type options = {
  strategy : Strategy.name;
  tabu : Tabu.options;
  conditional : bool;
  max_vertices : int;
  sched_jobs : int;
  compute_fto : bool;
  checkpointing : bool;
  portfolio : Ftes_optim.Portfolio.options option;
}

let default_options =
  {
    strategy = Strategy.MXR;
    tabu = Tabu.default_options;
    conditional = true;
    max_vertices = 20_000;
    sched_jobs = 1;
    compute_fto = false;
    checkpointing = false;
    portfolio = None;
  }

let try_tables ~conditional ~max_vertices ~jobs problem =
  if not conditional then (None, None)
  else
    Telemetry.with_span ~cat:"core" "synthesize.tables" @@ fun () ->
    Events.with_phase "synthesize.tables" @@ fun () ->
    match Ftcpg.build ~max_vertices problem with
    | exception Ftcpg.Too_large _ -> (None, None)
    | ftcpg -> (
        match Ftes_sched.Conditional.schedule ~jobs ftcpg with
        | exception Ftes_sched.Conditional.Too_many_tracks _ ->
            (Some ftcpg, None)
        | table -> (Some ftcpg, Some table))

let of_problem ?(conditional = true) ?(max_vertices = 20_000) ?(sched_jobs = 1)
    problem =
  let estimate = Slack.evaluate problem in
  let ftcpg, table =
    try_tables ~conditional ~max_vertices ~jobs:sched_jobs problem
  in
  { problem; estimate; ftcpg; table; fto = None }

let synthesize ?(options = default_options) ~app ~arch ~wcet ~k () =
  let args =
    (* Only pay for the attribute list when telemetry is recording. *)
    if Telemetry.enabled () then
      [
        ("strategy", Telemetry.Str (Strategy.name_to_string options.strategy));
        ("k", Telemetry.Int k);
      ]
    else []
  in
  Telemetry.with_span ~cat:"core" ~args "synthesize" @@ fun () ->
  Events.with_phase "synthesize" @@ fun () ->
  let inputs = { Strategy.app; arch; wcet; k } in
  let optimized, nft =
    match options.portfolio with
    | Some popts ->
        (* The portfolio races its member configurations (including the
           checkpointing ones when requested) and computes the
           fault-free baseline once for all of them. *)
        let popts =
          { popts with Ftes_optim.Portfolio.tabu = options.tabu }
        in
        let members =
          Ftes_optim.Portfolio.default_members ~seed:options.tabu.Tabu.seed
            ~sample:options.tabu.Tabu.sample
            ~checkpointing:options.checkpointing ()
        in
        let r = Ftes_optim.Portfolio.run ~opts:popts ~members inputs in
        ( r.Ftes_optim.Portfolio.winner.Ftes_optim.Portfolio.problem,
          Some r.Ftes_optim.Portfolio.nft )
    | None ->
        let nft =
          if options.compute_fto then
            Some (Strategy.nft_length ~opts:options.tabu inputs)
          else None
        in
        let outcome =
          Strategy.run ~opts:options.tabu ?nft inputs options.strategy
        in
        (outcome.Strategy.problem, nft)
  in
  let problem =
    if options.checkpointing && options.portfolio = None then
      Telemetry.with_span ~cat:"core" "synthesize.checkpointing" (fun () ->
          Events.with_phase "synthesize.checkpointing" (fun () ->
              Ftes_optim.Checkpoint.global_optimize
                ?cache:options.tabu.Tabu.cache optimized))
    else optimized
  in
  let estimate =
    Telemetry.with_span ~cat:"core" "synthesize.estimate" (fun () ->
        Events.with_phase "synthesize.estimate" (fun () ->
            Slack.evaluate problem))
  in
  let ftcpg, table =
    try_tables ~conditional:options.conditional
      ~max_vertices:options.max_vertices ~jobs:options.sched_jobs problem
  in
  let fto =
    Option.map
      (fun n -> Slack.fto ~ft_length:estimate.Slack.length ~nft_length:n)
      nft
  in
  { problem; estimate; ftcpg; table; fto }

let schedulable t =
  match t.table with
  | Some table -> Table.meets_deadline table
  | None ->
      t.estimate.Slack.length
      <= t.problem.Problem.app.App.deadline +. 1e-9

let validate ?jobs ?stop_after ?mode t =
  match t.table with
  | Some table -> Ftes_sim.Sim.validate ?jobs ?stop_after ?mode table
  | None -> []

let validate_messages ?jobs t =
  List.map Ftes_sim.Violation.to_string (validate ?jobs t)

let diagnose ?jobs t =
  Option.map (fun table -> Ftes_sim.Diagnose.report ?jobs table) t.table

let pp ppf t =
  Format.fprintf ppf "@[<v>synthesis: estimated worst-case length %g%s@,"
    t.estimate.Slack.length
    (match t.fto with
    | Some f -> Printf.sprintf " (FTO %.1f%%)" f
    | None -> "");
  (match t.ftcpg with
  | Some f -> Format.fprintf ppf "%a@," Ftcpg.pp_summary f
  | None -> Format.fprintf ppf "FT-CPG not expanded (over budget)@,");
  (match t.table with
  | Some table ->
      Format.fprintf ppf
        "schedule tables: %d entries, worst-case length %g, %d scenarios@,"
        (Table.entry_count table)
        (Table.schedule_length table)
        (List.length table.Table.tracks)
  | None -> Format.fprintf ppf "no conditional schedule tables@,");
  Format.fprintf ppf "schedulable: %b@]" (schedulable t)
