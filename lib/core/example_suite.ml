(* Deterministic problem instances behind every graph shipped in
   examples/. The example executables print, synthesize and validate
   these; the digest regression test schedules each one and pins the
   resulting tables byte-for-byte, so any scheduler change that alters
   output — intentionally or not — fails loudly. *)

module App = Ftes_app.App
module Graph = Ftes_app.Graph
module Merge = Ftes_app.Merge
module Overheads = Ftes_app.Overheads
module Transparency = Ftes_app.Transparency
module Policy = Ftes_app.Policy
module Arch = Ftes_arch.Arch
module Bus = Ftes_arch.Bus
module Wcet = Ftes_arch.Wcet
module Problem = Ftes_ftcpg.Problem

let default_problem ~app ~arch ~wcet ~k =
  let policies = Problem.default_policies ~app ~k in
  let mapping = Problem.fastest_mapping ~app ~wcet ~policies in
  Problem.make ~app ~arch ~wcet ~k ~policies ~mapping

(* Fig. 3: five processes on two nodes (the quickstart instance). *)
let fig3 ~k =
  let app = App.fig3 () in
  let arch, wcet = Ftes_arch.Examples.fig3 () in
  default_problem ~app ~arch ~wcet ~k

(* Fig. 5: the paper's running example (k = 2, frozen P3/m2/m3). *)
let fig5 () =
  let app = App.fig5 () in
  let arch, wcet = Ftes_arch.Examples.fig5 () in
  default_problem ~app ~arch ~wcet ~k:2

(* The cruise-control scenario: an adaptive cruise controller and an
   engine monitor sharing three ECUs on a TTP-like TDMA bus. The
   actuation messages are frozen (recovery inside the controller stays
   invisible to the actuator ECU) and the monitor runs twice per
   hyperperiod. *)

let cruise_overheads ~c =
  Overheads.make ~alpha:(c /. 10.) ~mu:(c /. 10.) ~chi:(c /. 20.)

(* The cruise-control graph: sensors -> fusion -> control -> actuators. *)
let cruise_control_app () =
  let b = Graph.Builder.create () in
  let add name c =
    Graph.Builder.add_process b ~overheads:(cruise_overheads ~c) ~name
  in
  let radar = add "Radar" 20. in
  let speed = add "Speed" 10. in
  let fusion = add "Fusion" 30. in
  let control = add "Control" 40. in
  let throttle = add "Throttle" 10. in
  let brake = add "Brake" 10. in
  let msg ?name src dst size =
    Graph.Builder.add_message b ?name ~src ~dst ~size
  in
  let _ = msg radar fusion 6. in
  let _ = msg speed fusion 4. in
  let _ = msg fusion control 6. in
  let m_throttle = msg ~name:"cmd_throttle" control throttle 2. in
  let m_brake = msg ~name:"cmd_brake" control brake 2. in
  let graph = Graph.Builder.build b in
  {
    Merge.graph;
    period = 600.;
    deadline = 600.;
    transparency =
      Transparency.of_list
        [ Msg m_throttle; Msg m_brake; Proc throttle; Proc brake ];
  }

(* The engine monitor: a short chain sampled twice per hyperperiod. *)
let engine_monitor_app () =
  let b = Graph.Builder.create () in
  let add name c =
    Graph.Builder.add_process b ~overheads:(cruise_overheads ~c) ~name
  in
  let sample = add "EngSample" 10. in
  let check = add "EngCheck" 15. in
  let _ = Graph.Builder.add_message b ~src:sample ~dst:check ~size:4. in
  {
    Merge.graph = Graph.Builder.build b;
    period = 300.;
    deadline = 250.;
    transparency = Transparency.none;
  }

let cruise_instance () =
  let app = Merge.merge [ cruise_control_app (); engine_monitor_app () ] in
  (* Three ECUs; the actuators are wired to ECU3, the sensors split over
     ECU1/ECU2 — mapping restrictions in the WCET table. *)
  let nodes = 3 in
  let arch =
    Arch.make ~names:[ "ECU1"; "ECU2"; "ECU3" ] ~node_count:nodes
      ~bus:(Bus.tdma ~slot_length:8. ~bandwidth:1. nodes)
      ()
  in
  let g = app.App.graph in
  let wcet = Wcet.create ~procs:(Graph.process_count g) ~nodes in
  let set name row =
    match Graph.find_process g name with
    | None -> invalid_arg ("no process " ^ name)
    | Some pid ->
        List.iteri
          (fun nid entry ->
            match entry with
            | Some c -> Wcet.set wcet ~pid ~nid c
            | None -> ())
          row
  in
  set "Radar" [ Some 20.; None; None ];
  set "Speed" [ None; Some 10.; None ];
  set "Fusion" [ Some 30.; Some 35.; None ];
  set "Control" [ Some 40.; Some 45.; None ];
  set "Throttle" [ None; None; Some 10. ];
  set "Brake" [ None; None; Some 10. ];
  List.iter
    (fun suffix ->
      set ("EngSample" ^ suffix) [ Some 12.; Some 10.; Some 14. ];
      set ("EngCheck" ^ suffix) [ Some 15.; Some 15.; Some 18. ])
    [ ""; "@1" ];
  Wcet.validate wcet;
  (app, arch, wcet)

let cruise_control ~k =
  let app, arch, wcet = cruise_instance () in
  default_problem ~app ~arch ~wcet ~k

(* The vision-assisted controller of the soft-goals example: a hard
   control chain (Sample -> Law -> Actuate) next to a soft vision
   pipeline (Detect -> Track -> Overlay -> Log) on two ECUs. *)
let vision_instance () =
  let b = Graph.Builder.create () in
  let o = Overheads.make ~alpha:2. ~mu:2. ~chi:1. in
  let add name = Graph.Builder.add_process b ~overheads:o ~name in
  let sample = add "Sample" in
  let law = add "Law" in
  let actuate = add "Actuate" in
  let detect = add "Detect" in
  let track = add "Track" in
  let overlay = add "Overlay" in
  let log = add "Log" in
  let msg src dst size = ignore (Graph.Builder.add_message b ~src ~dst ~size) in
  msg sample law 2.;
  msg law actuate 2.;
  msg sample detect 4.;
  msg detect track 4.;
  msg track overlay 4.;
  msg overlay log 2.;
  let graph = Graph.Builder.build b in
  let app = App.make ~graph ~deadline:400. ~period:400. () in
  let nodes = 2 in
  let arch =
    Arch.make ~node_count:nodes ~bus:(Arch.default_bus ~node_count:nodes) ()
  in
  let wcet = Wcet.create ~procs:(Graph.process_count graph) ~nodes in
  List.iter
    (fun (pid, c1, c2) ->
      Wcet.set wcet ~pid ~nid:0 c1;
      Wcet.set wcet ~pid ~nid:1 c2)
    [
      (sample, 10., 12.); (law, 20., 24.); (actuate, 8., 8.);
      (detect, 40., 45.); (track, 30., 35.); (overlay, 20., 20.);
      (log, 5., 5.);
    ];
  (app, arch, wcet)

let vision ~k =
  let app, arch, wcet = vision_instance () in
  let policies =
    Array.init
      (Graph.process_count app.App.graph)
      (fun _ -> Policy.re_execution ~recoveries:k)
  in
  let mapping = Problem.fastest_mapping ~app ~wcet ~policies in
  Problem.make ~app ~arch ~wcet ~k ~policies ~mapping

(* The 15-process generated workload of the policy-tradeoff example
   (seed 42, three nodes). *)
let tradeoff ~k =
  let spec =
    { Ftes_workload.Gen.default with processes = 15; nodes = 3; seed = 42 }
  in
  Ftes_workload.Gen.problem ~k spec

let all () =
  [
    ("fig3-k1", fig3 ~k:1);
    ("fig5-k2", fig5 ());
    ("cruise-control-k2", cruise_control ~k:2);
    ("vision-k2", vision ~k:2);
    ("tradeoff15-k2", tradeoff ~k:2);
  ]
