module Overheads = Ftes_app.Overheads
module Fttime = Ftes_app.Fttime
module App = Ftes_app.App
module Problem = Ftes_ftcpg.Problem
module Strategy = Ftes_optim.Strategy
module Tabu = Ftes_optim.Tabu
module Checkpoint = Ftes_optim.Checkpoint
module Slack = Ftes_sched.Slack
module Gen = Ftes_workload.Gen
module Stats = Ftes_util.Stats
module Portfolio = Ftes_optim.Portfolio

type series = { x_label : string; xs : float list; curves : (string * float list) list }

let fig1 () =
  let c = 60. and o = Overheads.fig1 in
  [
    ("P1 plain (no FT)", c +. o.Overheads.alpha);
    ("P1, 1 checkpoint, no fault", Fttime.no_fault_length ~c o ~checkpoints:1);
    ("P1, 2 checkpoints, no fault", Fttime.no_fault_length ~c o ~checkpoints:2);
    ( "P1, 1 checkpoint, 1 fault (re-execution)",
      Fttime.worst_case_length ~c o ~checkpoints:1 ~recoveries:1 );
    ( "P1, 2 checkpoints, 1 fault (Fig. 1c)",
      Fttime.worst_case_length ~c o ~checkpoints:2 ~recoveries:1 );
  ]

let fig2 () =
  let c = 60. in
  let o = Overheads.make ~alpha:10. ~mu:0. ~chi:0. in
  let replica = Fttime.replica_length ~c o in
  [
    (* Both replicas run in parallel on N1/N2 regardless of faults. *)
    ("active replication, no fault", replica);
    ("active replication, 1 fault", replica);
    ("primary-backup, no fault", replica);
    (* The backup starts only after the primary's fault is detected. *)
    ("primary-backup, 1 fault", replica +. replica);
  ]

let fig4 () =
  let c = 30. in
  let o = Overheads.make ~alpha:5. ~mu:5. ~chi:5. in
  let checkpointing =
    Fttime.worst_case_length ~c o ~checkpoints:3 ~recoveries:2
  in
  let replication = Fttime.replica_length ~c o in
  let combined =
    (* Two replicas in parallel; the recovering one (R = 1) dominates. *)
    max (Fttime.replica_length ~c o)
      (Fttime.worst_case_length ~c o ~checkpoints:1 ~recoveries:1)
  in
  [
    ("checkpointing (X=3, R=2), worst case", checkpointing);
    ("replication (3 replicas), worst case", replication);
    ("replication+checkpointing (Q=1, R=(0,1)), worst case", combined);
  ]

let fig5_problem () =
  let app = App.fig5 () in
  let arch, wcet = Ftes_arch.Examples.fig5 () in
  let policies = Problem.default_policies ~app ~k:2 in
  let mapping = Problem.fastest_mapping ~app ~wcet ~policies in
  Problem.make ~app ~arch ~wcet ~k:2 ~policies ~mapping

let fig5 () = Ftes_ftcpg.Ftcpg.build (fig5_problem ())

let fig6 () = Ftes_sched.Conditional.schedule (fig5 ())

(* Deterministic corruption of the Fig. 6 tables: the latest-starting
   dependent execution entry is pulled to time 0, which breaks causality
   (and usually resource exclusivity) in every scenario reaching it.
   Exercises the whole diagnostics pipeline on a known instance. *)
let diagnostics_demo ?jobs () =
  let module Table = Ftes_sched.Table in
  let module Ftcpg = Ftes_ftcpg.Ftcpg in
  let t = fig6 () in
  let victim =
    List.fold_left
      (fun acc (e : Table.entry) ->
        match e.Table.item with
        | Table.Exec vid
          when (Ftcpg.vertex t.Table.ftcpg vid).Ftcpg.preds <> [] -> (
            match acc with
            | Some (b : Table.entry) when b.Table.start >= e.Table.start ->
                acc
            | _ -> Some e)
        | _ -> acc)
      None t.Table.entries
  in
  let victim =
    match victim with
    | Some v -> v
    | None -> invalid_arg "diagnostics_demo: fig6 has no dependent entry"
  in
  let entries =
    List.map
      (fun (e : Table.entry) ->
        if e == victim then
          { e with Table.start = 0.; finish = e.Table.finish -. e.Table.start }
        else e)
      t.Table.entries
  in
  let bad = Table.make ~ftcpg:t.Table.ftcpg ~entries ~tracks:t.Table.tracks in
  (bad, Ftes_sim.Diagnose.report ?jobs bad)

let k_for_size n = max 3 (min 7 (2 + (n / 20)))

(* One evaluation cache per workload instance (a cache serves a single
   synthesis universe), shared by every strategy phase run on it —
   unless the caller already supplied one through [tabu.cache]. *)
let with_cache (tabu : Tabu.options) =
  match tabu.Tabu.cache with
  | Some _ -> tabu
  | None ->
      { tabu with Tabu.cache = Some (Ftes_optim.Evalcache.create ()) }

let instance_inputs ~size ~seed =
  let nodes = 2 + (seed mod 5) in
  let spec = { Gen.default with processes = size; nodes; seed } in
  let app, arch, wcet = Gen.instance spec in
  { Strategy.app; arch; wcet; k = k_for_size size }

let fig7 ?jobs ?(seeds_per_point = 5) ?(sizes = [ 20; 40; 60; 80; 100 ])
    ?(tabu = Tabu.default_options) () =
  let names = [ Strategy.MR; Strategy.SFX; Strategy.MX ] in
  let deviations =
    List.map
      (fun size ->
        (* Each seed is an independent workload instance — fan them
           over the domain pool (nested tabu parallelism degrades to
           sequential inside the workers). *)
        let per_seed =
          Ftes_util.Par.init ?jobs seeds_per_point (fun s ->
              let seed = (size * 131) + s in
              let inputs = instance_inputs ~size ~seed in
              let tabu = with_cache tabu in
              let nft = Strategy.nft_length ~opts:tabu inputs in
              let mxr = Strategy.run ~opts:tabu ~nft inputs Strategy.MXR in
              List.map
                (fun name ->
                  (* MR drags (k+1) copies of everything through each
                     evaluation and its deviation is insensitive to the
                     search budget — trim it on large instances. *)
                  let opts =
                    if name = Strategy.MR && size > 20 then
                      { tabu with iterations = 10; sample = 5 }
                    else tabu
                  in
                  let o = Strategy.run ~opts ~nft inputs name in
                  (* "MXR is x% better than S" (paper, Sec. 6). *)
                  (o.Strategy.length -. mxr.Strategy.length)
                  /. o.Strategy.length *. 100.)
                names)
        in
        List.mapi
          (fun i _ -> Stats.mean (List.map (fun row -> List.nth row i) per_seed))
          names)
      sizes
  in
  {
    x_label = "processes";
    xs = List.map float_of_int sizes;
    curves =
      List.mapi
        (fun i name ->
          ( Strategy.name_to_string name,
            List.map (fun row -> List.nth row i) deviations ))
        names;
  }

let fig8 ?jobs ?(seeds_per_point = 5) ?(sizes = [ 40; 60; 80; 100 ])
    ?(tabu = Tabu.default_options) () =
  let deviation =
    List.map
      (fun size ->
        let per_seed =
          Ftes_util.Par.init ?jobs seeds_per_point (fun s ->
              let seed = (size * 137) + s in
              let inputs = instance_inputs ~size ~seed in
              let tabu = with_cache tabu in
              let nft = Strategy.nft_length ~opts:tabu inputs in
              (* Shared mapping optimization; then local vs global
                 checkpoint counts (paper, Fig. 8 setup). *)
              let local = Strategy.run ~opts:tabu ~nft inputs Strategy.MC_local in
              let glob =
                Checkpoint.global_optimize ?cache:tabu.Tabu.cache
                  (Checkpoint.assign_local local.Strategy.problem)
              in
              let l_local = local.Strategy.length in
              let l_glob = Slack.length glob in
              let fto_local = Slack.fto ~ft_length:l_local ~nft_length:nft in
              let fto_glob = Slack.fto ~ft_length:l_glob ~nft_length:nft in
              if fto_local <= 0. then 0.
              else (fto_local -. fto_glob) /. fto_local *. 100.)
        in
        Stats.mean per_seed)
      sizes
  in
  {
    x_label = "processes";
    xs = List.map float_of_int sizes;
    curves = [ ("global vs local checkpointing", deviation) ];
  }

type race = {
  size : int;
  seed : int;
  seq_wall_s : float;
  port_wall_s : float;
  speedup : float;
  best_single : float;
  best_single_name : string;
  portfolio_length : float;
  winner : string;
  members : (string * float * float) list;
  curve : Ftes_optim.Incumbent.entry list;
}

let portfolio_races ~checkpointing ?(jobs = Ftes_util.Par.default_jobs ())
    ?(seeds_per_point = 2) ?(sizes = [ 20; 40 ])
    ?(tabu = Tabu.default_options) ?deadline_s ?(exchange = false) () =
  List.concat_map
    (fun size ->
      List.init seeds_per_point (fun s ->
          let seed = (size * 131) + s in
          let inputs = instance_inputs ~size ~seed in
          let members =
            Portfolio.default_members ~seed:tabu.Tabu.seed
              ~sample:tabu.Tabu.sample ~checkpointing ()
          in
          (* Both arms run the exact same member list under the exact
             same per-member options (members force inner jobs to 1):
             the sequential arm is literally the jobs=1 portfolio, so in
             deterministic mode (no deadline, no exchange) the lengths
             agree to the bit and the speedup isolates pure wall-clock
             parallelism. Fresh caches per arm keep the comparison
             honest — the parallel arm must not profit from entries the
             sequential arm already paid for. *)
          let run jobs =
            Portfolio.run
              ~opts:
                {
                  Portfolio.jobs;
                  deadline_s;
                  exchange;
                  cache = None;
                  tabu;
                }
              ~members inputs
          in
          let seq = run 1 in
          let par = run jobs in
          let best_single, best_single_name =
            List.fold_left
              (fun (bl, bn) (o : Portfolio.member_outcome) ->
                if o.Portfolio.length < bl -. 1e-9 then
                  (o.Portfolio.length, o.Portfolio.member.Portfolio.label)
                else (bl, bn))
              (infinity, "-") seq.Portfolio.members
          in
          {
            size;
            seed;
            seq_wall_s = seq.Portfolio.wall_s;
            port_wall_s = par.Portfolio.wall_s;
            speedup =
              seq.Portfolio.wall_s /. Float.max 1e-9 par.Portfolio.wall_s;
            best_single;
            best_single_name;
            portfolio_length =
              par.Portfolio.winner.Portfolio.length;
            winner = par.Portfolio.winner.Portfolio.member.Portfolio.label;
            members =
              List.map
                (fun (o : Portfolio.member_outcome) ->
                  ( o.Portfolio.member.Portfolio.label,
                    o.Portfolio.length,
                    o.Portfolio.wall_s ))
                par.Portfolio.members;
            curve = par.Portfolio.curve;
          }))
    sizes

let fig7_portfolio ?jobs ?seeds_per_point ?sizes ?tabu ?deadline_s ?exchange
    () =
  portfolio_races ~checkpointing:false ?jobs ?seeds_per_point ?sizes ?tabu
    ?deadline_s ?exchange ()

let fig8_portfolio ?jobs ?seeds_per_point ?sizes ?tabu ?deadline_s ?exchange
    () =
  portfolio_races ~checkpointing:true ?jobs ?seeds_per_point ?sizes ?tabu
    ?deadline_s ?exchange ()

let pp_race ppf r =
  Format.fprintf ppf
    "@[<v>race (%d procs, seed %d): portfolio %.1f in %.2f s (winner %s) vs \
     best single %s %.1f in %.2f s sequential — %.2fx@]"
    r.size r.seed r.portfolio_length r.port_wall_s r.winner r.best_single_name
    r.best_single r.seq_wall_s r.speedup

let transparency_tradeoff ?jobs ?(seeds = 5)
    ?(levels = [ 0.; 0.25; 0.5; 0.75; 1.0 ]) ?(processes = 8) () =
  let schedule_one ~seed ~level =
    let spec =
      {
        Gen.default with
        processes;
        nodes = 2;
        seed;
        frozen_msg_prob = level;
        frozen_proc_prob = level /. 2.;
      }
    in
    let p = Gen.problem ~k:2 spec in
    let table = Ftes_sched.Conditional.schedule (Ftes_ftcpg.Ftcpg.build p) in
    let columns =
      List.length
        (List.sort_uniq Ftes_ftcpg.Cond.compare
           (List.map
              (fun e -> e.Ftes_sched.Table.guard)
              table.Ftes_sched.Table.entries))
    in
    ( Ftes_sched.Table.schedule_length table,
      float_of_int (Ftes_sched.Table.entry_count table),
      float_of_int columns )
  in
  let per_level =
    List.map
      (fun level ->
        let ratios =
          Ftes_util.Par.init ?jobs seeds (fun s ->
              let seed = 1000 + s in
              let len0, ent0, col0 = schedule_one ~seed ~level:0. in
              let len, ent, col = schedule_one ~seed ~level in
              (len /. len0 *. 100., ent /. ent0 *. 100., col /. col0 *. 100.))
        in
        ( Stats.mean (List.map (fun (a, _, _) -> a) ratios),
          Stats.mean (List.map (fun (_, b, _) -> b) ratios),
          Stats.mean (List.map (fun (_, _, c) -> c) ratios) ))
      levels
  in
  {
    x_label = "frozen fraction (%)";
    xs = List.map (fun l -> l *. 100.) levels;
    curves =
      [
        ( "worst-case length (% of non-transparent)",
          List.map (fun (a, _, _) -> a) per_level );
        ( "table entries (% of non-transparent)",
          List.map (fun (_, b, _) -> b) per_level );
        ( "distinct guard columns (% of non-transparent)",
          List.map (fun (_, _, c) -> c) per_level );
      ];
  }

let mk_soft_classes ~rng ~graph ~horizon ~soft_prob =
  let n = Ftes_app.Graph.process_count graph in
  let classes = Array.make n Ftes_soft.Softsched.Hard in
  let soft = Array.make n false in
  (* Reverse topological order: a process may only be soft when every
     successor already is (hard must never depend on soft). *)
  List.iter
    (fun pid ->
      let succs_soft =
        List.for_all
          (fun s -> soft.(s))
          (Ftes_app.Graph.successors graph pid)
      in
      if succs_soft && Ftes_util.Rng.chance rng soft_prob then begin
        soft.(pid) <- true;
        let value = 50. +. Ftes_util.Rng.float rng 100. in
        classes.(pid) <-
          Ftes_soft.Softsched.Soft
            (Ftes_soft.Utility.linear ~value
               ~from_:(horizon *. (0.3 +. Ftes_util.Rng.float rng 0.4))
               ~zero_at:(horizon *. (1.2 +. Ftes_util.Rng.float rng 0.8)))
      end)
    (List.rev (Ftes_app.Graph.topological_order graph));
  classes

let soft_utility_vs_k ?jobs ?(seeds = 5) ?(ks = [ 0; 1; 2; 3; 4 ])
    ?(processes = 16) () =
  let per_k =
    List.map
      (fun k ->
        let ratios =
          Ftes_util.Par.init ?jobs seeds (fun s ->
              let seed = 500 + s in
              let spec = { Gen.default with processes; nodes = 3; seed } in
              (* The same instance and classification at every k. *)
              let p1 = Gen.problem ~k:1 spec in
              let p0 =
                Problem.make ~app:p1.Problem.app ~arch:p1.Problem.arch
                  ~wcet:p1.Problem.wcet ~k
                  ~policies:
                    (Array.map
                       (fun _ -> Ftes_app.Policy.re_execution ~recoveries:k)
                       p1.Problem.policies)
                  ~mapping:p1.Problem.mapping
              in
              let g = Problem.graph p0 in
              let horizon = Slack.length ~ft:false p0 *. 1.5 in
              let rng = Ftes_util.Rng.create seed in
              let classes =
                mk_soft_classes ~rng ~graph:g ~horizon ~soft_prob:0.8
              in
              let r = Ftes_soft.Softsched.schedule ~classes p0 in
              let bound = max 1e-9 r.Ftes_soft.Softsched.utility_bound in
              ( r.Ftes_soft.Softsched.utility_no_fault /. bound *. 100.,
                r.Ftes_soft.Softsched.utility_guaranteed /. bound *. 100. ))
        in
        (Stats.mean (List.map fst ratios), Stats.mean (List.map snd ratios)))
      ks
  in
  {
    x_label = "tolerated faults k";
    xs = List.map float_of_int ks;
    curves =
      [
        ("fault-free utility (% of bound)", List.map fst per_k);
        ("guaranteed utility (% of bound)", List.map snd per_k);
      ];
  }

let pp_series ppf s =
  let header = s.x_label :: List.map fst s.curves in
  let rows =
    List.mapi
      (fun i x ->
        Printf.sprintf "%g" x
        :: List.map
             (fun (_, ys) -> Printf.sprintf "%.1f" (List.nth ys i))
             s.curves)
      s.xs
  in
  Format.pp_print_string ppf (Ftes_util.Chart.render_table ~header rows)
