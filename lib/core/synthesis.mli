(** End-to-end synthesis of fault-tolerant embedded systems — the
    paper's top-level flow (Sec. 6).

    Given an application A, a platform N with a bus B, and the fault
    hypothesis [k], determine the system configuration
    ψ = 〈F, M, S〉:

    + the fault-tolerance policy assignment F = 〈P, Q, R, X〉 (which
      processes are checkpointed, replicated or both; replica counts;
      recovery budgets; checkpoint counts),
    + the mapping M of every process and replica to a node,
    + the set S of fault-tolerant schedule tables.

    Policy assignment and mapping are optimized with the strategies of
    [Ftes_optim.Strategy] against the scalable schedule-length
    estimator; the final schedule tables are produced by conditional
    scheduling of the FT-CPG, with the estimator's configuration
    retained even when the FT-CPG is too large to expand (the paper's
    own experiments likewise report estimator-driven results for the
    large benchmarks). *)

type t = {
  problem : Ftes_ftcpg.Problem.t;
      (** The optimized configuration: F (policies, checkpoint counts)
          and M (mapping). *)
  estimate : Ftes_sched.Slack.result;
      (** Estimated worst-case schedule length. *)
  ftcpg : Ftes_ftcpg.Ftcpg.t option;
      (** The expanded FT-CPG, when within the expansion budget. *)
  table : Ftes_sched.Table.t option;
      (** The schedule tables S, when conditional scheduling was
          feasible. *)
  fto : float option;
      (** Fault-tolerance overhead vs. the fault-free baseline, when
          requested. *)
}

type options = {
  strategy : Ftes_optim.Strategy.name;
  tabu : Ftes_optim.Tabu.options;
  conditional : bool;  (** Attempt FT-CPG expansion + conditional
                           scheduling (default true). *)
  max_vertices : int;  (** FT-CPG expansion budget. *)
  sched_jobs : int;  (** Domains used by the conditional scheduler's
                         scenario-subtree fan-out (default 1 =
                         sequential; tables are identical for any
                         value). *)
  compute_fto : bool;  (** Also optimize the fault-free baseline to
                           report the FTO (default false). *)
  checkpointing : bool;  (** Additionally optimize checkpoint counts
                             (global optimization) on the final
                             configuration (default false). *)
  portfolio : Ftes_optim.Portfolio.options option;
      (** When set, optimize with the parallel strategy portfolio
          instead of the single [strategy]: the default member race
          (which includes the MC-global flavor when [checkpointing] is
          on) runs under these options with [tabu] as the base search
          configuration, and the winner's design flows into the
          estimate and schedule tables. The FTO is always reported —
          the portfolio computes the fault-free baseline once for the
          whole race (default [None]). *)
}

val default_options : options

val synthesize :
  ?options:options ->
  app:Ftes_app.App.t ->
  arch:Ftes_arch.Arch.t ->
  wcet:Ftes_arch.Wcet.t ->
  k:int ->
  unit ->
  t

val of_problem :
  ?conditional:bool ->
  ?max_vertices:int ->
  ?sched_jobs:int ->
  Ftes_ftcpg.Problem.t ->
  t
(** Schedule a fully specified configuration (no optimization). *)

val schedulable : t -> bool
(** True when the produced tables (or, failing that, the estimate) meet
    the application deadline in every scenario. *)

val validate :
  ?jobs:int ->
  ?stop_after:int ->
  ?mode:Ftes_sim.Sim.mode ->
  t ->
  Ftes_sim.Violation.t list
(** Fault-injection validation of the schedule tables (empty when no
    tables were produced — the estimate alone cannot be simulated).
    [jobs], [stop_after] and [mode] are forwarded to
    {!Ftes_sim.Sim.validate}; the default [`Explicit] is the packed
    sharded validator, whose result is [jobs]-invariant and, with
    [stop_after], a minimal prefix of the exhaustive list. [`Symbolic]
    and [`Auto] trade the full enumeration for cube replay with one
    confirmed witness per failing cube (see {!Ftes_sim.Sim.mode}). *)

val validate_messages : ?jobs:int -> t -> string list
(** {!validate} rendered with {!Ftes_sim.Violation.to_string} — the
    historical string API. *)

val diagnose : ?jobs:int -> t -> Ftes_sim.Diagnose.report option
(** Grouped, shrunk counterexample report of {!validate}; [None] when
    no tables were produced. *)

val pp : Format.formatter -> t -> unit
