(** Deterministic problem instances behind every graph shipped in
    [examples/].

    The example executables and the schedule-digest regression test
    share these constructors, so the pinned digests cover exactly the
    instances the examples demonstrate. All constructors are pure:
    calling one twice yields structurally identical problems. *)

val fig3 : k:int -> Ftes_ftcpg.Problem.t
(** The quickstart instance: Fig. 3 application on the Fig. 3
    two-node architecture, default policies, fastest mapping. *)

val fig5 : unit -> Ftes_ftcpg.Problem.t
(** The paper's running example (k = 2, frozen P3/m2/m3). *)

val cruise_instance :
  unit -> Ftes_app.App.t * Ftes_arch.Arch.t * Ftes_arch.Wcet.t
(** The merged cruise-control + engine-monitor application on three
    ECUs with a TDMA bus and a restriction-carrying WCET table — the
    raw ingredients used by [examples/cruise_control.ml]. *)

val cruise_control : k:int -> Ftes_ftcpg.Problem.t
(** {!cruise_instance} closed into a problem with default policies and
    the fastest mapping. *)

val vision_instance :
  unit -> Ftes_app.App.t * Ftes_arch.Arch.t * Ftes_arch.Wcet.t
(** The vision-assisted controller of [examples/soft_goals.ml]: hard
    control chain plus soft vision pipeline on two ECUs. *)

val vision : k:int -> Ftes_ftcpg.Problem.t
(** {!vision_instance} closed into a problem where every process gets a
    re-execution policy with [k] recoveries. *)

val tradeoff : k:int -> Ftes_ftcpg.Problem.t
(** The 15-process generated workload of
    [examples/policy_tradeoff.ml] (seed 42, three nodes). *)

val all : unit -> (string * Ftes_ftcpg.Problem.t) list
(** Every instance above paired with a stable name, at the fault
    hypotheses used by the digest regression test. *)
