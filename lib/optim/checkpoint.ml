module Problem = Ftes_ftcpg.Problem
module Policy = Ftes_app.Policy
module Fttime = Ftes_app.Fttime
module Graph = Ftes_app.Graph
module Telemetry = Ftes_util.Telemetry
module Events = Ftes_util.Events

let c_passes = Telemetry.counter "checkpoint.passes"
let c_accepted = Telemetry.counter "checkpoint.accepted"

let worst_case ~c o ~k ~checkpoints =
  Fttime.worst_case_length ~c o ~checkpoints ~recoveries:k

let local_optimum ?(max_checkpoints = 100) ~c (o : Ftes_app.Overheads.t) ~k =
  if k <= 0 || c <= 0. then 1
  else
    let denom = o.alpha +. o.chi in
    if denom <= 0. then max_checkpoints
    else
      let n_star = sqrt (float_of_int k *. c /. denom) in
      let clamp n = max 1 (min max_checkpoints n) in
      let lo = clamp (int_of_float (floor n_star)) in
      let hi = clamp (int_of_float (ceil n_star)) in
      if
        worst_case ~c o ~k ~checkpoints:lo
        <= worst_case ~c o ~k ~checkpoints:hi
      then lo
      else hi

let update_policies problem f =
  let policies =
    Array.mapi
      (fun pid (p : Policy.t) ->
        let copies = Policy.replica_count p in
        let rec apply p copy =
          if copy >= copies then p
          else
            let n = f pid copy p.Policy.copies.(copy) in
            apply (Policy.with_checkpoints p ~copy ~checkpoints:n) (copy + 1)
        in
        apply p 0)
      problem.Problem.policies
  in
  Problem.with_policies problem policies problem.Problem.mapping

let assign_local ?max_checkpoints problem =
  let g = Problem.graph problem in
  update_policies problem (fun pid copy (plan : Policy.copy_plan) ->
      if plan.Policy.recoveries = 0 then 1
      else
        let c = Problem.copy_wcet problem ~pid ~copy in
        let o = (Graph.process g pid).Graph.overheads in
        local_optimum ?max_checkpoints ~c o ~k:plan.Policy.recoveries)

let global_optimize ?cache ?(max_checkpoints = 100) ?(max_passes = 32) problem =
  Telemetry.with_span ~cat:"optim" "checkpoint.global_optimize" @@ fun () ->
  let g = Problem.graph problem in
  let nprocs = Graph.process_count g in
  let objective p =
    match cache with
    | Some c -> Evalcache.length ~ft:true c p
    | None -> Ftes_sched.Slack.length p
  in
  let best = ref problem in
  let best_len = ref (objective problem) in
  let ev_on = Events.enabled () in
  let ev_t0 = Events.now () in
  let ev_evals = ref 0 in
  let try_move pid copy delta =
    let p = (!best).Problem.policies.(pid) in
    if copy < Policy.replica_count p then begin
      let plan = p.Policy.copies.(copy) in
      let n = plan.Policy.checkpoints + delta in
      if n >= 1 && n <= max_checkpoints && plan.Policy.recoveries > 0 then begin
        let policies = Array.copy (!best).Problem.policies in
        policies.(pid) <- Policy.with_checkpoints p ~copy ~checkpoints:n;
        let cand =
          Problem.with_policies !best policies (!best).Problem.mapping
        in
        let len = objective cand in
        if ev_on then incr ev_evals;
        if len < !best_len -. 1e-9 then begin
          best := cand;
          best_len := len;
          Telemetry.incr c_accepted;
          if ev_on then
            Events.emit
              (Events.Incumbent
                 {
                   source = "checkpoint";
                   cost = len;
                   evals = !ev_evals;
                   wall_s = Events.now () -. ev_t0;
                 });
          true
        end
        else false
      end
      else false
    end
    else false
  in
  let max_copies =
    Array.fold_left
      (fun acc p -> max acc (Policy.replica_count p))
      1 problem.Problem.policies
  in
  let rec pass i =
    if i >= max_passes then !best
    else begin
      Telemetry.incr c_passes;
      let improved = ref false in
      for pid = 0 to nprocs - 1 do
        for copy = 0 to max_copies - 1 do
          if try_move pid copy (-1) then improved := true;
          if try_move pid copy 1 then improved := true
        done
      done;
      if ev_on then Events.drain ();
      if !improved then pass (i + 1) else !best
    end
  in
  pass 0
