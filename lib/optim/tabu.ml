module Problem = Ftes_ftcpg.Problem
module Mapping = Ftes_ftcpg.Mapping
module Policy = Ftes_app.Policy
module Graph = Ftes_app.Graph
module Wcet = Ftes_arch.Wcet
module Rng = Ftes_util.Rng
module Telemetry = Ftes_util.Telemetry
module Events = Ftes_util.Events

(* Search-trajectory telemetry. Counters are process-wide; the per-run
   story lives in the [tabu.optimize] / [tabu.iter] spans. Recording is
   observation only: nothing below reads a recorded value, so the
   trajectory is bit-identical with telemetry on or off. The same
   discipline covers the live event stream: incumbent-improved events
   carry (cost, evals, wall_s) out but nothing flows back in. *)
let c_iterations = Telemetry.counter "tabu.iterations"
let c_moves_evaluated = Telemetry.counter "tabu.moves_evaluated"
let c_accepted = Telemetry.counter "tabu.accepted"
let c_improved = Telemetry.counter "tabu.improved"
let c_aspirations = Telemetry.counter "tabu.aspirations"
let c_stalls = Telemetry.counter "tabu.stalls"

type policy_kind = Reexec | Repl | Combined

type options = {
  seed : int;
  iterations : int;
  sample : int;
  tenure : int;
  stall_limit : int;
  remap_moves : bool;
  policy_moves : bool;
  policy_kinds : policy_kind list;
  ft_objective : bool;
  jobs : int;
  cache : Evalcache.t option;
  stop : (unit -> bool) option;
  shared : Incumbent.handle option;
  exchange : bool;
}

let default_options =
  {
    seed = 42;
    iterations = 120;
    sample = 16;
    tenure = 8;
    stall_limit = 40;
    remap_moves = true;
    policy_moves = true;
    policy_kinds = [ Reexec; Repl; Combined ];
    ft_objective = true;
    jobs = Ftes_util.Par.default_jobs ();
    cache = None;
    stop = None;
    shared = None;
    exchange = false;
  }

let kind_of_policy p =
  match Policy.kind p with
  | Policy.Checkpointing -> Reexec
  | Policy.Replication -> Repl
  | Policy.Replication_and_checkpointing -> Combined

let make_policy ~k = function
  | Reexec -> Policy.re_execution ~recoveries:k
  | Repl -> Policy.replication ~k
  | Combined ->
      if k >= 2 then
        Policy.combined ~replicas:1
          ~recoveries_per_copy:(List.init 2 (fun i -> if i = 0 then k - 1 else 0))
      else Policy.replication ~k

(* Spread the copies of one process over its fastest allowed nodes,
   keeping the current node of copy 0 (the original). *)
let spread_copies ~wcet ~pid ~copies ~keep_node =
  let ranked =
    List.sort
      (fun (_, c1) (_, c2) -> compare c1 c2)
      (List.filter_map
         (fun nid -> Option.map (fun c -> (nid, c)) (Wcet.get wcet ~pid ~nid))
         (List.init (Wcet.node_count wcet) (fun i -> i)))
  in
  let others =
    List.map fst (List.filter (fun (nid, _) -> nid <> keep_node) ranked)
  in
  let pool = Array.of_list (others @ [ keep_node ]) in
  Array.init copies (fun i ->
      if i = 0 then keep_node else pool.((i - 1) mod Array.length pool))

let reassign_policy ~k ~wcet problem ~pid kind =
  let policy = make_policy ~k kind in
  let policies = Array.copy problem.Problem.policies in
  policies.(pid) <- policy;
  let keep_node = Mapping.node_of problem.Problem.mapping ~pid ~copy:0 in
  let copies = Policy.replica_count policy in
  let row = spread_copies ~wcet ~pid ~copies ~keep_node in
  let assign =
    Array.init (Graph.process_count (Problem.graph problem)) (fun p ->
        if p = pid then row
        else
          Array.of_list (Mapping.copies problem.Problem.mapping ~pid:p))
  in
  Problem.with_policies problem policies (Mapping.of_array assign)

type move =
  | Remap of { pid : int; copy : int; nid : int }
  | Set_policy of { pid : int; kind : policy_kind }

let apply_move ~k ~wcet problem = function
  | Remap { pid; copy; nid } ->
      let mapping = Mapping.remap problem.Problem.mapping ~pid ~copy ~nid in
      Problem.with_policies problem problem.Problem.policies mapping
  | Set_policy { pid; kind } -> reassign_policy ~k ~wcet problem ~pid kind

(* Tabu tenures are keyed by the full move locus — pid × move family ×
   copy — not by pid alone: a remap of one replica copy and a policy
   switch on the same process touch different design decisions and must
   not alias a single tenure slot (keying by pid made them wrongly veto
   each other). The target node of a remap is deliberately not part of
   the locus: once a copy has moved, moving it again anywhere is the
   reversal the tenure exists to forbid. A policy switch rebuilds every
   copy of the process, so its locus carries no copy index. *)
module Tenure = struct
  type locus = Remap_site of { pid : int; copy : int } | Policy_site of int

  type t = (locus, int) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let locus = function
    | Remap { pid; copy; _ } -> Remap_site { pid; copy }
    | Set_policy { pid; _ } -> Policy_site pid

  let mark t ~iter ~tenure mv = Hashtbl.replace t (locus mv) (iter + tenure)

  let active t ~iter mv =
    match Hashtbl.find_opt t (locus mv) with
    | Some until -> iter < until
    | None -> false
end

(* Collapse duplicate draws to their first occurrence, preserving draw
   order. The sequential accept decision breaks ties strictly (first
   strictly smaller length wins), so a duplicate — equal length by
   definition — can never be chosen over its first occurrence: dropping
   it before the evaluation fan-out saves the redundant evaluations
   without changing the trajectory for any [jobs] value. *)
let dedup_moves moves =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun mv ->
      if Hashtbl.mem seen mv then false
      else begin
        Hashtbl.add seen mv ();
        true
      end)
    moves

let random_move rng opts problem =
  let g = Problem.graph problem in
  let wcet = problem.Problem.wcet in
  let nprocs = Graph.process_count g in
  let pid = Rng.int rng nprocs in
  let want_policy =
    opts.policy_moves && ((not opts.remap_moves) || Rng.chance rng 0.4)
  in
  if want_policy then
    let current = kind_of_policy problem.Problem.policies.(pid) in
    let kinds = List.filter (fun kd -> kd <> current) opts.policy_kinds in
    match kinds with
    | [] -> None
    | _ -> Some (Set_policy { pid; kind = Rng.pick_list rng kinds })
  else
    let copies = Mapping.copy_count problem.Problem.mapping ~pid in
    let copy = Rng.int rng copies in
    let current = Mapping.node_of problem.Problem.mapping ~pid ~copy in
    let allowed =
      List.filter (fun nid -> nid <> current) (Wcet.allowed_nodes wcet ~pid)
    in
    match allowed with
    | [] -> None
    | _ -> Some (Remap { pid; copy; nid = Rng.pick_list rng allowed })

let optimize_body opts problem =
  let rng = Rng.create opts.seed in
  let k = problem.Problem.k in
  let wcet = problem.Problem.wcet in
  let objective p =
    match opts.cache with
    | Some c -> Evalcache.length ~ft:opts.ft_objective c p
    | None -> Ftes_sched.Slack.length ~ft:opts.ft_objective p
  in
  let tabu = Tenure.create () in
  let best = ref problem in
  let best_len = ref (objective problem) in
  (* The shared incumbent is read only when exchange is on: a
     publish-only cell keeps the trajectory identical to a solo run
     (the deterministic portfolio mode relies on this). The cell's
     costs are fault-tolerant schedule lengths, so the fault-free
     phases (SFX's mapping phase, the nft baseline) neither publish
     into it nor aspire against it. *)
  let shared = if opts.ft_objective then opts.shared else None in
  let aspire_floor () =
    match shared with
    | Some h when opts.exchange -> Float.min !best_len (Incumbent.handle_best h)
    | Some _ | None -> !best_len
  in
  let publish len =
    match shared with
    | Some h -> ignore (Incumbent.publish_handle h len)
    | None -> ()
  in
  publish !best_len;
  let current = ref problem in
  let stall = ref 0 in
  let ev_on = Events.enabled () in
  let ev_t0 = Events.now () in
  let ev_evals = ref 0 in
  if ev_on then begin
    Events.emit
      (Events.Incumbent
         { source = "tabu"; cost = !best_len; evals = 0; wall_s = 0. });
    Events.drain ()
  end;
  let step iter =
    Telemetry.incr c_iterations;
    (* Sample candidate moves, keep the best admissible one. The
       moves are drawn sequentially (the rng stream is the same for
       every [jobs] value), the expensive part — applying each move
       and evaluating the schedule-length objective — fans out over
       the domain pool, and the fold below replays the sequential
       first-wins tie-breaking in draw order, so the accept decision
       is identical to the [jobs = 1] run. *)
    let drawn = ref [] in
    for _ = 1 to opts.sample do
      match random_move rng opts !current with
      | None -> ()
      | Some mv -> drawn := mv :: !drawn
    done;
    let evaluated =
      Ftes_util.Par.map ~jobs:opts.jobs
        (fun mv ->
          match apply_move ~k ~wcet !current mv with
          | exception Invalid_argument _ -> None
          | cand -> Some (mv, cand, objective cand))
        (dedup_moves (List.rev !drawn))
    in
    if Telemetry.enabled () then
      Telemetry.add c_moves_evaluated (List.length evaluated);
    if ev_on then ev_evals := !ev_evals + List.length evaluated;
    let chosen = ref None in
    List.iter
      (function
        | None -> ()
        | Some (mv, cand, len) ->
            (* Aspiration compares against the global best: a tabu
               move is admissible only when it beats the best length
               seen so far (not merely the current schedule). With
               incumbent exchange on, "global" means across the whole
               portfolio — the shared cell can only tighten the
               threshold, never loosen it. *)
            let admissible =
              (not (Tenure.active tabu ~iter mv))
              || len < aspire_floor () -. 1e-9
            in
            if admissible then
              let better =
                match !chosen with
                | None -> true
                | Some (_, _, l) -> len < l
              in
              if better then chosen := Some (mv, cand, len))
      evaluated;
    match !chosen with
    | None ->
        incr stall;
        Telemetry.incr c_stalls
    | Some (mv, cand, len) ->
        Telemetry.incr c_accepted;
        if Tenure.active tabu ~iter mv then Telemetry.incr c_aspirations;
        current := cand;
        Tenure.mark tabu ~iter ~tenure:opts.tenure mv;
        if len < !best_len -. 1e-9 then begin
          best := cand;
          best_len := len;
          stall := 0;
          publish len;
          Telemetry.incr c_improved;
          Telemetry.set_gauge "tabu.best_len" len;
          if ev_on then
            Events.emit
              (Events.Incumbent
                 {
                   source = "tabu";
                   cost = len;
                   evals = !ev_evals;
                   wall_s = Events.now () -. ev_t0;
                 })
        end
        else incr stall;
        Telemetry.set_gauge "tabu.tenure_entries"
          (float_of_int (Hashtbl.length tabu))
  in
  let stopped () = match opts.stop with Some f -> f () | None -> false in
  (try
     for iter = 1 to opts.iterations do
       if !stall > opts.stall_limit then raise Exit;
       if stopped () then raise Exit;
       (if Telemetry.enabled () then
          Telemetry.with_span ~cat:"optim"
            ~args:[ ("iter", Telemetry.Int iter) ]
            "tabu.iter"
            (fun () -> step iter)
        else step iter);
       if ev_on then Events.drain ()
     done
   with Exit -> ());
  (!best, !best_len)

let optimize opts problem =
  if Telemetry.enabled () then
    Telemetry.with_span ~cat:"optim"
      ~args:
        [
          ("iterations", Telemetry.Int opts.iterations);
          ("sample", Telemetry.Int opts.sample);
          ("jobs", Telemetry.Int opts.jobs);
          ("seed", Telemetry.Int opts.seed);
        ]
      "tabu.optimize"
      (fun () -> optimize_body opts problem)
  else optimize_body opts problem
