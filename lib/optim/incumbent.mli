(** Best-so-far incumbent broadcast for the strategy portfolio.

    One cell is shared by every worker of a {!Portfolio} run: a worker
    that improves its local best {e publishes} (cost, member label);
    every other worker can {e peek} the global best lock-free and use
    it to tighten its aspiration threshold. The cell is strictly
    monotone — a publish only wins when it improves the stored cost by
    more than a float tolerance — so the accumulated {!curve} is the
    portfolio's anytime quality-vs-time trajectory, non-increasing by
    construction.

    Publishing is observational (write-only): with incumbent
    {e exchange} disabled (see [Tabu.options.exchange]) no search reads
    the cell, so deterministic portfolio runs still record their curve
    here without the cell steering any trajectory. *)

type t

type entry = {
  cost : float;  (** Objective (estimated schedule length). *)
  member : string;  (** Label of the member that published it. *)
  wall_s : float;  (** Seconds since {!create}. *)
}

type handle
(** One member's view of the cell: the cell plus that member's label,
    so engines can publish without threading labels separately. *)

val create : unit -> t
(** A fresh empty cell; starts the wall clock of {!entry.wall_s}. *)

val handle : t -> label:string -> handle

val publish : t -> member:string -> float -> bool
(** [publish t ~member cost] installs [cost] iff it beats the stored
    cost by more than [1e-9]; returns whether it won. Winning publishes
    append to the curve and, when events are enabled, emit an
    [Events.Incumbent] with source ["portfolio:<member>"] (and drain,
    when called outside the pool). Safe from any domain. *)

val publish_handle : handle -> float -> bool
(** {!publish} through a member handle. *)

val handle_best : handle -> float
(** {!best_cost} of the handle's cell — what an exchanging engine
    aspires against. *)

val peek : t -> entry option
(** Lock-free read of the current global best. *)

val best_cost : t -> float
(** [peek]'s cost, or [infinity] when nothing was published yet. *)

val curve : t -> entry list
(** Every winning publish in publish order — oldest first, strictly
    decreasing in cost. *)
