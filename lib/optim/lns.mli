(** Large-neighborhood restarts driven by violation diagnostics — the
    portfolio's genuinely non-tabu engine.

    Where tabu search walks one small move at a time, LNS alternates
    {e destroy} (perturb several whole processes at once: random policy
    kind, rebuilt copy mapping, copy 0 kicked to a random allowed node)
    and {e repair} (a deterministic policy descent followed by a short
    tabu intensification). The destroy step is {e targeted}: when the
    current design's FT-CPG is small enough to expand and its schedule
    table fails fault-injection validation, the shrunk counterexamples
    of [Ftes_sim.Diagnose] name the guilty processes — the PR 2
    feedback loop closed into synthesis. For clean or inexpansible
    designs it falls back to the estimator's critical processes
    ([Ftes_sched.Slack.critical_processes]). *)

type options = {
  seed : int;
  restarts : int;  (** Destroy/repair rounds (default 4). *)
  destroy : int;  (** Processes perturbed per round (default 3). *)
  repair_iterations : int;  (** Tabu budget of each repair (default 30). *)
  sample : int;  (** Tabu candidate sample of each repair. *)
  diag_max_vertices : int;
      (** FT-CPG expansion budget of the diagnostics probe; larger
          designs skip the probe (default 2000). *)
  diag_max_violations : int;
      (** Validation stops after this many violations (default 48). *)
  cache : Evalcache.t option;
  stop : (unit -> bool) option;  (** Polled between rounds and inside
                                     the repair search. *)
  shared : Incumbent.handle option;
  exchange : bool;  (** As in [Tabu.options]. *)
}

val default_options : options

val optimize :
  options -> Ftes_ftcpg.Problem.t -> Ftes_ftcpg.Problem.t * float
(** Best design found and its estimated fault-tolerant schedule length.
    Deterministic for fixed options when [exchange] is off. *)

val diagnostic_targets :
  ?max_vertices:int ->
  ?max_violations:int ->
  Ftes_ftcpg.Problem.t ->
  int list
(** The process ids the diagnostics name as guilty for the design:
    expand the FT-CPG (within [max_vertices]), schedule, validate
    (first [max_violations] violations), shrink, and map both the
    guilty vertices and the fault literals of the shrunk scenarios back
    to processes. [[]] when the design expands too large, cannot be
    scheduled, or validates clean. Exposed for the tests. *)

val slack_targets :
  ?cache:Evalcache.t -> Ftes_ftcpg.Problem.t -> int list
(** Fallback targets: processes by decreasing estimator penalty. *)
