module Problem = Ftes_ftcpg.Problem
module Mapping = Ftes_ftcpg.Mapping
module Graph = Ftes_app.Graph
module Wcet = Ftes_arch.Wcet
module Telemetry = Ftes_util.Telemetry
module Events = Ftes_util.Events

let c_rounds = Telemetry.counter "descent.rounds"

let objective ?cache p =
  match cache with
  | Some c -> Evalcache.length ~ft:true c p
  | None -> Ftes_sched.Slack.length ~ft:true p

let policy_sweep ?cache ?(kinds = [ Tabu.Reexec; Tabu.Repl; Tabu.Combined ])
    ?max_rounds ?(width = 6) problem =
  let g = Problem.graph problem in
  let nprocs = Graph.process_count g in
  let max_rounds = match max_rounds with Some r -> r | None -> nprocs in
  let k = problem.Problem.k in
  let wcet = problem.Problem.wcet in
  let ev_on = Events.enabled () in
  let ev_t0 = Events.now () in
  let ev_evals = ref 0 in
  let objective p =
    if ev_on then incr ev_evals;
    objective ?cache p
  in
  let evaluate p =
    match cache with
    | Some c -> Evalcache.evaluate ~ft:true c p
    | None -> Ftes_sched.Slack.evaluate ~ft:true p
  in
  (* The slack term is a max over processes: only moves on the current
     top-penalty processes can improve it, so each round evaluates the
     [width] most critical ones (plus the estimate's root is insensitive
     to a single policy switch elsewhere). *)
  let candidates best =
    let r = evaluate best in
    let critical =
      List.filteri (fun i _ -> i < width)
        (List.map fst (Ftes_sched.Slack.critical_processes r))
    in
    if critical = [] then List.init (min width nprocs) (fun i -> i)
    else critical
  in
  let rec round i best best_len =
    if i >= max_rounds then best
    else begin
      Telemetry.incr c_rounds;
      let chosen = ref None in
      List.iter
        (fun pid ->
          List.iter
            (fun kind ->
              match Tabu.reassign_policy ~k ~wcet best ~pid kind with
              | exception Invalid_argument _ -> ()
              | cand ->
                  let len = objective cand in
                  let improves =
                    len < best_len -. 1e-9
                    && match !chosen with
                       | None -> true
                       | Some (_, l) -> len < l
                  in
                  if improves then chosen := Some (cand, len))
            kinds)
        (candidates best);
      match !chosen with
      | None -> best
      | Some (cand, len) ->
          if ev_on then begin
            Events.emit
              (Events.Incumbent
                 {
                   source = "descent.policy";
                   cost = len;
                   evals = !ev_evals;
                   wall_s = Events.now () -. ev_t0;
                 });
            Events.drain ()
          end;
          round (i + 1) cand len
    end
  in
  Telemetry.with_span ~cat:"optim" "descent.policy_sweep" (fun () ->
      round 0 problem (objective problem))

let remap_sweep ?cache ?max_rounds problem =
  let g = Problem.graph problem in
  let nprocs = Graph.process_count g in
  let max_rounds = match max_rounds with Some r -> r | None -> nprocs in
  let wcet = problem.Problem.wcet in
  let ev_on = Events.enabled () in
  let ev_t0 = Events.now () in
  let ev_evals = ref 0 in
  let objective p =
    if ev_on then incr ev_evals;
    objective ?cache p
  in
  let rec round i best best_len =
    if i >= max_rounds then best
    else begin
      Telemetry.incr c_rounds;
      let chosen = ref None in
      for pid = 0 to nprocs - 1 do
        let copies = Mapping.copy_count best.Problem.mapping ~pid in
        for copy = 0 to copies - 1 do
          let current = Mapping.node_of best.Problem.mapping ~pid ~copy in
          List.iter
            (fun nid ->
              if nid <> current then begin
                let mapping =
                  Mapping.remap best.Problem.mapping ~pid ~copy ~nid
                in
                match
                  Problem.with_policies best best.Problem.policies mapping
                with
                | exception Invalid_argument _ -> ()
                | cand ->
                    let len = objective cand in
                    let improves =
                      len < best_len -. 1e-9
                      && match !chosen with
                         | None -> true
                         | Some (_, l) -> len < l
                    in
                    if improves then chosen := Some (cand, len)
              end)
            (Wcet.allowed_nodes wcet ~pid)
        done
      done;
      match !chosen with
      | None -> best
      | Some (cand, len) ->
          if ev_on then begin
            Events.emit
              (Events.Incumbent
                 {
                   source = "descent.remap";
                   cost = len;
                   evals = !ev_evals;
                   wall_s = Events.now () -. ev_t0;
                 });
            Events.drain ()
          end;
          round (i + 1) cand len
    end
  in
  Telemetry.with_span ~cat:"optim" "descent.remap_sweep" (fun () ->
      round 0 problem (objective problem))
