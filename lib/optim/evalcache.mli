(** Domain-safe memoization of design evaluations ([Ftes_sched.Slack]).

    The design-space exploration layers — tabu search, steepest descent,
    checkpoint optimization, the Fig. 7 strategies — spend almost all of
    their time re-running [Slack.evaluate] on configurations the search
    has already priced: moves perturb a single process, stalled
    iterations redraw moves from an unchanged configuration, and the MXR
    strategy re-visits the same assignments across its phases. The cache
    keys each evaluation by a canonical {e design signature} — the
    mapping vector, the per-process policy (recovery and checkpoint plan
    of every copy), the fault hypothesis [k] and the [ft] objective
    flag — so a repeated configuration returns its memoized
    [Slack.result] instead of re-scheduling.

    {b Determinism.} [Slack.evaluate] is a pure function of the
    signature (given a fixed application / architecture / WCET table),
    so a cached run is bit-identical to an uncached one: the cache is a
    pure performance layer, pinned by the tests in
    [test/test_evalcache.ml].

    {b Domain safety.} The store is lock-striped: signatures are hashed
    (FNV-style) onto a fixed array of shards, each guarded by its own
    [Mutex], so concurrent lookups from the [Ftes_util.Par] domain pool
    contend only when they hash to the same shard. Evaluations always
    run outside the locks.

    {b Scope.} One cache serves one synthesis instance: the first
    problem evaluated pins the cache's {e universe} (its application,
    architecture and WCET table, compared physically). A problem from a
    different universe bypasses the cache — counted in
    [stats.bypasses] — and is evaluated directly, so sharing a cache too
    widely degrades performance, never correctness. *)

type t

type stats = {
  lookups : int;  (** Cacheable evaluation requests (hits + misses). *)
  hits : int;
  misses : int;
  inserts : int;
  evictions : int;  (** Entries dropped to respect [capacity]. *)
  bypasses : int;  (** Requests from a foreign universe, not cached. *)
  entries : int;  (** Entries currently stored. *)
}

val create : ?shards:int -> ?capacity:int -> unit -> t
(** [shards] (default 16) lock stripes; [capacity] (default 65536) a
    bound on the {e total} number of stored results, split evenly across
    shards (at least one entry per shard). When a shard is full the
    oldest entry of that shard is evicted (FIFO).
    @raise Invalid_argument when either is < 1. *)

val signature : ?ft:bool -> Ftes_ftcpg.Problem.t -> string
(** The canonical structural key: [ft] flag ⊕ [k] ⊕ per-process policy
    plans ⊕ mapping vector. Injective over everything [Slack.evaluate]
    reads from the configuration (two problems of the same universe get
    equal signatures iff the evaluator cannot distinguish them). *)

val signature_hash : string -> int
(** FNV-1a-style hash of a signature, used for shard selection.
    Exposed for the collision tests. *)

val evaluate : ?ft:bool -> t -> Ftes_ftcpg.Problem.t -> Ftes_sched.Slack.result
(** Memoized [Ftes_sched.Slack.evaluate ?ft]. *)

val length : ?ft:bool -> t -> Ftes_ftcpg.Problem.t -> float
(** Memoized [Ftes_sched.Slack.length ?ft] (same cache entries as
    {!evaluate}: the full result is stored either way). *)

val stats : t -> stats

val hit_rate : stats -> float
(** [hits / lookups] in [0, 1]; [0.] before the first lookup. *)

val clear : t -> unit
(** Drop every entry, reset all counters and unpin the universe. *)

val pp_stats : Format.formatter -> stats -> unit
