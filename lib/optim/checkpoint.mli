(** Optimization of the number of checkpoints (paper, Sec. 6 and Fig. 8).

    Two levels:

    - {!local_optimum}: the closed-form per-process optimum in the style
      of Punnekkat et al. [27] — minimize the process's own worst-case
      length [W(n, k)] in isolation, as a function of the checkpointing
      overhead. This is the paper's baseline.

    - {!global_optimize}: the system-level optimization of [15] — adjust
      checkpoint counts driven by the {e global} schedule length
      (checkpointing overhead of every process lengthens the root
      schedule, while recovery slack is shared, so only the
      worst-recovery process constrains the slack term). *)

val worst_case : c:float -> Ftes_app.Overheads.t -> k:int -> checkpoints:int -> float
(** [W(n, k)] — the quantity both optimizations reason about
    (re-exported from [Ftes_app.Fttime] with the recovery budget [k]). *)

val local_optimum :
  ?max_checkpoints:int -> c:float -> Ftes_app.Overheads.t -> k:int -> int
(** Closed form: the real minimizer of [W(n, k)] is
    [n* = sqrt (k c / (alpha + chi))]; the integer optimum is the better
    of its floor and ceiling (clamped to [1, max_checkpoints], default
    100). With [k = 0] or zero overheads the result degenerates to 1 or
    the cap, respectively. *)

val assign_local :
  ?max_checkpoints:int -> Ftes_ftcpg.Problem.t -> Ftes_ftcpg.Problem.t
(** Set every copy's checkpoint count to its local optimum (recovery
    budgets and mapping unchanged). *)

val global_optimize :
  ?cache:Evalcache.t ->
  ?max_checkpoints:int ->
  ?max_passes:int ->
  Ftes_ftcpg.Problem.t ->
  Ftes_ftcpg.Problem.t
(** Steepest-descent over single-copy checkpoint increments/decrements,
    objective = estimated worst-case schedule length
    ([Ftes_sched.Slack.length], memoized through [cache] when given —
    increment/decrement candidates recur across passes, and the result
    is identical either way); stops at a local minimum or after
    [max_passes] (default 32) improvement passes. Start from any
    assignment (typically {!assign_local}). *)
