(** Parallel strategy portfolio: race diverse optimizer configurations
    on the domain pool, share one {!Evalcache}, broadcast the best
    incumbent, return an anytime result (ROADMAP item 3).

    A {e member} is one configuration — an engine (a Fig. 7/8 strategy
    or the diagnostics-driven {!Lns} restart engine) plus its seed,
    tabu tenure and neighborhood sample size. {!run} computes the
    fault-free baseline once, launches every member concurrently via
    [Ftes_util.Par.map_live] (the calling domain pumps the live event
    stream while up to [jobs] workers race), and every member shares:

    - one universe-pinned {!Evalcache} — MXR's descent phases revisit
      designs that MX's tabu has already priced;
    - one {!Incumbent} cell — each local improvement is published with
      the member's label; with [exchange] on, members also read it to
      tighten their aspiration thresholds.

    {b Modes.} With [deadline_s = None] and [exchange = false]
    (deterministic mode) every member runs its fixed iteration budget
    with no steering reads, so the member outcomes — and the winner,
    chosen by strict length with earliest-member tie-break — are
    invariant across [jobs] (pinned by [test/test_portfolio.ml]). With
    a deadline and/or exchange the run is {e anytime}: every member
    polls the wall clock, the incumbent {!result.curve} improves
    monotonically until the deadline, and the trajectory legitimately
    depends on worker timing. *)

type engine =
  | Strategy of Strategy.name
  | Lns of { restarts : int; destroy : int }

type member = {
  label : string;  (** Unique display name, e.g. ["MXR#0"]. *)
  engine : engine;
  seed : int;
  tenure : int;
  sample : int;
}

type member_outcome = {
  member : member;
  length : float;  (** Final estimated FT schedule length. *)
  wall_s : float;  (** The member's own wall clock. *)
  problem : Ftes_ftcpg.Problem.t;
}

type options = {
  jobs : int;  (** Concurrent members (pool workers; the caller only
                   polls). *)
  deadline_s : float option;
      (** Wall-clock budget for the whole race; [None] (default) runs
          every member's full iteration budget. *)
  exchange : bool;
      (** Read the shared incumbent for aspiration (default [false];
          see [Tabu.options.exchange]). *)
  cache : Evalcache.t option;
      (** Shared eval cache; a fresh one is created when [None]. *)
  tabu : Tabu.options;
      (** Base search options (iterations, stall limit, policy kinds,
          ...). Per-member seed/tenure/sample override it; [jobs] is
          forced to 1 inside members and [cache]/[stop]/[shared] are
          managed by the portfolio. *)
}

type result = {
  winner : member_outcome;
  nft : float;  (** Fault-free baseline, computed once for the race. *)
  fto : float;  (** Winner's fault-tolerance overhead vs [nft]. *)
  curve : Incumbent.entry list;
      (** Anytime quality-vs-time curve: every incumbent improvement
          across all members, oldest first, strictly decreasing cost. *)
  members : member_outcome list;  (** In member order. *)
  wall_s : float;
  cache_stats : Evalcache.stats;
}

val default_options : options

val default_members :
  ?seed:int -> ?sample:int -> ?checkpointing:bool -> unit -> member list
(** The standard race: MXR, MX, SFX, MR and the LNS restart engine,
    diversified over seed, tenure and sample; [checkpointing] adds an
    MC-global member (the Fig. 8 flavor). *)

val run :
  ?opts:options -> ?members:member list -> Strategy.inputs -> result
(** Race the members ([default_members] when omitted or empty).
    @raise Invalid_argument only from degenerate inputs. *)

val engine_to_string : engine -> string
val pp_result : Format.formatter -> result -> unit
