(* Monotone best-so-far broadcast cell for the strategy portfolio. See
   incumbent.mli for the contract. *)

module Events = Ftes_util.Events

type entry = { cost : float; member : string; wall_s : float }

type t = {
  (* Readers ([peek], [best_cost]) are lock-free on this atomic; the
     rare writers serialize through [lock] below, so the cell and the
     history advance together and the curve is monotone by
     construction (a CAS-only publish could order the history
     differently from the cell updates). *)
  cell : entry option Atomic.t;
  lock : Mutex.t;
  mutable history : entry list;  (* newest first *)
  t0 : float;
}

type handle = { cell_of : t; label : string }

let create () =
  {
    cell = Atomic.make None;
    lock = Mutex.create ();
    history = [];
    t0 = Unix.gettimeofday ();
  }

let handle t ~label = { cell_of = t; label }

let peek t = Atomic.get t.cell

let best_cost t =
  match Atomic.get t.cell with Some e -> e.cost | None -> infinity

let publish t ~member cost =
  let improves () =
    match Atomic.get t.cell with
    | Some e -> cost < e.cost -. 1e-9
    | None -> true
  in
  (* Cheap lock-free reject first: most publishes lose the race. *)
  improves ()
  &&
  begin
    Mutex.lock t.lock;
    let won = improves () in
    if won then begin
      let entry =
        { cost; member; wall_s = Unix.gettimeofday () -. t.t0 }
      in
      Atomic.set t.cell (Some entry);
      t.history <- entry :: t.history
    end;
    Mutex.unlock t.lock;
    if won && Events.enabled () then begin
      Events.emit
        (Events.Incumbent
           {
             source = "portfolio:" ^ member;
             cost;
             evals = 0;
             wall_s = Events.now ();
           });
      Events.drain ()
    end;
    won
  end

let publish_handle h cost = publish h.cell_of ~member:h.label cost
let handle_best h = best_cost h.cell_of

let curve t =
  Mutex.lock t.lock;
  let h = t.history in
  Mutex.unlock t.lock;
  List.rev h
