(* Diagnostics-driven large-neighborhood restarts. See lns.mli. *)

module Problem = Ftes_ftcpg.Problem
module Ftcpg = Ftes_ftcpg.Ftcpg
module Cond = Ftes_ftcpg.Cond
module Mapping = Ftes_ftcpg.Mapping
module Wcet = Ftes_arch.Wcet
module Slack = Ftes_sched.Slack
module Rng = Ftes_util.Rng

type options = {
  seed : int;
  restarts : int;
  destroy : int;
  repair_iterations : int;
  sample : int;
  diag_max_vertices : int;
  diag_max_violations : int;
  cache : Evalcache.t option;
  stop : (unit -> bool) option;
  shared : Incumbent.handle option;
  exchange : bool;
}

let default_options =
  {
    seed = 42;
    restarts = 4;
    destroy = 3;
    repair_iterations = 30;
    sample = 12;
    diag_max_vertices = 2_000;
    diag_max_violations = 48;
    cache = None;
    stop = None;
    shared = None;
    exchange = false;
  }

let uniq_ints xs = List.sort_uniq compare xs

let diagnostic_targets ?(max_vertices = 2_000) ?(max_violations = 48) problem
    =
  match Ftcpg.build ~max_vertices problem with
  | exception Ftcpg.Too_large _ -> []
  | g -> (
      match Ftes_sched.Conditional.schedule g with
      | exception Ftes_sched.Conditional.Too_many_tracks _ -> []
      | table ->
          let violations =
            Ftes_sim.Sim.validate ~jobs:1 ~stop_after:max_violations table
          in
          if violations = [] then []
          else begin
            let report =
              Ftes_sim.Diagnose.of_violations ~max_shrinks:4 table violations
            in
            (* A condition id is the vid of the conditional vertex that
               produces it, so both the guilty vertex and the fault
               literals of a shrunk counterexample resolve to process
               ids through the vertex table. *)
            let pid_of_vid vid =
              if vid < 0 || vid >= Ftcpg.vertex_count g then None
              else
                match (Ftcpg.vertex g vid).Ftcpg.kind with
                | Ftcpg.Proc_copy { pid; _ } -> Some pid
                | _ -> None
            in
            let of_group (grp : Ftes_sim.Diagnose.group) =
              let from_vertex =
                match (grp.Ftes_sim.Diagnose.kind, grp.vertex) with
                (* local-deadline violations carry the process id
                   directly, everything else an FT-CPG vertex. *)
                | "local-deadline-missed", Some pid -> [ pid ]
                | _, Some vid -> Option.to_list (pid_of_vid vid)
                | _, None -> []
              in
              let from_scenario =
                match grp.Ftes_sim.Diagnose.shrunk with
                | None -> []
                | Some guard ->
                    List.filter_map
                      (fun (l : Cond.literal) ->
                        if l.Cond.fault then pid_of_vid l.Cond.cond else None)
                      (Cond.literals guard)
              in
              from_vertex @ from_scenario
            in
            uniq_ints
              (List.concat_map of_group report.Ftes_sim.Diagnose.groups)
          end)

let slack_targets ?cache problem =
  let result =
    match cache with
    | Some c -> Evalcache.evaluate c problem
    | None -> Slack.evaluate problem
  in
  List.map fst (Slack.critical_processes result)

(* Destroy step: reassign the policy of one target process to a random
   kind (rebuilding its copies' mapping) and kick copy 0 to a random
   allowed node — a much larger perturbation than any single tabu
   move. *)
let perturb ~rng problem pid =
  let k = problem.Problem.k in
  let wcet = problem.Problem.wcet in
  let kind =
    Rng.pick_list rng [ Tabu.Reexec; Tabu.Repl; Tabu.Combined ]
  in
  let p = Tabu.reassign_policy ~k ~wcet problem ~pid kind in
  let current = Mapping.node_of p.Problem.mapping ~pid ~copy:0 in
  let allowed =
    List.filter (fun nid -> nid <> current) (Wcet.allowed_nodes wcet ~pid)
  in
  match allowed with
  | [] -> p
  | _ ->
      let nid = Rng.pick_list rng allowed in
      Problem.with_policies p p.Problem.policies
        (Mapping.remap p.Problem.mapping ~pid ~copy:0 ~nid)

let optimize opts problem =
  let rng = Rng.create opts.seed in
  let objective p =
    match opts.cache with
    | Some c -> Evalcache.length ~ft:true c p
    | None -> Slack.length ~ft:true p
  in
  let stopped () = match opts.stop with Some f -> f () | None -> false in
  let publish len =
    match opts.shared with
    | Some h -> ignore (Incumbent.publish_handle h len)
    | None -> ()
  in
  let best = ref problem in
  let best_len = ref (objective problem) in
  publish !best_len;
  let current = ref problem in
  (try
     for restart = 1 to opts.restarts do
       if stopped () then raise Exit;
       (* Where to strike: the shrunk counterexamples of a failing
          table name the guilty processes; a clean (or inexpansible)
          design falls back to the estimator's critical processes. *)
       let targets =
         match
           diagnostic_targets ~max_vertices:opts.diag_max_vertices
             ~max_violations:opts.diag_max_violations !current
         with
         | [] -> slack_targets ?cache:opts.cache !current
         | pids -> pids
       in
       let targets =
         match targets with
         | [] ->
             (* Degenerate instance: perturb anything. *)
             List.init
               (Ftes_app.Graph.process_count (Problem.graph !current))
               Fun.id
         | pids -> pids
       in
       let picked =
         List.filteri (fun i _ -> i < opts.destroy) targets
       in
       let destroyed =
         List.fold_left (fun p pid -> perturb ~rng p pid) !current picked
       in
       (* Repair: deterministic policy descent, then a short tabu
          intensification seeded per restart. *)
       let repaired = Descent.policy_sweep ?cache:opts.cache destroyed in
       let t_opts =
         {
           Tabu.default_options with
           Tabu.seed = opts.seed + (1000 * restart);
           iterations = opts.repair_iterations;
           sample = opts.sample;
           stall_limit = max 10 (opts.repair_iterations / 2);
           jobs = 1;
           cache = opts.cache;
           stop = opts.stop;
           shared = opts.shared;
           exchange = opts.exchange;
         }
       in
       let repaired, len = Tabu.optimize t_opts repaired in
       current := repaired;
       if len < !best_len -. 1e-9 then begin
         best := repaired;
         best_len := len;
         publish len
       end
       else
         (* Restart the next destroy round from the best design so the
            walk cannot drift away for good. *)
         current := !best
     done
   with Exit -> ());
  (!best, !best_len)
