(* Parallel strategy portfolio with a shared eval cache, incumbent
   exchange and anytime results. See portfolio.mli. *)

module Problem = Ftes_ftcpg.Problem
module Slack = Ftes_sched.Slack
module Par = Ftes_util.Par
module Events = Ftes_util.Events
module Telemetry = Ftes_util.Telemetry

type engine =
  | Strategy of Strategy.name
  | Lns of { restarts : int; destroy : int }

type member = {
  label : string;
  engine : engine;
  seed : int;
  tenure : int;
  sample : int;
}

type member_outcome = {
  member : member;
  length : float;
  wall_s : float;
  problem : Problem.t;
}

type options = {
  jobs : int;
  deadline_s : float option;
  exchange : bool;
  cache : Evalcache.t option;
  tabu : Tabu.options;
}

type result = {
  winner : member_outcome;
  nft : float;
  fto : float;
  curve : Incumbent.entry list;
  members : member_outcome list;
  wall_s : float;
  cache_stats : Evalcache.stats;
}

let default_options =
  {
    jobs = Par.default_jobs ();
    deadline_s = None;
    exchange = false;
    cache = None;
    tabu = Tabu.default_options;
  }

let engine_to_string = function
  | Strategy name -> Strategy.name_to_string name
  | Lns { restarts; destroy } -> Printf.sprintf "LNS(r%d,d%d)" restarts destroy

let default_members ?(seed = 42) ?(sample = 16) ?(checkpointing = false) () =
  let m label engine seed tenure sample =
    { label; engine; seed; tenure; sample }
  in
  let half = max 4 (sample / 2) in
  [
    (* strategy x seed x tenure x neighborhood diversity: same engine
       family twice is fine as long as the knobs differ. *)
    m "MXR#0" (Strategy Strategy.MXR) seed 8 sample;
    m "MX#1" (Strategy Strategy.MX) (seed + 1) 12 sample;
    m "SFX#2" (Strategy Strategy.SFX) (seed + 2) 8 half;
    m "MR#3" (Strategy Strategy.MR) (seed + 3) 4 half;
    m "LNS#4" (Lns { restarts = 4; destroy = 3 }) (seed + 4) 8 half;
  ]
  @
  if checkpointing then
    [ m "MC-global#5" (Strategy Strategy.MC_global) (seed + 5) 8 sample ]
  else []

let initial_problem (i : Strategy.inputs) =
  let policies = Problem.default_policies ~app:i.app ~k:i.k in
  let mapping = Problem.fastest_mapping ~app:i.app ~wcet:i.wcet ~policies in
  Problem.make ~app:i.app ~arch:i.arch ~wcet:i.wcet ~k:i.k ~policies ~mapping

let run ?(opts = default_options) ?members (i : Strategy.inputs) =
  Telemetry.with_span ~cat:"optim"
    ~args:[ ("jobs", Telemetry.Int opts.jobs) ]
    "portfolio"
  @@ fun () ->
  Events.with_phase "portfolio" @@ fun () ->
  let members =
    match members with
    | Some (_ :: _ as ms) -> ms
    | Some [] | None ->
        default_members ~seed:opts.tabu.Tabu.seed ~sample:opts.tabu.Tabu.sample
          ()
  in
  let cache =
    match opts.cache with Some c -> c | None -> Evalcache.create ()
  in
  let inc = Incumbent.create () in
  let t0 = Unix.gettimeofday () in
  let stop =
    match (opts.deadline_s, opts.tabu.Tabu.stop) with
    | None, base -> base
    | Some d, base ->
        let until = t0 +. d in
        Some
          (fun () ->
            Unix.gettimeofday () >= until
            || match base with Some f -> f () | None -> false)
  in
  (* The fault-free baseline is computed once, before the race, and
     handed to every member — with N members, recomputing it per
     configuration would multiply the most cache-hostile search
     (different objective, so no shared entries) by N. *)
  let nft =
    Strategy.nft_length
      ~opts:
        {
          opts.tabu with
          Tabu.cache = Some cache;
          stop;
          shared = None;
          exchange = false;
        }
      i
  in
  let run_member m =
    let mt0 = Unix.gettimeofday () in
    if Events.enabled () then begin
      Events.emit (Events.Worker_start { member = m.label });
      Events.drain ()
    end;
    let topts =
      {
        opts.tabu with
        Tabu.seed = m.seed;
        tenure = m.tenure;
        sample = m.sample;
        (* Members run inside pool workers where nested parallel calls
           are sequential anyway; jobs:1 keeps the jobs=1 portfolio
           bit-identical to the jobs=N one. *)
        jobs = 1;
        cache = Some cache;
        stop;
        shared = Some (Incumbent.handle inc ~label:m.label);
        exchange = opts.exchange;
      }
    in
    let problem, length =
      match m.engine with
      | Strategy name ->
          let o = Strategy.run ~opts:topts ~nft i name in
          (o.Strategy.problem, o.Strategy.length)
      | Lns { restarts; destroy } ->
          Lns.optimize
            {
              Lns.default_options with
              Lns.seed = m.seed;
              restarts;
              destroy;
              repair_iterations = max 10 (opts.tabu.Tabu.iterations / 4);
              sample = m.sample;
              cache = Some cache;
              stop;
              shared = Some (Incumbent.handle inc ~label:m.label);
              exchange = opts.exchange;
            }
            (initial_problem i)
    in
    ignore (Incumbent.publish inc ~member:m.label length);
    let wall_s = Unix.gettimeofday () -. mt0 in
    if Events.enabled () then
      Events.emit
        (Events.Worker_finish { member = m.label; cost = length; wall_s });
    { member = m; length; wall_s; problem }
  in
  (* The caller polls (delivering events live) instead of racing: with
     jobs workers the portfolio-level parallelism is exactly [jobs]. *)
  let outcomes = Par.map_live ~jobs:opts.jobs ~poll:Events.drain run_member members in
  let winner =
    match outcomes with
    | [] -> invalid_arg "Portfolio.run: no members"
    | first :: rest ->
        (* Strict improvement only: ties resolve to the earliest member
           in list order, independent of completion order. *)
        List.fold_left
          (fun acc o -> if o.length < acc.length -. 1e-9 then o else acc)
          first rest
  in
  {
    winner;
    nft;
    fto = Slack.fto ~ft_length:winner.length ~nft_length:nft;
    curve = Incumbent.curve inc;
    members = outcomes;
    wall_s = Unix.gettimeofday () -. t0;
    cache_stats = Evalcache.stats cache;
  }

let pp_result ppf r =
  Format.fprintf ppf "@[<v>portfolio: winner %s, length %.1f, FTO %.1f%%@,"
    r.winner.member.label r.winner.length r.fto;
  List.iter
    (fun o ->
      Format.fprintf ppf "  %-12s %-10s length %8.1f  (%.2f s)@," o.member.label
        (engine_to_string o.member.engine)
        o.length o.wall_s)
    r.members;
  Format.fprintf ppf "  incumbent curve: %d improvement(s) in %.2f s@]"
    (List.length r.curve) r.wall_s
