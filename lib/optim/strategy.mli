(** The design strategies compared in the paper's evaluation (Fig. 7):

    - {b MXR}: the proposed approach — mapping optimization combined
      with fault-tolerance policy assignment (re-execution, replication,
      or both per process).
    - {b MX}: mapping optimization with re-execution as the only
      fault-tolerance policy.
    - {b MR}: mapping optimization relying exclusively on active
      replication.
    - {b SFX}: the straightforward baseline — mapping optimized while
      {e ignoring} fault tolerance, with re-execution slapped on
      afterwards.

    plus the two checkpointing configurations of Fig. 8:

    - {b MC_local}: checkpointing with the per-process closed-form
      checkpoint counts (Punnekkat-style baseline [27]);
    - {b MC_global}: checkpointing with system-level checkpoint
      optimization [15].

    Every strategy reports the estimated worst-case fault-tolerant
    schedule length; the fault-tolerance overhead (FTO) is computed
    against the fault-free optimized schedule (same mapping machinery,
    fault tolerance ignored — paper, Sec. 6). *)

type name = MXR | MX | MR | SFX | MC_local | MC_global

type outcome = {
  name : name;
  length : float;  (** Estimated worst-case schedule length. *)
  fto : float;  (** Percentage overhead vs. the fault-free baseline. *)
  problem : Ftes_ftcpg.Problem.t;  (** The optimized configuration. *)
}

type inputs = {
  app : Ftes_app.App.t;
  arch : Ftes_arch.Arch.t;
  wcet : Ftes_arch.Wcet.t;
  k : int;
}

val nft_length : ?opts:Tabu.options -> inputs -> float
(** Fault-free baseline: mapping optimized with fault tolerance
    ignored. *)

val run :
  ?opts:Tabu.options -> ?nft:float -> inputs -> name -> outcome
(** Run one strategy. [nft] (the fault-free baseline length) is computed
    on demand when not supplied — pass it when evaluating several
    strategies on the same instance. When [opts.cache] is set, every
    design evaluation of the strategy — tabu candidates, descent sweeps,
    checkpoint optimization, the final selection — goes through the
    shared [Evalcache]; MXR in particular re-visits the same assignments
    across its phases, so the cache pays off most there. The outcome is
    identical with the cache on or off. *)

val all_names : name list
val name_to_string : name -> string
val pp_outcome : Format.formatter -> outcome -> unit
