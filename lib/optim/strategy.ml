module Problem = Ftes_ftcpg.Problem
module Policy = Ftes_app.Policy
module Graph = Ftes_app.Graph
module Telemetry = Ftes_util.Telemetry
module Events = Ftes_util.Events

type name = MXR | MX | MR | SFX | MC_local | MC_global

type outcome = {
  name : name;
  length : float;
  fto : float;
  problem : Ftes_ftcpg.Problem.t;
}

type inputs = {
  app : Ftes_app.App.t;
  arch : Ftes_arch.Arch.t;
  wcet : Ftes_arch.Wcet.t;
  k : int;
}

let all_names = [ MXR; MX; MR; SFX; MC_local; MC_global ]

let name_to_string = function
  | MXR -> "MXR"
  | MX -> "MX"
  | MR -> "MR"
  | SFX -> "SFX"
  | MC_local -> "MC-local"
  | MC_global -> "MC-global"

let initial_problem (i : inputs) policies =
  let mapping = Problem.fastest_mapping ~app:i.app ~wcet:i.wcet ~policies in
  Problem.make ~app:i.app ~arch:i.arch ~wcet:i.wcet ~k:i.k ~policies ~mapping

let reexec_policies (i : inputs) =
  Array.init
    (Graph.process_count i.app.Ftes_app.App.graph)
    (fun _ -> Policy.re_execution ~recoveries:i.k)

let repl_policies (i : inputs) =
  Array.init
    (Graph.process_count i.app.Ftes_app.App.graph)
    (fun _ -> Policy.replication ~k:i.k)

let nft_length ?(opts = Tabu.default_options) (i : inputs) =
  Telemetry.with_span ~cat:"optim" "strategy.nft-baseline" @@ fun () ->
  Events.with_phase "strategy.nft-baseline" @@ fun () ->
  let p = initial_problem i (reexec_policies i) in
  let opts =
    { opts with ft_objective = false; policy_moves = false; remap_moves = true }
  in
  let _, len = Tabu.optimize opts p in
  len

let run ?(opts = Tabu.default_options) ?nft (i : inputs) name =
  Telemetry.with_span ~cat:"optim" ("strategy." ^ name_to_string name)
  @@ fun () ->
  Events.with_phase ("strategy." ^ name_to_string name) @@ fun () ->
  let nft =
    match nft with Some v -> v | None -> nft_length ~opts i
  in
  let cache = opts.Tabu.cache in
  let slack_length p =
    match cache with
    | Some c -> Evalcache.length ~ft:true c p
    | None -> Ftes_sched.Slack.length p
  in
  let finish problem =
    let length = slack_length problem in
    {
      name;
      length;
      fto = Ftes_sched.Slack.fto ~ft_length:length ~nft_length:nft;
      problem;
    }
  in
  match name with
  | MXR ->
      (* Mapping optimization first (the MX phase), then policy
         assignment moves from that configuration — MXR explores a
         superset of MX's space and can only improve on it. *)
      let p = initial_problem i (reexec_policies i) in
      let mx_opts = { opts with policy_moves = false; remap_moves = true } in
      let mx_best, _ = Tabu.optimize mx_opts p in
      (* Chain policy improvements deterministically (the slack term is
         a max over processes — gains come from repeatedly fixing the
         current worst process), then give mapping a chance to adapt to
         the new replicas, then sweep policies once more. *)
      let s1 = Descent.policy_sweep ?cache mx_best in
      let t_opts =
        { opts with policy_moves = false; remap_moves = true;
          seed = opts.seed + 1;
          iterations = opts.iterations / 2 }
      in
      let s2, _ = Tabu.optimize t_opts s1 in
      let s3 = Descent.policy_sweep ?cache s2 in
      let best =
        List.fold_left
          (fun acc cand ->
            if slack_length cand < slack_length acc then cand else acc)
          mx_best [ s1; s2; s3 ]
      in
      finish best
  | MX ->
      let p = initial_problem i (reexec_policies i) in
      let opts = { opts with policy_moves = false; remap_moves = true } in
      let best, _ = Tabu.optimize opts p in
      finish best
  | MR ->
      let p = initial_problem i (repl_policies i) in
      let opts = { opts with policy_moves = false; remap_moves = true } in
      let best, _ = Tabu.optimize opts p in
      finish best
  | SFX ->
      (* Mapping optimized while ignoring fault tolerance, then
         re-execution added on that fixed mapping. *)
      let p = initial_problem i (reexec_policies i) in
      let opts =
        { opts with ft_objective = false; policy_moves = false;
          remap_moves = true }
      in
      let best, _ = Tabu.optimize opts p in
      finish best
  | MC_local ->
      let p = initial_problem i (reexec_policies i) in
      let opts = { opts with policy_moves = false; remap_moves = true } in
      let best, _ = Tabu.optimize opts p in
      finish (Checkpoint.assign_local best)
  | MC_global ->
      let p = initial_problem i (reexec_policies i) in
      let opts = { opts with policy_moves = false; remap_moves = true } in
      let best, _ = Tabu.optimize opts p in
      finish (Checkpoint.global_optimize ?cache (Checkpoint.assign_local best))

let pp_outcome ppf o =
  Format.fprintf ppf "%-9s length %8.1f  FTO %6.1f%%" (name_to_string o.name)
    o.length o.fto
