(* Lock-striped memoization of [Slack.evaluate] keyed by a canonical
   design signature. See evalcache.mli for the contract. *)

module Problem = Ftes_ftcpg.Problem
module Mapping = Ftes_ftcpg.Mapping
module Policy = Ftes_app.Policy
module Graph = Ftes_app.Graph
module Slack = Ftes_sched.Slack
module Telemetry = Ftes_util.Telemetry

(* Process-wide telemetry counters mirroring the per-cache [stats]
   record (test_telemetry pins that the two agree for a single cache).
   Registration is free; the increments are gated on the telemetry
   switch inside [Telemetry.incr]. *)
let c_hits = Telemetry.counter "evalcache.hits"
let c_misses = Telemetry.counter "evalcache.misses"
let c_inserts = Telemetry.counter "evalcache.inserts"
let c_evictions = Telemetry.counter "evalcache.evictions"
let c_bypasses = Telemetry.counter "evalcache.bypasses"

type stats = {
  lookups : int;
  hits : int;
  misses : int;
  inserts : int;
  evictions : int;
  bypasses : int;
  entries : int;
}

type shard = {
  lock : Mutex.t;
  table : (string, Slack.result) Hashtbl.t;
  order : string Queue.t;  (* insertion order, for FIFO eviction *)
  mutable hits : int;
  mutable misses : int;
  mutable inserts : int;
  mutable evictions : int;
}

type t = {
  shards : shard array;
  per_shard_capacity : int;
  (* The first problem evaluated pins the universe (application,
     architecture, WCET table — everything the signature does not
     encode); foreign problems bypass the cache. *)
  universe : Problem.t option Atomic.t;
  bypasses : int Atomic.t;
}

let create ?(shards = 16) ?(capacity = 65536) () =
  if shards < 1 then invalid_arg "Evalcache.create: shards < 1";
  if capacity < 1 then invalid_arg "Evalcache.create: capacity < 1";
  {
    shards =
      Array.init shards (fun _ ->
          {
            lock = Mutex.create ();
            table = Hashtbl.create 64;
            order = Queue.create ();
            hits = 0;
            misses = 0;
            inserts = 0;
            evictions = 0;
          });
    per_shard_capacity = max 1 ((capacity + shards - 1) / shards);
    universe = Atomic.make None;
    bypasses = Atomic.make 0;
  }

(* Self-delimiting integer: one byte for the common case (counts,
   recoveries, node ids — all tiny), 0xff + 4 little-endian bytes
   otherwise. Keeps the signature allocation-free apart from the buffer
   itself (no [string_of_int], no intermediate lists). *)
let add_int buf v =
  if v >= 0 && v < 0xff then Buffer.add_char buf (Char.unsafe_chr v)
  else begin
    Buffer.add_char buf '\xff';
    Buffer.add_int32_le buf (Int32.of_int v)
  end

let signature ?(ft = true) (p : Problem.t) =
  let buf = Buffer.create 256 in
  Buffer.add_char buf (if ft then 'F' else 'f');
  add_int buf p.Problem.k;
  let n = Graph.process_count (Problem.graph p) in
  for pid = 0 to n - 1 do
    let copies = p.Problem.policies.(pid).Policy.copies in
    add_int buf (Array.length copies);
    Array.iter
      (fun (plan : Policy.copy_plan) ->
        add_int buf plan.Policy.recoveries;
        add_int buf plan.Policy.checkpoints)
      copies;
    let m = Mapping.copy_count p.Problem.mapping ~pid in
    add_int buf m;
    for copy = 0 to m - 1 do
      add_int buf (Mapping.node_of p.Problem.mapping ~pid ~copy)
    done
  done;
  Buffer.contents buf

(* FNV-1a over the signature bytes, folded into OCaml's native int
   range (the offset basis is the standard 64-bit one truncated to fit a
   63-bit literal; the multiply wraps mod 2^63, which preserves the
   mixing behaviour). *)
let signature_hash key =
  let h = ref 0x3f29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    key;
  !h land max_int

let same_universe (u : Problem.t) (p : Problem.t) =
  u.Problem.app == p.Problem.app
  && u.Problem.arch == p.Problem.arch
  && u.Problem.wcet == p.Problem.wcet

let rec claim_universe t p =
  match Atomic.get t.universe with
  | Some u -> same_universe u p
  | None ->
      if Atomic.compare_and_set t.universe None (Some p) then true
      else claim_universe t p

let evaluate ?(ft = true) t (p : Problem.t) =
  if not (claim_universe t p) then begin
    Atomic.incr t.bypasses;
    Telemetry.incr c_bypasses;
    Slack.evaluate ~ft p
  end
  else begin
    let key = signature ~ft p in
    let shard = t.shards.(signature_hash key mod Array.length t.shards) in
    Mutex.lock shard.lock;
    let cached = Hashtbl.find_opt shard.table key in
    (match cached with
    | Some _ -> shard.hits <- shard.hits + 1
    | None -> shard.misses <- shard.misses + 1);
    Mutex.unlock shard.lock;
    (match cached with
    | Some _ -> Telemetry.incr c_hits
    | None -> Telemetry.incr c_misses);
    match cached with
    | Some r -> r
    | None ->
        (* Evaluate outside the lock: two domains may race on the same
           fresh signature and both evaluate, but the function is pure,
           so whichever insert wins stores the identical result. The
           placement lists are dropped before storing: no optimization
           consumer reads them (the objective is [length], descent reads
           [penalties]), and retaining them would promote kilobytes of
           short-lived list cells to the major heap on every miss —
           measured to cost more than the hits save. *)
        let r =
          { (Slack.evaluate ~ft p) with
            Slack.placements = []; msg_placements = [] }
        in
        Mutex.lock shard.lock;
        if not (Hashtbl.mem shard.table key) then begin
          if Hashtbl.length shard.table >= t.per_shard_capacity then (
            match Queue.take_opt shard.order with
            | Some victim ->
                Hashtbl.remove shard.table victim;
                shard.evictions <- shard.evictions + 1;
                Telemetry.incr c_evictions
            | None -> ());
          Hashtbl.add shard.table key r;
          Queue.push key shard.order;
          shard.inserts <- shard.inserts + 1;
          Telemetry.incr c_inserts
        end;
        Mutex.unlock shard.lock;
        r
  end

let length ?ft t p = (evaluate ?ft t p).Slack.length

let stats t =
  let acc =
    Array.fold_left
      (fun (acc : stats) s ->
        Mutex.lock s.lock;
        let acc =
          {
            acc with
            hits = acc.hits + s.hits;
            misses = acc.misses + s.misses;
            inserts = acc.inserts + s.inserts;
            evictions = acc.evictions + s.evictions;
            entries = acc.entries + Hashtbl.length s.table;
          }
        in
        Mutex.unlock s.lock;
        acc)
      {
        lookups = 0;
        hits = 0;
        misses = 0;
        inserts = 0;
        evictions = 0;
        bypasses = Atomic.get t.bypasses;
        entries = 0;
      }
      t.shards
  in
  { acc with lookups = acc.hits + acc.misses }

let hit_rate s =
  if s.lookups = 0 then 0. else float_of_int s.hits /. float_of_int s.lookups

let clear t =
  Array.iter
    (fun s ->
      Mutex.lock s.lock;
      Hashtbl.reset s.table;
      Queue.clear s.order;
      s.hits <- 0;
      s.misses <- 0;
      s.inserts <- 0;
      s.evictions <- 0;
      Mutex.unlock s.lock)
    t.shards;
  Atomic.set t.bypasses 0;
  Atomic.set t.universe None

let pp_stats ppf s =
  Format.fprintf ppf
    "%d lookups: %d hits (%.1f%%), %d misses; %d inserts, %d evictions, %d \
     bypasses, %d entries"
    s.lookups s.hits
    (hit_rate s *. 100.)
    s.misses s.inserts s.evictions s.bypasses s.entries
