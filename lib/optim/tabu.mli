(** Tabu-search design optimization: process/replica mapping and
    fault-tolerance policy assignment (paper, Sec. 6; algorithms of
    [13] and [16]).

    The search walks the configuration space with two move families —
    remapping one copy of a process to another allowed node, and
    switching a process's fault-tolerance policy (re-execution /
    checkpointing, active replication, or the combined policy) — driven
    by the estimated worst-case schedule length
    ([Ftes_sched.Slack.length]). Recently modified processes are tabu
    for a fixed tenure; a tabu move is still taken when it improves on
    the best solution found (aspiration). *)

type policy_kind = Reexec | Repl | Combined

type options = {
  seed : int;
  iterations : int;  (** Total search iterations (default 120). *)
  sample : int;  (** Candidate moves evaluated per iteration
                     (default 16). *)
  tenure : int;  (** Iterations a modified process stays tabu
                     (default 8). *)
  stall_limit : int;  (** Stop after this many iterations without
                          improving the best solution (default 40). *)
  remap_moves : bool;
  policy_moves : bool;
  policy_kinds : policy_kind list;  (** Kinds the policy moves may
                                        choose from. *)
  ft_objective : bool;  (** Evaluate schedule length with fault
                            tolerance (set false for the SFX baseline's
                            mapping phase). *)
  jobs : int;  (** Domains used to evaluate each iteration's candidate
                   moves (default [Ftes_util.Par.default_jobs ()]).
                   Moves are drawn from the rng sequentially and the
                   accept decision replays the sequential tie-breaking,
                   so the search trajectory — and the final
                   configuration — is identical for every [jobs]
                   value; [1] is the exact sequential code path. *)
}

val default_options : options

val reassign_policy :
  k:int ->
  wcet:Ftes_arch.Wcet.t ->
  Ftes_ftcpg.Problem.t ->
  pid:int ->
  policy_kind ->
  Ftes_ftcpg.Problem.t
(** Switch one process's policy, rebuilding the mapping of its copies
    (copy 0 keeps its node; further replicas spread over the fastest
    allowed nodes). *)

val optimize : options -> Ftes_ftcpg.Problem.t -> Ftes_ftcpg.Problem.t * float
(** Returns the best configuration found and its estimated schedule
    length (under the chosen objective). *)
