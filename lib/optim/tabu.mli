(** Tabu-search design optimization: process/replica mapping and
    fault-tolerance policy assignment (paper, Sec. 6; algorithms of
    [13] and [16]).

    The search walks the configuration space with two move families —
    remapping one copy of a process to another allowed node, and
    switching a process's fault-tolerance policy (re-execution /
    checkpointing, active replication, or the combined policy) — driven
    by the estimated worst-case schedule length
    ([Ftes_sched.Slack.length]). Recently modified processes are tabu
    for a fixed tenure; a tabu move is still taken when it improves on
    the best solution found (aspiration). *)

type policy_kind = Reexec | Repl | Combined

type options = {
  seed : int;
  iterations : int;  (** Total search iterations (default 120). *)
  sample : int;  (** Candidate moves evaluated per iteration
                     (default 16). *)
  tenure : int;  (** Iterations a modified process stays tabu
                     (default 8). *)
  stall_limit : int;  (** Stop after this many iterations without
                          improving the best solution (default 40). *)
  remap_moves : bool;
  policy_moves : bool;
  policy_kinds : policy_kind list;  (** Kinds the policy moves may
                                        choose from. *)
  ft_objective : bool;  (** Evaluate schedule length with fault
                            tolerance (set false for the SFX baseline's
                            mapping phase). *)
  jobs : int;  (** Domains used to evaluate each iteration's candidate
                   moves (default [Ftes_util.Par.default_jobs ()]).
                   Moves are drawn from the rng sequentially and the
                   accept decision replays the sequential tie-breaking,
                   so the search trajectory — and the final
                   configuration — is identical for every [jobs]
                   value; [1] is the exact sequential code path. *)
  cache : Evalcache.t option;
      (** Shared design-evaluation cache (default [None] = evaluate
          directly). The cache is a pure performance layer: the search
          trajectory and the final configuration are identical with the
          cache on or off, for every [jobs] value. *)
  stop : (unit -> bool) option;
      (** Polled once per iteration; the search returns its best-so-far
          as soon as it answers [true]. The portfolio's wall-clock
          deadline flows in here (default [None] = run the full
          budget). *)
  shared : Incumbent.handle option;
      (** Portfolio incumbent cell: every local-best improvement (and
          the initial objective) is published through the handle.
          Publishing is write-only and never alters the trajectory. *)
  exchange : bool;
      (** When [shared] is set, also {e read} the cell: the aspiration
          threshold becomes the minimum of the local and the portfolio
          best, so a tabu move must beat the whole race to aspire.
          Reading makes the trajectory depend on worker timing — leave
          it off (the default) for deterministic runs. *)
}

val default_options : options

type move =
  | Remap of { pid : int; copy : int; nid : int }
      (** Move one copy of process [pid] to node [nid]. *)
  | Set_policy of { pid : int; kind : policy_kind }
      (** Switch the fault-tolerance policy of process [pid]. *)

(** Tabu tenures keyed by the full move locus — pid × move family ×
    copy — so a remap of one replica copy and a policy switch on the
    same process occupy distinct tenure slots (keying by pid alone made
    them wrongly veto each other). Exposed for the regression tests. *)
module Tenure : sig
  type t

  val create : unit -> t

  val mark : t -> iter:int -> tenure:int -> move -> unit
  (** Forbid the locus of [move] until iteration [iter + tenure]. *)

  val active : t -> iter:int -> move -> bool
  (** Is the locus of [move] still vetoed at iteration [iter]? *)
end

val dedup_moves : move list -> move list
(** Drop duplicate moves, keeping the first occurrence of each in list
    order. Used on the drawn candidate list before the parallel
    evaluation fan-out: the sequential accept rule is strictly
    first-wins on ties, so duplicates can never win and evaluating them
    is pure waste. *)

val reassign_policy :
  k:int ->
  wcet:Ftes_arch.Wcet.t ->
  Ftes_ftcpg.Problem.t ->
  pid:int ->
  policy_kind ->
  Ftes_ftcpg.Problem.t
(** Switch one process's policy, rebuilding the mapping of its copies
    (copy 0 keeps its node; further replicas spread over the fastest
    allowed nodes). *)

val optimize : options -> Ftes_ftcpg.Problem.t -> Ftes_ftcpg.Problem.t * float
(** Returns the best configuration found and its estimated schedule
    length (under the chosen objective). *)
