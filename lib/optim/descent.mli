(** Deterministic steepest-descent sweeps, complementing the randomized
    tabu search: exhaustively evaluate a move family, apply the best
    improving move, repeat until a local minimum.

    Used by the MXR strategy to chain policy-assignment improvements
    (the slack term is a maximum over processes, so gains come from
    repeatedly fixing the current worst process — a structure steepest
    descent exploits directly) and by tests as a slow-but-predictable
    reference optimizer. *)

val policy_sweep :
  ?cache:Evalcache.t ->
  ?kinds:Tabu.policy_kind list ->
  ?max_rounds:int ->
  ?width:int ->
  Ftes_ftcpg.Problem.t ->
  Ftes_ftcpg.Problem.t
(** Each round evaluates switching each of the [width] (default 6)
    currently most slack-critical processes to every kind in [kinds]
    (default: all three) and applies the best strictly improving switch;
    stops at a local minimum or after [max_rounds] (default the process
    count). The restriction to critical processes is sound for the
    estimator: its slack term is a maximum over processes. Objective:
    [Ftes_sched.Slack.length], memoized through [cache] when given (the
    sweep result is identical either way). *)

val remap_sweep :
  ?cache:Evalcache.t ->
  ?max_rounds:int ->
  Ftes_ftcpg.Problem.t ->
  Ftes_ftcpg.Problem.t
(** Each round evaluates remapping every copy of every process to every
    allowed node and applies the best strictly improving remap. O(n^2)
    per round — intended for small instances and as a test oracle. *)
