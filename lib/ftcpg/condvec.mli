(** Packed condition vectors: bitset encodings of guards and fault
    scenarios over the conditional vertices of one FT-CPG.

    {!Cond.guard} is a sorted list of literal records — ideal for the
    incremental construction the FT-CPG expansion does, but hostile to
    exhaustive validation: replaying [C(n,k)] scenarios against a
    schedule table performs millions of [Cond.implies] walks, each
    allocating nothing but chasing list spines all over the heap. On an
    OCaml 5 domain pool that pointer churn (and the allocation of the
    scenario lists themselves) serializes workers behind the shared
    major heap and stop-the-world minor collections, which is exactly
    the flat [--jobs] scaling recorded in BENCH_PR5.

    This module fixes the representation. A {e universe} enumerates the
    conditional vertices of one FT-CPG; against it, a guard or scenario
    packs into two bits per condition (present + value) inside plain
    [int] words:

    - a {e row} is one scenario: an [int array] slice, [words] long;
    - a {e space} is the whole scenario set: one flat [int array]
      arena, scenario [i] at offset [i * words] — no per-scenario
      boxing, cache-line friendly, shareable read-only across domains;
    - a packed {e guard} is a [(mask, bits)] pair per word, so
      "scenario implies guard" is a handful of AND/compare operations.

    Unpacking a row yields the exact {!Cond.guard} the legacy list
    enumeration produced, so everything downstream of validation
    (violation records, diagnostics, renderings) is untouched. *)

type universe
(** The conditional-vertex ids of one FT-CPG, in ascending order, each
    mapped to a packed field index. *)

val universe : int array -> universe
(** [universe vids] builds a universe over condition ids [vids], which
    must be strictly ascending; raises [Invalid_argument] naming the
    offending condition id otherwise. *)

val fields_per_word : int
(** Packed fields per word (31; two bits per field inside a 63-bit
    immediate int). Field index [idx] lives in word
    [idx / fields_per_word] at shift [2 * (idx mod fields_per_word)]. *)

val size : universe -> int
(** Number of conditions in the universe. *)

val words : universe -> int
(** Words per packed row ([⌈size / 31⌉], at least 1). *)

val cond_of_index : universe -> int -> int
(** The condition (vertex) id packed at a field index. *)

val index_of_cond : universe -> int -> int option
(** The field index of a condition id, if it is in the universe. *)

(** {1 Packed guards} *)

type guard
(** A conjunction of condition literals in [(mask, bits)] form.
    Guards over conditions outside the universe pack to an
    unsatisfiable guard — no complete scenario implies them, matching
    [Cond.implies] on the list representation. *)

val pack_guard : universe -> Cond.guard -> guard
(** Pack a list guard. Total: out-of-universe literals yield the
    never-implied guard (see {!guard}). *)

val guard_true : universe -> guard
(** The empty conjunction — implied by every row. *)

val guard_words : guard -> int array * int array
(** The packed [(mask, bits)] word pairs of a guard. The arrays are the
    guard's own storage — treat them as read-only. This is the raw
    surface the symbolic cube backend ({!Ftes_sim.Symbolic}) works
    over; everything else should go through {!row_implies} /
    {!implies}. *)

(** {1 Rows (single scenarios)} *)

type row = int array
(** Scratch row, [words u] long. Invariant: a value bit is set only if
    the matching presence bit is. *)

val create_row : universe -> row
val clear_row : row -> unit

val set : universe -> row -> int -> bool -> unit
(** [set u row idx fault] assigns condition {e index} [idx]. *)

val unset : universe -> row -> int -> unit

val row_implies : row -> guard -> bool
(** Whether every literal of the guard holds in the row. *)

val row_fault_count : row -> int
(** Number of positive (fault) literals in the row. *)

val guard_of_row : universe -> row -> Cond.guard
(** Unpack; literal order matches the sorted {!Cond.guard} invariant. *)

(** {1 Scenario arenas} *)

type store
(** Growable arena of rows. *)

val store : universe -> store
val append : store -> row -> unit

type space = private {
  u : universe;
  words : int;
  data : int array;  (** Flat arena: row [i] at [i * words]. *)
  count : int;
}

val freeze : store -> space
(** The store must not be appended to afterwards. *)

val of_guards : universe -> Cond.guard list -> space
(** Pack a list of guards into a fresh arena (used for sampled
    validation subsets). Guards must be within the universe. *)

val singleton : universe -> row -> space
(** A one-scenario space holding a copy of [row] — the bridge from a
    symbolically extracted witness back to the explicit replay path. *)

val count : space -> int

val implies : space -> int -> guard -> bool
(** [implies sp i g]: does scenario [i] imply packed guard [g]? *)

val fault_count : space -> int -> int

val guard_at : space -> int -> Cond.guard
(** Unpack scenario [i] to the legacy list representation. *)
