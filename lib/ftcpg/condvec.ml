(* Packed condition vectors. See condvec.mli for the representation
   story; the encoding here is two bits per condition inside plain int
   words: bit [2f] = "a literal for this condition is present", bit
   [2f + 1] = its value (1 = fault). 31 fields per word keeps every
   shift inside OCaml's 63-bit immediate ints. *)

let fields_per_word = 31

type universe = {
  vids : int array;  (* ascending condition ids, field index -> id *)
  lookup : int array;  (* condition id -> field index, or -1 *)
  uwords : int;
}

let universe vids =
  let n = Array.length vids in
  for i = 1 to n - 1 do
    if vids.(i - 1) >= vids.(i) then
      invalid_arg
        (Printf.sprintf
           "Condvec.universe: condition ids not strictly ascending \
            (condition %d at index %d follows condition %d)"
           vids.(i) i
           vids.(i - 1))
  done;
  let max_vid = if n = 0 then -1 else vids.(n - 1) in
  let lookup = Array.make (max_vid + 1) (-1) in
  Array.iteri (fun idx vid -> lookup.(vid) <- idx) vids;
  {
    vids = Array.copy vids;
    lookup;
    uwords = max 1 ((n + fields_per_word - 1) / fields_per_word);
  }

let size u = Array.length u.vids
let words u = u.uwords
let cond_of_index u idx = u.vids.(idx)

let index_of_cond u cond =
  if cond < 0 || cond >= Array.length u.lookup then None
  else
    let idx = u.lookup.(cond) in
    if idx < 0 then None else Some idx

(* ------------------------------------------------------------------ *)
(* Packed guards                                                       *)
(* ------------------------------------------------------------------ *)

type guard = { mask : int array; bits : int array }

let guard_words (g : guard) = (g.mask, g.bits)

let guard_true u = { mask = Array.make u.uwords 0; bits = Array.make u.uwords 0 }

(* A guard no complete scenario can imply: zero mask demanding a set
   bit. [Cond.implies scenario g] is false for every scenario when [g]
   tests a condition the universe does not contain, and this encoding
   reproduces that without a special case on the hot path. *)
let guard_never u =
  let g = guard_true u in
  g.bits.(0) <- 1;
  g

let pack_guard u g =
  let rec pack acc = function
    | [] -> Some acc
    | (l : Cond.literal) :: rest -> (
        match index_of_cond u l.Cond.cond with
        | None -> None
        | Some idx ->
            let w = idx / fields_per_word in
            let shift = 2 * (idx mod fields_per_word) in
            acc.mask.(w) <- acc.mask.(w) lor (3 lsl shift);
            acc.bits.(w) <-
              acc.bits.(w) lor ((if l.Cond.fault then 3 else 1) lsl shift);
            pack acc rest)
  in
  match pack (guard_true u) (Cond.literals g) with
  | Some g -> g
  | None -> guard_never u

(* ------------------------------------------------------------------ *)
(* Rows                                                                *)
(* ------------------------------------------------------------------ *)

type row = int array

let create_row u = Array.make u.uwords 0
let clear_row (r : row) = Array.fill r 0 (Array.length r) 0

let set u (r : row) idx fault =
  ignore u;
  let w = idx / fields_per_word in
  let shift = 2 * (idx mod fields_per_word) in
  r.(w) <-
    r.(w) land lnot (3 lsl shift) lor ((if fault then 3 else 1) lsl shift)

let unset u (r : row) idx =
  ignore u;
  let w = idx / fields_per_word in
  let shift = 2 * (idx mod fields_per_word) in
  r.(w) <- r.(w) land lnot (3 lsl shift)

let row_implies (r : row) (g : guard) =
  let n = Array.length r in
  let rec go w =
    w >= n || (r.(w) land g.mask.(w) = g.bits.(w) && go (w + 1))
  in
  go 0

(* Value bits sit at odd field positions; presence at even ones. The
   row invariant (value set => present set) makes the value-bit count
   the fault count. Kernighan's loop: fault counts are <= k, tiny. *)
let value_mask =
  let m = ref 0 in
  for f = 0 to fields_per_word - 1 do
    m := !m lor (1 lsl ((2 * f) + 1))
  done;
  !m

let popcount x =
  let n = ref 0 in
  let x = ref x in
  while !x <> 0 do
    x := !x land (!x - 1);
    incr n
  done;
  !n

let row_fault_count (r : row) =
  let acc = ref 0 in
  for w = 0 to Array.length r - 1 do
    acc := !acc + popcount (r.(w) land value_mask)
  done;
  !acc

let guard_of_words u data base =
  (* Walk indices downward so the literal list comes out ascending by
     condition id — the normalized [Cond.guard] order. *)
  let lits = ref [] in
  for idx = size u - 1 downto 0 do
    let w = idx / fields_per_word in
    let shift = 2 * (idx mod fields_per_word) in
    let field = (data.(base + w) lsr shift) land 3 in
    if field land 1 <> 0 then
      lits := { Cond.cond = u.vids.(idx); fault = field land 2 <> 0 } :: !lits
  done;
  match Cond.of_literals !lits with
  | Some g -> g
  | None ->
      (* A row holds at most one literal per condition field, so this
         is only reachable if two universe indices map to the same
         condition id — name the culprit instead of dying bare. *)
      let rec dup = function
        | (a : Cond.literal) :: (b : Cond.literal) :: _
          when a.Cond.cond = b.Cond.cond ->
            a.Cond.cond
        | _ :: rest -> dup rest
        | [] -> -1
      in
      invalid_arg
        (Printf.sprintf
           "Condvec.guard_of_words: condition %d carries more than one \
            literal"
           (dup !lits))

let guard_of_row u (r : row) = guard_of_words u r 0

(* ------------------------------------------------------------------ *)
(* Scenario arenas                                                     *)
(* ------------------------------------------------------------------ *)

type store = {
  su : universe;
  swords : int;
  mutable sdata : int array;
  mutable scount : int;
}

let store u = { su = u; swords = u.uwords; sdata = Array.make (64 * u.uwords) 0; scount = 0 }

let append s (r : row) =
  let base = s.scount * s.swords in
  if base + s.swords > Array.length s.sdata then begin
    let grown = Array.make (2 * Array.length s.sdata) 0 in
    Array.blit s.sdata 0 grown 0 base;
    s.sdata <- grown
  end;
  Array.blit r 0 s.sdata base s.swords;
  s.scount <- s.scount + 1

type space = { u : universe; words : int; data : int array; count : int }

let freeze s =
  {
    u = s.su;
    words = s.swords;
    data = Array.sub s.sdata 0 (s.scount * s.swords);
    count = s.scount;
  }

let of_guards u guards =
  let s = store u in
  let row = create_row u in
  List.iter
    (fun g ->
      clear_row row;
      List.iter
        (fun (l : Cond.literal) ->
          match index_of_cond u l.Cond.cond with
          | Some idx -> set u row idx l.Cond.fault
          | None ->
              invalid_arg "Condvec.of_guards: literal outside the universe")
        (Cond.literals g);
      append s row)
    guards;
  freeze s

let singleton u (r : row) =
  if Array.length r <> u.uwords then
    invalid_arg "Condvec.singleton: row width does not match the universe";
  { u; words = u.uwords; data = Array.copy r; count = 1 }

let count sp = sp.count

let implies sp i (g : guard) =
  let base = i * sp.words in
  let n = sp.words in
  let data = sp.data in
  let rec go w =
    w >= n || (data.(base + w) land g.mask.(w) = g.bits.(w) && go (w + 1))
  in
  go 0

let fault_count sp i =
  let base = i * sp.words in
  let acc = ref 0 in
  for w = 0 to sp.words - 1 do
    acc := !acc + popcount (sp.data.(base + w) land value_mask)
  done;
  !acc

let guard_at sp i = guard_of_words sp.u sp.data (i * sp.words)
