(** The fault-tolerant conditional process graph (paper, Sec. 5.1).

    A FT-CPG G(VP ∪ VC ∪ VT, ES ∪ EC) captures all execution scenarios
    of an application under at most [k] transient faults:

    - {e regular} nodes execute unconditionally (within their guard);
    - {e conditional} nodes produce a condition — true if a fault hits
      the execution, false otherwise — and their outgoing paths are
      disjoint per condition value;
    - {e synchronization} nodes (zero execution time) represent frozen
      processes / messages and the deterministic merge of replica
      outputs.

    Construction expands every application process into {e copies}: for
    each input {e context} (a consistent combination of predecessor
    outcomes), for each replica, a chain of execution {e attempts} —
    attempt 1 runs the whole (checkpointed) process, attempt [a > 1]
    re-executes the failed segment after a rollback. Attempt [a] exists
    under the guard "context holds and attempts 1..a-1 failed" and is
    conditional while fault budget and recovery budget remain.

    Frozen processes collapse their contexts behind a synchronization
    node (their faults stay invisible upstream, so they must assume the
    full budget [k] — the transparency cost discussed in Sec. 3.3).
    Frozen messages become a single synchronized transmission; messages
    of replicated producers are sent per replica and merged at a
    zero-time synchronization node (deterministic merge of active
    replication). *)

type kind =
  | Proc_copy of { pid : int; replica : int; attempt : int }
      (** Execution attempt of one copy of a process. *)
  | Msg_inst of { mid : int; replica : int }
      (** One transmission of a message, for one producer outcome. *)
  | Sync_proc of int  (** Synchronization node of a frozen process. *)
  | Sync_msg of int
      (** Synchronized transmission of a frozen message (carries the
          transmission on the bus), or zero-time merge of the replica
          instances of a message ([on_bus = false]). *)

type vertex = private {
  vid : int;
  kind : kind;
  name : string;  (** E.g. "P2^4", "P1(2)^1", "m1^2", "P3^S". *)
  guard : Cond.guard;  (** Guard under which the vertex exists. *)
  duration : float;  (** CPU time (process copies) or worst-case
                         transmission time (bus messages); 0 for local
                         messages and merge nodes. *)
  conditional : bool;  (** Produces condition [vid] when it completes. *)
  exec_node : int option;  (** CPU node, for process copies. *)
  src_node : int option;  (** Sending node, for bus messages. *)
  on_bus : bool;
  msg_size : float;  (** For message vertices (0 otherwise). *)
  frozen : bool;  (** Must receive the same start time in all
                      alternative schedules. *)
  preds : int list;
  succs : int list;
}

type t

exception Too_large of int
(** Raised by {!build} when the expansion exceeds the vertex cap; the
    payload is the cap. The FT-CPG grows exponentially with [k] — the
    paper's motivation for transparency and for slack-based scheduling
    inside optimization loops. *)

val build : ?max_vertices:int -> Problem.t -> t
(** Expand the problem instance into its FT-CPG. [max_vertices]
    defaults to 50_000. *)

val problem : t -> Problem.t
val vertex_count : t -> int
val vertex : t -> int -> vertex
val vertices : t -> vertex array
(** In topological (creation) order: predecessors have smaller ids. *)

val conditional_vertices : t -> int list
val proc_copies : t -> pid:int -> int list
(** All attempt vertices of a process, across replicas and contexts. *)

val msg_vertices : t -> mid:int -> int list
(** Message instances (and the synchronization vertex, if any). *)

val cond_name : t -> int -> string
(** Name of the condition produced by a conditional vertex, e.g.
    "FP2^4". *)

type family = {
  funiverse : Condvec.universe;
      (** Universe over the conditional vertices, ascending ids. *)
  fguards : Condvec.guard array;
      (** Existence guard of each condition, indexed by field index.
          Guards only reference strictly earlier conditions, so a
          condition's presence is decided by any assignment of the
          fields before it. *)
  fbudget : int;  (** The fault hypothesis [k]. *)
}

val scenario_family : t -> family
(** The symbolic description of the complete-scenario set — exactly
    what {!scenario_space} enumerates, without materializing the arena.
    A complete scenario assigns fault/no-fault to precisely the
    conditions whose existence guard it implies, with at most [fbudget]
    faults in total. This is the input of the symbolic validation
    backend ({!Ftes_sim.Symbolic}), whose whole point is that the arena
    can be astronomically larger than this description. *)

val scenario_space : t -> Condvec.space
(** All complete fault scenarios, enumerated into a packed flat arena
    (see {!Condvec}). Row order is the historical {!scenarios} order:
    depth-first over conditional vertices in ascending id, fault branch
    before no-fault branch. This is the representation exhaustive
    validation iterates; {!scenarios} is an unpacking view over it. *)

val scenario_count : t -> int
(** [Condvec.count (scenario_space t)]. *)

val scenarios : t -> Cond.guard list
(** All complete fault scenarios: every guard assigns an outcome to
    every conditional vertex it reaches. Their fault counts never
    exceed [k]. Exponential — intended for validation on moderate
    instances. Unpacked from {!scenario_space} in the same order. *)

val scenario_fault_count : Cond.guard -> int
(** Faults consumed by a scenario. *)

val exists_in : t -> scenario:Cond.guard -> int -> bool
(** Whether a vertex exists in (the worst case of) a scenario. *)

val pp_summary : Format.formatter -> t -> unit
val pp : Format.formatter -> t -> unit
