module App = Ftes_app.App
module Graph = Ftes_app.Graph
module Policy = Ftes_app.Policy
module Fttime = Ftes_app.Fttime
module Transparency = Ftes_app.Transparency
module Wcet = Ftes_arch.Wcet
module Arch = Ftes_arch.Arch
module Bus = Ftes_arch.Bus

type kind =
  | Proc_copy of { pid : int; replica : int; attempt : int }
  | Msg_inst of { mid : int; replica : int }
  | Sync_proc of int
  | Sync_msg of int

type vertex = {
  vid : int;
  kind : kind;
  name : string;
  guard : Cond.guard;
  duration : float;
  conditional : bool;
  exec_node : int option;
  src_node : int option;
  on_bus : bool;
  msg_size : float;
  frozen : bool;
  preds : int list;
  succs : int list;
}

type t = {
  problem : Problem.t;
  vertices : vertex array;
  by_proc : int list array;  (* pid -> attempt vids, creation order *)
  by_msg : int list array;  (* mid -> message vids, creation order *)
}

exception Too_large of int

(* Growable vertex accumulator; succs are patched in at the end. *)
type builder = {
  max_vertices : int;
  mutable rev : vertex list;
  mutable count : int;
}

let add_vertex b ~kind ~name ~guard ~duration ~conditional ~exec_node
    ~src_node ~on_bus ~msg_size ~frozen ~preds =
  if b.count >= b.max_vertices then raise (Too_large b.max_vertices);
  let vid = b.count in
  b.count <- vid + 1;
  b.rev <-
    {
      vid;
      kind;
      name;
      guard;
      duration;
      conditional;
      exec_node;
      src_node;
      on_bus;
      msg_size;
      frozen;
      preds;
      succs = [];
    }
    :: b.rev;
  vid

let build ?(max_vertices = 50_000) (problem : Problem.t) =
  Ftes_util.Telemetry.with_span ~cat:"ftcpg" "ftcpg.build" @@ fun () ->
  let g = Problem.graph problem in
  let app = problem.Problem.app in
  let transparency = app.App.transparency in
  let k = problem.Problem.k in
  let bus = Arch.bus problem.Problem.arch in
  let mapping = problem.Problem.mapping in
  let nprocs = Graph.process_count g in
  let nmsgs = Graph.message_count g in
  let b = { max_vertices; rev = []; count = 0 } in
  let by_proc = Array.make nprocs [] in
  let by_msg = Array.make nmsgs [] in
  let copy_counter = Hashtbl.create 64 in
  let next_copy_no pid replica =
    let key = (pid, replica) in
    let n = try Hashtbl.find copy_counter key + 1 with Not_found -> 1 in
    Hashtbl.replace copy_counter key n;
    n
  in
  let msg_counter = Array.make nmsgs 0 in
  (* Alternatives a consumer can take its input from, per message:
     (vertex id, guard under which that vertex delivers the message). *)
  let msg_alts = Array.make nmsgs [] in
  let expand_process pid =
    let proc = Graph.process g pid in
    let policy = problem.Problem.policies.(pid) in
    let ncopies = Policy.replica_count policy in
    let frozen_p = Transparency.is_frozen_proc transparency pid in
    let in_edges = Graph.in_messages g pid in
    (* Input contexts: consistent combinations of one alternative per
       incoming message, within the fault budget. *)
    let raw_contexts =
      List.fold_left
        (fun combos mid ->
          List.concat_map
            (fun (preds, gd) ->
              List.filter_map
                (fun (alt_vid, alt_g) ->
                  match Cond.conjoin gd alt_g with
                  | Some gd' when Cond.fault_count gd' <= k ->
                      Some (alt_vid :: preds, gd')
                  | Some _ | None -> None)
                msg_alts.(mid))
            combos)
        [ ([], Cond.true_) ]
        in_edges
    in
    let contexts =
      if frozen_p && in_edges <> [] then begin
        (* The synchronization node hides which alternative arrived:
           downstream, the frozen process has a single, unconditional
           context (paper, Fig. 5b node P3^S). *)
        let all_alt_vids =
          List.concat_map (fun mid -> List.map fst msg_alts.(mid)) in_edges
        in
        let sync =
          add_vertex b ~kind:(Sync_proc pid)
            ~name:(proc.Graph.pname ^ "^S")
            ~guard:Cond.true_ ~duration:0. ~conditional:false ~exec_node:None
            ~src_node:None ~on_bus:false ~msg_size:0. ~frozen:true
            ~preds:all_alt_vids
        in
        [ ([ sync ], Cond.true_) ]
      end
      else raw_contexts
    in
    (* Expand each replica's attempt chain in each context. *)
    let outcomes = ref [] in
    for r = 0 to ncopies - 1 do
      let plan = policy.Policy.copies.(r) in
      let nid = Mapping.node_of mapping ~pid ~copy:r in
      let c = Wcet.get_exn problem.Problem.wcet ~pid ~nid in
      let o = proc.Graph.overheads in
      List.iter
        (fun (ctx_preds, gctx) ->
          let budget = k - Cond.fault_count gctx in
          let attempts = min plan.Policy.recoveries budget + 1 in
          let prev = ref None in
          let gcur = ref gctx in
          for a = 1 to attempts do
            let conditional = a < attempts in
            let duration =
              if a = 1 then
                Fttime.no_fault_length ~c o ~checkpoints:plan.Policy.checkpoints
              else
                let last = Cond.fault_count !gcur = k in
                Fttime.recovery_cost ~c o ~checkpoints:plan.Policy.checkpoints
                  ~last
            in
            let no = next_copy_no pid r in
            let name =
              if ncopies = 1 then Printf.sprintf "%s^%d" proc.Graph.pname no
              else Printf.sprintf "%s(%d)^%d" proc.Graph.pname (r + 1) no
            in
            let preds =
              match !prev with None -> ctx_preds | Some p -> [ p ]
            in
            let vid =
              add_vertex b
                ~kind:(Proc_copy { pid; replica = r; attempt = a })
                ~name ~guard:!gcur ~duration ~conditional ~exec_node:(Some nid)
                ~src_node:None ~on_bus:false ~msg_size:0. ~frozen:frozen_p
                ~preds
            in
            by_proc.(pid) <- vid :: by_proc.(pid);
            let success_guard =
              if conditional then
                Cond.add_exn !gcur { Cond.cond = vid; fault = false }
              else !gcur
            in
            outcomes := (r, vid, success_guard) :: !outcomes;
            if conditional then
              gcur := Cond.add_exn !gcur { Cond.cond = vid; fault = true };
            prev := Some vid
          done)
        contexts
    done;
    let outcomes = List.rev !outcomes in
    (* Expand each outgoing message. *)
    let expand_message mid =
      let m = Graph.message g mid in
      let frozen_m = Transparency.is_frozen_msg transparency mid in
      let dst_nodes = Mapping.copies mapping ~pid:m.Graph.dst in
      let crosses src = List.exists (fun dn -> dn <> src) dst_nodes in
      if frozen_m then begin
        (* One synchronized transmission, after the worst-case producer
           outcome (paper, Fig. 5b nodes m2^S, m3^S). *)
        let src_nodes = Mapping.copies mapping ~pid in
        let on_bus = m.Graph.size > 0. && List.exists crosses src_nodes in
        let duration = if on_bus then Bus.tx_time bus ~size:m.Graph.size else 0. in
        let sync =
          add_vertex b ~kind:(Sync_msg mid)
            ~name:(m.Graph.mname ^ "^S")
            ~guard:Cond.true_ ~duration ~conditional:false ~exec_node:None
            ~src_node:(Some (Mapping.node_of mapping ~pid ~copy:0))
            ~on_bus ~msg_size:m.Graph.size ~frozen:true
            ~preds:(List.map (fun (_, v, _) -> v) outcomes)
        in
        by_msg.(mid) <- sync :: by_msg.(mid);
        msg_alts.(mid) <- [ (sync, Cond.true_) ]
      end
      else begin
        let insts =
          List.map
            (fun (r, ovid, og) ->
              let sn = Mapping.node_of mapping ~pid ~copy:r in
              let on_bus = m.Graph.size > 0. && crosses sn in
              let duration =
                if on_bus then Bus.tx_time bus ~size:m.Graph.size else 0.
              in
              msg_counter.(mid) <- msg_counter.(mid) + 1;
              let name =
                Printf.sprintf "%s^%d" m.Graph.mname msg_counter.(mid)
              in
              let iv =
                add_vertex b
                  ~kind:(Msg_inst { mid; replica = r })
                  ~name ~guard:og ~duration ~conditional:false ~exec_node:None
                  ~src_node:(Some sn) ~on_bus ~msg_size:m.Graph.size
                  ~frozen:false ~preds:[ ovid ]
              in
              by_msg.(mid) <- iv :: by_msg.(mid);
              (iv, og))
            outcomes
        in
        if ncopies > 1 then begin
          (* Deterministic merge of the replica transmissions: consumers
             wait for all copies (active replication), so downstream no
             condition of this process is visible. *)
          let merge =
            add_vertex b ~kind:(Sync_msg mid)
              ~name:(m.Graph.mname ^ "^M")
              ~guard:Cond.true_ ~duration:0. ~conditional:false
              ~exec_node:None ~src_node:None ~on_bus:false
              ~msg_size:m.Graph.size ~frozen:false
              ~preds:(List.map fst insts)
          in
          by_msg.(mid) <- merge :: by_msg.(mid);
          msg_alts.(mid) <- [ (merge, Cond.true_) ]
        end
        else msg_alts.(mid) <- insts
      end
    in
    List.iter expand_message (Graph.out_messages g pid)
  in
  List.iter expand_process (Graph.topological_order g);
  let vertices = Array.of_list (List.rev b.rev) in
  (* Patch successor lists. *)
  let succs = Array.make (Array.length vertices) [] in
  Array.iter
    (fun v -> List.iter (fun p -> succs.(p) <- v.vid :: succs.(p)) v.preds)
    vertices;
  let vertices =
    Array.map (fun v -> { v with succs = List.rev succs.(v.vid) }) vertices
  in
  Ftes_util.Telemetry.set_gauge "ftcpg.vertices"
    (float_of_int (Array.length vertices));
  {
    problem;
    vertices;
    by_proc = Array.map List.rev by_proc;
    by_msg = Array.map List.rev by_msg;
  }

let problem t = t.problem
let vertex_count t = Array.length t.vertices

let vertex t vid =
  if vid < 0 || vid >= vertex_count t then invalid_arg "Ftcpg.vertex: bad id";
  t.vertices.(vid)

let vertices t = Array.copy t.vertices

let conditional_vertices t =
  Array.to_list t.vertices
  |> List.filter_map (fun v -> if v.conditional then Some v.vid else None)

let proc_copies t ~pid =
  if pid < 0 || pid >= Array.length t.by_proc then
    invalid_arg "Ftcpg.proc_copies: bad pid";
  t.by_proc.(pid)

let msg_vertices t ~mid =
  if mid < 0 || mid >= Array.length t.by_msg then
    invalid_arg "Ftcpg.msg_vertices: bad mid";
  t.by_msg.(mid)

let cond_name t vid = "F" ^ (vertex t vid).name

(* Scenario enumeration works directly on packed condition vectors: the
   DFS below mirrors the historical list-of-guards recursion (fault
   branch expanded before the no-fault branch, so the packed rows and
   the unpacked list come out in the exact same order), but each
   scenario is 31 conditions per int word in one flat arena instead of
   a freshly allocated literal list. Exhaustive validation iterates the
   arena in place; the legacy {!scenarios} list is a thin unpacking
   view over it. *)
type family = {
  funiverse : Condvec.universe;
  fguards : Condvec.guard array;
  fbudget : int;
}

(* The symbolic description of the scenario set: existence guards per
   condition field plus the fault budget — everything the explicit DFS
   below consumes, without materializing the arena. Existence guards
   only reference earlier conditions (vertex ids ascend along chains),
   which is what lets both the DFS and the symbolic backend decide
   presence from a prefix. *)
let scenario_family t =
  let cond_vids = Array.of_list (conditional_vertices t) in
  let u = Condvec.universe cond_vids in
  let guards =
    Array.map (fun vid -> Condvec.pack_guard u t.vertices.(vid).guard)
      cond_vids
  in
  { funiverse = u; fguards = guards; fbudget = t.problem.Problem.k }

let scenario_space t =
  let { funiverse = u; fguards = guards; fbudget = k } = scenario_family t in
  let s = Condvec.store u in
  let row = Condvec.create_row u in
  let n = Array.length guards in
  let rec go i faults =
    if i >= n then Condvec.append s row
    else if Condvec.row_implies row guards.(i) then begin
      (* Guards of frozen chains hide upstream faults, so the global
         budget k is enforced here rather than structurally. *)
      if faults < k then begin
        Condvec.set u row i true;
        go (i + 1) (faults + 1)
      end;
      Condvec.set u row i false;
      go (i + 1) faults;
      Condvec.unset u row i
    end
    else go (i + 1) faults
  in
  go 0 0;
  Condvec.freeze s

let scenario_count t = Condvec.count (scenario_space t)

let scenarios t =
  let sp = scenario_space t in
  let rec build i acc =
    if i < 0 then acc else build (i - 1) (Condvec.guard_at sp i :: acc)
  in
  build (Condvec.count sp - 1) []

let scenario_fault_count = Cond.fault_count

let exists_in t ~scenario vid = Cond.implies scenario (vertex t vid).guard

let pp_name t ppf vid = Format.pp_print_string ppf (vertex t vid).name

let pp_summary ppf t =
  let nconds = List.length (conditional_vertices t) in
  let nsync =
    Array.fold_left
      (fun acc v ->
        match v.kind with Sync_proc _ | Sync_msg _ -> acc + 1 | _ -> acc)
      0 t.vertices
  in
  Format.fprintf ppf "FT-CPG: %d vertices (%d conditional, %d sync), k=%d"
    (vertex_count t) nconds nsync t.problem.Problem.k

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@," pp_summary t;
  Array.iter
    (fun v ->
      Format.fprintf ppf "  %-10s guard=%-24s dur=%-7g %s%spreds=[%a]@,"
        v.name
        (Cond.to_string ~name:(cond_name t) v.guard)
        v.duration
        (if v.conditional then "cond " else "")
        (if v.frozen then "frozen " else "")
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           (pp_name t))
        v.preds)
    t.vertices;
  Format.fprintf ppf "@]"
