(** Scheduling of mixed soft/hard fault-tolerant applications ([17],
    summarized in the paper's Sec. 5.2 list of scheduling extensions).

    Hard processes keep the full treatment: fault-tolerance policies,
    recovery slack, deadlines guaranteed in every scenario with at most
    [k] faults. Soft processes are best-effort: single copies without
    fault tolerance, placed into the idle capacity left by the hard
    schedule in decreasing utility-density order; a soft process whose
    achievable utility is zero — or whose producer was dropped — is
    dropped.

    Two utility figures are reported:

    - {e fault-free utility}: what the static placement earns when no
      fault occurs;
    - {e guaranteed utility}: what survives the worst case — every soft
      completion is shifted by the hard schedule's shared recovery
      slack (recoveries preempt the idle windows the soft processes sit
      in), and soft processes pushed to zero utility count as dropped.

    Constraints: a hard process must not consume the output of a soft
    process (a guaranteed deadline cannot wait on droppable work) —
    {!schedule} rejects such specifications. *)

type class_ = Hard | Soft of Utility.t

type placement = {
  pid : int;
  node : int;
  start : float;
  finish : float;
  utility : float;  (** Fault-free utility of this completion. *)
  guaranteed_utility : float;
}

type result = {
  hard : Ftes_sched.Slack.result;  (** The hard subset's FT schedule. *)
  hard_pids : int list;
  soft_placements : placement list;
  dropped : int list;  (** Soft processes not placed. *)
  utility_no_fault : float;
  utility_guaranteed : float;
  utility_bound : float;  (** Sum of all soft processes' maxima. *)
}

val schedule :
  classes:class_ array -> Ftes_ftcpg.Problem.t -> result
(** [classes] is indexed by process id; the problem's policies and
    mapping apply to the hard subset (soft processes' policies are
    ignored — they run as single copies on their best allowed node).
    @raise Invalid_argument if a hard process depends on a soft one or
    the classes array has the wrong length. *)

val soft_utility :
  classes:class_ array -> Ftes_app.Graph.t -> int -> Utility.t
(** The utility function of a soft process. Used internally by
    {!schedule} for every soft placement decision.
    @raise Invalid_argument (naming the process) when [pid] is out of
    range or classed [Hard] — a hard process has no utility function,
    and this case historically crashed with an assertion. *)

val pp_result : Ftes_app.Graph.t -> Format.formatter -> result -> unit
