module Graph = Ftes_app.Graph
module App = Ftes_app.App
module Transparency = Ftes_app.Transparency
module Policy = Ftes_app.Policy
module Wcet = Ftes_arch.Wcet
module Arch = Ftes_arch.Arch
module Bus = Ftes_arch.Bus
module Problem = Ftes_ftcpg.Problem
module Mapping = Ftes_ftcpg.Mapping
module Slack = Ftes_sched.Slack
module Timeline = Ftes_sched.Timeline
module Busalloc = Ftes_sched.Busalloc

type class_ = Hard | Soft of Utility.t

type placement = {
  pid : int;
  node : int;
  start : float;
  finish : float;
  utility : float;
  guaranteed_utility : float;
}

type result = {
  hard : Slack.result;
  hard_pids : int list;
  soft_placements : placement list;
  dropped : int list;
  utility_no_fault : float;
  utility_guaranteed : float;
  utility_bound : float;
}

(* Utility of a soft process. A [Hard] class here means the caller (or
   an internal ready-set bug) mixed up the soft/hard partition — the
   descriptive error replaces a historical [assert false] on this
   path. *)
let soft_utility ~classes g pid =
  if pid < 0 || pid >= Array.length classes then
    invalid_arg
      (Printf.sprintf "Softsched.soft_utility: pid %d out of range" pid);
  match classes.(pid) with
  | Soft u -> u
  | Hard ->
      invalid_arg
        (Printf.sprintf
           "Softsched.soft_utility: process %s (pid %d) is hard but was \
            selected for soft placement"
           (Graph.process g pid).Graph.pname pid)

(* Build the Problem restricted to the hard processes. *)
let hard_subproblem ~classes (problem : Problem.t) =
  let g = Problem.graph problem in
  let app = problem.Problem.app in
  let is_hard pid = classes.(pid) = Hard in
  let hgraph, pid_map = Graph.restrict g ~keep:is_hard in
  (* Translation for kept messages: same relative order. *)
  let mid_map = Array.make (Graph.message_count g) (-1) in
  let next = ref 0 in
  Array.iter
    (fun (m : Graph.message) ->
      if pid_map.(m.Graph.src) >= 0 && pid_map.(m.Graph.dst) >= 0 then begin
        mid_map.(m.Graph.mid) <- !next;
        incr next
      end)
    (Graph.messages g);
  let nh = Graph.process_count hgraph in
  let nodes = Arch.node_count problem.Problem.arch in
  let wcet_h = Wcet.create ~procs:nh ~nodes in
  let policies_h = Array.make (max nh 1) (Policy.re_execution ~recoveries:0) in
  let mapping_rows = Array.make nh [||] in
  Array.iteri
    (fun old_pid new_pid ->
      if new_pid >= 0 then begin
        for nid = 0 to nodes - 1 do
          match Wcet.get problem.Problem.wcet ~pid:old_pid ~nid with
          | Some c -> Wcet.set wcet_h ~pid:new_pid ~nid c
          | None -> ()
        done;
        policies_h.(new_pid) <- problem.Problem.policies.(old_pid);
        mapping_rows.(new_pid) <-
          Array.of_list (Mapping.copies problem.Problem.mapping ~pid:old_pid)
      end)
    pid_map;
  let transparency_h =
    Transparency.of_list
      (List.filter_map
         (fun obj ->
           match obj with
           | Transparency.Proc pid when pid_map.(pid) >= 0 ->
               Some (Transparency.Proc pid_map.(pid))
           | Transparency.Msg mid when mid_map.(mid) >= 0 ->
               Some (Transparency.Msg mid_map.(mid))
           | Transparency.Proc _ | Transparency.Msg _ -> None)
         (Transparency.frozen_objects app.App.transparency))
  in
  let app_h =
    App.make ~transparency:transparency_h ~graph:hgraph
      ~deadline:app.App.deadline ~period:app.App.period ()
  in
  let problem_h =
    Problem.make ~app:app_h ~arch:problem.Problem.arch ~wcet:wcet_h
      ~k:problem.Problem.k
      ~policies:(Array.sub policies_h 0 nh)
      ~mapping:(Mapping.of_array mapping_rows)
  in
  (problem_h, pid_map)

let schedule ~classes (problem : Problem.t) =
  let g = Problem.graph problem in
  let n = Graph.process_count g in
  if Array.length classes <> n then
    invalid_arg "Softsched.schedule: classes length mismatch";
  Array.iter
    (fun (m : Graph.message) ->
      if classes.(m.Graph.dst) = Hard && classes.(m.Graph.src) <> Hard then
        invalid_arg
          (Printf.sprintf
             "Softsched.schedule: hard process %s depends on soft process %s"
             (Graph.process g m.Graph.dst).Graph.pname
             (Graph.process g m.Graph.src).Graph.pname))
    (Graph.messages g);
  let problem_h, pid_map = hard_subproblem ~classes problem in
  let hard_res = Slack.evaluate problem_h in
  let bus = Arch.bus problem.Problem.arch in
  let nodes = Arch.node_count problem.Problem.arch in
  (* Rebuild the resource state left by the hard schedule. *)
  let node_tl = Array.make nodes Timeline.empty in
  List.iter
    (fun (pl : Slack.placement) ->
      if pl.Slack.finish > pl.Slack.start then
        node_tl.(pl.Slack.node) <-
          Timeline.reserve node_tl.(pl.Slack.node) ~start:pl.Slack.start
            ~finish:pl.Slack.finish)
    hard_res.Slack.placements;
  let busa = ref (Busalloc.create bus ~nodes) in
  List.iter
    (fun (mp : Slack.msg_placement) ->
      if mp.Slack.on_bus then begin
        let m =
          Graph.message (Problem.graph problem_h) mp.Slack.mid
        in
        let src =
          Mapping.node_of problem_h.Problem.mapping ~pid:m.Graph.src
            ~copy:mp.Slack.copy
        in
        busa :=
          Busalloc.reserve_window !busa ~src ~start:mp.Slack.start
            ~finish:mp.Slack.finish
      end)
    hard_res.Slack.msg_placements;
  (* Fault-free completion of a hard process as seen from [node]. *)
  let hard_arrival old_pid node size =
    let new_pid = pid_map.(old_pid) in
    List.fold_left
      (fun acc (pl : Slack.placement) ->
        if pl.Slack.pid = new_pid then
          let t =
            if pl.Slack.node = node then pl.Slack.finish
            else pl.Slack.finish +. Bus.tx_time bus ~size
          in
          min acc t
        else acc)
      infinity hard_res.Slack.placements
  in
  (* Greedy utility-density list scheduling of the soft processes. *)
  let soft_placed : (int, placement) Hashtbl.t = Hashtbl.create 16 in
  let dropped : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let slack = hard_res.Slack.slack_term in
  let utility_of pid = soft_utility ~classes g pid in
  let density pid =
    Utility.max_value (utility_of pid)
    /. max 1. (Wcet.average_wcet problem.Problem.wcet ~pid)
  in
  let decided pid = Hashtbl.mem soft_placed pid || Hashtbl.mem dropped pid in
  let ready pid =
    (not (decided pid))
    && List.for_all
         (fun (src : int) -> classes.(src) = Hard || decided src)
         (Graph.predecessors g pid)
  in
  let producer_dropped pid =
    List.exists
      (fun src -> classes.(src) <> Hard && Hashtbl.mem dropped src)
      (Graph.predecessors g pid)
  in
  let place_soft pid =
    if producer_dropped pid then Hashtbl.replace dropped pid ()
    else begin
      let proc = Graph.process g pid in
      let u = utility_of pid in
      (* Arrival of all inputs at a candidate node (probing the bus for
         cross-node soft inputs without reserving yet). *)
      let arrival node =
        List.fold_left
          (fun acc mid ->
            let m = Graph.message g mid in
            let t =
              if classes.(m.Graph.src) = Hard then
                hard_arrival m.Graph.src node m.Graph.size
              else
                let pl = Hashtbl.find soft_placed m.Graph.src in
                if pl.node = node || m.Graph.size = 0. then pl.finish
                else
                  snd
                    (Busalloc.probe !busa ~src:pl.node ~size:m.Graph.size
                       ~earliest:pl.finish)
            in
            max acc t)
          proc.Graph.release (Graph.in_messages g pid)
      in
      let candidate node =
        match Wcet.get problem.Problem.wcet ~pid ~nid:node with
        | None -> None
        | Some c ->
            let a = arrival node in
            if a = infinity then None
            else
              let start = Timeline.earliest_gap node_tl.(node) ~from_:a ~duration:c in
              let finish = start +. c in
              Some (node, start, finish, Utility.value_at u finish)
      in
      let best =
        List.fold_left
          (fun acc node ->
            match (acc, candidate node) with
            | None, c -> c
            | Some _, None -> acc
            | Some (_, _, f0, u0), Some ((_, _, f1, u1) as c) ->
                if u1 > u0 +. 1e-9 || (Float.abs (u1 -. u0) <= 1e-9 && f1 < f0)
                then Some c
                else acc)
          None
          (List.init nodes (fun i -> i))
      in
      match best with
      | Some (node, start, finish, utility) when utility > 0. ->
          (* Commit: CPU window plus the bus windows of soft inputs. *)
          node_tl.(node) <-
            Timeline.reserve node_tl.(node) ~start ~finish;
          List.iter
            (fun mid ->
              let m = Graph.message g mid in
              if classes.(m.Graph.src) <> Hard && m.Graph.size > 0. then begin
                let pl = Hashtbl.find soft_placed m.Graph.src in
                if pl.node <> node then begin
                  let busa', _ =
                    Busalloc.place !busa ~src:pl.node ~size:m.Graph.size
                      ~earliest:pl.finish
                  in
                  busa := busa'
                end
              end)
            (Graph.in_messages g pid);
          Hashtbl.replace soft_placed pid
            {
              pid;
              node;
              start;
              finish;
              utility;
              guaranteed_utility = Utility.value_at u (finish +. slack);
            }
      | Some _ | None -> Hashtbl.replace dropped pid ()
    end
  in
  let soft_pids =
    List.filter (fun pid -> classes.(pid) <> Hard) (Graph.topological_order g)
  in
  let remaining = ref soft_pids in
  while !remaining <> [] do
    let ready_now = List.filter ready !remaining in
    match ready_now with
    | [] ->
        (* Only possible through soft cycles, which the DAG excludes. *)
        List.iter (fun pid -> Hashtbl.replace dropped pid ()) !remaining;
        remaining := []
    | _ ->
        let pick =
          List.fold_left
            (fun acc pid ->
              match acc with
              | None -> Some pid
              | Some best -> if density pid > density best then Some pid else acc)
            None ready_now
        in
        let pid = Option.get pick in
        place_soft pid;
        remaining := List.filter (fun p -> p <> pid) !remaining
  done;
  let soft_placements =
    List.sort
      (fun a b -> compare a.start b.start)
      (Hashtbl.fold (fun _ pl acc -> pl :: acc) soft_placed [])
  in
  let dropped = Hashtbl.fold (fun pid () acc -> pid :: acc) dropped [] in
  {
    hard = hard_res;
    hard_pids =
      List.filter (fun pid -> classes.(pid) = Hard) (Graph.topological_order g);
    soft_placements;
    dropped = List.sort compare dropped;
    utility_no_fault =
      List.fold_left (fun acc pl -> acc +. pl.utility) 0. soft_placements;
    utility_guaranteed =
      List.fold_left
        (fun acc pl -> acc +. pl.guaranteed_utility)
        0. soft_placements;
    utility_bound =
      List.fold_left
        (fun acc pid -> acc +. Utility.max_value (utility_of pid))
        0. soft_pids;
  }

let pp_result g ppf r =
  Format.fprintf ppf
    "@[<v>soft/hard schedule: hard worst-case length %g (slack %g)@,"
    r.hard.Slack.length r.hard.Slack.slack_term;
  List.iter
    (fun pl ->
      Format.fprintf ppf "  %-12s N%d %7.1f-%7.1f  utility %.1f (>= %.1f)@,"
        (Graph.process g pl.pid).Graph.pname (pl.node + 1) pl.start pl.finish
        pl.utility pl.guaranteed_utility)
    r.soft_placements;
  List.iter
    (fun pid ->
      Format.fprintf ppf "  %-12s dropped@," (Graph.process g pid).Graph.pname)
    r.dropped;
  Format.fprintf ppf
    "fault-free utility %.1f / guaranteed %.1f / bound %.1f@]"
    r.utility_no_fault r.utility_guaranteed r.utility_bound
