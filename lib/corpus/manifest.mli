(** The corpus manifest: the checked-in oracle every run is gated
    against.

    One entry per instance: its budget tier, check kind, pinned
    schedule length, pinned result digest and validation verdict.
    [corpus/manifest.json] is (re)written by [ftes corpus pin] and read
    by [ftes corpus verify]; parse and print round-trip exactly, so the
    file diffs cleanly under version control. *)

type entry = {
  id : string;
  tier : string;  (** "smoke" | "standard" | "heavy". *)
  kind : string;  (** {!Instance.check_kind}. *)
  length : float;  (** Pinned schedule length (tables), estimator
                       length, or hard-subset length (soft). *)
  digest : string;  (** MD5 of the rendered result. *)
  verdict : string;  (** "clean-exhaustive" | "clean-sampled" |
                         "estimate-only" | "soft". *)
}

type t = { version : int; entries : entry list }

val schema_version : int

val empty : t
val find : t -> string -> entry option
val ids : t -> string list

val to_string : t -> string
(** Render as JSON (stable field order, one entry per line). *)

val of_string : string -> (t, string) result
(** Parse what {!to_string} produces (tolerating whitespace and field
    reordering). Errors carry a human-readable reason. *)

val load : string -> (t, string) result
val save : string -> t -> unit

(** {1 Minimal JSON toolkit}

    The repo carries no JSON library; the hand-rolled value type and
    parser behind the manifest are exposed for reuse by {!Trajectory}
    and the event-stream tests. *)

type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

val json_of_string : string -> (json, string) result
(** Parse one complete JSON value (tolerating surrounding whitespace);
    rejects trailing content. *)

val json_escape : string -> string
(** Escape a string for embedding between double quotes in JSON. *)
