(* Append-only cross-commit result history over the manifest's JSON
   toolkit. See trajectory.mli. *)

type entry = {
  commit : string;
  schema : int;
  id : string;
  ok : bool;
  length : float;
  wall_ms : float;
}

let schema_version = 1

let entry_to_json e =
  Printf.sprintf
    "{\"commit\": \"%s\", \"schema\": %d, \"id\": \"%s\", \"ok\": %b, \
     \"length\": %.6f, \"wall_ms\": %.3f}"
    (Manifest.json_escape e.commit)
    e.schema
    (Manifest.json_escape e.id)
    e.ok e.length e.wall_ms

let append path entries =
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path
  in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun e ->
          output_string oc (entry_to_json e);
          output_char oc '\n')
        entries)

let entry_of_json line =
  let open Manifest in
  match json_of_string line with
  | Error msg -> Error msg
  | Ok (Jobj fields) -> (
      let str name =
        match List.assoc_opt name fields with
        | Some (Jstr s) -> Ok s
        | _ -> Error (Printf.sprintf "field %S: expected string" name)
      in
      let num name =
        match List.assoc_opt name fields with
        | Some (Jnum f) -> Ok f
        | _ -> Error (Printf.sprintf "field %S: expected number" name)
      in
      let bool_ name =
        match List.assoc_opt name fields with
        | Some (Jbool b) -> Ok b
        | _ -> Error (Printf.sprintf "field %S: expected bool" name)
      in
      match
        (str "commit", num "schema", str "id", bool_ "ok", num "length",
         num "wall_ms")
      with
      | Ok commit, Ok schema, Ok id, Ok ok, Ok length, Ok wall_ms ->
          Ok
            {
              commit;
              schema = int_of_float schema;
              id;
              ok;
              length;
              wall_ms;
            }
      | (Error m, _, _, _, _, _)
      | (_, Error m, _, _, _, _)
      | (_, _, Error m, _, _, _)
      | (_, _, _, Error m, _, _)
      | (_, _, _, _, Error m, _)
      | (_, _, _, _, _, Error m) ->
          Error m)
  | Ok _ -> Error "expected a JSON object"

let load path =
  if not (Sys.file_exists path) then Ok []
  else
    match In_channel.with_open_bin path In_channel.input_all with
    | exception Sys_error msg -> Error msg
    | contents ->
        let lines = String.split_on_char '\n' contents in
        let rec go n acc = function
          | [] -> Ok (List.rev acc)
          | line :: rest ->
              if String.trim line = "" then go (n + 1) acc rest
              else (
                match entry_of_json line with
                | Error msg ->
                    Error (Printf.sprintf "line %d: %s" n msg)
                | Ok e ->
                    let acc =
                      if e.schema = schema_version then e :: acc else acc
                    in
                    go (n + 1) acc rest)
        in
        go 1 [] lines

(* ------------------------------------------------------------------ *)
(* Trend analysis                                                      *)
(* ------------------------------------------------------------------ *)

type comparison = {
  cid : string;
  runs : int;
  latest : entry;
  baseline_wall_ms : float;
  baseline_length : float;
  problems : string list;
}

let median xs =
  match List.sort compare xs with
  | [] -> 0.
  | sorted ->
      let n = List.length sorted in
      let a = Array.of_list sorted in
      if n mod 2 = 1 then a.(n / 2)
      else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.

let last_n n xs =
  let len = List.length xs in
  if len <= n then xs else List.filteri (fun i _ -> i >= len - n) xs

let trend ?(window = 5) ?(wall_tolerance = 0.5) ?(wall_floor_ms = 10.)
    ?(length_tolerance = 1e-6) entries =
  (* Group by id preserving file (= chronological) order within each
     group. *)
  let groups : (string, entry list ref) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun e ->
      match Hashtbl.find_opt groups e.id with
      | Some r -> r := e :: !r
      | None ->
          Hashtbl.add groups e.id (ref [ e ]);
          order := e.id :: !order)
    entries;
  let compare_group id =
    let history = last_n window (List.rev !(Hashtbl.find groups id)) in
    match List.rev history with
    | latest :: (_ :: _ as prior_rev) ->
        let prior = List.rev prior_rev in
        let baseline_wall_ms = median (List.map (fun e -> e.wall_ms) prior) in
        let baseline_length =
          List.fold_left
            (fun acc e -> Float.min acc e.length)
            infinity prior
        in
        let problems = ref [] in
        let flag fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
        if (not latest.ok) && List.exists (fun e -> e.ok) prior then
          flag "latest run failed (commit %s) but prior runs succeeded"
            latest.commit;
        if latest.length > baseline_length +. length_tolerance then
          flag "quality regression: length %.6f exceeds prior best %.6f"
            latest.length baseline_length;
        if
          latest.wall_ms > wall_floor_ms
          && baseline_wall_ms > 0.
          && latest.wall_ms > (1. +. wall_tolerance) *. baseline_wall_ms
        then
          flag
            "runtime regression: %.1f ms exceeds prior median %.1f ms by \
             more than %.0f%%"
            latest.wall_ms baseline_wall_ms (100. *. wall_tolerance);
        Some
          {
            cid = id;
            runs = List.length history;
            latest;
            baseline_wall_ms;
            baseline_length;
            problems = List.rev !problems;
          }
    | _ -> None
  in
  List.sort
    (fun a b -> compare a.cid b.cid)
    (List.filter_map compare_group (List.rev !order))

let pp_comparison ppf c =
  match c.problems with
  | [] ->
      Format.fprintf ppf
        "%-40s ok    (%d runs, length %.2f vs best %.2f, %.1f ms vs median \
         %.1f ms)"
        c.cid c.runs c.latest.length c.baseline_length c.latest.wall_ms
        c.baseline_wall_ms
  | problems ->
      Format.fprintf ppf "%-40s REGRESSED (%d runs)" c.cid c.runs;
      List.iter (fun p -> Format.fprintf ppf "@,    %s" p) problems
