(* The checked-in corpus oracle: parse/print of corpus/manifest.json.
   The repo carries no JSON library, so this module hand-rolls both
   directions over a minimal JSON value type — strict enough for the
   manifest grammar, tolerant of whitespace and field order. *)

type entry = {
  id : string;
  tier : string;
  kind : string;
  length : float;
  digest : string;
  verdict : string;
}

type t = { version : int; entries : entry list }

let schema_version = 1
let empty = { version = schema_version; entries = [] }
let find t id = List.find_opt (fun e -> e.id = id) t.entries
let ids t = List.map (fun e -> e.id) t.entries

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let entry_to_string e =
  Printf.sprintf
    "{\"id\": \"%s\", \"tier\": \"%s\", \"kind\": \"%s\", \"length\": %.6f, \
     \"digest\": \"%s\", \"verdict\": \"%s\"}"
    (escape e.id) (escape e.tier) (escape e.kind) e.length (escape e.digest)
    (escape e.verdict)

let to_string t =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "{\n  \"schema_version\": %d,\n  \"instances\": [\n"
       t.version);
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b ("    " ^ entry_to_string e))
    t.entries;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

exception Parse_error of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape";
           match s.[!pos] with
           | '"' -> Buffer.add_char b '"'; advance ()
           | '\\' -> Buffer.add_char b '\\'; advance ()
           | '/' -> Buffer.add_char b '/'; advance ()
           | 'n' -> Buffer.add_char b '\n'; advance ()
           | 't' -> Buffer.add_char b '\t'; advance ()
           | 'r' -> Buffer.add_char b '\r'; advance ()
           | 'u' ->
               if !pos + 4 >= n then fail "bad \\u escape";
               let hex = String.sub s (!pos + 1) 4 in
               let code =
                 try int_of_string ("0x" ^ hex)
                 with _ -> fail "bad \\u escape"
               in
               (* Manifest strings are ASCII; anything else round-trips
                  as '?' rather than growing a UTF-8 encoder here. *)
               Buffer.add_char b
                 (if code < 0x80 then Char.chr code else '?');
               pos := !pos + 5
           | c -> fail (Printf.sprintf "bad escape \\%C" c));
          go ()
      | c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Jstr (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Jobj [])
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((key, v) :: acc)
            | Some '}' -> advance (); List.rev ((key, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Jobj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); Jarr [])
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements (v :: acc)
            | Some ']' -> advance (); List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Jarr (elements [])
        end
    | Some 't' -> literal "true" (Jbool true)
    | Some 'f' -> literal "false" (Jbool false)
    | Some 'n' -> literal "null" Jnull
    | Some ('-' | '0' .. '9') -> Jnum (parse_number ())
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing content";
  v

let field obj name =
  match List.assoc_opt name obj with
  | Some v -> v
  | None -> raise (Parse_error (Printf.sprintf "missing field %S" name))

let as_string name = function
  | Jstr s -> s
  | _ -> raise (Parse_error (Printf.sprintf "field %S: expected string" name))

let as_number name = function
  | Jnum f -> f
  | _ -> raise (Parse_error (Printf.sprintf "field %S: expected number" name))

let entry_of_json = function
  | Jobj fields ->
      {
        id = as_string "id" (field fields "id");
        tier = as_string "tier" (field fields "tier");
        kind = as_string "kind" (field fields "kind");
        length = as_number "length" (field fields "length");
        digest = as_string "digest" (field fields "digest");
        verdict = as_string "verdict" (field fields "verdict");
      }
  | _ -> raise (Parse_error "instance entry: expected object")

let of_string s =
  match parse_json s with
  | exception Parse_error msg -> Error msg
  | Jobj fields -> (
      try
        let version =
          int_of_float (as_number "schema_version" (field fields "schema_version"))
        in
        let entries =
          match field fields "instances" with
          | Jarr items -> List.map entry_of_json items
          | _ -> raise (Parse_error "field \"instances\": expected array")
        in
        if version <> schema_version then
          Error
            (Printf.sprintf "unsupported manifest schema_version %d (want %d)"
               version schema_version)
        else Ok { version; entries }
      with Parse_error msg -> Error msg)
  | _ -> Error "manifest: expected a top-level object"

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | contents -> of_string contents

let save path t =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (to_string t))

let json_of_string s =
  match parse_json s with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let json_escape = escape
