(* Named, pinned benchmark instances: pure descriptions of a synthesis
   problem plus how its result is digested, validated and budgeted. *)

module Gen = Ftes_workload.Gen
module Suite = Ftes_core.Example_suite

type shape = Uniform | Deep | Bursty
type tier = Smoke | Standard | Heavy

type check =
  | Exhaustive
  | Sampled of int
  | Symbolic
  | Estimate
  | Soft of { soft_prob : float }
  | Portfolio of { iterations : int }

type source = Example of string | Generated of Ftes_workload.Gen.spec

type t = {
  id : string;
  source : source;
  k : int;
  check : check;
  tier : tier;
  axes : (string * string) list;
}

let problem t =
  match t.source with
  | Generated spec -> Gen.problem ~k:t.k spec
  | Example "fig3" -> Suite.fig3 ~k:t.k
  | Example "fig5" -> Suite.fig5 ()
  | Example "cruise" -> Suite.cruise_control ~k:t.k
  | Example "vision" -> Suite.vision ~k:t.k
  | Example "tradeoff" -> Suite.tradeoff ~k:t.k
  | Example other ->
      invalid_arg (Printf.sprintf "Corpus.Instance: unknown example %S" other)

let tier_to_string = function
  | Smoke -> "smoke"
  | Standard -> "standard"
  | Heavy -> "heavy"

let tier_of_string = function
  | "smoke" -> Some Smoke
  | "standard" -> Some Standard
  | "heavy" -> Some Heavy
  | _ -> None

let check_kind = function
  | Exhaustive -> "table-exhaustive"
  | Sampled _ -> "table-sampled"
  | Symbolic -> "table-symbolic"
  | Estimate -> "estimate"
  | Soft _ -> "soft"
  | Portfolio _ -> "portfolio-quality"

let axis t name = List.assoc_opt name t.axes

(* FNV-1a over the id, folded into a non-negative int — gives sampled
   validation a reproducible RNG stream without storing seeds in the
   manifest. *)
let stable_seed id =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3FFFFFFF)
    id;
  !h
