(* The deterministic instance registry: a pure enumeration of 160+
   pinned instances. Everything here is derived from loop indices and
   constants — no clocks, no ambient randomness — so two builds of the
   registry are structurally equal and the manifest can pin digests. *)

module Gen = Ftes_workload.Gen
module I = Instance

let shapes = [ I.Uniform; I.Deep; I.Bursty ]
let buses = [ Gen.Tdma; Gen.Single ]

let shape_code = function I.Uniform -> "u" | I.Deep -> "d" | I.Bursty -> "b"

let shape_name = function
  | I.Uniform -> "uniform"
  | I.Deep -> "deep"
  | I.Bursty -> "bursty"

let bus_code = function Gen.Tdma -> "td" | Gen.Single -> "sb"
let bus_name = function Gen.Tdma -> "tdma" | Gen.Single -> "single"

(* WCET heterogeneity profiles: paper-like uniform draws, strongly
   heterogeneous (wide range), near-flat (narrow range, low jitter). *)
type wcet_profile = Wuniform | Whetero | Wflat

let wcet_profiles = [ Wuniform; Whetero; Wflat ]
let wcet_code = function Wuniform -> "u" | Whetero -> "h" | Wflat -> "f"

let wcet_name = function
  | Wuniform -> "uniform"
  | Whetero -> "hetero"
  | Wflat -> "flat"

let apply_wcet_profile spec = function
  | Wuniform -> spec
  | Whetero -> { spec with Gen.wcet_min = 5.; wcet_max = 400. }
  | Wflat -> { spec with Gen.wcet_min = 40.; wcet_max = 60.; wcet_jitter = 0.1 }

let apply_shape spec = function
  | I.Uniform -> spec
  | I.Deep ->
      {
        spec with
        Gen.layers = max 4 (spec.Gen.processes * 2 / 3);
        extra_edge_prob = 0.1;
      }
  | I.Bursty -> { spec with Gen.layers = 3; burstiness = 0.7; extra_edge_prob = 0.2 }

let gen_id ~prefix ~shape ~spec ~k ~profile ~extra =
  Printf.sprintf "%s-%s%dx%d-k%d-%s-f%02.0f-w%s%s-s%d" prefix
    (shape_code shape) spec.Gen.processes spec.Gen.nodes k
    (bus_code spec.Gen.bus)
    (spec.Gen.frozen_msg_prob *. 100.)
    (wcet_code profile) extra spec.Gen.seed

let gen_axes ~shape ~spec ~k ~profile ~check ~class_ =
  [
    ("source", "generated");
    ("shape", shape_name shape);
    ("bus", bus_name spec.Gen.bus);
    ("k", string_of_int k);
    ( "transparency",
      if spec.Gen.frozen_msg_prob > 0. || spec.Gen.frozen_proc_prob > 0. then
        "frozen"
      else "none" );
    ("wcet", wcet_name profile);
    ("kind", I.check_kind check);
    ("class", class_);
    ( "size",
      Printf.sprintf "%dx%d" spec.Gen.processes spec.Gen.nodes );
  ]

(* Block A: table-tier instances — small enough for FT-CPG expansion,
   conditional scheduling and (sampled) fault-injection validation.
   shapes x buses x k in 1..3 x transparency in {none, quarter}. *)
let table_block () =
  let idx = ref 0 in
  List.concat_map
    (fun shape ->
      List.concat_map
        (fun bus ->
          List.concat_map
            (fun k ->
              List.map
                (fun frozen ->
                  let i = !idx in
                  incr idx;
                  let procs = if k >= 3 then 6 else 8 in
                  let nodes = match shape with I.Bursty -> 3 | _ -> 2 in
                  let spec =
                    apply_shape
                      {
                        Gen.default with
                        processes = procs;
                        nodes;
                        seed = 100 + (17 * i);
                        bus;
                        frozen_proc_prob = frozen /. 2.;
                        frozen_msg_prob = frozen;
                      }
                      shape
                  in
                  let check =
                    if k <= 2 then I.Exhaustive else I.Sampled 300
                  in
                  let tier = if k = 1 then I.Smoke else I.Standard in
                  {
                    I.id =
                      gen_id ~prefix:"g" ~shape ~spec ~k ~profile:Wuniform
                        ~extra:"";
                    source = I.Generated spec;
                    k;
                    check;
                    tier;
                    axes =
                      gen_axes ~shape ~spec ~k ~profile:Wuniform ~check
                        ~class_:"hard";
                  })
                [ 0.; 0.25 ])
            [ 1; 2; 3 ])
        buses)
    shapes

(* Block B: estimator-tier instances — the sizes and fault hypotheses
   (k up to 7) whose FT-CPG is out of reach; pinned via the scalable
   schedule-length estimator. shapes x buses x k in 2..7 x WCET
   profiles. *)
let estimate_block () =
  let idx = ref 0 in
  List.concat_map
    (fun shape ->
      let shape_idx =
        match shape with I.Uniform -> 0 | I.Deep -> 1 | I.Bursty -> 2
      in
      List.concat_map
        (fun bus ->
          List.concat_map
            (fun k ->
              List.map
                (fun profile ->
                  let i = !idx in
                  incr idx;
                  let procs = 16 + (4 * k) in
                  let nodes = 3 + ((k + shape_idx) mod 3) in
                  let frozen = if k mod 2 = 0 then 0.15 else 0. in
                  let spec =
                    apply_wcet_profile
                      (apply_shape
                         {
                           Gen.default with
                           processes = procs;
                           nodes;
                           seed = 1000 + (13 * i);
                           bus;
                           frozen_proc_prob = frozen /. 2.;
                           frozen_msg_prob = frozen;
                         }
                         shape)
                      profile
                  in
                  let check = I.Estimate in
                  let tier = if k >= 6 then I.Heavy else I.Standard in
                  {
                    I.id = gen_id ~prefix:"g" ~shape ~spec ~k ~profile ~extra:"";
                    source = I.Generated spec;
                    k;
                    check;
                    tier;
                    axes =
                      gen_axes ~shape ~spec ~k ~profile ~check ~class_:"hard";
                  })
                wcet_profiles)
            [ 2; 3; 4; 5; 6; 7 ])
        buses)
    shapes

(* Block C: soft-goal variants — mixed soft/hard scheduling through
   lib/soft, digesting placements and utilities. *)
let soft_block () =
  let idx = ref 0 in
  List.concat_map
    (fun shape ->
      List.concat_map
        (fun soft_prob ->
          List.map
            (fun k ->
              let i = !idx in
              incr idx;
              let nodes = match shape with I.Bursty -> 3 | _ -> 2 in
              let spec =
                apply_shape
                  {
                    Gen.default with
                    processes = 10;
                    nodes;
                    seed = 5000 + (31 * i);
                  }
                  shape
              in
              let check = I.Soft { soft_prob } in
              {
                I.id =
                  gen_id ~prefix:"soft" ~shape ~spec ~k ~profile:Wuniform
                    ~extra:
                      (Printf.sprintf "-p%02.0f" (soft_prob *. 100.));
                source = I.Generated spec;
                k;
                check;
                tier = I.Standard;
                axes =
                  gen_axes ~shape ~spec ~k ~profile:Wuniform ~check
                    ~class_:"soft";
              })
            [ 1; 2 ])
        [ 0.5; 0.7 ])
    shapes

(* Block E: symbolic-validation instances — fully transparent (every
   process and message frozen), compiled to static tables and validated
   with the symbolic scenario-family backend. The small-k ones stay
   cross-checkable against explicit validation (pinned by the test
   suite and the bench); at k >= 6 the explicit arena is out of reach
   and the symbolic backend provides the only full-coverage check. *)
let symbolic_block () =
  let idx = ref 0 in
  List.concat_map
    (fun bus ->
      List.map
        (fun (procs, k, tier) ->
          let i = !idx in
          incr idx;
          let spec =
            {
              Gen.default with
              processes = procs;
              nodes = 2;
              seed = 9000 + (23 * i);
              bus;
              frozen_proc_prob = 1.0;
              frozen_msg_prob = 1.0;
            }
          in
          let check = I.Symbolic in
          {
            I.id =
              gen_id ~prefix:"sym" ~shape:I.Uniform ~spec ~k ~profile:Wuniform
                ~extra:"";
            source = I.Generated spec;
            k;
            check;
            tier;
            axes =
              gen_axes ~shape:I.Uniform ~spec ~k ~profile:Wuniform ~check
                ~class_:"hard";
          })
        [
          (8, 2, I.Smoke);
          (10, 3, I.Standard);
          (40, 6, I.Standard);
          (60, 7, I.Heavy);
        ])
    buses

(* Block F: portfolio-quality instances — the deterministic strategy
   race (jobs = 1, fixed member iteration budget) on mid-size workloads
   over both buses. The digest pins the winner and every member's final
   length, so any engine's quality drift regresses the manifest; the
   Smoke ones feed the per-commit trajectory trend gate. *)
let portfolio_block () =
  let idx = ref 0 in
  List.map
    (fun (procs, nodes, k, bus, iterations, tier) ->
      let i = !idx in
      incr idx;
      let spec =
        {
          Gen.default with
          processes = procs;
          nodes;
          seed = 7000 + (41 * i);
          bus;
        }
      in
      let check = I.Portfolio { iterations } in
      {
        I.id =
          gen_id ~prefix:"pf" ~shape:I.Uniform ~spec ~k ~profile:Wuniform
            ~extra:(Printf.sprintf "-i%d" iterations);
        source = I.Generated spec;
        k;
        check;
        tier;
        axes =
          gen_axes ~shape:I.Uniform ~spec ~k ~profile:Wuniform ~check
            ~class_:"hard";
      })
    [
      (12, 2, 2, Gen.Tdma, 20, I.Smoke);
      (12, 3, 2, Gen.Single, 20, I.Smoke);
      (* Standard, not Smoke: a full 5-member race on 16 processes runs
         seconds of wall clock — too close to the smoke ceiling once
         the parallel runner oversubscribes a small box. *)
      (16, 3, 3, Gen.Tdma, 25, I.Standard);
      (20, 3, 3, Gen.Single, 30, I.Standard);
      (24, 4, 4, Gen.Tdma, 30, I.Standard);
      (30, 4, 4, Gen.Single, 30, I.Standard);
    ]

(* Block D: the paper's own examples, at several fault hypotheses. *)
let example_block () =
  let ex ~name ~k ~check ~tier =
    {
      I.id = Printf.sprintf "ex-%s-k%d" name k;
      source = I.Example name;
      k;
      check;
      tier;
      axes =
        [
          ("source", "example");
          ("example", name);
          ("k", string_of_int k);
          ("kind", I.check_kind check);
          ("class", "hard");
        ];
    }
  in
  (* fig3's deadline is only met at k = 1 (the quickstart's fault
     hypothesis) — higher k is genuinely unschedulable there. *)
  [
    ex ~name:"fig3" ~k:1 ~check:I.Exhaustive ~tier:I.Smoke;
    ex ~name:"fig5" ~k:2 ~check:I.Exhaustive ~tier:I.Smoke;
    ex ~name:"cruise" ~k:1 ~check:I.Exhaustive ~tier:I.Smoke;
    ex ~name:"cruise" ~k:2 ~check:I.Exhaustive ~tier:I.Standard;
    ex ~name:"vision" ~k:1 ~check:I.Exhaustive ~tier:I.Smoke;
    ex ~name:"vision" ~k:2 ~check:I.Exhaustive ~tier:I.Standard;
    ex ~name:"vision" ~k:3 ~check:(I.Sampled 300) ~tier:I.Standard;
    ex ~name:"tradeoff" ~k:1 ~check:(I.Sampled 400) ~tier:I.Standard;
    ex ~name:"tradeoff" ~k:2 ~check:(I.Sampled 400) ~tier:I.Standard;
  ]

let all () =
  example_block () @ table_block () @ symbolic_block () @ soft_block ()
  @ portfolio_block () @ estimate_block ()

let find id = List.find_opt (fun i -> i.I.id = id) (all ())

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  n = 0
  ||
  let rec at i =
    i + n <= h && (String.sub haystack i n = needle || at (i + 1))
  in
  at 0

let select ?tiers ?filter () =
  List.filter
    (fun i ->
      (match tiers with
      | None | Some [] -> true
      | Some ts -> List.mem i.I.tier ts)
      &&
      match filter with
      | None -> true
      | Some f ->
          contains ~needle:f i.I.id
          || List.exists (fun (_, v) -> contains ~needle:f v) i.I.axes)
    (all ())
