(* Corpus execution: evaluate instances on the domain pool, gate against
   the manifest, pin a new one. *)

module I = Instance
module Ftcpg = Ftes_ftcpg.Ftcpg
module Problem = Ftes_ftcpg.Problem
module Conditional = Ftes_sched.Conditional
module Statictable = Ftes_sched.Statictable
module Table = Ftes_sched.Table
module Slack = Ftes_sched.Slack
module Sim = Ftes_sim.Sim
module Softsched = Ftes_soft.Softsched
module Rng = Ftes_util.Rng
module Par = Ftes_util.Par
module Telemetry = Ftes_util.Telemetry
module Events = Ftes_util.Events

let c_instances = Telemetry.counter "corpus.instances"
let c_failures = Telemetry.counter "corpus.failures"

type error =
  | No_tables
  | Expansion_too_large of int
  | Violations of { count : int; first : string }
  | Invariant_broken of string
  | Crash of string

let error_to_string = function
  | No_tables ->
      "synthesis produced no schedule tables (conditional scheduling \
       infeasible for this instance)"
  | Expansion_too_large cap ->
      Printf.sprintf "FT-CPG expansion exceeded %d vertices" cap
  | Violations { count; first } ->
      Printf.sprintf "%d violation(s), first: %s" count first
  | Invariant_broken what -> what
  | Crash msg -> msg

(* Raised inside [evaluate_exn] where the legacy code called [failwith];
   [evaluate] turns it into a typed failed outcome. *)
exception Instance_error of error

type outcome = {
  instance : I.t;
  length : float;
  digest : string;
  verdict : string;
  ok : bool;
  error : error option;
  detail : string;
  wall_ms : float;
}

let tier_budget_ms = function
  | I.Smoke -> 5_000.
  | I.Standard -> 30_000.
  | I.Heavy -> 120_000.

let digest_of_string s = Digest.to_hex (Digest.string s)

(* Generated instances pin the deterministic default configuration
   (re-execution policies, fastest mapping). Example instances run
   the full synthesis flow — the paper's examples only meet their
   deadlines after policy/mapping optimization, so their digests
   additionally pin the optimizer's trajectory. *)
let table_of inst p =
  match inst.I.source with
  | I.Generated _ -> Conditional.schedule (Ftcpg.build p)
  | I.Example _ -> (
      let s =
        Ftes_core.Synthesis.synthesize ~app:p.Problem.app ~arch:p.Problem.arch
          ~wcet:p.Problem.wcet ~k:p.Problem.k ()
      in
      match s.Ftes_core.Synthesis.table with
      | Some t -> t
      | None -> raise (Instance_error No_tables))

let table_outcome table ~verdict ~validate =
  let violations = validate table in
  let digest = digest_of_string (Format.asprintf "%a" Table.pp table) in
  let length = Table.schedule_length table in
  let error =
    match violations with
    | [] -> None
    | first :: _ ->
        Some
          (Violations
             {
               count = List.length violations;
               first = Ftes_sim.Violation.to_string first;
             })
  in
  (length, digest, verdict, error)

(* Inside a Par worker nested parallel calls run sequentially anyway;
   jobs:1 makes the intent explicit — parallelism lives across
   instances, and per-instance results stay jobs-independent. *)
let evaluate_exn inst =
  let p = I.problem inst in
  match inst.I.check with
  | I.Exhaustive ->
      table_outcome (table_of inst p) ~verdict:"clean-exhaustive"
        ~validate:(fun table -> Sim.validate ~jobs:1 table)
  | I.Sampled samples ->
      table_outcome (table_of inst p) ~verdict:"clean-sampled"
        ~validate:(fun table ->
          Sim.validate_sampled ~jobs:1
            ~rng:(Rng.create (I.stable_seed inst.I.id))
            ~samples table)
  | I.Symbolic ->
      (* Fully transparent instances compile to a static table (no
         scenario enumeration at all); anything else falls back to the
         conditional scheduler. Either way, validation covers the whole
         scenario family symbolically. *)
      let ftcpg = Ftcpg.build p in
      let table =
        match Statictable.schedule ftcpg with
        | t -> t
        | exception Statictable.Not_transparent _ -> Conditional.schedule ftcpg
      in
      table_outcome table ~verdict:"clean-symbolic" ~validate:(fun table ->
          Sim.validate ~jobs:1 ~mode:`Symbolic table)
  | I.Estimate ->
      let r = Slack.evaluate p in
      let digest =
        digest_of_string (Format.asprintf "%a" Slack.pp_result r)
      in
      let ok = Float.is_finite r.Slack.length && r.Slack.length > 0. in
      ( r.Slack.length,
        digest,
        "estimate-only",
        if ok then None
        else Some (Invariant_broken "estimator produced a degenerate length")
      )
  | I.Soft { soft_prob } ->
      let g = Problem.graph p in
      let horizon = Slack.length ~ft:false p *. 1.5 in
      let seed =
        match inst.I.source with
        | I.Generated spec -> spec.Ftes_workload.Gen.seed
        | I.Example _ -> I.stable_seed inst.I.id
      in
      let classes =
        Ftes_core.Experiments.mk_soft_classes ~rng:(Rng.create seed) ~graph:g
          ~horizon ~soft_prob
      in
      let r = Softsched.schedule ~classes p in
      let digest =
        digest_of_string (Format.asprintf "%a" (Softsched.pp_result g) r)
      in
      let invariants_hold =
        r.Softsched.utility_guaranteed
        <= r.Softsched.utility_no_fault +. 1e-9
        && r.Softsched.utility_no_fault <= r.Softsched.utility_bound +. 1e-9
      in
      ( r.Softsched.hard.Slack.length,
        digest,
        "soft",
        if invariants_hold then None
        else Some (Invariant_broken "soft utility invariants violated") )
  | I.Portfolio { iterations } ->
      let module Portfolio = Ftes_optim.Portfolio in
      let module Strategy = Ftes_optim.Strategy in
      let module Tabu = Ftes_optim.Tabu in
      (* Deterministic mode (jobs = 1, no deadline, no exchange): the
         member outcomes are a pure function of the instance, so the
         digest pins the whole race — winner and per-member lengths —
         and any quality drift in any engine shows up as a digest
         regression. Wall clocks are deliberately left out. *)
      let tabu =
        {
          Tabu.default_options with
          Tabu.iterations;
          jobs = 1;
          seed = I.stable_seed inst.I.id;
        }
      in
      let r =
        Portfolio.run
          ~opts:
            {
              Portfolio.jobs = 1;
              deadline_s = None;
              exchange = false;
              cache = None;
              tabu;
            }
          {
            Strategy.app = p.Problem.app;
            arch = p.Problem.arch;
            wcet = p.Problem.wcet;
            k = p.Problem.k;
          }
      in
      let digest =
        digest_of_string
          (String.concat ";"
             (Printf.sprintf "winner=%s"
                r.Portfolio.winner.Portfolio.member.Portfolio.label
             :: List.map
                  (fun (o : Portfolio.member_outcome) ->
                    Printf.sprintf "%s=%.6f" o.Portfolio.member.Portfolio.label
                      o.Portfolio.length)
                  r.Portfolio.members))
      in
      let best_single =
        List.fold_left
          (fun acc (o : Portfolio.member_outcome) ->
            Float.min acc o.Portfolio.length)
          infinity r.Portfolio.members
      in
      let rec monotone = function
        | (a : Ftes_optim.Incumbent.entry) :: (b :: _ as rest) ->
            b.Ftes_optim.Incumbent.cost < a.Ftes_optim.Incumbent.cost -. 1e-9
            && monotone rest
        | [ _ ] | [] -> true
      in
      let error =
        if r.Portfolio.winner.Portfolio.length > best_single +. 1e-6 then
          Some
            (Invariant_broken
               (Printf.sprintf
                  "portfolio winner %.6f worse than best single member %.6f"
                  r.Portfolio.winner.Portfolio.length best_single))
        else if not (monotone r.Portfolio.curve) then
          Some (Invariant_broken "incumbent curve is not strictly decreasing")
        else None
      in
      (r.Portfolio.winner.Portfolio.length, digest, "portfolio-quality", error)

let evaluate inst =
  let t0 = Unix.gettimeofday () in
  let length, digest, verdict, error =
    match evaluate_exn inst with
    | result -> result
    | exception Instance_error e -> (0., "", "error", Some e)
    | exception Ftcpg.Too_large cap ->
        (0., "", "error", Some (Expansion_too_large cap))
    | exception exn -> (0., "", "error", Some (Crash (Printexc.to_string exn)))
  in
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  let ok = error = None in
  Telemetry.incr c_instances;
  if not ok then Telemetry.incr c_failures;
  {
    instance = inst;
    length;
    digest;
    verdict;
    ok;
    error;
    detail = (match error with None -> "" | Some e -> error_to_string e);
    wall_ms;
  }

(* Instances run in pool-sized batches: within a batch workers pull
   instances dynamically (their costs vary by orders of magnitude), and
   the [on_outcome] progress callback fires between batches. *)
let run ?jobs ?on_outcome instances =
  let arr = Array.of_list instances in
  let total = Array.length arr in
  let batch_size =
    max 4 (2 * Option.value jobs ~default:(Par.default_jobs ()))
  in
  let done_count = ref 0 in
  let rec go pos acc =
    if pos >= total then List.concat (List.rev acc)
    else begin
      let len = min batch_size (total - pos) in
      let outcomes =
        Array.to_list (Par.map_array ?jobs evaluate (Array.sub arr pos len))
      in
      List.iter
        (fun o ->
          incr done_count;
          if Events.enabled () then
            Events.emit
              (Events.Corpus_outcome
                 {
                   id = o.instance.I.id;
                   ok = o.ok;
                   verdict = o.verdict;
                   wall_ms = o.wall_ms;
                 });
          match on_outcome with
          | Some f -> f ~done_count:!done_count ~total o
          | None -> ())
        outcomes;
      if Events.enabled () then Events.drain ();
      go (pos + len) (outcomes :: acc)
    end
  in
  go 0 []

type failure = { id : string; reason : string }

let verify ?(budget_factor = 1.) ?(complete = false) ~manifest outcomes =
  let failures = ref [] in
  let fail id reason = failures := { id; reason } :: !failures in
  List.iter
    (fun o ->
      let id = o.instance.I.id in
      if not o.ok then fail id ("execution failed: " ^ o.detail)
      else begin
        match Manifest.find manifest id with
        | None -> fail id "missing from manifest (run `ftes corpus pin`)"
        | Some (e : Manifest.entry) ->
            if e.Manifest.digest <> o.digest then
              fail id
                (Printf.sprintf "digest regression: manifest %s, got %s"
                   e.Manifest.digest o.digest);
            if Float.abs (e.Manifest.length -. o.length) > 1e-6 then
              fail id
                (Printf.sprintf "length regression: manifest %.6f, got %.6f"
                   e.Manifest.length o.length);
            if e.Manifest.verdict <> o.verdict then
              fail id
                (Printf.sprintf "verdict changed: manifest %S, got %S"
                   e.Manifest.verdict o.verdict);
            if e.Manifest.kind <> I.check_kind o.instance.I.check then
              fail id
                (Printf.sprintf "check kind changed: manifest %S, got %S"
                   e.Manifest.kind
                   (I.check_kind o.instance.I.check));
            if e.Manifest.tier <> I.tier_to_string o.instance.I.tier then
              fail id
                (Printf.sprintf "tier changed: manifest %S, got %S"
                   e.Manifest.tier
                   (I.tier_to_string o.instance.I.tier));
            let budget = budget_factor *. tier_budget_ms o.instance.I.tier in
            if o.wall_ms > budget then
              fail id
                (Printf.sprintf
                   "budget regression: %.0f ms exceeds the %s ceiling (%.0f \
                    ms)"
                   o.wall_ms
                   (I.tier_to_string o.instance.I.tier)
                   budget)
      end)
    outcomes;
  if complete then begin
    let seen = List.map (fun o -> o.instance.I.id) outcomes in
    List.iter
      (fun id ->
        if not (List.mem id seen) then
          fail id "stale manifest entry: no such instance in the registry")
      (Manifest.ids manifest)
  end;
  List.rev !failures

let pin outcomes =
  List.iter
    (fun o ->
      if not o.ok then
        invalid_arg
          (Printf.sprintf "Corpus.Runner.pin: instance %s failed: %s"
             o.instance.I.id o.detail))
    outcomes;
  {
    Manifest.version = Manifest.schema_version;
    entries =
      List.map
        (fun o ->
          {
            Manifest.id = o.instance.I.id;
            tier = I.tier_to_string o.instance.I.tier;
            kind = I.check_kind o.instance.I.check;
            length = o.length;
            digest = o.digest;
            verdict = o.verdict;
          })
        outcomes;
  }
