(** The deterministic instance registry.

    {!all} enumerates the whole corpus — 160+ pinned instances spanning
    the axes the paper's evaluation never varied:

    - DAG shape: uniform layered, deep (chain-heavy), bursty (hot-layer
      fan-out);
    - fault hypothesis [k] from 1 to 7;
    - both bus models (TDMA and contention single bus);
    - transparency density (none vs. a quarter of the objects frozen);
    - WCET heterogeneity (paper-like uniform, strongly heterogeneous,
      near-flat);
    - soft-goal variants (mixed soft/hard scheduling via [lib/soft]);
    - the paper's own examples through {!Ftes_core.Example_suite}, at
      several [k].

    The registry is a pure function: two calls return structurally
    equal lists in the same order, so the manifest digests pin every
    instance. Instance ids encode their axes (see DESIGN.md). *)

val all : unit -> Instance.t list
(** The full corpus, in stable order, ids unique. *)

val find : string -> Instance.t option
(** Lookup by id. *)

val select :
  ?tiers:Instance.tier list -> ?filter:string -> unit -> Instance.t list
(** Subset of {!all}: keep instances in one of [tiers] (all tiers when
    omitted) whose id or axis values contain [filter] as a substring
    (every instance when omitted). *)
