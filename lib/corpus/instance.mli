(** Named, pinned benchmark instances.

    A corpus instance is a fully reproducible synthesis problem plus
    the way it is checked: how its result is reduced to a digest, what
    validation it undergoes, and which runtime-budget tier it belongs
    to. Instances are pure data — building the same instance twice
    yields structurally identical problems, so digests recorded in the
    manifest pin the whole pipeline's output byte-for-byte. *)

type shape =
  | Uniform  (** Legacy layered DAG: ≈√n layers, uniform population. *)
  | Deep  (** Chain-heavy: many layers, long dependency paths. *)
  | Bursty  (** Wide: few layers with one hot layer concentrating most
                processes (fan-out/fan-in bursts). *)

type tier =
  | Smoke  (** Runs in well under a second; the per-push CI gate. *)
  | Standard  (** Seconds each; per-push CI still covers these. *)
  | Heavy  (** The weekly full-corpus sweep only. *)

type check =
  | Exhaustive
      (** Conditional schedule tables, digest of the rendered tables,
          exhaustive fault-injection validation. *)
  | Sampled of int
      (** Tables as above; validation on that many sampled scenarios
          (deterministic seed derived from the instance id). *)
  | Symbolic
      (** Tables (static when the application is fully transparent,
          conditional otherwise), validated with the symbolic
          scenario-family backend ({!Ftes_sim.Symbolic}) — full
          scenario coverage at fault hypotheses whose explicit arena
          is out of reach. *)
  | Estimate
      (** Schedule-length estimator only (instances whose FT-CPG is out
          of reach); digest of the rendered estimator result. *)
  | Soft of { soft_prob : float }
      (** Mixed soft/hard scheduling: a deterministic soft/hard split
          (probability [soft_prob], seeded by the generator seed) and a
          digest of the rendered placements and utilities. *)
  | Portfolio of { iterations : int }
      (** Deterministic strategy-portfolio race ([iterations] per
          member, no wall deadline, no incumbent exchange, [jobs = 1]):
          the digest pins the winner and every member's final length,
          and the run asserts the portfolio invariants — the winner
          matches the best single member (match-or-beat) and the
          incumbent curve is monotone. *)

type source =
  | Example of string
      (** A constructor of {!Ftes_core.Example_suite}: ["fig3"],
          ["fig5"], ["cruise"], ["vision"] or ["tradeoff"]. *)
  | Generated of Ftes_workload.Gen.spec

type t = {
  id : string;  (** Unique, stable name (see DESIGN.md for the scheme). *)
  source : source;
  k : int;  (** Fault hypothesis. *)
  check : check;
  tier : tier;
  axes : (string * string) list;
      (** Tag set used for coverage assertions and CLI filtering, e.g.
          [("shape", "bursty"); ("bus", "single"); ("k", "4")]. *)
}

val problem : t -> Ftes_ftcpg.Problem.t
(** Build the instance's synthesis problem (default policies + fastest
    mapping for generated sources; the example constructors for example
    sources). Pure: repeated calls are structurally identical.
    @raise Invalid_argument on an unknown example name. *)

val tier_to_string : tier -> string
val tier_of_string : string -> tier option
val check_kind : check -> string
(** ["table-exhaustive"] | ["table-sampled"] | ["table-symbolic"] |
    ["estimate"] | ["soft"] | ["portfolio-quality"] — the manifest's
    [kind] field. *)

val axis : t -> string -> string option
(** Value of one axis tag. *)

val stable_seed : string -> int
(** Deterministic non-negative seed derived from an instance id (FNV-1a)
    — seeds sampled validation so runs are reproducible without storing
    extra state. *)
