(** Cross-commit trajectory store: an append-only JSONL history of
    per-instance quality/runtime results.

    The corpus manifest gates a {e single} run against pinned digests;
    BENCH_PRn.json files are disconnected snapshots. This store is the
    connective tissue: every corpus run and bench invocation can append
    one line per instance — keyed by (commit, instance id, schema
    version) — to [corpus/trajectory.jsonl], and [ftes corpus trend]
    compares the most recent window per instance, exiting non-zero on
    runtime or quality regressions beyond a tolerance band.

    The file is plain NDJSON so external tooling (jq, a dashboard) can
    consume it directly, and append-only so concurrent CI jobs can
    [O_APPEND] without coordination. Entries whose [schema] differs
    from {!schema_version} are preserved on disk but ignored by
    {!trend} — a schema bump never invalidates the history file. *)

type entry = {
  commit : string;  (** Git commit id, or ["unknown"]. *)
  schema : int;  (** {!schema_version} at write time. *)
  id : string;  (** Corpus instance id or ["bench:<section>"] key. *)
  ok : bool;
  length : float;  (** Quality: schedule length (or section metric). *)
  wall_ms : float;  (** Runtime. *)
}

val schema_version : int

val entry_to_json : entry -> string
(** One JSON object on a single line, no trailing newline. *)

val append : string -> entry list -> unit
(** [append path entries] appends one line per entry, creating the file
    if needed. Raises [Sys_error] on an unwritable path. *)

val load : string -> (entry list, string) result
(** Parse a trajectory file in line order. Blank lines are skipped;
    an unparseable line is an [Error] naming its line number. Entries
    from other schema versions are dropped (the caller never sees
    them). A missing file is [Ok []] — an empty history, not an
    error. *)

(** {1 Trend analysis} *)

type comparison = {
  cid : string;  (** Instance id. *)
  runs : int;  (** Entries in the window (including the latest). *)
  latest : entry;
  baseline_wall_ms : float;
      (** Median wall time of the prior runs in the window. *)
  baseline_length : float;  (** Best (minimum) prior length. *)
  problems : string list;
      (** Human-readable regression descriptions; empty = clean. *)
}

val trend :
  ?window:int ->
  ?wall_tolerance:float ->
  ?wall_floor_ms:float ->
  ?length_tolerance:float ->
  entry list ->
  comparison list
(** [trend entries] groups by instance id, keeps the last [window]
    (default 5) entries per id in file order, and compares the latest
    run against the prior ones. An instance regresses when:

    - its latest run failed while any prior windowed run succeeded;
    - its latest length exceeds the best prior length by more than
      [length_tolerance] (default [1e-6], absolute — lengths are
      deterministic, so any growth is a real quality loss);
    - its latest wall time is above [wall_floor_ms] (default [10.]) {e
      and} exceeds the {e median} prior wall time by more than a factor
      of [1 +. wall_tolerance] (default [0.5]; median so one noisy
      historical run cannot poison the baseline, and the absolute floor
      because sub-millisecond instances jitter by whole multiples
      without anything having regressed).

    Instances with fewer than 2 windowed runs are omitted — there is
    nothing to compare yet. Results are sorted by id. *)

val pp_comparison : Format.formatter -> comparison -> unit
