(** Corpus execution: evaluate instances (in parallel), gate the
    outcomes against the manifest, or pin a new manifest.

    Evaluation is deterministic: tables are digest-identical for every
    jobs value (pinned elsewhere), the estimator and the soft scheduler
    are pure, and sampled validation draws from a seed derived from the
    instance id — so {!verify} failures are real regressions, never
    scheduling noise. Only [wall_ms] varies between runs; the manifest
    stores budget {e tiers}, not measured times, keeping the checked-in
    file machine-independent. *)

type error =
  | No_tables
      (** Synthesis completed but produced no conditional schedule
          tables (expansion over budget or scheduling infeasible) —
          there is nothing to digest or validate. *)
  | Expansion_too_large of int
      (** FT-CPG expansion exceeded the vertex budget. *)
  | Violations of { count : int; first : string }
      (** Fault-injection validation reported violations. *)
  | Invariant_broken of string
      (** A result-level invariant did not hold (degenerate estimator
          length, soft-utility ordering). *)
  | Crash of string  (** Any other exception, rendered. *)

val error_to_string : error -> string

type outcome = {
  instance : Instance.t;
  length : float;
  digest : string;
  verdict : string;
  ok : bool;  (** The instance executed cleanly (synthesized, validated
                  without violations, invariants held). *)
  error : error option;
      (** The typed failure when [not ok]; [None] iff [ok]. Instances
          never panic the runner — every failure mode (including the
          historical [failwith]/[assert false] paths) lands here and is
          reported by {!verify} / [ftes corpus verify]. *)
  detail : string;  (** [error_to_string error] when [not ok]. *)
  wall_ms : float;
}

val tier_budget_ms : Instance.tier -> float
(** Per-instance runtime ceiling: 5 s (smoke), 30 s (standard), 120 s
    (heavy) — generous bounds that catch complexity blow-ups, not
    machine jitter. *)

val evaluate : Instance.t -> outcome
(** Run one instance end to end according to its {!Instance.check}.
    Exceptions (e.g. FT-CPG expansion overflow) are captured as a
    failed outcome rather than propagated. *)

val run :
  ?jobs:int ->
  ?on_outcome:(done_count:int -> total:int -> outcome -> unit) ->
  Instance.t list ->
  outcome list
(** Evaluate the instances on the [Par] domain pool, in batches, calling
    [on_outcome] as each batch lands (per-instance progress streaming).
    Results are in input order regardless of [jobs]. *)

type failure = { id : string; reason : string }

val verify :
  ?budget_factor:float ->
  ?complete:bool ->
  manifest:Manifest.t ->
  outcome list ->
  failure list
(** Gate outcomes against the manifest. A failure is reported when an
    instance failed to execute, is missing from the manifest, differs
    from its pinned digest / length (tolerance 1e-6) / verdict / tier,
    or exceeded [budget_factor] (default 1) times its tier ceiling.
    With [complete] (the outcomes cover the whole corpus), stale
    manifest entries with no matching instance are failures too. *)

val pin : outcome list -> Manifest.t
(** Build the manifest recording these outcomes.
    @raise Invalid_argument if any outcome is not [ok] — a broken
    instance must not be pinned as an oracle. *)
