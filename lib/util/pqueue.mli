(** Mutable binary-heap priority queue.

    Minimum-first with respect to a user-supplied comparison, used by the
    list schedulers (ready queues ordered by priority) and the
    discrete-event simulator (event queues ordered by time). *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** Empty queue; the smallest element w.r.t. [cmp] is served first. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val copy : 'a t -> 'a t
(** Independent queue with the same contents: mutations of either side
    are invisible to the other (elements themselves are shared). Used by
    the conditional scheduler to branch a track's pending-condition
    queue at a fork. *)

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty queue. *)

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t

val to_sorted_list : 'a t -> 'a list
(** Drains a copy of the queue; the queue itself is unchanged. *)

val iter_unordered : ('a -> unit) -> 'a t -> unit
(** Iterate in unspecified order without draining. *)
