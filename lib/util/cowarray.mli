(** Persistent fixed-length array with O(log n) copy-on-write updates.

    The conditional scheduler forks an execution track at every
    condition revelation; each branch continues with its own view of
    every per-node resource timeline. Copying the whole timeline array
    on each commit is O(nodes) per commit and O(nodes · commits) per
    track — this structure shares all untouched indices between
    branches and copies only the path to the written slot.

    The representation is a balanced binary tree built once over the
    index range. It is purely functional: no version is ever mutated,
    so scheduler branches running on different domains may read any
    snapshot concurrently without synchronization (which rules out the
    classic Baker rerooting representation — rerooting mutates on
    read). *)

type 'a t

val of_array : 'a array -> 'a t
(** The input array is copied; later mutations of it are not seen. *)

val init : int -> (int -> 'a) -> 'a t
val make : int -> 'a -> 'a t

val length : 'a t -> int

val get : 'a t -> int -> 'a
(** @raise Invalid_argument on out-of-bounds index. *)

val set : 'a t -> int -> 'a -> 'a t
(** Persistent update: returns a new version, sharing all other slots.
    @raise Invalid_argument on out-of-bounds index. *)

val to_array : 'a t -> 'a array
val iteri : (int -> 'a -> unit) -> 'a t -> unit
