(** Live, typed progress events: a bounded, non-blocking per-domain
    event stream with subscriber sinks.

    {!Telemetry} is post-mortem: spans and counters are dumped after a
    run ends. This module is the live half of observability — while a
    multi-minute tabu search or a 1e9-scenario symbolic validation is
    running, the synthesis pipeline {e emits} typed progress events
    (phase start/finish, optimizer incumbent improvements, validation
    progress, per-instance corpus outcomes, sampled GC gauges) and
    registered {e sinks} consume them: NDJSON to a file or stderr, a
    live TTY progress renderer, or an arbitrary in-process callback.
    This is the substrate both the service front end (spans →
    server-sent progress) and the cross-commit trajectory store build
    on.

    {b Never block, never crash.} Each domain owns one bounded
    single-producer ring (registered via [Domain.DLS], like the
    telemetry buffers). {!emit} either writes into the calling domain's
    ring or — when the ring is full because no drain has happened —
    drops the event and bumps the process-wide {!dropped} counter. An
    emitter therefore never waits on a consumer, never allocates
    unboundedly, and never raises.

    {b Delivery.} Sinks run on the {e draining} domain, not the
    emitting one: {!drain} (called from phase boundaries, optimizer
    iterations and validation batch loops — always from outside the
    [Par] worker pool) collects the pending events of every ring,
    orders them by their global sequence number and feeds each to every
    registered sink. Events emitted by pool workers during one fan-out
    are delivered at the next drain point after the fan-out returns.

    {b Determinism.} Like telemetry, events observe and never steer: no
    RNG is consumed, no ordering is changed, no result depends on an
    emitted value. Search results are bit-identical with events on or
    off and for every [jobs] value (pinned by [test/test_events.ml]).
    The event {e stream} itself is not deterministic — worker
    interleaving and wall-clock timestamps vary between runs.

    {b Pay for what you use.} With events disabled, {!emit} is one
    atomic load and a branch; guard any payload construction with
    {!enabled} so the off path allocates nothing. *)

(** {1 Event types} *)

type payload =
  | Phase_start of { phase : string }
  | Phase_finish of { phase : string; wall_s : float }
  | Incumbent of {
      source : string;
          (** Which engine improved: ["tabu"], ["descent.policy"],
              ["descent.remap"], ["checkpoint"]. *)
      cost : float;  (** The new best objective (schedule length). *)
      evals : int;  (** Design evaluations performed so far by that
                        engine invocation. *)
      wall_s : float;  (** Seconds since the engine invocation began. *)
    }
  | Validation_progress of {
      backend : string;  (** ["explicit"] | ["symbolic"]. *)
      cleared : int;
          (** Scenarios replayed (explicit) or cube families processed
              (symbolic) so far. *)
      total : int;
          (** Scenario count for the explicit backend; [0] for the
              symbolic backend (the cube count is not known up
              front). *)
    }
  | Corpus_outcome of {
      id : string;
      ok : bool;
      verdict : string;
      wall_ms : float;
    }
  | Gc_sample of {
      phase : string;
      minor_words : float;
      major_words : float;
      heap_mb : float;
      major_collections : int;
    }  (** [Gc.quick_stat] deltas are not taken — these are the
           process-lifetime values at the end of [phase]. *)
  | Worker_start of { member : string }
      (** A portfolio member began running (label is the member's
          configuration name, e.g. ["MXR#0"] or ["LNS#4"]). *)
  | Worker_finish of { member : string; cost : float; wall_s : float }
      (** A portfolio member finished with its final objective and its
          own wall clock. Together with the ["portfolio:*"]-sourced
          {!Incumbent} events these let [--progress] show the race
          live. *)

type event = {
  seq : int;  (** Global emission order (atomic ticket). *)
  t : float;  (** Seconds since {!enable}. *)
  dom : int;  (** Emitting domain id. *)
  payload : payload;
}

(** {1 Recording switch} *)

val enable : ?capacity:int -> unit -> unit
(** Start recording. [capacity] (default 4096) bounds each per-domain
    ring; existing rings are resized and cleared. Resets the clock
    origin and the {!dropped} counter. Call only while the [Par] pool
    is idle. *)

val disable : unit -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Drop all buffered events and zero {!dropped}. Sinks stay
    registered. *)

(** {1 Emission} *)

val emit : payload -> unit
(** Non-blocking append to the calling domain's ring; drops (and
    counts) when the ring is full; no-op while disabled. Guard payload
    construction with {!enabled} to keep the disabled path
    allocation-free. *)

val dropped : unit -> int
(** Events dropped since the last {!enable}/{!reset} because a ring was
    full. Exposed so overflow is an observable number, never a block or
    a crash. *)

val now : unit -> float
(** Seconds since {!enable} on the event clock; [0.] while disabled.
    Engine instrumentation takes [now] deltas for [Incumbent.wall_s] so
    emitters need no clock dependency of their own. *)

val with_phase : string -> (unit -> 'a) -> 'a
(** [with_phase name f] brackets [f] with [Phase_start]/[Phase_finish]
    events, samples the GC ([Gc.quick_stat] → [Gc_sample]) at the end
    of the phase, and drains on both edges. [f ()] with one branch when
    disabled. Exceptions re-raise after the finish event. *)

(** {1 Sinks and draining} *)

val add_sink : (event -> unit) -> int
(** Register a sink; returns a handle for {!remove_sink}. Sinks run on
    the draining domain in event order. A sink must not call back into
    this module's drain. *)

val remove_sink : int -> unit

val drain : unit -> unit
(** Deliver every buffered event to the registered sinks, ordered by
    sequence number. No-op from inside a [Par] worker and when another
    drain is in flight ([Mutex.try_lock] — emitters and other drain
    points never wait). Instrumented call sites drain at coarse points:
    phase edges, optimizer iterations, validation batches; long
    fan-outs deliver at the next drain after they return. *)

(** {1 Rendering} *)

val to_json : event -> string
(** One JSON object (single line, no trailing newline): always [seq],
    [t], [dom] and a [type] tag (["phase-start"], ["phase-finish"],
    ["incumbent"], ["validation-progress"], ["corpus-outcome"],
    ["gc-sample"], ["worker-start"], ["worker-finish"]), plus the
    payload's fields. *)

val ndjson_sink : out_channel -> event -> unit
(** A sink writing {!to_json} plus a newline per event, flushed per
    drain batch (the channel is flushed on every event — callers
    wanting buffering can wrap the channel). Close the channel after a
    final {!drain}. *)

val progress_sink : out_channel -> event -> unit
(** A human-oriented live renderer (one line per event, flushed):
    phases, incumbents with cost/evals/time, validation progress,
    corpus outcomes. Intended for [ftes synthesize --progress] on
    stderr. *)
