(** Domain-pool parallel execution with deterministic ordered merge.

    The validator replays every fault scenario independently, the tabu
    search evaluates every candidate move independently, and the
    experiment sweeps synthesize every workload instance independently —
    all embarrassingly parallel. This module fans such task lists out
    over a persistent pool of OCaml 5 domains and merges the results
    {e by input index}, so the output is byte-identical to the
    sequential run regardless of how the domains interleave.

    Worker domains are spawned lazily on first use and parked on a
    condition variable between calls, so the per-call dispatch cost is
    a mutex round-trip rather than a [Domain.spawn]/[Domain.join]
    (milliseconds). This matters in the optimization inner loop: once
    the evaluation cache absorbs most candidate evaluations, each
    fan-out runs microseconds of real work, and a spawn-per-call pool
    would cost more than it saves. [~jobs] remains an upper bound on
    the domains working on any one call even after the pool has grown
    larger for another. The pool is torn down by an [at_exit] hook.

    Scheduling is dynamic (workers pull the next task from a shared
    atomic counter), which balances uneven task costs — fault scenarios
    and candidate configurations vary widely in evaluation time.

    Nesting is safe but never multiplies domains: a [Par] call issued
    from inside a worker runs sequentially in that worker. Callers can
    therefore parallelize an outer sweep whose tasks themselves call
    parallel validation without oversubscribing the machine.

    [~jobs:1] is the exact sequential code path ([List.map] /
    [List.concat_map] / [List.init]); omitting [jobs] uses
    {!default_jobs}. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the pool size used when
    [?jobs] is omitted. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is [List.map f xs], computed on up to [jobs]
    domains. Results are merged in input order. If any [f x] raises,
    the first exception (in scheduling order) is re-raised in the
    calling domain after the pool drains. *)

val concat_map : ?jobs:int -> ('a -> 'b list) -> 'a list -> 'b list
(** [concat_map ~jobs f xs] is [List.concat_map f xs]: per-item result
    lists are concatenated in input order. *)

val init : ?jobs:int -> int -> (int -> 'a) -> 'a list
(** [init ~jobs n f] is [List.init n f] with [f] applied on the pool. *)

val map_array : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** Array analogue of {!map}. *)

val map_live :
  ?jobs:int -> poll:(unit -> unit) -> ('a -> 'b) -> 'a list -> 'b list
(** Like {!map}, but the calling domain never executes tasks: up to
    [jobs] {e pool workers} (not [jobs - 1]) race through the batch
    while the caller repeatedly runs [poll] in its completion-wait
    loop. Built for live observability — pass [Ftes_util.Events.drain]
    (or any sink pump) as [poll] and events emitted by the workers are
    delivered while the fan-out is still in flight, instead of at the
    next drain after it returns. [poll] runs only on the calling
    domain, every few milliseconds; it must not dispatch another
    parallel batch. With [jobs <= 1], from inside a worker, or when the
    pool is unavailable, tasks run sequentially in the caller with
    [poll] invoked between tasks. Result order and the
    first-exception-wins error contract match {!map}. *)

val map_ranges :
  ?jobs:int -> ?chunks_per_job:int -> int -> (int -> int -> 'a) -> 'a list
(** [map_ranges ~jobs n f] splits the index space [0, n)] into coarse
    contiguous ranges — about [chunks_per_job] (default 4) per domain,
    balanced to within one item — and applies [f lo hi] to each range
    on the pool. Results come back in range order, so
    [List.concat (map_ranges n f)] over a range-local fold is
    byte-identical to the sequential left-to-right fold regardless of
    [jobs]. This is the batch-grained alternative to {!map} for hot
    loops where a task per item is too fine: each range amortizes
    per-task dispatch and lets the worker keep range-local scratch
    state. [n <= 0] yields [[]]; [jobs <= 1] (or a nested call from a
    worker) runs [f 0 n] sequentially. *)

val in_worker : unit -> bool
(** True when called from inside a [Par] worker domain (where nested
    [Par] calls run sequentially). Exposed for tests and diagnostics. *)

val pool_size : unit -> int
(** Number of parked worker domains currently alive (excluding the
    calling domain). Also published as the [par.pool_size] telemetry
    gauge on every fan-out. *)

val shutdown : unit -> unit
(** Join every parked worker domain. Call from a test or bench main
    before exit so the run does not leak parked domains; an [at_exit]
    hook calls it as a backstop. The pool re-arms itself: a parallel
    call issued after [shutdown] lazily respawns workers. *)
