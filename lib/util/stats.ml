let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stdev xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
      let m = mean xs in
      let n = float_of_int (List.length xs) in
      let sq = List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
      sqrt (sq /. (n -. 1.))

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty list"
  | x :: xs ->
      List.fold_left (fun (lo, hi) v -> (min lo v, max hi v)) (x, x) xs

let sorted xs = List.sort compare xs

let median xs =
  match sorted xs with
  | [] -> 0.
  | s ->
      let n = List.length s in
      if n mod 2 = 1 then List.nth s (n / 2)
      else (List.nth s ((n / 2) - 1) +. List.nth s (n / 2)) /. 2.

let percentile p xs =
  match sorted xs with
  | [] -> invalid_arg "Stats.percentile: empty list"
  | s ->
      let n = List.length s in
      let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
      let idx = max 0 (min (n - 1) (rank - 1)) in
      List.nth s idx

let percent_deviation ~baseline v =
  if baseline = 0. then 0. else (v -. baseline) /. baseline *. 100.

let histogram ~bounds xs =
  let n = List.length bounds in
  if n = 0 then invalid_arg "Stats.histogram: empty bounds";
  let b = Array.of_list bounds in
  for i = 1 to n - 1 do
    if b.(i) <= b.(i - 1) then
      invalid_arg "Stats.histogram: bounds not strictly increasing"
  done;
  let counts = Array.make (n + 1) 0 in
  List.iter
    (fun x ->
      let rec find i = if i >= n || x <= b.(i) then i else find (i + 1) in
      let i = find 0 in
      counts.(i) <- counts.(i) + 1)
    xs;
  counts
