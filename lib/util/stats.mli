(** Small statistics helpers for the experiment harnesses. *)

val mean : float list -> float
(** Arithmetic mean; 0. on the empty list. *)

val stdev : float list -> float
(** Sample standard deviation (n-1 denominator); 0. for fewer than two
    samples. *)

val min_max : float list -> float * float
(** @raise Invalid_argument on the empty list. *)

val median : float list -> float
(** 0. on the empty list. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [0, 100], nearest-rank method.
    @raise Invalid_argument on the empty list. *)

val percent_deviation : baseline:float -> float -> float
(** [(v - baseline) / baseline * 100.]; 0. when [baseline = 0.]. *)

val histogram : bounds:float list -> float list -> int array
(** [histogram ~bounds xs] buckets [xs] by the ascending upper bounds:
    the result has [List.length bounds + 1] cells, cell [i] counting the
    values [x] with [bounds.(i-1) < x <= bounds.(i)] and the final cell
    counting the overflow ([x] above the last bound). Used by the
    {!Telemetry} exporters.
    @raise Invalid_argument when [bounds] is empty or not strictly
    increasing. *)
