(* Process-wide instrumentation: spans into per-domain append-only
   buffers, atomic counters/gauges/histograms, a summary tree and a
   Chrome trace-event exporter. See telemetry.mli for the contract. *)

type value = Int of int | Float of float | Str of string | Bool of bool

type event =
  | Begin of {
      id : int;
      parent : int;
      name : string;
      cat : string;
      ts : float;
      args : (string * value) list;
    }
  | End of { id : int; ts : float }

(* ------------------------------------------------------------------ *)
(* Recording switch                                                    *)
(* ------------------------------------------------------------------ *)

let on = Atomic.make false
let enable () = Atomic.set on true
let disable () = Atomic.set on false
let enabled () = Atomic.get on

(* Bumped by [reset]: a span that began before a reset must not emit
   its end event into the freshly cleared buffer. *)
let epoch = Atomic.make 0

(* ------------------------------------------------------------------ *)
(* Per-domain event buffers                                            *)
(* ------------------------------------------------------------------ *)

type buf = {
  dom : int;
  mutable evs : event array;
  mutable len : int;
  mutable stack : int list;  (* open span ids, innermost first *)
  mutable last_ts : float;
}

let filler = End { id = 0; ts = 0. }

(* Registry of every domain's buffer. The mutex guards registration and
   the exporters' reads; recording itself only touches the calling
   domain's own buffer. *)
let registry_lock = Mutex.create ()
let registry : buf list ref = ref []

let buf_key : buf Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let b =
        {
          dom = (Domain.self () :> int);
          evs = Array.make 256 filler;
          len = 0;
          stack = [];
          last_ts = 0.;
        }
      in
      Mutex.lock registry_lock;
      registry := b :: !registry;
      Mutex.unlock registry_lock;
      b)

let my_buf () = Domain.DLS.get buf_key

let push b ev =
  if b.len = Array.length b.evs then begin
    let bigger = Array.make (2 * b.len) filler in
    Array.blit b.evs 0 bigger 0 b.len;
    b.evs <- bigger
  end;
  b.evs.(b.len) <- ev;
  b.len <- b.len + 1

(* Wall clock, clamped to be non-decreasing within the buffer so span
   nesting is always well-formed even if gettimeofday steps back. *)
let now b =
  let t = Unix.gettimeofday () in
  let t = if t < b.last_ts then b.last_ts else t in
  b.last_ts <- t;
  t

let next_id = Atomic.make 1

let with_span ?(cat = "ftes") ?(args = []) name f =
  if not (Atomic.get on) then f ()
  else begin
    let b = my_buf () in
    let e0 = Atomic.get epoch in
    let id = Atomic.fetch_and_add next_id 1 in
    let parent = match b.stack with [] -> 0 | p :: _ -> p in
    push b (Begin { id; parent; name; cat; ts = now b; args });
    b.stack <- id :: b.stack;
    Fun.protect
      ~finally:(fun () ->
        if Atomic.get epoch = e0 then begin
          (match b.stack with
          | top :: rest when top = id -> b.stack <- rest
          | _ -> ());
          push b (End { id; ts = now b })
        end)
      f
  end

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

type counter = { cname : string; cell : int Atomic.t }

let counters_lock = Mutex.create ()
let counter_registry : (string, counter) Hashtbl.t = Hashtbl.create 32

let counter name =
  Mutex.lock counters_lock;
  let c =
    match Hashtbl.find_opt counter_registry name with
    | Some c -> c
    | None ->
        let c = { cname = name; cell = Atomic.make 0 } in
        Hashtbl.add counter_registry name c;
        c
  in
  Mutex.unlock counters_lock;
  c

let add c n = if Atomic.get on then ignore (Atomic.fetch_and_add c.cell n)
let incr c = add c 1
let counter_value c = Atomic.get c.cell

let counters () =
  Mutex.lock counters_lock;
  let cs =
    Hashtbl.fold (fun name c acc -> (name, Atomic.get c.cell) :: acc)
      counter_registry []
  in
  Mutex.unlock counters_lock;
  List.sort compare cs

(* ------------------------------------------------------------------ *)
(* Gauges                                                              *)
(* ------------------------------------------------------------------ *)

let gauges_lock = Mutex.create ()
let gauge_registry : (string, float Atomic.t) Hashtbl.t = Hashtbl.create 16

let set_gauge name v =
  if Atomic.get on then begin
    Mutex.lock gauges_lock;
    (match Hashtbl.find_opt gauge_registry name with
    | Some cell -> Atomic.set cell v
    | None -> Hashtbl.add gauge_registry name (Atomic.make v));
    Mutex.unlock gauges_lock
  end

let gauges () =
  Mutex.lock gauges_lock;
  let gs =
    Hashtbl.fold (fun name cell acc -> (name, Atomic.get cell) :: acc)
      gauge_registry []
  in
  Mutex.unlock gauges_lock;
  List.sort compare gs

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

type histogram = {
  hname : string;
  bounds : float array;  (* ascending upper bounds *)
  buckets : int Atomic.t array;  (* length bounds + 1 (overflow) *)
  total : int Atomic.t;
  sum : float Atomic.t;
}

(* Exponential decades suited to latencies in seconds. *)
let default_bounds =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.; 10.; 100. |]

let check_bounds name bounds =
  if Array.length bounds = 0 then
    invalid_arg (Printf.sprintf "Telemetry.histogram %s: empty bounds" name);
  for i = 1 to Array.length bounds - 1 do
    if bounds.(i) <= bounds.(i - 1) then
      invalid_arg
        (Printf.sprintf "Telemetry.histogram %s: bounds not increasing" name)
  done

let hist_lock = Mutex.create ()
let hist_registry : (string, histogram) Hashtbl.t = Hashtbl.create 16

let histogram ?(bounds = default_bounds) name =
  check_bounds name bounds;
  Mutex.lock hist_lock;
  let h =
    match Hashtbl.find_opt hist_registry name with
    | Some h ->
        if h.bounds <> bounds then begin
          Mutex.unlock hist_lock;
          invalid_arg
            (Printf.sprintf "Telemetry.histogram %s: conflicting bounds" name)
        end;
        h
    | None ->
        let h =
          {
            hname = name;
            bounds = Array.copy bounds;
            buckets =
              Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
            total = Atomic.make 0;
            sum = Atomic.make 0.;
          }
        in
        Hashtbl.add hist_registry name h;
        h
  in
  Mutex.unlock hist_lock;
  h

let rec atomic_add_float cell d =
  let v = Atomic.get cell in
  if not (Atomic.compare_and_set cell v (v +. d)) then atomic_add_float cell d

let bucket_of h x =
  let n = Array.length h.bounds in
  let rec find i = if i >= n then n else if x <= h.bounds.(i) then i else find (i + 1) in
  find 0

let observe h x =
  if Atomic.get on then begin
    ignore (Atomic.fetch_and_add h.buckets.(bucket_of h x) 1);
    ignore (Atomic.fetch_and_add h.total 1);
    atomic_add_float h.sum x
  end

(* ------------------------------------------------------------------ *)
(* Reset / dump                                                        *)
(* ------------------------------------------------------------------ *)

let reset () =
  Atomic.incr epoch;
  Mutex.lock registry_lock;
  List.iter
    (fun b ->
      b.len <- 0;
      b.stack <- [])
    !registry;
  Mutex.unlock registry_lock;
  Mutex.lock counters_lock;
  Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) counter_registry;
  Mutex.unlock counters_lock;
  Mutex.lock gauges_lock;
  Hashtbl.reset gauge_registry;
  Mutex.unlock gauges_lock;
  Mutex.lock hist_lock;
  Hashtbl.iter
    (fun _ h ->
      Array.iter (fun c -> Atomic.set c 0) h.buckets;
      Atomic.set h.total 0;
      Atomic.set h.sum 0.)
    hist_registry;
  Mutex.unlock hist_lock

let dump () =
  Mutex.lock registry_lock;
  let snap =
    List.map
      (fun b -> (b.dom, Array.to_list (Array.sub b.evs 0 b.len)))
      !registry
  in
  Mutex.unlock registry_lock;
  List.sort (fun (a, _) (b, _) -> compare a b) snap

(* ------------------------------------------------------------------ *)
(* Summary tree                                                        *)
(* ------------------------------------------------------------------ *)

type node = {
  mutable total : float;
  mutable self : float;
  mutable count : int;
  children : (string, node) Hashtbl.t;
}

let new_node () = { total = 0.; self = 0.; count = 0; children = Hashtbl.create 4 }

let find_node tbl name =
  match Hashtbl.find_opt tbl name with
  | Some n -> n
  | None ->
      let n = new_node () in
      Hashtbl.add tbl name n;
      n

type frame = {
  fid : int;
  fnode : node;
  fstart : float;
  mutable child_time : float;
}

(* Fold every domain's event stream into one tree keyed by span name
   within parent: totals aggregate across domains and across calls. *)
let build_tree () =
  let roots : (string, node) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (_dom, evs) ->
      let stack = ref [] in
      List.iter
        (fun ev ->
          match ev with
          | Begin { id; name; ts; _ } ->
              let tbl =
                match !stack with
                | [] -> roots
                | f :: _ -> f.fnode.children
              in
              stack :=
                { fid = id; fnode = find_node tbl name; fstart = ts;
                  child_time = 0. }
                :: !stack
          | End { id; ts } -> (
              match !stack with
              | f :: rest when f.fid = id ->
                  stack := rest;
                  let dur = ts -. f.fstart in
                  f.fnode.total <- f.fnode.total +. dur;
                  f.fnode.self <- f.fnode.self +. (dur -. f.child_time);
                  f.fnode.count <- f.fnode.count + 1;
                  (match rest with
                  | parent :: _ -> parent.child_time <- parent.child_time +. dur
                  | [] -> ())
              | _ -> () (* orphan end: span began before a reset *)))
        evs)
    (dump ());
  roots

let ms s = s *. 1e3

let rec pp_tree ppf ~indent tbl =
  let entries =
    Hashtbl.fold (fun name n acc -> (name, n) :: acc) tbl []
    |> List.sort (fun (_, a) (_, b) -> compare b.total a.total)
  in
  List.iter
    (fun (name, n) ->
      Format.fprintf ppf "  %s%-*s %6d calls %10.2f ms total %10.2f ms self@,"
        (String.make indent ' ')
        (max 1 (36 - indent))
        name n.count (ms n.total) (ms n.self);
      pp_tree ppf ~indent:(indent + 2) n.children)
    entries

let hist_snapshot h =
  let buckets = Array.map Atomic.get h.buckets in
  (buckets, Atomic.get h.total, Atomic.get h.sum)

(* Approximate percentiles from the fixed buckets: one representative
   sample per bucket midpoint, weighted by its count, fed through
   [Stats.percentile]. *)
let hist_samples h buckets =
  let n = Array.length h.bounds in
  let rep i =
    if i = 0 then h.bounds.(0) /. 2.
    else if i < n then (h.bounds.(i - 1) +. h.bounds.(i)) /. 2.
    else h.bounds.(n - 1)
  in
  let out = ref [] in
  Array.iteri
    (fun i c ->
      for _ = 1 to c do
        out := rep i :: !out
      done)
    buckets;
  !out

let pp_summary ppf () =
  Format.fprintf ppf "@[<v>spans (total wall, self = total - children):@,";
  let roots = build_tree () in
  if Hashtbl.length roots = 0 then Format.fprintf ppf "  (none recorded)@,"
  else pp_tree ppf ~indent:0 roots;
  let cs = List.filter (fun (_, v) -> v <> 0) (counters ()) in
  Format.fprintf ppf "counters:@,";
  if cs = [] then Format.fprintf ppf "  (none)@,"
  else
    List.iter (fun (name, v) -> Format.fprintf ppf "  %-36s %12d@," name v) cs;
  let gs = gauges () in
  Format.fprintf ppf "gauges:@,";
  if gs = [] then Format.fprintf ppf "  (none)@,"
  else
    List.iter (fun (name, v) -> Format.fprintf ppf "  %-36s %12g@," name v) gs;
  Format.fprintf ppf "histograms:@,";
  Mutex.lock hist_lock;
  let hs =
    Hashtbl.fold (fun _ h acc -> h :: acc) hist_registry []
    |> List.sort (fun a b -> compare a.hname b.hname)
  in
  Mutex.unlock hist_lock;
  let printed = ref false in
  List.iter
    (fun h ->
      let buckets, total, sum = hist_snapshot h in
      if total > 0 then begin
        printed := true;
        let samples = hist_samples h buckets in
        Format.fprintf ppf
          "  %-36s %8d obs  mean %10.3g  p50 %10.3g  p99 %10.3g@," h.hname
          total
          (sum /. float_of_int total)
          (Stats.percentile 50. samples)
          (Stats.percentile 99. samples)
      end)
    hs;
  if not !printed then Format.fprintf ppf "  (none)@,";
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Chrome trace-event JSON                                             *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_value = function
  | Int i -> string_of_int i
  | Float f ->
      if Float.is_finite f then Printf.sprintf "%.6g" f
      else Printf.sprintf "\"%s\"" (string_of_float f)
  | Str s -> Printf.sprintf "\"%s\"" (json_escape s)
  | Bool b -> string_of_bool b

let json_args args =
  String.concat ", "
    (List.map
       (fun (k, v) -> Printf.sprintf "\"%s\": %s" (json_escape k) (json_value v))
       args)

let to_chrome_json () =
  let per_dom = dump () in
  let t0 =
    List.fold_left
      (fun acc (_, evs) ->
        List.fold_left
          (fun acc ev ->
            let ts = match ev with Begin { ts; _ } | End { ts; _ } -> ts in
            Float.min acc ts)
          acc evs)
      infinity per_dom
  in
  let t0 = if Float.is_finite t0 then t0 else 0. in
  let us ts = (ts -. t0) *. 1e6 in
  let items = ref [] in
  let emit fmt = Printf.ksprintf (fun s -> items := s :: !items) fmt in
  let t_max = ref 0. in
  List.iter
    (fun (dom, evs) ->
      let label = if dom = 0 then "main" else Printf.sprintf "domain %d" dom in
      emit
        "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": %d, \
         \"args\": {\"name\": \"%s\"}}"
        dom (json_escape label);
      List.iter
        (fun ev ->
          match ev with
          | Begin { name; cat; ts; args; parent; id; _ } ->
              t_max := Float.max !t_max (us ts);
              let extra =
                ("span_id", Int id)
                :: (if parent = 0 then [] else [ ("parent_id", Int parent) ])
              in
              emit
                "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"B\", \"ts\": \
                 %.3f, \"pid\": 1, \"tid\": %d, \"args\": {%s}}"
                (json_escape name) (json_escape cat) (us ts) dom
                (json_args (args @ extra))
          | End { ts; _ } ->
              t_max := Float.max !t_max (us ts);
              emit "{\"ph\": \"E\", \"ts\": %.3f, \"pid\": 1, \"tid\": %d}"
                (us ts) dom)
        evs)
    per_dom;
  List.iter
    (fun (name, v) ->
      if v <> 0 then
        emit
          "{\"name\": \"%s\", \"ph\": \"C\", \"ts\": %.3f, \"pid\": 1, \
           \"tid\": 0, \"args\": {\"value\": %d}}"
          (json_escape name) !t_max v)
    (counters ());
  "[\n" ^ String.concat ",\n" (List.rev !items) ^ "\n]\n"

let write_chrome_trace path =
  let oc = open_out path in
  output_string oc (to_chrome_json ());
  close_out oc

(* ------------------------------------------------------------------ *)
(* Metrics exposition (JSON snapshot + Prometheus text format)         *)
(* ------------------------------------------------------------------ *)

let sorted_histograms () =
  Mutex.lock hist_lock;
  let hs = Hashtbl.fold (fun _ h acc -> h :: acc) hist_registry [] in
  Mutex.unlock hist_lock;
  List.sort (fun a b -> compare a.hname b.hname) hs

let jfloat f =
  if Float.is_finite f then Printf.sprintf "%.9g" f
  else Printf.sprintf "\"%s\"" (string_of_float f)

let to_metrics_json () =
  let b = Buffer.create 1024 in
  let obj name render items =
    Buffer.add_string b (Printf.sprintf "\"%s\": {" name);
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string b ", ";
        render item)
      items;
    Buffer.add_string b "}"
  in
  Buffer.add_string b "{";
  obj "counters"
    (fun (name, v) ->
      Buffer.add_string b (Printf.sprintf "\"%s\": %d" (json_escape name) v))
    (counters ());
  Buffer.add_string b ", ";
  obj "gauges"
    (fun (name, v) ->
      Buffer.add_string b
        (Printf.sprintf "\"%s\": %s" (json_escape name) (jfloat v)))
    (gauges ());
  Buffer.add_string b ", ";
  obj "histograms"
    (fun h ->
      let buckets, total, sum = hist_snapshot h in
      Buffer.add_string b (Printf.sprintf "\"%s\": {" (json_escape h.hname));
      Buffer.add_string b "\"buckets\": [";
      Array.iteri
        (fun i c ->
          if i > 0 then Buffer.add_string b ", ";
          let le =
            if i < Array.length h.bounds then jfloat h.bounds.(i)
            else "\"+Inf\""
          in
          Buffer.add_string b
            (Printf.sprintf "{\"le\": %s, \"count\": %d}" le c))
        buckets;
      Buffer.add_string b
        (Printf.sprintf "], \"total\": %d, \"sum\": %s}" total (jfloat sum)))
    (sorted_histograms ());
  Buffer.add_string b "}";
  Buffer.contents b

let prom_name name =
  "ftes_"
  ^ String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c
        | _ -> '_')
      name

let pp_prometheus ppf () =
  List.iter
    (fun (name, v) ->
      let n = prom_name name in
      Format.fprintf ppf "# TYPE %s counter@\n%s %d@\n" n n v)
    (counters ());
  List.iter
    (fun (name, v) ->
      let n = prom_name name in
      Format.fprintf ppf "# TYPE %s gauge@\n%s %g@\n" n n v)
    (gauges ());
  List.iter
    (fun h ->
      let n = prom_name h.hname in
      let buckets, total, sum = hist_snapshot h in
      Format.fprintf ppf "# TYPE %s histogram@\n" n;
      let cumulative = ref 0 in
      Array.iteri
        (fun i c ->
          cumulative := !cumulative + c;
          let le =
            if i < Array.length h.bounds then
              Printf.sprintf "%g" h.bounds.(i)
            else "+Inf"
          in
          Format.fprintf ppf "%s_bucket{le=\"%s\"} %d@\n" n le !cumulative)
        buckets;
      Format.fprintf ppf "%s_sum %g@\n%s_count %d@\n" n sum n total)
    (sorted_histograms ())
