(* Live typed progress events: bounded per-domain rings, subscriber
   sinks, ordered drain. See events.mli for the contract. *)

type payload =
  | Phase_start of { phase : string }
  | Phase_finish of { phase : string; wall_s : float }
  | Incumbent of { source : string; cost : float; evals : int; wall_s : float }
  | Validation_progress of { backend : string; cleared : int; total : int }
  | Corpus_outcome of {
      id : string;
      ok : bool;
      verdict : string;
      wall_ms : float;
    }
  | Gc_sample of {
      phase : string;
      minor_words : float;
      major_words : float;
      heap_mb : float;
      major_collections : int;
    }
  | Worker_start of { member : string }
  | Worker_finish of { member : string; cost : float; wall_s : float }

type event = { seq : int; t : float; dom : int; payload : payload }

(* ------------------------------------------------------------------ *)
(* Recording switch                                                    *)
(* ------------------------------------------------------------------ *)

let on = Atomic.make false
let enabled () = Atomic.get on

let t0 = Atomic.make 0.
let seq_counter = Atomic.make 0
let dropped_total = Atomic.make 0
let dropped () = Atomic.get dropped_total

let now () =
  if Atomic.get on then Unix.gettimeofday () -. Atomic.get t0 else 0.

let default_capacity = 4096
let cap_setting = Atomic.make default_capacity

(* ------------------------------------------------------------------ *)
(* Per-domain bounded rings                                            *)
(* ------------------------------------------------------------------ *)

let filler = { seq = 0; t = 0.; dom = 0; payload = Phase_start { phase = "" } }

(* [head] and [tail] are monotonically increasing cursors into a
   virtual infinite stream; the physical slot of cursor [i] is
   [i mod capacity]. Only the owning domain writes [tail] (after the
   slot write — the atomic store publishes it), only the draining
   domain writes [head], so each ring is a single-producer,
   single-consumer queue and [emit] never takes a lock. *)
type ring = {
  rdom : int;
  mutable slots : event array;
  head : int Atomic.t;
  tail : int Atomic.t;
}

let registry_lock = Mutex.create ()
let registry : ring list ref = ref []

let ring_key : ring Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let r =
        {
          rdom = (Domain.self () :> int);
          slots = Array.make (Atomic.get cap_setting) filler;
          head = Atomic.make 0;
          tail = Atomic.make 0;
        }
      in
      Mutex.lock registry_lock;
      registry := r :: !registry;
      Mutex.unlock registry_lock;
      r)

let my_ring () = Domain.DLS.get ring_key

let clear_rings ~capacity =
  Mutex.lock registry_lock;
  List.iter
    (fun r ->
      (match capacity with
      | Some c when c <> Array.length r.slots -> r.slots <- Array.make c filler
      | Some _ | None -> ());
      Atomic.set r.head 0;
      Atomic.set r.tail 0)
    !registry;
  Mutex.unlock registry_lock

let enable ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Events.enable: capacity must be positive";
  Atomic.set cap_setting capacity;
  clear_rings ~capacity:(Some capacity);
  Atomic.set dropped_total 0;
  Atomic.set t0 (Unix.gettimeofday ());
  Atomic.set on true

let disable () = Atomic.set on false

let reset () =
  clear_rings ~capacity:None;
  Atomic.set dropped_total 0

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

let emit payload =
  if Atomic.get on then begin
    let r = my_ring () in
    let tail = Atomic.get r.tail in
    let cap = Array.length r.slots in
    if tail - Atomic.get r.head >= cap then Atomic.incr dropped_total
    else begin
      let seq = Atomic.fetch_and_add seq_counter 1 in
      let t = Unix.gettimeofday () -. Atomic.get t0 in
      r.slots.(tail mod cap) <- { seq; t; dom = r.rdom; payload };
      Atomic.set r.tail (tail + 1)
    end
  end

(* ------------------------------------------------------------------ *)
(* Sinks and draining                                                  *)
(* ------------------------------------------------------------------ *)

let sinks_lock = Mutex.create ()
let sinks : (int * (event -> unit)) list ref = ref []
let next_sink_id = ref 0

let add_sink f =
  Mutex.lock sinks_lock;
  let id = !next_sink_id in
  incr next_sink_id;
  sinks := !sinks @ [ (id, f) ];
  Mutex.unlock sinks_lock;
  id

let remove_sink id =
  Mutex.lock sinks_lock;
  sinks := List.filter (fun (i, _) -> i <> id) !sinks;
  Mutex.unlock sinks_lock

let drain_lock = Mutex.create ()

let drain () =
  if (not (Par.in_worker ())) && Mutex.try_lock drain_lock then
    Fun.protect
      ~finally:(fun () -> Mutex.unlock drain_lock)
      (fun () ->
        Mutex.lock sinks_lock;
        let snap_sinks = !sinks in
        Mutex.unlock sinks_lock;
        Mutex.lock registry_lock;
        let rings = !registry in
        Mutex.unlock registry_lock;
        let collected = ref [] in
        List.iter
          (fun r ->
            (* Read [tail] once: events emitted while we copy are
               picked up by the next drain. *)
            let tail = Atomic.get r.tail in
            let head = Atomic.get r.head in
            let cap = Array.length r.slots in
            for i = head to tail - 1 do
              collected := r.slots.(i mod cap) :: !collected
            done;
            Atomic.set r.head tail)
          rings;
        match (!collected, snap_sinks) with
        | [], _ | _, [] -> ()
        | evs, sinks ->
            let evs = List.sort (fun a b -> compare a.seq b.seq) evs in
            List.iter (fun ev -> List.iter (fun (_, s) -> s ev) sinks) evs)

(* ------------------------------------------------------------------ *)
(* Phase bracketing with GC sampling                                   *)
(* ------------------------------------------------------------------ *)

let word_bytes = float_of_int (Sys.word_size / 8)

let with_phase phase f =
  if not (Atomic.get on) then f ()
  else begin
    emit (Phase_start { phase });
    drain ();
    let start = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        if Atomic.get on then begin
          let wall_s = Unix.gettimeofday () -. start in
          let s = Gc.quick_stat () in
          emit
            (Gc_sample
               {
                 phase;
                 minor_words = s.Gc.minor_words;
                 major_words = s.Gc.major_words;
                 heap_mb = float_of_int s.Gc.heap_words *. word_bytes /. 1e6;
                 major_collections = s.Gc.major_collections;
               });
          emit (Phase_finish { phase; wall_s });
          drain ()
        end)
      f
  end

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* %.17g round-trips every float and stays a valid JSON number (the
   exponent form "1e+09" is in the JSON grammar); but the compact %g
   with 9 significant digits is plenty for costs, GC words and
   second-resolution timestamps and keeps the stream readable. *)
let jnum f =
  if Float.is_finite f then Printf.sprintf "%.9g" f
  else Printf.sprintf "\"%s\"" (string_of_float f)

let to_json ev =
  let common = Printf.sprintf "\"seq\": %d, \"t\": %s, \"dom\": %d" ev.seq
      (jnum ev.t) ev.dom
  in
  match ev.payload with
  | Phase_start { phase } ->
      Printf.sprintf "{%s, \"type\": \"phase-start\", \"phase\": \"%s\"}"
        common (json_escape phase)
  | Phase_finish { phase; wall_s } ->
      Printf.sprintf
        "{%s, \"type\": \"phase-finish\", \"phase\": \"%s\", \"wall_s\": %s}"
        common (json_escape phase) (jnum wall_s)
  | Incumbent { source; cost; evals; wall_s } ->
      Printf.sprintf
        "{%s, \"type\": \"incumbent\", \"source\": \"%s\", \"cost\": %s, \
         \"evals\": %d, \"wall_s\": %s}"
        common (json_escape source) (jnum cost) evals (jnum wall_s)
  | Validation_progress { backend; cleared; total } ->
      Printf.sprintf
        "{%s, \"type\": \"validation-progress\", \"backend\": \"%s\", \
         \"cleared\": %d, \"total\": %d}"
        common (json_escape backend) cleared total
  | Corpus_outcome { id; ok; verdict; wall_ms } ->
      Printf.sprintf
        "{%s, \"type\": \"corpus-outcome\", \"id\": \"%s\", \"ok\": %b, \
         \"verdict\": \"%s\", \"wall_ms\": %s}"
        common (json_escape id) ok (json_escape verdict) (jnum wall_ms)
  | Gc_sample { phase; minor_words; major_words; heap_mb; major_collections }
    ->
      Printf.sprintf
        "{%s, \"type\": \"gc-sample\", \"phase\": \"%s\", \"minor_words\": \
         %s, \"major_words\": %s, \"heap_mb\": %s, \"major_collections\": %d}"
        common (json_escape phase) (jnum minor_words) (jnum major_words)
        (jnum heap_mb) major_collections
  | Worker_start { member } ->
      Printf.sprintf "{%s, \"type\": \"worker-start\", \"member\": \"%s\"}"
        common (json_escape member)
  | Worker_finish { member; cost; wall_s } ->
      Printf.sprintf
        "{%s, \"type\": \"worker-finish\", \"member\": \"%s\", \"cost\": %s, \
         \"wall_s\": %s}"
        common (json_escape member) (jnum cost) (jnum wall_s)

let ndjson_sink oc ev =
  output_string oc (to_json ev);
  output_char oc '\n';
  flush oc

let progress_sink oc ev =
  (match ev.payload with
  | Phase_start { phase } ->
      Printf.fprintf oc "[%7.2fs] >> %s\n" ev.t phase
  | Phase_finish { phase; wall_s } ->
      Printf.fprintf oc "[%7.2fs] << %s (%.2f s)\n" ev.t phase wall_s
  | Incumbent { source; cost; evals; wall_s } ->
      Printf.fprintf oc
        "[%7.2fs]    %s incumbent %g (%d evals, %.2f s)\n" ev.t source cost
        evals wall_s
  | Validation_progress { backend; cleared; total } ->
      if total > 0 then
        Printf.fprintf oc "[%7.2fs]    validate %s %d/%d scenarios\n" ev.t
          backend cleared total
      else
        Printf.fprintf oc "[%7.2fs]    validate %s %d cube(s)\n" ev.t backend
          cleared
  | Corpus_outcome { id; ok; verdict; wall_ms } ->
      Printf.fprintf oc "[%7.2fs]    corpus %-34s %s (%s, %.1f ms)\n" ev.t id
        (if ok then "ok" else "FAILED")
        verdict wall_ms
  | Gc_sample { phase; heap_mb; major_collections; _ } ->
      Printf.fprintf oc "[%7.2fs]    gc %s: heap %.1f MB, %d major\n" ev.t
        phase heap_mb major_collections
  | Worker_start { member } ->
      Printf.fprintf oc "[%7.2fs] |> %s\n" ev.t member
  | Worker_finish { member; cost; wall_s } ->
      Printf.fprintf oc "[%7.2fs] <| %s final %g (%.2f s)\n" ev.t member cost
        wall_s);
  flush oc
