(* Balanced binary tree over the index range, built once from an array.
   [set] copies the O(log n) path to the leaf; everything else is
   shared, so forked scheduler branches keep whole subtrees in common.
   The structure is immutable — unlike Baker-style rerooting arrays it
   never mutates on read, so concurrent domains may read any version
   freely. *)

type 'a tree =
  | Leaf of 'a
  | Node of { left : 'a tree; right : 'a tree; lsize : int }

type 'a t = { len : int; root : 'a tree option }

let length t = t.len

let of_array arr =
  let rec build lo hi =
    if hi - lo = 1 then Leaf arr.(lo)
    else
      let mid = (lo + hi) / 2 in
      Node { left = build lo mid; right = build mid hi; lsize = mid - lo }
  in
  let n = Array.length arr in
  { len = n; root = (if n = 0 then None else Some (build 0 n)) }

let init n f = of_array (Array.init n f)

let make n x = of_array (Array.make n x)

let check_index t i op =
  if i < 0 || i >= t.len then invalid_arg ("Cowarray." ^ op ^ ": index out of bounds")

let get t i =
  check_index t i "get";
  let rec go i = function
    | Leaf x -> x
    | Node { left; right; lsize } ->
        if i < lsize then go i left else go (i - lsize) right
  in
  go i (Option.get t.root)

let set t i x =
  check_index t i "set";
  let rec go i = function
    | Leaf _ -> Leaf x
    | Node ({ left; right; lsize } as n) ->
        if i < lsize then Node { n with left = go i left }
        else Node { n with right = go (i - lsize) right }
  in
  { t with root = Some (go i (Option.get t.root)) }

let to_array t =
  match t.root with
  | None -> [||]
  | Some root ->
      let first = ref None in
      let rec leftmost = function
        | Leaf x -> x
        | Node { left; _ } -> leftmost left
      in
      first := Some (leftmost root);
      let arr = Array.make t.len (Option.get !first) in
      let rec fill off = function
        | Leaf x -> arr.(off) <- x
        | Node { left; right; lsize } ->
            fill off left;
            fill (off + lsize) right
      in
      fill 0 root;
      arr

let iteri f t =
  match t.root with
  | None -> ()
  | Some root ->
      let rec go off = function
        | Leaf x -> f off x
        | Node { left; right; lsize } ->
            go off left;
            go (off + lsize) right
      in
      go 0 root
