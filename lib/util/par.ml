(* Fixed-size domain pool with an atomic work index and index-ordered
   result merge. See par.mli for the contract. *)

let default_jobs () = Domain.recommended_domain_count ()

(* Set in every worker domain (and in the calling domain while it
   participates in its own pool) so nested Par calls degrade to the
   sequential path instead of spawning domains recursively. *)
let worker_flag : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let in_worker () = Domain.DLS.get worker_flag

(* Pool size actually used for [n] tasks: never more domains than
   tasks, never parallel inside a worker. *)
let effective_jobs ?jobs n =
  if in_worker () then 1
  else
    let j = match jobs with Some j -> j | None -> default_jobs () in
    max 1 (min j n)

let run_pool ~jobs ~n ~(task : int -> unit) =
  let next = Atomic.make 0 in
  let error : exn option Atomic.t = Atomic.make None in
  let worker () =
    Domain.DLS.set worker_flag true;
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n && Atomic.get error = None then begin
        (try task i
         with e -> ignore (Atomic.compare_and_set error None (Some e)));
        loop ()
      end
    in
    loop ()
  in
  let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
  (* The calling domain pulls tasks too; restore its flag afterwards so
     subsequent top-level Par calls still parallelize. *)
  let saved = Domain.DLS.get worker_flag in
  worker ();
  Domain.DLS.set worker_flag saved;
  Array.iter Domain.join domains;
  match Atomic.get error with Some e -> raise e | None -> ()

let map_array ?jobs f input =
  let n = Array.length input in
  let jobs = effective_jobs ?jobs n in
  if jobs <= 1 then Array.map f input
  else begin
    (* Each slot is written by exactly one domain and only read after
       the joins, which establish the happens-before edge. *)
    let results = Array.make n None in
    run_pool ~jobs ~n ~task:(fun i -> results.(i) <- Some (f input.(i)));
    Array.map (function Some y -> y | None -> assert false) results
  end

(* One list-to-array conversion up front; its length then serves the
   pool-size decision and the parallel path reuses the same array, so
   the input list is traversed exactly once on either path. *)
let map ?jobs f xs =
  let input = Array.of_list xs in
  if effective_jobs ?jobs (Array.length input) <= 1 then List.map f xs
  else Array.to_list (map_array ?jobs f input)

let concat_map ?jobs f xs =
  let input = Array.of_list xs in
  if effective_jobs ?jobs (Array.length input) <= 1 then List.concat_map f xs
  else List.concat (Array.to_list (map_array ?jobs f input))

let init ?jobs n f =
  if effective_jobs ?jobs n <= 1 then List.init n f
  else Array.to_list (map_array ?jobs f (Array.init n Fun.id))
