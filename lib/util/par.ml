(* Persistent domain pool with an atomic work index and index-ordered
   result merge. See par.mli for the contract.

   Workers are spawned lazily on the first parallel call and then kept
   parked on a condition variable between calls. [Domain.spawn] costs
   milliseconds on typical hardware — tolerable when each task runs
   long enough to hide it, but fatal once a hot evaluation cache turns
   the tabu search's candidate batches into microsecond tasks: a
   spawn-per-call pool then spends ~100% of its wall clock creating and
   joining domains. Reusing parked domains makes the per-call dispatch
   cost a mutex/condvar round-trip (~a few microseconds). *)

let default_jobs () = Domain.recommended_domain_count ()

(* Set in every worker domain (and in the calling domain while it
   participates in its own job) so nested Par calls degrade to the
   sequential path instead of recursing into the pool. *)
let worker_flag : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let in_worker () = Domain.DLS.get worker_flag

(* Pool size actually used for [n] tasks: never more domains than
   tasks, never parallel inside a worker. *)
let effective_jobs ?jobs n =
  if in_worker () then 1
  else
    let j = match jobs with Some j -> j | None -> default_jobs () in
    max 1 (min j n)

(* A published batch of tasks. Workers pull indices from [next];
   [completed] counts finished tasks so the caller knows when the batch
   has drained ([Atomic.incr] after the task body also publishes the
   task's plain writes to the caller). [participants] caps how many
   pool workers join this batch, so [~jobs] stays an upper bound on the
   domains doing work even when the pool has grown larger. *)
type job = {
  n : int;
  task : int -> unit;  (* never raises: wrapped by run_pool *)
  next : int Atomic.t;
  completed : int Atomic.t;
  max_workers : int;
  participants : int Atomic.t;
  published : float;  (* publish wall clock for the telemetry queue-wait
                         histogram; nan while telemetry is disabled *)
}

type pool = {
  lock : Mutex.t;
  wake : Condition.t;
  mutable job : job option;
  mutable generation : int;
  mutable shutdown : bool;
  mutable workers : unit Domain.t list;
}

let pool =
  {
    lock = Mutex.create ();
    wake = Condition.create ();
    job = None;
    generation = 0;
    shutdown = false;
    workers = [];
  }

(* Telemetry: fan-out sizes, worker queue waits (publish -> first pull)
   and per-worker busy spans. All gated on the telemetry switch. *)
let h_fanout =
  Telemetry.histogram
    ~bounds:[| 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256.; 512.; 1024. |]
    "par.fanout"

let h_queue_wait = Telemetry.histogram "par.queue_wait_s"

let run_tasks (j : job) =
  let rec loop () =
    let i = Atomic.fetch_and_add j.next 1 in
    if i < j.n then begin
      j.task i;
      Atomic.incr j.completed;
      loop ()
    end
  in
  loop ()

let worker_body () =
  Domain.DLS.set worker_flag true;
  let my_gen = ref 0 in
  let rec loop () =
    Mutex.lock pool.lock;
    while (not pool.shutdown) && pool.generation = !my_gen do
      Condition.wait pool.wake pool.lock
    done;
    if pool.shutdown then Mutex.unlock pool.lock
    else begin
      my_gen := pool.generation;
      let j = pool.job in
      Mutex.unlock pool.lock;
      (match j with
      | Some j when Atomic.fetch_and_add j.participants 1 < j.max_workers ->
          if Telemetry.enabled () then begin
            if Float.is_finite j.published then
              Telemetry.observe h_queue_wait
                (Unix.gettimeofday () -. j.published);
            Telemetry.with_span ~cat:"par"
              ~args:[ ("tasks", Telemetry.Int j.n) ]
              "par.worker" (fun () -> run_tasks j)
          end
          else run_tasks j
      | _ -> ());
      loop ()
    end
  in
  loop ()

(* Grow the pool to [want] workers. Called with [pool.lock] held; the
   new domains block on that same lock until the caller publishes the
   job and releases it. *)
let ensure_workers want =
  let have = List.length pool.workers in
  for _ = have + 1 to want do
    pool.workers <- Domain.spawn worker_body :: pool.workers
  done

let shutdown () =
  Mutex.lock pool.lock;
  pool.shutdown <- true;
  Condition.broadcast pool.wake;
  let ws = pool.workers in
  pool.workers <- [];
  Mutex.unlock pool.lock;
  List.iter Domain.join ws;
  (* Re-arm the pool: a later parallel call may lazily respawn workers.
     An explicit shutdown is therefore safe to call from test and bench
     mains without poisoning any code that runs after it. *)
  Mutex.lock pool.lock;
  pool.shutdown <- false;
  Mutex.unlock pool.lock

let () = at_exit shutdown

let pool_size () =
  Mutex.lock pool.lock;
  let n = List.length pool.workers in
  Mutex.unlock pool.lock;
  n

let run_pool_impl ~jobs ~n ~(task : int -> unit) =
  let error : exn option Atomic.t = Atomic.make None in
  let task i =
    (* Once a task has raised, the remaining indices are still claimed
       (so [completed] reaches [n] and the caller unblocks) but their
       bodies are skipped, mirroring the fail-fast drain of a
       spawn-per-call pool. *)
    if Atomic.get error = None then
      try task i
      with e -> ignore (Atomic.compare_and_set error None (Some e))
  in
  let j =
    {
      n;
      task;
      next = Atomic.make 0;
      completed = Atomic.make 0;
      max_workers = jobs - 1;
      participants = Atomic.make 0;
      published =
        (if Telemetry.enabled () then Unix.gettimeofday () else Float.nan);
    }
  in
  Telemetry.observe h_fanout (float_of_int n);
  Mutex.lock pool.lock;
  let parked = not pool.shutdown in
  if parked then begin
    ensure_workers (jobs - 1);
    Telemetry.set_gauge "par.pool_size"
      (float_of_int (List.length pool.workers));
    pool.job <- Some j;
    pool.generation <- pool.generation + 1;
    Condition.broadcast pool.wake
  end;
  Mutex.unlock pool.lock;
  (* The calling domain pulls tasks too; restore its flag afterwards so
     subsequent top-level Par calls still parallelize. *)
  let saved = Domain.DLS.get worker_flag in
  Domain.DLS.set worker_flag true;
  run_tasks j;
  Domain.DLS.set worker_flag saved;
  (* Wait out the workers' in-flight tasks (at most one per worker once
     [next] is exhausted, so this spin is bounded by a single task). *)
  while Atomic.get j.completed < n do
    Domain.cpu_relax ()
  done;
  if parked then begin
    (* Drop the job so the pool does not retain the task closure (and
       whatever result buffers it captures) until the next call. *)
    Mutex.lock pool.lock;
    (match pool.job with
    | Some j' when j' == j -> pool.job <- None
    | _ -> ());
    Mutex.unlock pool.lock
  end;
  match Atomic.get error with Some e -> raise e | None -> ()

(* The dispatch span shows each fan-out on the calling domain's track;
   gated here (not just inside with_span) so the disabled path does not
   even allocate the args list. *)
let run_pool ~jobs ~n ~task =
  if Telemetry.enabled () then
    Telemetry.with_span ~cat:"par"
      ~args:[ ("tasks", Telemetry.Int n); ("jobs", Telemetry.Int jobs) ]
      "par.dispatch"
      (fun () -> run_pool_impl ~jobs ~n ~task)
  else run_pool_impl ~jobs ~n ~task

let map_array ?jobs f input =
  let n = Array.length input in
  let jobs = effective_jobs ?jobs n in
  if jobs <= 1 then Array.map f input
  else begin
    (* Each slot is written by exactly one domain and only read after
       the completion counter reaches [n], which establishes the
       happens-before edge. *)
    let results = Array.make n None in
    run_pool ~jobs ~n ~task:(fun i -> results.(i) <- Some (f input.(i)));
    Array.map (function Some y -> y | None -> assert false) results
  end

(* Like [run_pool_impl], but the calling domain never pulls tasks: it
   runs [poll] in the completion-wait loop instead, so a caller can
   deliver live progress (e.g. [Events.drain]) while [jobs] pool
   workers race through the batch. If the pool is unavailable (mid
   shutdown) or drains to zero workers while we wait, the caller takes
   over the remaining tasks inline — the batch always completes. *)
let run_pool_live ~jobs ~n ~(task : int -> unit) ~poll =
  let error : exn option Atomic.t = Atomic.make None in
  let task i =
    if Atomic.get error = None then
      try task i
      with e -> ignore (Atomic.compare_and_set error None (Some e))
  in
  let j =
    {
      n;
      task;
      next = Atomic.make 0;
      completed = Atomic.make 0;
      max_workers = jobs;
      participants = Atomic.make 0;
      published =
        (if Telemetry.enabled () then Unix.gettimeofday () else Float.nan);
    }
  in
  Telemetry.observe h_fanout (float_of_int n);
  Mutex.lock pool.lock;
  let parked = not pool.shutdown in
  if parked then begin
    ensure_workers jobs;
    Telemetry.set_gauge "par.pool_size"
      (float_of_int (List.length pool.workers));
    pool.job <- Some j;
    pool.generation <- pool.generation + 1;
    Condition.broadcast pool.wake
  end;
  Mutex.unlock pool.lock;
  let run_inline () =
    let saved = Domain.DLS.get worker_flag in
    Domain.DLS.set worker_flag true;
    let rec go () =
      let i = Atomic.fetch_and_add j.next 1 in
      if i < n then begin
        j.task i;
        Atomic.incr j.completed;
        Domain.DLS.set worker_flag saved;
        poll ();
        Domain.DLS.set worker_flag true;
        go ()
      end
    in
    go ();
    Domain.DLS.set worker_flag saved
  in
  if not parked then run_inline ();
  while Atomic.get j.completed < n do
    poll ();
    if pool_size () = 0 then run_inline ()
    else Unix.sleepf 0.002
  done;
  if parked then begin
    Mutex.lock pool.lock;
    (match pool.job with
    | Some j' when j' == j -> pool.job <- None
    | _ -> ());
    Mutex.unlock pool.lock
  end;
  match Atomic.get error with Some e -> raise e | None -> ()

let map_live ?jobs ~poll f xs =
  let input = Array.of_list xs in
  let n = Array.length input in
  let jobs =
    if in_worker () then 1
    else max 1 (min (match jobs with Some j -> j | None -> default_jobs ()) n)
  in
  if jobs <= 1 || n = 0 then
    List.map
      (fun x ->
        let y = f x in
        poll ();
        y)
      xs
  else begin
    let results = Array.make n None in
    run_pool_live ~jobs ~n
      ~task:(fun i -> results.(i) <- Some (f input.(i)))
      ~poll;
    Array.to_list
      (Array.map (function Some y -> y | None -> assert false) results)
  end

(* One list-to-array conversion up front; its length then serves the
   pool-size decision and the parallel path reuses the same array, so
   the input list is traversed exactly once on either path. *)
let map ?jobs f xs =
  let input = Array.of_list xs in
  if effective_jobs ?jobs (Array.length input) <= 1 then List.map f xs
  else Array.to_list (map_array ?jobs f input)

let concat_map ?jobs f xs =
  let input = Array.of_list xs in
  if effective_jobs ?jobs (Array.length input) <= 1 then List.concat_map f xs
  else List.concat (Array.to_list (map_array ?jobs f input))

let init ?jobs n f =
  if effective_jobs ?jobs n <= 1 then List.init n f
  else Array.to_list (map_array ?jobs f (Array.init n Fun.id))

(* Contiguous balanced ranges: chunk p of [pieces] over [n] items is
   [p*n/pieces, (p+1)*n/pieces) — sizes differ by at most one and the
   concatenation covers [0, n) in order. *)
let range_bounds ~pieces n =
  Array.init pieces (fun p -> (p * n / pieces, (p + 1) * n / pieces))

let map_ranges ?jobs ?(chunks_per_job = 4) n f =
  if n <= 0 then []
  else
    let jobs = effective_jobs ?jobs n in
    if jobs <= 1 then [ f 0 n ]
    else
      let pieces = min n (jobs * chunks_per_job) in
      Array.to_list (map_array ~jobs (fun (lo, hi) -> f lo hi) (range_bounds ~pieces n))
