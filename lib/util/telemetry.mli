(** Process-wide, domain-safe instrumentation: spans, counters, gauges
    and latency histograms, with a human summary tree and a Chrome
    trace-event JSON exporter.

    The synthesis flow is a multi-phase pipeline — FT-CPG generation,
    policy/mapping optimization, conditional scheduling, fault-injection
    validation — fanned out over the {!Par} domain pool. This module
    makes a run observable end to end: every phase opens a {e span}
    (recorded into a per-domain append-only buffer, so recording never
    takes a lock), hot components bump {e counters} (atomic ints), and
    the pool reports fan-out sizes and queue waits into {e histograms}.

    {b Pay for what you use.} Recording is gated by a single process-wide
    atomic flag, off by default: with telemetry disabled, {!with_span}
    costs one atomic load and a branch before calling its thunk, and
    counter increments cost the same. Nothing is allocated and no clock
    is read until {!enable} is called.

    {b Determinism.} Telemetry observes; it never steers. No RNG is
    consumed, no ordering is changed, no result depends on a recorded
    value — search trajectories are bit-identical with telemetry on or
    off and for every [jobs] value (pinned by [test/test_telemetry.ml],
    the same discipline as the evaluation cache).

    {b Domain safety.} Each domain owns one event buffer (registered
    once, via [Domain.DLS]); only the owning domain appends to it.
    Counters and histogram buckets are [Atomic] cells. The exporters
    read the buffers of parked or finished domains; export while worker
    domains are actively recording is not supported (the [Par] pool is
    idle between calls, so exporting after a run is always safe).

    {b Clock.} Timestamps come from [Unix.gettimeofday], clamped to be
    non-decreasing per buffer; span nesting therefore always has
    children contained within their parents. *)

(** {1 Recording switch} *)

val enable : unit -> unit
val disable : unit -> unit

val enabled : unit -> bool
(** True between {!enable} and {!disable}. Read this before computing
    anything that exists only to be recorded (e.g. a [List.length] fed
    to {!add}). *)

val reset : unit -> unit
(** Drop all recorded events and zero every counter, gauge and
    histogram (registrations survive). Call only while no other domain
    is recording — i.e. between [Par] fan-outs. *)

(** {1 Spans} *)

type value = Int of int | Float of float | Str of string | Bool of bool
(** Attribute values attached to a span. *)

val with_span :
  ?cat:string -> ?args:(string * value) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f ()] inside a span: a begin event is
    recorded in the calling domain's buffer (with a fresh span id and
    the id of the enclosing span as parent), and the matching end event
    is recorded when [f] returns {e or raises} (the exception is
    re-raised). With telemetry disabled this is [f ()] after one branch.
    [cat] is the Chrome trace category (defaults to ["ftes"]); [args]
    become the trace event's arguments. *)

(** {1 Counters, gauges, histograms} *)

type counter

val counter : string -> counter
(** Intern the process-wide counter [name] (idempotent: the same name
    always yields the same cell). Registration is cheap and allowed
    while disabled — modules create their counters at init time. *)

val incr : counter -> unit
val add : counter -> int -> unit
(** No-ops while disabled. *)

val counter_value : counter -> int

val set_gauge : string -> float -> unit
(** Record the latest value of a named gauge (no-op while disabled). *)

type histogram

val histogram : ?bounds:float array -> string -> histogram
(** Intern a fixed-bucket histogram. [bounds] are ascending bucket upper
    bounds (default: exponential decades from 1e-6 to 1e2, suited to
    latencies in seconds); values above the last bound land in an
    overflow bucket.
    @raise Invalid_argument if [bounds] is empty or not strictly
    increasing, or if the name was registered with different bounds. *)

val observe : histogram -> float -> unit
(** No-op while disabled. *)

(** {1 Inspection (tests, exporters)} *)

type event =
  | Begin of {
      id : int;
      parent : int;  (** 0 when the span is a root of its domain. *)
      name : string;
      cat : string;
      ts : float;  (** seconds, non-decreasing within a buffer *)
      args : (string * value) list;
    }
  | End of { id : int; ts : float }

val dump : unit -> (int * event list) list
(** Recorded events per domain (domain id, events in recording order),
    sorted by domain id. *)

val counters : unit -> (string * int) list
(** All registered counters with their current values, sorted by name. *)

val gauges : unit -> (string * float) list
(** Gauges that have been set since the last {!reset}, sorted by name. *)

(** {1 Exporters} *)

val pp_summary : Format.formatter -> unit -> unit
(** Human-readable report: the span tree aggregated by name within
    parent (total wall time, self time, call count), then counters,
    gauges and histograms. Histogram percentiles are approximated from
    the bucket midpoints with {!Stats.percentile}. *)

val to_chrome_json : unit -> string
(** The recorded events as Chrome trace-event JSON (array format): one
    [B]/[E] pair per span with [tid] = domain id (one track per domain),
    thread-name metadata per track, and one [C] (counter) sample per
    registered counter at the end of the trace. Load the result in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}. *)

val write_chrome_trace : string -> unit
(** {!to_chrome_json} written to a file. *)

val to_metrics_json : unit -> string
(** The current counters, gauges and histograms as one JSON object:
    [{"counters": {name: int, ...}, "gauges": {name: float, ...},
    "histograms": {name: {"buckets": [{"le": bound|"+Inf", "count": n},
    ...], "total": n, "sum": f}, ...}}]. Machine-readable companion to
    {!pp_summary} — no parsing of the human report needed. Counters at
    zero are included so consumers see a stable key set. *)

val pp_prometheus : Format.formatter -> unit -> unit
(** The same snapshot in the Prometheus text exposition format
    (version 0.0.4): counters as [counter], gauges as [gauge],
    histograms as cumulative [histogram] series with [le] labels,
    [_sum] and [_count]. Metric names are the registered names with
    every non-alphanumeric character mapped to ['_'] and an [ftes_]
    prefix. *)
