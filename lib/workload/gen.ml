module Rng = Ftes_util.Rng
module App = Ftes_app.App
module Graph = Ftes_app.Graph
module Overheads = Ftes_app.Overheads
module Transparency = Ftes_app.Transparency
module Arch = Ftes_arch.Arch
module Bus = Ftes_arch.Bus
module Wcet = Ftes_arch.Wcet

type bus_kind = Tdma | Single

type spec = {
  seed : int;
  processes : int;
  nodes : int;
  layers : int;
  extra_edge_prob : float;
  wcet_min : float;
  wcet_max : float;
  msg_min : float;
  msg_max : float;
  restrict_prob : float;
  alpha_frac : float;
  mu_frac : float;
  chi_frac : float;
  frozen_proc_prob : float;
  frozen_msg_prob : float;
  tdma_slot : float;
  bus : bus_kind;
  wcet_jitter : float;
  burstiness : float;
}

let default =
  {
    seed = 1;
    processes = 20;
    nodes = 3;
    layers = 0;
    extra_edge_prob = 0.15;
    wcet_min = 10.;
    wcet_max = 100.;
    msg_min = 2.;
    msg_max = 8.;
    restrict_prob = 0.1;
    (* Fig. 1 proportions: C = 60, alpha = mu = 10, chi = 5. *)
    alpha_frac = 1. /. 6.;
    mu_frac = 1. /. 6.;
    chi_frac = 1. /. 12.;
    frozen_proc_prob = 0.;
    frozen_msg_prob = 0.;
    tdma_slot = 10.;
    bus = Tdma;
    wcet_jitter = 1.;
    burstiness = 0.;
  }

let uniform rng lo hi =
  if hi <= lo then lo else lo +. Rng.float rng (hi -. lo)

let instance spec =
  if spec.processes < 1 then invalid_arg "Gen.instance: no processes";
  if spec.nodes < 1 then invalid_arg "Gen.instance: no nodes";
  if spec.burstiness < 0. || spec.burstiness > 1. then
    invalid_arg "Gen.instance: burstiness outside [0, 1]";
  if spec.wcet_jitter < 0. || spec.wcet_jitter > 1. then
    invalid_arg "Gen.instance: wcet_jitter outside [0, 1]";
  let rng = Rng.create spec.seed in
  let nlayers =
    if spec.layers > 0 then min spec.layers spec.processes
    else max 2 (int_of_float (sqrt (float_of_int spec.processes)))
  in
  (* Assign each process a layer; every layer gets at least one. The
     legacy uniform assignment (burstiness = 0) must keep its exact RNG
     draw sequence — existing seeds are pinned byte-for-byte. Positive
     burstiness concentrates the remaining processes in one hot layer,
     yielding the wide, bursty fan-out shapes of the corpus. *)
  let hot_layer = min 1 (nlayers - 1) in
  let layer_of = Array.make spec.processes 0 in
  for pid = 0 to spec.processes - 1 do
    layer_of.(pid) <-
      (if pid < nlayers then pid
       else if spec.burstiness <= 0. then Rng.int rng nlayers
       else if Rng.chance rng spec.burstiness then hot_layer
       else Rng.int rng nlayers)
  done;
  (* Overheads scale with the process's mean WCET. *)
  let b = Graph.Builder.create () in
  (* WCET heterogeneity across nodes: jitter = 1 keeps the legacy fully
     independent per-node draws (and their RNG stream); jitter < 1 draws
     one base WCET per process and lets each node deviate by at most
     ±jitter around it, clamped to the spec bounds — near-homogeneous
     platforms at jitter ≈ 0, mildly heterogeneous ones in between. *)
  let wcets =
    if spec.wcet_jitter >= 1. then
      Array.init spec.processes (fun _ ->
          Array.init spec.nodes (fun _ ->
              uniform rng spec.wcet_min spec.wcet_max))
    else
      Array.init spec.processes (fun _ ->
          let base = uniform rng spec.wcet_min spec.wcet_max in
          Array.init spec.nodes (fun _ ->
              let dev = spec.wcet_jitter *. ((2. *. Rng.float rng 1.) -. 1.) in
              Float.min spec.wcet_max
                (Float.max spec.wcet_min (base *. (1. +. dev)))))
  in
  for pid = 0 to spec.processes - 1 do
    let avg =
      Array.fold_left ( +. ) 0. wcets.(pid) /. float_of_int spec.nodes
    in
    let overheads =
      Overheads.make
        ~alpha:(spec.alpha_frac *. avg)
        ~mu:(spec.mu_frac *. avg)
        ~chi:(spec.chi_frac *. avg)
    in
    ignore
      (Graph.Builder.add_process b ~overheads
         ~name:(Printf.sprintf "P%d" (pid + 1)))
  done;
  (* Tree-like backbone: every process in layer l > 0 consumes from a
     random process of an earlier layer; extra forward edges sprinkle
     in more parallel structure. *)
  let procs_in_layer l =
    List.filter
      (fun pid -> layer_of.(pid) = l)
      (List.init spec.processes (fun i -> i))
  in
  let earlier pid =
    List.filter
      (fun q -> layer_of.(q) < layer_of.(pid))
      (List.init spec.processes (fun i -> i))
  in
  let add_edge src dst =
    ignore
      (Graph.Builder.add_message b ~src ~dst
         ~size:(uniform rng spec.msg_min spec.msg_max))
  in
  let edges = Hashtbl.create 64 in
  let try_add_edge src dst =
    if not (Hashtbl.mem edges (src, dst)) then begin
      Hashtbl.add edges (src, dst) ();
      add_edge src dst
    end
  in
  for l = 1 to nlayers - 1 do
    List.iter
      (fun pid ->
        match earlier pid with
        | [] -> ()
        | cands -> try_add_edge (Rng.pick_list rng cands) pid)
      (procs_in_layer l)
  done;
  for src = 0 to spec.processes - 1 do
    for dst = 0 to spec.processes - 1 do
      if
        layer_of.(src) < layer_of.(dst)
        && Rng.chance rng spec.extra_edge_prob
      then try_add_edge src dst
    done
  done;
  let graph = Graph.Builder.build b in
  (* Transparency requirements. *)
  let frozen = ref [] in
  for pid = 0 to Graph.process_count graph - 1 do
    if Rng.chance rng spec.frozen_proc_prob then
      frozen := Transparency.Proc pid :: !frozen
  done;
  for mid = 0 to Graph.message_count graph - 1 do
    if Rng.chance rng spec.frozen_msg_prob then
      frozen := Transparency.Msg mid :: !frozen
  done;
  (* WCET table with mapping restrictions; at least one allowed node. *)
  let wcet = Wcet.create ~procs:spec.processes ~nodes:spec.nodes in
  for pid = 0 to spec.processes - 1 do
    let keep = Rng.int rng spec.nodes in
    for nid = 0 to spec.nodes - 1 do
      if nid = keep || not (Rng.chance rng spec.restrict_prob) then
        Wcet.set wcet ~pid ~nid wcets.(pid).(nid)
    done
  done;
  Wcet.validate wcet;
  let bus =
    match spec.bus with
    | Tdma -> Bus.tdma ~slot_length:spec.tdma_slot ~bandwidth:1. spec.nodes
    | Single -> Bus.single ~bandwidth:1. ()
  in
  let arch = Arch.make ~node_count:spec.nodes ~bus () in
  let horizon = 1e9 in
  let app =
    App.make
      ~transparency:(Transparency.of_list !frozen)
      ~graph ~deadline:horizon ~period:horizon ()
  in
  (app, arch, wcet)

let problem ?(k = 2) spec =
  let app, arch, wcet = instance spec in
  let policies = Ftes_ftcpg.Problem.default_policies ~app ~k in
  let mapping = Ftes_ftcpg.Problem.fastest_mapping ~app ~wcet ~policies in
  Ftes_ftcpg.Problem.make ~app ~arch ~wcet ~k ~policies ~mapping
