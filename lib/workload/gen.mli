(** Synthetic workload generation.

    The paper evaluates on randomly generated applications of 20 to 100
    processes mapped on architectures of 2 to 6 nodes, tolerating 3 to 7
    transient faults (Sec. 6). The authors' generator is not public;
    this one produces layered random DAGs (TGFF-style) with the
    published parameter ranges: WCETs drawn uniformly per allowed node,
    occasional mapping restrictions, fault-tolerance overheads
    proportioned like the paper's running examples (α, µ ≈ C/6, χ ≈
    C/12 for the Fig. 1 process).

    All randomness is seeded — identical specs produce identical
    instances. *)

type bus_kind =
  | Tdma  (** TTP-like time-division bus ({!Ftes_arch.Bus.tdma}), slot
              length [tdma_slot], bandwidth 1 — the paper's protocol. *)
  | Single  (** Contention bus ({!Ftes_arch.Bus.single}), bandwidth 1. *)

type spec = {
  seed : int;
  processes : int;
  nodes : int;
  layers : int;  (** 0 = choose automatically (≈ sqrt of process count). *)
  extra_edge_prob : float;  (** Probability of additional non-tree
                                edges between compatible layers. *)
  wcet_min : float;
  wcet_max : float;
  msg_min : float;
  msg_max : float;
  restrict_prob : float;  (** Probability that a (process, node) entry is
                              a mapping restriction ("X"). At least one
                              node always remains allowed. *)
  alpha_frac : float;  (** Error-detection overhead as a fraction of the
                           process's average WCET. *)
  mu_frac : float;
  chi_frac : float;
  frozen_proc_prob : float;
  frozen_msg_prob : float;
  tdma_slot : float;  (** TDMA slot length (bandwidth is 1). *)
  bus : bus_kind;  (** Broadcast-channel model (default {!Tdma}). *)
  wcet_jitter : float;  (** WCET heterogeneity across nodes, in [0, 1].
                            [1.] (the default) draws every (process,
                            node) WCET independently — the legacy
                            behavior, byte-stable per seed. Values
                            below 1 draw one base WCET per process and
                            let each node deviate by at most ±jitter
                            around it (clamped to the bounds):
                            near-homogeneous platforms at ≈ 0. *)
  burstiness : float;  (** DAG burstiness, in [0, 1]. [0.] (the
                           default) spreads processes uniformly over
                           the layers — the legacy behavior. Higher
                           values concentrate processes in one hot
                           layer, producing wide fan-out/fan-in bursts
                           instead of uniform layer populations. *)
}

val default : spec
(** 20 processes, 3 nodes, paper-like ranges (WCET 10–100, messages
    sized to a few slot fractions), no transparency, TDMA bus, legacy
    uniform shape ([wcet_jitter = 1.], [burstiness = 0.]).

    Specs that keep the default [bus], [wcet_jitter] and [burstiness]
    generate byte-identical instances to releases that predate those
    fields — pinned by test. *)

val instance : spec -> Ftes_app.App.t * Ftes_arch.Arch.t * Ftes_arch.Wcet.t
(** Generate one application + platform + WCET table. The deadline is
    left loose (experiments compare schedule lengths; tighten it with
    [App.with_deadline] when schedulability itself is studied). *)

val problem : ?k:int -> spec -> Ftes_ftcpg.Problem.t
(** Convenience: {!instance} wrapped into a {!Ftes_ftcpg.Problem.t} with
    the all-re-execution default policies and the fastest mapping.
    [k] defaults to 2. *)
