(* Tests for the textual instance format: parsing, printing,
   round-trips (including randomized ones) and error reporting. *)

module Dsl = Ftes_dsl.Dsl
module Gen = Ftes_workload.Gen
module Graph = Ftes_app.Graph
module App = Ftes_app.App

let sample =
  {|
# comment line
k 2
deadline 300
period 300
nodes 2
bus tdma slot 10 bandwidth 1

process P1 alpha 10 mu 10 chi 5
process P2 alpha 10 mu 10 chi 5 frozen
process P3 alpha 10 mu 10 chi 5 release 20 local-deadline 200

message m1 from P1 to P2 size 4
message m2 from P1 to P3 size 4 frozen

wcet P1 20 30
wcet P2 40 60
wcet P3 60 X
|}

let test_parse_sample () =
  let d = Dsl.of_string sample in
  Alcotest.(check int) "k" 2 d.Dsl.k;
  let g = d.Dsl.app.App.graph in
  Alcotest.(check int) "processes" 3 (Graph.process_count g);
  Alcotest.(check int) "messages" 2 (Graph.message_count g);
  Helpers.check_float "deadline" 300. d.Dsl.app.App.deadline;
  let p3 = Option.get (Graph.find_process g "P3") in
  Helpers.check_float "release" 20. (Graph.process g p3).Graph.release;
  Alcotest.(check (option (Helpers.approx ()))) "local deadline" (Some 200.)
    (Graph.process g p3).Graph.local_deadline;
  let p2 = Option.get (Graph.find_process g "P2") in
  Alcotest.(check bool) "P2 frozen" true
    (Ftes_app.Transparency.is_frozen_proc d.Dsl.app.App.transparency p2);
  Alcotest.(check bool) "m2 frozen" true
    (Ftes_app.Transparency.is_frozen_msg d.Dsl.app.App.transparency 1);
  (* Mapping restriction parsed. *)
  Alcotest.(check (option (Helpers.approx ()))) "P3 restricted" None
    (Ftes_arch.Wcet.get d.Dsl.wcet ~pid:p3 ~nid:1)

let test_round_trip_sample () =
  let d = Dsl.of_string sample in
  let d2 = Dsl.of_string (Dsl.to_string d) in
  Alcotest.(check bool) "round trip" true (Dsl.equal d d2)

let test_round_trip_fig5 () =
  let app = App.fig5 () in
  let arch, wcet = Ftes_arch.Examples.fig5 () in
  let d = { Dsl.app; arch; wcet; k = 2 } in
  Alcotest.(check bool) "round trip" true
    (Dsl.equal d (Dsl.of_string (Dsl.to_string d)))

let test_single_bus_round_trip () =
  let text =
    "k 1\nnodes 2\ndeadline 100\nperiod 100\nbus single bandwidth 2 setup 1\n\
     process A alpha 1 mu 1 chi 1\nprocess B alpha 1 mu 1 chi 1\n\
     message m from A to B size 4\nwcet A 10 10\nwcet B 10 10\n"
  in
  let d = Dsl.of_string text in
  Alcotest.(check bool) "single bus" false
    (Ftes_arch.Bus.is_tdma (Ftes_arch.Arch.bus d.Dsl.arch));
  Helpers.check_float "tx includes setup" 3.
    (Ftes_arch.Bus.tx_time (Ftes_arch.Arch.bus d.Dsl.arch) ~size:4.);
  Alcotest.(check bool) "round trip" true
    (Dsl.equal d (Dsl.of_string (Dsl.to_string d)))

let parse_error_line text =
  match Dsl.of_string text with
  | exception Dsl.Parse_error { line; _ } -> Some line
  | _ -> None

let test_parse_errors () =
  Alcotest.(check (option int)) "unknown directive on line 2" (Some 2)
    (parse_error_line "nodes 1\nbogus directive\n");
  Alcotest.(check (option int)) "bad number" (Some 1)
    (parse_error_line "k abc\n");
  Alcotest.(check (option int)) "missing nodes" (Some 0)
    (parse_error_line "process A\nwcet A 1\n");
  Alcotest.(check (option int)) "unknown process in message" (Some 0)
    (parse_error_line
       "nodes 1\nprocess A\nmessage m from A to Z size 1\nwcet A 1\n");
  Alcotest.(check (option int)) "wcet arity" (Some 0)
    (parse_error_line "nodes 2\nprocess A\nwcet A 1\n");
  Alcotest.(check (option int)) "duplicate process" (Some 0)
    (parse_error_line "nodes 1\nprocess A\nprocess A\nwcet A 1\n");
  Alcotest.(check (option int)) "no processes" (Some 0)
    (parse_error_line "nodes 1\n")

let test_to_problem () =
  let d = Dsl.of_string sample in
  let p = Dsl.to_problem d in
  Alcotest.(check int) "k" 2 p.Ftes_ftcpg.Problem.k;
  (* Defaults to all-re-execution policies tolerating k. *)
  Array.iter
    (fun policy ->
      Alcotest.(check bool) "tolerates" true
        (Ftes_app.Policy.tolerates policy ~k:2))
    p.Ftes_ftcpg.Problem.policies

let test_defaults () =
  let d =
    Dsl.of_string "nodes 1\nprocess A alpha 1 mu 1 chi 1\nwcet A 5\n"
  in
  Alcotest.(check int) "default k" 1 d.Dsl.k;
  Alcotest.(check bool) "default bus is tdma" true
    (Ftes_arch.Bus.is_tdma (Ftes_arch.Arch.bus d.Dsl.arch))

let dsl_props =
  let arb =
    QCheck.make
      ~print:(fun (seed, n, nodes, fp) ->
        Printf.sprintf "seed=%d n=%d nodes=%d frozen=%b" seed n nodes fp)
      QCheck.Gen.(
        quad (int_bound 10_000) (int_range 1 40) (int_range 1 6) bool)
  in
  [
    Helpers.qtest ~count:100 "random instances round-trip" arb
      (fun (seed, n, nodes, frozen) ->
        let spec =
          {
            Gen.default with
            processes = n;
            nodes;
            seed;
            frozen_proc_prob = (if frozen then 0.4 else 0.);
            frozen_msg_prob = (if frozen then 0.4 else 0.);
          }
        in
        let app, arch, wcet = Gen.instance spec in
        let d = { Dsl.app; arch; wcet; k = 1 + (seed mod 3) } in
        let d2 = Dsl.of_string (Dsl.to_string d) in
        Dsl.equal d d2);
    Helpers.qtest ~count:50 "printing is stable" arb
      (fun (seed, n, nodes, _) ->
        let spec = { Gen.default with processes = n; nodes; seed } in
        let app, arch, wcet = Gen.instance spec in
        let d = { Dsl.app; arch; wcet; k = 1 } in
        let s1 = Dsl.to_string d in
        let s2 = Dsl.to_string (Dsl.of_string s1) in
        s1 = s2);
  ]

let test_load_save () =
  let d = Dsl.of_string sample in
  let path = Filename.temp_file "ftes_test" ".ftes" in
  Dsl.save path d;
  let d2 = Dsl.load path in
  Sys.remove path;
  Alcotest.(check bool) "load/save" true (Dsl.equal d d2)

let () =
  Alcotest.run "dsl"
    [
      ( "parse+print",
        [
          Alcotest.test_case "parse sample" `Quick test_parse_sample;
          Alcotest.test_case "round trip sample" `Quick test_round_trip_sample;
          Alcotest.test_case "round trip fig5" `Quick test_round_trip_fig5;
          Alcotest.test_case "single bus" `Quick test_single_bus_round_trip;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "to_problem" `Quick test_to_problem;
          Alcotest.test_case "defaults" `Quick test_defaults;
          Alcotest.test_case "load/save" `Quick test_load_save;
        ]
        @ dsl_props );
    ]
