(* Tests for the application model: overheads, the fault-tolerance
   timing formulas (checked against the paper's Fig. 1 numbers), policy
   assignments, process graphs, transparency and hyperperiod merging. *)

module Overheads = Ftes_app.Overheads
module Fttime = Ftes_app.Fttime
module Policy = Ftes_app.Policy
module Graph = Ftes_app.Graph
module Transparency = Ftes_app.Transparency
module App = Ftes_app.App
module Merge = Ftes_app.Merge

(* ------------------------------------------------------------------ *)
(* Overheads                                                           *)
(* ------------------------------------------------------------------ *)

let test_overheads_make () =
  let o = Overheads.make ~alpha:1. ~mu:2. ~chi:3. in
  Helpers.check_float "alpha" 1. o.Overheads.alpha;
  Helpers.check_float "mu" 2. o.Overheads.mu;
  Helpers.check_float "chi" 3. o.Overheads.chi;
  Alcotest.check_raises "negative" (Invalid_argument "Overheads.make: negative overhead")
    (fun () -> ignore (Overheads.make ~alpha:(-1.) ~mu:0. ~chi:0.))

let test_overheads_fig1 () =
  let o = Overheads.fig1 in
  Helpers.check_float "alpha" 10. o.Overheads.alpha;
  Helpers.check_float "mu" 10. o.Overheads.mu;
  Helpers.check_float "chi" 5. o.Overheads.chi

let test_overheads_scale () =
  let o = Overheads.scale 2. Overheads.fig1 in
  Helpers.check_float "alpha scaled" 20. o.Overheads.alpha;
  Alcotest.(check bool) "equal" true
    (Overheads.equal (Overheads.scale 1. Overheads.fig1) Overheads.fig1)

(* ------------------------------------------------------------------ *)
(* Fttime — the paper's Fig. 1 numbers                                 *)
(* ------------------------------------------------------------------ *)

let o1 = Overheads.fig1
let c1 = 60.

let test_fig1_no_fault () =
  (* One checkpoint: 60 + 1*(10+5) = 75; two: 60 + 2*15 = 90. *)
  Helpers.check_float "E0(1)" 75. (Fttime.no_fault_length ~c:c1 o1 ~checkpoints:1);
  Helpers.check_float "E0(2)" 90. (Fttime.no_fault_length ~c:c1 o1 ~checkpoints:2)

let test_fig1_worst_case () =
  (* Fig. 1c: two checkpoints, one fault: 90 + (10 + 30) = 130 ms; the
     last recovery pays no detection overhead. *)
  Helpers.check_float "W(2,1) = 130" 130.
    (Fttime.worst_case_length ~c:c1 o1 ~checkpoints:2 ~recoveries:1);
  (* Plain re-execution of the whole process: 75 + (10 + 60) = 145. *)
  Helpers.check_float "W(1,1) = 145" 145.
    (Fttime.worst_case_length ~c:c1 o1 ~checkpoints:1 ~recoveries:1)

let test_segment_and_recovery () =
  Helpers.check_float "segment" 30. (Fttime.segment_length ~c:c1 ~checkpoints:2);
  Helpers.check_float "recovery (not last)" 50.
    (Fttime.recovery_cost ~c:c1 o1 ~checkpoints:2 ~last:false);
  Helpers.check_float "recovery (last)" 40.
    (Fttime.recovery_cost ~c:c1 o1 ~checkpoints:2 ~last:true)

let test_recovery_slack () =
  Helpers.check_float "slack = W - E0" 40.
    (Fttime.recovery_slack ~c:c1 o1 ~checkpoints:2 ~recoveries:1)

let test_replica_length () =
  Helpers.check_float "replica" 70. (Fttime.replica_length ~c:c1 o1)

let test_fttime_errors () =
  Alcotest.check_raises "zero checkpoints"
    (Invalid_argument "Fttime: checkpoints < 1") (fun () ->
      ignore (Fttime.no_fault_length ~c:1. o1 ~checkpoints:0));
  Alcotest.check_raises "negative recoveries"
    (Invalid_argument "Fttime: negative recoveries") (fun () ->
      ignore (Fttime.worst_case_length ~c:1. o1 ~checkpoints:1 ~recoveries:(-1)))

let fttime_props =
  let arb =
    QCheck.(
      quad (float_range 1. 500.) (float_range 0. 50.) (int_range 1 20)
        (int_range 0 8))
  in
  [
    Helpers.qtest "W(n,0) = E0(n)" arb (fun (c, a, n, _) ->
        let o = Overheads.make ~alpha:a ~mu:a ~chi:(a /. 2.) in
        Fttime.worst_case_length ~c o ~checkpoints:n ~recoveries:0
        = Fttime.no_fault_length ~c o ~checkpoints:n);
    Helpers.qtest "W monotone in recoveries" arb (fun (c, a, n, r) ->
        let o = Overheads.make ~alpha:a ~mu:a ~chi:(a /. 2.) in
        Fttime.worst_case_length ~c o ~checkpoints:n ~recoveries:r
        <= Fttime.worst_case_length ~c o ~checkpoints:n ~recoveries:(r + 1)
           +. 1e-9);
    Helpers.qtest "E0 grows with checkpoints when overheads positive" arb
      (fun (c, a, n, _) ->
        let o = Overheads.make ~alpha:(a +. 0.1) ~mu:0. ~chi:0.1 in
        Fttime.no_fault_length ~c o ~checkpoints:n
        < Fttime.no_fault_length ~c o ~checkpoints:(n + 1));
    Helpers.qtest "recovery slack consistent" arb (fun (c, a, n, r) ->
        let o = Overheads.make ~alpha:a ~mu:(a /. 2.) ~chi:a in
        Float.abs
          (Fttime.recovery_slack ~c o ~checkpoints:n ~recoveries:r
          -. (Fttime.worst_case_length ~c o ~checkpoints:n ~recoveries:r
             -. Fttime.no_fault_length ~c o ~checkpoints:n))
        < 1e-9);
  ]

(* ------------------------------------------------------------------ *)
(* Policy                                                              *)
(* ------------------------------------------------------------------ *)

let test_policy_checkpointing () =
  let p = Policy.checkpointing ~recoveries:2 ~checkpoints:3 in
  Alcotest.(check int) "copies" 1 (Policy.replica_count p);
  Alcotest.(check int) "tolerates" 2 (Policy.tolerated_faults p);
  Alcotest.(check bool) "kind" true (Policy.kind p = Policy.Checkpointing)

let test_policy_replication () =
  let p = Policy.replication ~k:2 in
  Alcotest.(check int) "copies = k+1" 3 (Policy.replica_count p);
  Alcotest.(check int) "added replicas = k" 2 (Policy.added_replicas p);
  Alcotest.(check int) "tolerates" 2 (Policy.tolerated_faults p);
  Alcotest.(check bool) "kind" true (Policy.kind p = Policy.Replication)

let test_policy_combined_fig4c () =
  (* Fig. 4c: Q = 1, R = (0, 1) tolerates k = 2. *)
  let p = Policy.combined ~replicas:1 ~recoveries_per_copy:[ 0; 1 ] in
  Alcotest.(check int) "copies" 2 (Policy.replica_count p);
  Alcotest.(check int) "tolerates k=2" 2 (Policy.tolerated_faults p);
  Alcotest.(check bool) "kind" true
    (Policy.kind p = Policy.Replication_and_checkpointing);
  Alcotest.(check bool) "tolerates 2" true (Policy.tolerates p ~k:2);
  Alcotest.(check bool) "not 3" false (Policy.tolerates p ~k:3)

let test_policy_with_checkpoints () =
  let p = Policy.re_execution ~recoveries:2 in
  let p' = Policy.with_checkpoints p ~copy:0 ~checkpoints:4 in
  Alcotest.(check int) "updated" 4 p'.Policy.copies.(0).Policy.checkpoints;
  Alcotest.(check int) "original intact" 1 p.Policy.copies.(0).Policy.checkpoints;
  Alcotest.(check bool) "not equal" false (Policy.equal p p')

let test_policy_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Policy.make: no copies")
    (fun () -> ignore (Policy.make []));
  Alcotest.check_raises "bad checkpoints"
    (Invalid_argument "Policy: checkpoints < 1") (fun () ->
      ignore (Policy.make [ { Policy.recoveries = 0; checkpoints = 0 } ]));
  Alcotest.check_raises "negative recoveries"
    (Invalid_argument "Policy: negative recoveries") (fun () ->
      ignore (Policy.make [ { Policy.recoveries = -1; checkpoints = 1 } ]));
  Alcotest.check_raises "combined arity"
    (Invalid_argument "Policy.combined: need one recovery budget per copy")
    (fun () ->
      ignore (Policy.combined ~replicas:2 ~recoveries_per_copy:[ 1 ]))

(* ------------------------------------------------------------------ *)
(* Graph                                                               *)
(* ------------------------------------------------------------------ *)

let diamond () =
  let b = Graph.Builder.create () in
  let a = Graph.Builder.add_process b ~name:"A" in
  let b1 = Graph.Builder.add_process b ~name:"B" in
  let c = Graph.Builder.add_process b ~name:"C" in
  let d = Graph.Builder.add_process b ~name:"D" in
  let m1 = Graph.Builder.add_message b ~src:a ~dst:b1 ~size:1. in
  let m2 = Graph.Builder.add_message b ~src:a ~dst:c ~size:2. in
  let m3 = Graph.Builder.add_message b ~src:b1 ~dst:d ~size:3. in
  let m4 = Graph.Builder.add_message b ~src:c ~dst:d ~size:4. in
  (Graph.Builder.build b, (a, b1, c, d), (m1, m2, m3, m4))

let test_graph_structure () =
  let g, (a, b, c, d), _ = diamond () in
  Alcotest.(check int) "processes" 4 (Graph.process_count g);
  Alcotest.(check int) "messages" 4 (Graph.message_count g);
  Alcotest.(check (list int)) "sources" [ a ] (Graph.sources g);
  Alcotest.(check (list int)) "sinks" [ d ] (Graph.sinks g);
  Alcotest.(check (list int)) "succ a" [ b; c ] (Graph.successors g a);
  Alcotest.(check (list int)) "pred d" [ b; c ] (Graph.predecessors g d);
  Alcotest.(check (list int)) "out a" [ 0; 1 ] (Graph.out_messages g a);
  Alcotest.(check (list int)) "in d" [ 2; 3 ] (Graph.in_messages g d)

let test_graph_topo_and_depth () =
  let g, (a, _, _, d), _ = diamond () in
  let topo = Graph.topological_order g in
  Alcotest.(check int) "first" a (List.nth topo 0);
  Alcotest.(check int) "last" d (List.nth topo 3);
  let depth = Graph.depth g in
  Alcotest.(check int) "depth a" 0 depth.(a);
  Alcotest.(check int) "depth d" 2 depth.(d)

let test_graph_critical_path () =
  let g, _, _ = diamond () in
  (* proc cost 10 each, msg cost = size: A(10) m2(2) C(10) m4(4) D(10) = 36. *)
  Helpers.check_float "cpl" 36.
    (Graph.critical_path_length g ~proc_time:(fun _ -> 10.)
       ~msg_time:(fun mid -> (Graph.message g mid).Graph.size))

let test_graph_cycle_detection () =
  let b = Graph.Builder.create () in
  let a = Graph.Builder.add_process b ~name:"A" in
  let c = Graph.Builder.add_process b ~name:"B" in
  ignore (Graph.Builder.add_message b ~src:a ~dst:c ~size:1.);
  ignore (Graph.Builder.add_message b ~src:c ~dst:a ~size:1.);
  Alcotest.check_raises "cycle"
    (Invalid_argument "Graph.Builder.build: application graph has a cycle")
    (fun () -> ignore (Graph.Builder.build b))

let test_graph_builder_errors () =
  let b = Graph.Builder.create () in
  let a = Graph.Builder.add_process b ~name:"A" in
  Alcotest.check_raises "self-loop"
    (Invalid_argument "Graph.Builder.add_message: self-loop") (fun () ->
      ignore (Graph.Builder.add_message b ~src:a ~dst:a ~size:1.));
  Alcotest.check_raises "unknown endpoint"
    (Invalid_argument "Graph.Builder.add_message: unknown endpoint") (fun () ->
      ignore (Graph.Builder.add_message b ~src:a ~dst:7 ~size:1.));
  let c = Graph.Builder.add_process b ~name:"B" in
  Alcotest.check_raises "negative size"
    (Invalid_argument "Graph.Builder.add_message: negative size") (fun () ->
      ignore (Graph.Builder.add_message b ~src:a ~dst:c ~size:(-1.)))

let test_graph_restrict () =
  let g, (a, b, c, d), _ = diamond () in
  (* Keep A, C, D: edges A->C and C->D survive, B's edges vanish. *)
  let sub, map = Graph.restrict g ~keep:(fun pid -> pid <> b) in
  Alcotest.(check int) "3 processes" 3 (Graph.process_count sub);
  Alcotest.(check int) "2 messages" 2 (Graph.message_count sub);
  Alcotest.(check int) "dropped marker" (-1) map.(b);
  Alcotest.(check string) "names preserved" "C"
    (Graph.process sub map.(c)).Graph.pname;
  Alcotest.(check (list int)) "A -> C" [ map.(c) ]
    (Graph.successors sub map.(a));
  Alcotest.(check (list int)) "C -> D" [ map.(d) ]
    (Graph.successors sub map.(c));
  (* Degenerate cases. *)
  let empty, _ = Graph.restrict g ~keep:(fun _ -> false) in
  Alcotest.(check int) "empty" 0 (Graph.process_count empty);
  let full, full_map = Graph.restrict g ~keep:(fun _ -> true) in
  Alcotest.(check int) "identity procs" 4 (Graph.process_count full);
  Alcotest.(check int) "identity msgs" 4 (Graph.message_count full);
  Array.iteri (fun i m -> Alcotest.(check int) "identity map" i m) full_map

let test_graph_find_process () =
  let g, (_, b, _, _), _ = diamond () in
  Alcotest.(check (option int)) "found" (Some b) (Graph.find_process g "B");
  Alcotest.(check (option int)) "missing" None (Graph.find_process g "Z")

let graph_props =
  [
    Helpers.qtest ~count:100 "topological order respects edges"
      Helpers.arbitrary_graph
      (fun input ->
        let g = Helpers.graph_of input in
        let pos = Array.make (Graph.process_count g) 0 in
        List.iteri (fun i pid -> pos.(pid) <- i) (Graph.topological_order g);
        Array.for_all
          (fun (m : Graph.message) -> pos.(m.Graph.src) < pos.(m.Graph.dst))
          (Graph.messages g));
    Helpers.qtest ~count:100 "sources have no preds, sinks no succs"
      Helpers.arbitrary_graph
      (fun input ->
        let g = Helpers.graph_of input in
        List.for_all (fun pid -> Graph.predecessors g pid = []) (Graph.sources g)
        && List.for_all (fun pid -> Graph.successors g pid = []) (Graph.sinks g));
    Helpers.qtest ~count:100 "critical path bounded by total work"
      Helpers.arbitrary_graph
      (fun input ->
        let g = Helpers.graph_of input in
        let cpl =
          Graph.critical_path_length g ~proc_time:(fun _ -> 1.)
            ~msg_time:(fun _ -> 0.)
        in
        cpl >= 1. && cpl <= float_of_int (Graph.process_count g));
  ]

(* ------------------------------------------------------------------ *)
(* Transparency                                                        *)
(* ------------------------------------------------------------------ *)

let test_transparency_basics () =
  let g, (a, _, _, _), _ = diamond () in
  let t = Transparency.none in
  Alcotest.(check bool) "none" false (Transparency.is_frozen_proc t a);
  let t = Transparency.freeze t (Transparency.Proc a) in
  Alcotest.(check bool) "frozen" true (Transparency.is_frozen_proc t a);
  let t = Transparency.thaw t (Transparency.Proc a) in
  Alcotest.(check bool) "thawed" false (Transparency.is_frozen_proc t a);
  Alcotest.(check int) "all" 8 (Transparency.cardinal (Transparency.all g));
  Alcotest.(check int) "all messages" 4
    (Transparency.cardinal (Transparency.all_messages g))

(* ------------------------------------------------------------------ *)
(* App and Merge                                                       *)
(* ------------------------------------------------------------------ *)

let test_app_validation () =
  let g, _, _ = diamond () in
  Alcotest.check_raises "deadline > period"
    (Invalid_argument "App.make: deadline > period") (fun () ->
      ignore (App.make ~graph:g ~deadline:10. ~period:5. ()));
  Alcotest.check_raises "bad deadline"
    (Invalid_argument "App.make: deadline <= 0") (fun () ->
      ignore (App.make ~graph:g ~deadline:0. ~period:5. ()))

let test_app_fig3 () =
  let app = App.fig3 () in
  Alcotest.(check int) "5 processes" 5
    (Graph.process_count app.App.graph);
  Alcotest.(check int) "4 messages" 4 (Graph.message_count app.App.graph)

let test_app_fig5 () =
  let app = App.fig5 () in
  let g = app.App.graph in
  Alcotest.(check int) "4 processes" 4 (Graph.process_count g);
  Alcotest.(check int) "frozen objects" 3
    (Transparency.cardinal app.App.transparency);
  let p3 = Option.get (Graph.find_process g "P3") in
  Alcotest.(check bool) "P3 frozen" true
    (Transparency.is_frozen_proc app.App.transparency p3)

let test_merge_hyperperiod () =
  Helpers.check_float "lcm" 600. (Merge.hyperperiod [ 200.; 300. ]);
  Alcotest.check_raises "non-integral"
    (Invalid_argument "Merge: period must be a positive whole number")
    (fun () -> ignore (Merge.hyperperiod [ 1.5 ]))

let simple_source ~period ~deadline =
  let b = Graph.Builder.create () in
  let a = Graph.Builder.add_process b ~name:"S" in
  let c = Graph.Builder.add_process b ~name:"T" in
  let m = Graph.Builder.add_message b ~src:a ~dst:c ~size:1. in
  {
    Merge.graph = Graph.Builder.build b;
    period;
    deadline;
    transparency = Transparency.of_list [ Transparency.Msg m ];
  }

let test_merge_instances () =
  let merged =
    Merge.merge
      [ simple_source ~period:600. ~deadline:500.;
        simple_source ~period:300. ~deadline:250. ]
  in
  let g = merged.App.graph in
  (* 2 + 2*2 processes, 1 + 2 messages. *)
  Alcotest.(check int) "processes" 6 (Graph.process_count g);
  Alcotest.(check int) "messages" 3 (Graph.message_count g);
  Helpers.check_float "period = hyperperiod" 600. merged.App.period;
  (* Second instance released one period in. *)
  let s1 = Option.get (Graph.find_process g "S@1") in
  Helpers.check_float "release of instance 1" 300.
    (Graph.process g s1).Graph.release;
  (* Sinks carry the instance deadline. *)
  let t1 = Option.get (Graph.find_process g "T@1") in
  Alcotest.(check (option (Helpers.approx ())))
    "local deadline" (Some 550.)
    (Graph.process g t1).Graph.local_deadline;
  (* Frozen messages carry over to every instance. *)
  Alcotest.(check int) "frozen msgs" 3
    (Transparency.cardinal merged.App.transparency)

let test_merge_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Merge.merge: no applications")
    (fun () -> ignore (Merge.merge []));
  Alcotest.check_raises "bad deadline"
    (Invalid_argument "Merge.merge: deadline must be in (0, period]") (fun () ->
      ignore (Merge.merge [ simple_source ~period:100. ~deadline:200. ]))

let () =
  Alcotest.run "appmodel"
    [
      ( "overheads",
        [
          Alcotest.test_case "make" `Quick test_overheads_make;
          Alcotest.test_case "fig1" `Quick test_overheads_fig1;
          Alcotest.test_case "scale" `Quick test_overheads_scale;
        ] );
      ( "fttime",
        [
          Alcotest.test_case "fig1 no-fault" `Quick test_fig1_no_fault;
          Alcotest.test_case "fig1 worst case (130 ms)" `Quick
            test_fig1_worst_case;
          Alcotest.test_case "segments and recovery" `Quick
            test_segment_and_recovery;
          Alcotest.test_case "recovery slack" `Quick test_recovery_slack;
          Alcotest.test_case "replica length" `Quick test_replica_length;
          Alcotest.test_case "errors" `Quick test_fttime_errors;
        ]
        @ fttime_props );
      ( "policy",
        [
          Alcotest.test_case "checkpointing" `Quick test_policy_checkpointing;
          Alcotest.test_case "replication" `Quick test_policy_replication;
          Alcotest.test_case "combined (Fig. 4c)" `Quick
            test_policy_combined_fig4c;
          Alcotest.test_case "with_checkpoints" `Quick
            test_policy_with_checkpoints;
          Alcotest.test_case "errors" `Quick test_policy_errors;
        ] );
      ( "graph",
        [
          Alcotest.test_case "structure" `Quick test_graph_structure;
          Alcotest.test_case "topo and depth" `Quick test_graph_topo_and_depth;
          Alcotest.test_case "critical path" `Quick test_graph_critical_path;
          Alcotest.test_case "cycle detection" `Quick test_graph_cycle_detection;
          Alcotest.test_case "builder errors" `Quick test_graph_builder_errors;
          Alcotest.test_case "restrict" `Quick test_graph_restrict;
          Alcotest.test_case "find process" `Quick test_graph_find_process;
        ]
        @ graph_props );
      ( "transparency",
        [ Alcotest.test_case "basics" `Quick test_transparency_basics ] );
      ( "app+merge",
        [
          Alcotest.test_case "app validation" `Quick test_app_validation;
          Alcotest.test_case "fig3" `Quick test_app_fig3;
          Alcotest.test_case "fig5" `Quick test_app_fig5;
          Alcotest.test_case "hyperperiod" `Quick test_merge_hyperperiod;
          Alcotest.test_case "merge instances" `Quick test_merge_instances;
          Alcotest.test_case "merge errors" `Quick test_merge_errors;
        ] );
    ]
