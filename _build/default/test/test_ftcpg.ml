(* Tests for the FT-CPG layer: guard algebra, mappings, problem
   instances and the FT-CPG construction itself — checked against the
   exact structure of the paper's Fig. 5b. *)

module Cond = Ftes_ftcpg.Cond
module Mapping = Ftes_ftcpg.Mapping
module Problem = Ftes_ftcpg.Problem
module Ftcpg = Ftes_ftcpg.Ftcpg
module Policy = Ftes_app.Policy
module Graph = Ftes_app.Graph

(* ------------------------------------------------------------------ *)
(* Cond — guard algebra                                                *)
(* ------------------------------------------------------------------ *)

let lit cond fault = { Cond.cond; fault }

let guard_of_list ls = Option.get (Cond.of_literals ls)

let test_cond_basics () =
  let g = guard_of_list [ lit 2 true; lit 1 false ] in
  Alcotest.(check int) "size" 2 (Cond.size g);
  Alcotest.(check int) "faults" 1 (Cond.fault_count g);
  Alcotest.(check (option bool)) "value 1" (Some false) (Cond.value g 1);
  Alcotest.(check (option bool)) "value 3" None (Cond.value g 3);
  (* Normalized: sorted by condition. *)
  Alcotest.(check (list bool)) "sorted"
    [ false; true ]
    (List.map (fun l -> l.Cond.fault) (Cond.literals g))

let test_cond_contradiction () =
  Alcotest.(check bool) "contradictory" true
    (Cond.of_literals [ lit 1 true; lit 1 false ] = None);
  let g = guard_of_list [ lit 1 true ] in
  Alcotest.(check bool) "add contradiction" true (Cond.add g (lit 1 false) = None);
  Alcotest.check_raises "add_exn" (Invalid_argument "Cond.add_exn: contradictory literal")
    (fun () -> ignore (Cond.add_exn g (lit 1 false)))

let test_cond_implies () =
  let g1 = guard_of_list [ lit 1 true; lit 2 false ] in
  let g2 = guard_of_list [ lit 1 true ] in
  Alcotest.(check bool) "specific implies general" true (Cond.implies g1 g2);
  Alcotest.(check bool) "general does not imply specific" false
    (Cond.implies g2 g1);
  Alcotest.(check bool) "anything implies true" true (Cond.implies g2 Cond.true_)

let test_cond_to_string () =
  let g = guard_of_list [ lit 1 true; lit 2 false ] in
  Alcotest.(check string) "default names" "c1 & !c2" (Cond.to_string g);
  Alcotest.(check string) "true" "true" (Cond.to_string Cond.true_)

let small_guard =
  (* Random guard over conditions 0..5. *)
  let gen =
    QCheck.Gen.(
      list_size (int_bound 6) (pair (int_bound 5) bool) >>= fun ls ->
      return (Cond.of_literals (List.map (fun (c, f) -> lit c f) ls)))
  in
  QCheck.make
    ~print:(function Some g -> Cond.to_string g | None -> "<contradiction>")
    gen

let cond_props =
  [
    Helpers.qtest "conjoin commutes"
      QCheck.(pair small_guard small_guard)
      (fun (a, b) ->
        match (a, b) with
        | Some a, Some b -> (
            match (Cond.conjoin a b, Cond.conjoin b a) with
            | Some x, Some y -> Cond.equal x y
            | None, None -> true
            | _ -> false)
        | _ -> true);
    Helpers.qtest "conjunction implies both"
      QCheck.(pair small_guard small_guard)
      (fun (a, b) ->
        match (a, b) with
        | Some a, Some b -> (
            match Cond.conjoin a b with
            | Some c -> Cond.implies c a && Cond.implies c b
            | None -> not (Cond.compatible a b))
        | _ -> true);
    Helpers.qtest "implies is reflexive and transitive via conjoin"
      small_guard
      (fun a ->
        match a with
        | Some a ->
            Cond.implies a a
            && Cond.equal (Option.get (Cond.conjoin a a)) a
        | None -> true);
    Helpers.qtest "intersect implied by both"
      QCheck.(pair small_guard small_guard)
      (fun (a, b) ->
        match (a, b) with
        | Some a, Some b ->
            let c = Cond.intersect a b in
            Cond.implies a c && Cond.implies b c
        | _ -> true);
    Helpers.qtest "fault_count bounded by size" small_guard (fun a ->
        match a with
        | Some a -> Cond.fault_count a <= Cond.size a
        | None -> true);
  ]

(* ------------------------------------------------------------------ *)
(* Mapping                                                             *)
(* ------------------------------------------------------------------ *)

let test_mapping_basics () =
  let m = Mapping.make [ (0, [ 1 ]); (1, [ 0; 2 ]) ] in
  Alcotest.(check int) "procs" 2 (Mapping.proc_count m);
  Alcotest.(check int) "node of" 2 (Mapping.node_of m ~pid:1 ~copy:1);
  Alcotest.(check (list int)) "copies" [ 0; 2 ] (Mapping.copies m ~pid:1);
  let m2 = Mapping.remap m ~pid:1 ~copy:0 ~nid:5 in
  Alcotest.(check int) "remapped" 5 (Mapping.node_of m2 ~pid:1 ~copy:0);
  Alcotest.(check int) "original intact" 0 (Mapping.node_of m ~pid:1 ~copy:0);
  Alcotest.(check bool) "equal" false (Mapping.equal m m2)

let test_mapping_errors () =
  Alcotest.check_raises "duplicate" (Invalid_argument "Mapping.make: duplicate process")
    (fun () -> ignore (Mapping.make [ (0, [ 0 ]); (0, [ 1 ]) ]));
  Alcotest.check_raises "non-dense ids"
    (Invalid_argument "Mapping.make: process ids must be dense 0..n-1")
    (fun () -> ignore (Mapping.make [ (0, [ 0 ]); (2, [ 1 ]) ]))

let test_mapping_validate () =
  let app = Ftes_app.App.fig3 () in
  let _, wcet = Ftes_arch.Examples.fig3 () in
  let policies = Problem.default_policies ~app ~k:1 in
  (* P3 (pid 2) is restricted to N1 in Fig. 3c. *)
  let bad = Mapping.make [ (0, [ 0 ]); (1, [ 0 ]); (2, [ 1 ]); (3, [ 0 ]); (4, [ 0 ]) ] in
  Alcotest.check_raises "forbidden node"
    (Invalid_argument "Mapping.validate: process 2 mapped to forbidden node 1")
    (fun () -> Mapping.validate bad ~wcet ~policies)

(* ------------------------------------------------------------------ *)
(* Problem                                                             *)
(* ------------------------------------------------------------------ *)

let test_problem_validation () =
  let app = Ftes_app.App.fig3 () in
  let arch, wcet = Ftes_arch.Examples.fig3 () in
  let policies = Problem.default_policies ~app ~k:1 in
  let mapping = Problem.fastest_mapping ~app ~wcet ~policies in
  let p = Problem.make ~app ~arch ~wcet ~k:1 ~policies ~mapping in
  Alcotest.(check int) "k" 1 p.Problem.k;
  (* A policy that does not tolerate k is rejected. *)
  let weak = Array.copy policies in
  weak.(0) <- Policy.re_execution ~recoveries:0;
  Alcotest.check_raises "weak policy"
    (Invalid_argument
       "Problem.make: policy of process 0 tolerates only 0 < 1 faults")
    (fun () -> ignore (Problem.make ~app ~arch ~wcet ~k:1 ~policies:weak ~mapping))

let test_fastest_mapping_wraps () =
  let app = Ftes_app.App.fig3 () in
  let _, wcet = Ftes_arch.Examples.fig3 () in
  (* Replication with k = 3 needs 4 copies on 2 nodes: wraps around. *)
  let policies =
    Array.init 5 (fun _ -> Policy.replication ~k:3)
  in
  let m = Problem.fastest_mapping ~app ~wcet ~policies in
  Alcotest.(check int) "4 copies" 4 (Mapping.copy_count m ~pid:0);
  (* P3 allows only N1: all copies land there. *)
  Alcotest.(check (list int)) "restricted wraps" [ 0; 0; 0; 0 ]
    (Mapping.copies m ~pid:2)

let test_copy_wcet () =
  let p = Helpers.fig5_problem () in
  Helpers.check_float "P1 on N1" 30. (Problem.copy_wcet p ~pid:0 ~copy:0);
  Helpers.check_float "P3 on N2" 20. (Problem.copy_wcet p ~pid:2 ~copy:0)

(* ------------------------------------------------------------------ *)
(* Ftcpg — Fig. 5b structure                                           *)
(* ------------------------------------------------------------------ *)

let fig5_ftcpg () = Ftcpg.build (Helpers.fig5_problem ())

let test_fig5_copy_counts () =
  let f = fig5_ftcpg () in
  (* The paper's Fig. 5b: P1 has 3 copies, P2 6, P3 3, P4 6. *)
  let counts =
    List.map
      (fun pid -> List.length (Ftcpg.proc_copies f ~pid))
      [ 0; 1; 2; 3 ]
  in
  Alcotest.(check (list int)) "copies" [ 3; 6; 3; 6 ] counts

let test_fig5_sync_nodes () =
  let f = fig5_ftcpg () in
  let syncs =
    Array.to_list (Ftcpg.vertices f)
    |> List.filter_map (fun v ->
           match v.Ftcpg.kind with
           | Ftcpg.Sync_proc _ | Ftcpg.Sync_msg _ -> Some v.Ftcpg.name
           | Ftcpg.Proc_copy _ | Ftcpg.Msg_inst _ -> None)
  in
  Alcotest.(check (list string)) "sync nodes" [ "P3^S"; "m2^S"; "m3^S" ]
    (List.sort compare syncs)

let test_fig5_conditionals () =
  let f = fig5_ftcpg () in
  (* P1: 2, P2: 3 (2+1+0 per context), P3: 2, P4: 3. *)
  Alcotest.(check int) "conditional count" 10
    (List.length (Ftcpg.conditional_vertices f))

let test_fig5_scenarios () =
  let f = fig5_ftcpg () in
  let scenarios = Ftcpg.scenarios f in
  Alcotest.(check int) "scenario count" 15 (List.length scenarios);
  (* Budget respected and exactly one fault-free scenario. *)
  Alcotest.(check bool) "budget" true
    (List.for_all (fun s -> Ftcpg.scenario_fault_count s <= 2) scenarios);
  Alcotest.(check int) "one fault-free" 1
    (List.length
       (List.filter (fun s -> Ftcpg.scenario_fault_count s = 0) scenarios));
  (* Scenarios are pairwise distinct. *)
  Alcotest.(check int) "distinct" 15
    (List.length (List.sort_uniq Cond.compare scenarios))

let test_fig5_frozen_flags () =
  let f = fig5_ftcpg () in
  Array.iter
    (fun v ->
      match v.Ftcpg.kind with
      | Ftcpg.Proc_copy { pid = 2; _ } ->
          Alcotest.(check bool) ("frozen " ^ v.Ftcpg.name) true v.Ftcpg.frozen
      | Ftcpg.Proc_copy _ ->
          Alcotest.(check bool) ("not frozen " ^ v.Ftcpg.name) false
            v.Ftcpg.frozen
      | Ftcpg.Sync_msg _ | Ftcpg.Sync_proc _ | Ftcpg.Msg_inst _ -> ())
    (Ftcpg.vertices f)

let test_fig5_frozen_context_collapse () =
  let f = fig5_ftcpg () in
  (* P3's first attempt exists unconditionally (guard only over its own
     chain): transparency hides upstream faults. *)
  let p3_first =
    List.find
      (fun vid ->
        match (Ftcpg.vertex f vid).Ftcpg.kind with
        | Ftcpg.Proc_copy { attempt = 1; _ } -> true
        | _ -> false)
      (Ftcpg.proc_copies f ~pid:2)
  in
  Alcotest.(check bool) "guard true" true
    (Cond.equal (Ftcpg.vertex f p3_first).Ftcpg.guard Cond.true_)

let test_fig5_durations () =
  let f = fig5_ftcpg () in
  (* P1: C=30, alpha=5, mu=chi=0. First attempt 35; a recovery 35; the
     last recovery (budget exhausted) 30. *)
  match Ftcpg.proc_copies f ~pid:0 with
  | [ a1; a2; a3 ] ->
      Helpers.check_float "attempt 1" 35. (Ftcpg.vertex f a1).Ftcpg.duration;
      Helpers.check_float "attempt 2" 35. (Ftcpg.vertex f a2).Ftcpg.duration;
      Helpers.check_float "attempt 3 (no detection)" 30.
        (Ftcpg.vertex f a3).Ftcpg.duration
  | _ -> Alcotest.fail "expected 3 copies of P1"

let test_too_large () =
  let p = Helpers.fig5_problem () in
  Alcotest.(check bool) "raises Too_large" true
    (match Ftcpg.build ~max_vertices:5 p with
    | exception Ftcpg.Too_large 5 -> true
    | _ -> false)

(* Structural properties over random instances. *)
let random_ftcpg_arb =
  QCheck.make
    ~print:(fun (seed, n, k) -> Printf.sprintf "seed=%d n=%d k=%d" seed n k)
    QCheck.Gen.(
      triple (int_bound 10_000) (int_range 2 10) (int_range 1 2))

let build_random (seed, n, k) =
  let p =
    Helpers.random_problem ~processes:n ~nodes:2 ~k ~seed ()
  in
  Ftcpg.build p

let ftcpg_props =
  [
    Helpers.qtest ~count:60 "vertices are topologically ordered"
      random_ftcpg_arb
      (fun input ->
        let f = build_random input in
        Array.for_all
          (fun v -> List.for_all (fun p -> p < v.Ftcpg.vid) v.Ftcpg.preds)
          (Ftcpg.vertices f));
    Helpers.qtest ~count:60 "succs mirror preds" random_ftcpg_arb
      (fun input ->
        let f = build_random input in
        Array.for_all
          (fun v ->
            List.for_all
              (fun s -> List.mem v.Ftcpg.vid (Ftcpg.vertex f s).Ftcpg.preds)
              v.Ftcpg.succs)
          (Ftcpg.vertices f));
    Helpers.qtest ~count:60 "guards are downward closed" random_ftcpg_arb
      (fun input ->
        let f = build_random input in
        (* Every literal of a guard refers to an earlier conditional
           vertex, and that vertex's guard is implied. *)
        Array.for_all
          (fun v ->
            List.for_all
              (fun (l : Cond.literal) ->
                let producer = Ftcpg.vertex f l.Cond.cond in
                producer.Ftcpg.conditional
                && Cond.implies v.Ftcpg.guard producer.Ftcpg.guard)
              (Cond.literals v.Ftcpg.guard))
          (Ftcpg.vertices f));
    Helpers.qtest ~count:60 "scenario budget respected" random_ftcpg_arb
      (fun input ->
        let f = build_random input in
        let k = (Ftcpg.problem f).Problem.k in
        List.for_all
          (fun s -> Ftcpg.scenario_fault_count s <= k)
          (Ftcpg.scenarios f));
    Helpers.qtest ~count:60 "every vertex reachable in some scenario"
      random_ftcpg_arb
      (fun input ->
        let f = build_random input in
        let scenarios = Ftcpg.scenarios f in
        Array.for_all
          (fun v ->
            List.exists
              (fun s -> Ftcpg.exists_in f ~scenario:s v.Ftcpg.vid)
              scenarios)
          (Ftcpg.vertices f));
    Helpers.qtest ~count:60 "replicated processes hide conditions downstream"
      random_ftcpg_arb
      (fun input ->
        let f = build_random input in
        let problem = Ftcpg.problem f in
        let g = Problem.graph problem in
        (* Consumers of a replicated producer never carry the producer's
           conditions in their guards (merge nodes hide them). *)
        Array.for_all
          (fun v ->
            match v.Ftcpg.kind with
            | Ftcpg.Proc_copy { pid; attempt = 1; _ } ->
                List.for_all
                  (fun (l : Cond.literal) ->
                    match (Ftcpg.vertex f l.Cond.cond).Ftcpg.kind with
                    | Ftcpg.Proc_copy { pid = src; _ } ->
                        src = pid
                        || Policy.replica_count
                             problem.Problem.policies.(src)
                           = 1
                    | _ -> true)
                  (Cond.literals v.Ftcpg.guard)
                || Graph.in_messages g pid = []
            | _ -> true)
          (Ftcpg.vertices f));
  ]

let () =
  Alcotest.run "ftcpg"
    [
      ( "cond",
        [
          Alcotest.test_case "basics" `Quick test_cond_basics;
          Alcotest.test_case "contradiction" `Quick test_cond_contradiction;
          Alcotest.test_case "implies" `Quick test_cond_implies;
          Alcotest.test_case "to_string" `Quick test_cond_to_string;
        ]
        @ cond_props );
      ( "mapping",
        [
          Alcotest.test_case "basics" `Quick test_mapping_basics;
          Alcotest.test_case "errors" `Quick test_mapping_errors;
          Alcotest.test_case "validate" `Quick test_mapping_validate;
        ] );
      ( "problem",
        [
          Alcotest.test_case "validation" `Quick test_problem_validation;
          Alcotest.test_case "fastest mapping wraps" `Quick
            test_fastest_mapping_wraps;
          Alcotest.test_case "copy wcet" `Quick test_copy_wcet;
        ] );
      ( "ftcpg-fig5",
        [
          Alcotest.test_case "copy counts (3,6,3,6)" `Quick
            test_fig5_copy_counts;
          Alcotest.test_case "sync nodes" `Quick test_fig5_sync_nodes;
          Alcotest.test_case "conditional count" `Quick test_fig5_conditionals;
          Alcotest.test_case "15 scenarios" `Quick test_fig5_scenarios;
          Alcotest.test_case "frozen flags" `Quick test_fig5_frozen_flags;
          Alcotest.test_case "frozen context collapse" `Quick
            test_fig5_frozen_context_collapse;
          Alcotest.test_case "attempt durations" `Quick test_fig5_durations;
          Alcotest.test_case "vertex cap" `Quick test_too_large;
        ] );
      ("ftcpg-props", ftcpg_props);
    ]
