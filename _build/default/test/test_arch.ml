(* Tests for the platform model: TDMA and single-channel buses, WCET
   tables with mapping restrictions, architectures. *)

module Bus = Ftes_arch.Bus
module Wcet = Ftes_arch.Wcet
module Arch = Ftes_arch.Arch

(* ------------------------------------------------------------------ *)
(* Single bus                                                          *)
(* ------------------------------------------------------------------ *)

let test_single_tx_time () =
  let b = Bus.single ~setup:2. ~bandwidth:4. () in
  Helpers.check_float "tx" 4.5 (Bus.tx_time b ~size:10.);
  Helpers.check_float "zero size" 0. (Bus.tx_time b ~size:0.);
  Helpers.check_float "round length" 0. (Bus.round_length b);
  Alcotest.(check bool) "not tdma" false (Bus.is_tdma b)

let test_single_window () =
  let b = Bus.single ~bandwidth:1. () in
  let s, f = Bus.next_window b ~node:0 ~size:5. ~earliest:7. in
  Helpers.check_float "start immediate" 7. s;
  Helpers.check_float "finish" 12. f

let test_single_errors () =
  Alcotest.check_raises "bandwidth" (Invalid_argument "Bus.single: bandwidth <= 0")
    (fun () -> ignore (Bus.single ~bandwidth:0. ()));
  Alcotest.check_raises "setup" (Invalid_argument "Bus.single: setup < 0")
    (fun () -> ignore (Bus.single ~setup:(-1.) ~bandwidth:1. ()))

(* ------------------------------------------------------------------ *)
(* TDMA bus                                                            *)
(* ------------------------------------------------------------------ *)

let tdma3 () = Bus.tdma ~slot_length:10. ~bandwidth:1. 3

let test_tdma_basics () =
  let b = tdma3 () in
  Alcotest.(check bool) "is tdma" true (Bus.is_tdma b);
  Helpers.check_float "round" 30. (Bus.round_length b);
  Helpers.check_float "tx" 5. (Bus.tx_time b ~size:5.)

let test_tdma_slot_alignment () =
  let b = tdma3 () in
  (* Node 1 owns [10, 20) in each round of length 30. *)
  let s, f = Bus.next_window b ~node:1 ~size:5. ~earliest:0. in
  Helpers.check_float "waits for own slot" 10. s;
  Helpers.check_float "finish" 15. f;
  (* Requesting after the slot start but still inside: mid-slot fit. *)
  let s, f = Bus.next_window b ~node:1 ~size:5. ~earliest:12. in
  Helpers.check_float "mid-slot start" 12. s;
  Helpers.check_float "mid-slot finish" 17. f;
  (* Message no longer fits in the remainder: next round. *)
  let s, _ = Bus.next_window b ~node:1 ~size:5. ~earliest:16. in
  Helpers.check_float "next round" 40. s

let test_tdma_multi_slot () =
  let b = tdma3 () in
  (* 25 units > one slot: spans 3 rounds of node 0's slot, finishing 5
     into the third. *)
  let s, f = Bus.next_window b ~node:0 ~size:25. ~earliest:0. in
  Helpers.check_float "start" 0. s;
  Helpers.check_float "finish" 65. f

let test_tdma_slot_order () =
  let b = Bus.tdma ~slot_order:[| 2; 0; 1 |] ~slot_length:10. ~bandwidth:1. 3 in
  let s, _ = Bus.next_window b ~node:2 ~size:1. ~earliest:0. in
  Helpers.check_float "node 2 first" 0. s;
  let s, _ = Bus.next_window b ~node:0 ~size:1. ~earliest:0. in
  Helpers.check_float "node 0 second" 10. s

let test_tdma_window_after () =
  let b = tdma3 () in
  let s0, _ = Bus.next_window b ~node:0 ~size:4. ~earliest:0. in
  let s1, _ = Bus.window_after b ~node:0 ~size:4. ~after:s0 in
  Alcotest.(check bool) "strictly later" true (s1 > s0)

let test_tdma_errors () =
  Alcotest.check_raises "bad permutation"
    (Invalid_argument "Bus.tdma: slot_order is not a permutation") (fun () ->
      ignore (Bus.tdma ~slot_order:[| 0; 0; 1 |] ~slot_length:1. ~bandwidth:1. 3));
  Alcotest.check_raises "bad node id" (Invalid_argument "Bus.tdma: bad node id")
    (fun () ->
      ignore (Bus.tdma ~slot_order:[| 0; 3; 1 |] ~slot_length:1. ~bandwidth:1. 3));
  Alcotest.check_raises "slot length" (Invalid_argument "Bus.tdma: slot_length <= 0")
    (fun () -> ignore (Bus.tdma ~slot_length:0. ~bandwidth:1. 2))

let tdma_props =
  let arb =
    QCheck.make
      ~print:(fun (n, node, size, earliest) ->
        Printf.sprintf "nodes=%d node=%d size=%g earliest=%g" n node size
          earliest)
      QCheck.Gen.(
        int_range 1 6 >>= fun n ->
        int_range 0 (n - 1) >>= fun node ->
        float_range 0.1 40. >>= fun size ->
        float_range 0. 500. >>= fun earliest ->
        return (n, node, size, earliest))
  in
  [
    Helpers.qtest "window starts at or after earliest" arb
      (fun (n, node, size, earliest) ->
        let b = Bus.tdma ~slot_length:10. ~bandwidth:1. n in
        let s, f = Bus.next_window b ~node ~size ~earliest in
        s >= earliest -. 1e-9 && f >= s);
    Helpers.qtest "single-slot window stays inside the node's slot" arb
      (fun (n, node, size, earliest) ->
        let slot = 10. in
        let b = Bus.tdma ~slot_length:slot ~bandwidth:1. n in
        let s, f = Bus.next_window b ~node ~size ~earliest in
        size > slot
        ||
        let round = slot *. float_of_int n in
        let offset = Float.rem s round in
        let slot_start = slot *. float_of_int node in
        offset >= slot_start -. 1e-6
        && f -. s <= slot +. 1e-6
        && offset -. slot_start +. (f -. s) <= slot +. 1e-6);
    Helpers.qtest "windows of different nodes never collide" arb
      (fun (n, node, size, earliest) ->
        n < 2
        ||
        let b = Bus.tdma ~slot_length:10. ~bandwidth:1. n in
        let size = min size 9.9 in
        let other = (node + 1) mod n in
        let s1, f1 = Bus.next_window b ~node ~size ~earliest in
        let s2, f2 = Bus.next_window b ~node:other ~size ~earliest in
        f1 <= s2 +. 1e-9 || f2 <= s1 +. 1e-9);
  ]

(* ------------------------------------------------------------------ *)
(* Wcet                                                                *)
(* ------------------------------------------------------------------ *)

let test_wcet_basics () =
  let w = Wcet.create ~procs:2 ~nodes:3 in
  Wcet.set w ~pid:0 ~nid:0 10.;
  Wcet.set w ~pid:0 ~nid:2 20.;
  Wcet.set w ~pid:1 ~nid:1 5.;
  Alcotest.(check (option (Helpers.approx ()))) "get" (Some 10.)
    (Wcet.get w ~pid:0 ~nid:0);
  Alcotest.(check (option (Helpers.approx ()))) "restricted" None
    (Wcet.get w ~pid:0 ~nid:1);
  Alcotest.(check (list int)) "allowed" [ 0; 2 ] (Wcet.allowed_nodes w ~pid:0);
  Alcotest.(check bool) "fastest" true
    (Wcet.fastest_node w ~pid:0 = Some (0, 10.));
  Helpers.check_float "average" 15. (Wcet.average_wcet w ~pid:0);
  Wcet.forbid w ~pid:0 ~nid:0;
  Alcotest.(check (list int)) "after forbid" [ 2 ] (Wcet.allowed_nodes w ~pid:0)

let test_wcet_validate () =
  let w = Wcet.create ~procs:1 ~nodes:2 in
  Alcotest.check_raises "no allowed node"
    (Invalid_argument "Wcet.validate: process 0 has no allowed node")
    (fun () -> Wcet.validate w);
  Wcet.set w ~pid:0 ~nid:1 3.;
  Wcet.validate w

let test_wcet_map_copy () =
  let w = Wcet.create ~procs:1 ~nodes:1 in
  Wcet.set w ~pid:0 ~nid:0 10.;
  let w2 = Wcet.map (fun c -> c *. 2.) w in
  Alcotest.(check (option (Helpers.approx ()))) "mapped" (Some 20.)
    (Wcet.get w2 ~pid:0 ~nid:0);
  let w3 = Wcet.copy w in
  Wcet.set w3 ~pid:0 ~nid:0 99.;
  Alcotest.(check (option (Helpers.approx ()))) "copy independent" (Some 10.)
    (Wcet.get w ~pid:0 ~nid:0)

let test_wcet_errors () =
  let w = Wcet.create ~procs:1 ~nodes:1 in
  Alcotest.check_raises "bad pid" (Invalid_argument "Wcet: bad process id")
    (fun () -> ignore (Wcet.get w ~pid:5 ~nid:0));
  Alcotest.check_raises "negative" (Invalid_argument "Wcet.set: negative WCET")
    (fun () -> Wcet.set w ~pid:0 ~nid:0 (-1.));
  Alcotest.check_raises "get_exn restricted"
    (Invalid_argument "Wcet.get_exn: process 0 cannot run on node 0")
    (fun () -> ignore (Wcet.get_exn w ~pid:0 ~nid:0))

(* ------------------------------------------------------------------ *)
(* Arch + examples                                                     *)
(* ------------------------------------------------------------------ *)

let test_arch_make () =
  let a = Arch.make ~node_count:3 ~bus:(Arch.default_bus ~node_count:3) () in
  Alcotest.(check int) "nodes" 3 (Arch.node_count a);
  Alcotest.(check string) "name" "N2" (Arch.node a 1).Arch.nname;
  Alcotest.(check (list int)) "ids" [ 0; 1; 2 ] (Arch.node_ids a);
  Alcotest.check_raises "bad id" (Invalid_argument "Arch.node: bad id")
    (fun () -> ignore (Arch.node a 3));
  Alcotest.check_raises "names mismatch"
    (Invalid_argument "Arch.make: names length mismatch") (fun () ->
      ignore
        (Arch.make ~names:[ "a" ] ~node_count:2
           ~bus:(Arch.default_bus ~node_count:2) ()))

let test_examples_fig3 () =
  let arch, wcet = Ftes_arch.Examples.fig3 () in
  Alcotest.(check int) "two nodes" 2 (Arch.node_count arch);
  (* The paper's table: P2 is 40 on N1 and 60 on N2; P3 restricted. *)
  Alcotest.(check (option (Helpers.approx ()))) "P2@N1" (Some 40.)
    (Wcet.get wcet ~pid:1 ~nid:0);
  Alcotest.(check (option (Helpers.approx ()))) "P2@N2" (Some 60.)
    (Wcet.get wcet ~pid:1 ~nid:1);
  Alcotest.(check (option (Helpers.approx ()))) "P3 restricted" None
    (Wcet.get wcet ~pid:2 ~nid:1)

let test_examples_fig5 () =
  let arch, wcet = Ftes_arch.Examples.fig5 () in
  Alcotest.(check int) "two nodes" 2 (Arch.node_count arch);
  (* Forced mapping: P1, P2 on N1; P3, P4 on N2. *)
  Alcotest.(check (list int)) "P1 -> N1" [ 0 ] (Wcet.allowed_nodes wcet ~pid:0);
  Alcotest.(check (list int)) "P3 -> N2" [ 1 ] (Wcet.allowed_nodes wcet ~pid:2)

let () =
  Alcotest.run "archmodel"
    [
      ( "single-bus",
        [
          Alcotest.test_case "tx time" `Quick test_single_tx_time;
          Alcotest.test_case "window" `Quick test_single_window;
          Alcotest.test_case "errors" `Quick test_single_errors;
        ] );
      ( "tdma-bus",
        [
          Alcotest.test_case "basics" `Quick test_tdma_basics;
          Alcotest.test_case "slot alignment" `Quick test_tdma_slot_alignment;
          Alcotest.test_case "multi-slot message" `Quick test_tdma_multi_slot;
          Alcotest.test_case "slot order" `Quick test_tdma_slot_order;
          Alcotest.test_case "window_after" `Quick test_tdma_window_after;
          Alcotest.test_case "errors" `Quick test_tdma_errors;
        ]
        @ tdma_props );
      ( "wcet",
        [
          Alcotest.test_case "basics" `Quick test_wcet_basics;
          Alcotest.test_case "validate" `Quick test_wcet_validate;
          Alcotest.test_case "map and copy" `Quick test_wcet_map_copy;
          Alcotest.test_case "errors" `Quick test_wcet_errors;
        ] );
      ( "arch",
        [
          Alcotest.test_case "make" `Quick test_arch_make;
          Alcotest.test_case "examples fig3" `Quick test_examples_fig3;
          Alcotest.test_case "examples fig5" `Quick test_examples_fig5;
        ] );
    ]
