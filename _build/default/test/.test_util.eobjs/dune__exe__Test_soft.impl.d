test/test_soft.ml: Alcotest Array Ftes_app Ftes_arch Ftes_core Ftes_ftcpg Ftes_sched Ftes_soft Ftes_util Ftes_workload Helpers List Printf QCheck
