test/test_dsl.ml: Alcotest Array Filename Ftes_app Ftes_arch Ftes_dsl Ftes_ftcpg Ftes_workload Helpers Option Printf QCheck Sys
