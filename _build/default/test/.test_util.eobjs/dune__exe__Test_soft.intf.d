test/test_soft.mli:
