test/test_workload.ml: Alcotest Array Ftes_app Ftes_arch Ftes_dsl Ftes_ftcpg Ftes_workload Helpers List Printf QCheck
