test/test_util.ml: Alcotest Array Ftes_util Gen Helpers List QCheck String
