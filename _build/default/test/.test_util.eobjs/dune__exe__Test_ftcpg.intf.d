test/test_ftcpg.mli:
