test/test_optim.ml: Alcotest Array Float Ftes_app Ftes_ftcpg Ftes_optim Ftes_sched Ftes_workload Helpers List Printf QCheck
