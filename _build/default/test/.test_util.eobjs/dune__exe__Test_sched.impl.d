test/test_sched.ml: Alcotest Array Float Ftes_app Ftes_arch Ftes_ftcpg Ftes_sched Ftes_util Hashtbl Helpers List Printf QCheck String
