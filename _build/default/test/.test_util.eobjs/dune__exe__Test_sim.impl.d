test/test_sim.ml: Alcotest Array Astring_contains Ftes_app Ftes_ftcpg Ftes_sched Ftes_sim Ftes_util Helpers List Option Printf QCheck
