test/helpers.ml: Alcotest Array Ftes_app Ftes_arch Ftes_ftcpg Ftes_workload Printf QCheck QCheck_alcotest
