test/test_app.ml: Alcotest Array Float Ftes_app Helpers List Option QCheck
