test/test_integration.ml: Alcotest Ftes_app Ftes_arch Ftes_core Ftes_ftcpg Ftes_optim Ftes_sched Ftes_sim Ftes_workload Helpers List Option
