test/test_ftcpg.ml: Alcotest Array Ftes_app Ftes_arch Ftes_ftcpg Helpers List Option Printf QCheck
