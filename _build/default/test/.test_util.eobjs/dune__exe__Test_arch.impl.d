test/test_arch.ml: Alcotest Float Ftes_arch Helpers Printf QCheck
