(* Tests for the synthetic workload generator. *)

module Gen = Ftes_workload.Gen
module Graph = Ftes_app.Graph
module App = Ftes_app.App
module Wcet = Ftes_arch.Wcet
module Transparency = Ftes_app.Transparency

(* Compare instances via their textual form — covers graphs, overheads,
   transparency and WCET tables at once. *)
let render (app, arch, wcet) =
  Ftes_dsl.Dsl.to_string { Ftes_dsl.Dsl.app; arch; wcet; k = 1 }

let test_determinism () =
  let spec = { Gen.default with processes = 25; nodes = 4; seed = 123 } in
  Alcotest.(check string) "identical instances"
    (render (Gen.instance spec))
    (render (Gen.instance spec))

let test_seed_changes_instance () =
  let spec = { Gen.default with processes = 20; seed = 1 } in
  Alcotest.(check bool) "different" true
    (render (Gen.instance spec) <> render (Gen.instance { spec with seed = 2 }))

let test_counts () =
  let spec = { Gen.default with processes = 30; nodes = 5; seed = 7 } in
  let app, arch, wcet = Gen.instance spec in
  Alcotest.(check int) "processes" 30 (Graph.process_count app.App.graph);
  Alcotest.(check int) "nodes" 5 (Ftes_arch.Arch.node_count arch);
  Alcotest.(check int) "wcet procs" 30 (Wcet.proc_count wcet);
  Alcotest.(check int) "wcet nodes" 5 (Wcet.node_count wcet)

let test_no_frozen_by_default () =
  let app, _, _ = Gen.instance { Gen.default with processes = 30; seed = 3 } in
  Alcotest.(check int) "no transparency" 0
    (Transparency.cardinal app.App.transparency)

let test_frozen_probabilities () =
  let spec =
    {
      Gen.default with
      processes = 40;
      seed = 5;
      frozen_proc_prob = 1.0;
      frozen_msg_prob = 1.0;
    }
  in
  let app, _, _ = Gen.instance spec in
  let g = app.App.graph in
  Alcotest.(check int) "everything frozen"
    (Graph.process_count g + Graph.message_count g)
    (Transparency.cardinal app.App.transparency)

let test_errors () =
  Alcotest.check_raises "no processes" (Invalid_argument "Gen.instance: no processes")
    (fun () -> ignore (Gen.instance { Gen.default with processes = 0 }));
  Alcotest.check_raises "no nodes" (Invalid_argument "Gen.instance: no nodes")
    (fun () -> ignore (Gen.instance { Gen.default with nodes = 0 }))

let workload_props =
  let arb =
    QCheck.make
      ~print:(fun (seed, n, nodes) ->
        Printf.sprintf "seed=%d n=%d nodes=%d" seed n nodes)
      QCheck.Gen.(triple (int_bound 10_000) (int_range 1 60) (int_range 1 6))
  in
  [
    Helpers.qtest ~count:100 "wcets within spec bounds" arb
      (fun (seed, n, nodes) ->
        let spec = { Gen.default with processes = n; nodes; seed } in
        let _, _, wcet = Gen.instance spec in
        let ok = ref true in
        for pid = 0 to n - 1 do
          for nid = 0 to nodes - 1 do
            match Wcet.get wcet ~pid ~nid with
            | Some c ->
                if c < spec.Gen.wcet_min -. 1e-9 || c > spec.Gen.wcet_max +. 1e-9
                then ok := false
            | None -> ()
          done
        done;
        !ok);
    Helpers.qtest ~count:100 "every process keeps an allowed node" arb
      (fun (seed, n, nodes) ->
        let spec =
          { Gen.default with processes = n; nodes; seed; restrict_prob = 0.8 }
        in
        let _, _, wcet = Gen.instance spec in
        let ok = ref true in
        for pid = 0 to n - 1 do
          if Wcet.allowed_nodes wcet ~pid = [] then ok := false
        done;
        !ok);
    Helpers.qtest ~count:100 "graphs are connected enough (non-sources have preds)"
      arb
      (fun (seed, n, nodes) ->
        let spec = { Gen.default with processes = n; nodes; seed } in
        let app, _, _ = Gen.instance spec in
        let g = app.App.graph in
        (* Builder already guarantees acyclicity; check that the merged
           positional structure is sane. *)
        Graph.process_count g = n
        && List.for_all
             (fun pid -> Graph.in_messages g pid <> [])
             (List.filter
                (fun pid -> not (List.mem pid (Graph.sources g)))
                (List.init n (fun i -> i))));
    Helpers.qtest ~count:60 "problem helper produces a valid instance" arb
      (fun (seed, n, nodes) ->
        let spec = { Gen.default with processes = n; nodes; seed } in
        let p = Gen.problem ~k:2 spec in
        p.Ftes_ftcpg.Problem.k = 2
        && Array.for_all
             (fun policy -> Ftes_app.Policy.tolerates policy ~k:2)
             p.Ftes_ftcpg.Problem.policies);
  ]

let () =
  Alcotest.run "workload"
    [
      ( "gen",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_instance;
          Alcotest.test_case "counts" `Quick test_counts;
          Alcotest.test_case "no frozen by default" `Quick
            test_no_frozen_by_default;
          Alcotest.test_case "frozen probabilities" `Quick
            test_frozen_probabilities;
          Alcotest.test_case "errors" `Quick test_errors;
        ]
        @ workload_props );
    ]
