(* Mixed soft/hard scheduling (the paper's companion work [17]):

   A vision-assisted controller on two ECUs. The control chain
   (Sample -> Law -> Actuate) is hard: its deadline must hold in every
   scenario with at most k = 2 transient faults, so it gets re-execution
   budgets and recovery slack. The vision pipeline (Detect -> Track ->
   Overlay -> Log) is soft: completing it earns utility that decays with
   completion time, and it only runs in the capacity the hard schedule
   leaves over. Faults eat into exactly that capacity, so the guaranteed
   utility degrades with k while the hard deadline never does.

   Run with: dune exec examples/soft_goals.exe *)

module Graph = Ftes_app.Graph
module U = Ftes_soft.Utility
module SS = Ftes_soft.Softsched

let () =
  let b = Graph.Builder.create () in
  let o = Ftes_app.Overheads.make ~alpha:2. ~mu:2. ~chi:1. in
  let add name = Graph.Builder.add_process b ~overheads:o ~name in
  (* Hard control chain. *)
  let sample = add "Sample" in
  let law = add "Law" in
  let actuate = add "Actuate" in
  (* Soft vision pipeline (fed by the hard sample — allowed; the
     converse would be rejected). *)
  let detect = add "Detect" in
  let track = add "Track" in
  let overlay = add "Overlay" in
  let log = add "Log" in
  let msg src dst size = ignore (Graph.Builder.add_message b ~src ~dst ~size) in
  msg sample law 2.;
  msg law actuate 2.;
  msg sample detect 4.;
  msg detect track 4.;
  msg track overlay 4.;
  msg overlay log 2.;
  let graph = Graph.Builder.build b in
  let app = Ftes_app.App.make ~graph ~deadline:400. ~period:400. () in

  let nodes = 2 in
  let arch =
    Ftes_arch.Arch.make ~node_count:nodes
      ~bus:(Ftes_arch.Arch.default_bus ~node_count:nodes)
      ()
  in
  let wcet = Ftes_arch.Wcet.create ~procs:(Graph.process_count graph) ~nodes in
  List.iter
    (fun (pid, c1, c2) ->
      Ftes_arch.Wcet.set wcet ~pid ~nid:0 c1;
      Ftes_arch.Wcet.set wcet ~pid ~nid:1 c2)
    [
      (sample, 10., 12.); (law, 20., 24.); (actuate, 8., 8.);
      (detect, 40., 45.); (track, 30., 35.); (overlay, 20., 20.);
      (log, 5., 5.);
    ];

  let classes =
    Array.init (Graph.process_count graph) (fun pid ->
        if pid = detect then
          SS.Soft (U.linear ~value:100. ~from_:120. ~zero_at:350.)
        else if pid = track then
          SS.Soft (U.linear ~value:80. ~from_:160. ~zero_at:380.)
        else if pid = overlay then
          SS.Soft (U.step ~value:50. ~until:250. ~late_value:20. ~cutoff:380.)
        else if pid = log then SS.Soft (U.constant ~value:10. ~until:400.)
        else SS.Hard)
  in

  List.iter
    (fun k ->
      let policies =
        Array.init (Graph.process_count graph) (fun _ ->
            Ftes_app.Policy.re_execution ~recoveries:k)
      in
      let mapping = Ftes_ftcpg.Problem.fastest_mapping ~app ~wcet ~policies in
      let p = Ftes_ftcpg.Problem.make ~app ~arch ~wcet ~k ~policies ~mapping in
      let r = SS.schedule ~classes p in
      Format.printf "== k = %d ==@.%a@.@." k (SS.pp_result graph) r;
      assert (r.SS.hard.Ftes_sched.Slack.length <= app.Ftes_app.App.deadline))
    [ 0; 1; 2; 3 ]
