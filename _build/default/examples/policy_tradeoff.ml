(* Fault-tolerance policy trade-offs on a single process — the paper's
   Figs. 1, 2 and 4 — plus the checkpoint-count trade-off curve behind
   the closed-form optimum used as the Fig. 8 baseline.

   Run with: dune exec examples/policy_tradeoff.exe *)

let section title = Format.printf "@.== %s ==@." title

let timings rows =
  List.iter (fun (l, v) -> Format.printf "  %-55s %8.1f ms@." l v) rows

let () =
  section "Fig. 1: rollback recovery with checkpointing (C=60, a=10, x=5, u=10)";
  timings (Ftes_core.Experiments.fig1 ());
  Format.printf
    "  (the 2-checkpoint 1-fault case is the paper's 130 ms timeline)@.";

  section "Fig. 2: active replication vs. primary-backup (C=60, a=10)";
  timings (Ftes_core.Experiments.fig2 ());

  section "Fig. 4: policy assignment cases (C=30, a=u=x=5, k=2)";
  timings (Ftes_core.Experiments.fig4 ());

  section "checkpoint-count trade-off, W(n, k) for C=60, k=2";
  let o = Ftes_app.Overheads.fig1 in
  let c = 60. in
  for n = 1 to 8 do
    let w = Ftes_app.Fttime.worst_case_length ~c o ~checkpoints:n ~recoveries:2 in
    let e0 = Ftes_app.Fttime.no_fault_length ~c o ~checkpoints:n in
    Format.printf "  n=%d   no-fault %6.1f   worst case %6.1f%s@." n e0 w
      (if n = Ftes_optim.Checkpoint.local_optimum ~c o ~k:2 then
         "   <- local optimum (closed form)"
       else "")
  done;

  section "why the local optimum is not globally optimal (Fig. 8's point)";
  Format.printf
    "  The closed form minimizes each process's own worst case, but every@.";
  Format.printf
    "  checkpoint lengthens the fault-free root schedule of the whole@.";
  Format.printf
    "  application, while recovery slack is shared across processes. The@.";
  Format.printf
    "  global optimization (Ftes_optim.Checkpoint.global_optimize) trims@.";
  Format.printf
    "  checkpoints from processes that do not constrain the shared slack:@.";
  let spec =
    { Ftes_workload.Gen.default with processes = 15; nodes = 3; seed = 42 }
  in
  let problem = Ftes_workload.Gen.problem ~k:3 spec in
  let local = Ftes_optim.Checkpoint.assign_local problem in
  let glob = Ftes_optim.Checkpoint.global_optimize local in
  let len p = Ftes_sched.Slack.length p in
  Format.printf "  15-process example: local optima %.1f -> global %.1f (%.1f%% shorter)@."
    (len local) (len glob)
    ((len local -. len glob) /. len local *. 100.)
