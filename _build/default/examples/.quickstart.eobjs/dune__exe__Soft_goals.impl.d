examples/soft_goals.ml: Array Format Ftes_app Ftes_arch Ftes_ftcpg Ftes_sched Ftes_soft List
