examples/policy_tradeoff.mli:
