examples/policy_tradeoff.ml: Format Ftes_app Ftes_core Ftes_optim Ftes_sched Ftes_workload List
