examples/quickstart.ml: Format Ftes_app Ftes_arch Ftes_core Ftes_optim Ftes_sched List
