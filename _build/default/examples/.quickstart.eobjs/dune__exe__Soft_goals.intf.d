examples/soft_goals.mli:
