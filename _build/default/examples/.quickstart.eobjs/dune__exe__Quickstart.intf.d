examples/quickstart.mli:
