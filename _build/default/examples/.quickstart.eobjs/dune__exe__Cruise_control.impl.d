examples/cruise_control.ml: Array Format Ftes_app Ftes_arch Ftes_core Ftes_ftcpg Ftes_optim Ftes_sched Ftes_sim List Option
