examples/paper_example.ml: Format Ftes_app Ftes_core Ftes_ftcpg Ftes_sched Ftes_sim List
