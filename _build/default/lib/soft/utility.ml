type t =
  | Constant of { value : float; until : float }
  | Step of { value : float; until : float; late_value : float; cutoff : float }
  | Linear of { value : float; from_ : float; zero_at : float }

let nonneg name v = if v < 0. then invalid_arg ("Utility: negative " ^ name)

let constant ~value ~until =
  nonneg "value" value;
  nonneg "until" until;
  Constant { value; until }

let step ~value ~until ~late_value ~cutoff =
  nonneg "value" value;
  nonneg "late value" late_value;
  if late_value > value then invalid_arg "Utility.step: late value exceeds value";
  if cutoff < until then invalid_arg "Utility.step: cutoff before until";
  Step { value; until; late_value; cutoff }

let linear ~value ~from_ ~zero_at =
  nonneg "value" value;
  if zero_at <= from_ then invalid_arg "Utility.linear: zero_at <= from_";
  Linear { value; from_; zero_at }

let value_at t time =
  match t with
  | Constant { value; until } -> if time <= until then value else 0.
  | Step { value; until; late_value; cutoff } ->
      if time <= until then value else if time <= cutoff then late_value else 0.
  | Linear { value; from_; zero_at } ->
      if time <= from_ then value
      else if time >= zero_at then 0.
      else value *. (zero_at -. time) /. (zero_at -. from_)

let max_value t = value_at t 0.

let worthwhile t time = value_at t time > 0.

let pp ppf = function
  | Constant { value; until } ->
      Format.fprintf ppf "constant %g until %g" value until
  | Step { value; until; late_value; cutoff } ->
      Format.fprintf ppf "step %g until %g, %g until %g" value until late_value
        cutoff
  | Linear { value; from_; zero_at } ->
      Format.fprintf ppf "linear %g from %g to 0 at %g" value from_ zero_at
