lib/soft/softsched.ml: Array Float Format Ftes_app Ftes_arch Ftes_ftcpg Ftes_sched Hashtbl List Option Printf Utility
