lib/soft/utility.ml: Format
