lib/soft/softsched.mli: Format Ftes_app Ftes_ftcpg Ftes_sched Utility
