lib/soft/utility.mli: Format
