(** Utility functions of soft processes.

    The paper's companion work ([17]: Izosimov, Pop, Eles, Peng,
    "Scheduling of Fault-Tolerant Embedded Systems with Soft and Hard
    Time Constraints", DATE 2008) extends the synthesis flow with soft
    processes: their completion is not required, but completing them
    early yields {e utility} — a non-increasing function of completion
    time. A soft process completing with zero (or negative) utility may
    as well be dropped.

    Three standard shapes are provided; all are non-increasing and
    eventually zero. *)

type t =
  | Constant of { value : float; until : float }
      (** Full value up to [until] (e.g. the period), zero after. *)
  | Step of { value : float; until : float; late_value : float; cutoff : float }
      (** [value] up to [until], [late_value] up to [cutoff], then 0. *)
  | Linear of { value : float; from_ : float; zero_at : float }
      (** Full value up to [from_], decaying linearly to 0 at
          [zero_at]. *)

val constant : value:float -> until:float -> t
val step : value:float -> until:float -> late_value:float -> cutoff:float -> t
val linear : value:float -> from_:float -> zero_at:float -> t
(** @raise Invalid_argument on negative values or unordered breakpoints. *)

val value_at : t -> float -> float
(** Utility obtained when the process completes at the given time. *)

val max_value : t -> float
(** Utility of an immediate completion. *)

val worthwhile : t -> float -> bool
(** [value_at t time > 0.] — completing later is equivalent to
    dropping. *)

val pp : Format.formatter -> t -> unit
