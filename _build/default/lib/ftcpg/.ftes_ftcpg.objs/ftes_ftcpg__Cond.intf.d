lib/ftcpg/cond.mli: Format
