lib/ftcpg/ftcpg.ml: Array Cond Format Ftes_app Ftes_arch Hashtbl List Mapping Printf Problem
