lib/ftcpg/mapping.ml: Array Format Ftes_app Ftes_arch List Printf String
