lib/ftcpg/cond.ml: Format List Option Printf Stdlib
