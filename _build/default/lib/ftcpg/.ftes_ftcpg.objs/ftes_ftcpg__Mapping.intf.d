lib/ftcpg/mapping.mli: Format Ftes_app Ftes_arch
