lib/ftcpg/ftcpg.mli: Cond Format Problem
