lib/ftcpg/problem.ml: Array Format Ftes_app Ftes_arch List Mapping Option Printf
