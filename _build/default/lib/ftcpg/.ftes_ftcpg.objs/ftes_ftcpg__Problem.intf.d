lib/ftcpg/problem.mli: Format Ftes_app Ftes_arch Mapping
