(** Mapping of processes — and of every replica introduced by the
    fault-tolerance policy — to computation nodes (paper, Sec. 4 and 6,
    the function M). *)

type t

val make : (int * int list) list -> t
(** [make [(pid, nodes); ...]]: [nodes] assigns a node to every copy of
    process [pid] (copy 0 is the original). Every process must appear
    exactly once.
    @raise Invalid_argument on duplicates or empty copy lists. *)

val of_array : int array array -> t
(** [of_array a]: [a.(pid).(copy)] is the node id. The array is copied. *)

val node_of : t -> pid:int -> copy:int -> int
(** @raise Invalid_argument on out-of-range ids. *)

val copies : t -> pid:int -> int list
(** Node of each copy of the process, in copy order. *)

val copy_count : t -> pid:int -> int
val proc_count : t -> int

val remap : t -> pid:int -> copy:int -> nid:int -> t
(** Functional update. *)

val validate :
  t -> wcet:Ftes_arch.Wcet.t -> policies:Ftes_app.Policy.t array -> unit
(** Checks that every process has exactly [replica_count policies.(pid)]
    mapped copies, each on a node allowed by the WCET table. Replicas
    may share a node: a transient fault hits one execution, not a node,
    so [q + 1] copies tolerate [q] faults wherever they run — distinct
    nodes are a performance choice (parallel space redundancy), made by
    the optimizer, not a correctness requirement (cf. the paper's remark
    that single-checkpoint rollback is primary-backup on one node).
    @raise Invalid_argument on any violation. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
