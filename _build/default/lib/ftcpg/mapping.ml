type t = { assign : int array array }

let of_array a = { assign = Array.map Array.copy a }

let make bindings =
  let n = List.length bindings in
  let assign = Array.make n [||] in
  List.iter
    (fun (pid, nodes) ->
      if pid < 0 || pid >= n then
        invalid_arg "Mapping.make: process ids must be dense 0..n-1";
      if assign.(pid) <> [||] then invalid_arg "Mapping.make: duplicate process";
      if nodes = [] then invalid_arg "Mapping.make: process with no copies";
      assign.(pid) <- Array.of_list nodes)
    bindings;
  Array.iteri
    (fun pid a ->
      if a = [||] then
        invalid_arg (Printf.sprintf "Mapping.make: process %d missing" pid))
    assign;
  { assign }

let proc_count t = Array.length t.assign

let check_pid t pid =
  if pid < 0 || pid >= proc_count t then invalid_arg "Mapping: bad process id"

let copy_count t ~pid =
  check_pid t pid;
  Array.length t.assign.(pid)

let node_of t ~pid ~copy =
  check_pid t pid;
  if copy < 0 || copy >= Array.length t.assign.(pid) then
    invalid_arg "Mapping.node_of: bad copy index";
  t.assign.(pid).(copy)

let copies t ~pid =
  check_pid t pid;
  Array.to_list t.assign.(pid)

let remap t ~pid ~copy ~nid =
  check_pid t pid;
  if copy < 0 || copy >= Array.length t.assign.(pid) then
    invalid_arg "Mapping.remap: bad copy index";
  let assign = Array.map Array.copy t.assign in
  assign.(pid).(copy) <- nid;
  { assign }

let validate t ~wcet ~policies =
  if Array.length policies <> proc_count t then
    invalid_arg "Mapping.validate: policy count mismatch";
  Array.iteri
    (fun pid nodes ->
      let expected = Ftes_app.Policy.replica_count policies.(pid) in
      if Array.length nodes <> expected then
        invalid_arg
          (Printf.sprintf
             "Mapping.validate: process %d has %d mapped copies, policy wants \
              %d"
             pid (Array.length nodes) expected);
      Array.iter
        (fun nid ->
          if not (Ftes_arch.Wcet.allowed wcet ~pid ~nid) then
            invalid_arg
              (Printf.sprintf
                 "Mapping.validate: process %d mapped to forbidden node %d" pid
                 nid))
        nodes)
    t.assign

let equal a b =
  Array.length a.assign = Array.length b.assign
  && Array.for_all2 (fun x y -> x = y) a.assign b.assign

let pp ppf t =
  Format.fprintf ppf "@[<v>mapping:@,";
  Array.iteri
    (fun pid nodes ->
      Format.fprintf ppf "  P%d -> %s@," (pid + 1)
        (String.concat ", "
           (Array.to_list (Array.map (fun n -> Printf.sprintf "N%d" (n + 1)) nodes))))
    t.assign;
  Format.fprintf ppf "@]"
