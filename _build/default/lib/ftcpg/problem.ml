module App = Ftes_app.App
module Graph = Ftes_app.Graph
module Policy = Ftes_app.Policy
module Wcet = Ftes_arch.Wcet
module Arch = Ftes_arch.Arch

type t = {
  app : App.t;
  arch : Arch.t;
  wcet : Wcet.t;
  k : int;
  policies : Policy.t array;
  mapping : Mapping.t;
}

let make ~app ~arch ~wcet ~k ~policies ~mapping =
  if k < 0 then invalid_arg "Problem.make: k < 0";
  let n = Graph.process_count app.App.graph in
  if Wcet.proc_count wcet <> n then
    invalid_arg "Problem.make: WCET table size mismatch";
  if Wcet.node_count wcet <> Arch.node_count arch then
    invalid_arg "Problem.make: WCET node count mismatch";
  if Array.length policies <> n then
    invalid_arg "Problem.make: policy count mismatch";
  Array.iteri
    (fun pid p ->
      if not (Policy.tolerates p ~k) then
        invalid_arg
          (Printf.sprintf
             "Problem.make: policy of process %d tolerates only %d < %d faults"
             pid (Policy.tolerated_faults p) k))
    policies;
  Mapping.validate mapping ~wcet ~policies;
  { app; arch; wcet; k; policies; mapping }

let with_policies t policies mapping =
  make ~app:t.app ~arch:t.arch ~wcet:t.wcet ~k:t.k ~policies ~mapping

let with_k t k =
  make ~app:t.app ~arch:t.arch ~wcet:t.wcet ~k ~policies:t.policies
    ~mapping:t.mapping

let default_policies ~app ~k =
  Array.init
    (Graph.process_count app.App.graph)
    (fun _ -> Policy.re_execution ~recoveries:k)

let fastest_mapping ~app ~wcet ~policies =
  let n = Graph.process_count app.App.graph in
  let assign =
    Array.init n (fun pid ->
        let copies = Policy.replica_count policies.(pid) in
        let ranked =
          List.sort
            (fun (_, c1) (_, c2) -> compare c1 c2)
            (List.filter_map
               (fun nid ->
                 Option.map (fun c -> (nid, c)) (Wcet.get wcet ~pid ~nid))
               (List.init (Wcet.node_count wcet) (fun i -> i)))
        in
        if ranked = [] then
          invalid_arg
            (Printf.sprintf
               "Problem.fastest_mapping: process %d has no allowed node" pid);
        (* Copies spread over the fastest allowed nodes; when there are
           more copies than allowed nodes they wrap around (replicas may
           share a node — they serialize on its timeline). *)
        let arr = Array.of_list (List.map fst ranked) in
        Array.init copies (fun i -> arr.(i mod Array.length arr)))
  in
  Mapping.of_array assign

let copy_wcet t ~pid ~copy =
  let nid = Mapping.node_of t.mapping ~pid ~copy in
  Wcet.get_exn t.wcet ~pid ~nid

let copy_plan t ~pid ~copy = t.policies.(pid).Policy.copies.(copy)

let graph t = t.app.App.graph

let pp ppf t =
  Format.fprintf ppf "@[<v>problem: k=%d@,%a@,%a@,%a@]" t.k App.pp t.app
    Arch.pp t.arch Mapping.pp t.mapping
