(** A complete synthesis instance: the application, the platform, the
    fault hypothesis [k], and a candidate system configuration — the
    fault-tolerance policy assignment F = 〈P, Q, R, X〉 and the mapping M
    (paper, Sec. 6). Scheduling such an instance yields the remaining
    part of the configuration ψ, the schedule tables S. *)

type t = private {
  app : Ftes_app.App.t;
  arch : Ftes_arch.Arch.t;
  wcet : Ftes_arch.Wcet.t;
  k : int;  (** Maximum number of transient faults per execution cycle,
                anywhere in the system (can exceed the node count). *)
  policies : Ftes_app.Policy.t array;  (** Indexed by process id. *)
  mapping : Mapping.t;
}

val make :
  app:Ftes_app.App.t ->
  arch:Ftes_arch.Arch.t ->
  wcet:Ftes_arch.Wcet.t ->
  k:int ->
  policies:Ftes_app.Policy.t array ->
  mapping:Mapping.t ->
  t
(** Validates dimensions, [k >= 0], that every policy tolerates [k]
    faults on its own (all [k] faults may hit a single process), and the
    mapping against the WCET table and replica counts.
    @raise Invalid_argument on any violation. *)

val with_policies : t -> Ftes_app.Policy.t array -> Mapping.t -> t
(** Same instance with a new configuration (revalidated). *)

val with_k : t -> int -> t

val default_policies : app:Ftes_app.App.t -> k:int -> Ftes_app.Policy.t array
(** All-re-execution assignment: every process gets
    [Policy.re_execution ~recoveries:k] — the natural starting point of
    the optimization heuristics. *)

val fastest_mapping :
  app:Ftes_app.App.t ->
  wcet:Ftes_arch.Wcet.t ->
  policies:Ftes_app.Policy.t array ->
  Mapping.t
(** Each copy on the fastest allowed node; replicas of the same process
    spread over the fastest allowed nodes (wrapping around when there
    are more copies than allowed nodes).
    @raise Invalid_argument when a process has no allowed node. *)

val copy_wcet : t -> pid:int -> copy:int -> float
(** WCET of a copy on its mapped node. *)

val copy_plan : t -> pid:int -> copy:int -> Ftes_app.Policy.copy_plan

val graph : t -> Ftes_app.Graph.t
val pp : Format.formatter -> t -> unit
