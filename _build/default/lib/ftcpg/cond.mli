(** Fault conditions and guards (paper, Sec. 5.1).

    A fault occurrence during the execution of a conditional FT-CPG node
    is captured as a boolean condition: true ("F") if the fault happens,
    false ("not F") otherwise. Conditions are identified by the integer
    id of the FT-CPG vertex that produces them.

    A {e guard} is a conjunction of condition literals — exactly the
    column headers of the paper's schedule tables (Fig. 6). The empty
    guard is [true]. *)

type literal = { cond : int; fault : bool }

type guard
(** A satisfiable conjunction of literals, normalized (sorted by
    condition id, no duplicates). *)

val true_ : guard
(** The empty conjunction. *)

val of_literals : literal list -> guard option
(** [None] if the literals are contradictory. *)

val literals : guard -> literal list
(** Ascending by condition id. *)

val add : guard -> literal -> guard option
(** [None] if the literal contradicts the guard. *)

val add_exn : guard -> literal -> guard
(** @raise Invalid_argument on contradiction. *)

val value : guard -> int -> bool option
(** The literal value the guard assigns to a condition, if any. *)

val compatible : guard -> guard -> bool
(** True when the two guards can hold simultaneously (no contradictory
    literal). *)

val conjoin : guard -> guard -> guard option
(** Conjunction; [None] if incompatible. *)

val intersect : guard -> guard -> guard
(** Literals common to both guards — the most specific guard implied by
    both. Used to display one table entry shared by sibling branches. *)

val implies : guard -> guard -> bool
(** [implies g1 g2] when every scenario satisfying [g1] satisfies [g2],
    i.e. the literals of [g2] are a subset of those of [g1]. *)

val fault_count : guard -> int
(** Number of positive (fault) literals — the fault budget the guard
    consumes. *)

val size : guard -> int
val equal : guard -> guard -> bool
val compare : guard -> guard -> int
val pp : ?name:(int -> string) -> unit -> Format.formatter -> guard -> unit
(** Renders e.g. ["FP1 & !FP2"]; [true] for the empty guard. [name]
    renders a condition id (defaults to ["c<id>"]). *)

val to_string : ?name:(int -> string) -> guard -> string
