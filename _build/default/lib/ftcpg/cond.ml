type literal = { cond : int; fault : bool }

(* Sorted by condition id, at most one literal per condition. *)
type guard = literal list

let true_ = []

let rec insert l = function
  | [] -> Some [ l ]
  | l' :: rest as g ->
      if l.cond < l'.cond then Some (l :: g)
      else if l.cond = l'.cond then
        if l.fault = l'.fault then Some g else None
      else Option.map (fun r -> l' :: r) (insert l rest)

let add g l = insert l g

let add_exn g l =
  match add g l with
  | Some g -> g
  | None -> invalid_arg "Cond.add_exn: contradictory literal"

let of_literals ls =
  List.fold_left
    (fun acc l -> Option.bind acc (fun g -> add g l))
    (Some true_) ls

let literals g = g

let value g cond =
  List.find_map (fun l -> if l.cond = cond then Some l.fault else None) g

(* Merge walk over the two sorted lists. *)
let rec merge g1 g2 =
  match (g1, g2) with
  | [], g | g, [] -> Some g
  | l1 :: r1, l2 :: r2 ->
      if l1.cond < l2.cond then Option.map (fun r -> l1 :: r) (merge r1 g2)
      else if l2.cond < l1.cond then Option.map (fun r -> l2 :: r) (merge g1 r2)
      else if l1.fault = l2.fault then Option.map (fun r -> l1 :: r) (merge r1 r2)
      else None

let conjoin = merge

let compatible g1 g2 = conjoin g1 g2 <> None

let intersect g1 g2 =
  List.filter (fun l1 -> List.exists (fun l2 -> l1 = l2) g2) g1

let implies g1 g2 =
  List.for_all (fun l2 -> List.exists (fun l1 -> l1 = l2) g1) g2

let fault_count g = List.length (List.filter (fun l -> l.fault) g)

let size = List.length

let equal g1 g2 = g1 = g2

let compare = Stdlib.compare

let default_name cond = Printf.sprintf "c%d" cond

let pp ?(name = default_name) () ppf g =
  match g with
  | [] -> Format.pp_print_string ppf "true"
  | _ ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " & ")
        (fun ppf l ->
          Format.fprintf ppf "%s%s" (if l.fault then "" else "!") (name l.cond))
        ppf g

let to_string ?name g = Format.asprintf "%a" (pp ?name ()) g
