lib/sim/sim.mli: Format Ftes_ftcpg Ftes_sched Ftes_util
