lib/sim/sim.ml: Array Float Format Ftes_app Ftes_arch Ftes_ftcpg Ftes_sched Ftes_util Hashtbl List Option
