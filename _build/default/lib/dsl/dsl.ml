module App = Ftes_app.App
module Graph = Ftes_app.Graph
module Overheads = Ftes_app.Overheads
module Transparency = Ftes_app.Transparency
module Arch = Ftes_arch.Arch
module Bus = Ftes_arch.Bus
module Wcet = Ftes_arch.Wcet

type t = {
  app : App.t;
  arch : Arch.t;
  wcet : Wcet.t;
  k : int;
}

exception Parse_error of { line : int; message : string }

let fail line fmt =
  Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type proc_decl = {
  p_name : string;
  p_alpha : float;
  p_mu : float;
  p_chi : float;
  p_release : float;
  p_local_deadline : float option;
  p_frozen : bool;
}

type msg_decl = {
  m_name : string;
  m_from : string;
  m_to : string;
  m_size : float;
  m_frozen : bool;
}

type parse_state = {
  mutable k : int option;
  mutable deadline : float option;
  mutable period : float option;
  mutable nodes : int option;
  mutable bus : Bus.t option;
  mutable procs : proc_decl list;  (* reversed *)
  mutable msgs : msg_decl list;  (* reversed *)
  mutable wcets : (string * string list) list;  (* reversed *)
}

let tokenize line =
  let without_comment =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  String.split_on_char ' ' without_comment
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let float_of ln s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> fail ln "expected a number, got %S" s

let int_of ln s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> fail ln "expected an integer, got %S" s

(* Parse [key value] option pairs and flags from a token list. *)
let parse_process ln toks =
  match toks with
  | name :: rest ->
      let d =
        ref
          {
            p_name = name;
            p_alpha = 0.;
            p_mu = 0.;
            p_chi = 0.;
            p_release = 0.;
            p_local_deadline = None;
            p_frozen = false;
          }
      in
      let rec go = function
        | [] -> ()
        | "frozen" :: rest ->
            d := { !d with p_frozen = true };
            go rest
        | "alpha" :: v :: rest ->
            d := { !d with p_alpha = float_of ln v };
            go rest
        | "mu" :: v :: rest ->
            d := { !d with p_mu = float_of ln v };
            go rest
        | "chi" :: v :: rest ->
            d := { !d with p_chi = float_of ln v };
            go rest
        | "release" :: v :: rest ->
            d := { !d with p_release = float_of ln v };
            go rest
        | "local-deadline" :: v :: rest ->
            d := { !d with p_local_deadline = Some (float_of ln v) };
            go rest
        | tok :: _ -> fail ln "unknown process attribute %S" tok
      in
      go rest;
      !d
  | [] -> fail ln "process: missing name"

let parse_message ln toks =
  match toks with
  | name :: "from" :: src :: "to" :: dst :: rest ->
      let size = ref 0. and frozen = ref false in
      let rec go = function
        | [] -> ()
        | "size" :: v :: rest ->
            size := float_of ln v;
            go rest
        | "frozen" :: rest ->
            frozen := true;
            go rest
        | tok :: _ -> fail ln "unknown message attribute %S" tok
      in
      go rest;
      { m_name = name; m_from = src; m_to = dst; m_size = !size;
        m_frozen = !frozen }
  | _ -> fail ln "message: expected 'message <name> from <P> to <P> ...'"

let parse_bus ln toks =
  match toks with
  | "tdma" :: rest ->
      let slot = ref 10. and bandwidth = ref 1. in
      let rec go = function
        | [] -> ()
        | "slot" :: v :: rest ->
            slot := float_of ln v;
            go rest
        | "bandwidth" :: v :: rest ->
            bandwidth := float_of ln v;
            go rest
        | tok :: _ -> fail ln "unknown tdma attribute %S" tok
      in
      go rest;
      `Tdma (!slot, !bandwidth)
  | "single" :: rest ->
      let bandwidth = ref 1. and setup = ref 0. in
      let rec go = function
        | [] -> ()
        | "bandwidth" :: v :: rest ->
            bandwidth := float_of ln v;
            go rest
        | "setup" :: v :: rest ->
            setup := float_of ln v;
            go rest
        | tok :: _ -> fail ln "unknown single-bus attribute %S" tok
      in
      go rest;
      `Single (!bandwidth, !setup)
  | _ -> fail ln "bus: expected 'bus tdma ...' or 'bus single ...'"

let of_string text =
  let st =
    {
      k = None;
      deadline = None;
      period = None;
      nodes = None;
      bus = None;
      procs = [];
      msgs = [];
      wcets = [];
    }
  in
  let bus_spec = ref None in
  List.iteri
    (fun i line ->
      let ln = i + 1 in
      match tokenize line with
      | [] -> ()
      | "k" :: [ v ] -> st.k <- Some (int_of ln v)
      | "deadline" :: [ v ] -> st.deadline <- Some (float_of ln v)
      | "period" :: [ v ] -> st.period <- Some (float_of ln v)
      | "nodes" :: [ v ] -> st.nodes <- Some (int_of ln v)
      | "bus" :: rest -> bus_spec := Some (parse_bus ln rest)
      | "process" :: rest -> st.procs <- parse_process ln rest :: st.procs
      | "message" :: rest -> st.msgs <- parse_message ln rest :: st.msgs
      | "wcet" :: name :: entries -> st.wcets <- (name, entries) :: st.wcets
      | tok :: _ -> fail ln "unknown directive %S" tok)
    (String.split_on_char '\n' text);
  let nodes =
    match st.nodes with
    | Some n when n > 0 -> n
    | Some n -> fail 0 "nodes must be positive (got %d)" n
    | None -> fail 0 "missing 'nodes' directive"
  in
  let bus =
    match !bus_spec with
    | Some (`Tdma (slot, bw)) -> Bus.tdma ~slot_length:slot ~bandwidth:bw nodes
    | Some (`Single (bw, setup)) -> Bus.single ~setup ~bandwidth:bw ()
    | None -> Arch.default_bus ~node_count:nodes
  in
  let arch = Arch.make ~node_count:nodes ~bus () in
  let procs = List.rev st.procs in
  let msgs = List.rev st.msgs in
  if procs = [] then fail 0 "no processes declared";
  let b = Graph.Builder.create () in
  let pid_of_name = Hashtbl.create 16 in
  List.iter
    (fun d ->
      if Hashtbl.mem pid_of_name d.p_name then
        fail 0 "duplicate process %S" d.p_name;
      let overheads =
        Overheads.make ~alpha:d.p_alpha ~mu:d.p_mu ~chi:d.p_chi
      in
      let pid =
        Graph.Builder.add_process b ~overheads ~release:d.p_release
          ?local_deadline:d.p_local_deadline ~name:d.p_name
      in
      Hashtbl.add pid_of_name d.p_name pid)
    procs;
  let lookup name =
    match Hashtbl.find_opt pid_of_name name with
    | Some pid -> pid
    | None -> fail 0 "unknown process %S" name
  in
  let frozen = ref [] in
  List.iter
    (fun m ->
      let mid =
        Graph.Builder.add_message b ~name:m.m_name ~src:(lookup m.m_from)
          ~dst:(lookup m.m_to) ~size:m.m_size
      in
      if m.m_frozen then frozen := Transparency.Msg mid :: !frozen)
    msgs;
  List.iter
    (fun d ->
      if d.p_frozen then
        frozen := Transparency.Proc (lookup d.p_name) :: !frozen)
    procs;
  let graph = Graph.Builder.build b in
  let wcet = Wcet.create ~procs:(List.length procs) ~nodes in
  List.iter
    (fun (name, entries) ->
      let pid = lookup name in
      if List.length entries <> nodes then
        fail 0 "wcet %s: expected %d entries, got %d" name nodes
          (List.length entries);
      List.iteri
        (fun nid entry ->
          if entry <> "X" && entry <> "x" then
            Wcet.set wcet ~pid ~nid (float_of 0 entry))
        entries)
    (List.rev st.wcets);
  (try Wcet.validate wcet
   with Invalid_argument m -> fail 0 "%s" m);
  let period =
    match (st.period, st.deadline) with
    | Some p, _ -> p
    | None, Some d -> d
    | None, None -> 1e9
  in
  let deadline = match st.deadline with Some d -> d | None -> period in
  let app =
    App.make
      ~transparency:(Transparency.of_list !frozen)
      ~graph ~deadline ~period ()
  in
  { app; arch; wcet; k = Option.value st.k ~default:1 }

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

(* Shortest decimal rendering that parses back to the same float. *)
let fstr f =
  let try_prec p =
    let s = Printf.sprintf "%.*g" p f in
    if float_of_string s = f then Some s else None
  in
  match try_prec 6 with
  | Some s -> s
  | None -> (
      match try_prec 12 with
      | Some s -> s
      | None -> (
          match try_prec 15 with Some s -> s | None -> Printf.sprintf "%.17g" f))

let bus_to_string arch =
  let b = Arch.bus arch in
  if Bus.is_tdma b then
    Printf.sprintf "bus tdma slot %s bandwidth %s"
      (fstr (Bus.round_length b /. float_of_int (Arch.node_count arch)))
      (fstr
         (let tx = Bus.tx_time b ~size:1. in
          if tx > 0. then 1. /. tx else 1.))
  else
    let tx1 = Bus.tx_time b ~size:1. and tx2 = Bus.tx_time b ~size:2. in
    let per_unit = tx2 -. tx1 in
    let setup = tx1 -. per_unit in
    Printf.sprintf "bus single bandwidth %s setup %s"
      (fstr (if per_unit > 0. then 1. /. per_unit else 1.))
      (fstr (max 0. setup))

let to_string t =
  let buf = Buffer.create 1024 in
  let g = t.app.App.graph in
  let tr = t.app.App.transparency in
  Buffer.add_string buf "# ftes synthesis instance\n";
  Buffer.add_string buf (Printf.sprintf "k %d\n" t.k);
  Buffer.add_string buf
    (Printf.sprintf "deadline %s\n" (fstr t.app.App.deadline));
  Buffer.add_string buf (Printf.sprintf "period %s\n" (fstr t.app.App.period));
  Buffer.add_string buf
    (Printf.sprintf "nodes %d\n" (Arch.node_count t.arch));
  Buffer.add_string buf (bus_to_string t.arch ^ "\n\n");
  Array.iter
    (fun (p : Graph.process) ->
      Buffer.add_string buf
        (Printf.sprintf "process %s alpha %s mu %s chi %s" p.Graph.pname
           (fstr p.Graph.overheads.Overheads.alpha)
           (fstr p.Graph.overheads.Overheads.mu)
           (fstr p.Graph.overheads.Overheads.chi));
      if p.Graph.release <> 0. then
        Buffer.add_string buf
          (Printf.sprintf " release %s" (fstr p.Graph.release));
      (match p.Graph.local_deadline with
      | Some d ->
          Buffer.add_string buf (Printf.sprintf " local-deadline %s" (fstr d))
      | None -> ());
      if Transparency.is_frozen_proc tr p.Graph.pid then
        Buffer.add_string buf " frozen";
      Buffer.add_char buf '\n')
    (Graph.processes g);
  Buffer.add_char buf '\n';
  Array.iter
    (fun (m : Graph.message) ->
      Buffer.add_string buf
        (Printf.sprintf "message %s from %s to %s size %s" m.Graph.mname
           (Graph.process g m.Graph.src).Graph.pname
           (Graph.process g m.Graph.dst).Graph.pname (fstr m.Graph.size));
      if Transparency.is_frozen_msg tr m.Graph.mid then
        Buffer.add_string buf " frozen";
      Buffer.add_char buf '\n')
    (Graph.messages g);
  Buffer.add_char buf '\n';
  Array.iter
    (fun (p : Graph.process) ->
      Buffer.add_string buf (Printf.sprintf "wcet %s" p.Graph.pname);
      for nid = 0 to Arch.node_count t.arch - 1 do
        match Wcet.get t.wcet ~pid:p.Graph.pid ~nid with
        | Some c -> Buffer.add_string buf (Printf.sprintf " %s" (fstr c))
        | None -> Buffer.add_string buf " X"
      done;
      Buffer.add_char buf '\n')
    (Graph.processes g);
  Buffer.contents buf

let load path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  of_string text

let save path t =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

let to_problem ?policies ?mapping t =
  let policies =
    match policies with
    | Some p -> p
    | None -> Ftes_ftcpg.Problem.default_policies ~app:t.app ~k:t.k
  in
  let mapping =
    match mapping with
    | Some m -> m
    | None -> Ftes_ftcpg.Problem.fastest_mapping ~app:t.app ~wcet:t.wcet ~policies
  in
  Ftes_ftcpg.Problem.make ~app:t.app ~arch:t.arch ~wcet:t.wcet ~k:t.k ~policies
    ~mapping

let equal (a : t) (b : t) =
  a.k = b.k
  && a.app.App.deadline = b.app.App.deadline
  && a.app.App.period = b.app.App.period
  && Arch.node_count a.arch = Arch.node_count b.arch
  && Graph.process_count a.app.App.graph = Graph.process_count b.app.App.graph
  && Graph.message_count a.app.App.graph = Graph.message_count b.app.App.graph
  && Transparency.equal a.app.App.transparency b.app.App.transparency
  && (let ga = a.app.App.graph and gb = b.app.App.graph in
      Array.for_all2
        (fun (p : Graph.process) (q : Graph.process) ->
          p.Graph.pname = q.Graph.pname
          && Overheads.equal p.Graph.overheads q.Graph.overheads
          && p.Graph.release = q.Graph.release
          && p.Graph.local_deadline = q.Graph.local_deadline)
        (Graph.processes ga) (Graph.processes gb)
      && Array.for_all2
           (fun (m : Graph.message) (n : Graph.message) ->
             m.Graph.mname = n.Graph.mname
             && m.Graph.src = n.Graph.src
             && m.Graph.dst = n.Graph.dst
             && m.Graph.size = n.Graph.size)
           (Graph.messages ga) (Graph.messages gb))
  && (let rec eq pid =
        pid >= Wcet.proc_count a.wcet
        || (List.for_all
              (fun nid ->
                Wcet.get a.wcet ~pid ~nid = Wcet.get b.wcet ~pid ~nid)
              (List.init (Wcet.node_count a.wcet) (fun i -> i))
           && eq (pid + 1))
      in
      eq 0)
