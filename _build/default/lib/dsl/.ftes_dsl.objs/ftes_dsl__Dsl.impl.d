lib/dsl/dsl.ml: Array Buffer Format Ftes_app Ftes_arch Ftes_ftcpg Hashtbl List Option Printf String
