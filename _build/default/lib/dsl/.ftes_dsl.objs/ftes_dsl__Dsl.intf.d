lib/dsl/dsl.mli: Ftes_app Ftes_arch Ftes_ftcpg
