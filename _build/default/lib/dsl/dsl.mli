(** Textual format for synthesis instances.

    A document bundles an application (processes, messages, overheads,
    transparency, deadline/period), a platform (nodes, bus), the WCET
    table and the fault hypothesis [k] — everything needed to build a
    [Ftes_ftcpg.Problem.t] except the optimized configuration.

    The format is line-oriented; [#] starts a comment. Example:

    {v
    # cruise-control instance
    k 2
    deadline 300
    period 300
    nodes 2
    bus tdma slot 10 bandwidth 1

    process P1 alpha 10 mu 10 chi 5
    process P2 alpha 10 mu 10 chi 5 frozen
    process P3 alpha 10 mu 10 chi 5 release 20 local-deadline 200

    message m1 from P1 to P2 size 4
    message m2 from P1 to P3 size 4 frozen

    wcet P1 20 30
    wcet P2 40 60
    wcet P3 60 X
    v}

    Every [process] must have a [wcet] row with one entry per node ([X]
    marks a mapping restriction). Order of sections is free, except that
    [message] and [wcet] lines must follow the [process] lines they
    reference. *)

type t = {
  app : Ftes_app.App.t;
  arch : Ftes_arch.Arch.t;
  wcet : Ftes_arch.Wcet.t;
  k : int;
}

exception Parse_error of { line : int; message : string }

val of_string : string -> t
(** @raise Parse_error with a 1-based line number. *)

val to_string : t -> string
(** Round-trips: [of_string (to_string d)] is structurally equal to
    [d]. *)

val load : string -> t
(** Read a document from a file path.
    @raise Parse_error or [Sys_error]. *)

val save : string -> t -> unit

val to_problem :
  ?policies:Ftes_app.Policy.t array ->
  ?mapping:Ftes_ftcpg.Mapping.t ->
  t ->
  Ftes_ftcpg.Problem.t
(** Defaults: all-re-execution policies and the fastest mapping. *)

val equal : t -> t -> bool
(** Structural equality (used by the round-trip tests). *)
