(** The merged application graph G(V, E) (paper, Sec. 4).

    Nodes are non-preemptable processes; a directed message edge from
    [Pi] to [Pj] means the output of [Pi] is an input of [Pj]. All inputs
    must have arrived before a process is activated. The graph is acyclic
    by construction ([build] validates it).

    Process and message identifiers are dense integers in
    [0, process_count) and [0, message_count) and double as array
    indices everywhere in the library. *)

type process = private {
  pid : int;
  pname : string;
  overheads : Overheads.t;
  release : float;  (** Earliest activation time (0 for most processes;
                        instance offsets after hyperperiod merging). *)
  local_deadline : float option;  (** The paper's [dlocal], if any. *)
}

type message = private {
  mid : int;
  mname : string;
  src : int;  (** Producing process id. *)
  dst : int;  (** Consuming process id. *)
  size : float;  (** Worst-case size, translated by the bus model into a
                     worst-case transmission time. *)
}

type t

(** Imperative builder; [build] freezes and validates the graph. *)
module Builder : sig
  type graph := t
  type t

  val create : unit -> t

  val add_process :
    ?overheads:Overheads.t ->
    ?release:float ->
    ?local_deadline:float ->
    t ->
    name:string ->
    int
  (** Returns the new process id. Default overheads are {!Overheads.zero};
      default release is 0. *)

  val add_message : ?name:string -> t -> src:int -> dst:int -> size:float -> int
  (** Returns the new message id.
      @raise Invalid_argument on unknown endpoints, a self-loop, or a
      negative size. *)

  val build : t -> graph
  (** @raise Invalid_argument if the graph has a cycle. *)
end

val process_count : t -> int
val message_count : t -> int
val process : t -> int -> process
val message : t -> int -> message
val processes : t -> process array
val messages : t -> message array

val out_messages : t -> int -> int list
(** Messages produced by a process (ids). *)

val in_messages : t -> int -> int list
(** Messages consumed by a process (ids). *)

val successors : t -> int -> int list
(** Consumer processes of a process's messages (deduplicated). *)

val predecessors : t -> int -> int list

val sources : t -> int list
(** Processes with no predecessors. *)

val sinks : t -> int list

val topological_order : t -> int list
(** Process ids, every producer before each of its consumers. *)

val depth : t -> int array
(** Longest path (in edge count) from any source, per process. *)

val critical_path_length : t -> proc_time:(int -> float) -> msg_time:(int -> float) -> float
(** Longest source-to-sink path where processes cost [proc_time pid] and
    messages [msg_time mid]; includes process releases. Lower bound on
    any schedule length. *)

val restrict : t -> keep:(int -> bool) -> t * int array
(** [restrict g ~keep] is the subgraph induced by the processes
    satisfying [keep] (messages are kept when both endpoints are kept),
    together with the translation [old pid -> new pid] (entries for
    dropped processes are [-1]). Used e.g. to schedule the hard subset
    of a mixed soft/hard application. *)

val find_process : t -> string -> int option
(** Lookup by name. *)

val pp : Format.formatter -> t -> unit
