(** Fault-tolerance policy of a single process (paper, Sec. 4).

    The paper describes the assignment with four functions:
    - [P]: checkpointing, replication, or both;
    - [Q]: the number of replicas added to the original process;
    - [R]: the number of recoveries of each process / replica;
    - [X]: the number of checkpoints of each process / replica.

    Here a policy bundles all four: it is a non-empty array of per-copy
    plans — copy 0 is the original process, copies 1..q its replicas —
    where each copy carries its recovery budget and checkpoint count. *)

type kind =
  | Checkpointing
      (** Single copy, time redundancy only (includes simple re-execution,
          the one-checkpoint case). *)
  | Replication  (** Multiple copies, none of which ever recovers. *)
  | Replication_and_checkpointing
      (** Multiple copies, at least one of which can recover. *)

type copy_plan = { recoveries : int; checkpoints : int }
(** Recovery budget [R] and checkpoint count [X] of one copy.
    [checkpoints >= 1]; a copy that is "not checkpointed" in the paper's
    sense ([X = 0]) is represented as [checkpoints = 1] with
    [recoveries = 0] — executions are identical. *)

type t = private { copies : copy_plan array }

val make : copy_plan list -> t
(** General constructor.
    @raise Invalid_argument on an empty list, negative recoveries, or
    checkpoint counts below 1. *)

val checkpointing : recoveries:int -> checkpoints:int -> t
(** Single copy with rollback recovery. *)

val re_execution : recoveries:int -> t
(** Single copy, single checkpoint at activation (paper, Sec. 3.1). *)

val replication : k:int -> t
(** [k + 1] copies, no recoveries: masks [k] faults by space redundancy.
    @raise Invalid_argument if [k < 0]. *)

val combined : replicas:int -> recoveries_per_copy:int list -> t
(** [replicas + 1] copies; copy [j] gets the [j]-th recovery budget
    (re-execution granularity, one checkpoint each).
    @raise Invalid_argument on a length mismatch. *)

val kind : t -> kind
val replica_count : t -> int
(** Total number of copies ([Q + 1] in the paper's notation). *)

val added_replicas : t -> int
(** The paper's [Q]: copies beyond the original. *)

val tolerated_faults : t -> int
(** [Q + sum of recoveries]: the number of transient faults this policy
    masks in the worst case (paper, Sec. 4: Fig. 4c has Q=1, R=(0,1),
    tolerating k=2). *)

val tolerates : t -> k:int -> bool

val with_checkpoints : t -> copy:int -> checkpoints:int -> t
(** Functional update of one copy's checkpoint count. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val pp_kind : Format.formatter -> kind -> unit
