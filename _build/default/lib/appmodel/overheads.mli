(** Fault-tolerance overheads of a process (paper, Sec. 3 and 4).

    Every process is characterized, besides its WCET, by
    - [alpha]: error-detection overhead, paid at the end of every executed
      segment to decide whether a transient fault corrupted it;
    - [mu]: recovery overhead, the time to restore the last checkpoint
      (or the initial inputs) before a re-execution;
    - [chi]: checkpointing overhead, the time to save a process state
      (including initial inputs) at a checkpoint. *)

type t = private { alpha : float; mu : float; chi : float }

val make : alpha:float -> mu:float -> chi:float -> t
(** @raise Invalid_argument if any overhead is negative. *)

val zero : t
(** All overheads zero — the "ignore fault tolerance" configuration used
    when computing the baseline schedule length of the FTO metric. *)

val fig1 : t
(** The running example of the paper's Fig. 1: α = 10, µ = 10, χ = 5 ms. *)

val scale : float -> t -> t
(** Multiply all three overheads by a non-negative factor. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
