(** Hyperperiod merging of periodic applications (paper, Sec. 4).

    A set of periodic applications [Ak], each an acyclic graph with
    period [Tk], is merged into a single virtual application with period
    T = lcm of all [Tk]: application [Ak] contributes [T / Tk] instances,
    instance [j] released at [j * Tk] and (if the source application has
    a deadline tighter than its period) deadlined at [j * Tk + Dk] via
    per-process local deadlines on its sinks. *)

type source = {
  graph : Graph.t;
  period : float;  (** Must be a positive whole number of time units. *)
  deadline : float;  (** Deadline of each instance, [<= period]. *)
  transparency : Transparency.t;
}

val hyperperiod : float list -> float
(** Least common multiple of whole-number periods.
    @raise Invalid_argument on an empty list or a non-integral or
    non-positive period. *)

val merge : source list -> App.t
(** Merged virtual application. Process and message names are suffixed
    with ["@j"] for instance [j > 0]. Transparency requirements carry
    over to every instance.
    @raise Invalid_argument on an empty list or invalid periods. *)
