(** A hard real-time application ready for synthesis: the merged process
    graph together with its period, global deadline and transparency
    requirements (paper, Sec. 4). *)

type t = private {
  graph : Graph.t;
  deadline : float;  (** Global hard deadline D (must hold in every fault
                         scenario with at most [k] faults). *)
  period : float;  (** Period T of the merged virtual application. *)
  transparency : Transparency.t;
}

val make :
  ?transparency:Transparency.t ->
  graph:Graph.t ->
  deadline:float ->
  period:float ->
  unit ->
  t
(** @raise Invalid_argument if [deadline <= 0.], [period <= 0.] or
    [deadline > period] (quasi-static cyclic scheduling requires the
    application to finish within its period). *)

val with_transparency : t -> Transparency.t -> t
val with_deadline : t -> float -> t

val fig3 : unit -> t
(** The paper's Fig. 3a example: five processes P1..P5 with P1 fanning
    out to P2 and P3, P2 feeding P4 and P3 feeding P5. Overheads are
    {!Overheads.fig1}; the deadline (300 ms) is loose. The matching
    two-node architecture and WCET table live in [Ftes_arch.Examples]. *)

val fig5 : unit -> t
(** The paper's Fig. 5a example: P1..P4 with messages m1: P1 -> P4,
    m2: P1 -> P3, m3: P2 -> P3 and a local edge P1 -> P2; process P3 and
    messages m2, m3 are frozen. Building its FT-CPG for k = 2 yields the
    paper's Fig. 5b; conditional scheduling on two nodes yields tables
    with the structure of Fig. 6. *)

val pp : Format.formatter -> t -> unit
