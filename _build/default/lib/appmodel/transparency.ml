type obj = Proc of int | Msg of int

module Oset = Set.Make (struct
  type t = obj

  let compare = compare
end)

type t = Oset.t

let none = Oset.empty

let of_list objs = Oset.of_list objs

let all g =
  let n = Graph.process_count g and m = Graph.message_count g in
  let procs = List.init n (fun pid -> Proc pid) in
  let msgs = List.init m (fun mid -> Msg mid) in
  Oset.of_list (procs @ msgs)

let all_messages g =
  Oset.of_list (List.init (Graph.message_count g) (fun mid -> Msg mid))

let freeze t o = Oset.add o t
let thaw t o = Oset.remove o t
let is_frozen t o = Oset.mem o t
let is_frozen_proc t pid = Oset.mem (Proc pid) t
let is_frozen_msg t mid = Oset.mem (Msg mid) t
let frozen_objects t = Oset.elements t
let cardinal t = Oset.cardinal t
let equal = Oset.equal

let pp g ppf t =
  let name = function
    | Proc pid -> (Graph.process g pid).Graph.pname
    | Msg mid -> (Graph.message g mid).Graph.mname
  in
  Format.fprintf ppf "frozen{%s}"
    (String.concat ", " (List.map name (Oset.elements t)))
