type source = {
  graph : Graph.t;
  period : float;
  deadline : float;
  transparency : Transparency.t;
}

let as_whole name x =
  if x <= 0. || Float.rem x 1.0 <> 0. then
    invalid_arg (Printf.sprintf "Merge: %s must be a positive whole number" name);
  int_of_float x

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let lcm a b = a / gcd a b * b

let hyperperiod = function
  | [] -> invalid_arg "Merge.hyperperiod: no periods"
  | ps ->
      let ints = List.map (as_whole "period") ps in
      float_of_int (List.fold_left lcm 1 ints)

let merge sources =
  if sources = [] then invalid_arg "Merge.merge: no applications";
  List.iter
    (fun s ->
      if s.deadline <= 0. || s.deadline > s.period then
        invalid_arg "Merge.merge: deadline must be in (0, period]")
    sources;
  let t = hyperperiod (List.map (fun s -> s.period) sources) in
  let b = Graph.Builder.create () in
  let frozen = ref [] in
  let instantiate s j =
    let offset = float_of_int j *. s.period in
    let suffix name = if j = 0 then name else Printf.sprintf "%s@%d" name j in
    let g = s.graph in
    let sink_set = Graph.sinks g in
    let pid_map =
      Array.map
        (fun (p : Graph.process) ->
          (* Sinks inherit the instance deadline so the merged application
             preserves each source application's completion constraint. *)
          let local_deadline =
            let instance_dl = offset +. s.deadline in
            match p.Graph.local_deadline with
            | Some d -> Some (min (offset +. d) instance_dl)
            | None ->
                if List.mem p.Graph.pid sink_set then Some instance_dl
                else None
          in
          Graph.Builder.add_process b ~overheads:p.Graph.overheads
            ~release:(p.Graph.release +. offset)
            ?local_deadline:
              (match local_deadline with Some d -> Some d | None -> None)
            ~name:(suffix p.Graph.pname))
        (Graph.processes g)
    in
    Array.iter
      (fun (m : Graph.message) ->
        let mid =
          Graph.Builder.add_message b ~name:(suffix m.Graph.mname)
            ~src:pid_map.(m.Graph.src) ~dst:pid_map.(m.Graph.dst)
            ~size:m.Graph.size
        in
        if Transparency.is_frozen_msg s.transparency m.Graph.mid then
          frozen := Transparency.Msg mid :: !frozen)
      (Graph.messages g);
    Array.iteri
      (fun pid new_pid ->
        if Transparency.is_frozen_proc s.transparency pid then
          frozen := Transparency.Proc new_pid :: !frozen)
      pid_map
  in
  List.iter
    (fun s ->
      let copies = int_of_float (t /. s.period) in
      for j = 0 to copies - 1 do
        instantiate s j
      done)
    sources;
  let graph = Graph.Builder.build b in
  App.make
    ~transparency:(Transparency.of_list !frozen)
    ~graph ~deadline:t ~period:t ()
