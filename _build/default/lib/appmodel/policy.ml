type kind = Checkpointing | Replication | Replication_and_checkpointing

type copy_plan = { recoveries : int; checkpoints : int }

type t = { copies : copy_plan array }

let validate_plan p =
  if p.recoveries < 0 then invalid_arg "Policy: negative recoveries";
  if p.checkpoints < 1 then invalid_arg "Policy: checkpoints < 1"

let make plans =
  match plans with
  | [] -> invalid_arg "Policy.make: no copies"
  | _ ->
      List.iter validate_plan plans;
      { copies = Array.of_list plans }

let checkpointing ~recoveries ~checkpoints =
  make [ { recoveries; checkpoints } ]

let re_execution ~recoveries = checkpointing ~recoveries ~checkpoints:1

let replication ~k =
  if k < 0 then invalid_arg "Policy.replication: k < 0";
  make (List.init (k + 1) (fun _ -> { recoveries = 0; checkpoints = 1 }))

let combined ~replicas ~recoveries_per_copy =
  if List.length recoveries_per_copy <> replicas + 1 then
    invalid_arg "Policy.combined: need one recovery budget per copy";
  make
    (List.map (fun recoveries -> { recoveries; checkpoints = 1 })
       recoveries_per_copy)

let replica_count t = Array.length t.copies

let added_replicas t = replica_count t - 1

let total_recoveries t =
  Array.fold_left (fun acc p -> acc + p.recoveries) 0 t.copies

let kind t =
  if replica_count t = 1 then Checkpointing
  else if total_recoveries t = 0 then Replication
  else Replication_and_checkpointing

let tolerated_faults t = added_replicas t + total_recoveries t

let tolerates t ~k = tolerated_faults t >= k

let with_checkpoints t ~copy ~checkpoints =
  if copy < 0 || copy >= replica_count t then
    invalid_arg "Policy.with_checkpoints: bad copy index";
  if checkpoints < 1 then invalid_arg "Policy.with_checkpoints: checkpoints < 1";
  let copies = Array.copy t.copies in
  copies.(copy) <- { copies.(copy) with checkpoints };
  { copies }

let equal a b =
  Array.length a.copies = Array.length b.copies
  && Array.for_all2 (fun (x : copy_plan) y -> x = y) a.copies b.copies

let pp_kind ppf = function
  | Checkpointing -> Format.pp_print_string ppf "checkpointing"
  | Replication -> Format.pp_print_string ppf "replication"
  | Replication_and_checkpointing ->
      Format.pp_print_string ppf "replication+checkpointing"

let pp ppf t =
  let pp_plan ppf p =
    Format.fprintf ppf "(R=%d,X=%d)" p.recoveries p.checkpoints
  in
  Format.fprintf ppf "%a[%a]" pp_kind (kind t)
    (Format.pp_print_seq ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ";")
       pp_plan)
    (Array.to_seq t.copies)
