(** Transparency requirements (paper, Sec. 3.3 and 4).

    The designer may declare arbitrary processes and messages as
    {e frozen}: a frozen node is allocated the same start time in every
    alternative fault-tolerant schedule of the application, which
    contains faults (recovering on one node is invisible elsewhere) and
    eases debugging — at the price of a longer worst-case schedule. *)

type obj = Proc of int | Msg of int

type t

val none : t
(** Fully non-transparent system: nothing frozen. *)

val of_list : obj list -> t

val all : Graph.t -> t
(** Fully transparent system: every process and message frozen. *)

val all_messages : Graph.t -> t
(** Only inter-process communication frozen — the customary intermediate
    setting (fault containment between nodes). *)

val freeze : t -> obj -> t
val thaw : t -> obj -> t
val is_frozen : t -> obj -> bool
val is_frozen_proc : t -> int -> bool
val is_frozen_msg : t -> int -> bool
val frozen_objects : t -> obj list
val cardinal : t -> int
val equal : t -> t -> bool
val pp : Graph.t -> Format.formatter -> t -> unit
