let check ~c ~checkpoints =
  if checkpoints < 1 then invalid_arg "Fttime: checkpoints < 1";
  if c < 0. then invalid_arg "Fttime: negative WCET"

let segment_length ~c ~checkpoints =
  check ~c ~checkpoints;
  c /. float_of_int checkpoints

let no_fault_length ~c (o : Overheads.t) ~checkpoints =
  check ~c ~checkpoints;
  c +. (float_of_int checkpoints *. (o.alpha +. o.chi))

let recovery_cost ~c (o : Overheads.t) ~checkpoints ~last =
  let seg = segment_length ~c ~checkpoints in
  if last then o.mu +. seg else o.mu +. seg +. o.alpha

let worst_case_length ~c (o : Overheads.t) ~checkpoints ~recoveries =
  if recoveries < 0 then invalid_arg "Fttime: negative recoveries";
  let e0 = no_fault_length ~c o ~checkpoints in
  if recoveries = 0 then e0
  else
    let seg = segment_length ~c ~checkpoints in
    let r = float_of_int recoveries in
    e0 +. (r *. (o.mu +. seg)) +. ((r -. 1.) *. o.alpha)

let recovery_slack ~c o ~checkpoints ~recoveries =
  worst_case_length ~c o ~checkpoints ~recoveries
  -. no_fault_length ~c o ~checkpoints

let replica_length ~c (o : Overheads.t) =
  if c < 0. then invalid_arg "Fttime: negative WCET";
  c +. o.alpha
