type process = {
  pid : int;
  pname : string;
  overheads : Overheads.t;
  release : float;
  local_deadline : float option;
}

type message = {
  mid : int;
  mname : string;
  src : int;
  dst : int;
  size : float;
}

type t = {
  procs : process array;
  msgs : message array;
  out_msgs : int list array;
  in_msgs : int list array;
  topo : int list;
}

module Builder = struct
  type b = {
    mutable rev_procs : process list;
    mutable rev_msgs : message list;
    mutable nprocs : int;
    mutable nmsgs : int;
  }

  type t = b

  let create () = { rev_procs = []; rev_msgs = []; nprocs = 0; nmsgs = 0 }

  let add_process ?(overheads = Overheads.zero) ?(release = 0.) ?local_deadline
      b ~name =
    if release < 0. then invalid_arg "Graph.Builder.add_process: release < 0";
    let pid = b.nprocs in
    let p = { pid; pname = name; overheads; release; local_deadline } in
    b.rev_procs <- p :: b.rev_procs;
    b.nprocs <- pid + 1;
    pid

  let add_message ?name b ~src ~dst ~size =
    if src < 0 || src >= b.nprocs || dst < 0 || dst >= b.nprocs then
      invalid_arg "Graph.Builder.add_message: unknown endpoint";
    if src = dst then invalid_arg "Graph.Builder.add_message: self-loop";
    if size < 0. then invalid_arg "Graph.Builder.add_message: negative size";
    let mid = b.nmsgs in
    let mname =
      match name with Some n -> n | None -> Printf.sprintf "m%d" (mid + 1)
    in
    b.rev_msgs <- { mid; mname; src; dst; size } :: b.rev_msgs;
    b.nmsgs <- mid + 1;
    mid

  (* Kahn's algorithm; raises if a cycle prevents a complete ordering. *)
  let toposort nprocs msgs =
    let indeg = Array.make nprocs 0 in
    let succ = Array.make nprocs [] in
    Array.iter
      (fun m ->
        indeg.(m.dst) <- indeg.(m.dst) + 1;
        succ.(m.src) <- m.dst :: succ.(m.src))
      msgs;
    let queue = Queue.create () in
    for pid = 0 to nprocs - 1 do
      if indeg.(pid) = 0 then Queue.add pid queue
    done;
    let rec drain acc count =
      if Queue.is_empty queue then
        if count = nprocs then List.rev acc
        else invalid_arg "Graph.Builder.build: application graph has a cycle"
      else
        let pid = Queue.pop queue in
        List.iter
          (fun s ->
            indeg.(s) <- indeg.(s) - 1;
            if indeg.(s) = 0 then Queue.add s queue)
          succ.(pid);
        drain (pid :: acc) (count + 1)
    in
    drain [] 0

  let build b =
    let procs = Array.of_list (List.rev b.rev_procs) in
    let msgs = Array.of_list (List.rev b.rev_msgs) in
    let out_msgs = Array.make (Array.length procs) [] in
    let in_msgs = Array.make (Array.length procs) [] in
    (* Reverse iteration keeps the per-process lists in insertion order. *)
    for i = Array.length msgs - 1 downto 0 do
      let m = msgs.(i) in
      out_msgs.(m.src) <- m.mid :: out_msgs.(m.src);
      in_msgs.(m.dst) <- m.mid :: in_msgs.(m.dst)
    done;
    let topo = toposort (Array.length procs) msgs in
    { procs; msgs; out_msgs; in_msgs; topo }
end

let process_count t = Array.length t.procs
let message_count t = Array.length t.msgs

let process t pid =
  if pid < 0 || pid >= process_count t then invalid_arg "Graph.process: bad id";
  t.procs.(pid)

let message t mid =
  if mid < 0 || mid >= message_count t then invalid_arg "Graph.message: bad id";
  t.msgs.(mid)

let processes t = Array.copy t.procs
let messages t = Array.copy t.msgs
let out_messages t pid = (ignore (process t pid)); t.out_msgs.(pid)
let in_messages t pid = (ignore (process t pid)); t.in_msgs.(pid)

let dedup xs = List.sort_uniq compare xs

let successors t pid =
  dedup (List.map (fun mid -> t.msgs.(mid).dst) (out_messages t pid))

let predecessors t pid =
  dedup (List.map (fun mid -> t.msgs.(mid).src) (in_messages t pid))

let sources t =
  List.filter (fun pid -> t.in_msgs.(pid) = []) (t.topo)

let sinks t = List.filter (fun pid -> t.out_msgs.(pid) = []) t.topo

let topological_order t = t.topo

let depth t =
  let d = Array.make (process_count t) 0 in
  List.iter
    (fun pid ->
      List.iter
        (fun mid ->
          let m = t.msgs.(mid) in
          if d.(m.dst) < d.(pid) + 1 then d.(m.dst) <- d.(pid) + 1)
        t.out_msgs.(pid))
    t.topo;
  d

let critical_path_length t ~proc_time ~msg_time =
  let finish = Array.make (process_count t) 0. in
  List.iter
    (fun pid ->
      let arrival =
        List.fold_left
          (fun acc mid ->
            let m = t.msgs.(mid) in
            max acc (finish.(m.src) +. msg_time mid))
          0. t.in_msgs.(pid)
      in
      let start = max arrival t.procs.(pid).release in
      finish.(pid) <- start +. proc_time pid)
    t.topo;
  Array.fold_left max 0. finish

let restrict t ~keep =
  let b = Builder.create () in
  let map = Array.make (process_count t) (-1) in
  Array.iter
    (fun p ->
      if keep p.pid then
        map.(p.pid) <-
          Builder.add_process b ~overheads:p.overheads ~release:p.release
            ?local_deadline:p.local_deadline ~name:p.pname)
    t.procs;
  Array.iter
    (fun m ->
      if map.(m.src) >= 0 && map.(m.dst) >= 0 then
        ignore
          (Builder.add_message b ~name:m.mname ~src:map.(m.src)
             ~dst:map.(m.dst) ~size:m.size))
    t.msgs;
  (Builder.build b, map)

let find_process t name =
  let found = ref None in
  Array.iter (fun p -> if p.pname = name then found := Some p.pid) t.procs;
  !found

let pp ppf t =
  Format.fprintf ppf "@[<v>graph: %d processes, %d messages@,"
    (process_count t) (message_count t);
  Array.iter
    (fun p ->
      Format.fprintf ppf "  %s (id %d, release %g)@," p.pname p.pid p.release)
    t.procs;
  Array.iter
    (fun m ->
      Format.fprintf ppf "  %s: %s -> %s (size %g)@," m.mname
        t.procs.(m.src).pname t.procs.(m.dst).pname m.size)
    t.msgs;
  Format.fprintf ppf "@]"
