lib/appmodel/merge.mli: App Graph Transparency
