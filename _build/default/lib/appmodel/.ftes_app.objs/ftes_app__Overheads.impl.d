lib/appmodel/overheads.ml: Format
