lib/appmodel/overheads.mli: Format
