lib/appmodel/policy.mli: Format
