lib/appmodel/fttime.mli: Overheads
