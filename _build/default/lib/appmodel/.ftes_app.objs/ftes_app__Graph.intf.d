lib/appmodel/graph.mli: Format Overheads
