lib/appmodel/graph.ml: Array Format List Overheads Printf Queue
