lib/appmodel/policy.ml: Array Format List
