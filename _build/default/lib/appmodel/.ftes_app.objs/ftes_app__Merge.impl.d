lib/appmodel/merge.ml: App Array Float Graph List Printf Transparency
