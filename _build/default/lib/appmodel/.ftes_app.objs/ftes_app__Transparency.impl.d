lib/appmodel/transparency.ml: Format Graph List Set String
