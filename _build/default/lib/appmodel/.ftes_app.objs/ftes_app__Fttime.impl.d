lib/appmodel/fttime.ml: Overheads
