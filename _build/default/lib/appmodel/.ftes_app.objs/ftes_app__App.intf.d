lib/appmodel/app.mli: Format Graph Transparency
