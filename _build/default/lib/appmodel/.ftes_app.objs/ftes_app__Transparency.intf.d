lib/appmodel/transparency.mli: Format Graph
