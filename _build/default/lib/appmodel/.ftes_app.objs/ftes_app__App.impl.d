lib/appmodel/app.ml: Format Graph Overheads Transparency
