(** Timing formulas for rollback recovery with equidistant checkpointing
    (paper, Sec. 3.1).

    A process with WCET [c] and [n >= 1] equidistant checkpoints consists
    of [n] execution segments of length [c /. n]. Every segment is
    preceded by a checkpoint save ([chi], the first one saving the initial
    inputs) and followed by error detection ([alpha]). A fault detected in
    a segment triggers a rollback: recovery overhead [mu], then the
    segment is re-executed. The error-detection overhead of the very last
    possible recovery is not paid, because no further fault can occur
    (paper, Fig. 1c discussion).

    Simple re-execution is the [n = 1] special case: a single checkpoint
    at process activation. *)

val segment_length : c:float -> checkpoints:int -> float
(** Length of one execution segment, [c /. n].
    @raise Invalid_argument if [checkpoints < 1] or [c < 0.]. *)

val no_fault_length : c:float -> Overheads.t -> checkpoints:int -> float
(** [E0(n) = c + n * (alpha + chi)]: execution length when no fault
    occurs. *)

val recovery_cost : c:float -> Overheads.t -> checkpoints:int -> last:bool -> float
(** Extra time consumed by one tolerated fault: [mu + c/n + alpha], or
    [mu + c/n] when [last] (detection skipped on the final possible
    recovery). *)

val worst_case_length :
  c:float -> Overheads.t -> checkpoints:int -> recoveries:int -> float
(** [W(n, r)]: worst-case length when up to [r] faults hit this process:
    [E0(n) + r*(mu + c/n) + (r-1)*alpha] for [r >= 1], [E0(n)] for
    [r = 0]. *)

val recovery_slack :
  c:float -> Overheads.t -> checkpoints:int -> recoveries:int -> float
(** [W(n, r) - E0(n)]: the slack that must follow the process in a root
    schedule to absorb its worst-case recoveries. *)

val replica_length : c:float -> Overheads.t -> float
(** Length of one (non-checkpointed) active replica: [c + alpha]. *)
