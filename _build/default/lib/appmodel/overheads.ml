type t = { alpha : float; mu : float; chi : float }

let make ~alpha ~mu ~chi =
  if alpha < 0. || mu < 0. || chi < 0. then
    invalid_arg "Overheads.make: negative overhead";
  { alpha; mu; chi }

let zero = { alpha = 0.; mu = 0.; chi = 0. }

let fig1 = { alpha = 10.; mu = 10.; chi = 5. }

let scale f t =
  if f < 0. then invalid_arg "Overheads.scale: negative factor";
  { alpha = f *. t.alpha; mu = f *. t.mu; chi = f *. t.chi }

let equal a b = a.alpha = b.alpha && a.mu = b.mu && a.chi = b.chi

let pp ppf t =
  Format.fprintf ppf "{alpha=%g; mu=%g; chi=%g}" t.alpha t.mu t.chi
