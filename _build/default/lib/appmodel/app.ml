type t = {
  graph : Graph.t;
  deadline : float;
  period : float;
  transparency : Transparency.t;
}

let make ?(transparency = Transparency.none) ~graph ~deadline ~period () =
  if deadline <= 0. then invalid_arg "App.make: deadline <= 0";
  if period <= 0. then invalid_arg "App.make: period <= 0";
  if deadline > period then invalid_arg "App.make: deadline > period";
  { graph; deadline; period; transparency }

let with_transparency t transparency = { t with transparency }

let with_deadline t deadline =
  make ~transparency:t.transparency ~graph:t.graph ~deadline ~period:t.period
    ()

let fig3 () =
  let b = Graph.Builder.create () in
  let o = Overheads.fig1 in
  let add name = Graph.Builder.add_process b ~overheads:o ~name in
  let p1 = add "P1" in
  let p2 = add "P2" in
  let p3 = add "P3" in
  let p4 = add "P4" in
  let p5 = add "P5" in
  let msg src dst = ignore (Graph.Builder.add_message b ~src ~dst ~size:4.) in
  msg p1 p2;
  msg p1 p3;
  msg p2 p4;
  msg p3 p5;
  let graph = Graph.Builder.build b in
  make ~graph ~deadline:300. ~period:300. ()

let fig5 () =
  let b = Graph.Builder.create () in
  let o = Overheads.make ~alpha:5. ~mu:0. ~chi:0. in
  let add name = Graph.Builder.add_process b ~overheads:o ~name in
  let p1 = add "P1" in
  let p2 = add "P2" in
  let p3 = add "P3" in
  let p4 = add "P4" in
  (* Local edge P1 -> P2 (both end up on the same node in the paper's
     mapping, so it never uses the bus) plus the three named messages. *)
  let e12 =
    Graph.Builder.add_message b ~name:"m0" ~src:p1 ~dst:p2 ~size:0.
  in
  let m1 = Graph.Builder.add_message b ~name:"m1" ~src:p1 ~dst:p4 ~size:5. in
  let m2 = Graph.Builder.add_message b ~name:"m2" ~src:p1 ~dst:p3 ~size:5. in
  let m3 = Graph.Builder.add_message b ~name:"m3" ~src:p2 ~dst:p3 ~size:5. in
  ignore e12;
  ignore m1;
  let graph = Graph.Builder.build b in
  let transparency =
    Transparency.of_list [ Proc p3; Msg m2; Msg m3 ]
  in
  make ~transparency ~graph ~deadline:400. ~period:400. ()

let pp ppf t =
  Format.fprintf ppf "@[<v>application (D=%g, T=%g, %a)@,%a@]" t.deadline
    t.period (Transparency.pp t.graph) t.transparency Graph.pp t.graph
