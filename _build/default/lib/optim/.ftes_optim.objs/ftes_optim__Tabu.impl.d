lib/optim/tabu.ml: Array Ftes_app Ftes_arch Ftes_ftcpg Ftes_sched Ftes_util Hashtbl List Option
