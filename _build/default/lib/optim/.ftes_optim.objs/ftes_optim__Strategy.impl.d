lib/optim/strategy.ml: Array Checkpoint Descent Format Ftes_app Ftes_arch Ftes_ftcpg Ftes_sched List Tabu
