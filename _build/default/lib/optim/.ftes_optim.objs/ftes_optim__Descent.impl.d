lib/optim/descent.ml: Ftes_app Ftes_arch Ftes_ftcpg Ftes_sched List Tabu
