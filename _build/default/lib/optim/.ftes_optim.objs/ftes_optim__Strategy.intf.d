lib/optim/strategy.mli: Format Ftes_app Ftes_arch Ftes_ftcpg Tabu
