lib/optim/checkpoint.mli: Ftes_app Ftes_ftcpg
