lib/optim/checkpoint.ml: Array Ftes_app Ftes_ftcpg Ftes_sched
