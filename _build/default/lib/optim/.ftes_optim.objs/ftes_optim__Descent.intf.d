lib/optim/descent.mli: Ftes_ftcpg Tabu
