lib/optim/tabu.mli: Ftes_arch Ftes_ftcpg
