(** Deterministic pseudo-random number generator (SplitMix64).

    All randomized components of the library (workload generation, tabu
    search tie-breaking, fault-scenario sampling) draw from this generator
    so that every experiment is reproducible from a single integer seed.
    The generator is mutable but never global: callers create and thread
    states explicitly. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator currently in the same state. *)

val split : t -> t
(** [split t] derives a new, statistically independent generator and
    advances [t]. Useful to give sub-components their own streams. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [lo, hi] inclusive. Requires
    [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). Requires [bound > 0.]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is true with probability [p] (clamped to [0, 1]). *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample : t -> int -> 'a list -> 'a list
(** [sample t n xs] draws [min n (length xs)] distinct elements of [xs],
    in random order. *)
