type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  { state = mix64 s }

(* Non-negative 62-bit value, avoiding sign issues on boxed int64. *)
let bits t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  assert (bound > 0);
  (* Rejection sampling to avoid modulo bias. *)
  let rec go () =
    let r = bits t in
    let v = r mod bound in
    if r - v + (bound - 1) < 0 then go () else v
  in
  go ()

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t bound =
  assert (bound > 0.);
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let chance t p =
  (* Always consumes exactly one draw, so that varying [p] does not
     shift the stream seen by later draws (e.g. the transparency
     trade-off sweeps compare the same instance at several levels). *)
  let v = float t 1.0 in
  if p <= 0. then false else if p >= 1. then true else v < p

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let pick_list t xs =
  match xs with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth xs (int t (List.length xs))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample t n xs =
  let arr = Array.of_list xs in
  shuffle t arr;
  let n = min n (Array.length arr) in
  Array.to_list (Array.sub arr 0 n)
