let render_table ~header rows =
  let ncols = List.length header in
  let pad_row r =
    let len = List.length r in
    if len >= ncols then r else r @ List.init (ncols - len) (fun _ -> "")
  in
  let rows = List.map pad_row rows in
  let all = header :: rows in
  let width i =
    List.fold_left (fun w row -> max w (String.length (List.nth row i))) 0 all
  in
  let widths = List.init ncols width in
  let fmt_row row =
    let cells =
      List.mapi
        (fun i cell ->
          let w = List.nth widths i in
          cell ^ String.make (w - String.length cell) ' ')
        row
    in
    String.concat " | " cells
  in
  let sep =
    String.concat "-+-" (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (fmt_row header :: sep :: List.map fmt_row rows) ^ "\n"

let markers = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&' |]

let render_chart ?(width = 64) ?(height = 16) ?(y_label = "") ~x_label ~xs
    ~series () =
  if xs = [] then invalid_arg "Chart.render_chart: empty xs";
  if series = [] then invalid_arg "Chart.render_chart: no series";
  List.iter
    (fun (name, ys) ->
      if List.length ys <> List.length xs then
        invalid_arg
          (Printf.sprintf "Chart.render_chart: series %s length mismatch" name))
    series;
  let all_ys = List.concat_map snd series in
  let ymin, ymax = Stats.min_max all_ys in
  let ymin = min ymin 0. in
  let yspan = if ymax -. ymin <= 0. then 1. else ymax -. ymin in
  let xmin, xmax = Stats.min_max xs in
  let xspan = if xmax -. xmin <= 0. then 1. else xmax -. xmin in
  let grid = Array.make_matrix height width ' ' in
  let col_of x =
    let c = int_of_float ((x -. xmin) /. xspan *. float_of_int (width - 1)) in
    max 0 (min (width - 1) c)
  in
  let row_of y =
    let r =
      int_of_float ((y -. ymin) /. yspan *. float_of_int (height - 1))
    in
    (height - 1) - max 0 (min (height - 1) r)
  in
  List.iteri
    (fun si (_, ys) ->
      let m = markers.(si mod Array.length markers) in
      List.iter2 (fun x y -> grid.(row_of y).(col_of x) <- m) xs ys)
    series;
  let buf = Buffer.create 1024 in
  if y_label <> "" then Buffer.add_string buf (y_label ^ "\n");
  Array.iteri
    (fun i row ->
      let yval =
        ymax -. (float_of_int i /. float_of_int (height - 1) *. yspan)
      in
      Buffer.add_string buf (Printf.sprintf "%8.1f |" yval);
      Buffer.add_string buf (String.init width (fun j -> row.(j)));
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_string buf (String.make 9 ' ' ^ "+" ^ String.make width '-' ^ "\n");
  Buffer.add_string buf
    (Printf.sprintf "%9s %-8.0f%*s%.0f   (%s)\n" "" xmin (width - 16) ""
       xmax x_label);
  let legend =
    List.mapi
      (fun si (name, _) ->
        Printf.sprintf "%c %s" markers.(si mod Array.length markers) name)
      series
  in
  Buffer.add_string buf ("legend: " ^ String.concat "   " legend ^ "\n");
  Buffer.contents buf
