lib/util/stats.mli:
