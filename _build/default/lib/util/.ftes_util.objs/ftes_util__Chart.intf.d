lib/util/chart.mli:
