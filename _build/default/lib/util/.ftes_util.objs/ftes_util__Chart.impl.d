lib/util/chart.ml: Array Buffer List Printf Stats String
