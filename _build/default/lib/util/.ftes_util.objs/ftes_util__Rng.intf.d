lib/util/rng.mli:
