lib/util/pqueue.mli:
