(** ASCII rendering for experiment output: aligned tables and simple line
    charts, used by the benchmark harness to print the paper's figures as
    text. *)

val render_table : header:string list -> string list list -> string
(** Aligned, pipe-separated table with a separator under the header.
    Rows shorter than the header are padded with empty cells. *)

val render_chart :
  ?width:int ->
  ?height:int ->
  ?y_label:string ->
  x_label:string ->
  xs:float list ->
  series:(string * float list) list ->
  unit ->
  string
(** [render_chart ~xs ~series ()] plots each named series against [xs]
    on a character grid. Series are drawn with distinct marker characters
    and a legend line is appended. All series must have the same length
    as [xs].
    @raise Invalid_argument on empty or mismatched inputs. *)
