lib/workload/gen.mli: Ftes_app Ftes_arch Ftes_ftcpg
