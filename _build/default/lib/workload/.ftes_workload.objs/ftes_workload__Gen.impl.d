lib/workload/gen.ml: Array Ftes_app Ftes_arch Ftes_ftcpg Ftes_util Hashtbl List Printf
