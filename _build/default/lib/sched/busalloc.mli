(** Bus reservation bookkeeping shared by both schedulers.

    For a TDMA bus, transmissions of different nodes can never collide —
    each node only transmits inside its own slots — so reservations are
    kept in per-node lanes: placement only scans the sender's lane. (A
    message spanning several rounds blocks the sender's lane for the
    whole span, a mild conservatism that only affects the sender's own
    later messages.)

    For a single contention bus all nodes share one lane.

    The structure is persistent: the conditional scheduler forks
    execution tracks and each branch continues with its own copy. *)

type t

val create : Ftes_arch.Bus.t -> nodes:int -> t

val place :
  t -> src:int -> size:float -> earliest:float -> t * (float * float)
(** Find the first conflict-free transmission window for [src] starting
    at or after [earliest], reserve it, and return [(start, finish)].
    Zero-size messages return [(earliest, earliest)] without reserving
    anything. *)

val probe : t -> src:int -> size:float -> earliest:float -> float * float
(** The window {!place} would choose, without reserving it. *)

val reserve_window : t -> src:int -> start:float -> finish:float -> t
(** Pre-reserve an explicit window (frozen transmissions).
    @raise Invalid_argument if it overlaps an existing reservation in
    the sender's lane. *)
