module Bus = Ftes_arch.Bus

type t = { bus : Bus.t; lanes : Timeline.t array }

let create bus ~nodes =
  let lane_count = if Bus.is_tdma bus then max nodes 1 else 1 in
  { bus; lanes = Array.make lane_count Timeline.empty }

let lane_of t src = if Bus.is_tdma t.bus then src else 0

(* Single walk over the lane's sorted reservations: each step either
   fits the aligned window before the next reservation, skips a
   reservation the window already cleared, or jumps past a conflicting
   one — O(lane length) per placement even on a saturated bus. *)
let find_window t ~src ~size ~earliest =
  let lane = t.lanes.(lane_of t src) in
  let eps = 1e-9 in
  let rec go t0 = function
    | [] -> Bus.next_window t.bus ~node:src ~size ~earliest:t0
    | (si, fi) :: rest ->
        let s, f = Bus.next_window t.bus ~node:src ~size ~earliest:t0 in
        if f <= si +. eps then (s, f)
        else if s >= fi -. eps then go t0 rest
        else go (max t0 fi) rest
  in
  go earliest (Timeline.intervals lane)

let probe t ~src ~size ~earliest =
  if size <= 0. then (earliest, earliest)
  else find_window t ~src ~size ~earliest

let place t ~src ~size ~earliest =
  if size <= 0. then (t, (earliest, earliest))
  else begin
    let s, f = find_window t ~src ~size ~earliest in
    let li = lane_of t src in
    let lanes = Array.copy t.lanes in
    lanes.(li) <- Timeline.reserve lanes.(li) ~start:s ~finish:f;
    ({ t with lanes }, (s, f))
  end

let reserve_window t ~src ~start ~finish =
  let li = lane_of t src in
  let lanes = Array.copy t.lanes in
  lanes.(li) <- Timeline.reserve lanes.(li) ~start ~finish;
  { t with lanes }
