lib/sched/conditional.ml: Array Busalloc Float Ftes_app Ftes_arch Ftes_ftcpg Hashtbl Int List Map Option Printf Table Timeline
