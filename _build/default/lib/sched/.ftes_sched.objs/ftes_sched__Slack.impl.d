lib/sched/slack.ml: Array Busalloc Format Ftes_app Ftes_arch Ftes_ftcpg Ftes_util Hashtbl List Timeline
