lib/sched/table.mli: Format Ftes_ftcpg
