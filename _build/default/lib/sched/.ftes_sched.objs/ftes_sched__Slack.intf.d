lib/sched/slack.mli: Format Ftes_ftcpg
