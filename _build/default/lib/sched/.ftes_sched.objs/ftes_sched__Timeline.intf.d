lib/sched/timeline.mli:
