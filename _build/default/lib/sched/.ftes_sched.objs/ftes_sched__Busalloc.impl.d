lib/sched/busalloc.ml: Array Ftes_arch Timeline
