lib/sched/conditional.mli: Ftes_ftcpg Table
