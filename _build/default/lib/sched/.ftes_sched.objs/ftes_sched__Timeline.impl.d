lib/sched/timeline.ml: List
