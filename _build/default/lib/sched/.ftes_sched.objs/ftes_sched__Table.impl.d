lib/sched/table.ml: Array Float Format Ftes_app Ftes_arch Ftes_ftcpg Ftes_util Hashtbl List Printf String
