lib/sched/busalloc.mli: Ftes_arch
