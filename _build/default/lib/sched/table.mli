(** Fault-tolerant schedule tables (paper, Sec. 5.2).

    The output of conditional scheduling: for every FT-CPG vertex (and
    every condition broadcast) a set of activation times, each valid
    under a guard — a conjunction of condition values. At run time a
    non-preemptive scheduler on each node walks its part of the table
    and activates processes and transmissions as condition values become
    known; condition values produced on a node are broadcast to all
    other nodes as soon as possible. *)

type resource =
  | Node of int  (** CPU of a computation node. *)
  | Bus  (** The shared broadcast channel. *)
  | Local  (** Zero-time: same-node message or synchronization merge. *)

type item =
  | Exec of int  (** Execution / transmission of FT-CPG vertex [vid]. *)
  | Bcast of int  (** Broadcast of the condition produced by vertex
                      [vid]. *)

type entry = {
  item : item;
  guard : Ftes_ftcpg.Cond.guard;  (** Guard at the moment the activation
                                      decision is committed. *)
  start : float;
  finish : float;
  resource : resource;
}

type track = {
  scenario : Ftes_ftcpg.Cond.guard;  (** A complete fault scenario. *)
  makespan : float;  (** Application completion time in that scenario. *)
}

type t = private {
  ftcpg : Ftes_ftcpg.Ftcpg.t;
  entries : entry list;
  tracks : track list;
}

val make :
  ftcpg:Ftes_ftcpg.Ftcpg.t -> entries:entry list -> tracks:track list -> t
(** Deduplicates entries: identical [(item, start, resource)] under
    several guards keep the most general guard recorded. *)

val schedule_length : t -> float
(** Worst-case makespan over all fault scenarios — the fault-tolerant
    schedule length used by the FTO metric. *)

val no_fault_length : t -> float
(** Makespan of the fault-free scenario. *)

val entries_of_item : t -> item -> entry list
(** Sorted by start time. *)

val entries_on : t -> resource -> entry list

val starts_of_vertex : t -> int -> float list
(** Distinct activation times of one FT-CPG vertex across guards. *)

val meets_deadline : t -> bool
(** Global deadline and every local deadline, in every scenario.
    Local deadlines are checked against the worst-case completion of the
    process's copies in each scenario where they execute. *)

val violations : t -> string list
(** Human-readable deadline violations (empty iff {!meets_deadline}). *)

val entry_count : t -> int

val pp : Format.formatter -> t -> unit
(** Per-node tables in the style of the paper's Fig. 6 (list layout:
    one line per application object, activation times with guards). *)

val pp_matrix : ?max_columns:int -> Format.formatter -> t -> unit
(** Matrix layout close to Fig. 6: columns are guards; suppressed when
    there are more than [max_columns] (default 16) distinct guards. *)
