module Cond = Ftes_ftcpg.Cond
module Ftcpg = Ftes_ftcpg.Ftcpg
module Problem = Ftes_ftcpg.Problem
module Graph = Ftes_app.Graph
module App = Ftes_app.App

type resource = Node of int | Bus | Local

type item = Exec of int | Bcast of int

type entry = {
  item : item;
  guard : Cond.guard;
  start : float;
  finish : float;
  resource : resource;
}

type track = { scenario : Cond.guard; makespan : float }

type t = { ftcpg : Ftcpg.t; entries : entry list; tracks : track list }

(* Two guards resolve when they differ in exactly one complementary
   literal: the union of their scenario sets is exactly the common
   rest. Anything weaker (e.g. plain intersection) would let an entry
   leak into scenarios whose track committed a different time. *)
let resolve g1 g2 =
  let c = Cond.intersect g1 g2 in
  if Cond.size g1 = Cond.size g2 && Cond.size c = Cond.size g1 - 1 then Some c
  else None

let dedup entries =
  (* One entry per (item, start, resource, guard); same-slot entries
     from sibling branches collapse by resolution until a fixpoint. *)
  let groups = Hashtbl.create 64 in
  let keys = ref [] in
  List.iter
    (fun e ->
      let key = (e.item, e.resource, Float.round (e.start *. 1e6)) in
      if not (Hashtbl.mem groups key) then keys := key :: !keys;
      Hashtbl.replace groups key
        (e :: (try Hashtbl.find groups key with Not_found -> [])))
    entries;
  let collapse es =
    let guards =
      ref (List.sort_uniq Cond.compare (List.map (fun e -> e.guard) es))
    in
    let find_resolvable gs =
      let rec go = function
        | [] -> None
        | g :: rest -> (
            match List.find_map (fun g' -> resolve g g') rest with
            | Some merged -> Some (g, merged)
            | None -> go rest)
      in
      go gs
    in
    let rec step () =
      match find_resolvable !guards with
      | Some (g, merged) ->
          (* [merged] covers [g] and its resolution partner. *)
          guards :=
            List.sort_uniq Cond.compare
              (merged
              :: List.filter
                   (fun g' ->
                     not (Cond.equal g' g || Cond.implies g' merged))
                   !guards);
          step ()
      | None ->
          (* Drop guards subsumed by a strictly more general one. *)
          let gs = !guards in
          let kept =
            List.filter
              (fun g ->
                not
                  (List.exists
                     (fun g' -> (not (Cond.equal g g')) && Cond.implies g g')
                     gs))
              gs
          in
          if List.length kept <> List.length gs then begin
            guards := kept;
            step ()
          end
    in
    step ();
    match es with
    | [] -> []
    | e :: _ -> List.map (fun g -> { e with guard = g }) !guards
  in
  List.concat_map (fun key -> collapse (Hashtbl.find groups key)) !keys

let make ~ftcpg ~entries ~tracks =
  let entries =
    List.sort
      (fun a b -> compare (a.start, a.item) (b.start, b.item))
      (dedup entries)
  in
  { ftcpg; entries; tracks }

let schedule_length t =
  List.fold_left (fun acc tr -> max acc tr.makespan) 0. t.tracks

let no_fault_length t =
  match
    List.find_opt (fun tr -> Cond.fault_count tr.scenario = 0) t.tracks
  with
  | Some tr -> tr.makespan
  | None -> schedule_length t

let entries_of_item t item =
  List.filter (fun e -> e.item = item) t.entries

let entries_on t resource = List.filter (fun e -> e.resource = resource) t.entries

let starts_of_vertex t vid =
  List.sort_uniq compare
    (List.filter_map
       (fun e -> if e.item = Exec vid then Some e.start else None)
       t.entries)

let completion_of_process t ~scenario pid =
  let copies = Ftcpg.proc_copies t.ftcpg ~pid in
  List.fold_left
    (fun acc e ->
      match e.item with
      | Exec vid
        when List.mem vid copies
             && Ftcpg.exists_in t.ftcpg ~scenario vid
             && Cond.implies scenario e.guard ->
          max acc e.finish
      | Exec _ | Bcast _ -> acc)
    0. t.entries

let violations t =
  let problem = Ftcpg.problem t.ftcpg in
  let app = problem.Problem.app in
  let deadline = app.App.deadline in
  let g = app.App.graph in
  let global =
    List.filter_map
      (fun tr ->
        if tr.makespan > deadline +. 1e-9 then
          Some
            (Printf.sprintf "scenario %s: makespan %g exceeds deadline %g"
               (Cond.to_string ~name:(Ftcpg.cond_name t.ftcpg) tr.scenario)
               tr.makespan deadline)
        else None)
      t.tracks
  in
  let local =
    List.concat_map
      (fun (p : Graph.process) ->
        match p.Graph.local_deadline with
        | None -> []
        | Some d ->
            List.filter_map
              (fun tr ->
                let c = completion_of_process t ~scenario:tr.scenario p.Graph.pid in
                if c > d +. 1e-9 then
                  Some
                    (Printf.sprintf
                       "scenario %s: %s completes at %g, local deadline %g"
                       (Cond.to_string ~name:(Ftcpg.cond_name t.ftcpg)
                          tr.scenario)
                       p.Graph.pname c d)
                else None)
              t.tracks)
      (Array.to_list (Graph.processes g))
  in
  global @ local

let meets_deadline t = violations t = []

let entry_count t = List.length t.entries

let item_name t = function
  | Exec vid -> (Ftcpg.vertex t.ftcpg vid).Ftcpg.name
  | Bcast vid -> Ftcpg.cond_name t.ftcpg vid

let resource_label t = function
  | Node nid ->
      (Ftes_arch.Arch.node (Ftcpg.problem t.ftcpg).Problem.arch nid)
        .Ftes_arch.Arch.nname
  | Bus -> "bus"
  | Local -> "local"

let pp ppf t =
  let guard_str g = Cond.to_string ~name:(Ftcpg.cond_name t.ftcpg) g in
  let resources =
    let problem = Ftcpg.problem t.ftcpg in
    List.map (fun nid -> Node nid)
      (Ftes_arch.Arch.node_ids problem.Problem.arch)
    @ [ Bus; Local ]
  in
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun r ->
      match entries_on t r with
      | [] -> ()
      | es ->
          Format.fprintf ppf "-- %s --@," (resource_label t r);
          List.iter
            (fun e ->
              Format.fprintf ppf "  %7.1f-%-7.1f %-10s if %s@," e.start
                e.finish (item_name t e.item) (guard_str e.guard))
            es)
    resources;
  Format.fprintf ppf "worst-case length %g, no-fault length %g, %d scenarios@]"
    (schedule_length t) (no_fault_length t) (List.length t.tracks)

(* Matrix layout close to the paper's Fig. 6: one column per distinct
   guard, one row per application-level object. *)
let pp_matrix ?(max_columns = 16) ppf t =
  let guard_str g = Cond.to_string ~name:(Ftcpg.cond_name t.ftcpg) g in
  let problem = Ftcpg.problem t.ftcpg in
  let g = (Ftcpg.problem t.ftcpg).Problem.app.App.graph in
  let guards =
    List.sort_uniq Cond.compare (List.map (fun e -> e.guard) t.entries)
  in
  if List.length guards > max_columns then
    Format.fprintf ppf
      "(%d distinct guards; matrix layout suppressed, see list layout)@,"
      (List.length guards)
  else begin
    let row_key e =
      match e.item with
      | Exec vid -> (
          match (Ftcpg.vertex t.ftcpg vid).Ftcpg.kind with
          | Ftcpg.Proc_copy { pid; _ } | Ftcpg.Sync_proc pid ->
              (0, pid, (Graph.process g pid).Graph.pname)
          | Ftcpg.Msg_inst { mid; _ } | Ftcpg.Sync_msg mid ->
              (1, mid, (Graph.message g mid).Graph.mname))
      | Bcast vid -> (2, vid, Ftcpg.cond_name t.ftcpg vid)
    in
    let rows =
      List.sort_uniq compare (List.map row_key t.entries)
    in
    let cell row guard =
      let cs =
        List.filter_map
          (fun e ->
            if row_key e = row && Cond.equal e.guard guard then
              Some
                (Printf.sprintf "%g(%s)" e.start
                   (match e.item with
                   | Exec vid -> (Ftcpg.vertex t.ftcpg vid).Ftcpg.name
                   | Bcast _ -> "bc"))
            else None)
          t.entries
      in
      String.concat " " cs
    in
    let header = "" :: List.map guard_str guards in
    let body =
      List.map
        (fun ((_, _, name) as row) -> name :: List.map (cell row) guards)
        rows
    in
    Format.pp_print_string ppf (Ftes_util.Chart.render_table ~header body)
  end;
  ignore problem
