(* Sorted list of non-overlapping, non-empty [start, finish) intervals.
   Touching intervals (finish = next start) are kept separate; the eps
   guards against float noise when the caller re-derives boundaries. *)

type t = (float * float) list

let eps = 1e-9

let empty = []

let overlaps (s1, f1) (s2, f2) = s1 < f2 -. eps && s2 < f1 -. eps

let conflict_end t ~start ~finish =
  List.find_map
    (fun (s, f) -> if overlaps (s, f) (start, finish) then Some f else None)
    t

let is_free t ~start ~finish = conflict_end t ~start ~finish = None

let rec insert (s, f) = function
  | [] -> [ (s, f) ]
  | (s', f') :: rest as l ->
      if f <= s' +. eps then (s, f) :: l
      else if f' <= s +. eps then (s', f') :: insert (s, f) rest
      else invalid_arg "Timeline.reserve: overlapping reservation"

let reserve t ~start ~finish =
  if finish <= start +. eps then
    if finish < start then invalid_arg "Timeline.reserve: negative interval"
    else t (* zero-length reservations occupy nothing *)
  else insert (start, finish) t

let earliest_gap t ~from_ ~duration =
  if duration <= eps then
    (* Zero-duration items fit anywhere at or after [from_]. *)
    from_
  else
    let rec go pos = function
      | [] -> pos
      | (s, f) :: rest ->
          if pos +. duration <= s +. eps then pos else go (max pos f) rest
    in
    go from_ t

let intervals t = t

let busy_until t = List.fold_left (fun acc (_, f) -> max acc f) 0. t
