(** Root-schedule generation with recovery slack — the scalable
    schedule-length estimator used inside the design-optimization loops
    (mapping / policy assignment / checkpoint optimization), where full
    conditional scheduling is exponentially expensive (paper, Sec. 6).

    The estimator list-schedules the fault-free {e root schedule} of all
    process copies (replicas run unconditionally — active replication)
    and all cross-node transmissions on the bus, then accounts for
    faults with a shared-slack bound: at most [k] transient faults occur
    per cycle, and each fault delays the affected chain by one recovery
    of the faulted process, so the total worst-case elongation is
    bounded by [max_i k-bounded-recovery-slack(i)] — slack is shared
    ("max", not "sum"), achieved when all [k] faults hit the process
    with the costliest recoveries.

    Transparency is respected conservatively: a frozen message departs
    only after its producer's worst-case completion, and a frozen
    process starts no earlier than the worst-case arrival of its
    inputs. *)

type placement = {
  pid : int;
  copy : int;
  node : int;
  start : float;
  finish : float;  (** Fault-free completion. *)
  worst_finish : float;  (** Completion if all remaining faults hit this
                             copy. *)
}

type msg_placement = {
  mid : int;
  copy : int;  (** Producer copy. *)
  start : float;
  finish : float;
  on_bus : bool;
}

type result = {
  root_makespan : float;  (** Fault-free schedule length. *)
  slack_term : float;  (** Shared recovery-slack bound. *)
  length : float;  (** Estimated worst-case fault-tolerant schedule
                       length: [root_makespan + slack_term]. *)
  placements : placement list;
  msg_placements : msg_placement list;
  penalties : float array;
      (** Per-process laxity-discounted recovery penalty;
          [slack_term = max over processes]. The optimizer targets the
          processes at the top of this array. *)
}

val critical_processes : result -> (int * float) list
(** Processes sorted by decreasing penalty (positive penalties only). *)

val evaluate : ?ft:bool -> Ftes_ftcpg.Problem.t -> result
(** [ft:false] evaluates the same instance {e ignoring fault tolerance}:
    only the original copies, raw WCETs without overheads, no slack —
    the baseline of the paper's fault-tolerance overhead (FTO) metric.
    Default [ft:true]. *)

val length : ?ft:bool -> Ftes_ftcpg.Problem.t -> float
(** [length p = (evaluate p).length]. *)

val fto : ft_length:float -> nft_length:float -> float
(** Fault-tolerance overhead: percentage increase of the schedule length
    due to fault tolerance (paper, Sec. 6). *)

val pp_result : Format.formatter -> result -> unit
