type node = { nid : int; nname : string }

type t = { nodes : node array; bus : Bus.t }

let make ?names ~node_count ~bus () =
  if node_count <= 0 then invalid_arg "Arch.make: node_count <= 0";
  let names =
    match names with
    | None -> List.init node_count (fun i -> Printf.sprintf "N%d" (i + 1))
    | Some ns ->
        if List.length ns <> node_count then
          invalid_arg "Arch.make: names length mismatch";
        ns
  in
  let nodes =
    Array.of_list (List.mapi (fun nid nname -> { nid; nname }) names)
  in
  { nodes; bus }

let node_count t = Array.length t.nodes

let node t nid =
  if nid < 0 || nid >= node_count t then invalid_arg "Arch.node: bad id";
  t.nodes.(nid)

let node_ids t = List.init (node_count t) (fun i -> i)

let bus t = t.bus

let default_bus ~node_count =
  Bus.tdma ~slot_length:10. ~bandwidth:1. node_count

let pp ppf t =
  Format.fprintf ppf "@[<v>architecture: %d nodes, %a@]" (node_count t) Bus.pp
    t.bus
