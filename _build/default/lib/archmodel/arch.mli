(** A distributed platform: computation nodes sharing a broadcast bus
    (paper, Sec. 2). Each node consists of a CPU and a communication
    controller; communications follow static schedule tables over a
    TDMA protocol (or a simpler contention bus for experiments). *)

type node = private { nid : int; nname : string }

type t = private { nodes : node array; bus : Bus.t }

val make : ?names:string list -> node_count:int -> bus:Bus.t -> unit -> t
(** Default names are ["N1"; "N2"; ...].
    @raise Invalid_argument if [node_count <= 0] or names mismatch. *)

val node_count : t -> int
val node : t -> int -> node
val node_ids : t -> int list
val bus : t -> Bus.t

val default_bus : node_count:int -> Bus.t
(** The TDMA bus used throughout examples and experiments: one slot per
    node, slot length 10, bandwidth 1 (a size-10 message fills one
    slot). *)

val pp : Format.formatter -> t -> unit
