lib/archmodel/bus.mli: Format
