lib/archmodel/wcet.mli: Format
