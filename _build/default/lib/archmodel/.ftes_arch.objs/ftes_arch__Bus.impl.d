lib/archmodel/bus.ml: Array Format
