lib/archmodel/examples.ml: Arch List Wcet
