lib/archmodel/arch.ml: Array Bus Format List Printf
