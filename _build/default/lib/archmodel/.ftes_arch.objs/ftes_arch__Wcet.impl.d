lib/archmodel/wcet.ml: Array Format Ftes_util List Option Printf
