lib/archmodel/examples.mli: Arch Wcet
