lib/archmodel/arch.mli: Bus Format
