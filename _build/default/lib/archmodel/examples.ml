let build rows =
  let procs = List.length rows in
  let nodes = match rows with [] -> 0 | r :: _ -> List.length r in
  let arch =
    Arch.make ~node_count:nodes ~bus:(Arch.default_bus ~node_count:nodes) ()
  in
  let w = Wcet.create ~procs ~nodes in
  List.iteri
    (fun pid row ->
      List.iteri
        (fun nid entry ->
          match entry with
          | Some c -> Wcet.set w ~pid ~nid c
          | None -> ())
        row)
    rows;
  Wcet.validate w;
  (arch, w)

let fig3 () =
  build
    [
      [ Some 20.; Some 30. ];
      [ Some 40.; Some 60. ];
      [ Some 60.; None ];
      [ Some 40.; Some 60. ];
      [ Some 40.; Some 60. ];
    ]

let fig5 () =
  build
    [
      [ Some 30.; None ];
      [ Some 20.; None ];
      [ None; Some 20. ];
      [ None; Some 30. ];
    ]
