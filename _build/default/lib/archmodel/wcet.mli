(** Worst-case execution time table (paper, Fig. 3c).

    For every process and every node it may be mapped to, the WCET is
    known; an absent entry (the paper's "X") is a mapping restriction —
    the process can never execute on that node. *)

type t

val create : procs:int -> nodes:int -> t
(** All entries start absent. *)

val set : t -> pid:int -> nid:int -> float -> unit
(** @raise Invalid_argument on a negative WCET or out-of-range ids. *)

val forbid : t -> pid:int -> nid:int -> unit
(** Reinstate the mapping restriction for an entry. *)

val get : t -> pid:int -> nid:int -> float option

val get_exn : t -> pid:int -> nid:int -> float
(** @raise Invalid_argument if the mapping is restricted. *)

val allowed : t -> pid:int -> nid:int -> bool

val allowed_nodes : t -> pid:int -> int list
(** Nodes the process may be mapped to, ascending. *)

val fastest_node : t -> pid:int -> (int * float) option
(** Node with the smallest WCET for the process (ties broken by id). *)

val average_wcet : t -> pid:int -> float
(** Mean WCET over allowed nodes; 0. if none. *)

val proc_count : t -> int
val node_count : t -> int

val validate : t -> unit
(** @raise Invalid_argument if some process has no allowed node. *)

val map : (float -> float) -> t -> t
(** Pointwise transform of all present entries (e.g. scaling). *)

val copy : t -> t
val pp : Format.formatter -> t -> unit
