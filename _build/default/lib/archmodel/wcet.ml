type t = {
  nodes : int;
  table : float option array array; (* [pid].(nid) *)
}

let create ~procs ~nodes =
  if procs < 0 || nodes <= 0 then invalid_arg "Wcet.create: bad dimensions";
  { nodes; table = Array.make_matrix procs nodes None }

let proc_count t = Array.length t.table

let node_count t = t.nodes

let check t ~pid ~nid =
  if pid < 0 || pid >= proc_count t then invalid_arg "Wcet: bad process id";
  if nid < 0 || nid >= node_count t then invalid_arg "Wcet: bad node id"

let set t ~pid ~nid c =
  check t ~pid ~nid;
  if c < 0. then invalid_arg "Wcet.set: negative WCET";
  t.table.(pid).(nid) <- Some c

let forbid t ~pid ~nid =
  check t ~pid ~nid;
  t.table.(pid).(nid) <- None

let get t ~pid ~nid =
  check t ~pid ~nid;
  t.table.(pid).(nid)

let get_exn t ~pid ~nid =
  match get t ~pid ~nid with
  | Some c -> c
  | None ->
      invalid_arg
        (Printf.sprintf "Wcet.get_exn: process %d cannot run on node %d" pid
           nid)

let allowed t ~pid ~nid = get t ~pid ~nid <> None

let allowed_nodes t ~pid =
  List.filteri (fun _ _ -> true)
    (List.filter_map
       (fun nid -> if allowed t ~pid ~nid then Some nid else None)
       (List.init (node_count t) (fun i -> i)))

let fastest_node t ~pid =
  List.fold_left
    (fun best nid ->
      match (best, get t ~pid ~nid) with
      | _, None -> best
      | None, Some c -> Some (nid, c)
      | Some (_, bc), Some c -> if c < bc then Some (nid, c) else best)
    None
    (List.init (node_count t) (fun i -> i))

let average_wcet t ~pid =
  let cs =
    List.filter_map (fun nid -> get t ~pid ~nid)
      (List.init (node_count t) (fun i -> i))
  in
  Ftes_util.Stats.mean cs

let validate t =
  for pid = 0 to proc_count t - 1 do
    if allowed_nodes t ~pid = [] then
      invalid_arg
        (Printf.sprintf "Wcet.validate: process %d has no allowed node" pid)
  done

let map f t =
  { t with table = Array.map (Array.map (Option.map f)) t.table }

let copy t = { t with table = Array.map Array.copy t.table }

let pp ppf t =
  Format.fprintf ppf "@[<v>WCET table (%d procs x %d nodes)@," (proc_count t)
    (node_count t);
  Array.iteri
    (fun pid row ->
      Format.fprintf ppf "  P%d:" (pid + 1);
      Array.iter
        (fun c ->
          match c with
          | Some c -> Format.fprintf ppf " %6g" c
          | None -> Format.fprintf ppf "      X")
        row;
      Format.fprintf ppf "@,")
    t.table;
  Format.fprintf ppf "@]"
