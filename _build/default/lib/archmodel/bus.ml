type spec =
  | Single of { setup : float; bandwidth : float }
  | Tdma of {
      slot_order : int array;
      slot_of_node : int array;  (* node id -> slot index in the round *)
      slot_length : float;
      bandwidth : float;
    }

type t = spec

let single ?(setup = 0.) ~bandwidth () =
  if bandwidth <= 0. then invalid_arg "Bus.single: bandwidth <= 0";
  if setup < 0. then invalid_arg "Bus.single: setup < 0";
  Single { setup; bandwidth }

let tdma ?slot_order ~slot_length ~bandwidth nodes =
  if slot_length <= 0. then invalid_arg "Bus.tdma: slot_length <= 0";
  if bandwidth <= 0. then invalid_arg "Bus.tdma: bandwidth <= 0";
  if nodes <= 0 then invalid_arg "Bus.tdma: no nodes";
  let slot_order =
    match slot_order with
    | None -> Array.init nodes (fun i -> i)
    | Some o -> Array.copy o
  in
  if Array.length slot_order <> nodes then
    invalid_arg "Bus.tdma: slot_order length mismatch";
  let slot_of_node = Array.make nodes (-1) in
  Array.iteri
    (fun slot node ->
      if node < 0 || node >= nodes then invalid_arg "Bus.tdma: bad node id";
      if slot_of_node.(node) <> -1 then
        invalid_arg "Bus.tdma: slot_order is not a permutation";
      slot_of_node.(node) <- slot)
    slot_order;
  Tdma { slot_order; slot_of_node; slot_length; bandwidth }

let is_tdma = function Tdma _ -> true | Single _ -> false

let tx_time t ~size =
  if size < 0. then invalid_arg "Bus.tx_time: negative size";
  if size = 0. then 0.
  else
    match t with
    | Single { setup; bandwidth } -> setup +. (size /. bandwidth)
    | Tdma { bandwidth; _ } -> size /. bandwidth

let round_length = function
  | Single _ -> 0.
  | Tdma { slot_order; slot_length; _ } ->
      float_of_int (Array.length slot_order) *. slot_length

(* First occurrence of [node]'s slot starting at or after [earliest]. *)
let slot_start_at_or_after slot_of_node slot_length round node earliest =
  let offset = float_of_int slot_of_node.(node) *. slot_length in
  if earliest <= offset then offset
  else
    let k = ceil ((earliest -. offset) /. round) in
    offset +. (k *. round)

let next_window t ~node ~size ~earliest =
  let earliest = max 0. earliest in
  let tx = tx_time t ~size in
  match t with
  | Single _ -> (earliest, earliest +. tx)
  | Tdma { slot_of_node; slot_length; slot_order; _ } ->
      if node < 0 || node >= Array.length slot_of_node then
        invalid_arg "Bus.next_window: unknown node";
      let round = float_of_int (Array.length slot_order) *. slot_length in
      let start =
        slot_start_at_or_after slot_of_node slot_length round node earliest
      in
      if tx = 0. then (start, start)
      else if tx <= slot_length then begin
        (* A short message may also start mid-slot, provided it still
           fits before the slot ends (frames pack several messages). *)
        let prev_start = start -. round in
        if prev_start <= earliest && earliest +. tx <= prev_start +. slot_length
        then (earliest, earliest +. tx)
        else (start, start +. tx)
      end
      else
        (* A message longer than one slot occupies the node's slot in
           [m] consecutive rounds; it completes [rem] into the last one. *)
        let m = int_of_float (ceil (tx /. slot_length)) in
        let rem = tx -. (float_of_int (m - 1) *. slot_length) in
        (start, start +. (float_of_int (m - 1) *. round) +. rem)

let window_after t ~node ~size ~after =
  next_window t ~node ~size ~earliest:(after +. 1e-9)

let pp ppf = function
  | Single { setup; bandwidth } ->
      Format.fprintf ppf "single bus (setup %g, bandwidth %g)" setup bandwidth
  | Tdma { slot_order; slot_length; bandwidth; _ } ->
      Format.fprintf ppf "TDMA bus (%d slots of %g, bandwidth %g)"
        (Array.length slot_order) slot_length bandwidth
