(** Broadcast communication channel models (paper, Sec. 2).

    The platform is a set of nodes sharing one broadcast channel. Two
    models are provided:

    - {!single}: a contention bus — any node may transmit at any time,
      one message at a time; a message of size [s] occupies the bus for
      [setup + s / bandwidth]. The conflict-resolution is left to the
      static schedule (non-preemptive exclusive reservations).

    - {!tdma}: a TTP-like time-division bus — time is split into rounds;
      in each round every node owns one slot of fixed length, in a fixed
      order. A node can only start transmitting at the beginning of one
      of its own slot occurrences; a long message spans the same slot of
      consecutive rounds. This is the protocol the paper assumes (TTP). *)

type t

val single : ?setup:float -> bandwidth:float -> unit -> t
(** @raise Invalid_argument if [bandwidth <= 0.] or [setup < 0.]. *)

val tdma :
  ?slot_order:int array -> slot_length:float -> bandwidth:float -> int -> t
(** [tdma ~slot_length ~bandwidth nodes].
    [slot_order] defaults to [0; 1; ...; nodes-1]; it must be a
    permutation of the node ids.
    @raise Invalid_argument on a bad permutation or non-positive
    slot length / bandwidth. *)

val is_tdma : t -> bool

val tx_time : t -> size:float -> float
(** Raw worst-case transmission duration of a message of the given size
    (zero-size messages take zero time). *)

val round_length : t -> float
(** TDMA round length; 0. for a single bus. *)

val next_window : t -> node:int -> size:float -> earliest:float -> float * float
(** [(start, finish)] of the first transmission opportunity for [node]
    to send a message of [size], with [start >= earliest]. For a single
    bus this is [(earliest, earliest + tx)]. For TDMA, [start] is the
    first occurrence of the node's slot at or after [earliest], and
    [finish] accounts for spanning several rounds when the message
    exceeds the slot payload. *)

val window_after : t -> node:int -> size:float -> after:float -> float * float
(** Like {!next_window} but with [start > after] strictly — used to step
    past an occupied window. *)

val pp : Format.formatter -> t -> unit
