(** Platforms and WCET tables matching the paper's worked examples. The
    process ids follow the creation order of the corresponding graphs in
    [Ftes_app.App] ([fig3], [fig5]). *)

val fig3 : unit -> Arch.t * Wcet.t
(** Fig. 3b/3c: two nodes; WCETs P1: 20/30, P2: 40/60, P3: 60/X,
    P4: 40/60, P5: 40/60 (the "X" is the paper's mapping restriction:
    P3 cannot run on N2). *)

val fig5 : unit -> Arch.t * Wcet.t
(** Two nodes for the Fig. 5/6 scenario: P1: 30/X, P2: 20/X, P3: X/20,
    P4: X/30 — forcing the paper's mapping (P1, P2 on N1; P3, P4 on
    N2). *)
