lib/core/synthesis.ml: Format Ftes_app Ftes_ftcpg Ftes_optim Ftes_sched Ftes_sim List Option Printf
