lib/core/reliability.mli:
