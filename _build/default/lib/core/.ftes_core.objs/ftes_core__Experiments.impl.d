lib/core/experiments.ml: Array Format Ftes_app Ftes_arch Ftes_ftcpg Ftes_optim Ftes_sched Ftes_soft Ftes_util Ftes_workload List Printf
