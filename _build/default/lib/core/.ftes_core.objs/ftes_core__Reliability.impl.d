lib/core/reliability.ml: Printf
