lib/core/synthesis.mli: Format Ftes_app Ftes_arch Ftes_ftcpg Ftes_optim Ftes_sched
