lib/core/experiments.mli: Format Ftes_app Ftes_ftcpg Ftes_optim Ftes_sched Ftes_soft Ftes_util
