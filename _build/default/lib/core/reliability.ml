let check ~rate ~period =
  if rate < 0. then invalid_arg "Reliability: negative rate";
  if period < 0. then invalid_arg "Reliability: negative period"

let prob_at_most_k ~rate ~period ~k =
  check ~rate ~period;
  if k < 0 then invalid_arg "Reliability: negative k";
  let lambda = rate *. period in
  (* exp(-lambda) * sum_{i<=k} lambda^i / i!, accumulated iteratively to
     stay finite for large lambda and k. *)
  let rec go i term acc =
    if i > k then acc
    else
      let term = if i = 0 then 1. else term *. lambda /. float_of_int i in
      go (i + 1) term (acc +. term)
  in
  let s = go 0 1. 0. in
  min 1. (exp (-.lambda) *. s)

let prob_more_than_k ~rate ~period ~k =
  max 0. (1. -. prob_at_most_k ~rate ~period ~k)

let min_k ?(max_k = 64) ~rate ~period ~target () =
  if target <= 0. || target >= 1. then
    invalid_arg "Reliability.min_k: target must be in (0, 1)";
  let rec go k =
    if k > max_k then
      invalid_arg
        (Printf.sprintf
           "Reliability.min_k: even k = %d does not reach the target" max_k)
    else if prob_at_most_k ~rate ~period ~k >= target then k
    else go (k + 1)
  in
  go 0

let mission_reliability ~rate ~period ~k ~cycles =
  if cycles < 0. then invalid_arg "Reliability: negative cycles";
  prob_at_most_k ~rate ~period ~k ** cycles

let cycles_in ~period ~hours =
  if period <= 0. then invalid_arg "Reliability.cycles_in: period <= 0";
  hours *. 3600. *. 1000. /. period
