(** Choosing the fault hypothesis [k].

    The paper takes "at most [k] transient faults per operation cycle"
    as an input (Sec. 2). In practice [k] is derived from the transient
    fault rate: modeling fault arrivals as a Poisson process with rate
    [rate] (faults per time unit), the number of faults in one cycle of
    length [period] is Poisson([rate * period]), and the synthesis
    guarantees the cycle whenever at most [k] faults arrive. These
    helpers convert between fault rates, per-cycle reliability goals and
    the minimal [k] to hand to the synthesis flow. *)

val prob_at_most_k : rate:float -> period:float -> k:int -> float
(** Probability that a cycle sees at most [k] transient faults.
    @raise Invalid_argument on negative arguments. *)

val prob_more_than_k : rate:float -> period:float -> k:int -> float
(** [1 - prob_at_most_k] — the probability the fault hypothesis is
    exceeded (the residual failure probability per cycle). *)

val min_k : ?max_k:int -> rate:float -> period:float -> target:float -> unit -> int
(** Smallest [k] with [prob_at_most_k >= target]. [target] in (0, 1);
    [max_k] defaults to 64.
    @raise Invalid_argument when even [max_k] faults do not reach the
    target (the rate is too high for the cycle length). *)

val mission_reliability :
  rate:float -> period:float -> k:int -> cycles:float -> float
(** Probability that [cycles] consecutive cycles all stay within the
    hypothesis: [prob_at_most_k ^ cycles]. *)

val cycles_in : period:float -> hours:float -> float
(** Number of cycles executed in a mission of the given duration, when
    the period is in milliseconds. *)
