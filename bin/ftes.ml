(* ftes — command-line front end for the fault-tolerant synthesis flow:
   generate workloads, synthesize configurations, print schedule tables,
   run fault-injection validation, reproduce the paper's experiments. *)

open Cmdliner

let read_doc path = Ftes_dsl.Dsl.load path

(* ------------------------------------------------------------------ *)
(* generate                                                            *)
(* ------------------------------------------------------------------ *)

let generate processes nodes seed frozen_procs frozen_msgs k output =
  let spec =
    {
      Ftes_workload.Gen.default with
      processes;
      nodes;
      seed;
      frozen_proc_prob = frozen_procs;
      frozen_msg_prob = frozen_msgs;
    }
  in
  let app, arch, wcet = Ftes_workload.Gen.instance spec in
  let doc = { Ftes_dsl.Dsl.app; arch; wcet; k } in
  let text = Ftes_dsl.Dsl.to_string doc in
  match output with
  | None -> print_string text
  | Some path ->
      Ftes_dsl.Dsl.save path doc;
      Format.printf "wrote %s@." path

let generate_cmd =
  let processes =
    Arg.(value & opt int 10 & info [ "p"; "processes" ] ~doc:"Process count.")
  in
  let nodes =
    Arg.(value & opt int 3 & info [ "n"; "nodes" ] ~doc:"Node count.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.") in
  let fp =
    Arg.(value & opt float 0. & info [ "frozen-procs" ]
           ~doc:"Probability a process is frozen.")
  in
  let fm =
    Arg.(value & opt float 0. & info [ "frozen-msgs" ]
           ~doc:"Probability a message is frozen.")
  in
  let k =
    Arg.(value & opt int 2 & info [ "k" ] ~doc:"Tolerated transient faults.")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ]
           ~doc:"Output file (stdout when absent).")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a random synthesis instance.")
    Term.(const generate $ processes $ nodes $ seed $ fp $ fm $ k $ output)

(* ------------------------------------------------------------------ *)
(* info                                                                *)
(* ------------------------------------------------------------------ *)

let info_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let run path =
    let doc = read_doc path in
    Format.printf "%a@.%a@.k = %d@." Ftes_app.App.pp doc.Ftes_dsl.Dsl.app
      Ftes_arch.Arch.pp doc.Ftes_dsl.Dsl.arch doc.Ftes_dsl.Dsl.k;
    Format.printf "%a@." Ftes_arch.Wcet.pp doc.Ftes_dsl.Dsl.wcet
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Print a parsed synthesis instance.")
    Term.(const run $ file)

(* ------------------------------------------------------------------ *)
(* synthesize                                                          *)
(* ------------------------------------------------------------------ *)

let strategy_conv =
  let parse = function
    | "mxr" -> Ok Ftes_optim.Strategy.MXR
    | "mx" -> Ok Ftes_optim.Strategy.MX
    | "mr" -> Ok Ftes_optim.Strategy.MR
    | "sfx" -> Ok Ftes_optim.Strategy.SFX
    | "mc-local" -> Ok Ftes_optim.Strategy.MC_local
    | "mc-global" -> Ok Ftes_optim.Strategy.MC_global
    | s -> Error (`Msg (Printf.sprintf "unknown strategy %S" s))
  in
  let print ppf s =
    Format.pp_print_string ppf
      (String.lowercase_ascii (Ftes_optim.Strategy.name_to_string s))
  in
  Arg.conv (parse, print)

let synthesize path strategy portfolio deadline fto checkpointing no_tables
    matrix validate explain json symbolic jobs no_cache stats trace metrics
    progress events metrics_json prometheus =
  if trace <> None || metrics || metrics_json <> None || prometheus <> None
  then Ftes_util.Telemetry.enable ();
  let events_oc = Option.map open_out events in
  let event_sinks = ref [] in
  if progress || events_oc <> None then begin
    Ftes_util.Events.enable ();
    (match events_oc with
    | Some oc ->
        event_sinks :=
          Ftes_util.Events.add_sink (Ftes_util.Events.ndjson_sink oc)
          :: !event_sinks
    | None -> ());
    if progress then
      event_sinks :=
        Ftes_util.Events.add_sink (Ftes_util.Events.progress_sink stderr)
        :: !event_sinks
  end;
  (* Emitted on every exit path, including validation failure. *)
  let finish_telemetry () =
    if Ftes_util.Events.enabled () then begin
      Ftes_util.Events.drain ();
      let dropped = Ftes_util.Events.dropped () in
      if dropped > 0 then
        Format.eprintf "events: %d event(s) dropped (ring buffer full)@."
          dropped;
      Ftes_util.Events.disable ()
    end;
    List.iter Ftes_util.Events.remove_sink !event_sinks;
    (match (events_oc, events) with
    | Some oc, Some file ->
        close_out oc;
        Format.printf "wrote %s@." file
    | _ -> ());
    (match trace with
    | Some file ->
        Ftes_util.Telemetry.write_chrome_trace file;
        Format.printf "wrote %s@." file
    | None -> ());
    if metrics then
      Format.printf "@.-- telemetry --@.%a@." Ftes_util.Telemetry.pp_summary ();
    (match metrics_json with
    | Some file ->
        Out_channel.with_open_bin file (fun oc ->
            output_string oc (Ftes_util.Telemetry.to_metrics_json ());
            output_char oc '\n');
        Format.printf "wrote %s@." file
    | None -> ());
    match prometheus with
    | Some file ->
        Out_channel.with_open_text file (fun oc ->
            let ppf = Format.formatter_of_out_channel oc in
            Ftes_util.Telemetry.pp_prometheus ppf ();
            Format.pp_print_flush ppf ());
        Format.printf "wrote %s@." file
    | None -> ()
  in
  let doc = read_doc path in
  let cache =
    if no_cache then None else Some (Ftes_optim.Evalcache.create ())
  in
  let tabu =
    let base =
      Ftes_core.Synthesis.default_options.Ftes_core.Synthesis.tabu
    in
    let base = { base with Ftes_optim.Tabu.cache } in
    match jobs with
    | None -> base
    | Some j -> { base with Ftes_optim.Tabu.jobs = j }
  in
  let options =
    {
      Ftes_core.Synthesis.default_options with
      strategy;
      tabu;
      compute_fto = fto;
      checkpointing;
      conditional = not no_tables;
      sched_jobs = Option.value jobs ~default:1;
      portfolio =
        (* --deadline only makes sense for the anytime portfolio, so it
           implies --portfolio. *)
        (if portfolio || deadline <> None then
           Some
             {
               Ftes_optim.Portfolio.default_options with
               Ftes_optim.Portfolio.jobs =
                 Option.value jobs
                   ~default:(Ftes_util.Par.default_jobs ());
               deadline_s = deadline;
               (* Share the CLI's cache so --stats reports the race's
                  traffic (and --no-cache still means a fresh internal
                  one, portfolio members always share a cache). *)
               cache;
             }
         else None);
    }
  in
  let result =
    Ftes_core.Synthesis.synthesize ~options ~app:doc.Ftes_dsl.Dsl.app
      ~arch:doc.Ftes_dsl.Dsl.arch ~wcet:doc.Ftes_dsl.Dsl.wcet
      ~k:doc.Ftes_dsl.Dsl.k ()
  in
  Format.printf "%a@." Ftes_core.Synthesis.pp result;
  Format.printf "@.-- policy assignment & mapping --@.";
  let problem = result.Ftes_core.Synthesis.problem in
  let g = Ftes_ftcpg.Problem.graph problem in
  Array.iteri
    (fun pid policy ->
      Format.printf "  %-8s %-40s on %s@."
        (Ftes_app.Graph.process g pid).Ftes_app.Graph.pname
        (Format.asprintf "%a" Ftes_app.Policy.pp policy)
        (String.concat ","
           (List.map
              (fun nid -> Printf.sprintf "N%d" (nid + 1))
              (Ftes_ftcpg.Mapping.copies problem.Ftes_ftcpg.Problem.mapping
                 ~pid))))
    problem.Ftes_ftcpg.Problem.policies;
  (match result.Ftes_core.Synthesis.table with
  | Some table ->
      Format.printf "@.-- schedule tables --@.%a@." Ftes_sched.Table.pp table;
      if matrix then
        Format.printf "@.%a@."
          (Ftes_sched.Table.pp_matrix ~max_columns:24)
          table
  | None -> ());
  (match (stats, cache) with
  | true, Some c ->
      Format.printf "@.-- evaluation cache --@.  %a@."
        Ftes_optim.Evalcache.pp_stats
        (Ftes_optim.Evalcache.stats c)
  | true, None ->
      Format.printf "@.-- evaluation cache --@.  disabled (--no-cache)@."
  | false, _ -> ());
  if validate || explain || json || symbolic then begin
    let mode = if symbolic then `Symbolic else `Explicit in
    let violations = Ftes_core.Synthesis.validate ?jobs ~mode result in
    if json then
      Format.printf "@.%s@." (Ftes_sim.Violation.list_to_json violations);
    if violations = [] then
      Format.printf "@.fault-injection validation: OK@."
    else begin
      Format.printf "@.fault-injection validation FAILED:@.";
      List.iter
        (fun v -> Format.printf "  ! %s@." (Ftes_sim.Violation.to_string v))
        violations;
      if explain then (
        match Ftes_core.Synthesis.diagnose ?jobs result with
        | Some report ->
            Format.printf "@.-- counterexample report --@.%a@."
              Ftes_sim.Diagnose.pp_report report
        | None -> ());
      finish_telemetry ();
      exit 1
    end
  end;
  finish_telemetry ()

let synthesize_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let strategy =
    Arg.(value & opt strategy_conv Ftes_optim.Strategy.MXR
           & info [ "strategy" ] ~doc:"mxr | mx | mr | sfx | mc-local | mc-global.")
  in
  let portfolio =
    Arg.(value & flag & info [ "portfolio" ]
           ~doc:"Race the whole strategy portfolio (MXR, MX, SFX, MR and \
                 the diagnostics-driven LNS engine, diversified over \
                 seeds/tenures/neighborhoods) concurrently on the domain \
                 pool with a shared evaluation cache, and keep the best \
                 design. Overrides --strategy; combine with --progress \
                 to watch the race live.")
  in
  let deadline =
    Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECS"
           ~doc:"Wall-clock budget for the portfolio race: every member \
                 stops at the deadline and the best incumbent found so \
                 far wins (anytime mode). Implies --portfolio.")
  in
  let fto =
    Arg.(value & flag & info [ "fto" ]
           ~doc:"Also compute the fault-tolerance overhead.")
  in
  let checkpointing =
    Arg.(value & flag & info [ "checkpointing" ]
           ~doc:"Optimize checkpoint counts globally.")
  in
  let no_tables =
    Arg.(value & flag & info [ "no-tables" ]
           ~doc:"Skip FT-CPG expansion and conditional scheduling.")
  in
  let matrix =
    Arg.(value & flag & info [ "matrix" ]
           ~doc:"Also print the Fig. 6-style matrix layout.")
  in
  let validate =
    Arg.(value & flag & info [ "validate" ]
           ~doc:"Run exhaustive fault-injection validation of the tables.")
  in
  let explain =
    Arg.(value & flag & info [ "explain" ]
           ~doc:"On validation failure, print a counterexample report: \
                 violations grouped by invariant and vertex, each with a \
                 shrunk minimal failing scenario. Implies --validate.")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Dump the validation violations as a JSON array of \
                 structured records. Implies --validate.")
  in
  let symbolic =
    Arg.(value & flag & info [ "symbolic" ]
           ~doc:"Validate with the symbolic scenario-family backend: \
                 cubes of scenarios are replayed through the compiled \
                 tables instead of the exhaustive enumeration, with one \
                 explicitly confirmed witness per failing cube. Same \
                 clean/not-clean verdict as --validate, but scales with \
                 the tables' guard structure rather than with the \
                 scenario count — use it for large k. Implies \
                 --validate.")
  in
  let jobs =
    Arg.(value & opt (some int) None & info [ "j"; "jobs" ]
           ~doc:"Domains for candidate evaluation, conditional \
                 scheduling and validation (default: all cores for \
                 evaluation/validation, sequential scheduling; 1 = \
                 fully sequential).")
  in
  let no_cache =
    Arg.(value & flag & info [ "no-cache" ]
           ~doc:"Disable the memoized design-evaluation cache (the \
                 result is identical; only the running time changes).")
  in
  let stats =
    Arg.(value & flag & info [ "stats" ]
           ~doc:"Print evaluation-cache statistics (lookups, hit rate, \
                 evictions) after synthesis.")
  in
  let trace =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record telemetry spans and write a Chrome trace-event \
                 JSON file, loadable in chrome://tracing or Perfetto.")
  in
  let metrics =
    Arg.(value & flag & info [ "metrics" ]
           ~doc:"Record telemetry and print a per-phase summary \
                 (span tree with totals and self-time, counters, \
                 histograms) after synthesis.")
  in
  let progress =
    Arg.(value & flag & info [ "progress" ]
           ~doc:"Stream live progress to stderr while synthesis runs: \
                 phase boundaries, optimizer incumbent improvements \
                 (cost, evaluations, wall time), validation progress \
                 and GC samples.")
  in
  let events =
    Arg.(value & opt (some string) None & info [ "events" ] ~docv:"FILE"
           ~doc:"Stream typed progress events to FILE as NDJSON (one \
                 JSON object per line) while synthesis runs. Event \
                 emission never blocks the search: a full buffer drops \
                 events and reports the count instead.")
  in
  let metrics_json =
    Arg.(value & opt (some string) None
           & info [ "metrics-json" ] ~docv:"FILE"
               ~doc:"Record telemetry and write the final \
                     counters/gauges/histograms snapshot to FILE as \
                     JSON.")
  in
  let prometheus =
    Arg.(value & opt (some string) None
           & info [ "prometheus" ] ~docv:"FILE"
               ~doc:"Record telemetry and write the final metrics \
                     snapshot to FILE in the Prometheus text \
                     exposition format.")
  in
  Cmd.v
    (Cmd.info "synthesize"
       ~doc:"Synthesize a fault-tolerant configuration and its tables.")
    Term.(const synthesize $ file $ strategy $ portfolio $ deadline $ fto
          $ checkpointing $ no_tables $ matrix $ validate $ explain $ json
          $ symbolic $ jobs $ no_cache $ stats $ trace $ metrics $ progress
          $ events $ metrics_json $ prometheus)

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)
(* ------------------------------------------------------------------ *)

let simulate path faults trace jobs =
  let doc = read_doc path in
  let problem = Ftes_dsl.Dsl.to_problem doc in
  let ftcpg = Ftes_ftcpg.Ftcpg.build problem in
  let table =
    Ftes_sched.Conditional.schedule ?jobs ftcpg
  in
  (* Count and filter over the packed scenario arena; only the selected
     scenarios are unpacked to guards for replay. *)
  let space = Ftes_ftcpg.Ftcpg.scenario_space ftcpg in
  let total = Ftes_ftcpg.Condvec.count space in
  let selected = ref [] in
  for i = total - 1 downto 0 do
    if Ftes_ftcpg.Condvec.fault_count space i = faults then
      selected := Ftes_ftcpg.Condvec.guard_at space i :: !selected
  done;
  let selected = !selected in
  Format.printf "%d scenarios total, %d with exactly %d fault(s)@."
    total (List.length selected) faults;
  (* Replay the scenarios on the domain pool; the ordered merge keeps
     the report order identical to the sequential run. *)
  let outcomes =
    Ftes_util.Par.map ?jobs
      (fun s -> Ftes_sim.Sim.run table ~scenario:s)
      selected
  in
  let worst = ref None in
  List.iter
    (fun o ->
      if o.Ftes_sim.Sim.violations <> [] then begin
        Format.printf "VIOLATIONS in %s:@."
          (Ftes_ftcpg.Cond.to_string
             ~name:(Ftes_ftcpg.Ftcpg.cond_name ftcpg)
             o.Ftes_sim.Sim.scenario);
        List.iter
          (fun v ->
            Format.printf "  ! %s@." (Ftes_sim.Violation.to_string v))
          o.Ftes_sim.Sim.violations
      end;
      match !worst with
      | Some w when w.Ftes_sim.Sim.makespan >= o.Ftes_sim.Sim.makespan -> ()
      | _ -> worst := Some o)
    outcomes;
  match !worst with
  | None -> Format.printf "no scenario with %d fault(s)@." faults
  | Some o ->
      Format.printf "worst makespan with %d fault(s): %g@." faults
        o.Ftes_sim.Sim.makespan;
      if trace then Format.printf "%a@." Ftes_sim.Sim.pp_outcome o

let simulate_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let faults =
    Arg.(value & opt int 1 & info [ "faults" ]
           ~doc:"Simulate all scenarios with exactly this many faults.")
  in
  let trace =
    Arg.(value & flag & info [ "trace" ]
           ~doc:"Print the event trace of the worst scenario.")
  in
  let jobs =
    Arg.(value & opt (some int) None & info [ "j"; "jobs" ]
           ~doc:"Domains for table construction and scenario replay \
                 (default: all cores for replay, sequential \
                 scheduling; 1 = fully sequential).")
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Execute the synthesized tables under injected faults.")
    Term.(const simulate $ file $ faults $ trace $ jobs)

(* ------------------------------------------------------------------ *)
(* experiment                                                          *)
(* ------------------------------------------------------------------ *)

let experiment which quick =
  let module E = Ftes_core.Experiments in
  let timings rows =
    List.iter (fun (l, v) -> Format.printf "  %-50s %8.1f ms@." l v) rows
  in
  match which with
  | "fig1" -> timings (E.fig1 ())
  | "fig2" -> timings (E.fig2 ())
  | "fig4" -> timings (E.fig4 ())
  | "fig5" -> Format.printf "%a@." Ftes_ftcpg.Ftcpg.pp (E.fig5 ())
  | "fig6" ->
      let t = E.fig6 () in
      Format.printf "%a@.@.%a@." Ftes_sched.Table.pp t
        (Ftes_sched.Table.pp_matrix ~max_columns:24)
        t
  | "fig7" ->
      let seeds = if quick then 2 else 5 in
      let sizes = if quick then [ 20; 40 ] else [ 20; 40; 60; 80; 100 ] in
      let s = E.fig7 ~seeds_per_point:seeds ~sizes () in
      Format.printf "%a@." E.pp_series s
  | "fig8" ->
      let seeds = if quick then 2 else 5 in
      let sizes = if quick then [ 40; 60 ] else [ 40; 60; 80; 100 ] in
      let s = E.fig8 ~seeds_per_point:seeds ~sizes () in
      Format.printf "%a@." E.pp_series s
  | "ablation" ->
      let s = E.transparency_tradeoff ~seeds:(if quick then 2 else 5) () in
      Format.printf "%a@." E.pp_series s
  | "soft" ->
      let s = E.soft_utility_vs_k ~seeds:(if quick then 2 else 5) () in
      Format.printf "%a@." E.pp_series s
  | "diagnose" ->
      let table, report = E.diagnostics_demo () in
      Format.printf
        "corrupted Fig. 6 tables (%d entries); validator report:@.@.%a@."
        (Ftes_sched.Table.entry_count table)
        Ftes_sim.Diagnose.pp_report report
  | "race" | "race8" ->
      let seeds = if quick then 1 else 2 in
      let sizes = if quick then [ 20 ] else [ 20; 40 ] in
      let races =
        (if which = "race8" then E.fig8_portfolio else E.fig7_portfolio)
          ~seeds_per_point:seeds ~sizes ()
      in
      List.iter
        (fun r ->
          Format.printf "%a@." E.pp_race r;
          List.iter
            (fun (label, len, wall) ->
              Format.printf "    %-12s length %8.1f  (%.2f s)@." label len
                wall)
            r.E.members;
          Format.printf "    curve:";
          List.iter
            (fun (e : Ftes_optim.Incumbent.entry) ->
              Format.printf " %.1f@%.2fs" e.Ftes_optim.Incumbent.cost
                e.Ftes_optim.Incumbent.wall_s)
            r.E.curve;
          Format.printf "@.")
        races
  | other ->
      Format.eprintf
        "unknown experiment %S \
         (fig1|fig2|fig4|fig5|fig6|fig7|fig8|ablation|soft|diagnose|race|\
         race8)@."
        other;
      exit 2

let experiment_cmd =
  let which =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FIGURE")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Smaller sweep for a fast run.")
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Reproduce one of the paper's figures.")
    Term.(const experiment $ which $ quick)

(* ------------------------------------------------------------------ *)
(* corpus                                                              *)
(* ------------------------------------------------------------------ *)

module Corpus_instance = Ftes_corpus.Instance
module Corpus_registry = Ftes_corpus.Registry
module Corpus_manifest = Ftes_corpus.Manifest
module Corpus_runner = Ftes_corpus.Runner
module Corpus_trajectory = Ftes_corpus.Trajectory

let tier_conv =
  let parse s =
    match Corpus_instance.tier_of_string s with
    | Some t -> Ok t
    | None -> Error (`Msg (Printf.sprintf "unknown tier %S" s))
  in
  let print ppf t =
    Format.pp_print_string ppf (Corpus_instance.tier_to_string t)
  in
  Arg.conv (parse, print)

let corpus_select tiers filter =
  let tiers = if tiers = [] then None else Some tiers in
  Corpus_registry.select ?tiers ?filter ()

let print_outcome ~done_count ~total (o : Corpus_runner.outcome) =
  Format.printf "[%3d/%3d] %-34s %-8s %-16s %8.1f ms  %-16s len %.1f@."
    done_count total o.Corpus_runner.instance.Corpus_instance.id
    (Corpus_instance.tier_to_string
       o.Corpus_runner.instance.Corpus_instance.tier)
    (Corpus_instance.check_kind
       o.Corpus_runner.instance.Corpus_instance.check)
    o.Corpus_runner.wall_ms
    (if o.Corpus_runner.ok then o.Corpus_runner.verdict
     else "FAILED: " ^ o.Corpus_runner.detail)
    o.Corpus_runner.length

let corpus_list tiers filter =
  let instances = corpus_select tiers filter in
  List.iter
    (fun (i : Corpus_instance.t) ->
      Format.printf "%-34s %-8s %-16s k=%d  %s@." i.Corpus_instance.id
        (Corpus_instance.tier_to_string i.Corpus_instance.tier)
        (Corpus_instance.check_kind i.Corpus_instance.check)
        i.Corpus_instance.k
        (String.concat " "
           (List.filter_map
              (fun key ->
                Option.map
                  (fun v -> key ^ "=" ^ v)
                  (Corpus_instance.axis i key))
              [ "shape"; "bus"; "transparency"; "wcet"; "class" ])))
    instances;
  Format.printf "%d instance(s)@." (List.length instances)

(* Commit identity for trajectory entries: explicit flag first, then the
   environment (CI exports GITHUB_SHA; FTES_COMMIT overrides anywhere),
   then "unknown" — the binary never shells out to git. *)
let resolve_commit = function
  | Some c -> c
  | None -> (
      match Sys.getenv_opt "FTES_COMMIT" with
      | Some c when c <> "" -> c
      | _ -> (
          match Sys.getenv_opt "GITHUB_SHA" with
          | Some c when c <> "" -> c
          | _ -> "unknown"))

let append_trajectory ~trajectory ~commit outcomes =
  match trajectory with
  | None -> ()
  | Some path ->
      let commit = resolve_commit commit in
      let entries =
        List.map
          (fun (o : Corpus_runner.outcome) ->
            {
              Corpus_trajectory.commit;
              schema = Corpus_trajectory.schema_version;
              id = o.Corpus_runner.instance.Corpus_instance.id;
              ok = o.Corpus_runner.ok;
              length = o.Corpus_runner.length;
              wall_ms = o.Corpus_runner.wall_ms;
            })
          outcomes
      in
      Corpus_trajectory.append path entries;
      Format.printf "appended %d entr%s to %s (commit %s)@."
        (List.length entries)
        (if List.length entries = 1 then "y" else "ies")
        path commit

let corpus_run tiers filter jobs trajectory commit =
  let instances = corpus_select tiers filter in
  let outcomes =
    Corpus_runner.run ?jobs ~on_outcome:print_outcome instances
  in
  let failed = List.filter (fun o -> not o.Corpus_runner.ok) outcomes in
  let wall =
    List.fold_left (fun acc o -> acc +. o.Corpus_runner.wall_ms) 0. outcomes
  in
  Format.printf "@.%d instance(s), %.1f s total instance time, %d failure(s)@."
    (List.length outcomes) (wall /. 1000.) (List.length failed);
  append_trajectory ~trajectory ~commit outcomes;
  if failed <> [] then begin
    List.iter
      (fun o ->
        Format.printf "  ! %s: %s@."
          o.Corpus_runner.instance.Corpus_instance.id o.Corpus_runner.detail)
      failed;
    exit 1
  end

let corpus_verify tiers filter jobs manifest_path budget_factor =
  match Corpus_manifest.load manifest_path with
  | Error msg ->
      Format.eprintf "cannot load manifest %s: %s@." manifest_path msg;
      exit 2
  | Ok manifest ->
      let instances = corpus_select tiers filter in
      let complete = tiers = [] && filter = None in
      let outcomes =
        Corpus_runner.run ?jobs ~on_outcome:print_outcome instances
      in
      let failures =
        Corpus_runner.verify ~budget_factor ~complete ~manifest outcomes
      in
      if failures = [] then
        Format.printf "@.corpus verify: OK (%d instance(s) match %s)@."
          (List.length outcomes) manifest_path
      else begin
        Format.printf "@.corpus verify FAILED (%d regression(s)):@."
          (List.length failures);
        List.iter
          (fun (f : Corpus_runner.failure) ->
            Format.printf "  ! %s: %s@." f.Corpus_runner.id
              f.Corpus_runner.reason)
          failures;
        exit 1
      end

let corpus_pin jobs manifest_path =
  let instances = Corpus_registry.all () in
  let outcomes =
    Corpus_runner.run ?jobs ~on_outcome:print_outcome instances
  in
  (match List.find_opt (fun o -> not o.Corpus_runner.ok) outcomes with
  | Some o ->
      Format.eprintf
        "corpus pin: refusing to pin a failing instance (%s: %s)@."
        o.Corpus_runner.instance.Corpus_instance.id o.Corpus_runner.detail;
      exit 1
  | None -> ());
  Corpus_manifest.save manifest_path (Corpus_runner.pin outcomes);
  Format.printf "@.pinned %d instance(s) into %s@." (List.length outcomes)
    manifest_path

let corpus_trend trajectory window wall_tolerance wall_floor_ms
    length_tolerance =
  let module T = Corpus_trajectory in
  match T.load trajectory with
  | Error msg ->
      Format.eprintf "cannot load trajectory %s: %s@." trajectory msg;
      exit 2
  | Ok [] ->
      Format.printf "trajectory %s has no entries; nothing to compare@."
        trajectory
  | Ok entries -> (
      match
        T.trend ~window ~wall_tolerance ~wall_floor_ms ~length_tolerance
          entries
      with
      | [] ->
          Format.printf
            "no instance has two or more runs in the window yet; nothing to \
             compare@."
      | comparisons ->
          List.iter
            (fun c -> Format.printf "@[<v>%a@]@." T.pp_comparison c)
            comparisons;
          let bad =
            List.filter (fun c -> c.T.problems <> []) comparisons
          in
          if bad = [] then
            Format.printf
              "@.corpus trend: OK (%d instance(s) within tolerance over a \
               window of %d)@."
              (List.length comparisons) window
          else begin
            Format.printf "@.corpus trend FAILED (%d regression(s))@."
              (List.length bad);
            exit 1
          end)

let corpus_cmd =
  let tiers =
    Arg.(value & opt_all tier_conv []
           & info [ "tier" ] ~doc:"Only this budget tier (repeatable): \
                                   smoke | standard | heavy.")
  in
  let filter =
    Arg.(value & opt (some string) None
           & info [ "filter" ]
               ~doc:"Only instances whose id or axis values contain this \
                     substring (e.g. 'bursty', 'single', 'soft').")
  in
  let jobs =
    Arg.(value & opt (some int) None & info [ "j"; "jobs" ]
           ~doc:"Domains used to evaluate instances in parallel \
                 (default: all cores).")
  in
  let manifest_path =
    Arg.(value & opt string "corpus/manifest.json"
           & info [ "manifest" ] ~docv:"FILE" ~doc:"Manifest path.")
  in
  let budget_factor =
    Arg.(value & opt float 1.0
           & info [ "budget-factor" ]
               ~doc:"Multiplier on the per-tier runtime ceilings before a \
                     budget regression is reported.")
  in
  let list_cmd =
    Cmd.v
      (Cmd.info "list" ~doc:"List corpus instances and their axes.")
      Term.(const corpus_list $ tiers $ filter)
  in
  let trajectory_opt =
    Arg.(value & opt (some string) None
           & info [ "trajectory" ] ~docv:"FILE"
               ~doc:"Also append one JSONL entry per instance (commit, \
                     id, ok, length, wall_ms) to this trajectory file.")
  in
  let trajectory_path =
    Arg.(value & opt string "corpus/trajectory.jsonl"
           & info [ "trajectory" ] ~docv:"FILE" ~doc:"Trajectory file.")
  in
  let commit =
    Arg.(value & opt (some string) None
           & info [ "commit" ]
               ~doc:"Commit id recorded in trajectory entries (default: \
                     \\$FTES_COMMIT, then \\$GITHUB_SHA, then \
                     'unknown').")
  in
  let window =
    Arg.(value & opt int 5
           & info [ "window" ]
               ~doc:"Most recent runs per instance considered by trend.")
  in
  let wall_tolerance =
    Arg.(value & opt float 0.5
           & info [ "wall-tolerance" ]
               ~doc:"Allowed relative wall-time growth over the prior \
                     median before a runtime regression is flagged \
                     (0.5 = +50%).")
  in
  let wall_floor_ms =
    Arg.(value & opt float 10.
           & info [ "wall-floor-ms" ]
               ~doc:"Absolute wall-time floor below which runtime \
                     regressions are never flagged (sub-millisecond \
                     instances jitter by whole multiples).")
  in
  let length_tolerance =
    Arg.(value & opt float 1e-6
           & info [ "length-tolerance" ]
               ~doc:"Allowed absolute schedule-length growth over the \
                     prior best before a quality regression is flagged.")
  in
  let run_cmd =
    Cmd.v
      (Cmd.info "run"
         ~doc:"Execute corpus instances (no manifest comparison).")
      Term.(const corpus_run $ tiers $ filter $ jobs $ trajectory_opt
            $ commit)
  in
  let trend_cmd =
    Cmd.v
      (Cmd.info "trend"
         ~doc:"Compare the most recent trajectory entries per instance \
               and fail on runtime or quality regressions beyond the \
               tolerance band.")
      Term.(const corpus_trend $ trajectory_path $ window $ wall_tolerance
            $ wall_floor_ms $ length_tolerance)
  in
  let verify_cmd =
    Cmd.v
      (Cmd.info "verify"
         ~doc:"Execute corpus instances and fail on any digest, length, \
               verdict or budget regression against the manifest.")
      Term.(const corpus_verify $ tiers $ filter $ jobs $ manifest_path
            $ budget_factor)
  in
  let pin_cmd =
    Cmd.v
      (Cmd.info "pin"
         ~doc:"Execute the full corpus and (re)write the manifest oracle.")
      Term.(const corpus_pin $ jobs $ manifest_path)
  in
  Cmd.group
    (Cmd.info "corpus"
       ~doc:"The regression-gated benchmark corpus: 160+ pinned instances \
             spanning DAG shapes, fault hypotheses up to k=7, both bus \
             models, transparency densities, WCET heterogeneity and \
             soft-goal variants.")
    [ list_cmd; run_cmd; verify_cmd; pin_cmd; trend_cmd ]

(* ------------------------------------------------------------------ *)
(* reliability                                                         *)
(* ------------------------------------------------------------------ *)

let reliability rate period target hours =
  let module R = Ftes_core.Reliability in
  let k = R.min_k ~rate ~period ~target () in
  Format.printf
    "fault rate %g/ms, cycle %g ms: expected faults per cycle %g@." rate
    period (rate *. period);
  Format.printf "minimal k for per-cycle reliability >= %g: k = %d@." target k;
  Format.printf "P(more than %d faults in a cycle) = %.3e@." k
    (R.prob_more_than_k ~rate ~period ~k);
  match hours with
  | None -> ()
  | Some h ->
      let cycles = R.cycles_in ~period ~hours:h in
      Format.printf
        "mission of %g h = %.3e cycles: P(hypothesis holds throughout) = %.6f@."
        h cycles
        (R.mission_reliability ~rate ~period ~k ~cycles)

let reliability_cmd =
  let rate =
    Arg.(required & opt (some float) None
           & info [ "rate" ] ~doc:"Transient fault rate (faults per ms).")
  in
  let period =
    Arg.(required & opt (some float) None
           & info [ "period" ] ~doc:"Cycle length (ms).")
  in
  let target =
    Arg.(value & opt float 0.999999
           & info [ "target" ] ~doc:"Per-cycle reliability goal in (0,1).")
  in
  let hours =
    Arg.(value & opt (some float) None
           & info [ "mission-hours" ] ~doc:"Also report mission reliability.")
  in
  Cmd.v
    (Cmd.info "reliability"
       ~doc:"Derive the fault hypothesis k from a fault rate and goal.")
    Term.(const reliability $ rate $ period $ target $ hours)

(* ------------------------------------------------------------------ *)

let main_cmd =
  let doc = "synthesis of fault-tolerant embedded systems (DATE 2008)" in
  Cmd.group
    (Cmd.info "ftes" ~version:"1.0.0" ~doc)
    [ generate_cmd; info_cmd; synthesize_cmd; simulate_cmd; experiment_cmd;
      corpus_cmd; reliability_cmd ]

let () = exit (Cmd.eval main_cmd)
