(* Tests for the live event stream: emission must never steer the
   search (bit-identical trajectories with events on or off, for any
   jobs value), the NDJSON rendering must parse line by line with the
   expected payloads present, full rings must drop-and-count rather
   than block or crash, and the trajectory store must round-trip and
   flag synthetic regressions through [trend]. *)

module Events = Ftes_util.Events
module Tabu = Ftes_optim.Tabu
module Problem = Ftes_ftcpg.Problem
module Mapping = Ftes_ftcpg.Mapping
module Graph = Ftes_app.Graph
module Synthesis = Ftes_core.Synthesis
module Manifest = Ftes_corpus.Manifest
module Trajectory = Ftes_corpus.Trajectory

let quick_opts =
  { Tabu.default_options with iterations = 30; sample = 8; jobs = 2 }

(* Full design configuration as a comparable string (same idiom as
   test_telemetry.ml / test_evalcache.ml). *)
let config_string (p : Problem.t) =
  let g = Problem.graph p in
  String.concat ";"
    (List.init (Graph.process_count g) (fun pid ->
         Printf.sprintf "%d=%s@[%s]" pid
           (Format.asprintf "%a" Ftes_app.Policy.pp p.Problem.policies.(pid))
           (String.concat ","
              (List.map string_of_int
                 (Mapping.copies p.Problem.mapping ~pid)))))

(* Run [f] with events enabled and a collecting sink; return the
   delivered events in delivery order. Leaves the process-wide switch
   off so suites stay independent of execution order. *)
let collect_events ?capacity f =
  Events.enable ?capacity ();
  let acc = ref [] in
  let id = Events.add_sink (fun e -> acc := e :: !acc) in
  Fun.protect
    ~finally:(fun () ->
      Events.drain ();
      Events.remove_sink id;
      Events.disable ())
    f;
  List.rev !acc

let is_incumbent (e : Events.event) =
  match e.Events.payload with Events.Incumbent _ -> true | _ -> false

let validation_backend (e : Events.event) =
  match e.Events.payload with
  | Events.Validation_progress { backend; _ } -> Some backend
  | _ -> None

(* ------------------------------------------------------------------ *)
(* NDJSON stream: well-formed, parseable, expected payloads            *)
(* ------------------------------------------------------------------ *)

let synthesize_and_validate ~jobs () =
  let app, arch, wcet =
    Ftes_workload.Gen.instance
      { Ftes_workload.Gen.default with processes = 6; nodes = 2; seed = 5 }
  in
  let options =
    { Synthesis.default_options with tabu = { quick_opts with jobs } }
  in
  let result = Synthesis.synthesize ~options ~app ~arch ~wcet ~k:2 () in
  ignore (Synthesis.validate ~jobs result)

let test_ndjson_well_formed () =
  List.iter
    (fun jobs ->
      let events = collect_events (synthesize_and_validate ~jobs) in
      let ctx s = Printf.sprintf "jobs=%d: %s" jobs s in
      Alcotest.(check bool) (ctx "events delivered") true (events <> []);
      (* Delivery order is global sequence order. *)
      ignore
        (List.fold_left
           (fun prev (e : Events.event) ->
             Alcotest.(check bool)
               (ctx "seq strictly increases") true
               (e.Events.seq > prev);
             e.Events.seq)
           (-1) events);
      let count p = List.length (List.filter p events) in
      Alcotest.(check bool)
        (ctx "at least one incumbent") true
        (count is_incumbent >= 1);
      Alcotest.(check bool)
        (ctx "at least one explicit validation-progress") true
        (count (fun e -> validation_backend e = Some "explicit") >= 1);
      let starts =
        count (fun e ->
            match e.Events.payload with
            | Events.Phase_start _ -> true
            | _ -> false)
      and finishes =
        count (fun e ->
            match e.Events.payload with
            | Events.Phase_finish _ -> true
            | _ -> false)
      in
      Alcotest.(check int) (ctx "every phase closes") starts finishes;
      Alcotest.(check bool) (ctx "phases recorded") true (starts >= 1);
      (* Every rendered line is one complete JSON object carrying the
         envelope fields plus a type tag. *)
      List.iter
        (fun e ->
          let line = Events.to_json e in
          match Manifest.json_of_string line with
          | Error m ->
              Alcotest.fail
                (ctx (Printf.sprintf "unparseable line %S: %s" line m))
          | Ok (Manifest.Jobj fields) ->
              List.iter
                (fun k ->
                  Alcotest.(check bool)
                    (ctx (Printf.sprintf "field %S present" k))
                    true
                    (List.mem_assoc k fields))
                [ "seq"; "t"; "dom"; "type" ]
          | Ok _ ->
              Alcotest.fail
                (ctx (Printf.sprintf "line is not an object: %S" line)))
        events)
    [ 1; 4 ]

let test_symbolic_progress_events () =
  let table =
    Ftes_sched.Conditional.schedule
      (Ftes_ftcpg.Ftcpg.build (Helpers.fig5_problem ()))
  in
  let events =
    collect_events (fun () ->
        ignore (Ftes_sim.Sim.validate ~jobs:1 ~mode:`Symbolic table))
  in
  Alcotest.(check bool) "symbolic validation-progress emitted" true
    (List.exists (fun e -> validation_backend e = Some "symbolic") events)

let test_corpus_outcome_events () =
  let instances =
    match Ftes_corpus.Registry.all () with
    | a :: b :: c :: _ -> [ a; b; c ]
    | l -> l
  in
  let events =
    collect_events (fun () ->
        ignore (Ftes_corpus.Runner.run ~jobs:2 instances))
  in
  let outcomes =
    List.filter_map
      (fun (e : Events.event) ->
        match e.Events.payload with
        | Events.Corpus_outcome { id; _ } -> Some id
        | _ -> None)
      events
  in
  Alcotest.(check (list string))
    "one corpus-outcome per instance, in input order"
    (List.map (fun i -> i.Ftes_corpus.Instance.id) instances)
    outcomes

(* ------------------------------------------------------------------ *)
(* Determinism: events observe, they never steer                        *)
(* ------------------------------------------------------------------ *)

let test_trajectory_identity () =
  List.iter
    (fun seed ->
      let p =
        Helpers.random_problem ~frozen:false ~mixed_policies:false
          ~processes:10 ~nodes:3 ~k:2 ~seed ()
      in
      let run ~events ~jobs =
        if events then Events.enable () else Events.disable ();
        Fun.protect ~finally:Events.disable (fun () ->
            let b, l = Tabu.optimize { quick_opts with jobs } p in
            (l, config_string b))
      in
      let ref_len, ref_cfg = run ~events:false ~jobs:1 in
      List.iter
        (fun (events, jobs) ->
          let l, c = run ~events ~jobs in
          Helpers.check_float
            (Printf.sprintf "seed %d events=%b jobs=%d: length" seed events
               jobs)
            ref_len l;
          Alcotest.(check string)
            (Printf.sprintf "seed %d events=%b jobs=%d: config" seed events
               jobs)
            ref_cfg c)
        [ (true, 1); (true, 4); (false, 4) ])
    [ 3; 11 ]

(* ------------------------------------------------------------------ *)
(* Bounded rings: overflow drops and counts, never blocks or crashes    *)
(* ------------------------------------------------------------------ *)

let test_bounded_ring_drops () =
  Events.enable ~capacity:4 ();
  let seen = ref 0 in
  let id = Events.add_sink (fun _ -> incr seen) in
  Fun.protect
    ~finally:(fun () ->
      Events.remove_sink id;
      Events.disable ())
    (fun () ->
      for i = 1 to 100 do
        Events.emit (Events.Phase_start { phase = string_of_int i })
      done;
      Alcotest.(check int) "overflow counted, not blocked" 96
        (Events.dropped ());
      Events.drain ();
      Alcotest.(check int) "exactly capacity events delivered" 4 !seen;
      (* The drain freed the ring: emission resumes without drops. *)
      Events.emit (Events.Phase_start { phase = "after" });
      Events.drain ();
      Alcotest.(check int) "post-drain event delivered" 5 !seen;
      Alcotest.(check int) "dropped unchanged" 96 (Events.dropped ());
      Events.reset ();
      Alcotest.(check int) "reset zeroes the counter" 0 (Events.dropped ()))

let test_disabled_is_silent () =
  Events.disable ();
  let seen = ref 0 in
  let id = Events.add_sink (fun _ -> incr seen) in
  Fun.protect
    ~finally:(fun () -> Events.remove_sink id)
    (fun () ->
      Events.emit (Events.Phase_start { phase = "ghost" });
      let v = Events.with_phase "ghost" (fun () -> 41 + 1) in
      Alcotest.(check int) "with_phase returns the thunk's value" 42 v;
      Events.drain ();
      Alcotest.(check int) "nothing delivered" 0 !seen)

let test_with_phase_exception () =
  let events =
    collect_events (fun () ->
        match Events.with_phase "doomed" (fun () -> failwith "expected") with
        | () -> Alcotest.fail "exception swallowed"
        | exception Failure m ->
            Alcotest.(check string) "exception re-raised" "expected" m)
  in
  let finishes =
    List.filter_map
      (fun (e : Events.event) ->
        match e.Events.payload with
        | Events.Phase_finish { phase; _ } -> Some phase
        | _ -> None)
      events
  in
  Alcotest.(check (list string)) "finish event recorded" [ "doomed" ]
    finishes

(* ------------------------------------------------------------------ *)
(* Trajectory store: round-trip, schema filtering, trend verdicts       *)
(* ------------------------------------------------------------------ *)

let entry ?(ok = true) ~commit ~id ~length ~wall_ms () =
  {
    Trajectory.commit;
    schema = Trajectory.schema_version;
    id;
    ok;
    length;
    wall_ms;
  }

let test_append_load_roundtrip () =
  let path = Filename.temp_file "ftes-traj" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Sys.remove path;
      Alcotest.(check bool) "missing file is an empty history" true
        (Trajectory.load path = Ok []);
      let e1 =
        entry ~commit:"abc123" ~id:"odd \"id\"\\with\nescapes" ~length:12.5
          ~wall_ms:3.25 ()
      in
      let e2 = entry ~ok:false ~commit:"def456" ~id:"plain" ~length:0.
          ~wall_ms:1. ()
      in
      Trajectory.append path [ e1 ];
      Trajectory.append path [ e2 ];
      (match Trajectory.load path with
      | Ok [ a; b ] ->
          Alcotest.(check bool) "first entry round-trips" true (a = e1);
          Alcotest.(check bool) "second entry round-trips" true (b = e2)
      | Ok l ->
          Alcotest.fail (Printf.sprintf "expected 2 entries, got %d"
                           (List.length l))
      | Error m -> Alcotest.fail m);
      (* Entries from other schema versions stay on disk but are
         invisible to readers. *)
      Trajectory.append path [ { e1 with Trajectory.schema = 999 } ];
      (match Trajectory.load path with
      | Ok l ->
          Alcotest.(check int) "foreign schema dropped" 2 (List.length l)
      | Error m -> Alcotest.fail m);
      (* An unparseable line is an error naming its line number. *)
      let oc = open_out_gen [ Open_wronly; Open_append ] 0o644 path in
      output_string oc "not json\n";
      close_out oc;
      match Trajectory.load path with
      | Ok _ -> Alcotest.fail "corrupt line accepted"
      | Error m ->
          Alcotest.(check bool)
            (Printf.sprintf "error %S names line 4" m)
            true
            (String.length m >= 7 && String.sub m 0 7 = "line 4:"))

let problems_of comparisons id =
  match List.find_opt (fun c -> c.Trajectory.cid = id) comparisons with
  | Some c -> c.Trajectory.problems
  | None -> Alcotest.fail (Printf.sprintf "no comparison for %S" id)

let has_problem comparisons id needle =
  List.exists
    (fun p ->
      let pl = String.length p and nl = String.length needle in
      let rec go i =
        i + nl <= pl && (String.sub p i nl = needle || go (i + 1))
      in
      go 0)
    (problems_of comparisons id)

let test_trend_clean_history () =
  let es =
    List.init 5 (fun i ->
        entry
          ~commit:(Printf.sprintf "c%d" i)
          ~id:"stable" ~length:100.
          ~wall_ms:(10. +. float_of_int i)
          ())
  in
  match Trajectory.trend es with
  | [ c ] ->
      Alcotest.(check (list string)) "no problems" [] c.Trajectory.problems;
      Alcotest.(check int) "window size" 5 c.Trajectory.runs
  | l ->
      Alcotest.fail
        (Printf.sprintf "expected 1 comparison, got %d" (List.length l))

let test_trend_flags_regressions () =
  let series ~id f = List.init 5 (fun i -> f i ~commit:(Printf.sprintf "c%d" i) ~id) in
  let es =
    series ~id:"slow" (fun i ~commit ~id ->
        entry ~commit ~id ~length:100.
          ~wall_ms:(if i = 4 then 30. else 10.) ())
    @ series ~id:"worse" (fun i ~commit ~id ->
          entry ~commit ~id
            ~length:(if i = 4 then 101. else 100.)
            ~wall_ms:10. ())
    @ series ~id:"broken" (fun i ~commit ~id ->
          entry ~ok:(i < 4) ~commit ~id ~length:100. ~wall_ms:10. ())
    @ series ~id:"fine" (fun _ ~commit ~id ->
          entry ~commit ~id ~length:100. ~wall_ms:10. ())
    @ series ~id:"jittery" (fun i ~commit ~id ->
          (* Sub-floor wall times swing by whole multiples without
             anything having regressed — the absolute floor mutes them. *)
          entry ~commit ~id ~length:100.
            ~wall_ms:(if i = 4 then 4. else 0.5) ())
  in
  let cs = Trajectory.trend es in
  Alcotest.(check bool) "wall-clock regression flagged" true
    (has_problem cs "slow" "runtime regression");
  Alcotest.(check bool) "quality regression flagged" true
    (has_problem cs "worse" "quality regression");
  Alcotest.(check bool) "failure flip flagged" true
    (has_problem cs "broken" "failed");
  Alcotest.(check (list string)) "clean instance stays clean" []
    (problems_of cs "fine");
  Alcotest.(check (list string)) "sub-floor jitter not flagged" []
    (problems_of cs "jittery")

let test_trend_window_and_singletons () =
  (* A historical best outside the window must not poison the baseline:
     the first five short/fast runs age out, the recent window is
     uniformly slower but internally flat — clean. *)
  let es =
    List.init 10 (fun i ->
        entry
          ~commit:(Printf.sprintf "c%d" i)
          ~id:"drifted"
          ~length:(if i < 5 then 50. else 100.)
          ~wall_ms:(if i < 5 then 1. else 10.)
          ())
    @ [ entry ~commit:"only" ~id:"singleton" ~length:1. ~wall_ms:1. () ]
  in
  let cs = Trajectory.trend es in
  Alcotest.(check (list string)) "aged-out best ignored" []
    (problems_of cs "drifted");
  Alcotest.(check bool) "single-run instances omitted" true
    (List.for_all (fun c -> c.Trajectory.cid <> "singleton") cs)

let () =
  Alcotest.run "events"
    [
      ( "stream",
        [
          Alcotest.test_case "synthesize + validate NDJSON (jobs 1, 4)"
            `Quick test_ndjson_well_formed;
          Alcotest.test_case "symbolic validation emits progress" `Quick
            test_symbolic_progress_events;
          Alcotest.test_case "corpus runner emits one outcome per instance"
            `Quick test_corpus_outcome_events;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "tabu: events x jobs matrix" `Slow
            test_trajectory_identity;
        ] );
      ( "bounded buffers",
        [
          Alcotest.test_case "full ring drops and counts" `Quick
            test_bounded_ring_drops;
          Alcotest.test_case "disabled emits nothing" `Quick
            test_disabled_is_silent;
          Alcotest.test_case "exception closes phase" `Quick
            test_with_phase_exception;
        ] );
      ( "trajectory",
        [
          Alcotest.test_case "append/load round-trip + schema filter" `Quick
            test_append_load_roundtrip;
          Alcotest.test_case "clean history has no problems" `Quick
            test_trend_clean_history;
          Alcotest.test_case "regressions flagged per axis" `Quick
            test_trend_flags_regressions;
          Alcotest.test_case "window ages out, singletons omitted" `Quick
            test_trend_window_and_singletons;
        ] );
    ];
  Ftes_util.Par.shutdown ()
