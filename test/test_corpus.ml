(* Tests for the regression-gated benchmark corpus: manifest round-trip,
   registry determinism/coverage, and a sampled end-to-end oracle run
   against the checked-in manifest. *)

module I = Ftes_corpus.Instance
module Registry = Ftes_corpus.Registry
module Manifest = Ftes_corpus.Manifest
module Runner = Ftes_corpus.Runner

(* dune's (deps ../corpus/manifest.json) places the checked-in manifest
   next to the test's cwd (_build/default/test) under `dune runtest`;
   the second candidate covers a `dune exec` from the repo root. *)
let manifest_path =
  if Sys.file_exists "../corpus/manifest.json" then "../corpus/manifest.json"
  else "corpus/manifest.json"

let load_manifest () =
  match Manifest.load manifest_path with
  | Ok m -> m
  | Error msg -> Alcotest.failf "cannot load %s: %s" manifest_path msg

(* ------------------------------------------------------------------ *)
(* Manifest round-trip                                                 *)
(* ------------------------------------------------------------------ *)

let awkward_manifest =
  {
    Manifest.version = Manifest.schema_version;
    entries =
      [
        {
          Manifest.id = "plain-id";
          tier = "smoke";
          kind = "table-exhaustive";
          length = 265.;
          digest = "9bfedeab55395f11b45be7b0adcf6009";
          verdict = "clean-exhaustive";
        };
        {
          (* Strings the printer must escape and the parser must
             recover: quotes, backslashes, control characters. *)
          Manifest.id = "odd \"quoted\\id\"\twith\ncontrols";
          tier = "heavy";
          kind = "estimate";
          length = 0.000123;
          digest = "";
          verdict = "estimate-only";
        };
      ];
  }

let test_manifest_roundtrip () =
  let s = Manifest.to_string awkward_manifest in
  match Manifest.of_string s with
  | Error msg -> Alcotest.failf "round-trip parse failed: %s" msg
  | Ok m ->
      Alcotest.(check int) "version" awkward_manifest.Manifest.version
        m.Manifest.version;
      Alcotest.(check int) "entry count" 2 (List.length m.Manifest.entries);
      List.iter2
        (fun (a : Manifest.entry) (b : Manifest.entry) ->
          Alcotest.(check string) "id" a.Manifest.id b.Manifest.id;
          Alcotest.(check string) "tier" a.Manifest.tier b.Manifest.tier;
          Alcotest.(check string) "kind" a.Manifest.kind b.Manifest.kind;
          Alcotest.(check string) "digest" a.Manifest.digest b.Manifest.digest;
          Alcotest.(check string) "verdict" a.Manifest.verdict
            b.Manifest.verdict;
          Alcotest.(check bool) "length" true
            (Float.abs (a.Manifest.length -. b.Manifest.length) < 1e-9))
        awkward_manifest.Manifest.entries m.Manifest.entries

let test_manifest_print_stable () =
  (* print -> parse -> print is a fixpoint: the checked-in file diffs
     cleanly after a re-pin. *)
  let s = Manifest.to_string awkward_manifest in
  match Manifest.of_string s with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok m -> Alcotest.(check string) "fixpoint" s (Manifest.to_string m)

let test_manifest_parse_errors () =
  let bad input =
    match Manifest.of_string input with
    | Ok _ -> Alcotest.failf "parser accepted %S" input
    | Error _ -> ()
  in
  bad "";
  bad "[1, 2]";
  bad "{\"entries\": []}";
  (* no version *)
  bad "{\"version\": 1, \"entries\": [{\"id\": 3}]}";
  bad "{\"version\": 1, \"entries\": [ {\"id\": \"x\"} ";
  (* truncated *)
  bad "{\"version\": \"one\", \"entries\": []}"

let test_manifest_checked_in () =
  let m = load_manifest () in
  Alcotest.(check int) "schema version" Manifest.schema_version
    m.Manifest.version;
  Alcotest.(check bool) "at least 150 entries" true
    (List.length m.Manifest.entries >= 150);
  (* The checked-in file is exactly what the printer produces. *)
  let ic = open_in_bin manifest_path in
  let raw = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check string) "file is printer output" (Manifest.to_string m) raw

(* ------------------------------------------------------------------ *)
(* Registry determinism and coverage                                   *)
(* ------------------------------------------------------------------ *)

let test_registry_deterministic () =
  Alcotest.(check bool) "two enumerations are structurally equal" true
    (Registry.all () = Registry.all ())

let test_registry_ids_unique () =
  let ids = List.map (fun i -> i.I.id) (Registry.all ()) in
  Alcotest.(check int) "no duplicate ids"
    (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_registry_size () =
  Alcotest.(check bool) "at least 150 instances" true
    (List.length (Registry.all ()) >= 150)

let axis_values axis =
  List.sort_uniq compare
    (List.filter_map (fun i -> I.axis i axis) (Registry.all ()))

let test_registry_axis_coverage () =
  let check_covers name got want =
    List.iter
      (fun v ->
        if not (List.mem v got) then
          Alcotest.failf "axis %s misses %S (has: %s)" name v
            (String.concat ", " got))
      want
  in
  check_covers "k" (axis_values "k") [ "1"; "2"; "3"; "4"; "5"; "6"; "7" ];
  check_covers "bus" (axis_values "bus") [ "tdma"; "single" ];
  check_covers "shape" (axis_values "shape") [ "uniform"; "deep"; "bursty" ];
  check_covers "wcet" (axis_values "wcet") [ "uniform"; "hetero"; "flat" ];
  check_covers "transparency" (axis_values "transparency")
    [ "none"; "frozen" ];
  check_covers "class" (axis_values "class") [ "hard"; "soft" ];
  check_covers "kind" (axis_values "kind")
    [ "table-exhaustive"; "table-sampled"; "estimate"; "soft" ];
  check_covers "source" (axis_values "source") [ "generated"; "example" ]

let test_registry_matches_manifest_ids () =
  (* Every instance is pinned, and nothing stale is pinned. *)
  let m = load_manifest () in
  let registry = List.sort compare (List.map (fun i -> i.I.id) (Registry.all ())) in
  let pinned = List.sort compare (Manifest.ids m) in
  Alcotest.(check (list string)) "registry ids = manifest ids" registry pinned

let test_registry_problems_build () =
  (* Every non-heavy instance's problem builds (heavy ones build too,
     but their FT-CPG sizes make [problem] the only cheap part worth
     exercising here — it is the same code path). *)
  List.iter
    (fun i -> ignore (I.problem i))
    (Registry.select ~tiers:[ I.Smoke; I.Standard ] ())

let test_select_filters () =
  let smoke = Registry.select ~tiers:[ I.Smoke ] () in
  Alcotest.(check bool) "smoke tier non-empty" true (smoke <> []);
  List.iter
    (fun i ->
      Alcotest.(check bool) "tier respected" true (i.I.tier = I.Smoke))
    smoke;
  let bursty = Registry.select ~filter:"bursty" () in
  Alcotest.(check bool) "filter non-empty" true (bursty <> []);
  List.iter
    (fun i ->
      Alcotest.(check bool) "filter matches an axis or the id" true
        (I.axis i "shape" = Some "bursty"))
    bursty;
  Alcotest.(check bool) "find hit" true
    (Registry.find "ex-fig5-k2" <> None);
  Alcotest.(check bool) "find miss" true (Registry.find "no-such-id" = None)

(* ------------------------------------------------------------------ *)
(* Sampled end-to-end oracle run                                       *)
(* ------------------------------------------------------------------ *)

(* The full corpus runs in CI ([ftes corpus verify]); here a cheap,
   deterministic sample proves the oracle chain end to end: evaluate ->
   digest -> match the checked-in manifest. Smoke instances are sub-
   second each. *)
let oracle_sample () =
  Registry.select ~tiers:[ I.Smoke ] ()

let test_oracle_sample_matches_manifest () =
  let m = load_manifest () in
  let outcomes = Runner.run ~jobs:2 (oracle_sample ()) in
  Alcotest.(check bool) "sample non-trivial" true (List.length outcomes >= 10);
  let failures = Runner.verify ~manifest:m outcomes in
  if failures <> [] then
    Alcotest.failf "oracle regressions: %s"
      (String.concat "; "
         (List.map
            (fun (f : Runner.failure) -> f.Runner.id ^ ": " ^ f.Runner.reason)
            failures))

let test_verify_names_offender () =
  let m = load_manifest () in
  let instances = oracle_sample () in
  let victim = (List.hd instances).I.id in
  let corrupted =
    {
      m with
      Manifest.entries =
        List.map
          (fun (e : Manifest.entry) ->
            if e.Manifest.id = victim then
              { e with Manifest.digest = "deadbeefdeadbeefdeadbeefdeadbeef" }
            else e)
          m.Manifest.entries;
    }
  in
  let outcomes = Runner.run ~jobs:2 instances in
  let failures = Runner.verify ~manifest:corrupted outcomes in
  Alcotest.(check int) "exactly one regression" 1 (List.length failures);
  let f = List.hd failures in
  Alcotest.(check string) "offender named" victim f.Runner.id;
  Alcotest.(check bool) "reason mentions the digest" true
    (String.length f.Runner.reason >= 6
    && String.sub f.Runner.reason 0 6 = "digest")

let test_evaluate_deterministic () =
  (* Same instance, two evaluations (one inside a pool): identical
     digest, length and verdict. *)
  let inst =
    match Registry.find "ex-fig5-k2" with
    | Some i -> i
    | None -> Alcotest.fail "ex-fig5-k2 missing from registry"
  in
  let a = Runner.evaluate inst in
  let b = List.hd (Runner.run ~jobs:2 [ inst ]) in
  Alcotest.(check string) "digest" a.Runner.digest b.Runner.digest;
  Alcotest.(check bool) "length" true (a.Runner.length = b.Runner.length);
  Alcotest.(check string) "verdict" a.Runner.verdict b.Runner.verdict;
  Alcotest.(check bool) "ok" true (a.Runner.ok && b.Runner.ok)

let test_run_preserves_order () =
  let instances = oracle_sample () in
  let outcomes = Runner.run ~jobs:3 instances in
  Alcotest.(check (list string)) "input order"
    (List.map (fun i -> i.I.id) instances)
    (List.map (fun o -> o.Runner.instance.I.id) outcomes)

let test_pin_refuses_failures () =
  let inst =
    match Registry.find "ex-fig3-k1" with
    | Some i -> i
    | None -> Alcotest.fail "ex-fig3-k1 missing from registry"
  in
  let o = Runner.evaluate inst in
  let broken = { o with Runner.ok = false; detail = "synthetic failure" } in
  Alcotest.(check bool) "raises" true
    (match Runner.pin [ broken ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* Deliberately broken instances must land as typed failed outcomes —
   never a panic out of the runner — and verify must list them. *)
let test_evaluate_typed_errors () =
  let broken ~id ~source ~k ~check =
    { I.id; source; k; check; tier = I.Smoke; axes = [] }
  in
  (* Unknown example name: the Invalid_argument is captured, not
     propagated. *)
  let o =
    Runner.evaluate
      (broken ~id:"broken-unknown-example"
         ~source:(I.Example "does-not-exist") ~k:1 ~check:I.Exhaustive)
  in
  Alcotest.(check bool) "unknown example fails" false o.Runner.ok;
  (match o.Runner.error with
  | Some (Runner.Crash msg) ->
      Alcotest.(check bool) "crash names the example" true
        (let needle = "does-not-exist" in
         let n = String.length needle in
         let rec at i =
           i + n <= String.length msg
           && (String.sub msg i n = needle || at (i + 1))
         in
         at 0)
  | other ->
      Alcotest.failf "expected Crash, got %s"
        (match other with
        | None -> "ok"
        | Some e -> Runner.error_to_string e));
  Alcotest.(check string) "detail = rendered error"
    (Runner.error_to_string (Option.get o.Runner.error))
    o.Runner.detail;
  (* FT-CPG expansion overflow: typed, with the cap. *)
  let huge =
    broken ~id:"broken-expansion-overflow"
      ~source:
        (I.Generated
           { Ftes_workload.Gen.default with processes = 1000; nodes = 2 })
      ~k:7 ~check:I.Exhaustive
  in
  let o = Runner.evaluate huge in
  Alcotest.(check bool) "overflow fails" false o.Runner.ok;
  (match o.Runner.error with
  | Some (Runner.Expansion_too_large cap) ->
      Alcotest.(check bool) "cap is positive" true (cap > 0)
  | other ->
      Alcotest.failf "expected Expansion_too_large, got %s"
        (match other with
        | None -> "ok"
        | Some e -> Runner.error_to_string e));
  (* verify reports the failed outcome instead of trusting it. *)
  let failures =
    Runner.verify ~manifest:{ Manifest.version = Manifest.schema_version;
                              entries = [] }
      [ o ]
  in
  Alcotest.(check bool) "verify lists the broken instance" true
    (List.exists
       (fun (f : Runner.failure) -> f.Runner.id = "broken-expansion-overflow")
       failures);
  (* pin refuses it. *)
  Alcotest.(check bool) "pin refuses the broken instance" true
    (match Runner.pin [ o ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* The symbolic corpus block: fully transparent instances whose check
   kind is table-symbolic, spanning fault hypotheses beyond the
   explicit arena. *)
let test_registry_symbolic_block () =
  let symbolic =
    List.filter
      (fun i -> i.I.check = I.Symbolic)
      (Registry.all ())
  in
  Alcotest.(check bool) "symbolic instances exist" true (symbolic <> []);
  Alcotest.(check bool) "a k>=6 symbolic instance exists" true
    (List.exists (fun i -> i.I.k >= 6) symbolic);
  List.iter
    (fun i ->
      Alcotest.(check (option string))
        (i.I.id ^ " kind axis") (Some "table-symbolic") (I.axis i "kind");
      Alcotest.(check (option string))
        (i.I.id ^ " transparency axis") (Some "frozen")
        (I.axis i "transparency"))
    symbolic;
  (* The smoke-tier symbolic instance runs clean end to end. *)
  match List.find_opt (fun i -> i.I.tier = I.Smoke) symbolic with
  | None -> Alcotest.fail "no smoke-tier symbolic instance"
  | Some i ->
      let o = Runner.evaluate i in
      Alcotest.(check bool) (i.I.id ^ " ok") true o.Runner.ok;
      Alcotest.(check string) (i.I.id ^ " verdict") "clean-symbolic"
        o.Runner.verdict

let test_stable_seed () =
  Alcotest.(check int) "same id, same seed"
    (I.stable_seed "ex-fig5-k2")
    (I.stable_seed "ex-fig5-k2");
  Alcotest.(check bool) "different ids differ" true
    (I.stable_seed "ex-fig5-k2" <> I.stable_seed "ex-fig3-k1");
  List.iter
    (fun i ->
      Alcotest.(check bool) "non-negative" true (I.stable_seed i.I.id >= 0))
    (Registry.all ())

let () =
  Alcotest.run "corpus"
    [
      ( "manifest",
        [
          Alcotest.test_case "round-trip" `Quick test_manifest_roundtrip;
          Alcotest.test_case "print is a fixpoint" `Quick
            test_manifest_print_stable;
          Alcotest.test_case "parse errors" `Quick test_manifest_parse_errors;
          Alcotest.test_case "checked-in file" `Quick test_manifest_checked_in;
        ] );
      ( "registry",
        [
          Alcotest.test_case "deterministic" `Quick test_registry_deterministic;
          Alcotest.test_case "unique ids" `Quick test_registry_ids_unique;
          Alcotest.test_case "size" `Quick test_registry_size;
          Alcotest.test_case "axis coverage" `Quick test_registry_axis_coverage;
          Alcotest.test_case "ids match manifest" `Quick
            test_registry_matches_manifest_ids;
          Alcotest.test_case "problems build" `Quick
            test_registry_problems_build;
          Alcotest.test_case "select filters" `Quick test_select_filters;
          Alcotest.test_case "stable seed" `Quick test_stable_seed;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "smoke sample matches manifest" `Slow
            test_oracle_sample_matches_manifest;
          Alcotest.test_case "verify names the offender" `Slow
            test_verify_names_offender;
          Alcotest.test_case "evaluate is deterministic" `Quick
            test_evaluate_deterministic;
          Alcotest.test_case "run preserves order" `Quick
            test_run_preserves_order;
          Alcotest.test_case "pin refuses failures" `Quick
            test_pin_refuses_failures;
          Alcotest.test_case "typed error outcomes" `Quick
            test_evaluate_typed_errors;
          Alcotest.test_case "symbolic block" `Quick
            test_registry_symbolic_block;
        ] );
    ]
