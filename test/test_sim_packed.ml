(* Equivalence tests for the packed/compiled validation pipeline.

   [Sim.validate] replays packed condition vectors from a flat scenario
   arena against a pre-compiled table; [Sim.validate_reference] is the
   retained explicit-list path. These tests pin the two byte-identical —
   violation values, order and rendered messages — across clean,
   corrupted and corpus instances, for jobs 1 and 4, plus the packed
   [Condvec] primitives against their [Cond] list counterparts. *)

module Sim = Ftes_sim.Sim
module Violation = Ftes_sim.Violation
module Table = Ftes_sched.Table
module Conditional = Ftes_sched.Conditional
module Ftcpg = Ftes_ftcpg.Ftcpg
module Cond = Ftes_ftcpg.Cond
module Condvec = Ftes_ftcpg.Condvec
module Rng = Ftes_util.Rng

let fig5_table () = Conditional.schedule (Ftcpg.build (Helpers.fig5_problem ()))

let tight_fig5_table () =
  let t = fig5_table () in
  let p = Ftcpg.problem t.Table.ftcpg in
  let deadline = 0.9 *. Table.no_fault_length t in
  let tight =
    Ftes_ftcpg.Problem.make
      ~app:(Ftes_app.App.with_deadline p.Ftes_ftcpg.Problem.app deadline)
      ~arch:p.Ftes_ftcpg.Problem.arch ~wcet:p.Ftes_ftcpg.Problem.wcet ~k:2
      ~policies:p.Ftes_ftcpg.Problem.policies
      ~mapping:p.Ftes_ftcpg.Problem.mapping
  in
  Conditional.schedule (Ftcpg.build tight)

(* The core check: packed validation must reproduce the explicit oracle
   bit for bit — structurally and through the string renderings — for a
   sequential and a parallel pool size. *)
let check_equivalent name t =
  let reference = Sim.validate_reference ~jobs:1 t in
  List.iter
    (fun jobs ->
      let packed = Sim.validate ~jobs t in
      Alcotest.(check (list string))
        (Printf.sprintf "%s: messages (jobs=%d)" name jobs)
        (List.map Violation.to_string reference)
        (List.map Violation.to_string packed);
      Alcotest.(check bool)
        (Printf.sprintf "%s: structural equality (jobs=%d)" name jobs)
        true (packed = reference))
    [ 1; 4 ]

let test_clean_table_equivalent () = check_equivalent "fig5" (fig5_table ())

let test_tight_table_equivalent () =
  let t = tight_fig5_table () in
  Alcotest.(check bool) "tight table does violate" true (Sim.validate t <> []);
  check_equivalent "tight-fig5" t

let test_corrupted_tables_equivalent () =
  let t = fig5_table () in
  (* Causality: pull a dependent entry to time 0. *)
  let victim =
    List.find
      (fun e ->
        match e.Table.item with
        | Table.Exec vid ->
            (Ftcpg.vertex t.Table.ftcpg vid).Ftcpg.preds <> []
            && e.Table.start > 50.
        | Table.Bcast _ -> false)
      t.Table.entries
  in
  let causality_bad =
    Table.make ~ftcpg:t.Table.ftcpg
      ~entries:
        (List.map
           (fun e ->
             if e == victim then
               {
                 e with
                 Table.start = 0.;
                 finish = e.Table.finish -. e.Table.start;
               }
             else e)
           t.Table.entries)
      ~tracks:t.Table.tracks
  in
  check_equivalent "causality-corrupted" causality_bad;
  (* Missing activation: drop every entry of one vertex. *)
  let dropped_vid =
    List.rev t.Table.entries
    |> List.find_map (fun e ->
           match e.Table.item with Table.Exec vid -> Some vid | _ -> None)
    |> Option.get
  in
  let missing_bad =
    Table.make ~ftcpg:t.Table.ftcpg
      ~entries:
        (List.filter
           (fun e -> e.Table.item <> Table.Exec dropped_vid)
           t.Table.entries)
      ~tracks:t.Table.tracks
  in
  check_equivalent "missing-activation" missing_bad;
  (* Ambiguous broadcast: duplicate a broadcast column at another time. *)
  match
    List.find_opt
      (fun e ->
        match e.Table.item with Table.Bcast _ -> true | Table.Exec _ -> false)
      t.Table.entries
  with
  | None -> Alcotest.fail "fig5 table has no broadcast entry"
  | Some b ->
      let dup =
        {
          b with
          Table.start = b.Table.start +. 5.;
          finish = b.Table.finish +. 5.;
        }
      in
      let bcast_bad =
        Table.make ~ftcpg:t.Table.ftcpg ~entries:(dup :: t.Table.entries)
          ~tracks:t.Table.tracks
      in
      check_equivalent "ambiguous-broadcast" bcast_bad

let test_random_instances_equivalent () =
  List.iter
    (fun (seed, processes, nodes, k) ->
      let p = Helpers.random_problem ~processes ~nodes ~k ~seed () in
      let t = Conditional.schedule (Ftcpg.build p) in
      check_equivalent
        (Printf.sprintf "random seed=%d n=%d k=%d" seed processes k)
        t)
    [ (3, 6, 2, 2); (11, 8, 2, 3); (29, 7, 3, 2) ]

(* Corpus smoke instances through the same equivalence harness: the
   generated exhaustive ones pin the packed path on realistic tables. *)
let test_corpus_smoke_equivalent () =
  let module I = Ftes_corpus.Instance in
  let instances =
    Ftes_corpus.Registry.select ~tiers:[ I.Smoke ] ()
    |> List.filter (fun i ->
           match (i.I.check, i.I.source) with
           | I.Exhaustive, I.Generated _ -> true
           | _ -> false)
  in
  Alcotest.(check bool) "smoke tier has exhaustive instances" true
    (instances <> []);
  List.iteri
    (fun n inst ->
      if n < 5 then
        let t = Conditional.schedule (Ftcpg.build (I.problem inst)) in
        check_equivalent inst.I.id t)
    instances

(* --- stop_after / replay_until regression -------------------------- *)

let test_stop_after_pool_aware_prefix () =
  let t = tight_fig5_table () in
  let full = Sim.validate t in
  List.iter
    (fun limit ->
      let partial = Sim.validate ~jobs:1 ~stop_after:limit t in
      Alcotest.(check bool)
        (Printf.sprintf "stop_after=%d reaches the limit" limit)
        true
        (List.length partial >= min limit (List.length full));
      Alcotest.(check bool)
        (Printf.sprintf "stop_after=%d is a prefix" limit)
        true
        (List.length partial <= List.length full
        && List.for_all2
             (fun a b -> a = b)
             partial
             (List.filteri (fun i _ -> i < List.length partial) full));
      (* Pool-aware batching must not leak into the result. *)
      List.iter
        (fun jobs ->
          Alcotest.(check (list string))
            (Printf.sprintf "stop_after=%d jobs=%d invariant" limit jobs)
            (List.map Violation.to_string partial)
            (List.map Violation.to_string (Sim.validate ~jobs ~stop_after:limit t)))
        [ 2; 4; 16 ])
    [ 1; 2; 7 ]

(* --- sampled validation over the packed arena ---------------------- *)

(* The historical algorithm, reconstructed on the materialized scenario
   list: always the no-fault scenarios, plus [Rng.sample] over the full
   list, deduplicated, replayed in guard order. Index sampling over the
   arena must reproduce it draw for draw. *)
let legacy_sampled ~seed ~samples t =
  let rng = Rng.create seed in
  let scenarios = Ftcpg.scenarios t.Table.ftcpg in
  let no_fault = List.filter (fun s -> Cond.fault_count s = 0) scenarios in
  let sampled = Rng.sample rng samples scenarios in
  let chosen = List.sort_uniq Cond.compare (no_fault @ sampled) in
  List.concat_map (fun s -> (Sim.run t ~scenario:s).Sim.violations) chosen
  @ Sim.frozen_start_violations t

let test_sampled_matches_legacy () =
  let t = tight_fig5_table () in
  List.iter
    (fun seed ->
      List.iter
        (fun samples ->
          let expected = legacy_sampled ~seed ~samples t in
          let got =
            Sim.validate_sampled ~jobs:1 ~rng:(Rng.create seed) ~samples t
          in
          Alcotest.(check (list string))
            (Printf.sprintf "seed=%d samples=%d" seed samples)
            (List.map Violation.to_string expected)
            (List.map Violation.to_string got);
          Alcotest.(check bool)
            (Printf.sprintf "seed=%d samples=%d structural" seed samples)
            true (got = expected))
        [ 0; 3; 7 ])
    [ 1; 2; 3; 4; 5 ]

(* --- Condvec primitives -------------------------------------------- *)

(* A universe wide enough to cross the 31-field word boundary. *)
let wide_universe () = Condvec.universe (Array.init 40 (fun i -> (3 * i) + 1))

let guard_of_indices u lits =
  Option.get
    (Cond.of_literals
       (List.map
          (fun (idx, fault) -> { Cond.cond = Condvec.cond_of_index u idx; fault })
          lits))

let test_condvec_roundtrip () =
  let u = wide_universe () in
  let row = Condvec.create_row u in
  let lits = [ (0, true); (5, false); (30, true); (31, false); (39, true) ] in
  List.iter (fun (idx, fault) -> Condvec.set u row idx fault) lits;
  let g = Condvec.guard_of_row u row in
  Alcotest.(check bool) "roundtrip" true
    (Cond.equal g (guard_of_indices u lits));
  Alcotest.(check int) "fault count" 3 (Condvec.row_fault_count row);
  Condvec.unset u row 30;
  Alcotest.(check int) "fault count after unset" 2
    (Condvec.row_fault_count row);
  Alcotest.(check bool) "unset literal gone" true
    (Cond.equal
       (Condvec.guard_of_row u row)
       (guard_of_indices u [ (0, true); (5, false); (31, false); (39, true) ]))

let test_condvec_implies_agrees () =
  let u = wide_universe () in
  let rng = Rng.create 42 in
  for _ = 1 to 200 do
    let row = Condvec.create_row u in
    let row_lits =
      List.init 12 (fun _ -> (Rng.int rng 40, Rng.bool rng))
      |> List.sort_uniq (fun (a, _) (b, _) -> compare a b)
    in
    List.iter (fun (idx, fault) -> Condvec.set u row idx fault) row_lits;
    let scenario = Condvec.guard_of_row u row in
    let guard_lits =
      List.init 4 (fun _ -> (Rng.int rng 40, Rng.bool rng))
      |> List.sort_uniq (fun (a, _) (b, _) -> compare a b)
    in
    let g = guard_of_indices u guard_lits in
    let packed = Condvec.pack_guard u g in
    Alcotest.(check bool) "row_implies = Cond.implies"
      (Cond.implies scenario g)
      (Condvec.row_implies row packed);
    Alcotest.(check int) "row_fault_count = Cond.fault_count"
      (Cond.fault_count scenario)
      (Condvec.row_fault_count row)
  done

let test_condvec_out_of_universe_guard () =
  let u = wide_universe () in
  (* Condition id 2 is not in the universe (ids are 3i+1). *)
  let g = Option.get (Cond.of_literals [ { Cond.cond = 2; fault = true } ]) in
  let packed = Condvec.pack_guard u g in
  let row = Condvec.create_row u in
  Alcotest.(check bool) "empty row does not imply it" false
    (Condvec.row_implies row packed);
  for idx = 0 to 39 do
    Condvec.set u row idx true
  done;
  Alcotest.(check bool) "full row does not imply it either" false
    (Condvec.row_implies row packed);
  Alcotest.(check bool) "guard_true always implied" true
    (Condvec.row_implies row (Condvec.guard_true u))

let test_scenario_space_matches_list () =
  let f = Ftcpg.build (Helpers.fig5_problem ()) in
  let sp = Ftcpg.scenario_space f in
  let scenarios = Ftcpg.scenarios f in
  Alcotest.(check int) "count" (List.length scenarios) (Condvec.count sp);
  Alcotest.(check int) "scenario_count agrees" (Condvec.count sp)
    (Ftcpg.scenario_count f);
  List.iteri
    (fun i s ->
      Alcotest.(check bool)
        (Printf.sprintf "guard_at %d" i)
        true
        (Cond.equal s (Condvec.guard_at sp i));
      Alcotest.(check int)
        (Printf.sprintf "fault_count %d" i)
        (Cond.fault_count s) (Condvec.fault_count sp i))
    scenarios;
  (* implies over the arena agrees with the list guards for every
     vertex guard of the graph. *)
  Array.iter
    (fun (v : Ftcpg.vertex) ->
      let packed = Condvec.pack_guard sp.Condvec.u v.Ftcpg.guard in
      List.iteri
        (fun i s ->
          Alcotest.(check bool)
            (Printf.sprintf "implies vid=%d scenario=%d" v.Ftcpg.vid i)
            (Cond.implies s v.Ftcpg.guard)
            (Condvec.implies sp i packed))
        scenarios)
    (Ftcpg.vertices f)

let () =
  Alcotest.run "sim-packed"
    [
      ( "equivalence",
        [
          Alcotest.test_case "clean table" `Quick test_clean_table_equivalent;
          Alcotest.test_case "tight table" `Quick test_tight_table_equivalent;
          Alcotest.test_case "corrupted tables" `Quick
            test_corrupted_tables_equivalent;
          Alcotest.test_case "random instances" `Quick
            test_random_instances_equivalent;
          Alcotest.test_case "corpus smoke instances" `Slow
            test_corpus_smoke_equivalent;
        ] );
      ( "stop-after",
        [
          Alcotest.test_case "pool-aware prefix stability" `Quick
            test_stop_after_pool_aware_prefix;
        ] );
      ( "sampled",
        [
          Alcotest.test_case "index sampling = legacy sampling" `Quick
            test_sampled_matches_legacy;
        ] );
      ( "condvec",
        [
          Alcotest.test_case "pack/unpack roundtrip" `Quick
            test_condvec_roundtrip;
          Alcotest.test_case "implies/fault_count agree with Cond" `Quick
            test_condvec_implies_agrees;
          Alcotest.test_case "out-of-universe guard never implied" `Quick
            test_condvec_out_of_universe_guard;
          Alcotest.test_case "scenario space = scenario list" `Quick
            test_scenario_space_matches_list;
        ] );
    ];
  Ftes_util.Par.shutdown ()
