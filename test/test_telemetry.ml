(* Tests for the telemetry layer: recording must never steer the search
   (bit-identical trajectories with telemetry on or off, for any jobs
   value), span streams must be well formed (properly nested, monotone
   timestamps), counters must agree with the legacy per-cache stats,
   and the Chrome trace-event export must be valid JSON. *)

module Telemetry = Ftes_util.Telemetry
module Evalcache = Ftes_optim.Evalcache
module Tabu = Ftes_optim.Tabu
module Problem = Ftes_ftcpg.Problem
module Mapping = Ftes_ftcpg.Mapping
module Graph = Ftes_app.Graph
module Synthesis = Ftes_core.Synthesis

(* Full design configuration as a comparable string (same idiom as
   test_evalcache.ml). *)
let config_string (p : Problem.t) =
  let g = Problem.graph p in
  String.concat ";"
    (List.init (Graph.process_count g) (fun pid ->
         Printf.sprintf "%d=%s@[%s]" pid
           (Format.asprintf "%a" Ftes_app.Policy.pp p.Problem.policies.(pid))
           (String.concat ","
              (List.map string_of_int
                 (Mapping.copies p.Problem.mapping ~pid)))))

let quick_opts =
  { Tabu.default_options with iterations = 30; sample = 8; jobs = 2 }

(* Every test leaves the process-wide switch off so suites stay
   independent of their execution order. *)
let recording f =
  Telemetry.reset ();
  Telemetry.enable ();
  Fun.protect ~finally:Telemetry.disable f

(* ------------------------------------------------------------------ *)
(* Determinism: telemetry observes, it never steers                     *)
(* ------------------------------------------------------------------ *)

let test_trajectory_identity () =
  List.iter
    (fun seed ->
      let p =
        Helpers.random_problem ~frozen:false ~mixed_policies:false
          ~processes:10 ~nodes:3 ~k:2 ~seed ()
      in
      let run ~telemetry ~jobs =
        if telemetry then Telemetry.enable () else Telemetry.disable ();
        Fun.protect ~finally:Telemetry.disable (fun () ->
            let b, l = Tabu.optimize { quick_opts with jobs } p in
            (l, config_string b))
      in
      let ref_len, ref_cfg = run ~telemetry:false ~jobs:1 in
      List.iter
        (fun (telemetry, jobs) ->
          let l, c = run ~telemetry ~jobs in
          Helpers.check_float
            (Printf.sprintf "seed %d telemetry=%b jobs=%d: length" seed
               telemetry jobs)
            ref_len l;
          Alcotest.(check string)
            (Printf.sprintf "seed %d telemetry=%b jobs=%d: config" seed
               telemetry jobs)
            ref_cfg c)
        [ (true, 1); (true, 4); (false, 4) ])
    [ 3; 11 ]

(* ------------------------------------------------------------------ *)
(* Span streams: nesting, timestamps, expected phases                   *)
(* ------------------------------------------------------------------ *)

(* Replay one domain's event stream against a stack: every End must
   close the innermost open span, every Begin must name the innermost
   open span as its parent, and timestamps never go backwards. *)
let check_stream dom events =
  let stack = ref [] in
  let last_ts = ref neg_infinity in
  List.iter
    (fun ev ->
      let ts =
        match ev with
        | Telemetry.Begin { id; parent; ts; _ } ->
            let expected_parent =
              match !stack with [] -> 0 | top :: _ -> top
            in
            Alcotest.(check int)
              (Printf.sprintf "domain %d: parent of span %d" dom id)
              expected_parent parent;
            stack := id :: !stack;
            ts
        | Telemetry.End { id; ts } ->
            (match !stack with
            | top :: rest ->
                Alcotest.(check int)
                  (Printf.sprintf "domain %d: End closes innermost span" dom)
                  top id;
                stack := rest
            | [] -> Alcotest.fail (Printf.sprintf "domain %d: orphan End" dom));
            ts
      in
      Alcotest.(check bool)
        (Printf.sprintf "domain %d: non-decreasing ts" dom)
        true
        (ts >= !last_ts);
      last_ts := ts)
    events;
  Alcotest.(check (list int))
    (Printf.sprintf "domain %d: all spans closed" dom)
    [] !stack

let span_names dump =
  List.concat_map
    (fun (_, evs) ->
      List.filter_map
        (function
          | Telemetry.Begin { name; _ } -> Some name
          | Telemetry.End _ -> None)
        evs)
    dump
  |> List.sort_uniq compare

let test_span_well_formedness () =
  recording (fun () ->
      let app, arch, wcet =
        Ftes_workload.Gen.instance
          { Ftes_workload.Gen.default with processes = 6; nodes = 2; seed = 5 }
      in
      let options =
        { Synthesis.default_options with tabu = quick_opts }
      in
      let result = Synthesis.synthesize ~options ~app ~arch ~wcet ~k:2 () in
      let violations = Synthesis.validate ~jobs:2 result in
      Alcotest.(check (list string))
        "tables validate" []
        (List.map Ftes_sim.Violation.to_string violations);
      let dump = Telemetry.dump () in
      List.iter (fun (dom, evs) -> check_stream dom evs) dump;
      let names = span_names dump in
      List.iter
        (fun expected ->
          Alcotest.(check bool)
            (Printf.sprintf "span %S recorded" expected)
            true (List.mem expected names))
        [
          "synthesize"; "strategy.MXR"; "strategy.nft-baseline";
          "tabu.optimize"; "tabu.iter"; "descent.policy_sweep";
          "synthesize.tables"; "ftcpg.build"; "sched.conditional";
          "synthesize.estimate"; "sim.validate";
        ])

let test_exception_closes_span () =
  recording (fun () ->
      (match
         Telemetry.with_span "doomed" (fun () -> failwith "expected")
       with
      | () -> Alcotest.fail "exception swallowed"
      | exception Failure m ->
          Alcotest.(check string) "exception re-raised" "expected" m);
      let evs = List.concat_map snd (Telemetry.dump ()) in
      Alcotest.(check int) "begin + end recorded" 2 (List.length evs);
      List.iter (fun (dom, evs) -> check_stream dom evs) (Telemetry.dump ()))

let test_disabled_records_nothing () =
  Telemetry.reset ();
  Telemetry.disable ();
  let v = Telemetry.with_span "ghost" (fun () -> 41 + 1) in
  Alcotest.(check int) "with_span returns the thunk's value" 42 v;
  let c = Telemetry.counter "test.ghost" in
  Telemetry.incr c;
  Telemetry.add c 5;
  Telemetry.set_gauge "test.ghost_gauge" 1.0;
  Alcotest.(check int) "counter unchanged" 0 (Telemetry.counter_value c);
  Alcotest.(check int) "no events" 0
    (List.length (List.concat_map snd (Telemetry.dump ())));
  Alcotest.(check (list (pair string (float 0.)))) "no gauges" []
    (Telemetry.gauges ())

(* ------------------------------------------------------------------ *)
(* Counter totals: telemetry agrees with the legacy accounting          *)
(* ------------------------------------------------------------------ *)

let test_evalcache_counters_match_stats () =
  recording (fun () ->
      let p =
        Helpers.random_problem ~frozen:false ~mixed_policies:false
          ~processes:8 ~nodes:3 ~k:2 ~seed:9 ()
      in
      let cache = Evalcache.create () in
      let _, _ = Tabu.optimize { quick_opts with cache = Some cache } p in
      let s = Evalcache.stats cache in
      let v name =
        Telemetry.counter_value (Telemetry.counter name)
      in
      Alcotest.(check bool) "cache saw traffic" true (s.Evalcache.lookups > 0);
      Alcotest.(check int) "hits" s.Evalcache.hits (v "evalcache.hits");
      Alcotest.(check int) "misses" s.Evalcache.misses (v "evalcache.misses");
      Alcotest.(check int) "inserts" s.Evalcache.inserts
        (v "evalcache.inserts");
      Alcotest.(check int) "evictions" s.Evalcache.evictions
        (v "evalcache.evictions"))

let test_sim_scenario_counter () =
  recording (fun () ->
      let table =
        Ftes_sched.Conditional.schedule
          (Ftes_ftcpg.Ftcpg.build (Helpers.fig5_problem ()))
      in
      let scenarios =
        List.length (Ftes_ftcpg.Ftcpg.scenarios table.Ftes_sched.Table.ftcpg)
      in
      let violations = Ftes_sim.Sim.validate ~jobs:2 table in
      Alcotest.(check int) "fig5 tables are valid" 0 (List.length violations);
      Alcotest.(check int) "every scenario counted" scenarios
        (Telemetry.counter_value (Telemetry.counter "sim.scenarios")))

(* ------------------------------------------------------------------ *)
(* Chrome trace export                                                  *)
(* ------------------------------------------------------------------ *)

(* Minimal JSON reader — just enough to prove the export parses. *)
let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = failwith (Printf.sprintf "json: %s at %d" msg !pos) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\n' | '\t' | '\r' -> true
                                     | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if peek () = Some c then incr pos
    else fail (Printf.sprintf "expected %c" c)
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_lit ()
    | Some ('t' | 'f' | 'n') -> keyword ()
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail "value"
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then incr pos
    else
      let rec members () =
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> incr pos; members ()
        | Some '}' -> incr pos
        | _ -> fail "object"
      in
      members ()
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then incr pos
    else
      let rec elements () =
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> incr pos; elements ()
        | Some ']' -> incr pos
        | _ -> fail "array"
      in
      elements ()
  and string_lit () =
    expect '"';
    let rec chars () =
      match peek () with
      | Some '"' -> incr pos
      | Some '\\' ->
          incr pos;
          (match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> incr pos
          | Some 'u' ->
              incr pos;
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> incr pos
                | _ -> fail "unicode escape"
              done
          | _ -> fail "escape");
          chars ()
      | Some c when Char.code c >= 0x20 -> incr pos; chars ()
      | _ -> fail "string"
    in
    chars ()
  and number () =
    let numchar c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    let start = !pos in
    while (match peek () with Some c -> numchar c | None -> false) do
      incr pos
    done;
    if !pos = start then fail "number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some _ -> ()
    | None -> fail "number"
  and keyword () =
    let kw w =
      let l = String.length w in
      !pos + l <= n && String.sub s !pos l = w && (pos := !pos + l; true)
    in
    if not (kw "true" || kw "false" || kw "null") then fail "keyword"
  in
  value ();
  skip_ws ();
  if !pos <> n then fail "trailing input"

let count_occurrences needle hay =
  let nl = String.length needle in
  let rec go acc i =
    if i + nl > String.length hay then acc
    else if String.sub hay i nl = needle then go (acc + 1) (i + 1)
    else go acc (i + 1)
  in
  go 0 0

let test_chrome_export () =
  recording (fun () ->
      Telemetry.with_span ~cat:"test"
        ~args:
          [
            ("quote", Telemetry.Str "she said \"hi\"\nand left");
            ("count", Telemetry.Int 3);
            ("ratio", Telemetry.Float 0.5);
            ("ok", Telemetry.Bool true);
          ]
        "outer"
        (fun () ->
          Telemetry.with_span "inner" (fun () -> ());
          Telemetry.with_span "inner" (fun () -> ()));
      Telemetry.incr (Telemetry.counter "test.export");
      let json = Telemetry.to_chrome_json () in
      (match parse_json json with
      | () -> ()
      | exception Failure m -> Alcotest.fail m);
      Alcotest.(check int) "begin events"
        (count_occurrences "\"ph\": \"B\"" json)
        (count_occurrences "\"ph\": \"E\"" json);
      Alcotest.(check int) "three spans" 3
        (count_occurrences "\"ph\": \"B\"" json);
      Alcotest.(check bool) "counter sample present" true
        (count_occurrences "\"ph\": \"C\"" json >= 1))

(* ------------------------------------------------------------------ *)
(* Metrics exports: JSON snapshot and Prometheus exposition             *)
(* ------------------------------------------------------------------ *)

let test_metrics_json_export () =
  recording (fun () ->
      Telemetry.incr (Telemetry.counter "test.metrics");
      Telemetry.set_gauge "test.metrics_gauge" 2.5;
      let h = Telemetry.histogram "test.metrics_hist" in
      Telemetry.observe h 0.01;
      Telemetry.observe h 1e9;
      let json = Telemetry.to_metrics_json () in
      (match parse_json json with
      | () -> ()
      | exception Failure m -> Alcotest.fail m);
      List.iter
        (fun needle ->
          Alcotest.(check bool)
            (Printf.sprintf "%S present" needle)
            true
            (count_occurrences needle json >= 1))
        [
          "\"counters\""; "\"gauges\""; "\"histograms\"";
          "\"test.metrics\": 1"; "\"test.metrics_gauge\": 2.5";
          "\"test.metrics_hist\""; "\"+Inf\"";
        ])

let test_prometheus_export () =
  recording (fun () ->
      Telemetry.incr (Telemetry.counter "test.metrics");
      Telemetry.set_gauge "test.metrics_gauge" 2.5;
      let h = Telemetry.histogram "test.metrics_hist" in
      Telemetry.observe h 0.01;
      let text = Format.asprintf "%a" Telemetry.pp_prometheus () in
      List.iter
        (fun needle ->
          Alcotest.(check bool)
            (Printf.sprintf "%S present" needle)
            true
            (count_occurrences needle text >= 1))
        [
          (* Dots sanitized, ftes_ prefix, the three metric kinds. *)
          "# TYPE ftes_test_metrics counter";
          "ftes_test_metrics 1";
          "# TYPE ftes_test_metrics_gauge gauge";
          "ftes_test_metrics_gauge 2.5";
          "# TYPE ftes_test_metrics_hist histogram";
          "ftes_test_metrics_hist_bucket{le=\"+Inf\"} 1";
          "ftes_test_metrics_hist_count 1";
          "ftes_test_metrics_hist_sum 0.01";
        ];
      (* Exposition lines are either comments or name[{labels}] value. *)
      List.iter
        (fun line ->
          if line <> "" && line.[0] <> '#' then
            match String.index_opt line ' ' with
            | Some _ -> ()
            | None ->
                Alcotest.fail
                  (Printf.sprintf "malformed exposition line %S" line))
        (String.split_on_char '\n' text))

let () =
  Alcotest.run "telemetry"
    [
      ( "determinism",
        [
          Alcotest.test_case "tabu: telemetry x jobs matrix" `Slow
            test_trajectory_identity;
        ] );
      ( "spans",
        [
          Alcotest.test_case "synthesize + validate stream is well formed"
            `Quick test_span_well_formedness;
          Alcotest.test_case "exception closes span" `Quick
            test_exception_closes_span;
          Alcotest.test_case "disabled records nothing" `Quick
            test_disabled_records_nothing;
        ] );
      ( "counters",
        [
          Alcotest.test_case "evalcache telemetry = legacy stats" `Quick
            test_evalcache_counters_match_stats;
          Alcotest.test_case "sim.scenarios counts every replay" `Quick
            test_sim_scenario_counter;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace JSON parses" `Quick
            test_chrome_export;
          Alcotest.test_case "metrics JSON snapshot parses" `Quick
            test_metrics_json_export;
          Alcotest.test_case "prometheus exposition shape" `Quick
            test_prometheus_export;
        ] );
    ];
  Ftes_util.Par.shutdown ()
