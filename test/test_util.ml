(* Unit and property tests for Ftes_util: RNG, priority queue,
   statistics, ASCII rendering. *)

module Rng = Ftes_util.Rng
module Pqueue = Ftes_util.Pqueue
module Cowarray = Ftes_util.Cowarray
module Stats = Ftes_util.Stats
module Chart = Ftes_util.Chart

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let xs = List.init 16 (fun _ -> Rng.bits64 a) in
  let ys = List.init 16 (fun _ -> Rng.bits64 b) in
  Alcotest.(check bool) "different seeds diverge" true (xs <> ys)

let test_rng_copy () =
  let a = Rng.create 7 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a)
    (Rng.bits64 b)

let test_rng_split () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let xs = List.init 16 (fun _ -> Rng.bits64 a) in
  let ys = List.init 16 (fun _ -> Rng.bits64 b) in
  Alcotest.(check bool) "split streams diverge" true (xs <> ys)

let test_rng_shuffle_multiset () =
  let rng = Rng.create 3 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_sample () =
  let rng = Rng.create 9 in
  let xs = List.init 20 (fun i -> i) in
  let s = Rng.sample rng 8 xs in
  Alcotest.(check int) "size" 8 (List.length s);
  Alcotest.(check int) "distinct" 8 (List.length (List.sort_uniq compare s));
  let s2 = Rng.sample rng 50 xs in
  Alcotest.(check int) "capped at length" 20 (List.length s2)

let test_rng_pick_empty () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "pick_list []" (Invalid_argument "Rng.pick_list: empty list")
    (fun () -> ignore (Rng.pick_list rng []))

let test_rng_sample_edges () =
  let rng = Rng.create 5 in
  Alcotest.(check (list int)) "empty population" [] (Rng.sample rng 5 []);
  Alcotest.(check (list int)) "zero draws" [] (Rng.sample rng 0 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "n > population is a permutation" [ 1; 2; 3 ]
    (List.sort compare (Rng.sample rng 50 [ 1; 2; 3 ]));
  Alcotest.(check (list int)) "n = population is a permutation" [ 1; 2; 3 ]
    (List.sort compare (Rng.sample rng 3 [ 1; 2; 3 ]))

let test_rng_chance_extremes () =
  let rng = Rng.create 11 in
  for _ = 1 to 32 do
    Alcotest.(check bool) "p = 0. never" false (Rng.chance rng 0.);
    Alcotest.(check bool) "p = 1. always" true (Rng.chance rng 1.)
  done

let test_rng_chance_stream_alignment () =
  (* chance consumes exactly one draw regardless of [p], so varying the
     probability must not shift the stream seen by later draws. *)
  let a = Rng.create 11 and b = Rng.create 11 in
  ignore (Rng.chance a 0.);
  ignore (Rng.chance b 1.);
  Alcotest.(check bool) "stream aligned after chance" true
    (List.init 8 (fun _ -> Rng.bits64 a)
    = List.init 8 (fun _ -> Rng.bits64 b))

let rng_props =
  [
    Helpers.qtest "int bound respected"
      QCheck.(pair (int_bound 10_000) (int_range 1 1000))
      (fun (seed, bound) ->
        let rng = Rng.create seed in
        let v = Rng.int rng bound in
        v >= 0 && v < bound);
    Helpers.qtest "int_in inclusive bounds"
      QCheck.(triple (int_bound 10_000) (int_range (-100) 100) (int_bound 200))
      (fun (seed, lo, span) ->
        let rng = Rng.create seed in
        let v = Rng.int_in rng lo (lo + span) in
        v >= lo && v <= lo + span);
    Helpers.qtest "float bound respected"
      QCheck.(pair (int_bound 10_000) (float_range 0.001 1000.))
      (fun (seed, bound) ->
        let rng = Rng.create seed in
        let v = Rng.float rng bound in
        v >= 0. && v < bound);
    Helpers.qtest "chance extremes"
      QCheck.(int_bound 10_000)
      (fun seed ->
        let rng = Rng.create seed in
        (not (Rng.chance rng 0.)) && Rng.chance rng 1.);
  ]

(* ------------------------------------------------------------------ *)
(* Pqueue                                                              *)
(* ------------------------------------------------------------------ *)

let test_pqueue_basic () =
  let q = Pqueue.create ~cmp:compare in
  Alcotest.(check bool) "empty" true (Pqueue.is_empty q);
  Pqueue.push q 3;
  Pqueue.push q 1;
  Pqueue.push q 2;
  Alcotest.(check int) "length" 3 (Pqueue.length q);
  Alcotest.(check (option int)) "peek" (Some 1) (Pqueue.peek q);
  Alcotest.(check (option int)) "pop 1" (Some 1) (Pqueue.pop q);
  Alcotest.(check (option int)) "pop 2" (Some 2) (Pqueue.pop q);
  Alcotest.(check (option int)) "pop 3" (Some 3) (Pqueue.pop q);
  Alcotest.(check (option int)) "pop empty" None (Pqueue.pop q)

let test_pqueue_pop_exn () =
  let q = Pqueue.create ~cmp:compare in
  Alcotest.check_raises "pop_exn empty"
    (Invalid_argument "Pqueue.pop_exn: empty queue") (fun () ->
      ignore (Pqueue.pop_exn q))

let test_pqueue_to_sorted_non_destructive () =
  let q = Pqueue.of_list ~cmp:compare [ 5; 1; 4 ] in
  Alcotest.(check (list int)) "sorted" [ 1; 4; 5 ] (Pqueue.to_sorted_list q);
  Alcotest.(check int) "queue intact" 3 (Pqueue.length q)

(* The conditional scheduler hands a forked branch [Pqueue.copy] of the
   pending-revelation queue and keeps mutating the original in place —
   the whole branch-sharing policy rests on copies never aliasing. *)
let test_pqueue_copy_independent () =
  let q = Pqueue.of_list ~cmp:compare [ 4; 2; 6 ] in
  let c = Pqueue.copy q in
  (* Mutate the original: the copy must not move. *)
  Pqueue.push q 1;
  ignore (Pqueue.pop q);
  Alcotest.(check (option int)) "copy peek unaffected" (Some 2) (Pqueue.peek c);
  Alcotest.(check int) "copy length unaffected" 3 (Pqueue.length c);
  (* Mutate the copy: the original must not move. *)
  Pqueue.push c 0;
  Alcotest.(check (option int)) "original peek unaffected" (Some 2)
    (Pqueue.peek q);
  Alcotest.(check int) "original length unaffected" 3 (Pqueue.length q);
  Alcotest.(check (list int)) "copy drains its own view" [ 0; 2; 4; 6 ]
    (Pqueue.to_sorted_list c);
  Alcotest.(check (list int)) "original drains its own view" [ 2; 4; 6 ]
    (Pqueue.to_sorted_list q)

(* Copy taken mid-growth: pushing into the original past its current
   capacity reallocates its backing array and must not resurrect
   aliasing either way. *)
let test_pqueue_copy_growth () =
  let q = Pqueue.create ~cmp:compare in
  for i = 8 downto 1 do
    Pqueue.push q i
  done;
  let c = Pqueue.copy q in
  for i = 9 to 40 do
    Pqueue.push q i
  done;
  Alcotest.(check int) "original grew" 40 (Pqueue.length q);
  Alcotest.(check int) "copy kept" 8 (Pqueue.length c);
  Alcotest.(check (list int)) "copy contents" [ 1; 2; 3; 4; 5; 6; 7; 8 ]
    (Pqueue.to_sorted_list c)

let pqueue_props =
  [
    Helpers.qtest "copy is independent under interleaved mutation"
      QCheck.(pair (list small_int) (list small_int))
      (fun (base, extra) ->
        let q = Pqueue.of_list ~cmp:compare base in
        let c = Pqueue.copy q in
        (* Interleave pushes into the original with pops from both. *)
        List.iter
          (fun x ->
            Pqueue.push q x;
            ignore (Pqueue.pop q);
            ignore (Pqueue.peek c))
          extra;
        (* The copy still drains exactly the elements present at copy
           time, in sorted order. *)
        Pqueue.to_sorted_list c = List.sort compare base);
    Helpers.qtest "drains in sorted order"
      QCheck.(list int)
      (fun xs ->
        let q = Pqueue.of_list ~cmp:compare xs in
        let rec drain acc =
          match Pqueue.pop q with None -> List.rev acc | Some x -> drain (x :: acc)
        in
        drain [] = List.sort compare xs);
    Helpers.qtest "iter_unordered visits all"
      QCheck.(list small_int)
      (fun xs ->
        let q = Pqueue.of_list ~cmp:compare xs in
        let seen = ref [] in
        Pqueue.iter_unordered (fun x -> seen := x :: !seen) q;
        List.sort compare !seen = List.sort compare xs);
  ]

(* ------------------------------------------------------------------ *)
(* Cowarray                                                            *)
(* ------------------------------------------------------------------ *)

let test_cowarray_basics () =
  let a = Cowarray.of_array [| 10; 20; 30 |] in
  Alcotest.(check int) "length" 3 (Cowarray.length a);
  Alcotest.(check int) "get" 20 (Cowarray.get a 1);
  let b = Cowarray.set a 1 99 in
  Alcotest.(check int) "new version updated" 99 (Cowarray.get b 1);
  Alcotest.(check int) "old version untouched" 20 (Cowarray.get a 1);
  Alcotest.(check (array int)) "to_array" [| 10; 99; 30 |] (Cowarray.to_array b);
  Alcotest.(check int) "empty" 0 (Cowarray.length (Cowarray.of_array [||]));
  Alcotest.check_raises "get out of bounds"
    (Invalid_argument "Cowarray.get: index out of bounds") (fun () ->
      ignore (Cowarray.get a 3));
  Alcotest.check_raises "set out of bounds"
    (Invalid_argument "Cowarray.set: index out of bounds") (fun () ->
      ignore (Cowarray.set a (-1) 0))

let test_cowarray_sharing () =
  (* Untouched slots are physically shared between versions — the
     property the scheduler's fork cost depends on. *)
  let a = Cowarray.init 64 (fun i -> ref i) in
  let b = Cowarray.set a 13 (ref 1000) in
  Alcotest.(check bool) "other slots shared" true
    (Cowarray.get a 40 == Cowarray.get b 40);
  Alcotest.(check bool) "written slot distinct" false
    (Cowarray.get a 13 == Cowarray.get b 13)

let cowarray_props =
  [
    Helpers.qtest "random writes match a mutable array"
      QCheck.(pair (int_range 1 50) (small_list (pair small_nat small_nat)))
      (fun (n, writes) ->
        let model = Array.init n (fun i -> i) in
        let cow = ref (Cowarray.init n (fun i -> i)) in
        List.iter
          (fun (i, v) ->
            let i = i mod n in
            model.(i) <- v;
            cow := Cowarray.set !cow i v)
          writes;
        Cowarray.to_array !cow = model);
    Helpers.qtest "iteri visits ascending indices"
      QCheck.(int_range 0 60)
      (fun n ->
        let a = Cowarray.init n (fun i -> 2 * i) in
        let seen = ref [] in
        Cowarray.iteri (fun i x -> seen := (i, x) :: !seen) a;
        List.rev !seen = List.init n (fun i -> (i, 2 * i)));
  ]

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_mean () =
  Helpers.check_float "mean" 2. (Stats.mean [ 1.; 2.; 3. ]);
  Helpers.check_float "mean empty" 0. (Stats.mean [])

let test_stats_stdev () =
  Helpers.check_float "stdev" 1. (Stats.stdev [ 1.; 2.; 3. ]);
  Helpers.check_float "stdev single" 0. (Stats.stdev [ 5. ])

let test_stats_median () =
  Helpers.check_float "odd" 2. (Stats.median [ 3.; 1.; 2. ]);
  Helpers.check_float "even" 2.5 (Stats.median [ 1.; 4.; 2.; 3. ])

let test_stats_min_max () =
  let lo, hi = Stats.min_max [ 3.; -1.; 7. ] in
  Helpers.check_float "min" (-1.) lo;
  Helpers.check_float "max" 7. hi;
  Alcotest.check_raises "empty" (Invalid_argument "Stats.min_max: empty list")
    (fun () -> ignore (Stats.min_max []))

let test_stats_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  Helpers.check_float "p50" 50. (Stats.percentile 50. xs);
  Helpers.check_float "p100" 100. (Stats.percentile 100. xs)

let test_stats_percentile_edges () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  Helpers.check_float "p0" 1. (Stats.percentile 0. xs);
  Helpers.check_float "p1" 1. (Stats.percentile 1. xs);
  Helpers.check_float "p99" 99. (Stats.percentile 99. xs);
  Helpers.check_float "single sample" 7. (Stats.percentile 50. [ 7. ]);
  Alcotest.check_raises "empty"
    (Invalid_argument "Stats.percentile: empty list") (fun () ->
      ignore (Stats.percentile 50. []))

let test_stats_histogram () =
  (* Bucket i spans (bounds.(i-1), bounds.(i)]; the last cell counts
     overflow above the final bound. *)
  Alcotest.(check (array int))
    "counts" [| 2; 2; 1; 1 |]
    (Stats.histogram ~bounds:[ 1.; 10.; 100. ]
       [ 0.5; 1.; 1.5; 10.; 50.; 1000. ]);
  Alcotest.(check (array int))
    "boundary value lands in the lower bucket" [| 1; 0; 0; 0 |]
    (Stats.histogram ~bounds:[ 5.; 6.; 7. ] [ 5. ]);
  Alcotest.(check (array int))
    "no samples" [| 0; 0 |]
    (Stats.histogram ~bounds:[ 1. ] []);
  Alcotest.check_raises "empty bounds"
    (Invalid_argument "Stats.histogram: empty bounds") (fun () ->
      ignore (Stats.histogram ~bounds:[] [ 1. ]));
  Alcotest.check_raises "unsorted bounds"
    (Invalid_argument "Stats.histogram: bounds not strictly increasing")
    (fun () -> ignore (Stats.histogram ~bounds:[ 2.; 1. ] [ 1. ]));
  Alcotest.check_raises "duplicate bounds"
    (Invalid_argument "Stats.histogram: bounds not strictly increasing")
    (fun () -> ignore (Stats.histogram ~bounds:[ 1.; 1. ] [ 1. ]))

let test_stats_percent_deviation () =
  Helpers.check_float "deviation" 50. (Stats.percent_deviation ~baseline:100. 150.);
  Helpers.check_float "zero baseline" 0. (Stats.percent_deviation ~baseline:0. 5.)

let stats_props =
  [
    Helpers.qtest "mean within min/max"
      QCheck.(list_of_size Gen.(int_range 1 50) (float_range (-1000.) 1000.))
      (fun xs ->
        let lo, hi = Stats.min_max xs in
        let m = Stats.mean xs in
        m >= lo -. 1e-6 && m <= hi +. 1e-6);
    Helpers.qtest "stdev non-negative"
      QCheck.(list (float_range (-100.) 100.))
      (fun xs -> Stats.stdev xs >= 0.);
    Helpers.qtest "histogram counts every sample once"
      QCheck.(list (float_range (-10.) 1000.))
      (fun xs ->
        Array.fold_left ( + ) 0
          (Stats.histogram ~bounds:[ 0.; 1.; 10.; 100. ] xs)
        = List.length xs);
  ]

(* ------------------------------------------------------------------ *)
(* Chart                                                               *)
(* ------------------------------------------------------------------ *)

let test_chart_table () =
  let s =
    Chart.render_table ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333" ] ]
  in
  Alcotest.(check bool) "contains cell" true
    (String.length s > 0
    && String.split_on_char '\n' s |> List.length >= 4);
  (* Short rows are padded. *)
  Alcotest.(check bool) "padded row" true
    (List.exists
       (fun line -> String.length line > 0 && String.sub line 0 3 = "333")
       (String.split_on_char '\n' s))

let test_chart_line () =
  let s =
    Chart.render_chart ~x_label:"x" ~xs:[ 1.; 2.; 3. ]
      ~series:[ ("up", [ 1.; 2.; 3. ]); ("down", [ 3.; 2.; 1. ]) ]
      ()
  in
  Alcotest.(check bool) "has legend" true
    (String.length s > 0
    && List.exists
         (fun line ->
           String.length line >= 7 && String.sub line 0 7 = "legend:")
         (String.split_on_char '\n' s))

let test_chart_errors () =
  Alcotest.check_raises "empty xs"
    (Invalid_argument "Chart.render_chart: empty xs") (fun () ->
      ignore (Chart.render_chart ~x_label:"x" ~xs:[] ~series:[ ("a", []) ] ()));
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Chart.render_chart: series a length mismatch")
    (fun () ->
      ignore
        (Chart.render_chart ~x_label:"x" ~xs:[ 1. ] ~series:[ ("a", []) ] ()))

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "split" `Quick test_rng_split;
          Alcotest.test_case "shuffle multiset" `Quick test_rng_shuffle_multiset;
          Alcotest.test_case "sample" `Quick test_rng_sample;
          Alcotest.test_case "sample edge cases" `Quick test_rng_sample_edges;
          Alcotest.test_case "chance extremes" `Quick test_rng_chance_extremes;
          Alcotest.test_case "chance stream alignment" `Quick
            test_rng_chance_stream_alignment;
          Alcotest.test_case "pick empty" `Quick test_rng_pick_empty;
        ]
        @ rng_props );
      ( "pqueue",
        [
          Alcotest.test_case "basic" `Quick test_pqueue_basic;
          Alcotest.test_case "pop_exn" `Quick test_pqueue_pop_exn;
          Alcotest.test_case "to_sorted non-destructive" `Quick
            test_pqueue_to_sorted_non_destructive;
          Alcotest.test_case "copy independence" `Quick
            test_pqueue_copy_independent;
          Alcotest.test_case "copy across growth" `Quick
            test_pqueue_copy_growth;
        ]
        @ pqueue_props );
      ( "cowarray",
        [
          Alcotest.test_case "basics" `Quick test_cowarray_basics;
          Alcotest.test_case "version sharing" `Quick test_cowarray_sharing;
        ]
        @ cowarray_props );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "stdev" `Quick test_stats_stdev;
          Alcotest.test_case "median" `Quick test_stats_median;
          Alcotest.test_case "min_max" `Quick test_stats_min_max;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "percentile edges" `Quick
            test_stats_percentile_edges;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
          Alcotest.test_case "percent deviation" `Quick
            test_stats_percent_deviation;
        ]
        @ stats_props );
      ( "chart",
        [
          Alcotest.test_case "table" `Quick test_chart_table;
          Alcotest.test_case "line chart" `Quick test_chart_line;
          Alcotest.test_case "errors" `Quick test_chart_errors;
        ] );
    ]
