(* Shared helpers for the test suites. *)

module Problem = Ftes_ftcpg.Problem
module Policy = Ftes_app.Policy

let approx ?(eps = 1e-6) () = Alcotest.float eps

let check_float ?eps msg expected actual =
  Alcotest.check (approx ?eps ()) msg expected actual

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* The paper's Fig. 5 instance (4 processes, k = 2, frozen P3/m2/m3). *)
let fig5_problem () =
  let app = Ftes_app.App.fig5 () in
  let arch, wcet = Ftes_arch.Examples.fig5 () in
  let policies = Problem.default_policies ~app ~k:2 in
  let mapping = Problem.fastest_mapping ~app ~wcet ~policies in
  Problem.make ~app ~arch ~wcet ~k:2 ~policies ~mapping

let fig3_problem ~k =
  let app = Ftes_app.App.fig3 () in
  let arch, wcet = Ftes_arch.Examples.fig3 () in
  let policies = Problem.default_policies ~app ~k in
  let mapping = Problem.fastest_mapping ~app ~wcet ~policies in
  Problem.make ~app ~arch ~wcet ~k ~policies ~mapping

(* A seeded random instance with mixed fault-tolerance policies, as used
   by the fuzz-style integration tests. *)
let random_problem ?(frozen = true) ?(mixed_policies = true) ~processes ~nodes
    ~k ~seed () =
  let spec =
    {
      Ftes_workload.Gen.default with
      processes;
      nodes;
      seed;
      frozen_msg_prob = (if frozen then 0.25 else 0.);
      frozen_proc_prob = (if frozen then 0.2 else 0.);
    }
  in
  let p = Ftes_workload.Gen.problem ~k spec in
  if not mixed_policies then p
  else begin
    let n = Ftes_app.Graph.process_count (Problem.graph p) in
    let policies =
      Array.init n (fun i ->
          match (i + seed) mod 5 with
          | 1 -> Policy.replication ~k
          | 2 when k >= 2 ->
              Policy.combined ~replicas:1
                ~recoveries_per_copy:[ k - 1; 0 ]
          | 3 -> Policy.checkpointing ~recoveries:k ~checkpoints:3
          | _ -> Policy.re_execution ~recoveries:k)
    in
    let mapping =
      Problem.fastest_mapping ~app:p.Problem.app ~wcet:p.Problem.wcet ~policies
    in
    Problem.with_policies p policies mapping
  end

(* A fully transparent (every process and message frozen) generated
   instance — the regime the static-table compiler and the symbolic
   validation backend target. *)
let transparent_problem ?(processes = 10) ?(nodes = 2) ~k ~seed () =
  let spec =
    {
      Ftes_workload.Gen.default with
      processes;
      nodes;
      seed;
      frozen_msg_prob = 1.0;
      frozen_proc_prob = 1.0;
    }
  in
  Ftes_workload.Gen.problem ~k spec

(* Random application graph for structural qcheck properties. *)
let arbitrary_graph =
  QCheck.make
    ~print:(fun (seed, n) -> Printf.sprintf "seed=%d n=%d" seed n)
    QCheck.Gen.(pair (int_bound 10_000) (int_range 1 15))

let graph_of (seed, n) =
  let spec =
    { Ftes_workload.Gen.default with processes = n; nodes = 2; seed }
  in
  let app, _, _ = Ftes_workload.Gen.instance spec in
  app.Ftes_app.App.graph
