(* Tests for the memoized design-evaluation cache: the cache must be a
   pure performance layer (identical search trajectories with the cache
   on or off, for any jobs value) and behave correctly under hash
   collisions, eviction pressure and foreign-universe lookups. *)

module Evalcache = Ftes_optim.Evalcache
module Tabu = Ftes_optim.Tabu
module Descent = Ftes_optim.Descent
module Strategy = Ftes_optim.Strategy
module Problem = Ftes_ftcpg.Problem
module Mapping = Ftes_ftcpg.Mapping
module Graph = Ftes_app.Graph
module Policy = Ftes_app.Policy
module Slack = Ftes_sched.Slack

(* Full design configuration as a comparable string (same idiom as
   test_par.ml): policy and mapping of every process. *)
let config_string (p : Problem.t) =
  let g = Problem.graph p in
  String.concat ";"
    (List.init (Graph.process_count g) (fun pid ->
         Printf.sprintf "%d=%s@[%s]" pid
           (Format.asprintf "%a" Ftes_app.Policy.pp p.Problem.policies.(pid))
           (String.concat ","
              (List.map string_of_int
                 (Mapping.copies p.Problem.mapping ~pid)))))

(* A distinct configuration in the SAME universe (shares the app / arch
   / wcet pointers, so it is cacheable alongside [p]). *)
let variant p =
  let policies = Array.copy p.Problem.policies in
  policies.(0) <- Policy.replication ~k:p.Problem.k;
  let mapping =
    Problem.fastest_mapping ~app:p.Problem.app ~wcet:p.Problem.wcet ~policies
  in
  Problem.with_policies p policies mapping

(* ------------------------------------------------------------------ *)
(* Cached = uncached, bit-identical                                     *)
(* ------------------------------------------------------------------ *)

let quick_opts =
  { Tabu.default_options with iterations = 30; sample = 8; jobs = 2 }

let test_tabu_cache_identical () =
  let problems =
    Helpers.fig5_problem ()
    :: List.init 10 (fun i ->
           Helpers.random_problem ~frozen:false ~mixed_policies:false
             ~processes:10 ~nodes:3 ~k:2 ~seed:(100 + i) ())
  in
  List.iteri
    (fun i p ->
      let b0, l0 = Tabu.optimize quick_opts p in
      let cache = Evalcache.create () in
      let b1, l1 =
        Tabu.optimize { quick_opts with cache = Some cache } p
      in
      Helpers.check_float (Printf.sprintf "problem %d: same length" i) l0 l1;
      Alcotest.(check string)
        (Printf.sprintf "problem %d: same configuration" i)
        (config_string b0) (config_string b1);
      let s = Evalcache.stats cache in
      Alcotest.(check bool)
        (Printf.sprintf "problem %d: cache saw traffic" i)
        true
        (s.Evalcache.lookups > 0))
    problems

let test_tabu_cache_jobs_matrix () =
  List.iter
    (fun seed ->
      let p =
        Helpers.random_problem ~frozen:false ~mixed_policies:false
          ~processes:10 ~nodes:3 ~k:2 ~seed ()
      in
      let run ~cache ~jobs =
        let cache = if cache then Some (Evalcache.create ()) else None in
        let b, l = Tabu.optimize { quick_opts with cache; jobs } p in
        (l, config_string b)
      in
      let reference = run ~cache:false ~jobs:1 in
      List.iter
        (fun (cache, jobs) ->
          let l, c = run ~cache ~jobs in
          Helpers.check_float
            (Printf.sprintf "seed %d cache=%b jobs=%d: length" seed cache jobs)
            (fst reference) l;
          Alcotest.(check string)
            (Printf.sprintf "seed %d cache=%b jobs=%d: config" seed cache jobs)
            (snd reference) c)
        [ (false, 4); (true, 1); (true, 4) ])
    [ 3; 7 ]

let test_descent_cache_identical () =
  let p =
    Helpers.random_problem ~frozen:false ~mixed_policies:false ~processes:10
      ~nodes:4 ~k:3 ~seed:3 ()
  in
  let cache = Evalcache.create () in
  Alcotest.(check string) "policy_sweep"
    (config_string (Descent.policy_sweep p))
    (config_string (Descent.policy_sweep ~cache p));
  let cache = Evalcache.create () in
  Alcotest.(check string) "remap_sweep"
    (config_string (Descent.remap_sweep p))
    (config_string (Descent.remap_sweep ~cache p))

let test_strategy_cache_identical () =
  let spec =
    { Ftes_workload.Gen.default with processes = 12; nodes = 3; seed = 21 }
  in
  let app, arch, wcet = Ftes_workload.Gen.instance spec in
  let inputs = { Strategy.app; arch; wcet; k = 2 } in
  List.iter
    (fun name ->
      let o0 = Strategy.run ~opts:quick_opts inputs name in
      let cache = Evalcache.create () in
      let o1 =
        Strategy.run ~opts:{ quick_opts with cache = Some cache } inputs name
      in
      let label = Strategy.name_to_string name in
      Helpers.check_float (label ^ ": length") o0.Strategy.length
        o1.Strategy.length;
      Helpers.check_float (label ^ ": fto") o0.Strategy.fto o1.Strategy.fto;
      Alcotest.(check string) (label ^ ": config")
        (config_string o0.Strategy.problem)
        (config_string o1.Strategy.problem);
      Alcotest.(check bool) (label ^ ": cache saw traffic") true
        ((Evalcache.stats cache).Evalcache.lookups > 0))
    [ Strategy.MXR; Strategy.MC_global ]

(* ------------------------------------------------------------------ *)
(* Cache mechanics: collisions, eviction, universes                     *)
(* ------------------------------------------------------------------ *)

let test_single_shard_collision () =
  (* One shard forces every signature into the same bucket chain: two
     distinct configurations must coexist without clobbering each
     other. *)
  let p = Helpers.fig5_problem () in
  let q = variant p in
  Alcotest.(check bool) "distinct signatures" true
    (Evalcache.signature p <> Evalcache.signature q);
  let cache = Evalcache.create ~shards:1 ~capacity:64 () in
  let rp = Evalcache.evaluate cache p in
  let rq = Evalcache.evaluate cache q in
  Helpers.check_float "p correct" (Slack.evaluate p).Slack.length
    rp.Slack.length;
  Helpers.check_float "q correct" (Slack.evaluate q).Slack.length
    rq.Slack.length;
  Helpers.check_float "p hit returns same" rp.Slack.length
    (Evalcache.evaluate cache p).Slack.length;
  Helpers.check_float "q hit returns same" rq.Slack.length
    (Evalcache.evaluate cache q).Slack.length;
  let s = Evalcache.stats cache in
  Alcotest.(check int) "2 hits" 2 s.Evalcache.hits;
  Alcotest.(check int) "2 misses" 2 s.Evalcache.misses;
  Alcotest.(check int) "2 entries" 2 s.Evalcache.entries

let test_eviction_capacity_one () =
  let p = Helpers.fig5_problem () in
  let q = variant p in
  let cache = Evalcache.create ~shards:1 ~capacity:1 () in
  let lp = (Evalcache.evaluate cache p).Slack.length in
  (* q evicts p, then p evicts q again: every lookup misses, results
     stay correct throughout. *)
  let lq = (Evalcache.evaluate cache q).Slack.length in
  let lp' = (Evalcache.evaluate cache p).Slack.length in
  Helpers.check_float "p stable under eviction" lp lp';
  Helpers.check_float "q correct" (Slack.evaluate q).Slack.length lq;
  let s = Evalcache.stats cache in
  Alcotest.(check int) "no hits" 0 s.Evalcache.hits;
  Alcotest.(check int) "2 evictions" 2 s.Evalcache.evictions;
  Alcotest.(check int) "1 entry" 1 s.Evalcache.entries

let test_signature_sensitivity () =
  let p = Helpers.fig5_problem () in
  let base = Evalcache.signature p in
  Alcotest.(check bool) "ft flag" true
    (base <> Evalcache.signature ~ft:false p);
  Alcotest.(check bool) "k" true
    (base <> Evalcache.signature (Problem.with_k p 1));
  Alcotest.(check bool) "policies + mapping" true
    (base <> Evalcache.signature (variant p));
  (* Mapping-only change (fig5 pins every process to one node, so use a
     multi-node instance): move copy 0 of some process to another of
     its allowed nodes. *)
  let m =
    Helpers.random_problem ~frozen:false ~mixed_policies:false ~processes:8
      ~nodes:3 ~k:2 ~seed:5 ()
  in
  let pid, other =
    List.find_map
      (fun pid ->
        let current = Mapping.node_of m.Problem.mapping ~pid ~copy:0 in
        List.find_opt (fun n -> n <> current)
          (Ftes_arch.Wcet.allowed_nodes m.Problem.wcet ~pid)
        |> Option.map (fun nid -> (pid, nid)))
      (List.init (Graph.process_count (Problem.graph m)) Fun.id)
    |> Option.get
  in
  let moved =
    Problem.with_policies m m.Problem.policies
      (Mapping.remap m.Problem.mapping ~pid ~copy:0 ~nid:other)
  in
  Alcotest.(check bool) "mapping only" true
    (Evalcache.signature m <> Evalcache.signature moved);
  (* And the signature is stable: same configuration, same string. *)
  Alcotest.(check string) "deterministic" base (Evalcache.signature p)

let test_foreign_universe_bypasses () =
  let p = Helpers.fig5_problem () in
  let foreign =
    Helpers.random_problem ~frozen:false ~mixed_policies:false ~processes:6
      ~nodes:2 ~k:2 ~seed:42 ()
  in
  let cache = Evalcache.create () in
  ignore (Evalcache.evaluate cache p);
  let r = Evalcache.evaluate cache foreign in
  Helpers.check_float "foreign result correct"
    (Slack.evaluate foreign).Slack.length r.Slack.length;
  let s = Evalcache.stats cache in
  Alcotest.(check int) "bypass counted" 1 s.Evalcache.bypasses;
  Alcotest.(check int) "foreign not cached" 1 s.Evalcache.entries;
  (* clear unpins the universe: the foreign problem may claim it now. *)
  Evalcache.clear cache;
  ignore (Evalcache.evaluate cache foreign);
  let s = Evalcache.stats cache in
  Alcotest.(check int) "re-pinned after clear" 0 s.Evalcache.bypasses;
  Alcotest.(check int) "cached this time" 1 s.Evalcache.entries

(* ------------------------------------------------------------------ *)
(* Concurrent sharing: one cache hammered by several domains            *)
(* ------------------------------------------------------------------ *)

let test_concurrent_stress () =
  let p =
    Helpers.random_problem ~frozen:false ~mixed_policies:false ~processes:10
      ~nodes:3 ~k:2 ~seed:11 ()
  in
  (* Distinct same-universe configurations (shared app/arch/wcet
     pointers): copy 0 of every process moved to each of its allowed
     nodes, deduplicated by signature. *)
  let g = Problem.graph p in
  let configs =
    let seen = Hashtbl.create 64 in
    List.concat_map
      (fun pid ->
        List.filter_map
          (fun nid ->
            let q =
              Problem.with_policies p p.Problem.policies
                (Mapping.remap p.Problem.mapping ~pid ~copy:0 ~nid)
            in
            let sig_ = Evalcache.signature q in
            if Hashtbl.mem seen sig_ then None
            else begin
              Hashtbl.add seen sig_ ();
              Some (q, (Slack.evaluate q).Slack.length)
            end)
          (Ftes_arch.Wcet.allowed_nodes p.Problem.wcet ~pid))
      (List.init (Graph.process_count g) Fun.id)
  in
  let arr = Array.of_list configs in
  let distinct = Array.length arr in
  Alcotest.(check bool) "enough distinct configurations" true (distinct >= 8);
  let cache = Evalcache.create () in
  let domains = 4 and rounds = 40 in
  let wrong = Atomic.make 0 in
  let worker d () =
    for r = 0 to rounds - 1 do
      for i = 0 to distinct - 1 do
        (* Each domain walks the pool in its own rotation, so misses,
           hits and inserts genuinely interleave across shards. *)
        let q, expected = arr.((i + (7 * d) + r) mod distinct) in
        let len = (Evalcache.evaluate cache q).Slack.length in
        if Float.abs (len -. expected) > 1e-9 then Atomic.incr wrong
      done
    done
  in
  let ds = List.init domains (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join ds;
  Alcotest.(check int) "no torn or stale entry ever returned" 0
    (Atomic.get wrong);
  let s = Evalcache.stats cache in
  (* The counters must sum exactly across domains: every evaluate call
     is either a hit or a miss, nothing lost to races. *)
  Alcotest.(check int) "lookups = every call from every domain"
    (domains * rounds * distinct)
    s.Evalcache.lookups;
  Alcotest.(check int) "lookups = hits + misses" s.Evalcache.lookups
    (s.Evalcache.hits + s.Evalcache.misses);
  Alcotest.(check int) "entries = inserts - evictions" s.Evalcache.entries
    (s.Evalcache.inserts - s.Evalcache.evictions);
  Alcotest.(check int) "ample capacity: no evictions" 0 s.Evalcache.evictions;
  (* Two domains can race the same fresh key and both miss (evaluation
     happens outside the shard locks), but the insert is guarded, so
     the table converges to exactly one entry per configuration. *)
  Alcotest.(check int) "one insert per distinct configuration" distinct
    s.Evalcache.inserts;
  Alcotest.(check bool) "misses at least one per configuration" true
    (s.Evalcache.misses >= distinct);
  Alcotest.(check bool) "warm rounds hit" true
    (s.Evalcache.hits > s.Evalcache.misses);
  Alcotest.(check int) "no foreign traffic" 0 s.Evalcache.bypasses

let test_stats_accounting () =
  let p = Helpers.fig5_problem () in
  let cache = Evalcache.create () in
  Alcotest.(check (float 0.)) "empty hit rate" 0.
    (Evalcache.hit_rate (Evalcache.stats cache));
  ignore (Evalcache.evaluate cache p);
  ignore (Evalcache.evaluate cache p);
  ignore (Evalcache.length cache p);
  let s = Evalcache.stats cache in
  Alcotest.(check int) "lookups" 3 s.Evalcache.lookups;
  Alcotest.(check int) "hits" 2 s.Evalcache.hits;
  Alcotest.(check int) "misses" 1 s.Evalcache.misses;
  Alcotest.(check int) "inserts" 1 s.Evalcache.inserts;
  Helpers.check_float "hit rate" (2. /. 3.) (Evalcache.hit_rate s);
  Evalcache.clear cache;
  let s = Evalcache.stats cache in
  Alcotest.(check int) "cleared lookups" 0 s.Evalcache.lookups;
  Alcotest.(check int) "cleared entries" 0 s.Evalcache.entries

let () =
  Alcotest.run "evalcache"
    [
      ( "identical trajectories",
        [
          Alcotest.test_case "tabu: cache on/off, fig5 + 10 workloads" `Slow
            test_tabu_cache_identical;
          Alcotest.test_case "tabu: cache x jobs matrix" `Slow
            test_tabu_cache_jobs_matrix;
          Alcotest.test_case "descent sweeps" `Quick
            test_descent_cache_identical;
          Alcotest.test_case "strategies (MXR, MC-global)" `Slow
            test_strategy_cache_identical;
        ] );
      ( "mechanics",
        [
          Alcotest.test_case "single-shard collision" `Quick
            test_single_shard_collision;
          Alcotest.test_case "eviction at capacity 1" `Quick
            test_eviction_capacity_one;
          Alcotest.test_case "signature sensitivity" `Quick
            test_signature_sensitivity;
          Alcotest.test_case "foreign universe bypasses" `Quick
            test_foreign_universe_bypasses;
          Alcotest.test_case "stats accounting" `Quick test_stats_accounting;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "4 domains x shared cache stress" `Slow
            test_concurrent_stress;
        ] );
    ];
  Ftes_util.Par.shutdown ()
