(* Property-based synthesis oracle (FTOS-Verify-style independent
   check): for seeded workload specs across the paper's evaluation
   ranges (10-40 processes, 2-4 nodes, k = 1-3), run the complete
   synthesis flow — policy assignment, mapping, conditional scheduling —
   and replay every produced schedule table through the fault-injection
   simulator. A schedulable result whose tables violate any
   distributed-execution invariant in any fault scenario is a synthesis
   bug; the failure message carries the spec so the instance reproduces
   from its seed. *)

module Synthesis = Ftes_core.Synthesis
module Gen = Ftes_workload.Gen
module Tabu = Ftes_optim.Tabu

(* Small search budget: the oracle exercises the whole flow, not the
   search quality. *)
let quick_tabu = { Tabu.default_options with iterations = 15; sample = 6 }

type spec = { seed : int; processes : int; nodes : int; k : int }

(* 25 deterministic specs. Process counts shrink as k grows so the
   exhaustive fault-scenario replay (exponential in the number of
   conditional vertices) stays tractable; across the list the paper's
   ranges are all covered. *)
let specs =
  List.init 25 (fun i ->
      let k = 1 + (i mod 3) in
      let processes =
        match k with
        | 1 -> 10 + (i * 5 mod 31)
        | 2 -> 10 + (i * 3 mod 16)
        | _ -> 10 + (i mod 5)
      in
      { seed = 4200 + (i * 97); processes; nodes = 2 + (i / 3 mod 3); k })

let describe s =
  Printf.sprintf "seed=%d processes=%d nodes=%d k=%d" s.seed s.processes
    s.nodes s.k

let synthesize_one s =
  let spec =
    {
      Gen.default with
      processes = s.processes;
      nodes = s.nodes;
      seed = s.seed;
      (* A third of the specs exercise the transparency machinery. *)
      frozen_msg_prob = (if s.seed mod 3 = 0 then 0.15 else 0.);
    }
  in
  let app, arch, wcet = Gen.instance spec in
  let options = { Synthesis.default_options with tabu = quick_tabu } in
  Synthesis.synthesize ~options ~app ~arch ~wcet ~k:s.k ()

let test_oracle () =
  let with_tables = ref 0 in
  List.iter
    (fun s ->
      let result = synthesize_one s in
      match result.Synthesis.table with
      | None ->
          (* FT-CPG or track budget exceeded: nothing to replay. The
             estimate-only path is still a valid synthesis outcome. *)
          ()
      | Some _ ->
          incr with_tables;
          if not (Synthesis.schedulable result) then
            Alcotest.failf
              "oracle spec %s: tables produced but not schedulable \
               (loose-deadline generator)"
              (describe s);
          let violations = Synthesis.validate result in
          if violations <> [] then
            Alcotest.failf
              "oracle spec %s: %d violation(s), first: %s" (describe s)
              (List.length violations)
              (Ftes_sim.Violation.to_string (List.hd violations)))
    specs;
  (* The oracle is only meaningful if a healthy share of the specs
     actually reached conditional scheduling. *)
  Alcotest.(check bool)
    (Printf.sprintf "at least 10 of 25 specs produced tables (%d did)"
       !with_tables)
    true (!with_tables >= 10)

let () =
  Alcotest.run "property"
    [
      ( "synthesis-oracle",
        [ Alcotest.test_case "25 seeded specs validate" `Slow test_oracle ] );
    ];
  Ftes_util.Par.shutdown ()
