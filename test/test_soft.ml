(* Tests for the soft/hard extension ([17]): utility functions and the
   mixed soft/hard scheduler. *)

module U = Ftes_soft.Utility
module SS = Ftes_soft.Softsched
module Graph = Ftes_app.Graph
module Problem = Ftes_ftcpg.Problem
module Policy = Ftes_app.Policy
module Slack = Ftes_sched.Slack

(* ------------------------------------------------------------------ *)
(* Utility functions                                                   *)
(* ------------------------------------------------------------------ *)

let test_utility_constant () =
  let u = U.constant ~value:10. ~until:100. in
  Helpers.check_float "inside" 10. (U.value_at u 50.);
  Helpers.check_float "at boundary" 10. (U.value_at u 100.);
  Helpers.check_float "outside" 0. (U.value_at u 101.);
  Helpers.check_float "max" 10. (U.max_value u);
  Alcotest.(check bool) "worthwhile" true (U.worthwhile u 99.);
  Alcotest.(check bool) "not worthwhile" false (U.worthwhile u 200.)

let test_utility_step () =
  let u = U.step ~value:10. ~until:50. ~late_value:4. ~cutoff:100. in
  Helpers.check_float "early" 10. (U.value_at u 10.);
  Helpers.check_float "late" 4. (U.value_at u 70.);
  Helpers.check_float "after cutoff" 0. (U.value_at u 150.)

let test_utility_linear () =
  let u = U.linear ~value:10. ~from_:20. ~zero_at:120. in
  Helpers.check_float "plateau" 10. (U.value_at u 10.);
  Helpers.check_float "midpoint" 5. (U.value_at u 70.);
  Helpers.check_float "zero" 0. (U.value_at u 120.);
  Helpers.check_float "beyond" 0. (U.value_at u 200.)

let test_utility_errors () =
  Alcotest.check_raises "negative" (Invalid_argument "Utility: negative value")
    (fun () -> ignore (U.constant ~value:(-1.) ~until:1.));
  Alcotest.check_raises "cutoff order"
    (Invalid_argument "Utility.step: cutoff before until") (fun () ->
      ignore (U.step ~value:1. ~until:10. ~late_value:0.5 ~cutoff:5.));
  Alcotest.check_raises "linear order"
    (Invalid_argument "Utility.linear: zero_at <= from_") (fun () ->
      ignore (U.linear ~value:1. ~from_:10. ~zero_at:10.))

let utility_props =
  let arb =
    QCheck.make
      ~print:(fun (v, a, b, t1, t2) ->
        Printf.sprintf "v=%g a=%g b=%g t1=%g t2=%g" v a b t1 t2)
      QCheck.Gen.(
        tup5 (float_range 0. 100.) (float_range 0. 100.)
          (float_range 0.1 100.) (float_range 0. 400.) (float_range 0. 400.))
  in
  let shapes v a b =
    [
      U.constant ~value:v ~until:a;
      U.step ~value:v ~until:a ~late_value:(v /. 2.) ~cutoff:(a +. b);
      U.linear ~value:v ~from_:a ~zero_at:(a +. b);
    ]
  in
  [
    Helpers.qtest "utilities are non-increasing" arb (fun (v, a, b, t1, t2) ->
        let lo = min t1 t2 and hi = max t1 t2 in
        List.for_all
          (fun u -> U.value_at u lo >= U.value_at u hi -. 1e-9)
          (shapes v a b));
    Helpers.qtest "utilities bounded by max_value" arb (fun (v, a, b, t1, _) ->
        List.for_all
          (fun u ->
            let x = U.value_at u t1 in
            x >= 0. && x <= U.max_value u +. 1e-9)
          (shapes v a b));
    (* Monotonicity under added slack: relaxing every breakpoint by a
       non-negative amount (the process is given more time before its
       utility decays) never decreases the utility at any completion
       time. *)
    Helpers.qtest "utilities are monotone in added slack" arb
      (fun (v, a, b, t, slack) ->
        let relaxed =
          [
            U.constant ~value:v ~until:(a +. slack);
            U.step ~value:v ~until:(a +. slack) ~late_value:(v /. 2.)
              ~cutoff:(a +. b +. slack);
            U.linear ~value:v ~from_:(a +. slack) ~zero_at:(a +. b +. slack);
          ]
        in
        List.for_all2
          (fun tight loose -> U.value_at loose t >= U.value_at tight t -. 1e-9)
          (shapes v a b) relaxed);
  ]

(* ------------------------------------------------------------------ *)
(* Softsched fixtures                                                  *)
(* ------------------------------------------------------------------ *)

(* Hard chain A -> B, soft chain fed by A: A -> C -> D. *)
let mixed_problem ~k =
  let b = Graph.Builder.create () in
  let o = Ftes_app.Overheads.make ~alpha:1. ~mu:1. ~chi:1. in
  let a = Graph.Builder.add_process b ~overheads:o ~name:"A" in
  let b1 = Graph.Builder.add_process b ~overheads:o ~name:"B" in
  let c = Graph.Builder.add_process b ~overheads:o ~name:"C" in
  let d = Graph.Builder.add_process b ~overheads:o ~name:"D" in
  ignore (Graph.Builder.add_message b ~src:a ~dst:b1 ~size:2.);
  ignore (Graph.Builder.add_message b ~src:a ~dst:c ~size:2.);
  ignore (Graph.Builder.add_message b ~src:c ~dst:d ~size:2.);
  let graph = Graph.Builder.build b in
  let app = Ftes_app.App.make ~graph ~deadline:500. ~period:500. () in
  let nodes = 2 in
  let arch =
    Ftes_arch.Arch.make ~node_count:nodes
      ~bus:(Ftes_arch.Arch.default_bus ~node_count:nodes)
      ()
  in
  let wcet = Ftes_arch.Wcet.create ~procs:4 ~nodes in
  for pid = 0 to 3 do
    Ftes_arch.Wcet.set wcet ~pid ~nid:0 20.;
    Ftes_arch.Wcet.set wcet ~pid ~nid:1 25.
  done;
  let policies = Array.make 4 (Policy.re_execution ~recoveries:k) in
  let mapping = Problem.fastest_mapping ~app ~wcet ~policies in
  let p = Problem.make ~app ~arch ~wcet ~k ~policies ~mapping in
  let classes =
    [|
      SS.Hard;
      SS.Hard;
      SS.Soft (U.linear ~value:100. ~from_:50. ~zero_at:400.);
      SS.Soft (U.constant ~value:40. ~until:450.);
    |]
  in
  (p, classes, (a, b1, c, d))

let test_soft_basic () =
  let p, classes, (_, _, c, d) = mixed_problem ~k:1 in
  let r = SS.schedule ~classes p in
  Alcotest.(check int) "both soft placed" 2 (List.length r.SS.soft_placements);
  Alcotest.(check (list int)) "none dropped" [] r.SS.dropped;
  Alcotest.(check bool) "positive utility" true (r.SS.utility_no_fault > 0.);
  Alcotest.(check bool) "guaranteed <= no-fault" true
    (r.SS.utility_guaranteed <= r.SS.utility_no_fault +. 1e-9);
  Alcotest.(check bool) "no-fault <= bound" true
    (r.SS.utility_no_fault <= r.SS.utility_bound +. 1e-9);
  (* Dependency respected: D after C. *)
  let pl pid = List.find (fun (x : SS.placement) -> x.SS.pid = pid) r.SS.soft_placements in
  Alcotest.(check bool) "D after C" true ((pl d).SS.start >= (pl c).SS.finish -. 1e-9)

let test_soft_rejects_hard_on_soft () =
  let p, _, _ = mixed_problem ~k:1 in
  (* Make C hard while its producer A is soft: rejected. *)
  let classes =
    [| SS.Soft (U.constant ~value:1. ~until:100.); SS.Hard; SS.Hard; SS.Hard |]
  in
  Alcotest.(check bool) "raises" true
    (match SS.schedule ~classes p with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_soft_length_mismatch () =
  let p, _, _ = mixed_problem ~k:1 in
  Alcotest.check_raises "length"
    (Invalid_argument "Softsched.schedule: classes length mismatch") (fun () ->
      ignore (SS.schedule ~classes:[| SS.Hard |] p))

(* The historical [assert false] on a hard process reaching a soft
   placement decision is now a descriptive error naming the process. *)
let test_soft_utility_of_hard () =
  let p, classes, _ = mixed_problem ~k:1 in
  let g = Problem.graph p in
  let hard_pid =
    Option.get
      (Array.to_list (Array.mapi (fun pid c -> (pid, c)) classes)
      |> List.find_map (fun (pid, c) -> if c = SS.Hard then Some pid else None))
  in
  (match SS.soft_utility ~classes g hard_pid with
  | exception Invalid_argument msg ->
      Alcotest.(check bool)
        (Printf.sprintf "error names the process: %s" msg)
        true
        (let name = (Graph.process g hard_pid).Graph.pname in
         let rec contains i =
           i + String.length name <= String.length msg
           && (String.sub msg i (String.length name) = name || contains (i + 1))
         in
         contains 0)
  | _ -> Alcotest.fail "expected Invalid_argument for a hard process");
  (match SS.soft_utility ~classes g 99 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for an out-of-range pid");
  (* A genuinely soft process round-trips its utility function. *)
  let soft_pid, u =
    Option.get
      (Array.to_list (Array.mapi (fun pid c -> (pid, c)) classes)
      |> List.find_map (fun (pid, c) ->
             match c with SS.Soft u -> Some (pid, u) | SS.Hard -> None))
  in
  Alcotest.(check bool) "soft utility returned" true
    (SS.soft_utility ~classes g soft_pid == u)

let test_all_hard () =
  let p, _, _ = mixed_problem ~k:1 in
  let r = SS.schedule ~classes:(Array.make 4 SS.Hard) p in
  Alcotest.(check int) "no soft" 0 (List.length r.SS.soft_placements);
  Helpers.check_float "no utility" 0. r.SS.utility_no_fault;
  (* The hard schedule equals the full problem's evaluation. *)
  Helpers.check_float "same hard length" (Slack.length p) r.SS.hard.Slack.length

let test_drop_on_zero_utility () =
  let p, _, _ = mixed_problem ~k:1 in
  (* C can never earn utility: both C and its dependent D are dropped. *)
  let classes =
    [|
      SS.Hard;
      SS.Hard;
      SS.Soft (U.constant ~value:10. ~until:1.);
      SS.Soft (U.constant ~value:40. ~until:450.);
    |]
  in
  let r = SS.schedule ~classes p in
  Alcotest.(check (list int)) "C and D dropped" [ 2; 3 ] r.SS.dropped;
  Helpers.check_float "no utility" 0. r.SS.utility_no_fault

let test_guaranteed_degrades_with_k () =
  let guaranteed k =
    let p, classes, _ = mixed_problem ~k in
    (SS.schedule ~classes p).SS.utility_guaranteed
  in
  let g0 = guaranteed 0 and g2 = guaranteed 2 and g5 = guaranteed 5 in
  Alcotest.(check bool) "k=0 >= k=2" true (g0 >= g2 -. 1e-9);
  Alcotest.(check bool) "k=2 >= k=5" true (g2 >= g5 -. 1e-9)

let test_no_resource_overlap () =
  let p, classes, _ = mixed_problem ~k:2 in
  let r = SS.schedule ~classes p in
  (* Soft placements never overlap hard placements on the same node. *)
  List.iter
    (fun (sp : SS.placement) ->
      List.iter
        (fun (hp : Slack.placement) ->
          if hp.Slack.node = sp.SS.node then
            Alcotest.(check bool) "disjoint" true
              (sp.SS.finish <= hp.Slack.start +. 1e-9
              || hp.Slack.finish <= sp.SS.start +. 1e-9))
        r.SS.hard.Slack.placements)
    r.SS.soft_placements

(* Random end-to-end properties via the experiment helper. *)
let soft_props =
  let arb =
    QCheck.make
      ~print:(fun (seed, n, k) -> Printf.sprintf "seed=%d n=%d k=%d" seed n k)
      QCheck.Gen.(triple (int_bound 5_000) (int_range 4 20) (int_range 0 3))
  in
  let build (seed, n, k) =
    let spec =
      { Ftes_workload.Gen.default with processes = n; nodes = 3; seed }
    in
    let p1 = Ftes_workload.Gen.problem ~k:(max k 1) spec in
    let p =
      Problem.make ~app:p1.Problem.app ~arch:p1.Problem.arch
        ~wcet:p1.Problem.wcet ~k
        ~policies:
          (Array.map
             (fun _ -> Policy.re_execution ~recoveries:k)
             p1.Problem.policies)
        ~mapping:p1.Problem.mapping
    in
    let g = Problem.graph p in
    let horizon = Slack.length ~ft:false p *. 1.5 in
    let rng = Ftes_util.Rng.create seed in
    let classes =
      Ftes_core.Experiments.mk_soft_classes ~rng ~graph:g ~horizon
        ~soft_prob:0.7
    in
    (p, classes)
  in
  [
    Helpers.qtest ~count:60 "mk_soft_classes never puts soft under hard" arb
      (fun input ->
        let p, classes = build input in
        let g = Problem.graph p in
        Array.for_all
          (fun (m : Graph.message) ->
            not (classes.(m.Graph.dst) = SS.Hard && classes.(m.Graph.src) <> SS.Hard))
          (Graph.messages g));
    Helpers.qtest ~count:40 "utility invariants hold" arb (fun input ->
        let p, classes = build input in
        let r = SS.schedule ~classes p in
        r.SS.utility_guaranteed <= r.SS.utility_no_fault +. 1e-9
        && r.SS.utility_no_fault <= r.SS.utility_bound +. 1e-9
        && List.for_all (fun (pl : SS.placement) -> pl.SS.utility > 0.)
             r.SS.soft_placements);
    Helpers.qtest ~count:40 "every soft process is placed or dropped" arb
      (fun input ->
        let p, classes = build input in
        let g = Problem.graph p in
        let r = SS.schedule ~classes p in
        let soft_count =
          Array.fold_left
            (fun acc c -> if c = SS.Hard then acc else acc + 1)
            0 classes
        in
        ignore g;
        List.length r.SS.soft_placements + List.length r.SS.dropped
        = soft_count);
    Helpers.qtest ~count:40 "soft placements respect dependencies" arb
      (fun input ->
        let p, classes = build input in
        let g = Problem.graph p in
        let r = SS.schedule ~classes p in
        let find pid =
          List.find_opt (fun (pl : SS.placement) -> pl.SS.pid = pid)
            r.SS.soft_placements
        in
        List.for_all
          (fun (pl : SS.placement) ->
            List.for_all
              (fun src ->
                match classes.(src) with
                | SS.Hard -> true
                | SS.Soft _ -> (
                    match find src with
                    | Some producer -> pl.SS.start >= producer.SS.finish -. 1e-6
                    | None -> false (* producer dropped => consumer dropped *)))
              (Graph.predecessors g pl.SS.pid))
          r.SS.soft_placements);
  ]

(* ------------------------------------------------------------------ *)
(* Soft corpus digest pins                                             *)
(* ------------------------------------------------------------------ *)

(* The checked-in corpus manifest pins the full rendered result
   (placements + utilities) of every soft-goal instance; re-evaluating
   a couple here catches soft-scheduler drift inside the tier-1 suite,
   without waiting for the corpus gate in CI. *)
let soft_corpus_pins () =
  let module Registry = Ftes_corpus.Registry in
  let module Manifest = Ftes_corpus.Manifest in
  let module Runner = Ftes_corpus.Runner in
  let module CI = Ftes_corpus.Instance in
  let manifest_path =
    if Sys.file_exists "../corpus/manifest.json" then
      "../corpus/manifest.json"
    else "corpus/manifest.json"
  in
  let manifest =
    match Manifest.load manifest_path with
    | Ok m -> m
    | Error msg -> Alcotest.failf "cannot load %s: %s" manifest_path msg
  in
  let soft_instances =
    List.filter
      (fun i -> CI.axis i "class" = Some "soft")
      (Registry.all ())
  in
  Alcotest.(check bool) "at least two soft instances" true
    (List.length soft_instances >= 2);
  (* A deterministic pair: the first of each of two shapes. *)
  let picks =
    [ List.nth soft_instances 0; List.nth soft_instances 4 ]
  in
  List.iter
    (fun inst ->
      let o = Runner.evaluate inst in
      Alcotest.(check bool) (inst.CI.id ^ " ok") true o.Runner.ok;
      Alcotest.(check string) (inst.CI.id ^ " verdict") "soft"
        o.Runner.verdict;
      match Manifest.find manifest inst.CI.id with
      | None -> Alcotest.failf "%s not pinned in the manifest" inst.CI.id
      | Some e ->
          Alcotest.(check string)
            (inst.CI.id ^ " digest")
            e.Ftes_corpus.Manifest.digest o.Runner.digest;
          Alcotest.(check bool)
            (inst.CI.id ^ " length")
            true
            (Float.abs (e.Ftes_corpus.Manifest.length -. o.Runner.length)
            < 1e-6))
    picks

let () =
  Alcotest.run "soft"
    [
      ( "utility",
        [
          Alcotest.test_case "constant" `Quick test_utility_constant;
          Alcotest.test_case "step" `Quick test_utility_step;
          Alcotest.test_case "linear" `Quick test_utility_linear;
          Alcotest.test_case "errors" `Quick test_utility_errors;
        ]
        @ utility_props );
      ( "softsched",
        [
          Alcotest.test_case "basic" `Quick test_soft_basic;
          Alcotest.test_case "rejects hard-on-soft" `Quick
            test_soft_rejects_hard_on_soft;
          Alcotest.test_case "length mismatch" `Quick test_soft_length_mismatch;
          Alcotest.test_case "soft utility of a hard process" `Quick
            test_soft_utility_of_hard;
          Alcotest.test_case "all hard" `Quick test_all_hard;
          Alcotest.test_case "drop on zero utility" `Quick
            test_drop_on_zero_utility;
          Alcotest.test_case "guaranteed degrades with k" `Quick
            test_guaranteed_degrades_with_k;
          Alcotest.test_case "no resource overlap" `Quick
            test_no_resource_overlap;
        ]
        @ soft_props );
      ( "corpus pins",
        [ Alcotest.test_case "soft digest pins" `Quick soft_corpus_pins ] );
    ]
