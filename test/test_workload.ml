(* Tests for the synthetic workload generator. *)

module Gen = Ftes_workload.Gen
module Graph = Ftes_app.Graph
module App = Ftes_app.App
module Arch = Ftes_arch.Arch
module Bus = Ftes_arch.Bus
module Wcet = Ftes_arch.Wcet
module Transparency = Ftes_app.Transparency

(* Compare instances via their textual form — covers graphs, overheads,
   transparency and WCET tables at once. *)
let render (app, arch, wcet) =
  Ftes_dsl.Dsl.to_string { Ftes_dsl.Dsl.app; arch; wcet; k = 1 }

let render_digest spec =
  Digest.to_hex (Digest.string (render (Gen.instance spec)))

(* Byte-stability pins: specs that keep the default bus, wcet_jitter and
   burstiness must generate instances byte-identical to releases that
   predate those fields. To regenerate after an INTENTIONAL generator
   change: FTES_PRINT_DIGESTS=1 dune exec test/test_workload.exe *)
let pinned_specs =
  [
    ("default", Gen.default);
    ("mid", { Gen.default with processes = 25; nodes = 4; seed = 123 });
    ( "frozen",
      {
        Gen.default with
        processes = 40;
        nodes = 2;
        seed = 7;
        frozen_proc_prob = 0.125;
        frozen_msg_prob = 0.25;
      } );
  ]

let pinned_digests =
  [
    ("default", "5ba814bd5f1b6aba745cd8d098de0d77");
    ("mid", "afbf8bd8e5c18af0f682448ad29619f3");
    ("frozen", "6cec0922153fb1e874dd5644d202daa7");
  ]

let () =
  if Sys.getenv_opt "FTES_PRINT_DIGESTS" <> None then begin
    List.iter
      (fun (name, spec) ->
        Printf.printf "    (%S, %S);\n%!" name (render_digest spec))
      pinned_specs;
    exit 0
  end

let test_byte_stability () =
  List.iter
    (fun (name, spec) ->
      Alcotest.(check string) name
        (List.assoc name pinned_digests)
        (render_digest spec))
    pinned_specs

let test_determinism () =
  let spec = { Gen.default with processes = 25; nodes = 4; seed = 123 } in
  Alcotest.(check string) "identical instances"
    (render (Gen.instance spec))
    (render (Gen.instance spec))

let test_seed_changes_instance () =
  let spec = { Gen.default with processes = 20; seed = 1 } in
  Alcotest.(check bool) "different" true
    (render (Gen.instance spec) <> render (Gen.instance { spec with seed = 2 }))

let test_counts () =
  let spec = { Gen.default with processes = 30; nodes = 5; seed = 7 } in
  let app, arch, wcet = Gen.instance spec in
  Alcotest.(check int) "processes" 30 (Graph.process_count app.App.graph);
  Alcotest.(check int) "nodes" 5 (Ftes_arch.Arch.node_count arch);
  Alcotest.(check int) "wcet procs" 30 (Wcet.proc_count wcet);
  Alcotest.(check int) "wcet nodes" 5 (Wcet.node_count wcet)

let test_no_frozen_by_default () =
  let app, _, _ = Gen.instance { Gen.default with processes = 30; seed = 3 } in
  Alcotest.(check int) "no transparency" 0
    (Transparency.cardinal app.App.transparency)

let test_frozen_probabilities () =
  let spec =
    {
      Gen.default with
      processes = 40;
      seed = 5;
      frozen_proc_prob = 1.0;
      frozen_msg_prob = 1.0;
    }
  in
  let app, _, _ = Gen.instance spec in
  let g = app.App.graph in
  Alcotest.(check int) "everything frozen"
    (Graph.process_count g + Graph.message_count g)
    (Transparency.cardinal app.App.transparency)

let test_errors () =
  Alcotest.check_raises "no processes" (Invalid_argument "Gen.instance: no processes")
    (fun () -> ignore (Gen.instance { Gen.default with processes = 0 }));
  Alcotest.check_raises "no nodes" (Invalid_argument "Gen.instance: no nodes")
    (fun () -> ignore (Gen.instance { Gen.default with nodes = 0 }));
  Alcotest.check_raises "burstiness range"
    (Invalid_argument "Gen.instance: burstiness outside [0, 1]") (fun () ->
      ignore (Gen.instance { Gen.default with burstiness = 1.5 }));
  Alcotest.check_raises "wcet_jitter range"
    (Invalid_argument "Gen.instance: wcet_jitter outside [0, 1]") (fun () ->
      ignore (Gen.instance { Gen.default with wcet_jitter = -0.1 }))

(* ------------------------------------------------------------------ *)
(* New axes: burstiness, WCET heterogeneity, bus model                 *)
(* ------------------------------------------------------------------ *)

let axes_spec =
  {
    Gen.default with
    processes = 24;
    nodes = 4;
    seed = 42;
    burstiness = 0.7;
    wcet_jitter = 0.2;
    bus = Gen.Single;
    layers = 3;
  }

let test_axes_determinism () =
  Alcotest.(check string) "identical instances"
    (render (Gen.instance axes_spec))
    (render (Gen.instance axes_spec))

let test_axes_change_instance () =
  let base = render (Gen.instance { Gen.default with processes = 24; seed = 42 }) in
  let tweaked f = render (Gen.instance (f { Gen.default with processes = 24; seed = 42 })) in
  Alcotest.(check bool) "burstiness matters" true
    (base <> tweaked (fun s -> { s with Gen.burstiness = 0.9; layers = 3 }));
  Alcotest.(check bool) "wcet_jitter matters" true
    (base <> tweaked (fun s -> { s with Gen.wcet_jitter = 0.1 }));
  Alcotest.(check bool) "bus matters" true
    (base <> tweaked (fun s -> { s with Gen.bus = Gen.Single }))

let test_bus_kind_respected () =
  let _, arch, _ = Gen.instance { Gen.default with seed = 9 } in
  Alcotest.(check bool) "tdma by default" true (Bus.is_tdma (Arch.bus arch));
  let _, arch, _ =
    Gen.instance { Gen.default with seed = 9; bus = Gen.Single }
  in
  Alcotest.(check bool) "single on request" false (Bus.is_tdma (Arch.bus arch))

let test_zero_jitter_homogeneous () =
  (* jitter 0: every node runs a process at the same (clamped) base
     WCET, so the allowed-node WCETs of each process are all equal. *)
  let spec =
    { Gen.default with processes = 30; nodes = 5; seed = 4; wcet_jitter = 0. }
  in
  let _, _, wcet = Gen.instance spec in
  for pid = 0 to 29 do
    match
      List.filter_map
        (fun nid -> Wcet.get wcet ~pid ~nid)
        (List.init 5 Fun.id)
    with
    | [] -> Alcotest.failf "process %d has no allowed node" pid
    | c :: rest ->
        List.iter
          (fun c' ->
            if Float.abs (c -. c') > 1e-9 then
              Alcotest.failf "process %d heterogeneous at jitter 0" pid)
          rest
  done

let workload_props =
  let arb =
    QCheck.make
      ~print:(fun (seed, n, nodes) ->
        Printf.sprintf "seed=%d n=%d nodes=%d" seed n nodes)
      QCheck.Gen.(triple (int_bound 10_000) (int_range 1 60) (int_range 1 6))
  in
  [
    Helpers.qtest ~count:100 "wcets within spec bounds" arb
      (fun (seed, n, nodes) ->
        let spec = { Gen.default with processes = n; nodes; seed } in
        let _, _, wcet = Gen.instance spec in
        let ok = ref true in
        for pid = 0 to n - 1 do
          for nid = 0 to nodes - 1 do
            match Wcet.get wcet ~pid ~nid with
            | Some c ->
                if c < spec.Gen.wcet_min -. 1e-9 || c > spec.Gen.wcet_max +. 1e-9
                then ok := false
            | None -> ()
          done
        done;
        !ok);
    Helpers.qtest ~count:100 "every process keeps an allowed node" arb
      (fun (seed, n, nodes) ->
        let spec =
          { Gen.default with processes = n; nodes; seed; restrict_prob = 0.8 }
        in
        let _, _, wcet = Gen.instance spec in
        let ok = ref true in
        for pid = 0 to n - 1 do
          if Wcet.allowed_nodes wcet ~pid = [] then ok := false
        done;
        !ok);
    Helpers.qtest ~count:100 "graphs are connected enough (non-sources have preds)"
      arb
      (fun (seed, n, nodes) ->
        let spec = { Gen.default with processes = n; nodes; seed } in
        let app, _, _ = Gen.instance spec in
        let g = app.App.graph in
        (* Builder already guarantees acyclicity; check that the merged
           positional structure is sane. *)
        Graph.process_count g = n
        && List.for_all
             (fun pid -> Graph.in_messages g pid <> [])
             (List.filter
                (fun pid -> not (List.mem pid (Graph.sources g)))
                (List.init n (fun i -> i))));
    Helpers.qtest ~count:60 "problem helper produces a valid instance" arb
      (fun (seed, n, nodes) ->
        let spec = { Gen.default with processes = n; nodes; seed } in
        let p = Gen.problem ~k:2 spec in
        p.Ftes_ftcpg.Problem.k = 2
        && Array.for_all
             (fun policy -> Ftes_app.Policy.tolerates policy ~k:2)
             p.Ftes_ftcpg.Problem.policies);
  ]

(* Well-formedness across the new generator axes: any combination of
   burstiness, WCET jitter and bus model still yields an acyclic DAG
   within the spec's WCET bounds, with every process mappable and the
   requested bus model on the platform. *)
let axes_props =
  let arb =
    QCheck.make
      ~print:(fun (seed, n, nodes, (burst, jitter, tdma)) ->
        Printf.sprintf "seed=%d n=%d nodes=%d burst=%g jitter=%g tdma=%b"
          seed n nodes burst jitter tdma)
      QCheck.Gen.(
        quad (int_bound 10_000) (int_range 1 60) (int_range 1 6)
          (triple (float_bound_inclusive 1.) (float_bound_inclusive 1.) bool))
  in
  let spec_of (seed, n, nodes, (burst, jitter, tdma)) =
    {
      Gen.default with
      processes = n;
      nodes;
      seed;
      burstiness = burst;
      wcet_jitter = jitter;
      bus = (if tdma then Gen.Tdma else Gen.Single);
    }
  in
  [
    Helpers.qtest ~count:150 "axes: instances stay well-formed" arb
      (fun input ->
        let spec = spec_of input in
        let app, arch, wcet = Gen.instance spec in
        let g = app.App.graph in
        let n = spec.Gen.processes in
        (* Acyclic: messages only flow towards later topological layers;
           the builder would reject a cycle, so reaching here with the
           right counts plus sane in-edges is the well-formedness we can
           observe from outside. *)
        Graph.process_count g = n
        && Arch.node_count arch = spec.Gen.nodes
        && Bus.is_tdma (Arch.bus arch) = (spec.Gen.bus = Gen.Tdma)
        && List.for_all
             (fun pid ->
               List.mem pid (Graph.sources g) || Graph.in_messages g pid <> [])
             (List.init n Fun.id)
        && List.for_all
             (fun pid -> Wcet.allowed_nodes wcet ~pid <> [])
             (List.init n Fun.id)
        && (let ok = ref true in
            for pid = 0 to n - 1 do
              for nid = 0 to spec.Gen.nodes - 1 do
                match Wcet.get wcet ~pid ~nid with
                | Some c ->
                    if
                      c < spec.Gen.wcet_min -. 1e-9
                      || c > spec.Gen.wcet_max +. 1e-9
                    then ok := false
                | None -> ()
              done
            done;
            !ok));
    Helpers.qtest ~count:80 "axes: determinism per seed" arb (fun input ->
        let spec = spec_of input in
        render (Gen.instance spec) = render (Gen.instance spec));
  ]

let () =
  Alcotest.run "workload"
    [
      ( "gen",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_instance;
          Alcotest.test_case "counts" `Quick test_counts;
          Alcotest.test_case "no frozen by default" `Quick
            test_no_frozen_by_default;
          Alcotest.test_case "frozen probabilities" `Quick
            test_frozen_probabilities;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "byte stability pins" `Quick test_byte_stability;
        ]
        @ workload_props );
      ( "axes",
        [
          Alcotest.test_case "determinism" `Quick test_axes_determinism;
          Alcotest.test_case "axes change the instance" `Quick
            test_axes_change_instance;
          Alcotest.test_case "bus kind respected" `Quick test_bus_kind_respected;
          Alcotest.test_case "zero jitter is homogeneous" `Quick
            test_zero_jitter_homogeneous;
        ]
        @ axes_props );
    ]
