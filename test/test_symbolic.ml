(* Equivalence tests for the symbolic scenario-family backend.

   [Symbolic.check] replays cubes of condition vectors through the same
   compiled table form the packed explicit validator uses. These tests
   pin its contract against the explicit oracles: the clean/not-clean
   verdict is identical to [Sim.validate_reference] on every instance,
   every reported violation is an explicitly confirmed witness (its
   concretized scenario replays to the same violation under [Sim.run]),
   and the result is invariant under the [jobs] pool size. The static
   (transparent) table compiler is exercised both in the explicitly
   cross-checkable regime and at a scenario count where only the
   symbolic backend is feasible. *)

module Sim = Ftes_sim.Sim
module Symbolic = Ftes_sim.Symbolic
module Violation = Ftes_sim.Violation
module Table = Ftes_sched.Table
module Conditional = Ftes_sched.Conditional
module Statictable = Ftes_sched.Statictable
module Ftcpg = Ftes_ftcpg.Ftcpg
module Cond = Ftes_ftcpg.Cond
module Condvec = Ftes_ftcpg.Condvec

let fig5_table () = Conditional.schedule (Ftcpg.build (Helpers.fig5_problem ()))

let tight_fig5_table () =
  let t = fig5_table () in
  let p = Ftcpg.problem t.Table.ftcpg in
  let deadline = 0.9 *. Table.no_fault_length t in
  let tight =
    Ftes_ftcpg.Problem.make
      ~app:(Ftes_app.App.with_deadline p.Ftes_ftcpg.Problem.app deadline)
      ~arch:p.Ftes_ftcpg.Problem.arch ~wcet:p.Ftes_ftcpg.Problem.wcet ~k:2
      ~policies:p.Ftes_ftcpg.Problem.policies
      ~mapping:p.Ftes_ftcpg.Problem.mapping
  in
  Conditional.schedule (Ftcpg.build tight)

(* When the closed-form scenario count is claimed, it must agree with
   the materialized arena. *)
let check_closed_form_count name f =
  match Symbolic.frozen_scenario_count f with
  | None -> ()
  | Some c ->
      Alcotest.(check int)
        (Printf.sprintf "%s: closed-form scenario count" name)
        (Ftcpg.scenario_count f) (int_of_float c)

(* The core contract: same verdict as the explicit oracle, every
   symbolic violation is in the explicit list AND replays explicitly
   from its own witness scenario, and the result is jobs-invariant. *)
let check_symbolic name t =
  check_closed_form_count name t.Table.ftcpg;
  let reference = Sim.validate_reference ~jobs:1 t in
  let ref_msgs = List.map Violation.to_string reference in
  let sym = Sim.validate ~jobs:1 ~mode:`Symbolic t in
  List.iter
    (fun jobs ->
      Alcotest.(check (list string))
        (Printf.sprintf "%s: jobs=%d invariant" name jobs)
        (List.map Violation.to_string sym)
        (List.map Violation.to_string
           (Sim.validate ~jobs ~mode:`Symbolic t)))
    [ 1; 4 ];
  Alcotest.(check bool)
    (Printf.sprintf "%s: verdict agrees with explicit oracle" name)
    (ref_msgs <> []) (sym <> []);
  List.iter
    (fun v ->
      let msg = Violation.to_string v in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %S is an explicit violation" name msg)
        true
        (List.mem msg ref_msgs);
      match v.Violation.scenario with
      | None -> () (* cross-scenario transparency finding *)
      | Some s ->
          let replayed =
            List.map Violation.to_string (Sim.run t ~scenario:s).Sim.violations
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s: %S replays from its witness scenario" name
               msg)
            true (List.mem msg replayed))
    sym

let test_clean_table () = check_symbolic "fig5" (fig5_table ())

let test_tight_table () =
  let t = tight_fig5_table () in
  Alcotest.(check bool) "tight table does violate" true
    (Sim.validate ~mode:`Symbolic t <> []);
  check_symbolic "tight-fig5" t

(* The same corrupted constructions the packed suite uses: a causality
   break, a dropped activation and an ambiguous duplicated broadcast. *)
let test_corrupted_tables () =
  let t = fig5_table () in
  let victim =
    List.find
      (fun e ->
        match e.Table.item with
        | Table.Exec vid ->
            (Ftcpg.vertex t.Table.ftcpg vid).Ftcpg.preds <> []
            && e.Table.start > 50.
        | Table.Bcast _ -> false)
      t.Table.entries
  in
  let causality_bad =
    Table.make ~ftcpg:t.Table.ftcpg
      ~entries:
        (List.map
           (fun e ->
             if e == victim then
               {
                 e with
                 Table.start = 0.;
                 finish = e.Table.finish -. e.Table.start;
               }
             else e)
           t.Table.entries)
      ~tracks:t.Table.tracks
  in
  check_symbolic "causality-corrupted" causality_bad;
  let dropped_vid =
    List.rev t.Table.entries
    |> List.find_map (fun e ->
           match e.Table.item with Table.Exec vid -> Some vid | _ -> None)
    |> Option.get
  in
  let missing_bad =
    Table.make ~ftcpg:t.Table.ftcpg
      ~entries:
        (List.filter
           (fun e -> e.Table.item <> Table.Exec dropped_vid)
           t.Table.entries)
      ~tracks:t.Table.tracks
  in
  check_symbolic "missing-activation" missing_bad;
  match
    List.find_opt
      (fun e ->
        match e.Table.item with Table.Bcast _ -> true | Table.Exec _ -> false)
      t.Table.entries
  with
  | None -> Alcotest.fail "fig5 table has no broadcast entry"
  | Some b ->
      let dup =
        {
          b with
          Table.start = b.Table.start +. 5.;
          finish = b.Table.finish +. 5.;
        }
      in
      let bcast_bad =
        Table.make ~ftcpg:t.Table.ftcpg ~entries:(dup :: t.Table.entries)
          ~tracks:t.Table.tracks
      in
      check_symbolic "ambiguous-broadcast" bcast_bad

let test_random_instances () =
  List.iter
    (fun (seed, processes, nodes, k) ->
      let p = Helpers.random_problem ~processes ~nodes ~k ~seed () in
      let t = Conditional.schedule (Ftcpg.build p) in
      check_symbolic
        (Printf.sprintf "random seed=%d n=%d k=%d" seed processes k)
        t)
    [ (3, 6, 2, 2); (11, 8, 2, 3); (29, 7, 3, 2) ]

(* qcheck sweep: verdict identity on random conditionally scheduled
   instances (small sizes — each iteration schedules and validates). *)
let qcheck_verdict =
  Helpers.qtest ~count:15 "random verdicts: symbolic = explicit"
    (QCheck.make
       ~print:(fun (seed, n, k) -> Printf.sprintf "seed=%d n=%d k=%d" seed n k)
       QCheck.Gen.(triple (int_bound 10_000) (int_range 4 8) (int_range 2 3)))
    (fun (seed, processes, k) ->
      match
        Conditional.schedule
          (Ftcpg.build (Helpers.random_problem ~processes ~nodes:2 ~k ~seed ()))
      with
      | exception (Ftcpg.Too_large _ | Conditional.Too_many_tracks _) -> true
      | t ->
          let explicit = Sim.validate ~jobs:1 t in
          let sym = Sim.validate ~jobs:1 ~mode:`Symbolic t in
          (explicit <> []) = (sym <> []))

let test_corpus_smoke () =
  let module I = Ftes_corpus.Instance in
  let instances =
    Ftes_corpus.Registry.select ~tiers:[ I.Smoke ] ()
    |> List.filter (fun i ->
           match (i.I.check, i.I.source) with
           | I.Exhaustive, I.Generated _ -> true
           | _ -> false)
  in
  Alcotest.(check bool) "smoke tier has exhaustive instances" true
    (instances <> []);
  List.iteri
    (fun n inst ->
      if n < 5 then
        let t = Conditional.schedule (Ftcpg.build (I.problem inst)) in
        check_symbolic inst.I.id t)
    instances

(* --- static (transparent) tables ----------------------------------- *)

let test_static_tables_cross_checked () =
  List.iter
    (fun (processes, k, seed) ->
      let p = Helpers.transparent_problem ~processes ~nodes:2 ~k ~seed () in
      let f = Ftcpg.build p in
      let t = Statictable.schedule f in
      (match Symbolic.frozen_scenario_count f with
      | None ->
          Alcotest.fail "transparent instance should have a closed-form count"
      | Some c ->
          Alcotest.(check int)
            (Printf.sprintf "static n=%d k=%d: closed form = arena" processes k)
            (Ftcpg.scenario_count f) (int_of_float c));
      check_symbolic (Printf.sprintf "static n=%d k=%d seed=%d" processes k seed)
        t)
    [ (6, 1, 3); (8, 2, 5); (8, 3, 7) ]

let test_static_not_transparent_rejected () =
  let f = Ftcpg.build (Helpers.fig5_problem ()) in
  match Statictable.schedule f with
  | exception Statictable.Not_transparent _ -> ()
  | _ -> Alcotest.fail "fig5 is not transparent; schedule should refuse"

(* The whole point of the backend: a scenario space far beyond any
   explicit arena budget, validated clean in a handful of cube replays
   with no splits. *)
let test_static_large_k_symbolic_only () =
  let p = Helpers.transparent_problem ~processes:40 ~nodes:2 ~k:6 ~seed:11 () in
  let f = Ftcpg.build p in
  let t = Statictable.schedule f in
  (match Symbolic.frozen_scenario_count f with
  | None -> Alcotest.fail "expected a closed-form count"
  | Some c ->
      Alcotest.(check bool) "scenario count is explicitly infeasible" true
        (c > 1e6));
  let vs, stats = Symbolic.check_stats ~jobs:1 t in
  Alcotest.(check (list string)) "clean" []
    (List.map Violation.to_string vs);
  Alcotest.(check int) "no splits on a transparent table" 0 stats.Symbolic.splits;
  Alcotest.(check bool) "bounded cube work" true (stats.Symbolic.cubes < 64);
  Alcotest.(check (list string)) "Auto picks the symbolic backend" []
    (List.map Violation.to_string (Sim.validate ~jobs:1 ~mode:`Auto t))

(* --- mode dispatch -------------------------------------------------- *)

let test_auto_small_is_explicit () =
  let t = tight_fig5_table () in
  Alcotest.(check (list string)) "Auto = Explicit below the threshold"
    (List.map Violation.to_string (Sim.validate ~jobs:1 t))
    (List.map Violation.to_string (Sim.validate ~jobs:1 ~mode:`Auto t))

let test_symbolic_stop_after () =
  let t = tight_fig5_table () in
  let full = Sim.validate ~jobs:1 ~mode:`Symbolic t in
  let partial = Sim.validate ~jobs:1 ~stop_after:1 ~mode:`Symbolic t in
  Alcotest.(check bool) "stop_after=1 finds something" true (partial <> []);
  Alcotest.(check bool) "stop_after=1 does not exceed the full list" true
    (List.length partial <= List.length full);
  List.iter
    (fun jobs ->
      Alcotest.(check (list string))
        (Printf.sprintf "stop_after=1 jobs=%d invariant" jobs)
        (List.map Violation.to_string partial)
        (List.map Violation.to_string
           (Sim.validate ~jobs ~stop_after:1 ~mode:`Symbolic t)))
    [ 2; 4 ]

(* --- hardened Condvec primitives (satellite) ------------------------ *)

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let test_universe_rejects_unsorted () =
  match Condvec.universe [| 5; 3 |] with
  | exception Invalid_argument msg ->
      Alcotest.(check bool)
        (Printf.sprintf "error names the condition: %s" msg)
        true
        (contains msg "condition 3" && contains msg "condition 5")
  | _ -> Alcotest.fail "expected Invalid_argument for unsorted condition ids"

let test_fields_per_word () =
  Alcotest.(check int) "31 two-bit fields per 62-bit word" 31
    Condvec.fields_per_word

let test_guard_words () =
  let u = Condvec.universe (Array.init 40 (fun i -> (3 * i) + 1)) in
  let m, b = Condvec.guard_words (Condvec.guard_true u) in
  Alcotest.(check bool) "true guard has empty words" true
    (Array.for_all (( = ) 0) m && Array.for_all (( = ) 0) b);
  let g =
    Option.get (Cond.of_literals [ { Cond.cond = 4; fault = true } ])
  in
  let m, _ = Condvec.guard_words (Condvec.pack_guard u g) in
  Alcotest.(check bool) "literal guard has a nonempty mask" true
    (Array.exists (( <> ) 0) m)

let test_singleton () =
  let u = Condvec.universe (Array.init 40 (fun i -> (3 * i) + 1)) in
  let row = Condvec.create_row u in
  Condvec.set u row 2 true;
  Condvec.set u row 35 false;
  let sp = Condvec.singleton u row in
  Alcotest.(check int) "count" 1 (Condvec.count sp);
  Alcotest.(check bool) "guard_at 0 round-trips the row" true
    (Cond.equal (Condvec.guard_at sp 0) (Condvec.guard_of_row u row));
  let narrow = Condvec.universe [| 1 |] in
  match Condvec.singleton narrow row with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for a mismatched row width"

let () =
  Alcotest.run "sim-symbolic"
    [
      ( "equivalence",
        [
          Alcotest.test_case "clean table" `Quick test_clean_table;
          Alcotest.test_case "tight table" `Quick test_tight_table;
          Alcotest.test_case "corrupted tables" `Quick test_corrupted_tables;
          Alcotest.test_case "random instances" `Quick test_random_instances;
          qcheck_verdict;
          Alcotest.test_case "corpus smoke instances" `Slow test_corpus_smoke;
        ] );
      ( "static-tables",
        [
          Alcotest.test_case "cross-checked against explicit" `Quick
            test_static_tables_cross_checked;
          Alcotest.test_case "non-transparent rejected" `Quick
            test_static_not_transparent_rejected;
          Alcotest.test_case "k=6 beyond the explicit arena" `Slow
            test_static_large_k_symbolic_only;
        ] );
      ( "modes",
        [
          Alcotest.test_case "Auto = Explicit on small spaces" `Quick
            test_auto_small_is_explicit;
          Alcotest.test_case "symbolic stop_after" `Quick
            test_symbolic_stop_after;
        ] );
      ( "condvec-hardening",
        [
          Alcotest.test_case "universe rejects unsorted ids" `Quick
            test_universe_rejects_unsorted;
          Alcotest.test_case "fields_per_word" `Quick test_fields_per_word;
          Alcotest.test_case "guard_words" `Quick test_guard_words;
          Alcotest.test_case "singleton" `Quick test_singleton;
        ] );
    ];
  Ftes_util.Par.shutdown ()
