(* Tests for the fault-injection simulator — including negative tests
   that corrupt a valid schedule table and check that each class of
   violation is detected. *)

module Sim = Ftes_sim.Sim
module Violation = Ftes_sim.Violation
module Diagnose = Ftes_sim.Diagnose
module Table = Ftes_sched.Table
module Conditional = Ftes_sched.Conditional
module Ftcpg = Ftes_ftcpg.Ftcpg
module Cond = Ftes_ftcpg.Cond

let fig5_table () = Conditional.schedule (Ftcpg.build (Helpers.fig5_problem ()))

let test_fig5_validates () =
  Alcotest.(check (list string)) "no violations" []
    (Sim.validate_messages (fig5_table ()))

let test_run_no_fault () =
  let t = fig5_table () in
  let scenario =
    List.find
      (fun s -> Cond.fault_count s = 0)
      (Ftcpg.scenarios t.Table.ftcpg)
  in
  let o = Sim.run t ~scenario in
  Alcotest.(check (list string)) "clean" []
    (List.map Violation.to_string o.Sim.violations);
  Helpers.check_float "makespan = fault-free length" (Table.no_fault_length t)
    o.Sim.makespan;
  Alcotest.(check bool) "has events" true (o.Sim.events <> [])

let test_run_worst_fault () =
  let t = fig5_table () in
  let scenarios = Ftcpg.scenarios t.Table.ftcpg in
  let worst =
    List.fold_left
      (fun acc s -> max acc (Sim.run t ~scenario:s).Sim.makespan)
      0. scenarios
  in
  Helpers.check_float "worst = schedule length" (Table.schedule_length t) worst

(* Corruptions: rebuild the table with one entry modified and check the
   simulator catches the resulting inconsistency. *)
let corrupt t ~f =
  let entries = List.map f t.Table.entries in
  Table.make ~ftcpg:t.Table.ftcpg ~entries ~tracks:t.Table.tracks

let test_detects_causality_violation () =
  let t = fig5_table () in
  (* Pull some dependent entry to time 0: its predecessors cannot have
     finished. *)
  let victim =
    List.find
      (fun e ->
        match e.Table.item with
        | Table.Exec vid ->
            (Ftcpg.vertex t.Table.ftcpg vid).Ftcpg.preds <> []
            && e.Table.start > 50.
        | Table.Bcast _ -> false)
      t.Table.entries
  in
  let bad =
    corrupt t ~f:(fun e ->
        if e == victim then
          { e with Table.start = 0.; finish = e.Table.finish -. e.Table.start }
        else e)
  in
  Alcotest.(check bool) "caught" true (Sim.validate bad <> [])

let test_detects_missing_activation () =
  let t = fig5_table () in
  (* Drop every entry of one vertex. *)
  let dropped_vid =
    List.find_map
      (fun e ->
        match e.Table.item with Table.Exec vid -> Some vid | _ -> None)
      (List.rev t.Table.entries)
  in
  let dropped_vid = Option.get dropped_vid in
  let entries =
    List.filter (fun e -> e.Table.item <> Table.Exec dropped_vid) t.Table.entries
  in
  let bad = Table.make ~ftcpg:t.Table.ftcpg ~entries ~tracks:t.Table.tracks in
  Alcotest.(check bool) "caught" true
    (List.exists
       (fun v ->
         Astring_contains.contains v "no applicable activation")
       (Sim.validate_messages bad));
  Alcotest.(check bool) "typed kind" true
    (List.exists
       (fun v -> Violation.kind_label v = "missing-activation")
       (Sim.validate bad))

let test_detects_overlap () =
  let t = fig5_table () in
  (* Shift one long N1 execution onto another. *)
  let on_n1 =
    List.filter
      (fun e ->
        e.Table.resource = Table.Node 0
        && e.Table.finish -. e.Table.start > 1.)
      t.Table.entries
  in
  match on_n1 with
  | a :: b :: _ ->
      let bad =
        corrupt t ~f:(fun e ->
            if e == b then
              {
                e with
                Table.start = a.Table.start;
                finish = a.Table.start +. (e.Table.finish -. e.Table.start);
              }
            else e)
      in
      Alcotest.(check bool) "caught" true (Sim.validate bad <> [])
  | _ -> Alcotest.fail "expected two N1 entries"

let test_detects_frozen_violation () =
  let t = fig5_table () in
  let f = t.Table.ftcpg in
  let frozen_vid =
    Array.to_list (Ftcpg.vertices f)
    |> List.find_map (fun v ->
           if v.Ftcpg.frozen && v.Ftcpg.duration > 0. then Some v.Ftcpg.vid
           else None)
  in
  let frozen_vid = Option.get frozen_vid in
  (* Duplicate its entry at a different time under a refined guard. *)
  let entry = List.find (fun e -> e.Table.item = Table.Exec frozen_vid) t.Table.entries in
  let shifted = { entry with Table.start = entry.Table.start +. 7.;
                  finish = entry.Table.finish +. 7. } in
  let bad =
    Table.make ~ftcpg:f ~entries:(shifted :: t.Table.entries)
      ~tracks:t.Table.tracks
  in
  Alcotest.(check bool) "caught" true
    (Sim.frozen_start_violations bad <> [])

let test_detects_deadline_miss () =
  let t = fig5_table () in
  let p = Ftcpg.problem t.Table.ftcpg in
  let tight =
    Ftes_ftcpg.Problem.make
      ~app:(Ftes_app.App.with_deadline p.Ftes_ftcpg.Problem.app 100.)
      ~arch:p.Ftes_ftcpg.Problem.arch ~wcet:p.Ftes_ftcpg.Problem.wcet ~k:2
      ~policies:p.Ftes_ftcpg.Problem.policies
      ~mapping:p.Ftes_ftcpg.Problem.mapping
  in
  let t_tight = Conditional.schedule (Ftcpg.build tight) in
  Alcotest.(check bool) "deadline miss caught" true
    (List.exists
       (fun v -> Astring_contains.contains v "deadline")
       (Sim.validate_messages t_tight))

let test_validate_sampled () =
  let t = fig5_table () in
  let rng = Ftes_util.Rng.create 1 in
  Alcotest.(check (list string)) "sampled clean" []
    (Sim.validate_sampled_messages ~rng ~samples:5 t)

(* Fig. 5 rescheduled under a deadline below its fault-free completion:
   every scenario (including the nominal one) misses the deadline, which
   makes the sampled validator's guarantees observable. *)
let tight_fig5_table () =
  let t = fig5_table () in
  let p = Ftcpg.problem t.Table.ftcpg in
  let deadline = 0.9 *. Table.no_fault_length t in
  let tight =
    Ftes_ftcpg.Problem.make
      ~app:(Ftes_app.App.with_deadline p.Ftes_ftcpg.Problem.app deadline)
      ~arch:p.Ftes_ftcpg.Problem.arch ~wcet:p.Ftes_ftcpg.Problem.wcet ~k:2
      ~policies:p.Ftes_ftcpg.Problem.policies
      ~mapping:p.Ftes_ftcpg.Problem.mapping
  in
  Conditional.schedule (Ftcpg.build tight)

let test_sampled_includes_fault_free () =
  let t = tight_fig5_table () in
  (* Zero samples: only the always-included fault-free scenario is
     replayed, and it must report the nominal deadline miss. *)
  let sampled =
    Sim.validate_sampled_messages ~rng:(Ftes_util.Rng.create 7) ~samples:0 t
  in
  Alcotest.(check bool) "fault-free deadline miss reported" true
    (List.exists (fun v -> Astring_contains.contains v "deadline") sampled)

let test_sampled_subset_of_exhaustive () =
  let t = tight_fig5_table () in
  let exhaustive = Sim.validate t in
  Alcotest.(check bool) "exhaustive violations exist" true (exhaustive <> []);
  List.iter
    (fun seed ->
      let rng = Ftes_util.Rng.create seed in
      let sampled = Sim.validate_sampled ~rng ~samples:3 t in
      Alcotest.(check bool)
        (Printf.sprintf "rng seed %d reports a subset" seed)
        true
        (List.for_all (fun v -> List.mem v exhaustive) sampled))
    [ 1; 2; 3; 4; 5 ]

(* Regression: a second broadcast column with the same guard but a
   different time must be flagged as ambiguous, exactly like the
   execution-column check (it used to slip through: broadcasts are
   invisible to the resource-overlap check, and a later duplicate does
   not precede production). *)
let test_detects_bcast_ambiguity () =
  let t = fig5_table () in
  let bcast =
    List.find_opt
      (fun e ->
        match e.Table.item with Table.Bcast _ -> true | Table.Exec _ -> false)
      t.Table.entries
  in
  match bcast with
  | None -> Alcotest.fail "fig5 table has no broadcast entry"
  | Some b ->
      let dup =
        { b with Table.start = b.Table.start +. 5.;
          finish = b.Table.finish +. 5. }
      in
      let bad =
        Table.make ~ftcpg:t.Table.ftcpg ~entries:(dup :: t.Table.entries)
          ~tracks:t.Table.tracks
      in
      let vs = Sim.validate bad in
      Alcotest.(check bool) "ambiguous broadcast caught" true
        (List.exists
           (fun v -> Violation.kind_label v = "ambiguous-broadcast")
           vs);
      Alcotest.(check bool) "message mentions ambiguous broadcasts" true
        (List.exists
           (fun m -> Astring_contains.contains m "ambiguous broadcasts")
           (List.map Violation.to_string vs))

(* The typed layer must render the historical strings byte for byte. *)
let test_deadline_message_byte_identical () =
  let t = tight_fig5_table () in
  let f = t.Table.ftcpg in
  let scenario =
    List.find (fun s -> Cond.fault_count s = 0) (Ftcpg.scenarios f)
  in
  let o = Sim.run t ~scenario in
  let deadline =
    (Ftcpg.problem f).Ftes_ftcpg.Problem.app.Ftes_app.App.deadline
  in
  let expected =
    Printf.sprintf "deadline %g missed: completion %g in %s" deadline
      o.Sim.makespan
      (Cond.to_string ~name:(Ftcpg.cond_name f) scenario)
  in
  Alcotest.(check bool)
    (Printf.sprintf "pinned rendering %S" expected)
    true
    (List.mem expected (List.map Violation.to_string o.Sim.violations))

let test_frozen_message_byte_identical () =
  let t = fig5_table () in
  let f = t.Table.ftcpg in
  let frozen_vid =
    Array.to_list (Ftcpg.vertices f)
    |> List.find_map (fun v ->
           if v.Ftcpg.frozen && v.Ftcpg.duration > 0. then Some v.Ftcpg.vid
           else None)
    |> Option.get
  in
  let entry =
    List.find (fun e -> e.Table.item = Table.Exec frozen_vid) t.Table.entries
  in
  let shifted = { entry with Table.start = entry.Table.start +. 7.;
                  finish = entry.Table.finish +. 7. } in
  let bad =
    Table.make ~ftcpg:f ~entries:(shifted :: t.Table.entries)
      ~tracks:t.Table.tracks
  in
  let expected =
    Format.asprintf "frozen vertex %s has several start times: %a"
      (Ftcpg.vertex f frozen_vid).Ftcpg.name
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         Format.pp_print_float)
      (Table.starts_of_vertex bad frozen_vid)
  in
  Alcotest.(check bool)
    (Printf.sprintf "pinned rendering %S" expected)
    true
    (List.mem expected (Sim.frozen_start_messages bad))

let test_violation_json () =
  let t = tight_fig5_table () in
  match Sim.validate t with
  | [] -> Alcotest.fail "tight table should fail validation"
  | v :: _ as vs ->
      let j = Violation.to_json v in
      Alcotest.(check bool) "json has kind" true
        (Astring_contains.contains j
           (Printf.sprintf "\"kind\": \"%s\"" (Violation.kind_label v)));
      Alcotest.(check bool) "json has message" true
        (Astring_contains.contains j "\"message\": ");
      let arr = Violation.list_to_json vs in
      Alcotest.(check bool) "array brackets" true
        (String.length arr >= 2 && arr.[0] = '[' && arr.[String.length arr - 1] = ']')

(* --- Counterexample shrinking ------------------------------------- *)

let test_shrink_minimizes () =
  let t = tight_fig5_table () in
  let scenario =
    (* A maximal-fault scenario: plenty of literals to drop. *)
    List.fold_left
      (fun acc s ->
        if Cond.fault_count s > Cond.fault_count acc then s else acc)
      (List.hd (Ftcpg.scenarios t.Table.ftcpg))
      (Ftcpg.scenarios t.Table.ftcpg)
  in
  Alcotest.(check bool) "scenario fails to begin with" true
    ((Sim.run t ~scenario).Sim.violations <> []);
  let shrunk = Diagnose.shrink t ~scenario in
  Alcotest.(check bool) "shrunk still fails" true
    ((Sim.run t ~scenario:shrunk).Sim.violations <> []);
  Alcotest.(check bool) "fault count did not grow" true
    (Cond.fault_count shrunk <= Cond.fault_count scenario);
  Alcotest.(check bool) "literals are a subset" true
    (List.for_all
       (fun l -> List.mem l (Cond.literals scenario))
       (Cond.literals shrunk))

let test_shrink_keeps_passing_scenario () =
  let t = fig5_table () in
  let scenario = List.hd (Ftcpg.scenarios t.Table.ftcpg) in
  Alcotest.(check bool) "unchanged when not failing" true
    (Cond.equal scenario (Diagnose.shrink t ~scenario))

let test_diagnose_report () =
  let t = tight_fig5_table () in
  let r = Diagnose.report t in
  Alcotest.(check int) "total = exhaustive count"
    (List.length (Sim.validate t))
    r.Diagnose.total;
  Alcotest.(check bool) "has groups" true (r.Diagnose.groups <> []);
  Alcotest.(check int) "group counts sum to total" r.Diagnose.total
    (List.fold_left (fun acc g -> acc + g.Diagnose.count) 0 r.Diagnose.groups);
  List.iter
    (fun g ->
      Alcotest.(check string) "example matches group kind" g.Diagnose.kind
        (Violation.kind_label g.Diagnose.example);
      match (g.Diagnose.shrunk, g.Diagnose.example.Violation.scenario) with
      | Some shrunk, Some original ->
          Alcotest.(check bool) "shrunk still fails" true
            ((Sim.run t ~scenario:shrunk).Sim.violations <> []);
          Alcotest.(check bool) "shrunk fault count <= original" true
            (Cond.fault_count shrunk <= Cond.fault_count original)
      | _ -> ())
    r.Diagnose.groups;
  (* The human-readable rendering must at least mention every group. *)
  let rendered = Format.asprintf "%a" Diagnose.pp_report r in
  List.iter
    (fun g ->
      Alcotest.(check bool)
        (Printf.sprintf "report mentions %s" g.Diagnose.kind)
        true
        (Astring_contains.contains rendered g.Diagnose.kind))
    r.Diagnose.groups

(* --- stop_after --------------------------------------------------- *)

let test_stop_after_prefix () =
  let t = tight_fig5_table () in
  Alcotest.(check (list string)) "no frozen drift on the tight table" []
    (Sim.frozen_start_messages t);
  let full = Sim.validate t in
  let partial = Sim.validate ~stop_after:1 t in
  Alcotest.(check bool) "non-empty" true (partial <> []);
  Alcotest.(check bool) "prefix of the exhaustive list" true
    (List.length partial <= List.length full
    && List.for_all2
         (fun a b -> a = b)
         partial
         (List.filteri (fun i _ -> i < List.length partial) full));
  let m1 = List.map Violation.to_string (Sim.validate ~jobs:1 ~stop_after:1 t)
  and m4 =
    List.map Violation.to_string (Sim.validate ~jobs:4 ~stop_after:1 t)
  in
  Alcotest.(check (list string)) "jobs-independent" m1 m4

let test_stop_after_clean_table () =
  let t = fig5_table () in
  Alcotest.(check (list string)) "clean table stays clean" []
    (List.map Violation.to_string (Sim.validate ~stop_after:1 t))

(* Fuzz: random mixed-policy instances must always validate. *)
let sim_props =
  let arb =
    QCheck.make
      ~print:(fun (seed, n, k) -> Printf.sprintf "seed=%d n=%d k=%d" seed n k)
      QCheck.Gen.(triple (int_bound 10_000) (int_range 3 10) (int_range 1 2))
  in
  [
    Helpers.qtest ~count:50 "synthesized tables always validate" arb
      (fun (seed, n, k) ->
        let p = Helpers.random_problem ~processes:n ~nodes:2 ~k ~seed () in
        let t = Conditional.schedule (Ftcpg.build p) in
        Sim.validate t = []);
    Helpers.qtest ~count:30 "three-node instances validate too" arb
      (fun (seed, n, k) ->
        let p = Helpers.random_problem ~processes:n ~nodes:3 ~k ~seed () in
        let t = Conditional.schedule (Ftcpg.build p) in
        Sim.validate t = []);
  ]

let () =
  Alcotest.run "sim"
    [
      ( "positive",
        [
          Alcotest.test_case "fig5 validates" `Quick test_fig5_validates;
          Alcotest.test_case "fault-free run" `Quick test_run_no_fault;
          Alcotest.test_case "worst fault run" `Quick test_run_worst_fault;
          Alcotest.test_case "sampled validation" `Quick test_validate_sampled;
        ] );
      ( "sampled",
        [
          Alcotest.test_case "includes fault-free scenario" `Quick
            test_sampled_includes_fault_free;
          Alcotest.test_case "subset of exhaustive" `Quick
            test_sampled_subset_of_exhaustive;
        ] );
      ( "negative",
        [
          Alcotest.test_case "causality violation" `Quick
            test_detects_causality_violation;
          Alcotest.test_case "missing activation" `Quick
            test_detects_missing_activation;
          Alcotest.test_case "resource overlap" `Quick test_detects_overlap;
          Alcotest.test_case "frozen violation" `Quick
            test_detects_frozen_violation;
          Alcotest.test_case "deadline miss" `Quick test_detects_deadline_miss;
          Alcotest.test_case "broadcast ambiguity" `Quick
            test_detects_bcast_ambiguity;
        ] );
      ( "messages",
        [
          Alcotest.test_case "deadline rendering pinned" `Quick
            test_deadline_message_byte_identical;
          Alcotest.test_case "frozen rendering pinned" `Quick
            test_frozen_message_byte_identical;
          Alcotest.test_case "json rendering" `Quick test_violation_json;
        ] );
      ( "diagnose",
        [
          Alcotest.test_case "shrink minimizes" `Quick test_shrink_minimizes;
          Alcotest.test_case "shrink keeps passing scenario" `Quick
            test_shrink_keeps_passing_scenario;
          Alcotest.test_case "grouped report" `Quick test_diagnose_report;
        ] );
      ( "stop-after",
        [
          Alcotest.test_case "prefix of exhaustive" `Quick
            test_stop_after_prefix;
          Alcotest.test_case "clean table" `Quick test_stop_after_clean_table;
        ] );
      ("fuzz", sim_props);
    ];
  Ftes_util.Par.shutdown ()
