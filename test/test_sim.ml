(* Tests for the fault-injection simulator — including negative tests
   that corrupt a valid schedule table and check that each class of
   violation is detected. *)

module Sim = Ftes_sim.Sim
module Table = Ftes_sched.Table
module Conditional = Ftes_sched.Conditional
module Ftcpg = Ftes_ftcpg.Ftcpg
module Cond = Ftes_ftcpg.Cond

let fig5_table () = Conditional.schedule (Ftcpg.build (Helpers.fig5_problem ()))

let test_fig5_validates () =
  Alcotest.(check (list string)) "no violations" [] (Sim.validate (fig5_table ()))

let test_run_no_fault () =
  let t = fig5_table () in
  let scenario =
    List.find
      (fun s -> Cond.fault_count s = 0)
      (Ftcpg.scenarios t.Table.ftcpg)
  in
  let o = Sim.run t ~scenario in
  Alcotest.(check (list string)) "clean" [] o.Sim.violations;
  Helpers.check_float "makespan = fault-free length" (Table.no_fault_length t)
    o.Sim.makespan;
  Alcotest.(check bool) "has events" true (o.Sim.events <> [])

let test_run_worst_fault () =
  let t = fig5_table () in
  let scenarios = Ftcpg.scenarios t.Table.ftcpg in
  let worst =
    List.fold_left
      (fun acc s -> max acc (Sim.run t ~scenario:s).Sim.makespan)
      0. scenarios
  in
  Helpers.check_float "worst = schedule length" (Table.schedule_length t) worst

(* Corruptions: rebuild the table with one entry modified and check the
   simulator catches the resulting inconsistency. *)
let corrupt t ~f =
  let entries = List.map f t.Table.entries in
  Table.make ~ftcpg:t.Table.ftcpg ~entries ~tracks:t.Table.tracks

let test_detects_causality_violation () =
  let t = fig5_table () in
  (* Pull some dependent entry to time 0: its predecessors cannot have
     finished. *)
  let victim =
    List.find
      (fun e ->
        match e.Table.item with
        | Table.Exec vid ->
            (Ftcpg.vertex t.Table.ftcpg vid).Ftcpg.preds <> []
            && e.Table.start > 50.
        | Table.Bcast _ -> false)
      t.Table.entries
  in
  let bad =
    corrupt t ~f:(fun e ->
        if e == victim then
          { e with Table.start = 0.; finish = e.Table.finish -. e.Table.start }
        else e)
  in
  Alcotest.(check bool) "caught" true (Sim.validate bad <> [])

let test_detects_missing_activation () =
  let t = fig5_table () in
  (* Drop every entry of one vertex. *)
  let dropped_vid =
    List.find_map
      (fun e ->
        match e.Table.item with Table.Exec vid -> Some vid | _ -> None)
      (List.rev t.Table.entries)
  in
  let dropped_vid = Option.get dropped_vid in
  let entries =
    List.filter (fun e -> e.Table.item <> Table.Exec dropped_vid) t.Table.entries
  in
  let bad = Table.make ~ftcpg:t.Table.ftcpg ~entries ~tracks:t.Table.tracks in
  Alcotest.(check bool) "caught" true
    (List.exists
       (fun v ->
         Astring_contains.contains v "no applicable activation")
       (Sim.validate bad))

let test_detects_overlap () =
  let t = fig5_table () in
  (* Shift one long N1 execution onto another. *)
  let on_n1 =
    List.filter
      (fun e ->
        e.Table.resource = Table.Node 0
        && e.Table.finish -. e.Table.start > 1.)
      t.Table.entries
  in
  match on_n1 with
  | a :: b :: _ ->
      let bad =
        corrupt t ~f:(fun e ->
            if e == b then
              {
                e with
                Table.start = a.Table.start;
                finish = a.Table.start +. (e.Table.finish -. e.Table.start);
              }
            else e)
      in
      Alcotest.(check bool) "caught" true (Sim.validate bad <> [])
  | _ -> Alcotest.fail "expected two N1 entries"

let test_detects_frozen_violation () =
  let t = fig5_table () in
  let f = t.Table.ftcpg in
  let frozen_vid =
    Array.to_list (Ftcpg.vertices f)
    |> List.find_map (fun v ->
           if v.Ftcpg.frozen && v.Ftcpg.duration > 0. then Some v.Ftcpg.vid
           else None)
  in
  let frozen_vid = Option.get frozen_vid in
  (* Duplicate its entry at a different time under a refined guard. *)
  let entry = List.find (fun e -> e.Table.item = Table.Exec frozen_vid) t.Table.entries in
  let shifted = { entry with Table.start = entry.Table.start +. 7.;
                  finish = entry.Table.finish +. 7. } in
  let bad =
    Table.make ~ftcpg:f ~entries:(shifted :: t.Table.entries)
      ~tracks:t.Table.tracks
  in
  Alcotest.(check bool) "caught" true
    (Sim.frozen_start_violations bad <> [])

let test_detects_deadline_miss () =
  let t = fig5_table () in
  let p = Ftcpg.problem t.Table.ftcpg in
  let tight =
    Ftes_ftcpg.Problem.make
      ~app:(Ftes_app.App.with_deadline p.Ftes_ftcpg.Problem.app 100.)
      ~arch:p.Ftes_ftcpg.Problem.arch ~wcet:p.Ftes_ftcpg.Problem.wcet ~k:2
      ~policies:p.Ftes_ftcpg.Problem.policies
      ~mapping:p.Ftes_ftcpg.Problem.mapping
  in
  let t_tight = Conditional.schedule (Ftcpg.build tight) in
  Alcotest.(check bool) "deadline miss caught" true
    (List.exists
       (fun v -> Astring_contains.contains v "deadline")
       (Sim.validate t_tight))

let test_validate_sampled () =
  let t = fig5_table () in
  let rng = Ftes_util.Rng.create 1 in
  Alcotest.(check (list string)) "sampled clean" []
    (Sim.validate_sampled ~rng ~samples:5 t)

(* Fig. 5 rescheduled under a deadline below its fault-free completion:
   every scenario (including the nominal one) misses the deadline, which
   makes the sampled validator's guarantees observable. *)
let tight_fig5_table () =
  let t = fig5_table () in
  let p = Ftcpg.problem t.Table.ftcpg in
  let deadline = 0.9 *. Table.no_fault_length t in
  let tight =
    Ftes_ftcpg.Problem.make
      ~app:(Ftes_app.App.with_deadline p.Ftes_ftcpg.Problem.app deadline)
      ~arch:p.Ftes_ftcpg.Problem.arch ~wcet:p.Ftes_ftcpg.Problem.wcet ~k:2
      ~policies:p.Ftes_ftcpg.Problem.policies
      ~mapping:p.Ftes_ftcpg.Problem.mapping
  in
  Conditional.schedule (Ftcpg.build tight)

let test_sampled_includes_fault_free () =
  let t = tight_fig5_table () in
  (* Zero samples: only the always-included fault-free scenario is
     replayed, and it must report the nominal deadline miss. *)
  let sampled =
    Sim.validate_sampled ~rng:(Ftes_util.Rng.create 7) ~samples:0 t
  in
  Alcotest.(check bool) "fault-free deadline miss reported" true
    (List.exists (fun v -> Astring_contains.contains v "deadline") sampled)

let test_sampled_subset_of_exhaustive () =
  let t = tight_fig5_table () in
  let exhaustive = Sim.validate t in
  Alcotest.(check bool) "exhaustive violations exist" true (exhaustive <> []);
  List.iter
    (fun seed ->
      let rng = Ftes_util.Rng.create seed in
      let sampled = Sim.validate_sampled ~rng ~samples:3 t in
      Alcotest.(check bool)
        (Printf.sprintf "rng seed %d reports a subset" seed)
        true
        (List.for_all (fun v -> List.mem v exhaustive) sampled))
    [ 1; 2; 3; 4; 5 ]

(* Fuzz: random mixed-policy instances must always validate. *)
let sim_props =
  let arb =
    QCheck.make
      ~print:(fun (seed, n, k) -> Printf.sprintf "seed=%d n=%d k=%d" seed n k)
      QCheck.Gen.(triple (int_bound 10_000) (int_range 3 10) (int_range 1 2))
  in
  [
    Helpers.qtest ~count:50 "synthesized tables always validate" arb
      (fun (seed, n, k) ->
        let p = Helpers.random_problem ~processes:n ~nodes:2 ~k ~seed () in
        let t = Conditional.schedule (Ftcpg.build p) in
        Sim.validate t = []);
    Helpers.qtest ~count:30 "three-node instances validate too" arb
      (fun (seed, n, k) ->
        let p = Helpers.random_problem ~processes:n ~nodes:3 ~k ~seed () in
        let t = Conditional.schedule (Ftcpg.build p) in
        Sim.validate t = []);
  ]

let () =
  Alcotest.run "sim"
    [
      ( "positive",
        [
          Alcotest.test_case "fig5 validates" `Quick test_fig5_validates;
          Alcotest.test_case "fault-free run" `Quick test_run_no_fault;
          Alcotest.test_case "worst fault run" `Quick test_run_worst_fault;
          Alcotest.test_case "sampled validation" `Quick test_validate_sampled;
        ] );
      ( "sampled",
        [
          Alcotest.test_case "includes fault-free scenario" `Quick
            test_sampled_includes_fault_free;
          Alcotest.test_case "subset of exhaustive" `Quick
            test_sampled_subset_of_exhaustive;
        ] );
      ( "negative",
        [
          Alcotest.test_case "causality violation" `Quick
            test_detects_causality_violation;
          Alcotest.test_case "missing activation" `Quick
            test_detects_missing_activation;
          Alcotest.test_case "resource overlap" `Quick test_detects_overlap;
          Alcotest.test_case "frozen violation" `Quick
            test_detects_frozen_violation;
          Alcotest.test_case "deadline miss" `Quick test_detects_deadline_miss;
        ] );
      ("fuzz", sim_props);
    ]
