(* Tests for the scheduling layer: timelines, bus allocation, schedule
   tables, conditional scheduling (checked against the Fig. 5/6
   scenario) and the slack-based estimator. *)

module Timeline = Ftes_sched.Timeline
module Busalloc = Ftes_sched.Busalloc
module Table = Ftes_sched.Table
module Conditional = Ftes_sched.Conditional
module Slack = Ftes_sched.Slack
module Cond = Ftes_ftcpg.Cond
module Ftcpg = Ftes_ftcpg.Ftcpg
module Problem = Ftes_ftcpg.Problem
module Bus = Ftes_arch.Bus
module Policy = Ftes_app.Policy

(* ------------------------------------------------------------------ *)
(* Timeline                                                            *)
(* ------------------------------------------------------------------ *)

let test_timeline_basics () =
  let t = Timeline.empty in
  let t = Timeline.reserve t ~start:10. ~finish:20. in
  let t = Timeline.reserve t ~start:0. ~finish:5. in
  Alcotest.(check bool) "free gap" true (Timeline.is_free t ~start:5. ~finish:10.);
  Alcotest.(check bool) "occupied" false (Timeline.is_free t ~start:4. ~finish:6.);
  Helpers.check_float "busy until" 20. (Timeline.busy_until t);
  Alcotest.(check int) "intervals" 2 (List.length (Timeline.intervals t));
  Alcotest.check_raises "overlap"
    (Invalid_argument "Timeline.reserve: overlapping reservation") (fun () ->
      ignore (Timeline.reserve t ~start:15. ~finish:25.))

let test_timeline_gap () =
  let t = Timeline.reserve Timeline.empty ~start:10. ~finish:20. in
  Helpers.check_float "before" 0. (Timeline.earliest_gap t ~from_:0. ~duration:10.);
  Helpers.check_float "after" 20. (Timeline.earliest_gap t ~from_:0. ~duration:11.);
  Helpers.check_float "zero duration anywhere" 15.
    (Timeline.earliest_gap t ~from_:15. ~duration:0.)

let test_timeline_busy_until () =
  Helpers.check_float "empty" 0. (Timeline.busy_until Timeline.empty);
  let t = Timeline.reserve Timeline.empty ~start:10. ~finish:20. in
  Helpers.check_float "single" 20. (Timeline.busy_until t);
  (* Backfilling an earlier gap must not move the busy horizon. *)
  let t = Timeline.reserve t ~start:0. ~finish:5. in
  Helpers.check_float "backfilled" 20. (Timeline.busy_until t);
  (* Zero-length reservations occupy nothing and move nothing. *)
  let t = Timeline.reserve t ~start:30. ~finish:30. in
  Helpers.check_float "zero-length ignored" 20. (Timeline.busy_until t)

let test_timeline_touching_intervals () =
  (* Exactly-touching reservations (finish = next start) are legal in
     either insertion order, and within-eps touches are too. *)
  let t = Timeline.reserve Timeline.empty ~start:10. ~finish:20. in
  let t = Timeline.reserve t ~start:20. ~finish:30. in
  let t = Timeline.reserve t ~start:0. ~finish:10. in
  Alcotest.(check int) "three intervals" 3 (List.length (Timeline.intervals t));
  let t' = Timeline.reserve t ~start:(30. -. 1e-10) ~finish:40. in
  Alcotest.(check int) "eps-touching accepted" 4
    (List.length (Timeline.intervals t'));
  Alcotest.check_raises "past-eps overlap rejected"
    (Invalid_argument "Timeline.reserve: overlapping reservation") (fun () ->
      ignore (Timeline.reserve t ~start:29.9 ~finish:40.));
  (* The intervals list stays sorted ascending whatever the insertion
     order. *)
  let sorted l = List.sort compare l = l in
  Alcotest.(check bool) "ascending" true (sorted (Timeline.intervals t'))

let test_timeline_gap_edges () =
  let t = Timeline.reserve Timeline.empty ~start:10. ~finish:20. in
  let t = Timeline.reserve t ~start:25. ~finish:35. in
  (* A duration that exactly fits the inter-reservation gap lands in it. *)
  Helpers.check_float "exact fit" 20.
    (Timeline.earliest_gap t ~from_:12. ~duration:5.);
  (* One past the gap skips to the end of all reservations. *)
  Helpers.check_float "too wide" 35.
    (Timeline.earliest_gap t ~from_:12. ~duration:5.1);
  (* from_ inside a reservation is pushed to its end. *)
  Helpers.check_float "inside reservation" 20.
    (Timeline.earliest_gap t ~from_:12. ~duration:3.);
  (* from_ past the busy horizon returns from_ (the fast path). *)
  Helpers.check_float "past horizon" 50.
    (Timeline.earliest_gap t ~from_:50. ~duration:100.);
  (* Zero-duration items fit even inside a reservation. *)
  Helpers.check_float "zero duration inside" 15.
    (Timeline.earliest_gap t ~from_:15. ~duration:0.);
  Alcotest.check_raises "negative interval"
    (Invalid_argument "Timeline.reserve: negative interval") (fun () ->
      ignore (Timeline.reserve t ~start:5. ~finish:4.))

let timeline_props =
  let arb =
    QCheck.make
      ~print:(fun xs ->
        String.concat ";"
          (List.map (fun (s, d) -> Printf.sprintf "(%g,%g)" s d) xs))
      QCheck.Gen.(
        list_size (int_bound 12)
          (pair (float_range 0. 100.) (float_range 0.1 10.)))
  in
  [
    Helpers.qtest "earliest_gap returns a free, late-enough slot" arb
      (fun reqs ->
        let t =
          List.fold_left
            (fun t (s, d) ->
              let s' = Timeline.earliest_gap t ~from_:s ~duration:d in
              Timeline.reserve t ~start:s' ~finish:(s' +. d))
            Timeline.empty reqs
        in
        (* reserve would have raised if any placement overlapped. *)
        List.length (Timeline.intervals t) = List.length reqs);
    Helpers.qtest "gap position respects from_" arb (fun reqs ->
        let t =
          List.fold_left
            (fun t (s, d) ->
              let s' = Timeline.earliest_gap t ~from_:s ~duration:d in
              Timeline.reserve t ~start:s' ~finish:(s' +. d))
            Timeline.empty reqs
        in
        List.for_all
          (fun (s, d) -> Timeline.earliest_gap t ~from_:s ~duration:d >= s)
          reqs);
  ]

(* ------------------------------------------------------------------ *)
(* Busalloc                                                            *)
(* ------------------------------------------------------------------ *)

let test_busalloc_tdma_lanes () =
  let bus = Bus.tdma ~slot_length:10. ~bandwidth:1. 2 in
  let b = Busalloc.create bus ~nodes:2 in
  let b, (s0, f0) = Busalloc.place b ~src:0 ~size:5. ~earliest:0. in
  let b, (s1, f1) = Busalloc.place b ~src:1 ~size:5. ~earliest:0. in
  Helpers.check_float "node 0 slot" 0. s0;
  Helpers.check_float "node 1 slot" 10. s1;
  Alcotest.(check bool) "disjoint" true (f0 <= s1 || f1 <= s0);
  (* Second message from node 0 packs into the same slot. *)
  let _, (s2, _) = Busalloc.place b ~src:0 ~size:3. ~earliest:0. in
  Helpers.check_float "packed mid-slot" 5. s2

let test_busalloc_probe_matches_place () =
  let bus = Bus.tdma ~slot_length:10. ~bandwidth:1. 3 in
  let b = Busalloc.create bus ~nodes:3 in
  let b, _ = Busalloc.place b ~src:1 ~size:4. ~earliest:0. in
  let ps, pf = Busalloc.probe b ~src:1 ~size:4. ~earliest:0. in
  let _, (s, f) = Busalloc.place b ~src:1 ~size:4. ~earliest:0. in
  Helpers.check_float "probe start" ps s;
  Helpers.check_float "probe finish" pf f

let test_busalloc_zero_size () =
  let bus = Bus.single ~bandwidth:1. () in
  let b = Busalloc.create bus ~nodes:1 in
  let b', (s, f) = Busalloc.place b ~src:0 ~size:0. ~earliest:3. in
  Helpers.check_float "instant" 3. s;
  Helpers.check_float "instant finish" 3. f;
  ignore b'

(* ------------------------------------------------------------------ *)
(* Conditional scheduling — Fig. 5/6                                   *)
(* ------------------------------------------------------------------ *)

let fig5_table () = Conditional.schedule (Ftcpg.build (Helpers.fig5_problem ()))

let test_fig6_lengths () =
  let t = fig5_table () in
  (* Regression-pinned: worst case 225, fault-free 180 with the Fig. 5
     parameters of this reproduction. *)
  Helpers.check_float "worst" 225. (Table.schedule_length t);
  Helpers.check_float "no fault" 180. (Table.no_fault_length t);
  Alcotest.(check int) "tracks = scenarios" 15 (List.length t.Table.tracks)

let test_fig6_frozen_single_start () =
  let t = fig5_table () in
  let f = t.Table.ftcpg in
  Array.iter
    (fun v ->
      if v.Ftcpg.frozen && v.Ftcpg.duration > 0. then
        Alcotest.(check int)
          (v.Ftcpg.name ^ " single start")
          1
          (List.length (Table.starts_of_vertex t v.Ftcpg.vid)))
    (Ftcpg.vertices f)

let test_fig6_deterministic () =
  let t1 = fig5_table () and t2 = fig5_table () in
  Alcotest.(check int) "same entry count" (Table.entry_count t1)
    (Table.entry_count t2);
  Helpers.check_float "same length" (Table.schedule_length t1)
    (Table.schedule_length t2)

(* Golden pin for the priority-queue rewrite of the pending-reveal list:
   the full Fig. 6 tables (both renderings) must stay byte-identical to
   the output of the List.sort-based scheduler they replaced. Digests
   captured from the pre-rewrite code. *)
let test_fig6_golden_tables () =
  let t = fig5_table () in
  Alcotest.(check int) "entry count" 67 (Table.entry_count t);
  Helpers.check_float "schedule length" 225. (Table.schedule_length t);
  Alcotest.(check int) "tracks" 15 (List.length t.Table.tracks);
  Alcotest.(check string) "Table.pp digest"
    "d23e00e82a11db888d50fb5fb1cf5589"
    (Digest.to_hex (Digest.string (Format.asprintf "%a" Table.pp t)));
  Alcotest.(check string) "pp_matrix digest"
    "6a4a468f0d89328483ce70b1e925d752"
    (Digest.to_hex
       (Digest.string
          (Format.asprintf "%a" (Table.pp_matrix ~max_columns:24) t)))

let test_conditional_k0 () =
  let p = Helpers.fig5_problem () in
  let policies =
    Array.map (fun _ -> Policy.re_execution ~recoveries:0) p.Problem.policies
  in
  let p0 = Problem.with_policies (Problem.with_k p 0) policies p.Problem.mapping in
  let t = Conditional.schedule (Ftcpg.build p0) in
  Alcotest.(check int) "single track" 1 (List.length t.Table.tracks);
  Alcotest.(check bool) "no conditions" true
    (List.for_all
       (fun e -> Cond.equal e.Table.guard Cond.true_)
       t.Table.entries)

let test_conditional_deadline_violation () =
  let p = Helpers.fig5_problem () in
  let tight =
    Problem.make ~app:(Ftes_app.App.with_deadline p.Problem.app 200.)
      ~arch:p.Problem.arch ~wcet:p.Problem.wcet ~k:2
      ~policies:p.Problem.policies ~mapping:p.Problem.mapping
  in
  let t = Conditional.schedule (Ftcpg.build tight) in
  Alcotest.(check bool) "misses" false (Table.meets_deadline t);
  Alcotest.(check bool) "violations reported" true (Table.violations t <> [])

let test_conditional_track_cap () =
  let p =
    Helpers.random_problem ~processes:10 ~nodes:2 ~k:2 ~seed:3
      ~mixed_policies:false ()
  in
  let f = Ftcpg.build p in
  Alcotest.(check bool) "raises" true
    (match
       Conditional.schedule
         ~params:{ Conditional.default_params with max_tracks = 2 }
         f
     with
    | exception Conditional.Too_many_tracks 2 -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Incremental scheduler vs. reference scheduler                       *)
(* ------------------------------------------------------------------ *)

let table_digest t =
  Digest.to_hex (Digest.string (Format.asprintf "%a" Table.pp t))

(* The rebuilt scheduler (ready set + placement cache + COW timelines +
   parallel subtrees) must reproduce the reference transcription
   byte-for-byte: same digests for every jobs value, every fan depth
   (including degenerate frontier cuts) and with telemetry recording. *)
let test_incremental_matches_reference_fig5 () =
  let f = Ftcpg.build (Helpers.fig5_problem ()) in
  let d_ref = table_digest (Conditional.schedule_reference f) in
  Alcotest.(check string) "jobs=1" d_ref
    (table_digest (Conditional.schedule ~jobs:1 f));
  Alcotest.(check string) "jobs=4" d_ref
    (table_digest (Conditional.schedule ~jobs:4 f));
  List.iter
    (fun fan_depth ->
      Alcotest.(check string)
        (Printf.sprintf "jobs=4 fan_depth=%d" fan_depth)
        d_ref
        (table_digest
           (Conditional.schedule
              ~params:{ Conditional.default_params with fan_depth }
              ~jobs:4 f)))
    [ 0; 1; 2 ];
  Ftes_util.Telemetry.enable ();
  let d_tel1 = table_digest (Conditional.schedule ~jobs:1 f) in
  let d_tel4 = table_digest (Conditional.schedule ~jobs:4 f) in
  Ftes_util.Telemetry.disable ();
  Ftes_util.Telemetry.reset ();
  Alcotest.(check string) "telemetry on, jobs=1" d_ref d_tel1;
  Alcotest.(check string) "telemetry on, jobs=4" d_ref d_tel4

let sched_props =
  let arb =
    QCheck.make
      ~print:(fun (seed, n, k) -> Printf.sprintf "seed=%d n=%d k=%d" seed n k)
      QCheck.Gen.(triple (int_bound 10_000) (int_range 3 9) (int_range 1 2))
  in
  [
    Helpers.qtest ~count:30 "incremental matches reference, jobs 1 and 4" arb
      (fun (seed, n, k) ->
        (* Frozen vertices are on, so multi-iteration fixpoints are
           exercised; mixed policies exercise replication forks. *)
        let p = Helpers.random_problem ~processes:n ~nodes:2 ~k ~seed () in
        let f = Ftcpg.build p in
        let d = table_digest (Conditional.schedule_reference f) in
        table_digest (Conditional.schedule f) = d
        && table_digest (Conditional.schedule ~jobs:4 f) = d);
    Helpers.qtest ~count:40 "worst-case length dominates every track" arb
      (fun (seed, n, k) ->
        let p = Helpers.random_problem ~processes:n ~nodes:2 ~k ~seed () in
        let t = Conditional.schedule (Ftcpg.build p) in
        List.for_all
          (fun tr -> tr.Table.makespan <= Table.schedule_length t +. 1e-6)
          t.Table.tracks);
    Helpers.qtest ~count:40 "fault-free track never exceeds worst case" arb
      (fun (seed, n, k) ->
        let p = Helpers.random_problem ~processes:n ~nodes:2 ~k ~seed () in
        let t = Conditional.schedule (Ftcpg.build p) in
        Table.no_fault_length t <= Table.schedule_length t +. 1e-6);
    Helpers.qtest ~count:40 "entries well-formed" arb (fun (seed, n, k) ->
        let p = Helpers.random_problem ~processes:n ~nodes:2 ~k ~seed () in
        let t = Conditional.schedule (Ftcpg.build p) in
        List.for_all
          (fun e ->
            e.Table.start >= -1e-9 && e.Table.finish >= e.Table.start -. 1e-9)
          t.Table.entries);
  ]

(* ------------------------------------------------------------------ *)
(* Slack estimator                                                     *)
(* ------------------------------------------------------------------ *)

let test_slack_fig5 () =
  let p = Helpers.fig5_problem () in
  let r = Slack.evaluate p in
  Alcotest.(check bool) "positive slack" true (r.Slack.slack_term > 0.);
  Helpers.check_float "length = root + slack" r.Slack.length
    (r.Slack.root_makespan +. r.Slack.slack_term);
  let r0 = Slack.evaluate ~ft:false p in
  Helpers.check_float "no slack without ft" 0. r0.Slack.slack_term;
  Alcotest.(check bool) "ft costs time" true (r.Slack.length > r0.Slack.length)

let test_slack_k0_no_slack () =
  let p = Helpers.fig5_problem () in
  let policies =
    Array.map (fun _ -> Policy.re_execution ~recoveries:0) p.Problem.policies
  in
  let p0 =
    Problem.with_policies (Problem.with_k p 0) policies p.Problem.mapping
  in
  let r = Slack.evaluate p0 in
  Helpers.check_float "no recoveries, no slack" 0. r.Slack.slack_term

let test_slack_fto () =
  Helpers.check_float "fto" 50. (Slack.fto ~ft_length:150. ~nft_length:100.);
  Helpers.check_float "zero baseline" 0. (Slack.fto ~ft_length:5. ~nft_length:0.)

let slack_props =
  let arb =
    QCheck.make
      ~print:(fun (seed, n, k) -> Printf.sprintf "seed=%d n=%d k=%d" seed n k)
      QCheck.Gen.(triple (int_bound 10_000) (int_range 3 20) (int_range 1 4))
  in
  [
    Helpers.qtest ~count:60 "placements never overlap on a node" arb
      (fun (seed, n, k) ->
        let p = Helpers.random_problem ~processes:n ~nodes:3 ~k ~seed () in
        let r = Slack.evaluate p in
        let by_node = Hashtbl.create 8 in
        List.iter
          (fun (pl : Slack.placement) ->
            Hashtbl.replace by_node pl.Slack.node
              (pl
              :: (try Hashtbl.find by_node pl.Slack.node with Not_found -> [])))
          r.Slack.placements;
        Hashtbl.fold
          (fun _ pls acc ->
            acc
            && List.for_all
                 (fun (a : Slack.placement) ->
                   List.for_all
                     (fun (b : Slack.placement) ->
                       a == b
                       || a.Slack.finish <= b.Slack.start +. 1e-6
                       || b.Slack.finish <= a.Slack.start +. 1e-6)
                     pls)
                 pls)
          by_node true);
    Helpers.qtest ~count:60 "messages placed after their producer copy" arb
      (fun (seed, n, k) ->
        let p = Helpers.random_problem ~processes:n ~nodes:3 ~k ~seed () in
        let g = Problem.graph p in
        let r = Slack.evaluate p in
        List.for_all
          (fun (mp : Slack.msg_placement) ->
            let m = Ftes_app.Graph.message g mp.Slack.mid in
            let producer =
              List.find
                (fun (pl : Slack.placement) ->
                  pl.Slack.pid = m.Ftes_app.Graph.src
                  && pl.Slack.copy = mp.Slack.copy)
                r.Slack.placements
            in
            mp.Slack.start >= producer.Slack.finish -. 1e-6)
          r.Slack.msg_placements);
    Helpers.qtest ~count:60 "ft never cheaper than no-ft" arb
      (fun (seed, n, k) ->
        let p = Helpers.random_problem ~processes:n ~nodes:3 ~k ~seed () in
        Slack.length ~ft:true p >= Slack.length ~ft:false p -. 1e-6);
    Helpers.qtest ~count:40 "more faults never shorten the estimate" arb
      (fun (seed, n, k) ->
        (* Without transparency: frozen messages depart at worst-case
           times, which depend on k and reshuffle the greedy root
           schedule (a Graham-style anomaly can then shorten it). With
           no frozen objects the root is k-independent and the slack
           term is monotone in k. *)
        let p0 =
          Helpers.random_problem ~processes:n ~nodes:3 ~k:(k + 1) ~seed
            ~mixed_policies:false ~frozen:false ()
        in
        Slack.length (Problem.with_k p0 k)
        <= Slack.length (Problem.with_k p0 (k + 1)) +. 1e-6);
  ]

(* ------------------------------------------------------------------ *)
(* Metamorphic invariants                                              *)
(* ------------------------------------------------------------------ *)

(* A bus-free instance (zero-size messages) built directly, so both the
   WCET table and the per-process overheads can be scaled exactly. *)
let bus_free_instance ?(nodes = 2) ~seed ~n ~k ~scale () =
  let rng = Ftes_util.Rng.create seed in
  let b = Ftes_app.Graph.Builder.create () in
  for i = 0 to n - 1 do
    let base = 5. +. Ftes_util.Rng.float rng 50. in
    ignore
      (Ftes_app.Graph.Builder.add_process b
         ~overheads:
           (Ftes_app.Overheads.make
              ~alpha:(scale *. base /. 10.)
              ~mu:(scale *. base /. 10.)
              ~chi:(scale *. base /. 20.))
         ~name:(Printf.sprintf "P%d" (i + 1)))
  done;
  for dst = 1 to n - 1 do
    let src = Ftes_util.Rng.int rng dst in
    ignore (Ftes_app.Graph.Builder.add_message b ~src ~dst ~size:0.)
  done;
  let graph = Ftes_app.Graph.Builder.build b in
  let app = Ftes_app.App.make ~graph ~deadline:1e9 ~period:1e9 () in
  let arch =
    Ftes_arch.Arch.make ~node_count:nodes
      ~bus:(Ftes_arch.Arch.default_bus ~node_count:nodes)
      ()
  in
  let wcet = Ftes_arch.Wcet.create ~procs:n ~nodes in
  let rng2 = Ftes_util.Rng.create (seed + 1) in
  for pid = 0 to n - 1 do
    for nid = 0 to nodes - 1 do
      Ftes_arch.Wcet.set wcet ~pid ~nid
        (scale *. (10. +. Ftes_util.Rng.float rng2 50.))
    done
  done;
  let policies = Problem.default_policies ~app ~k in
  let mapping = Problem.fastest_mapping ~app ~wcet ~policies in
  Problem.make ~app ~arch ~wcet ~k ~policies ~mapping

let metamorphic_props =
  let arb =
    QCheck.make
      ~print:(fun (seed, n, k) -> Printf.sprintf "seed=%d n=%d k=%d" seed n k)
      QCheck.Gen.(triple (int_bound 10_000) (int_range 2 10) (int_range 0 2))
  in
  [
    Helpers.qtest ~count:50
      "scaling all execution times by c scales the estimate by c" arb
      (fun (seed, n, k) ->
        let p1 = bus_free_instance ~seed ~n ~k ~scale:1. () in
        let p3 = bus_free_instance ~seed ~n ~k ~scale:3. () in
        Float.abs ((3. *. Slack.length p1) -. Slack.length p3)
        < 1e-6 *. Slack.length p3);
    Helpers.qtest ~count:25
      "scaling scales the conditional worst case too" arb
      (fun (seed, n, k) ->
        (* One node: condition broadcasts vanish, so the schedule has no
           unscaled bus artifacts. *)
        let n = min n 7 in
        let p1 = bus_free_instance ~nodes:1 ~seed ~n ~k ~scale:1. () in
        let p2 = bus_free_instance ~nodes:1 ~seed ~n ~k ~scale:2. () in
        let len p = Table.schedule_length (Conditional.schedule (Ftcpg.build p)) in
        Float.abs ((2. *. len p1) -. len p2) < 1e-6 *. len p2);
    Helpers.qtest ~count:50 "swapping the two nodes leaves the estimate unchanged"
      arb
      (fun (seed, n, k) ->
        (* Zero-size messages make the TDMA slot order irrelevant, so
           the platform is symmetric under node renaming. *)
        let p = bus_free_instance ~seed ~n ~k ~scale:1. () in
        let wcet2 = Ftes_arch.Wcet.copy p.Problem.wcet in
        for pid = 0 to n - 1 do
          let a = Ftes_arch.Wcet.get_exn p.Problem.wcet ~pid ~nid:0 in
          let c = Ftes_arch.Wcet.get_exn p.Problem.wcet ~pid ~nid:1 in
          Ftes_arch.Wcet.set wcet2 ~pid ~nid:0 c;
          Ftes_arch.Wcet.set wcet2 ~pid ~nid:1 a
        done;
        let mapping2 =
          Ftes_ftcpg.Mapping.of_array
            (Array.init n (fun pid ->
                 Array.of_list
                   (List.map
                      (fun nid -> 1 - nid)
                      (Ftes_ftcpg.Mapping.copies p.Problem.mapping ~pid))))
        in
        let p2 =
          Problem.make ~app:p.Problem.app ~arch:p.Problem.arch ~wcet:wcet2
            ~k:p.Problem.k ~policies:p.Problem.policies ~mapping:mapping2
        in
        Float.abs (Slack.length p -. Slack.length p2) < 1e-6);
  ]

let () =
  Alcotest.run "sched"
    [
      ( "timeline",
        [
          Alcotest.test_case "basics" `Quick test_timeline_basics;
          Alcotest.test_case "gaps" `Quick test_timeline_gap;
          Alcotest.test_case "busy until" `Quick test_timeline_busy_until;
          Alcotest.test_case "touching intervals" `Quick
            test_timeline_touching_intervals;
          Alcotest.test_case "gap edge cases" `Quick test_timeline_gap_edges;
        ]
        @ timeline_props );
      ( "busalloc",
        [
          Alcotest.test_case "tdma lanes" `Quick test_busalloc_tdma_lanes;
          Alcotest.test_case "probe matches place" `Quick
            test_busalloc_probe_matches_place;
          Alcotest.test_case "zero size" `Quick test_busalloc_zero_size;
        ] );
      ( "conditional",
        [
          Alcotest.test_case "fig6 lengths" `Quick test_fig6_lengths;
          Alcotest.test_case "frozen single start" `Quick
            test_fig6_frozen_single_start;
          Alcotest.test_case "deterministic" `Quick test_fig6_deterministic;
          Alcotest.test_case "golden tables (pqueue rewrite)" `Quick
            test_fig6_golden_tables;
          Alcotest.test_case "k=0 degenerates" `Quick test_conditional_k0;
          Alcotest.test_case "deadline violations" `Quick
            test_conditional_deadline_violation;
          Alcotest.test_case "track cap" `Quick test_conditional_track_cap;
          Alcotest.test_case "incremental matches reference (fig5)" `Quick
            test_incremental_matches_reference_fig5;
        ]
        @ sched_props );
      ( "slack",
        [
          Alcotest.test_case "fig5" `Quick test_slack_fig5;
          Alcotest.test_case "k=0 no slack" `Quick test_slack_k0_no_slack;
          Alcotest.test_case "fto" `Quick test_slack_fto;
        ]
        @ slack_props );
      ("metamorphic", metamorphic_props);
    ]
