(* Tests for the parallel strategy portfolio: deterministic-mode
   jobs-invariance, anytime-curve monotonicity, the compute-nft-once
   contract (pinned by cache lookup counts), the LNS engine and its
   diagnostics-driven targeting, deadline mode, the live race events and
   the Synthesis.portfolio option. *)

module Portfolio = Ftes_optim.Portfolio
module Incumbent = Ftes_optim.Incumbent
module Lns = Ftes_optim.Lns
module Tabu = Ftes_optim.Tabu
module Strategy = Ftes_optim.Strategy
module Evalcache = Ftes_optim.Evalcache
module Problem = Ftes_ftcpg.Problem
module Slack = Ftes_sched.Slack
module Graph = Ftes_app.Graph
module Events = Ftes_util.Events
module Gen = Ftes_workload.Gen

let inputs ?(processes = 10) ?(nodes = 3) ?(seed = 31) ?(k = 2) () =
  let app, arch, wcet =
    Gen.instance { Gen.default with processes; nodes; seed }
  in
  { Strategy.app; arch; wcet; k }

(* jobs = 1 in the base options on purpose: the portfolio forces member
   searches to jobs = 1 anyway, and the manual replay in the nft-once
   test must match the portfolio's evaluation pattern exactly. *)
let quick_tabu =
  { Tabu.default_options with Tabu.iterations = 25; sample = 8; jobs = 1 }

let run_portfolio ?(jobs = 1) ?members ?deadline_s ?(exchange = false) ?cache i
    =
  Portfolio.run
    ~opts:{ Portfolio.jobs; deadline_s; exchange; cache; tabu = quick_tabu }
    ?members i

let check_monotone what curve =
  let rec ok = function
    | (a : Incumbent.entry) :: (b :: _ as rest) ->
        b.Incumbent.cost < a.Incumbent.cost -. 1e-9 && ok rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) (what ^ ": curve strictly decreasing") true (ok curve)

(* ------------------------------------------------------------------ *)
(* Deterministic mode: outcomes invariant across jobs                  *)
(* ------------------------------------------------------------------ *)

let test_jobs_invariance () =
  let i = inputs () in
  let r1 = run_portfolio ~jobs:1 i in
  let r4 = run_portfolio ~jobs:4 i in
  Alcotest.(check string) "same winner"
    r1.Portfolio.winner.Portfolio.member.Portfolio.label
    r4.Portfolio.winner.Portfolio.member.Portfolio.label;
  Helpers.check_float "same winning length" r1.Portfolio.winner.Portfolio.length
    r4.Portfolio.winner.Portfolio.length;
  Helpers.check_float "same nft" r1.Portfolio.nft r4.Portfolio.nft;
  Helpers.check_float "same fto" r1.Portfolio.fto r4.Portfolio.fto;
  (* Every member's final length is invariant, not just the winner's:
     the shared cache is a pure performance layer and the incumbent
     cell is publish-only in deterministic mode. *)
  List.iter2
    (fun (a : Portfolio.member_outcome) (b : Portfolio.member_outcome) ->
      Alcotest.(check string) "member order preserved"
        a.Portfolio.member.Portfolio.label b.Portfolio.member.Portfolio.label;
      Helpers.check_float
        (a.Portfolio.member.Portfolio.label ^ ": same length")
        a.Portfolio.length b.Portfolio.length)
    r1.Portfolio.members r4.Portfolio.members;
  (* The interleaving of publications differs across jobs, but both
     curves must be monotone and converge to the same winning cost. *)
  check_monotone "jobs=1" r1.Portfolio.curve;
  check_monotone "jobs=4" r4.Portfolio.curve;
  let last curve =
    match List.rev curve with
    | (e : Incumbent.entry) :: _ -> e.Incumbent.cost
    | [] -> nan
  in
  Helpers.check_float "jobs=1 curve ends at the winner"
    r1.Portfolio.winner.Portfolio.length (last r1.Portfolio.curve);
  Helpers.check_float "jobs=4 curve ends at the winner"
    r4.Portfolio.winner.Portfolio.length (last r4.Portfolio.curve);
  (* The winner is the best member (match-or-beat by construction). *)
  List.iter
    (fun (o : Portfolio.member_outcome) ->
      Alcotest.(check bool)
        (o.Portfolio.member.Portfolio.label ^ ": winner <= member")
        true
        (r1.Portfolio.winner.Portfolio.length <= o.Portfolio.length +. 1e-9))
    r1.Portfolio.members

let test_repeat_determinism () =
  (* Same options twice: bit-identical result, not merely close. *)
  let i = inputs ~processes:8 ~seed:77 () in
  let a = run_portfolio ~jobs:2 i in
  let b = run_portfolio ~jobs:2 i in
  Alcotest.(check string) "winner" a.Portfolio.winner.Portfolio.member.Portfolio.label
    b.Portfolio.winner.Portfolio.member.Portfolio.label;
  Alcotest.(check bool) "exact length" true
    (a.Portfolio.winner.Portfolio.length
    = b.Portfolio.winner.Portfolio.length)

(* ------------------------------------------------------------------ *)
(* nft computed once and shared by every member                        *)
(* ------------------------------------------------------------------ *)

let test_nft_computed_once () =
  let i = inputs ~processes:8 ~seed:13 () in
  let strategy_members =
    List.filter
      (fun (m : Portfolio.member) ->
        match m.Portfolio.engine with
        | Portfolio.Strategy _ -> true
        | Portfolio.Lns _ -> false)
      (Portfolio.default_members ~seed:quick_tabu.Tabu.seed
         ~sample:quick_tabu.Tabu.sample ())
  in
  (* Manual replay: one nft baseline, then every member with the same
     per-member overrides the portfolio applies. *)
  let c1 = Evalcache.create () in
  let base = { quick_tabu with Tabu.cache = Some c1 } in
  let nft = Strategy.nft_length ~opts:base i in
  List.iter
    (fun (m : Portfolio.member) ->
      let opts =
        {
          base with
          Tabu.seed = m.Portfolio.seed;
          tenure = m.Portfolio.tenure;
          sample = m.Portfolio.sample;
        }
      in
      let name =
        match m.Portfolio.engine with
        | Portfolio.Strategy n -> n
        | Portfolio.Lns _ -> assert false
      in
      ignore (Strategy.run ~opts ~nft i name))
    strategy_members;
  let manual = Evalcache.stats c1 in
  (* The portfolio on a fresh cache must drive the exact same number of
     cache lookups: had any member recomputed the fault-free baseline,
     the extra search would show up here. *)
  let c2 = Evalcache.create () in
  let r = run_portfolio ~jobs:1 ~members:strategy_members ~cache:c2 i in
  let portfolio = Evalcache.stats c2 in
  Alcotest.(check int) "same cache lookups" manual.Evalcache.lookups
    portfolio.Evalcache.lookups;
  Alcotest.(check int) "same cache hits" manual.Evalcache.hits
    portfolio.Evalcache.hits;
  Helpers.check_float "nft matches the manual baseline" nft r.Portfolio.nft

(* ------------------------------------------------------------------ *)
(* The LNS engine and its diagnostics-driven targeting                 *)
(* ------------------------------------------------------------------ *)

let lns_opts =
  {
    Lns.default_options with
    Lns.seed = 5;
    restarts = 3;
    destroy = 2;
    repair_iterations = 12;
    sample = 8;
  }

let test_lns_improves_or_holds () =
  let p =
    Helpers.random_problem ~frozen:false ~mixed_policies:false ~processes:10
      ~nodes:3 ~k:2 ~seed:9 ()
  in
  let initial = Slack.length p in
  let best, len = Lns.optimize lns_opts p in
  Alcotest.(check bool) "never worse than the initial design" true
    (len <= initial +. 1e-9);
  Helpers.check_float "returned length matches the returned design" len
    (Slack.length best);
  (* Deterministic for fixed options. *)
  let _, len' = Lns.optimize lns_opts p in
  Alcotest.(check bool) "repeatable" true (len = len')

(* Rebuild [app] with a local deadline on one process (the graph is
   immutable; ids are dense and re-adding in order preserves them). *)
let with_local_deadline app pid d =
  let module App = Ftes_app.App in
  let g = app.App.graph in
  let b = Graph.Builder.create () in
  Array.iter
    (fun (pr : Graph.process) ->
      ignore
        (Graph.Builder.add_process b ~name:pr.Graph.pname
           ~overheads:pr.Graph.overheads ~release:pr.Graph.release
           ?local_deadline:
             (if pr.Graph.pid = pid then Some d else pr.Graph.local_deadline)))
    (Graph.processes g);
  Array.iter
    (fun (m : Graph.message) ->
      ignore
        (Graph.Builder.add_message b ~name:m.Graph.mname ~src:m.Graph.src
           ~dst:m.Graph.dst ~size:m.Graph.size))
    (Graph.messages g);
  App.make ~transparency:app.App.transparency
    ~graph:(Graph.Builder.build b) ~deadline:app.App.deadline
    ~period:app.App.period ()

let test_diagnostic_targets () =
  let p =
    Helpers.random_problem ~frozen:false ~mixed_policies:false ~processes:6
      ~nodes:2 ~k:2 ~seed:17 ()
  in
  (* An unmeetable local deadline on a sink process: every scenario's
     validation reports local-deadline-missed carrying that pid, so the
     diagnosis must name it. *)
  let sink = List.hd (Graph.sinks (Problem.graph p)) in
  let bad =
    Problem.make
      ~app:(with_local_deadline p.Problem.app sink 1e-3)
      ~arch:p.Problem.arch ~wcet:p.Problem.wcet ~k:p.Problem.k
      ~policies:p.Problem.policies ~mapping:p.Problem.mapping
  in
  let targets = Lns.diagnostic_targets bad in
  Alcotest.(check bool) "failing design yields targets" true (targets <> []);
  Alcotest.(check bool) "the guilty process is named" true
    (List.mem sink targets);
  let nprocs = Graph.process_count (Problem.graph p) in
  List.iter
    (fun pid ->
      Alcotest.(check bool)
        (Printf.sprintf "pid %d in range" pid)
        true
        (pid >= 0 && pid < nprocs))
    targets;
  (* A clean design blames nobody through the diagnostics path. *)
  Alcotest.(check (list int)) "clean design: no diagnostic targets" []
    (Lns.diagnostic_targets p);
  (* The estimator fallback always has an opinion. *)
  Alcotest.(check bool) "slack targets non-empty" true
    (Lns.slack_targets p <> [])

(* ------------------------------------------------------------------ *)
(* Anytime mode: deadline and exchange                                 *)
(* ------------------------------------------------------------------ *)

let test_deadline_mode () =
  let i = inputs ~processes:10 ~seed:41 () in
  (* A deadline short enough to cut the race off mid-search: the result
     must still be a well-formed anytime answer. *)
  let r = run_portfolio ~jobs:2 ~deadline_s:0.05 i in
  Alcotest.(check int) "every member reports"
    (List.length (Portfolio.default_members ~seed:quick_tabu.Tabu.seed
                    ~sample:quick_tabu.Tabu.sample ()))
    (List.length r.Portfolio.members);
  List.iter
    (fun (o : Portfolio.member_outcome) ->
      Alcotest.(check bool)
        (o.Portfolio.member.Portfolio.label ^ ": finite length")
        true
        (Float.is_finite o.Portfolio.length && o.Portfolio.length > 0.))
    r.Portfolio.members;
  check_monotone "deadline curve" r.Portfolio.curve;
  Alcotest.(check bool) "winner tagged" true
    (r.Portfolio.winner.Portfolio.member.Portfolio.label <> "")

let test_exchange_mode () =
  (* Incumbent exchange changes the aspiration threshold, never the
     well-formedness: monotone curve, winner still the best member. *)
  let i = inputs ~processes:8 ~seed:59 () in
  let r = run_portfolio ~jobs:2 ~exchange:true i in
  check_monotone "exchange curve" r.Portfolio.curve;
  List.iter
    (fun (o : Portfolio.member_outcome) ->
      Alcotest.(check bool) "winner <= member" true
        (r.Portfolio.winner.Portfolio.length <= o.Portfolio.length +. 1e-9))
    r.Portfolio.members

(* ------------------------------------------------------------------ *)
(* The live race events                                                *)
(* ------------------------------------------------------------------ *)

let test_race_events () =
  let i = inputs ~processes:8 ~seed:23 () in
  let starts = ref [] and finishes = ref [] and incumbents = ref 0 in
  let capture (e : Events.event) =
    match e.Events.payload with
    | Events.Worker_start { member } -> starts := member :: !starts
    | Events.Worker_finish { member; cost; wall_s } ->
        Alcotest.(check bool) (member ^ ": finite cost") true
          (Float.is_finite cost && wall_s >= 0.);
        finishes := member :: !finishes
    | Events.Incumbent { source; _ } ->
        if String.length source >= 10 && String.sub source 0 10 = "portfolio:"
        then incr incumbents
    | _ -> ()
  in
  Events.enable ();
  let sink = Events.add_sink capture in
  let r = run_portfolio ~jobs:2 i in
  Events.drain ();
  Events.remove_sink sink;
  Events.disable ();
  let n = List.length r.Portfolio.members in
  Alcotest.(check int) "one start per member" n (List.length !starts);
  Alcotest.(check int) "one finish per member" n (List.length !finishes);
  List.iter
    (fun (o : Portfolio.member_outcome) ->
      let l = o.Portfolio.member.Portfolio.label in
      Alcotest.(check bool) (l ^ " started") true (List.mem l !starts);
      Alcotest.(check bool) (l ^ " finished") true (List.mem l !finishes))
    r.Portfolio.members;
  Alcotest.(check bool) "portfolio-tagged incumbent events seen" true
    (!incumbents > 0)

(* ------------------------------------------------------------------ *)
(* Synthesis integration                                               *)
(* ------------------------------------------------------------------ *)

let test_synthesis_portfolio_option () =
  let module Synthesis = Ftes_core.Synthesis in
  let i = inputs ~processes:8 ~seed:3 () in
  let options =
    {
      Synthesis.default_options with
      Synthesis.tabu = quick_tabu;
      conditional = false;
      portfolio =
        Some { Portfolio.default_options with Portfolio.jobs = 2 };
    }
  in
  let s =
    Synthesis.synthesize ~options ~app:i.Strategy.app ~arch:i.Strategy.arch
      ~wcet:i.Strategy.wcet ~k:i.Strategy.k ()
  in
  Alcotest.(check bool) "estimate positive" true
    (s.Synthesis.estimate.Slack.length > 0.);
  (* The portfolio always computes the fault-free baseline, so the FTO
     is reported even without compute_fto. *)
  Alcotest.(check bool) "fto reported" true (s.Synthesis.fto <> None);
  (* The winning design is reproducible: a direct portfolio run with
     the same base options lands on the same estimated length. *)
  let direct = run_portfolio ~jobs:1 i in
  Helpers.check_float "matches a direct portfolio run"
    direct.Portfolio.winner.Portfolio.length
    s.Synthesis.estimate.Slack.length

let () =
  Alcotest.run "portfolio"
    [
      ( "deterministic mode",
        [
          Alcotest.test_case "jobs {1,4} invariance + monotone curve" `Slow
            test_jobs_invariance;
          Alcotest.test_case "repeat determinism" `Slow
            test_repeat_determinism;
          Alcotest.test_case "nft computed once (cache lookup pin)" `Slow
            test_nft_computed_once;
        ] );
      ( "lns engine",
        [
          Alcotest.test_case "improves or holds, repeatable" `Slow
            test_lns_improves_or_holds;
          Alcotest.test_case "diagnostic targets" `Quick
            test_diagnostic_targets;
        ] );
      ( "anytime mode",
        [
          Alcotest.test_case "deadline cut-off" `Quick test_deadline_mode;
          Alcotest.test_case "incumbent exchange" `Slow test_exchange_mode;
        ] );
      ( "integration",
        [
          Alcotest.test_case "race events" `Slow test_race_events;
          Alcotest.test_case "Synthesis portfolio option" `Slow
            test_synthesis_portfolio_option;
        ] );
    ];
  Ftes_util.Par.shutdown ()
