(* End-to-end integration tests: full synthesis runs, cross-validation
   of the schedulers by fault injection, the paper's worked examples and
   miniature versions of the evaluation experiments. *)

module Synthesis = Ftes_core.Synthesis
module Experiments = Ftes_core.Experiments
module Strategy = Ftes_optim.Strategy
module Problem = Ftes_ftcpg.Problem
module Ftcpg = Ftes_ftcpg.Ftcpg
module Cond = Ftes_ftcpg.Cond
module Table = Ftes_sched.Table
module Sim = Ftes_sim.Sim

(* ------------------------------------------------------------------ *)
(* Paper examples end to end                                           *)
(* ------------------------------------------------------------------ *)

let test_fig1_headline () =
  let rows = Experiments.fig1 () in
  let value label = List.assoc label rows in
  Helpers.check_float "130 ms worst case" 130.
    (value "P1, 2 checkpoints, 1 fault (Fig. 1c)");
  Helpers.check_float "145 ms re-execution" 145.
    (value "P1, 1 checkpoint, 1 fault (re-execution)");
  (* Checkpointing beats plain re-execution under a fault. *)
  Alcotest.(check bool) "checkpointing wins" true
    (value "P1, 2 checkpoints, 1 fault (Fig. 1c)"
    < value "P1, 1 checkpoint, 1 fault (re-execution)")

let test_fig2_tradeoff () =
  let rows = Experiments.fig2 () in
  let value label = List.assoc label rows in
  (* Active replication completes at the same time with or without a
     fault; primary-backup pays for the late backup start. *)
  Helpers.check_float "active = no-fault" (value "active replication, no fault")
    (value "active replication, 1 fault");
  Alcotest.(check bool) "primary-backup slower under fault" true
    (value "primary-backup, 1 fault" > value "active replication, 1 fault")

let test_fig4_cases () =
  let rows = Experiments.fig4 () in
  Alcotest.(check int) "three cases" 3 (List.length rows);
  List.iter (fun (_, v) -> Alcotest.(check bool) "positive" true (v > 0.)) rows

let test_fig6_schedule () =
  let t = Experiments.fig6 () in
  Alcotest.(check bool) "meets deadline" true (Table.meets_deadline t);
  Alcotest.(check (list string)) "validates" [] (Sim.validate_messages t)

(* ------------------------------------------------------------------ *)
(* Synthesis end to end                                                *)
(* ------------------------------------------------------------------ *)

let test_synthesize_fig3_all_strategies () =
  let app = Ftes_app.App.fig3 () in
  let arch, wcet = Ftes_arch.Examples.fig3 () in
  List.iter
    (fun strategy ->
      let result =
        Synthesis.synthesize
          ~options:
            { Synthesis.default_options with strategy; compute_fto = true }
          ~app ~arch ~wcet ~k:1 ()
      in
      let name = Strategy.name_to_string strategy in
      Alcotest.(check bool) (name ^ " schedulable") true
        (Synthesis.schedulable result);
      Alcotest.(check bool) (name ^ " has fto") true
        (result.Synthesis.fto <> None);
      Alcotest.(check (list string)) (name ^ " validates") []
        (Synthesis.validate_messages result))
    [ Strategy.MXR; Strategy.MX; Strategy.SFX; Strategy.MC_global ]

let test_synthesize_of_problem () =
  let p = Helpers.fig5_problem () in
  let r = Synthesis.of_problem p in
  Alcotest.(check bool) "tables" true (r.Synthesis.table <> None);
  Alcotest.(check bool) "schedulable" true (Synthesis.schedulable r)

let test_synthesize_over_budget () =
  let p = Helpers.fig5_problem () in
  let r = Synthesis.of_problem ~max_vertices:3 p in
  Alcotest.(check bool) "no ftcpg" true (r.Synthesis.ftcpg = None);
  Alcotest.(check bool) "no tables" true (r.Synthesis.table = None);
  (* The estimate still drives schedulability. *)
  Alcotest.(check bool) "estimate used" true (Synthesis.schedulable r)

let test_merged_application_synthesis () =
  (* Two periodic applications merged over their hyperperiod, then
     synthesized and fault-injected. *)
  let mk_source period deadline =
    let b = Ftes_app.Graph.Builder.create () in
    let o = Ftes_app.Overheads.make ~alpha:2. ~mu:2. ~chi:1. in
    let a = Ftes_app.Graph.Builder.add_process b ~overheads:o ~name:"A" in
    let c = Ftes_app.Graph.Builder.add_process b ~overheads:o ~name:"B" in
    ignore (Ftes_app.Graph.Builder.add_message b ~src:a ~dst:c ~size:2.);
    {
      Ftes_app.Merge.graph = Ftes_app.Graph.Builder.build b;
      period;
      deadline;
      transparency = Ftes_app.Transparency.none;
    }
  in
  let app = Ftes_app.Merge.merge [ mk_source 400. 400.; mk_source 200. 180. ] in
  let nodes = 2 in
  let arch =
    Ftes_arch.Arch.make ~node_count:nodes
      ~bus:(Ftes_arch.Arch.default_bus ~node_count:nodes)
      ()
  in
  let n = Ftes_app.Graph.process_count app.Ftes_app.App.graph in
  let wcet = Ftes_arch.Wcet.create ~procs:n ~nodes in
  for pid = 0 to n - 1 do
    Ftes_arch.Wcet.set wcet ~pid ~nid:0 20.;
    Ftes_arch.Wcet.set wcet ~pid ~nid:1 25.
  done;
  let result = Synthesis.synthesize ~app ~arch ~wcet ~k:1 () in
  Alcotest.(check bool) "schedulable" true (Synthesis.schedulable result);
  Alcotest.(check (list string)) "validates" []
    (Synthesis.validate_messages result);
  (* Local deadlines of the short application's instances are enforced
     by the validation above; check they exist. *)
  let g = app.Ftes_app.App.graph in
  let b1 = Option.get (Ftes_app.Graph.find_process g "B@1") in
  Alcotest.(check bool) "instance deadline present" true
    ((Ftes_app.Graph.process g b1).Ftes_app.Graph.local_deadline <> None)

(* ------------------------------------------------------------------ *)
(* Cross-validation fuzz                                               *)
(* ------------------------------------------------------------------ *)

let test_fuzz_end_to_end () =
  (* Mixed policies, transparency, several node counts and fault
     budgets: conditional schedules must always pass fault-injection
     validation. *)
  let violations = ref [] in
  for seed = 1 to 40 do
    let processes = 4 + (seed mod 8) in
    let nodes = 1 + (seed mod 3) in
    let k = 1 + (seed mod 2) in
    let p = Helpers.random_problem ~processes ~nodes ~k ~seed () in
    let t = Ftes_sched.Conditional.schedule (Ftcpg.build p) in
    match Sim.validate t with
    | [] -> ()
    | vs -> violations := (seed, List.length vs) :: !violations
  done;
  Alcotest.(check (list (pair int int))) "all instances clean" [] !violations

let test_single_bus_end_to_end () =
  (* The contention bus (non-TDMA) through the whole pipeline. *)
  let violations = ref 0 in
  for seed = 1 to 12 do
    let spec =
      {
        Ftes_workload.Gen.default with
        processes = 6 + (seed mod 5);
        nodes = 2;
        seed;
        frozen_msg_prob = 0.2;
      }
    in
    let app, _, wcet = Ftes_workload.Gen.instance spec in
    let arch =
      Ftes_arch.Arch.make ~node_count:2
        ~bus:(Ftes_arch.Bus.single ~bandwidth:1. ())
        ()
    in
    let policies = Problem.default_policies ~app ~k:1 in
    let mapping = Problem.fastest_mapping ~app ~wcet ~policies in
    let p = Problem.make ~app ~arch ~wcet ~k:1 ~policies ~mapping in
    let t = Ftes_sched.Conditional.schedule (Ftcpg.build p) in
    violations := !violations + List.length (Sim.validate t)
  done;
  Alcotest.(check int) "single-bus instances validate" 0 !violations

let test_simulated_makespans_match_tracks () =
  (* For every scenario, the simulator's makespan equals the track
     makespan recorded by the scheduler. *)
  let p = Helpers.random_problem ~processes:7 ~nodes:2 ~k:2 ~seed:77 () in
  let t = Ftes_sched.Conditional.schedule (Ftcpg.build p) in
  List.iter
    (fun tr ->
      let o = Sim.run t ~scenario:tr.Table.scenario in
      Helpers.check_float ~eps:1e-6 "makespan" tr.Table.makespan o.Sim.makespan)
    t.Table.tracks

(* ------------------------------------------------------------------ *)
(* Miniature evaluation experiments                                    *)
(* ------------------------------------------------------------------ *)

let quick_tabu =
  { Ftes_optim.Tabu.default_options with iterations = 40; sample = 8 }

let test_fig7_miniature () =
  let s = Experiments.fig7 ~seeds_per_point:1 ~sizes:[ 20 ] ~tabu:quick_tabu () in
  Alcotest.(check int) "three curves" 3 (List.length s.Experiments.curves);
  let dev name = List.hd (List.assoc name s.Experiments.curves) in
  (* The paper's ordering: MR is by far the worst, MX the closest to
     MXR, SFX in between; all deviations are non-negative. *)
  Alcotest.(check bool) "MR worst" true (dev "MR" >= dev "MX");
  Alcotest.(check bool) "MR dominates SFX" true (dev "MR" >= dev "SFX");
  Alcotest.(check bool) "MX non-negative" true (dev "MX" >= -1e-6);
  Alcotest.(check bool) "MR large" true (dev "MR" > 20.)

let test_fig8_miniature () =
  let s = Experiments.fig8 ~seeds_per_point:1 ~sizes:[ 40 ] ~tabu:quick_tabu () in
  match s.Experiments.curves with
  | [ (_, [ dev ]) ] ->
      (* Global checkpoint optimization reduces the overhead. *)
      Alcotest.(check bool) "positive deviation" true (dev >= 0.)
  | _ -> Alcotest.fail "unexpected series shape"

let test_transparency_tradeoff () =
  let s =
    Experiments.transparency_tradeoff ~seeds:2 ~levels:[ 0.; 1.0 ]
      ~processes:6 ()
  in
  match s.Experiments.curves with
  | (_, [ base_len; full_len ]) :: _ ->
      Helpers.check_float "baseline is 100%" 100. base_len;
      (* Transparency can only constrain the schedule further. *)
      Alcotest.(check bool) "full transparency costs time" true
        (full_len >= 100. -. 1e-6)
  | _ -> Alcotest.fail "unexpected series shape"

(* ------------------------------------------------------------------ *)
(* Reliability-driven choice of k                                      *)
(* ------------------------------------------------------------------ *)

module R = Ftes_core.Reliability

let test_reliability_poisson () =
  (* lambda = 1: P(N <= 0) = e^-1, P(N <= 1) = 2 e^-1. *)
  Helpers.check_float ~eps:1e-9 "k=0" (exp (-1.))
    (R.prob_at_most_k ~rate:0.01 ~period:100. ~k:0);
  Helpers.check_float ~eps:1e-9 "k=1"
    (2. *. exp (-1.))
    (R.prob_at_most_k ~rate:0.01 ~period:100. ~k:1);
  Helpers.check_float ~eps:1e-9 "zero rate" 1.
    (R.prob_at_most_k ~rate:0. ~period:100. ~k:0);
  Helpers.check_float ~eps:1e-9 "complement" 1.
    (R.prob_at_most_k ~rate:0.01 ~period:100. ~k:2
    +. R.prob_more_than_k ~rate:0.01 ~period:100. ~k:2)

let test_reliability_min_k () =
  let rate = 1e-4 and period = 500. in
  let k = R.min_k ~rate ~period ~target:0.999999 () in
  Alcotest.(check bool) "reaches target" true
    (R.prob_at_most_k ~rate ~period ~k >= 0.999999);
  Alcotest.(check bool) "minimal" true
    (k = 0 || R.prob_at_most_k ~rate ~period ~k:(k - 1) < 0.999999);
  Alcotest.check_raises "unreachable"
    (Invalid_argument
       "Reliability.min_k: even k = 2 does not reach the target") (fun () ->
      ignore (R.min_k ~max_k:2 ~rate:1. ~period:100. ~target:0.999999 ()))

let test_reliability_monotone () =
  let rate = 2e-3 and period = 300. in
  let rec go k =
    if k >= 8 then ()
    else begin
      Alcotest.(check bool) "monotone in k" true
        (R.prob_at_most_k ~rate ~period ~k
        <= R.prob_at_most_k ~rate ~period ~k:(k + 1) +. 1e-12);
      go (k + 1)
    end
  in
  go 0;
  Helpers.check_float ~eps:1e-9 "mission"
    (R.prob_at_most_k ~rate ~period ~k:2 ** 10.)
    (R.mission_reliability ~rate ~period ~k:2 ~cycles:10.);
  Helpers.check_float "cycles" 12000. (R.cycles_in ~period:300. ~hours:1.)

let test_k_for_size () =
  Alcotest.(check int) "20 -> 3" 3 (Experiments.k_for_size 20);
  Alcotest.(check int) "100 -> 7" 7 (Experiments.k_for_size 100)

let () =
  Alcotest.run "integration"
    [
      ( "paper-examples",
        [
          Alcotest.test_case "fig1 headline numbers" `Quick test_fig1_headline;
          Alcotest.test_case "fig2 trade-off" `Quick test_fig2_tradeoff;
          Alcotest.test_case "fig4 cases" `Quick test_fig4_cases;
          Alcotest.test_case "fig6 schedule validates" `Quick test_fig6_schedule;
        ] );
      ( "synthesis",
        [
          Alcotest.test_case "fig3 all strategies" `Slow
            test_synthesize_fig3_all_strategies;
          Alcotest.test_case "of_problem" `Quick test_synthesize_of_problem;
          Alcotest.test_case "over budget falls back" `Quick
            test_synthesize_over_budget;
          Alcotest.test_case "merged application" `Quick
            test_merged_application_synthesis;
        ] );
      ( "cross-validation",
        [
          Alcotest.test_case "fuzz end to end" `Slow test_fuzz_end_to_end;
          Alcotest.test_case "single bus end to end" `Slow
            test_single_bus_end_to_end;
          Alcotest.test_case "makespans match tracks" `Quick
            test_simulated_makespans_match_tracks;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "fig7 miniature" `Slow test_fig7_miniature;
          Alcotest.test_case "fig8 miniature" `Slow test_fig8_miniature;
          Alcotest.test_case "transparency trade-off" `Slow
            test_transparency_tradeoff;
          Alcotest.test_case "k for size" `Quick test_k_for_size;
        ] );
      ( "reliability",
        [
          Alcotest.test_case "poisson tail" `Quick test_reliability_poisson;
          Alcotest.test_case "min k" `Quick test_reliability_min_k;
          Alcotest.test_case "monotonicity + mission" `Quick
            test_reliability_monotone;
        ] );
    ];
  Ftes_util.Par.shutdown ()
