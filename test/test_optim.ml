(* Tests for the design-optimization layer: checkpoint-count
   optimization (closed form vs. brute force), tabu search, steepest
   descent and the Fig. 7 strategies. *)

module Checkpoint = Ftes_optim.Checkpoint
module Tabu = Ftes_optim.Tabu
module Descent = Ftes_optim.Descent
module Strategy = Ftes_optim.Strategy
module Problem = Ftes_ftcpg.Problem
module Mapping = Ftes_ftcpg.Mapping
module Policy = Ftes_app.Policy
module Slack = Ftes_sched.Slack
module Overheads = Ftes_app.Overheads

(* ------------------------------------------------------------------ *)
(* Checkpoint optimization                                             *)
(* ------------------------------------------------------------------ *)

let brute_force_optimum ~c o ~k ~max_checkpoints =
  let best = ref 1 and best_w = ref infinity in
  for n = 1 to max_checkpoints do
    let w = Checkpoint.worst_case ~c o ~k ~checkpoints:n in
    if w < !best_w -. 1e-12 then begin
      best := n;
      best_w := w
    end
  done;
  !best

let test_local_optimum_fig1 () =
  (* C = 60, alpha = 10, chi = 5, k = 2: n* = sqrt(120/15) ~ 2.83. *)
  let n = Checkpoint.local_optimum ~c:60. Overheads.fig1 ~k:2 in
  Alcotest.(check int) "matches brute force"
    (brute_force_optimum ~c:60. Overheads.fig1 ~k:2 ~max_checkpoints:100)
    n

let test_local_optimum_degenerate () =
  Alcotest.(check int) "k=0" 1
    (Checkpoint.local_optimum ~c:60. Overheads.fig1 ~k:0);
  Alcotest.(check int) "zero wcet" 1
    (Checkpoint.local_optimum ~c:0. Overheads.fig1 ~k:3);
  (* Zero overheads: more checkpoints always help, up to the cap. *)
  Alcotest.(check int) "zero overheads hit cap" 16
    (Checkpoint.local_optimum ~max_checkpoints:16 ~c:60.
       (Overheads.make ~alpha:0. ~mu:1. ~chi:0.)
       ~k:2)

let checkpoint_props =
  let arb =
    QCheck.make
      ~print:(fun (c, a, x, k) ->
        Printf.sprintf "c=%g alpha=%g chi=%g k=%d" c a x k)
      QCheck.Gen.(
        quad (float_range 1. 300.) (float_range 0.1 30.) (float_range 0.1 30.)
          (int_range 1 6))
  in
  [
    Helpers.qtest ~count:200 "closed form equals brute force" arb
      (fun (c, a, x, k) ->
        let o = Overheads.make ~alpha:a ~mu:1. ~chi:x in
        Checkpoint.local_optimum ~max_checkpoints:64 ~c o ~k
        = brute_force_optimum ~c o ~k ~max_checkpoints:64);
  ]

let test_assign_local () =
  let p = Helpers.fig3_problem ~k:2 in
  let p' = Checkpoint.assign_local p in
  Array.iteri
    (fun pid policy ->
      let plan = policy.Policy.copies.(0) in
      let c = Problem.copy_wcet p' ~pid ~copy:0 in
      let o =
        (Ftes_app.Graph.process (Problem.graph p') pid).Ftes_app.Graph.overheads
      in
      Alcotest.(check int)
        (Printf.sprintf "process %d local optimum" pid)
        (Checkpoint.local_optimum ~c o ~k:plan.Policy.recoveries)
        plan.Policy.checkpoints)
    p'.Problem.policies

let test_global_never_worse () =
  let p = Helpers.fig3_problem ~k:2 in
  let local = Checkpoint.assign_local p in
  let glob = Checkpoint.global_optimize local in
  Alcotest.(check bool) "global <= local" true
    (Slack.length glob <= Slack.length local +. 1e-9)

let global_props =
  let arb =
    QCheck.make
      ~print:(fun (seed, n) -> Printf.sprintf "seed=%d n=%d" seed n)
      QCheck.Gen.(pair (int_bound 5_000) (int_range 4 14))
  in
  [
    Helpers.qtest ~count:25 "global optimization never increases length" arb
      (fun (seed, n) ->
        let p =
          Helpers.random_problem ~processes:n ~nodes:3 ~k:2 ~seed
            ~mixed_policies:false ~frozen:false ()
        in
        let local = Checkpoint.assign_local p in
        let glob = Checkpoint.global_optimize local in
        Slack.length glob <= Slack.length local +. 1e-9);
  ]

(* ------------------------------------------------------------------ *)
(* Tabu + descent                                                      *)
(* ------------------------------------------------------------------ *)

let test_tabu_improves_or_equals () =
  let p =
    Helpers.random_problem ~processes:12 ~nodes:3 ~k:2 ~seed:17
      ~mixed_policies:false ~frozen:false ()
  in
  let initial = Slack.length p in
  let best, best_len = Tabu.optimize Tabu.default_options p in
  Alcotest.(check bool) "never worse" true (best_len <= initial +. 1e-9);
  Helpers.check_float "reported length matches" (Slack.length best) best_len

let test_tabu_respects_nft_objective () =
  let p =
    Helpers.random_problem ~processes:10 ~nodes:3 ~k:2 ~seed:5
      ~mixed_policies:false ~frozen:false ()
  in
  let opts = { Tabu.default_options with ft_objective = false } in
  let best, best_len = Tabu.optimize opts p in
  Helpers.check_float "nft objective" (Slack.length ~ft:false best) best_len

(* Aspiration semantics: a tabu move is admissible when it beats the
   global best. One process on three nodes (WCET 30/20/10), starting on
   the slowest, an effectively infinite tenure and one candidate move
   per iteration: after the first accepted move the process is tabu for
   the rest of the search, so reaching the fastest node — from any
   intermediate state, under any draw order — requires aspiration. *)
let test_tabu_aspiration_by_global_best () =
  let b = Ftes_app.Graph.Builder.create () in
  let _pid = Ftes_app.Graph.Builder.add_process b ~name:"P1" in
  let graph = Ftes_app.Graph.Builder.build b in
  let app = Ftes_app.App.make ~graph ~deadline:1000. ~period:1000. () in
  let arch =
    Ftes_arch.Arch.make ~node_count:3
      ~bus:(Ftes_arch.Arch.default_bus ~node_count:3)
      ()
  in
  let wcet = Ftes_arch.Wcet.create ~procs:1 ~nodes:3 in
  List.iteri (fun nid c -> Ftes_arch.Wcet.set wcet ~pid:0 ~nid c)
    [ 30.; 20.; 10. ];
  let policies = Problem.default_policies ~app ~k:1 in
  let p =
    Problem.make ~app ~arch ~wcet ~k:1 ~policies
      ~mapping:(Mapping.of_array [| [| 0 |] |])
  in
  let opts =
    {
      Tabu.default_options with
      iterations = 60;
      sample = 1;
      tenure = 1000;
      stall_limit = 1000;
      policy_moves = false;
      remap_moves = true;
      jobs = 1;
    }
  in
  List.iter
    (fun seed ->
      let best, _ = Tabu.optimize { opts with seed } p in
      Alcotest.(check int)
        (Printf.sprintf "seed %d settles on the fastest node" seed)
        2
        (Mapping.node_of best.Problem.mapping ~pid:0 ~copy:0))
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]

(* Regression for the tenure-aliasing bug: tenures used to be keyed by
   pid alone, so a remap of one replica copy wrongly vetoed a policy
   switch on the same process (and remaps of its other copies). The
   locus keying keeps the distinct design decisions in distinct
   slots. *)
let test_tenure_locus_no_aliasing () =
  let t = Tabu.Tenure.create () in
  let remap01 = Tabu.Remap { pid = 0; copy = 1; nid = 2 } in
  Tabu.Tenure.mark t ~iter:1 ~tenure:8 remap01;
  Alcotest.(check bool) "same locus is vetoed" true
    (Tabu.Tenure.active t ~iter:2 remap01);
  (* Same locus, different target node: still vetoed (the tenure forbids
     re-moving the copy, wherever it would go). *)
  Alcotest.(check bool) "same copy, other node vetoed" true
    (Tabu.Tenure.active t ~iter:2 (Tabu.Remap { pid = 0; copy = 1; nid = 0 }));
  (* The pre-fix aliases must NOT be vetoed. *)
  Alcotest.(check bool) "policy switch on same pid admissible" false
    (Tabu.Tenure.active t ~iter:2 (Tabu.Set_policy { pid = 0; kind = Tabu.Repl }));
  Alcotest.(check bool) "other copy of same pid admissible" false
    (Tabu.Tenure.active t ~iter:2 (Tabu.Remap { pid = 0; copy = 0; nid = 2 }));
  (* Policy switches likewise do not veto remaps. *)
  Tabu.Tenure.mark t ~iter:1 ~tenure:8 (Tabu.Set_policy { pid = 3; kind = Tabu.Reexec });
  Alcotest.(check bool) "policy mark vetoes policy" true
    (Tabu.Tenure.active t ~iter:2 (Tabu.Set_policy { pid = 3; kind = Tabu.Repl }));
  Alcotest.(check bool) "policy mark spares remap" false
    (Tabu.Tenure.active t ~iter:2 (Tabu.Remap { pid = 3; copy = 0; nid = 1 }));
  (* Tenure expiry: vetoed strictly before iter + tenure. *)
  Alcotest.(check bool) "active just before expiry" true
    (Tabu.Tenure.active t ~iter:8 remap01);
  Alcotest.(check bool) "expired at iter + tenure" false
    (Tabu.Tenure.active t ~iter:9 remap01)

let test_dedup_moves () =
  let a = Tabu.Remap { pid = 0; copy = 0; nid = 1 } in
  let b = Tabu.Set_policy { pid = 1; kind = Tabu.Repl } in
  let c = Tabu.Remap { pid = 2; copy = 1; nid = 0 } in
  Alcotest.(check bool) "first occurrence kept, order preserved" true
    (Tabu.dedup_moves [ a; b; a; c; b; a ] = [ a; b; c ]);
  Alcotest.(check bool) "no duplicates untouched" true
    (Tabu.dedup_moves [ c; b; a ] = [ c; b; a ]);
  Alcotest.(check bool) "empty" true (Tabu.dedup_moves [] = [])

let test_reassign_policy () =
  let p = Helpers.fig3_problem ~k:2 in
  let p' = Tabu.reassign_policy ~k:2 ~wcet:p.Problem.wcet p ~pid:0 Tabu.Repl in
  Alcotest.(check int) "3 copies" 3
    (Policy.replica_count p'.Problem.policies.(0));
  Alcotest.(check int) "mapping follows" 3
    (Mapping.copy_count p'.Problem.mapping ~pid:0);
  (* Copy 0 keeps its original node. *)
  Alcotest.(check int) "copy 0 kept"
    (Mapping.node_of p.Problem.mapping ~pid:0 ~copy:0)
    (Mapping.node_of p'.Problem.mapping ~pid:0 ~copy:0);
  let p'' = Tabu.reassign_policy ~k:2 ~wcet:p.Problem.wcet p' ~pid:0 Tabu.Combined in
  Alcotest.(check int) "combined has 2 copies" 2
    (Policy.replica_count p''.Problem.policies.(0));
  Alcotest.(check bool) "still tolerates k" true
    (Policy.tolerates p''.Problem.policies.(0) ~k:2)

let test_descent_policy_sweep () =
  let p =
    Helpers.random_problem ~processes:10 ~nodes:4 ~k:3 ~seed:3
      ~mixed_policies:false ~frozen:false ()
  in
  let s = Descent.policy_sweep p in
  Alcotest.(check bool) "never worse" true
    (Slack.length s <= Slack.length p +. 1e-9);
  (* A second sweep from the local minimum changes nothing. *)
  let s2 = Descent.policy_sweep s in
  Helpers.check_float "fixpoint" (Slack.length s) (Slack.length s2)

let test_descent_remap_sweep () =
  let p =
    Helpers.random_problem ~processes:8 ~nodes:3 ~k:2 ~seed:9
      ~mixed_policies:false ~frozen:false ()
  in
  let s = Descent.remap_sweep p in
  Alcotest.(check bool) "never worse" true
    (Slack.length s <= Slack.length p +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Strategies                                                          *)
(* ------------------------------------------------------------------ *)

let small_inputs ~seed =
  let spec =
    { Ftes_workload.Gen.default with processes = 12; nodes = 3; seed }
  in
  let app, arch, wcet = Ftes_workload.Gen.instance spec in
  { Strategy.app; arch; wcet; k = 2 }

let test_strategies_basic () =
  let inputs = small_inputs ~seed:21 in
  let nft = Strategy.nft_length inputs in
  Alcotest.(check bool) "nft positive" true (nft > 0.);
  List.iter
    (fun name ->
      let o = Strategy.run ~nft inputs name in
      Alcotest.(check bool)
        (Strategy.name_to_string name ^ " ft >= nft")
        true
        (o.Strategy.length >= nft -. 1e-6);
      Alcotest.(check bool)
        (Strategy.name_to_string name ^ " fto consistent")
        true
        (Float.abs
           (o.Strategy.fto
           -. ((o.Strategy.length -. nft) /. nft *. 100.))
        < 1e-6);
      (* The optimized configuration still tolerates k faults. *)
      Array.iter
        (fun policy ->
          Alcotest.(check bool) "tolerates" true (Policy.tolerates policy ~k:2))
        o.Strategy.problem.Problem.policies)
    Strategy.all_names

let test_mxr_never_worse_than_mx () =
  List.iter
    (fun seed ->
      let inputs = small_inputs ~seed in
      let nft = Strategy.nft_length inputs in
      let mx = Strategy.run ~nft inputs Strategy.MX in
      let mxr = Strategy.run ~nft inputs Strategy.MXR in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: MXR <= MX" seed)
        true
        (mxr.Strategy.length <= mx.Strategy.length +. 1e-6))
    [ 1; 2; 3; 4; 5 ]

let test_mc_global_never_worse_than_local () =
  List.iter
    (fun seed ->
      let inputs = small_inputs ~seed in
      let nft = Strategy.nft_length inputs in
      let local = Strategy.run ~nft inputs Strategy.MC_local in
      let glob =
        Checkpoint.global_optimize
          (Checkpoint.assign_local local.Strategy.problem)
      in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: global <= local" seed)
        true
        (Slack.length glob <= local.Strategy.length +. 1e-6))
    [ 11; 12; 13 ]

let () =
  Alcotest.run "optim"
    [
      ( "checkpoint",
        [
          Alcotest.test_case "fig1 local optimum" `Quick test_local_optimum_fig1;
          Alcotest.test_case "degenerate cases" `Quick
            test_local_optimum_degenerate;
          Alcotest.test_case "assign_local" `Quick test_assign_local;
          Alcotest.test_case "global never worse" `Quick test_global_never_worse;
        ]
        @ checkpoint_props @ global_props );
      ( "tabu+descent",
        [
          Alcotest.test_case "tabu improves or equals" `Quick
            test_tabu_improves_or_equals;
          Alcotest.test_case "nft objective" `Quick
            test_tabu_respects_nft_objective;
          Alcotest.test_case "aspiration by global best" `Quick
            test_tabu_aspiration_by_global_best;
          Alcotest.test_case "tenure locus keying (aliasing regression)" `Quick
            test_tenure_locus_no_aliasing;
          Alcotest.test_case "dedup drawn moves" `Quick test_dedup_moves;
          Alcotest.test_case "reassign policy" `Quick test_reassign_policy;
          Alcotest.test_case "policy sweep" `Quick test_descent_policy_sweep;
          Alcotest.test_case "remap sweep" `Quick test_descent_remap_sweep;
        ] );
      ( "strategies",
        [
          Alcotest.test_case "all strategies basic" `Slow test_strategies_basic;
          Alcotest.test_case "MXR <= MX" `Slow test_mxr_never_worse_than_mx;
          Alcotest.test_case "MC global <= local" `Slow
            test_mc_global_never_worse_than_local;
        ] );
    ]
