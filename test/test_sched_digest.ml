(* Schedule-table digest regression over every example instance.

   Each problem in Example_suite.all is built into an FT-CPG and
   scheduled three ways — reference scheduler, incremental scheduler
   with jobs = 1 and with jobs = 4 — and all three Table.pp renderings
   must hash to the pinned digest. Any scheduler change that alters
   output on any example graph (not just Fig. 5/6) fails here.

   To regenerate the pins after an INTENTIONAL output change:
     FTES_PRINT_DIGESTS=1 dune exec test/test_sched_digest.exe *)

module Ftcpg = Ftes_ftcpg.Ftcpg
module Conditional = Ftes_sched.Conditional
module Table = Ftes_sched.Table

let table_digest t =
  Digest.to_hex (Digest.string (Format.asprintf "%a" Table.pp t))

let pinned =
  [
    ("fig3-k1", "005321aca119748f17d1f49ab62771d2");
    ("fig5-k2", "d23e00e82a11db888d50fb5fb1cf5589");
    ("cruise-control-k2", "66f2b40a2be1183224365499a0bfccb1");
    ("vision-k2", "593c5c58179e7d3f4315b90f3555f770");
    ("tradeoff15-k2", "6a270e2e004b7b742f1767bd9c83fa01");
  ]

let () =
  if Sys.getenv_opt "FTES_PRINT_DIGESTS" <> None then begin
    List.iter
      (fun (name, problem) ->
        let f = Ftcpg.build problem in
        let t = Conditional.schedule_reference f in
        Printf.printf "    (%S, %S);\n%!" name (table_digest t))
      (Ftes_core.Example_suite.all ());
    exit 0
  end

let test_example name problem () =
  let expected = List.assoc name pinned in
  let f = Ftcpg.build problem in
  Alcotest.(check string)
    (name ^ " reference")
    expected
    (table_digest (Conditional.schedule_reference f));
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "%s jobs=%d" name jobs)
        expected
        (table_digest (Conditional.schedule ~jobs f)))
    [ 1; 4 ]

let () =
  Alcotest.run "sched_digest"
    [
      ( "example digests",
        List.map
          (fun (name, problem) ->
            Alcotest.test_case name `Quick (test_example name problem))
          (Ftes_core.Example_suite.all ()) );
    ]
