(* Tests of the domain-pool parallel engine: ordered deterministic
   merge, exception propagation, nesting, and — the property the whole
   PR rests on — end-to-end determinism of the parallel validator and
   the parallel tabu search against their sequential code paths. *)

module Par = Ftes_util.Par
module Sim = Ftes_sim.Sim
module Tabu = Ftes_optim.Tabu
module Problem = Ftes_ftcpg.Problem
module Mapping = Ftes_ftcpg.Mapping
module Ftcpg = Ftes_ftcpg.Ftcpg
module Graph = Ftes_app.Graph
module Conditional = Ftes_sched.Conditional

(* ------------------------------------------------------------------ *)
(* Engine semantics                                                    *)
(* ------------------------------------------------------------------ *)

let test_map_ordered () =
  let xs = List.init 1000 Fun.id in
  let expected = List.map (fun x -> (x * 7) mod 13) xs in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d" jobs)
        expected
        (Par.map ~jobs (fun x -> (x * 7) mod 13) xs))
    [ 1; 2; 4; 7 ]

let test_concat_map_ordered () =
  let xs = List.init 200 Fun.id in
  let f x = List.init (x mod 4) (fun i -> (x, i)) in
  Alcotest.(check (list (pair int int)))
    "concat in input order" (List.concat_map f xs)
    (Par.concat_map ~jobs:4 f xs)

let test_init_and_map_array () =
  Alcotest.(check (list int))
    "init" (List.init 57 (fun i -> i * i))
    (Par.init ~jobs:3 57 (fun i -> i * i));
  Alcotest.(check (array int))
    "map_array"
    (Array.init 57 (fun i -> i + 1))
    (Par.map_array ~jobs:3 (fun i -> i + 1) (Array.init 57 Fun.id))

let test_edge_sizes () =
  List.iter
    (fun jobs ->
      Alcotest.(check (list int)) "empty" [] (Par.map ~jobs succ []);
      Alcotest.(check (list int)) "singleton" [ 2 ] (Par.map ~jobs succ [ 1 ]);
      Alcotest.(check (list int))
        "fewer tasks than jobs" [ 2; 3 ]
        (Par.map ~jobs succ [ 1; 2 ]))
    [ 1; 8 ]

let test_exception_propagates () =
  Alcotest.check_raises "first failure re-raised" (Failure "boom") (fun () ->
      ignore
        (Par.map ~jobs:4
           (fun x -> if x = 513 then failwith "boom" else x)
           (List.init 1000 Fun.id)))

let test_nested_runs_sequentially () =
  (* A Par call inside a worker must not spawn further domains — it
     runs sequentially in that worker — and still returns the right
     ordered results. *)
  let table =
    Par.map ~jobs:4
      (fun i ->
        let inner = Par.map ~jobs:4 (fun j -> i * j) (List.init 5 Fun.id) in
        (Par.in_worker (), inner))
      (List.init 8 Fun.id)
  in
  List.iteri
    (fun i (in_worker, inner) ->
      Alcotest.(check bool) "flagged as worker" true in_worker;
      Alcotest.(check (list int))
        "inner results"
        (List.init 5 (fun j -> i * j))
        inner)
    table;
  Alcotest.(check bool) "flag restored at top level" false (Par.in_worker ())

(* ------------------------------------------------------------------ *)
(* Determinism of the parallel clients (ISSUE satellite)               *)
(* ------------------------------------------------------------------ *)

let small_table ~seed =
  let p = Helpers.random_problem ~processes:6 ~nodes:2 ~k:2 ~seed () in
  Conditional.schedule (Ftcpg.build p)

let test_validate_jobs_identical () =
  List.iter
    (fun seed ->
      let t = small_table ~seed in
      Alcotest.(check (list string))
        (Printf.sprintf "seed %d: jobs=4 = jobs=1" seed)
        (Sim.validate_messages ~jobs:1 t) (Sim.validate_messages ~jobs:4 t))
    [ 1; 2; 3; 4; 5 ]

(* The whole configuration, printable: policy and copy placement of
   every process. *)
let config_string (p : Problem.t) =
  let g = Problem.graph p in
  String.concat ";"
    (List.init (Graph.process_count g) (fun pid ->
         Printf.sprintf "%d=%s@[%s]" pid
           (Format.asprintf "%a" Ftes_app.Policy.pp p.Problem.policies.(pid))
           (String.concat ","
              (List.map string_of_int
                 (Mapping.copies p.Problem.mapping ~pid)))))

let test_tabu_jobs_identical () =
  List.iter
    (fun seed ->
      let p =
        Helpers.random_problem ~frozen:false ~processes:10 ~nodes:3 ~k:2
          ~seed ()
      in
      let opts jobs =
        { Tabu.default_options with iterations = 25; sample = 8; jobs }
      in
      let b1, l1 = Tabu.optimize (opts 1) p in
      let b4, l4 = Tabu.optimize (opts 4) p in
      Helpers.check_float (Printf.sprintf "seed %d: same length" seed) l1 l4;
      Alcotest.(check string)
        (Printf.sprintf "seed %d: same mapping and policies" seed)
        (config_string b1) (config_string b4))
    [ 1; 2; 3; 4; 5 ]

let () =
  Alcotest.run "par"
    [
      ( "engine",
        [
          Alcotest.test_case "map ordered merge" `Quick test_map_ordered;
          Alcotest.test_case "concat_map ordered" `Quick
            test_concat_map_ordered;
          Alcotest.test_case "init / map_array" `Quick test_init_and_map_array;
          Alcotest.test_case "edge sizes" `Quick test_edge_sizes;
          Alcotest.test_case "exception propagates" `Quick
            test_exception_propagates;
          Alcotest.test_case "nested runs sequentially" `Quick
            test_nested_runs_sequentially;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "validate jobs=4 = jobs=1" `Quick
            test_validate_jobs_identical;
          Alcotest.test_case "tabu jobs=4 = jobs=1" `Quick
            test_tabu_jobs_identical;
        ] );
    ];
  Ftes_util.Par.shutdown ()
