(* A realistic scenario: an adaptive cruise controller and an engine
   monitor sharing three ECUs on a TTP-like TDMA bus.

   - two periodic applications (periods 600 and 300 ms) are merged over
     their hyperperiod, the engine monitor contributing two instances
     (paper, Sec. 4);
   - the brake/throttle actuation messages are frozen: recovery inside
     the controller must stay invisible to the actuator ECU (fault
     containment, paper Sec. 3.3);
   - the synthesized system tolerates k = 2 transient faults per cycle
     and is validated by exhaustive fault injection.

   Run with: dune exec examples/cruise_control.exe *)

module Graph = Ftes_app.Graph
module Overheads = Ftes_app.Overheads

let o ~c = Overheads.make ~alpha:(c /. 10.) ~mu:(c /. 10.) ~chi:(c /. 20.)

(* The cruise-control graph: sensors -> fusion -> control -> actuators. *)
let cruise_control () =
  let b = Graph.Builder.create () in
  let add name c = Graph.Builder.add_process b ~overheads:(o ~c) ~name in
  let radar = add "Radar" 20. in
  let speed = add "Speed" 10. in
  let fusion = add "Fusion" 30. in
  let control = add "Control" 40. in
  let throttle = add "Throttle" 10. in
  let brake = add "Brake" 10. in
  let msg ?name src dst size =
    Graph.Builder.add_message b ?name ~src ~dst ~size
  in
  let _ = msg radar fusion 6. in
  let _ = msg speed fusion 4. in
  let _ = msg fusion control 6. in
  let m_throttle = msg ~name:"cmd_throttle" control throttle 2. in
  let m_brake = msg ~name:"cmd_brake" control brake 2. in
  let graph = Graph.Builder.build b in
  {
    Ftes_app.Merge.graph;
    period = 600.;
    deadline = 600.;
    transparency =
      Ftes_app.Transparency.of_list
        [ Msg m_throttle; Msg m_brake; Proc throttle; Proc brake ];
  }

(* The engine monitor: a short chain sampled twice per hyperperiod. *)
let engine_monitor () =
  let b = Graph.Builder.create () in
  let add name c = Graph.Builder.add_process b ~overheads:(o ~c) ~name in
  let sample = add "EngSample" 10. in
  let check = add "EngCheck" 15. in
  let _ = Graph.Builder.add_message b ~src:sample ~dst:check ~size:4. in
  {
    Ftes_app.Merge.graph = Graph.Builder.build b;
    period = 300.;
    deadline = 250.;
    transparency = Ftes_app.Transparency.none;
  }

let () =
  let app = Ftes_app.Merge.merge [ cruise_control (); engine_monitor () ] in
  Format.printf "merged virtual application (hyperperiod %g):@.%a@."
    app.Ftes_app.App.period Ftes_app.App.pp app;

  (* Three ECUs; the actuators are wired to ECU3, the sensors split over
     ECU1/ECU2 — mapping restrictions in the WCET table. *)
  let nodes = 3 in
  let arch =
    Ftes_arch.Arch.make ~names:[ "ECU1"; "ECU2"; "ECU3" ] ~node_count:nodes
      ~bus:(Ftes_arch.Bus.tdma ~slot_length:8. ~bandwidth:1. nodes)
      ()
  in
  let g = app.Ftes_app.App.graph in
  let n = Graph.process_count g in
  let wcet = Ftes_arch.Wcet.create ~procs:n ~nodes in
  let set name row =
    match Graph.find_process g name with
    | None -> invalid_arg ("no process " ^ name)
    | Some pid ->
        List.iteri
          (fun nid entry ->
            match entry with
            | Some c -> Ftes_arch.Wcet.set wcet ~pid ~nid c
            | None -> ())
          row
  in
  set "Radar" [ Some 20.; None; None ];
  set "Speed" [ None; Some 10.; None ];
  set "Fusion" [ Some 30.; Some 35.; None ];
  set "Control" [ Some 40.; Some 45.; None ];
  set "Throttle" [ None; None; Some 10. ];
  set "Brake" [ None; None; Some 10. ];
  List.iter
    (fun suffix ->
      set ("EngSample" ^ suffix) [ Some 12.; Some 10.; Some 14. ];
      set ("EngCheck" ^ suffix) [ Some 15.; Some 15.; Some 18. ])
    [ ""; "@1" ];
  Ftes_arch.Wcet.validate wcet;

  let result =
    Ftes_core.Synthesis.synthesize
      ~options:
        {
          Ftes_core.Synthesis.default_options with
          strategy = Ftes_optim.Strategy.MXR;
          compute_fto = true;
        }
      ~app ~arch ~wcet ~k:2 ()
  in
  Format.printf "@.%a@." Ftes_core.Synthesis.pp result;
  let problem = result.Ftes_core.Synthesis.problem in
  Array.iteri
    (fun pid policy ->
      Format.printf "  %-12s %a@." (Graph.process g pid).Graph.pname
        Ftes_app.Policy.pp policy)
    problem.Ftes_ftcpg.Problem.policies;

  (match result.Ftes_core.Synthesis.table with
  | Some table ->
      Format.printf "@.%a@." Ftes_sched.Table.pp table;
      (* Show one recovery in action: the worst double-fault trace. *)
      let ftcpg = Option.get result.Ftes_core.Synthesis.ftcpg in
      let scenarios =
        List.filter
          (fun s -> Ftes_ftcpg.Cond.fault_count s = 2)
          (Ftes_ftcpg.Ftcpg.scenarios ftcpg)
      in
      let worst =
        List.fold_left
          (fun acc s ->
            let o = Ftes_sim.Sim.run table ~scenario:s in
            match acc with
            | Some (w : Ftes_sim.Sim.outcome)
              when w.Ftes_sim.Sim.makespan >= o.Ftes_sim.Sim.makespan ->
                acc
            | _ -> Some o)
          None scenarios
      in
      (match worst with
      | Some w ->
          Format.printf "@.worst double-fault trace:@.%a@."
            Ftes_sim.Sim.pp_outcome w
      | None -> ())
  | None -> Format.printf "tables not produced@.");

  match Ftes_core.Synthesis.validate_messages result with
  | [] -> Format.printf "@.fault-injection validation: OK@."
  | vs ->
      List.iter (fun v -> Format.printf "  ! %s@." v) vs;
      exit 1
