(* A realistic scenario: an adaptive cruise controller and an engine
   monitor sharing three ECUs on a TTP-like TDMA bus.

   - two periodic applications (periods 600 and 300 ms) are merged over
     their hyperperiod, the engine monitor contributing two instances
     (paper, Sec. 4);
   - the brake/throttle actuation messages are frozen: recovery inside
     the controller must stay invisible to the actuator ECU (fault
     containment, paper Sec. 3.3);
   - the synthesized system tolerates k = 2 transient faults per cycle
     and is validated by exhaustive fault injection.

   The instance itself (graphs, architecture, WCET table) lives in
   Ftes_core.Example_suite so the schedule-digest regression test pins
   the exact same problem this executable demonstrates.

   Run with: dune exec examples/cruise_control.exe *)

module Graph = Ftes_app.Graph

let () =
  let app, arch, wcet = Ftes_core.Example_suite.cruise_instance () in
  Format.printf "merged virtual application (hyperperiod %g):@.%a@."
    app.Ftes_app.App.period Ftes_app.App.pp app;
  let g = app.Ftes_app.App.graph in

  let result =
    Ftes_core.Synthesis.synthesize
      ~options:
        {
          Ftes_core.Synthesis.default_options with
          strategy = Ftes_optim.Strategy.MXR;
          compute_fto = true;
        }
      ~app ~arch ~wcet ~k:2 ()
  in
  Format.printf "@.%a@." Ftes_core.Synthesis.pp result;
  let problem = result.Ftes_core.Synthesis.problem in
  Array.iteri
    (fun pid policy ->
      Format.printf "  %-12s %a@." (Graph.process g pid).Graph.pname
        Ftes_app.Policy.pp policy)
    problem.Ftes_ftcpg.Problem.policies;

  (match result.Ftes_core.Synthesis.table with
  | Some table ->
      Format.printf "@.%a@." Ftes_sched.Table.pp table;
      (* Show one recovery in action: the worst double-fault trace. *)
      let ftcpg = Option.get result.Ftes_core.Synthesis.ftcpg in
      let scenarios =
        List.filter
          (fun s -> Ftes_ftcpg.Cond.fault_count s = 2)
          (Ftes_ftcpg.Ftcpg.scenarios ftcpg)
      in
      let worst =
        List.fold_left
          (fun acc s ->
            let o = Ftes_sim.Sim.run table ~scenario:s in
            match acc with
            | Some (w : Ftes_sim.Sim.outcome)
              when w.Ftes_sim.Sim.makespan >= o.Ftes_sim.Sim.makespan ->
                acc
            | _ -> Some o)
          None scenarios
      in
      (match worst with
      | Some w ->
          Format.printf "@.worst double-fault trace:@.%a@."
            Ftes_sim.Sim.pp_outcome w
      | None -> ())
  | None -> Format.printf "tables not produced@.");

  match Ftes_core.Synthesis.validate_messages result with
  | [] -> Format.printf "@.fault-injection validation: OK@."
  | vs ->
      List.iter (fun v -> Format.printf "  ! %s@." v) vs;
      exit 1
