(* Quickstart: synthesize a fault-tolerant configuration for the paper's
   Fig. 3 application (five processes on two nodes, with a mapping
   restriction), tolerating one transient fault per cycle.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. The application (Fig. 3a) and platform (Fig. 3b/c). *)
  let app = Ftes_app.App.fig3 () in
  let arch, wcet = Ftes_arch.Examples.fig3 () in
  Format.printf "%a@.%a@.%a@." Ftes_app.App.pp app Ftes_arch.Arch.pp arch
    Ftes_arch.Wcet.pp wcet;

  (* 2. Synthesize ψ = <F, M, S>: policy assignment, mapping, tables. *)
  let result =
    Ftes_core.Synthesis.synthesize
      ~options:
        {
          Ftes_core.Synthesis.default_options with
          strategy = Ftes_optim.Strategy.MXR;
          compute_fto = true;
        }
      ~app ~arch ~wcet ~k:1 ()
  in
  Format.printf "@.%a@." Ftes_core.Synthesis.pp result;

  (* 3. Inspect the schedule tables (Fig. 6 style). *)
  (match result.Ftes_core.Synthesis.table with
  | Some table -> Format.printf "@.%a@." Ftes_sched.Table.pp table
  | None -> Format.printf "no tables produced@.");

  (* 4. Validate by fault injection: every scenario with at most one
     fault must meet the deadline, and frozen items must keep a single
     start time. *)
  match Ftes_core.Synthesis.validate_messages result with
  | [] -> Format.printf "@.fault-injection validation: OK@."
  | violations ->
      Format.printf "@.validation failed:@.";
      List.iter (fun v -> Format.printf "  ! %s@." v) violations;
      exit 1
