(* The paper's running example, end to end:

   - Fig. 5a: application of four processes with messages m1, m2, m3,
     transparency on P3, m2, m3;
   - Fig. 5b: its fault-tolerant conditional process graph for k = 2;
   - Fig. 6: the per-node schedule tables produced by conditional
     scheduling.

   Run with: dune exec examples/paper_example.exe *)

let () =
  let ftcpg = Ftes_core.Experiments.fig5 () in
  Format.printf "== Fig. 5b: the FT-CPG ==@.%a@." Ftes_ftcpg.Ftcpg.pp ftcpg;

  (* Copy counts per process — the paper's Fig. 5b has 3 copies of P1,
     6 of P2, 3 of P3 (behind the synchronization node P3^S) and 6 of
     P4. *)
  let g = Ftes_ftcpg.Problem.graph (Ftes_ftcpg.Ftcpg.problem ftcpg) in
  for pid = 0 to Ftes_app.Graph.process_count g - 1 do
    Format.printf "  %s: %d copies@."
      (Ftes_app.Graph.process g pid).Ftes_app.Graph.pname
      (List.length (Ftes_ftcpg.Ftcpg.proc_copies ftcpg ~pid))
  done;

  let table = Ftes_sched.Conditional.schedule ftcpg in
  Format.printf "@.== Fig. 6: schedule tables ==@.%a@." Ftes_sched.Table.pp
    table;
  Format.printf "@.== Fig. 6: matrix layout ==@.%a@."
    (Ftes_sched.Table.pp_matrix ~max_columns:24)
    table;

  (* The transparency requirements: m2, m3 and every copy of P3 keep one
     start time across all 15 fault scenarios. *)
  (match Ftes_sim.Sim.frozen_start_messages table with
  | [] -> Format.printf "transparency: all frozen start times invariant@."
  | vs -> List.iter (fun v -> Format.printf "  ! %s@." v) vs);

  match Ftes_sim.Sim.validate_messages table with
  | [] ->
      Format.printf
        "fault injection: all %d scenarios execute correctly (worst-case \
         length %g, fault-free %g)@."
        (Ftes_ftcpg.Ftcpg.scenario_count ftcpg)
        (Ftes_sched.Table.schedule_length table)
        (Ftes_sched.Table.no_fault_length table)
  | vs ->
      List.iter (fun v -> Format.printf "  ! %s@." v) vs;
      exit 1
