(* Mixed soft/hard scheduling (the paper's companion work [17]):

   A vision-assisted controller on two ECUs. The control chain
   (Sample -> Law -> Actuate) is hard: its deadline must hold in every
   scenario with at most k = 2 transient faults, so it gets re-execution
   budgets and recovery slack. The vision pipeline (Detect -> Track ->
   Overlay -> Log) is soft: completing it earns utility that decays with
   completion time, and it only runs in the capacity the hard schedule
   leaves over. Faults eat into exactly that capacity, so the guaranteed
   utility degrades with k while the hard deadline never does.

   The instance itself (graph, architecture, WCET table) lives in
   Ftes_core.Example_suite so the schedule-digest regression test pins
   the exact same problem this executable demonstrates.

   Run with: dune exec examples/soft_goals.exe *)

module Graph = Ftes_app.Graph
module U = Ftes_soft.Utility
module SS = Ftes_soft.Softsched

let () =
  let app, arch, wcet = Ftes_core.Example_suite.vision_instance () in
  let graph = app.Ftes_app.App.graph in
  let pid name = Option.get (Graph.find_process graph name) in
  let detect = pid "Detect"
  and track = pid "Track"
  and overlay = pid "Overlay"
  and log = pid "Log" in

  let classes =
    Array.init (Graph.process_count graph) (fun pid ->
        if pid = detect then
          SS.Soft (U.linear ~value:100. ~from_:120. ~zero_at:350.)
        else if pid = track then
          SS.Soft (U.linear ~value:80. ~from_:160. ~zero_at:380.)
        else if pid = overlay then
          SS.Soft (U.step ~value:50. ~until:250. ~late_value:20. ~cutoff:380.)
        else if pid = log then SS.Soft (U.constant ~value:10. ~until:400.)
        else SS.Hard)
  in

  List.iter
    (fun k ->
      let policies =
        Array.init (Graph.process_count graph) (fun _ ->
            Ftes_app.Policy.re_execution ~recoveries:k)
      in
      let mapping = Ftes_ftcpg.Problem.fastest_mapping ~app ~wcet ~policies in
      let p = Ftes_ftcpg.Problem.make ~app ~arch ~wcet ~k ~policies ~mapping in
      let r = SS.schedule ~classes p in
      Format.printf "== k = %d ==@.%a@.@." k (SS.pp_result graph) r;
      assert (r.SS.hard.Ftes_sched.Slack.length <= app.Ftes_app.App.deadline))
    [ 0; 1; 2; 3 ]
