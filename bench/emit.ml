(* One typed record emitter for every bench section.

   Every record in the harness's JSON output goes through {!record}, so
   the section record shapes (sweep timings, phase timings, comparison
   records, convergence points) stay structurally consistent, and the
   sections that produce per-instance results feed the cross-commit
   trajectory store (corpus/trajectory.jsonl, see
   Ftes_corpus.Trajectory) through the same module instead of
   hand-rolling a second serializer. *)

module Trajectory = Ftes_corpus.Trajectory

let schema_version = 9

type jfield =
  | JStr of string
  | JInt of int
  | JFloat of float  (* 6 decimals: wall-clock seconds *)
  | JRate of float   (* 1 decimal: throughput *)
  | JBool of bool

let jfield_to_string = function
  | JStr s -> Printf.sprintf "%S" s
  | JInt i -> string_of_int i
  | JFloat f -> Printf.sprintf "%.6f" f
  | JRate f -> Printf.sprintf "%.1f" f
  | JBool b -> string_of_bool b

let records : string list ref = ref []

let record fields =
  let body =
    String.concat ", "
      (List.map
         (fun (k, v) -> Printf.sprintf "%S: %s" k (jfield_to_string v))
         fields)
  in
  records := Printf.sprintf "    {%s}" body :: !records

let record_timing ~name ~jobs ~wall_s ?scenarios_per_s () =
  record
    ([ ("name", JStr name); ("jobs", JInt jobs); ("wall_s", JFloat wall_s) ]
    @
    match scenarios_per_s with
    | None -> []
    | Some r -> [ ("scenarios_per_s", JRate r) ])

let record_phase ~name ~jobs ~wall_s =
  record
    [ ("phase", JStr name); ("jobs", JInt jobs); ("wall_s", JFloat wall_s) ]

let write path =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"schema_version\": %d,\n  \"records\": [\n"
    schema_version;
  output_string oc (String.concat ",\n" (List.rev !records));
  output_string oc "\n  ]\n}\n";
  close_out oc;
  Printf.printf "\nwrote %s (%d timing records)\n" path
    (List.length !records)

(* ------------------------------------------------------------------ *)
(* Trajectory feed                                                     *)
(* ------------------------------------------------------------------ *)

(* Same commit-identity chain as `ftes corpus run`: explicit flag, then
   the env vars CI exports, then "unknown" — the harness never shells
   out to git. *)
let resolve_commit = function
  | Some c -> c
  | None -> (
      match Sys.getenv_opt "FTES_COMMIT" with
      | Some c when c <> "" -> c
      | _ -> (
          match Sys.getenv_opt "GITHUB_SHA" with
          | Some c when c <> "" -> c
          | _ -> "unknown"))

let trajectory : (string * string) option ref = ref None
let pending : Trajectory.entry list ref = ref []

let configure_trajectory ~path ~commit =
  trajectory := Some (path, resolve_commit commit)

let trajectory_point ~id ~ok ~length ~wall_ms =
  match !trajectory with
  | None -> ()
  | Some (_, commit) ->
      pending :=
        {
          Trajectory.commit;
          schema = Trajectory.schema_version;
          id;
          ok;
          length;
          wall_ms;
        }
        :: !pending

let flush_trajectory () =
  match !trajectory with
  | None -> ()
  | Some (path, commit) ->
      let entries = List.rev !pending in
      pending := [];
      if entries <> [] then begin
        Trajectory.append path entries;
        Printf.printf "appended %d trajectory entr%s to %s (commit %s)\n"
          (List.length entries)
          (if List.length entries = 1 then "y" else "ies")
          path commit
      end
